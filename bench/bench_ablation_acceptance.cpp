// Ablation ABL4: acceptance rule / schedule direction, at equal iteration
// budgets.
//
//  * ramp-up fractional (default): V_BG climbs, E_inc grows, the
//    "E_inc <= rand" test tightens -- linearized Metropolis cooling;
//  * paper-literal fractional: V_BG falls 0.7 -> 0 V as the paper's text
//    states; under the same comparison uphill acceptance *rises* while
//    cooling (greedy first, noisy last);
//  * exponential Metropolis (budget-normalized geometric schedule) on the
//    identical in-situ dataflow, isolating the acceptance rule;
//  * MESA multi-epoch baseline [7].
#include <cstdio>

#include "bench_common.hpp"
#include "core/direct_annealer.hpp"
#include "core/insitu_annealer.hpp"
#include "core/mesa.hpp"

using namespace fecim;

int main() {
  bench::print_header("ABL4 -- acceptance rule / schedule direction");

  util::Table table({"nodes", "iters", "variant", "norm. cut", "success"});
  for (const auto& group : bench::node_groups()) {
    const auto instance = bench::make_instance(group.nodes, 0);
    const auto config = bench::campaign_config(83);

    auto report = [&](const char* label, const core::Annealer& annealer) {
      const auto result = core::run_campaign(annealer, instance, config);
      table.row()
          .add(group.nodes)
          .add(group.iterations)
          .add(label)
          .add(result.normalized.mean(), 3)
          .add(result.success_rate * 100.0, 0);
    };

    core::InSituConfig ramp_up;
    ramp_up.iterations = group.iterations;
    report("fractional ramp-up (default)",
           core::InSituCimAnnealer(instance.model, ramp_up));

    core::InSituConfig literal = ramp_up;
    literal.schedule.direction =
        core::BgAnnealingSchedule::Direction::kPaperLiteral;
    report("fractional paper-literal",
           core::InSituCimAnnealer(instance.model, literal));

    core::DirectEConfig exponential;
    exponential.iterations = group.iterations;
    exponential.schedule_kind = core::ClassicSchedule::Kind::kGeometric;
    report("exponential (budget-normalized)",
           core::DirectEAnnealer(instance.model, exponential));

    core::MesaConfig mesa;
    mesa.base.iterations = group.iterations;
    mesa.base.schedule_kind = core::ClassicSchedule::Kind::kGeometric;
    report("MESA [7]", core::MesaAnnealer(instance.model, mesa));
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nnote: the literal V_BG direction (0.7 -> 0 V) makes the "
              "'E_inc <= rand' rule accept MORE uphill moves as it cools;\n"
              "the ramp-up direction realizes the intended linearized "
              "Metropolis behaviour and is this repo's default "
              "(see DESIGN.md).\n");
  return 0;
}
