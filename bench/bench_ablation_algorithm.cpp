// Ablation ABL7: solver dynamics on the shared analog crossbar, at matched
// ADC-conversion budgets.
//
// The same programmed array can run Metropolis-style in-situ annealing or
// simulated bifurcation (ballistic/discrete) -- the dynamics differ, the
// hardware does not.  One in-situ iteration senses one |F|-flip evaluation;
// one SB step senses n single-flip field readouts, so at equal step counts
// SB would consume ~n/|F| times the conversions.  The SB step budget is
// scaled down by that ratio and the table reports the MEASURED conversions
// per run, making quality-vs-evals comparable instead of steps-vs-steps.
//
// Warm-started rows (greedy cut construction seeding every run) measure the
// portfolio effect: constructive heuristic + refinement vs either alone.
#include <cstdio>

#include "bench_common.hpp"
#include "problems/qubo.hpp"

using namespace fecim;

namespace {

struct AlgorithmRow {
  const char* label;
  core::AnnealerKind kind;
  bool warm;
};

void run_problem(util::Table& table, const core::ProblemInstance& problem,
                 std::size_t insitu_iterations, std::uint64_t base_seed) {
  const std::size_t n = problem.model->num_spins();
  core::StandardSetup setup;
  setup.iterations = insitu_iterations;

  // Matched budget: SB steps scaled by |F| / n so both dynamics perform a
  // comparable number of single-column sensing events.
  const std::size_t sb_steps = std::max<std::size_t>(
      10, insitu_iterations * setup.flips_per_iteration / n);

  std::shared_ptr<const ising::SpinVector> warm;
  if (problem.warm_start)
    warm = std::make_shared<const ising::SpinVector>(problem.warm_start());

  const AlgorithmRow rows[] = {
      {"in-situ (this work)", core::AnnealerKind::kThisWork, false},
      {"in-situ + greedy warm", core::AnnealerKind::kThisWork, true},
      {"SB ballistic", core::AnnealerKind::kSbBallistic, false},
      {"SB ballistic + greedy warm", core::AnnealerKind::kSbBallistic, true},
      {"SB discrete", core::AnnealerKind::kSbDiscrete, false},
  };
  for (const auto& row : rows) {
    if (row.warm && !warm) continue;  // family without a constructive start
    const bool sb = row.kind == core::AnnealerKind::kSbBallistic ||
                    row.kind == core::AnnealerKind::kSbDiscrete;
    auto row_setup = setup;
    row_setup.iterations = sb ? sb_steps : insitu_iterations;
    row_setup.initial_spins = row.warm ? warm : nullptr;
    const auto annealer =
        core::make_annealer(row.kind, problem.model, row_setup);
    const auto result = core::run_campaign(*annealer, problem,
                                           bench::campaign_config(base_seed));
    const double conversions_per_run =
        static_cast<double>(result.total_ledger.adc_conversions) /
        static_cast<double>(result.runs);
    table.row()
        .add(problem.family)
        .add(n)
        .add(row.label)
        .add(row_setup.iterations)
        .add(conversions_per_run, 0)
        .add(result.normalized.mean(), 3)
        .add(result.success_rate * 100.0, 0);
  }
}

}  // namespace

int main() {
  bench::print_header("ABL7 -- solver dynamics (in-situ vs simulated "
                      "bifurcation), matched conversion budgets");

  util::Table table({"family", "spins", "algorithm", "iters", "adc/run",
                     "norm. obj", "success"});

  // Max-Cut: the paper's own COP, warm-startable via the greedy cut.
  const bool full = util::full_reproduction_mode();
  const std::size_t nodes = full ? 800 : 200;
  const std::size_t iterations = full ? 20000 : 4000;
  auto graph = problems::gset_like_instance(nodes, 21);
  run_problem(table,
              problems::make_maxcut_problem(
                  "abl7-maxcut", std::move(graph), full ? 64 : 24, 21),
              iterations, 177);

  // Generic QUBO: fields folded into the ancilla, no constructive start --
  // the dynamics comparison without the warm-start rows.
  const std::size_t qubo_vars = full ? 256 : 96;
  run_problem(table,
              problems::make_qubo_problem(
                  "abl7-qubo",
                  problems::random_qubo(qubo_vars, 8.0, 23), full ? 48 : 24,
                  23),
              iterations / 2, 179);

  std::printf("%s", table.str().c_str());
  std::printf(
      "\nnote: one SB step senses every spin's local field (n single-flip\n"
      "readouts), so SB budgets are steps * n conversions; the adc/run\n"
      "column is the measured equalizer.  SB trades acceptance tests for\n"
      "oscillator dynamics -- no exponential unit, no comparator -- and the\n"
      "greedy warm start shifts both dynamics' starting basin.\n");
  return 0;
}
