// Ablation ABL1: flips per iteration (t = |F|).
//
// The paper holds |F| constant but never states its value; the energy
// reduction factors imply |F| = 2 (ADC ratio ~ n/|F|).  This sweep shows
// the quality/energy/latency trade-off that choice sits on.
#include <cstdio>

#include "bench_common.hpp"

using namespace fecim;

int main() {
  bench::print_header("ABL1 -- flips per iteration (|F|) sweep");

  const auto instance = bench::make_instance(1000, 0);
  util::Table table({"|F|", "norm. cut", "success", "energy/run",
                     "time/run", "ADC conv / iter"});
  for (const std::size_t flips : {1u, 2u, 4u, 8u}) {
    core::StandardSetup setup;
    setup.iterations = 1000;
    setup.flips_per_iteration = flips;
    const auto annealer = core::make_annealer(core::AnnealerKind::kThisWork,
                                              instance.model, setup);
    const auto result = core::run_campaign(
        *annealer, instance, bench::campaign_config(61));
    const double conversions_per_iteration =
        static_cast<double>(result.total_ledger.adc_conversions) /
        static_cast<double>(result.total_ledger.iterations);
    table.row()
        .add(flips)
        .add(result.normalized.mean(), 3)
        .add(result.success_rate * 100.0, 0)
        .add(util::si_format(result.energy.mean(), "J"))
        .add(util::si_format(result.time.mean(), "s"))
        .add(conversions_per_iteration, 1);
  }
  std::printf("%s", table.str().c_str());
  std::printf("ADC conversions scale as 2 * |F| * k: energy per iteration "
              "grows linearly in |F| while per-flip quality gains saturate "
              "-- |F| = 2 matches the paper's reported reduction factors.\n");
  return 0;
}
