// Ablation ABL5: wire parasitics / IR drop and array tiling.
//
// Sweeps the wire resistance per cell pitch, reporting the monolithic vs
// tiled source-line attenuation (MNA-solved) and the analog annealer's
// quality with the IR-drop model on -- showing why the digital calibration
// constant absorbs the attenuation and what tiling buys at paper scale.
#include <cstdio>

#include "bench_common.hpp"
#include "circuit/parasitics.hpp"
#include "core/insitu_annealer.hpp"
#include "crossbar/tiling.hpp"

using namespace fecim;

int main() {
  bench::print_header("ABL5 -- wire parasitics, IR drop and tiling");

  const device::DgFefetParams device_params;
  const double i_on =
      device::DgFefet::on_current(device_params, device_params.vbg_max);

  std::printf("\n-- source-line attenuation vs wire resistance "
              "(3000-row line, MNA DC solve) --\n");
  util::Table att({"r_wire [ohm/um]", "monolithic 3000 rows",
                   "tiled (<=1024 rows)", "Elmore delay (tile)"});
  for (const double r_per_um : {1.0, 4.0, 16.0, 64.0}) {
    circuit::WireTech tech;
    tech.r_per_um = r_per_um;
    const crossbar::CrossbarMapping mapping(3000, 1, {8, 8, true});
    crossbar::TileConstraints constraints;
    constraints.wire = tech;
    const auto plan = crossbar::plan_tiles(mapping, constraints, i_on, 1.0);
    const auto tile_parasitics = circuit::estimate_line_parasitics(
        plan.tile_rows, i_on, 1.0, tech);
    att.row()
        .add(r_per_um, 1)
        .add(plan.monolithic_ir_attenuation, 4)
        .add(plan.tile_ir_attenuation, 4)
        .add(util::si_format(tile_parasitics.elmore_delay, "s"));
  }
  std::printf("%s", att.str().c_str());

  std::printf("\n-- annealing quality with the IR-drop model on/off --\n");
  const auto instance = bench::make_instance(1000, 0);
  util::Table quality({"wire model", "norm. cut", "success"});
  for (const bool ir_on : {false, true}) {
    core::InSituConfig config;
    config.iterations = 1000;
    config.analog.model_ir_drop = ir_on;
    core::InSituCimAnnealer annealer(instance.model, config);
    const auto result =
        core::run_campaign(annealer, instance, bench::campaign_config(91));
    quality.row()
        .add(ir_on ? "IR drop modeled" : "ideal wires")
        .add(result.normalized.mean(), 3)
        .add(result.success_rate * 100.0, 0);
  }
  std::printf("%s", quality.str().c_str());
  std::printf("the fixed digital calibration divides the attenuation back "
              "out, so quality is insensitive until the ADC requantization "
              "of attenuated currents bites (very high r_wire).\n");
  return 0;
}
