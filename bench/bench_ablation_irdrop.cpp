// Ablation ABL5: wire parasitics / IR drop and array tiling.
//
// Sweeps the wire resistance per cell pitch, reporting the monolithic vs
// tiled source-line attenuation and the analog annealer's quality with the
// IR-drop model on -- showing why the digital calibration constant absorbs
// the attenuation and what tiling buys at paper scale.
//
// The attenuation columns come from the tile-aware execution path itself:
// two AnalogCrossbarEngine instances over the same 3000-spin programmed
// array (one monolithic, one on the <=1024-row tile grid) report
// ir_attenuation() / tile_attenuation(), so this ablation can never drift
// from what the engines actually apply.  plan_tiles() supplies only the
// grid geometry and the Elmore delay.
#include <cstdio>

#include "bench_common.hpp"
#include "circuit/parasitics.hpp"
#include "core/insitu_annealer.hpp"
#include "crossbar/analog_engine.hpp"
#include "crossbar/tiling.hpp"
#include "problems/generators.hpp"
#include "problems/maxcut.hpp"

using namespace fecim;

int main() {
  bench::print_header("ABL5 -- wire parasitics, IR drop and tiling");

  std::printf("\n-- source-line attenuation vs wire resistance "
              "(3000-row array, engine MNA DC solve) --\n");
  // One paper-scale array, programmed once and shared by every engine: the
  // attenuation depends only on (rows, wire), so the sweep re-solves the
  // ladders through the same constructor path the annealer uses.  (Model
  // built directly -- no reference-cut restarts; only the array matters.)
  const auto paper_model = std::make_shared<const ising::IsingModel>(
      problems::maxcut_to_ising(problems::gset_like_instance(3000, 5)));
  const crossbar::TileShape tile_shape{1024, 1024};
  core::InSituConfig mono_config;
  core::InSituConfig tiled_config;
  tiled_config.tiles = tile_shape;
  // iterations=1: the annealers here only program the arrays.
  mono_config.iterations = tiled_config.iterations = 1;
  const core::InSituCimAnnealer mono_annealer(paper_model, mono_config);
  const core::InSituCimAnnealer tiled_annealer(paper_model, tiled_config);

  util::Table att({"r_wire [ohm/um]", "monolithic 3000 rows",
                   "tiled (<=1024 rows)", "Elmore delay (tile)"});
  for (const double r_per_um : {1.0, 4.0, 16.0, 64.0}) {
    circuit::WireTech tech;
    tech.r_per_um = r_per_um;
    crossbar::AnalogEngineConfig engine_config;
    engine_config.wire = tech;
    const crossbar::AnalogCrossbarEngine mono_engine(mono_annealer.array(),
                                                     engine_config);
    const crossbar::AnalogCrossbarEngine tiled_engine(tiled_annealer.array(),
                                                      engine_config);
    const auto plan = tiled_annealer.array()->plan(tech);
    const auto tile_parasitics = circuit::estimate_line_parasitics(
        plan.tile_rows,
        tiled_annealer.array()->on_current(
            tiled_annealer.array()->device_params().vbg_max),
        tiled_annealer.array()->device_params().read_vdl, tech);
    att.row()
        .add(r_per_um, 1)
        .add(mono_engine.ir_attenuation(), 4)
        .add(tiled_engine.tile_attenuation(), 4)
        .add(util::si_format(tile_parasitics.elmore_delay, "s"));
  }
  std::printf("%s", att.str().c_str());

  std::printf("\n-- annealing quality with the IR-drop model on/off --\n");
  const auto instance = bench::make_instance(1000, 0);
  util::Table quality({"wire model", "norm. cut", "success"});
  for (const bool ir_on : {false, true}) {
    core::InSituConfig config;
    config.iterations = 1000;
    config.analog.model_ir_drop = ir_on;
    core::InSituCimAnnealer annealer(instance.model, config);
    const auto result =
        core::run_campaign(annealer, instance, bench::campaign_config(91));
    quality.row()
        .add(ir_on ? "IR drop modeled" : "ideal wires")
        .add(result.normalized.mean(), 3)
        .add(result.success_rate * 100.0, 0);
  }
  std::printf("%s", quality.str().c_str());
  std::printf("the fixed digital calibration divides the attenuation back "
              "out, so quality is insensitive until the ADC requantization "
              "of attenuated currents bites (very high r_wire).\n");
  return 0;
}
