// Ablation ABL2: weight quantization width k (bits per coupling).
//
// Each J element occupies a 1 x k cell subarray; k trades array width and
// ADC count against E_inc fidelity.  Unit-weight Gset instances quantize
// exactly at any k, so this sweep uses a +-1-weighted instance where
// quantization actually matters, plus a weighted-error report.
#include <cstdio>

#include "bench_common.hpp"
#include "crossbar/bit_slicing.hpp"
#include "problems/maxcut.hpp"

using namespace fecim;

int main() {
  bench::print_header("ABL2 -- weight quantization (k bits) sweep");

  // A weighted instance: Gaussian weights stress the quantizer.
  util::Rng weight_rng(3);
  auto graph = problems::random_graph(512, 16.0,
                                      problems::WeightScheme::kPlusMinusOne, 3);
  problems::Graph weighted(graph.num_vertices());
  for (const auto& e : graph.edges())
    weighted.add_edge(e.u, e.v, e.weight * weight_rng.uniform(0.25, 1.0));
  const auto instance = problems::make_maxcut_problem("weighted-512",
                                                      std::move(weighted), 32);

  util::Table table({"k bits", "max |J| error", "norm. cut", "success",
                     "energy/run"});
  for (const int bits : {2, 4, 6, 8}) {
    const crossbar::QuantizedCouplings quantized(instance.model->couplings(),
                                                 bits);
    core::StandardSetup setup;
    setup.iterations = 2000;
    setup.bits = bits;
    const auto annealer = core::make_annealer(core::AnnealerKind::kThisWork,
                                              instance.model, setup);
    const auto result = core::run_campaign(
        *annealer, instance, bench::campaign_config(67));
    table.row()
        .add(bits)
        .add(quantized.max_abs_error(instance.model->couplings()), 5)
        .add(result.normalized.mean(), 3)
        .add(result.success_rate * 100.0, 0)
        .add(util::si_format(result.energy.mean(), "J"));
  }
  std::printf("%s", table.str().c_str());
  std::printf("coarse k injects weight error yet ADC energy shrinks with k;"
              " the paper's k = 8 sits at the fidelity plateau.\n");
  return 0;
}
