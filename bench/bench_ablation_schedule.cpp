// Ablation ABL6: back-gate ladder granularity and retention margin.
//
// (a) DAC step sweep: the paper's 0.01 V gradient gives 71 temperature
//     levels; coarser DACs quantize f(T) harder and cost solution quality.
// (b) Retention check: how long the programmed array remains valid vs the
//     longest campaign, with the refresh schedule the retention model
//     prescribes.
#include <cstdio>

#include "bench_common.hpp"
#include "core/insitu_annealer.hpp"
#include "device/retention.hpp"

using namespace fecim;

int main() {
  bench::print_header("ABL6 -- BG DAC granularity and retention margin");

  std::printf("\n-- DAC step sweep (1000-node instance, 1000 iterations) --\n");
  const auto instance = bench::make_instance(1000, 0);
  util::Table table({"DAC step [V]", "levels", "norm. cut", "success"});
  for (const double step : {0.01, 0.02, 0.05, 0.10, 0.35}) {
    core::InSituConfig config;
    config.iterations = 1000;
    config.schedule.dac.step = step;
    core::InSituCimAnnealer annealer(instance.model, config);
    const auto result =
        core::run_campaign(annealer, instance, bench::campaign_config(97));
    table.row()
        .add(step, 2)
        .add(config.schedule.dac.num_levels())
        .add(result.normalized.mean(), 3)
        .add(result.success_rate * 100.0, 0);
  }
  std::printf("%s", table.str().c_str());
  std::printf("the paper's 0.01 V grid (71 levels) is comfortably beyond "
              "the quality plateau; even ~8 levels anneal acceptably.\n");

  std::printf("\n-- retention vs campaign duration --\n");
  const device::RetentionModel retention;
  // Longest paper campaign: 3000 nodes, 100k iterations, ~55 ns each,
  // 32 column reads per iteration.
  const double campaign_seconds = 100000 * 55e-9;
  const double reads_per_second = 32.0 / 55e-9;
  std::printf("campaign: %.2f ms, %.2g reads/s\n", campaign_seconds * 1e3,
              reads_per_second);
  std::printf("memory window after campaign: %.4f of fresh\n",
              retention.memory_window_fraction(
                  campaign_seconds,
                  static_cast<std::uint64_t>(reads_per_second *
                                             campaign_seconds)));
  std::printf("time to refresh threshold (%.0f %% window): %.3g s -> "
              "%llu refreshes needed during the campaign\n",
              retention.params().min_polarization * 100.0,
              retention.seconds_until_refresh(reads_per_second),
              static_cast<unsigned long long>(retention.refreshes_needed(
                  campaign_seconds, reads_per_second)));
  return 0;
}
