// Ablation ABL3: device-variation robustness.
//
// Sweeps programming V_TH spread, cycle-to-cycle read noise, and stuck-off
// fault rates, reporting the solution quality of the analog annealer --
// the robustness dimension CiM annealers claim over dynamical-system Ising
// machines (paper Secs. 1-2).
#include <cstdio>

#include "bench_common.hpp"

using namespace fecim;

namespace {

void sweep(const char* title, const std::vector<device::VariationParams>& points,
           const std::vector<std::string>& labels,
           const core::ProblemInstance& instance) {
  std::printf("\n-- %s --\n", title);
  util::Table table({"setting", "norm. cut", "success", "faulted bit-cells"});
  for (std::size_t p = 0; p < points.size(); ++p) {
    core::StandardSetup setup;
    setup.iterations = 1000;
    setup.variation = points[p];
    const auto annealer = core::make_annealer(core::AnnealerKind::kThisWork,
                                              instance.model, setup);
    const auto result = core::run_campaign(
        *annealer, instance, bench::campaign_config(71 + p));
    const auto* in_situ =
        dynamic_cast<const core::InSituCimAnnealer*>(annealer.get());
    const std::size_t faults =
        in_situ != nullptr && in_situ->array() != nullptr
            ? in_situ->array()->num_faulted_bit_cells()
            : 0;
    table.row()
        .add(labels[p])
        .add(result.normalized.mean(), 3)
        .add(result.success_rate * 100.0, 0)
        .add(faults);
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main() {
  bench::print_header("ABL3 -- device variation robustness sweep");
  const auto instance = bench::make_instance(1000, 0);

  sweep("programming V_TH spread (D2D)",
        {{0.0, 0.0, 0.0, 0.0},
         {0.02, 0.0, 0.0, 0.0},
         {0.04, 0.0, 0.0, 0.0},
         {0.08, 0.0, 0.0, 0.0}},
        {"sigma = 0 mV", "sigma = 20 mV", "sigma = 40 mV", "sigma = 80 mV"},
        instance);

  sweep("cycle-to-cycle read noise",
        {{0.0, 0.0, 0.0, 0.0},
         {0.0, 0.02, 0.0, 0.0},
         {0.0, 0.05, 0.0, 0.0},
         {0.0, 0.10, 0.0, 0.0}},
        {"0 %", "2 %", "5 %", "10 %"}, instance);

  sweep("stuck-off faults",
        {{0.0, 0.0, 0.0, 0.0},
         {0.0, 0.0, 0.001, 0.0},
         {0.0, 0.0, 0.01, 0.0},
         {0.0, 0.0, 0.05, 0.0}},
        {"0", "0.1 %", "1 %", "5 %"}, instance);

  std::printf("\nmoderate analog noise is benign (it acts as extra "
              "annealing stochasticity); only large fault rates degrade "
              "the solution -- the robustness the paper attributes to CiM "
              "annealers.\n");
  return 0;
}
