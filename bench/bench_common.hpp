// Shared scaffolding for the figure/table reproduction binaries.
//
// Default scale keeps `for b in build/bench/*; do $b; done` fast; set
// FECIM_FULL=1 for the paper's full campaign (9/9/9/3 instances, 100
// Monte-Carlo runs per instance).  FECIM_RUNS / FECIM_INSTANCES override
// individual knobs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/annealer_factory.hpp"
#include "core/runner.hpp"
#include "problems/generators.hpp"
#include "problems/instances.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace fecim::bench {

struct NodeGroup {
  std::size_t nodes;
  std::size_t instances;
  std::size_t iterations;  ///< paper Sec. 4.1 budgets
};

/// The paper's four Max-Cut groups: 800/1000/2000/3000 nodes with
/// 700/1000/10k/100k iterations.
inline std::vector<NodeGroup> node_groups() {
  const bool full = util::full_reproduction_mode();
  const auto instances_override = util::env_int("FECIM_INSTANCES", 0);
  auto pick = [&](std::size_t paper, std::size_t reduced) {
    if (instances_override > 0)
      return static_cast<std::size_t>(instances_override);
    return full ? paper : reduced;
  };
  return {
      {800, pick(9, 3), 700},
      {1000, pick(9, 3), 1000},
      {2000, pick(9, 3), 10000},
      {3000, pick(3, 2), 100000},
  };
}

inline std::size_t runs_per_instance() {
  const auto override_runs = util::env_int("FECIM_RUNS", 0);
  if (override_runs > 0) return static_cast<std::size_t>(override_runs);
  return util::full_reproduction_mode() ? 100 : 10;
}

/// Deterministic instance seed: group size + index.
inline std::uint64_t instance_seed(std::size_t nodes, std::size_t index) {
  return nodes * 1000003ULL + index;
}

/// Max-Cut benchmark instance for a (group size, index) pair, built through
/// the shared ProblemInstance factory (same reference-restart policy as the
/// paper harness; no duplicated construction logic in the benches).
inline core::ProblemInstance make_instance(std::size_t nodes,
                                           std::size_t index) {
  const auto seed = instance_seed(nodes, index);
  auto graph = problems::gset_like_instance(nodes, seed);
  const std::size_t restarts = util::full_reproduction_mode() ? 64 : 24;
  return problems::make_maxcut_problem(
      "n" + std::to_string(nodes) + "-i" + std::to_string(index),
      std::move(graph), restarts, seed);
}

inline core::CampaignConfig campaign_config(std::uint64_t base_seed) {
  core::CampaignConfig config;
  config.runs = runs_per_instance();
  config.base_seed = base_seed;
  return config;
}

inline void print_header(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("mode: %s (FECIM_FULL=1 for the paper-scale campaign)\n",
              util::full_reproduction_mode() ? "FULL" : "reduced");
  std::printf("==============================================================\n");
}

}  // namespace fecim::bench
