// Fig. 10 reproduction: normalized cut values per node group for the three
// annealers, success rate against the 90 %-of-best-known target, and the
// paper's headline averages (98 % vs 50 %).
#include <cstdio>

#include "bench_common.hpp"

using namespace fecim;

int main() {
  bench::print_header(
      "FIG10 -- normalized cut values and success rates (paper Fig. 10)");

  constexpr core::AnnealerKind kKinds[] = {core::AnnealerKind::kThisWork,
                                           core::AnnealerKind::kCimFpga,
                                           core::AnnealerKind::kCimAsic};

  util::Table table({"nodes", "iters", "annealer", "norm. cut (mean)",
                     "norm. cut (min)", "success rate"});
  double ours_success_sum = 0.0;
  double baseline_success_sum = 0.0;
  std::size_t group_count = 0;

  for (const auto& group : bench::node_groups()) {
    ++group_count;
    for (const auto kind : kKinds) {
      util::RunningStats normalized;
      double min_norm = 1.0;
      util::RunningStats success;
      for (std::size_t i = 0; i < group.instances; ++i) {
        const auto instance = bench::make_instance(group.nodes, i);
        core::StandardSetup setup;
        setup.iterations = group.iterations;
        const auto annealer = core::make_annealer(kind, instance.model, setup);
        const auto result = core::run_campaign(
            *annealer, instance, bench::campaign_config(41 + i));
        normalized.add(result.normalized.mean());
        min_norm = std::min(min_norm, result.normalized.min());
        success.add(result.success_rate);
      }
      if (kind == core::AnnealerKind::kThisWork)
        ours_success_sum += success.mean();
      if (kind == core::AnnealerKind::kCimFpga)
        baseline_success_sum += success.mean();
      table.row()
          .add(group.nodes)
          .add(group.iterations)
          .add(core::annealer_kind_name(kind))
          .add(normalized.mean(), 3)
          .add(min_norm, 3)
          .add(success.mean() * 100.0, 0);
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf("\naverage success rate -- this work: %.0f %% (paper: 98 %%), "
              "baselines: %.0f %% (paper: 50 %%)\n",
              100.0 * ours_success_sum / static_cast<double>(group_count),
              100.0 * baseline_success_sum / static_cast<double>(group_count));
  std::printf("target cut = 90 %% of the best-known value per instance "
              "(certified optimum for the toroidal 3000-node family).\n");
  std::printf("paper: baselines clear the bar only on the 2000/3000-node "
              "groups, where the budget is >= 10k iterations.\n");
  return 0;
}
