// Fig. 2(b)/(d) reproduction: I_D-V_G transfer curves of the Preisach FeFET
// (programmed low-V_TH vs erased high-V_TH) and of the DG FeFET under
// back-gate bias from -3 V to +5 V in 1 V steps.
#include <cstdio>

#include "bench_common.hpp"
#include "device/dg_fefet.hpp"
#include "device/preisach.hpp"
#include "util/table.hpp"

using namespace fecim;

namespace {

void figure_2b() {
  std::printf("\n-- Fig. 2(b): FeFET I_D-V_G for programmed/erased states --\n");
  device::PreisachFefet low_vth;
  low_vth.program();
  device::PreisachFefet high_vth;
  high_vth.erase();
  std::printf("memory window: V_TH(erased) - V_TH(programmed) = %.3f V "
              "(paper: ~1 V)\n",
              high_vth.threshold_voltage() - low_vth.threshold_voltage());

  util::Table table({"V_G [V]", "I_D low-VTH [A]", "I_D high-VTH [A]"});
  for (double vg = -0.5; vg <= 1.5001; vg += 0.1) {
    table.row()
        .add(vg, 2)
        .add(util::si_format(low_vth.drain_current(vg, 1.0), "A"))
        .add(util::si_format(high_vth.drain_current(vg, 1.0), "A"));
  }
  std::printf("%s", table.str().c_str());
}

void figure_2d() {
  std::printf("\n-- Fig. 2(d): DG FeFET I_D-V_G under V_BG = -3..+5 V --\n");
  const device::DgFefetParams params;
  const device::DgFefet cell(params, /*stored_one=*/true);

  // Gate voltage where the drain current crosses 1 uA, per back-gate bias:
  // the curve translation visualizes the V_TH tunability.
  util::Table table({"V_BG [V]", "V_G @ I_D = 1 uA [V]", "V_TH_eff [V]"});
  for (double vbg = -3.0; vbg <= 5.0001; vbg += 1.0) {
    double crossing = 5.0;
    for (double vg = -1.0; vg < 5.0; vg += 0.002) {
      if (cell.drain_current(vg, vbg, 1.0) > 1e-6) {
        crossing = vg;
        break;
      }
    }
    table.row().add(vbg, 1).add(crossing, 3).add(cell.effective_vth(vbg), 3);
  }
  std::printf("%s", table.str().c_str());
  std::printf("slope of V_TH_eff vs V_BG = -%.3f V/V (back-gate coupling "
              "gamma; V_TH tunable without disturbing the stored state)\n",
              params.back_gate_coupling);
}

}  // namespace

int main() {
  bench::print_header(
      "FIG2 -- FeFET / DG FeFET transfer curves (paper Fig. 2(b)(d))");
  figure_2b();
  figure_2d();
  return 0;
}
