// Fig. 5 reproduction: VMV complexity reduction of the incremental-E
// transformation -- n^2 product terms (direct-E) vs (n - |F|) * |F|
// (incremental), plus measured sparse-arithmetic operation counts and the
// exactness of the dE identity on a real instance.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "ising/incremental.hpp"
#include "problems/maxcut.hpp"
#include "util/timer.hpp"

using namespace fecim;

int main() {
  bench::print_header(
      "FIG5 -- incremental-E complexity reduction (paper Fig. 5)");

  std::printf("\n-- dense product-term counts, |F| = 2 --\n");
  util::Table table({"n", "direct n^2", "incremental (n-|F|)|F|", "reduction"});
  for (const std::size_t n : {800u, 1000u, 2000u, 3000u}) {
    const auto count = ising::count_product_terms(n, 2);
    table.row()
        .add(n)
        .add(static_cast<long long>(count.direct_terms))
        .add(static_cast<long long>(count.incremental_terms))
        .add(static_cast<double>(count.direct_terms) /
                 static_cast<double>(count.incremental_terms),
             1);
  }
  std::printf("%s", table.str().c_str());
  std::printf("paper: O(n^2) -> O(n); at n = 3000, |F| = 2 the dense VMV\n"
              "shrinks from 9.0M to 6.0k product terms (1500x).\n");

  std::printf("\n-- identity check + measured wall time on a 2000-node "
              "Gset-class instance --\n");
  const auto graph = problems::gset_like_instance(2000, 7);
  const auto model = problems::maxcut_to_ising(graph);
  util::Rng rng(1);
  auto spins = ising::random_spins(2000, rng);

  double worst_error = 0.0;
  util::WallTimer incremental_timer;
  double checksum = 0.0;
  constexpr int kTrials = 2000;
  std::vector<ising::FlipSet> flip_sets;
  flip_sets.reserve(kTrials);
  for (int i = 0; i < kTrials; ++i)
    flip_sets.push_back(ising::random_flip_set(2000, 2, rng));

  incremental_timer.reset();
  for (const auto& flips : flip_sets)
    checksum += model.incremental_vmv(spins, flips);
  const double incremental_ms = incremental_timer.milliseconds();

  util::WallTimer direct_timer;
  double direct_checksum = 0.0;
  constexpr int kDirectTrials = 50;  // full energies are 40x more expensive
  for (int i = 0; i < kDirectTrials; ++i) {
    const auto flipped = ising::flipped_copy(spins, flip_sets[i]);
    direct_checksum += model.energy(flipped) - model.energy(spins);
  }
  const double direct_ms = direct_timer.milliseconds();

  for (int i = 0; i < kDirectTrials; ++i) {
    const auto flipped = ising::flipped_copy(spins, flip_sets[i]);
    const double direct = model.energy(flipped) - model.energy(spins);
    const double incremental = 4.0 * model.incremental_vmv(spins, flip_sets[i]);
    worst_error = std::max(worst_error, std::fabs(direct - incremental));
  }

  std::printf("dE = 4 sigma_r^T J sigma_c identity: worst |error| = %.3g "
              "over %d random moves\n", worst_error, kDirectTrials);
  std::printf("host time per evaluation: direct %.3f us vs incremental "
              "%.3f us (%.0fx)   [checksums %.1f / %.1f]\n",
              1e3 * direct_ms / kDirectTrials,
              1e3 * incremental_ms / kTrials,
              (direct_ms / kDirectTrials) / (incremental_ms / kTrials),
              direct_checksum, checksum);
  return 0;
}
