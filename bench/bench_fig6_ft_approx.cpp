// Fig. 6(b)/(c) reproduction: the DG FeFET I_SL-V_BG characteristic and its
// normalized form approximating the fractional annealing factor
// f(T) = 1/(-0.006 T + 5) - 0.2 across the BG DAC ladder.
#include <cstdio>

#include "bench_common.hpp"
#include "core/ft_calibration.hpp"

using namespace fecim;

int main() {
  bench::print_header(
      "FIG6 -- I_SL(V_BG) vs fractional factor f(T) (paper Fig. 6(b)(c))");

  const ising::FractionalFactor factor;
  const circuit::BgDac dac;
  const device::DgFefetParams params;

  std::printf("\n-- Fig. 6(b): I_SL-V_BG of a stored-'1' cell at full drive --\n");
  util::Table iv({"V_BG [V]", "I_SL [A]", "normalized"});
  const double i_max = device::DgFefet::on_current(params, dac.v_max);
  for (double vbg = 0.1; vbg <= 0.7001; vbg += 0.1) {
    const double current = device::DgFefet::on_current(params, vbg);
    iv.row()
        .add(vbg, 2)
        .add(util::si_format(current, "A"))
        .add(current / i_max, 4);
  }
  std::printf("%s", iv.str().c_str());

  std::printf("\n-- Fig. 6(c): f(T) approximation across the DAC ladder --\n");
  const auto report = core::evaluate_ft_approximation(params, factor, dac);
  util::Table table({"V_BG [V]", "T", "f(T) target", "device", "error"});
  for (std::size_t i = 0; i < report.samples.size(); i += 7) {
    const auto& sample = report.samples[i];
    table.row()
        .add(sample.vbg, 2)
        .add(sample.temperature, 1)
        .add(sample.target, 4)
        .add(sample.device, 4)
        .add(sample.device - sample.target, 4);
  }
  std::printf("%s", table.str().c_str());
  std::printf("RMS error %.4f, max error %.4f, monotone: %s "
              "(paper shows a close visual overlay)\n",
              report.rms_error, report.max_error,
              report.monotone ? "yes" : "NO");

  std::printf("\n-- device re-fit from scratch (grid search) --\n");
  core::FtFitOptions options;
  options.step = 0.005;
  const auto fitted = core::fit_dg_fefet_to_factor(factor, dac, params, options);
  const auto fitted_report = core::evaluate_ft_approximation(fitted, factor, dac);
  std::printf("fitted vth_low = %.3f V, gamma = %.3f V/V -> RMS %.4f "
              "(shipped defaults: vth_low = %.3f, gamma = %.3f)\n",
              fitted.vth_low, fitted.back_gate_coupling,
              fitted_report.rms_error, params.vth_low,
              params.back_gate_coupling);
  return 0;
}
