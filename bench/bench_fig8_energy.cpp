// Fig. 8 reproduction.
//  (a) average modeled energy for solving the 800/1000/2000/3000-node
//      Max-Cut groups on the three annealers, with the reduction factors
//      the paper annotates (732x/401x ... 1716x/1503x);
//  (b) energy vs iteration count on a 1000-node instance.
#include <cstdio>

#include "bench_common.hpp"
#include "cost/cost_model.hpp"

using namespace fecim;

namespace {

constexpr core::AnnealerKind kKinds[] = {core::AnnealerKind::kThisWork,
                                         core::AnnealerKind::kCimFpga,
                                         core::AnnealerKind::kCimAsic};

void figure_8a() {
  std::printf("\n-- Fig. 8(a): average energy per run --\n");
  util::Table table({"nodes", "iters", "annealer", "energy/run", "ADC share",
                     "e^x share", "reduction vs this work"});
  for (const auto& group : bench::node_groups()) {
    double ours_energy = 0.0;
    for (const auto kind : kKinds) {
      util::RunningStats energy;
      util::RunningStats adc;
      util::RunningStats expshare;
      for (std::size_t i = 0; i < group.instances; ++i) {
        const auto instance = bench::make_instance(group.nodes, i);
        core::StandardSetup setup;
        setup.iterations = group.iterations;
        const auto annealer = core::make_annealer(kind, instance.model, setup);
        const auto result = core::run_campaign(
            *annealer, instance, bench::campaign_config(17 + i));
        energy.add(result.energy.mean());
        adc.add(result.adc_energy.mean());
        expshare.add(result.exp_energy.mean());
      }
      if (kind == core::AnnealerKind::kThisWork) ours_energy = energy.mean();
      table.row()
          .add(group.nodes)
          .add(group.iterations)
          .add(core::annealer_kind_name(kind))
          .add(util::si_format(energy.mean(), "J"))
          .add(util::si_format(adc.mean(), "J"))
          .add(util::si_format(expshare.mean(), "J"))
          .add(energy.mean() / ours_energy, 1);
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf("paper Fig. 8(a) reductions -- CiM/FPGA: 732x/833x/1300x/1716x;"
              " CiM/ASIC: 401x/505x/1005x/1503x\n");
}

void figure_8b() {
  std::printf("\n-- Fig. 8(b): energy vs iteration, 1000-node instance --\n");
  const auto instance = bench::make_instance(1000, 0);
  const cost::ComponentCosts costs;
  util::Table table({"iteration", "This Work [J]", "CiM/FPGA [J]",
                     "CiM/ASIC [J]"});

  core::StandardSetup setup;
  setup.iterations = 1000;
  setup.trace.enabled = true;
  setup.trace.stride = 100;

  std::vector<std::vector<double>> curves;
  for (const auto kind : kKinds) {
    const auto annealer = core::make_annealer(kind, instance.model, setup);
    const auto result = annealer->run(123);
    std::vector<double> energies;
    for (const auto& snapshot : result.ledger_trajectory) {
      energies.push_back(
          cost::compute_cost(snapshot.ledger, costs, annealer->exp_unit())
              .total_energy);
    }
    curves.push_back(std::move(energies));
  }
  for (std::size_t point = 0; point < curves[0].size(); ++point) {
    table.row()
        .add(point * 100)
        .add(util::si_format(curves[0][point], "J"))
        .add(util::si_format(curves[1][point], "J"))
        .add(util::si_format(curves[2][point], "J"));
  }
  std::printf("%s", table.str().c_str());
  std::printf("paper: baselines grow rapidly and linearly; this work's "
              "slope is ~n/|F| (x the e^x saving) smaller.\n");
}

}  // namespace

int main() {
  bench::print_header("FIG8 -- energy comparison (paper Fig. 8)");
  figure_8a();
  figure_8b();
  return 0;
}
