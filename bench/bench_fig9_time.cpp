// Fig. 9 reproduction.
//  (a) average modeled time cost per run across the four node groups
//      (paper: ~8x reductions, 7.98x..8.15x);
//  (b) time vs iteration count on a 1000-node instance.
#include <cstdio>

#include "bench_common.hpp"
#include "cost/cost_model.hpp"

using namespace fecim;

namespace {

constexpr core::AnnealerKind kKinds[] = {core::AnnealerKind::kThisWork,
                                         core::AnnealerKind::kCimFpga,
                                         core::AnnealerKind::kCimAsic};

void figure_9a() {
  std::printf("\n-- Fig. 9(a): average time cost per run --\n");
  util::Table table({"nodes", "iters", "annealer", "time/run",
                     "ADC sense time", "reduction vs this work"});
  for (const auto& group : bench::node_groups()) {
    double ours_time = 0.0;
    for (const auto kind : kKinds) {
      util::RunningStats time;
      util::RunningStats adc_time;
      for (std::size_t i = 0; i < group.instances; ++i) {
        const auto instance = bench::make_instance(group.nodes, i);
        core::StandardSetup setup;
        setup.iterations = group.iterations;
        const auto annealer = core::make_annealer(kind, instance.model, setup);
        const auto result = core::run_campaign(
            *annealer, instance, bench::campaign_config(29 + i));
        time.add(result.time.mean());
        // The slot-serialized ADC share dominates both designs.
        const auto breakdown = cost::compute_cost(
            result.total_ledger, cost::ComponentCosts{}, annealer->exp_unit());
        adc_time.add(breakdown.adc_time /
                     static_cast<double>(result.runs));
      }
      if (kind == core::AnnealerKind::kThisWork) ours_time = time.mean();
      table.row()
          .add(group.nodes)
          .add(group.iterations)
          .add(core::annealer_kind_name(kind))
          .add(util::si_format(time.mean(), "s"))
          .add(util::si_format(adc_time.mean(), "s"))
          .add(time.mean() / ours_time, 2);
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf("paper Fig. 9(a) reductions -- CiM/FPGA: 8.01x/8.05x/8.10x/"
              "8.15x; CiM/ASIC: 7.98x/8.02x/8.04x/8.08x\n");
}

void figure_9b() {
  std::printf("\n-- Fig. 9(b): time vs iteration, 1000-node instance --\n");
  const auto instance = bench::make_instance(1000, 0);
  const cost::ComponentCosts costs;
  util::Table table({"iteration", "This Work [s]", "CiM/FPGA [s]",
                     "CiM/ASIC [s]"});

  core::StandardSetup setup;
  setup.iterations = 1000;
  setup.trace.enabled = true;
  setup.trace.stride = 100;

  std::vector<std::vector<double>> curves;
  for (const auto kind : kKinds) {
    const auto annealer = core::make_annealer(kind, instance.model, setup);
    const auto result = annealer->run(321);
    std::vector<double> times;
    for (const auto& snapshot : result.ledger_trajectory) {
      times.push_back(
          cost::compute_cost(snapshot.ledger, costs, annealer->exp_unit())
              .total_time);
    }
    curves.push_back(std::move(times));
  }
  for (std::size_t point = 0; point < curves[0].size(); ++point) {
    table.row()
        .add(point * 100)
        .add(util::si_format(curves[0][point], "s"))
        .add(util::si_format(curves[1][point], "s"))
        .add(util::si_format(curves[2][point], "s"));
  }
  std::printf("%s", table.str().c_str());
  std::printf("paper: the two baselines overlap (ADC-dominated); this work "
              "is ~8x below them.\n");
}

}  // namespace

int main() {
  bench::print_header("FIG9 -- time-cost comparison (paper Fig. 9)");
  figure_9a();
  figure_9b();
  return 0;
}
