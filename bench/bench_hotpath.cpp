// Hot-path throughput benchmark: optimized simulation kernels vs the seed
// algorithms preserved in crossbar/reference_kernels.hpp.
//
//   1. Analog engine evaluations/sec at N in {256, 1024, 4096}, in two
//      regimes: "analog" (deterministic device: ideal cells, noiseless ADC)
//      isolates the restructured arithmetic -- bit-plane column cache,
//      segment-class dedup, flip bitmask, V_BG memoization -- while
//      "analog-noisy" (Vth spread + read noise + ADC noise) tracks the
//      stochastic path: counter-keyed ziggurat streams (batched per column)
//      vs the reference kernel computing the identical keyed draws
//      scalar-wise.  "analog-noisy-tiled" (schema v5) runs the same noisy
//      regime over a 4-tile row grid (n/4-row tiles), timing the per-tile
//      conversion walk with digital partial-sum accumulation against the
//      tile-aware reference.
//   2. Normal-sampler throughput: the counter-keyed ziggurat
//      (NoiseStream::normal_fill) vs the sequential Box-Muller in
//      Rng::normal() it replaced on the noisy hot path.
//   3. In-situ annealer iterations/sec on the ideal engine (local-field
//      cache + zero-allocation loop vs seed loop with per-call n-byte
//      bitmap zero-fills and per-iteration allocations).
//   4. Instance ingestion: parsing a Gset-scale edge list (text -> Graph,
//      via the hardened read_gset on the shared instance_io core) and
//      programming it into a crossbar (quantize + map + ProgrammedArray).
//      Tracks the O(m) edge-merge path -- the seed's O(m^2) parallel-edge
//      scan made 20k-edge files minutes-slow -- but is never gated
//      (tools/bench_gate.py), since parse cost is not a hot-path signal.
//   5. Campaign wall-clock at N in {256, 1024} in two regimes: "analog"
//      (deterministic device) pits run_campaign (persistent pool,
//      zero-allocation inner loops, mutex-free reduction) against a
//      faithful legacy campaign (reference kernels, per-iteration
//      allocations, thread spawn per call, merge mutex); "analog-noisy"
//      measures replica-parallel scaling of the stochastic path
//      (threads=N vs threads=1 -- legal since counter-keyed noise streams
//      unbound runs from a shared RNG).  "analog-lifecycle" reruns the
//      deterministic campaign with an armed (never-tripping) run deadline
//      against the token-free path, pinning the amortized cancellation
//      poll's overhead at ~1.0x (PERF.md invariant).  The n=256 rows run in
//      every mode so check.sh smoke passes always have baseline rows to
//      gate on.  Schema v7 adds an "sb-ballistic" row: the simulated-
//      bifurcation backend's campaign wall-clock (parallel vs serial), with
//      a per-run replica-determinism assertion on its counter-keyed dither.
//      Schema v8 adds "analog-noisy-sharded": the noisy campaign across two
//      fork-spawned worker processes streaming journal-format records over
//      pipes (core/shard_runner.hpp) vs the in-process pool, asserting the
//      reduction stays bit-identical across the process boundary; every
//      campaign row now also carries its "workers" topology (0 =
//      in-process).
//
// Emits machine-readable JSON (default BENCH_hotpath.json; FECIM_BENCH_OUT
// overrides) so the perf trajectory is tracked across PRs.
// FECIM_BENCH_SMOKE=1 runs a seconds-scale subset; it skips the default
// JSON rewrite but honors an explicit FECIM_BENCH_OUT, which is how
// tools/check.sh captures smoke numbers for its regression gate.
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/acceptance.hpp"
#include "core/insitu_annealer.hpp"
#include "core/runner.hpp"
#include "core/shard_runner.hpp"
#include "core/schedule.hpp"
#include "crossbar/analog_engine.hpp"
#include "crossbar/array_cache.hpp"
#include "crossbar/ideal_engine.hpp"
#include "crossbar/reference_kernels.hpp"
#include "problems/generators.hpp"
#include "problems/gset_io.hpp"
#include "problems/maxcut.hpp"
#include "util/timer.hpp"

namespace {

using namespace fecim;

struct EngineRow {
  std::size_t n = 0;
  std::string engine;
  double optimized_per_sec = 0.0;
  double reference_per_sec = 0.0;
  double speedup = 0.0;
};

struct CampaignRow {
  std::size_t n = 0;
  std::string kind;  ///< "analog" (vs seed legacy) | "analog-noisy" (threads scaling)
  std::size_t runs = 0;
  std::size_t iterations = 0;
  std::size_t threads = 0;
  std::size_t workers = 0;  ///< forked shard processes; 0 = in-process pool
  double optimized_seconds = 0.0;
  double legacy_seconds = 0.0;
  double speedup = 0.0;
};

ising::IsingModel bench_model(std::size_t n, std::uint64_t seed) {
  // Average degree 24: Gset-like density, so per-cell decoding work is
  // representative of the paper's Max-Cut groups.
  return problems::maxcut_to_ising(problems::random_graph(
      n, 24.0, problems::WeightScheme::kPlusMinusOne, seed));
}

core::InSituConfig analog_config(bool noisy) {
  core::InSituConfig config;  // defaults: 8-bit weights, IR drop modeled
  if (noisy) {
    config.variation.vth_sigma = 0.03;
    config.variation.read_noise_rel = 0.02;
  } else {
    config.analog.adc.noise_lsb_rms = 0.0;  // deterministic readout
  }
  return config;
}

/// Minimum wall time over three repetitions: smoke-scale timed regions are
/// milliseconds long, where single samples scatter by tens of percent on a
/// busy machine; the minimum is the standard noise-robust estimator and
/// keeps the bench_gate rows stable run to run.
template <typename Body>
double best_of_three_seconds(const Body& body) {
  double best = std::numeric_limits<double>::infinity();
  for (int repeat = 0; repeat < 3; ++repeat) {
    util::WallTimer timer;
    body();
    best = std::min(best, timer.seconds());
  }
  return best;
}

// ---------------------------------------------------------------------------
// 1. Analog engine evaluations/sec.
// ---------------------------------------------------------------------------

struct AnalogWorkload {
  core::InSituConfig config;
  std::shared_ptr<const crossbar::ProgrammedArray> array;
  core::BgAnnealingSchedule schedule;
  ising::SpinVector spins;
  std::size_t flips_per_iteration = 2;
};

AnalogWorkload make_analog_workload(const ising::IsingModel& model,
                                    std::size_t iterations, bool noisy,
                                    const crossbar::TileShape& tiles = {}) {
  auto config = analog_config(noisy);
  config.tiles = tiles;
  const crossbar::QuantizedCouplings quantized(model.couplings(),
                                               config.mapping.bits);
  const crossbar::CrossbarMapping mapping(
      model.num_spins(), quantized.has_negative() ? 2 : 1, config.mapping);
  AnalogWorkload workload{
      config,
      std::make_shared<const crossbar::ProgrammedArray>(
          quantized, mapping, config.device, config.variation, 0x5eed,
          tiles),
      core::BgAnnealingSchedule([&] {
        auto schedule_config = config.schedule;
        schedule_config.total_iterations = iterations;
        return schedule_config;
      }()),
      {},
      2};
  util::Rng spin_rng(7);
  workload.spins = ising::random_spins(model.num_spins(), spin_rng);
  return workload;
}

template <typename Evaluate>
double measure_analog(const AnalogWorkload& workload, std::size_t iterations,
                      const Evaluate& evaluate) {
  util::Rng rng(42);
  const std::size_t n = workload.spins.size();
  const std::size_t t = workload.flips_per_iteration;

  // Pre-generate the proposal/signal stream so the timed region contains
  // engine evaluations only (both variants get the identical workload).
  std::vector<std::uint32_t> flip_stream(iterations * t);
  std::vector<crossbar::AnnealSignal> signals(iterations);
  {
    ising::FlipSet scratch;
    for (std::size_t it = 0; it < iterations; ++it) {
      ising::random_flip_set_into(scratch, n, t, rng);
      std::copy(scratch.begin(), scratch.end(),
                flip_stream.begin() + static_cast<std::ptrdiff_t>(it * t));
      const auto point = workload.schedule.at(it);
      signals[it] = {point.factor, point.vbg};
    }
  }

  // Best of three timed passes: smoke-scale iteration counts measure
  // milliseconds, where single samples scatter enough to trip the bench
  // gate on a loaded machine.
  ising::FlipSet flips(t);
  double checksum = 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (int repeat = 0; repeat < 3; ++repeat) {
    util::WallTimer timer;
    for (std::size_t it = 0; it < iterations; ++it) {
      for (std::size_t k = 0; k < t; ++k) flips[k] = flip_stream[it * t + k];
      checksum += evaluate(flips, signals[it]);
    }
    best = std::min(best, timer.seconds());
  }
  if (checksum == 0.12345) std::printf("(unreachable checksum)\n");
  return static_cast<double>(iterations) / best;
}

EngineRow bench_analog_engine(std::size_t n, std::size_t iterations,
                              bool noisy,
                              const crossbar::TileShape& tiles = {}) {
  const auto model = bench_model(n, 1000 + n);
  auto workload = make_analog_workload(model, iterations, noisy, tiles);

  crossbar::AnalogCrossbarEngine engine(workload.array,
                                        workload.config.analog);
  const double i_on_max =
      workload.array->on_current(workload.array->device_params().vbg_max);

  std::string name = noisy ? "analog-noisy" : "analog";
  if (!tiles.monolithic()) name += "-tiled";
  EngineRow row{n, std::move(name), 0.0, 0.0, 0.0};
  engine.begin_run(42);
  row.optimized_per_sec = measure_analog(
      workload, iterations,
      [&](const ising::FlipSet& flips, const crossbar::AnnealSignal& signal) {
        return engine.evaluate(workload.spins, flips, signal).e_inc;
      });
  auto noise = crossbar::ReadoutNoise::for_run(42);
  row.reference_per_sec = measure_analog(
      workload, iterations,
      [&](const ising::FlipSet& flips, const crossbar::AnnealSignal& signal) {
        return crossbar::reference::analog_evaluate(
                   *workload.array, engine.adc(), engine.ir_attenuation(),
                   engine.band_attenuations(),
                   i_on_max, workload.spins, flips, signal, noise)
            .e_inc;
      });
  row.speedup = row.optimized_per_sec / row.reference_per_sec;
  return row;
}

// ---------------------------------------------------------------------------
// 2. Normal-sampler throughput: counter-keyed ziggurat vs sequential
//    Box-Muller.  The noisy-analog regime consumes one normal per ADC
//    conversion (total input-referred sigma, see crossbar::ReadoutNoise),
//    so per-draw cost directly scales its stochastic overhead.
// ---------------------------------------------------------------------------

struct SamplerRow {
  double ziggurat_per_sec = 0.0;
  double box_muller_per_sec = 0.0;
  double speedup = 0.0;
};

SamplerRow bench_sampler(std::size_t draws) {
  SamplerRow row;
  constexpr std::size_t kBatch = 1024;
  std::vector<double> buffer(kBatch);
  double checksum = 0.0;
  {
    const util::NoiseStream stream(99, util::stream_site::kReadNoise);
    const double elapsed = best_of_three_seconds([&] {
      for (std::size_t base = 0; base < draws; base += kBatch) {
        stream.normal_fill(base, buffer);
        checksum += buffer[0];
      }
    });
    row.ziggurat_per_sec = static_cast<double>(draws) / elapsed;
  }
  {
    const double elapsed = best_of_three_seconds([&] {
      util::Rng rng(99);
      for (std::size_t i = 0; i < draws; ++i) checksum += rng.normal();
    });
    row.box_muller_per_sec = static_cast<double>(draws) / elapsed;
  }
  if (checksum == 0.12345) std::printf("(unreachable checksum)\n");
  row.speedup = row.ziggurat_per_sec / row.box_muller_per_sec;
  return row;
}

// ---------------------------------------------------------------------------
// 3. In-situ annealer iterations/sec on the ideal engine.
// ---------------------------------------------------------------------------

EngineRow bench_ideal_annealer(std::size_t n, std::size_t iterations) {
  const auto model =
      std::make_shared<const ising::IsingModel>(bench_model(n, 2000 + n));
  core::InSituConfig config;
  config.iterations = iterations;
  config.flips_per_iteration = 2;
  config.flip_selection = core::InSituConfig::FlipSelection::kRandom;
  config.engine = core::InSituConfig::EngineKind::kIdeal;
  const core::InSituCimAnnealer annealer(model, config);

  EngineRow row{n, "ideal-annealer", 0.0, 0.0, 0.0};
  {
    const double elapsed = best_of_three_seconds([&] {
      const auto result = annealer.run(99);
      if (result.ledger.iterations != iterations)
        std::printf("(iteration mismatch)\n");
    });
    row.optimized_per_sec = static_cast<double>(iterations) / elapsed;
  }
  {
    // Seed loop: cache-less engine (stateless CSR row walks with an n-byte
    // bitmap zero-fill per call), freshly-allocated flip sets, delta_energy
    // row walk on every accept.  State re-initializes inside the repeat so
    // every timed pass runs the identical workload.
    const double elapsed = best_of_three_seconds([&] {
      util::Rng rng(99);
      crossbar::IdealCrossbarEngine engine(*model, annealer.mapping(),
                                           crossbar::Accounting::kInSitu);
      auto spins = ising::random_spins(model->num_spins(), rng);
      double energy = model->energy(spins);
      double best = energy;
      const core::FractionalAcceptance acceptance;
      for (std::size_t it = 0; it < iterations; ++it) {
        const auto point = annealer.schedule().at(it);
        const auto flips = ising::random_flip_set(model->num_flippable(),
                                                  config.flips_per_iteration,
                                                  rng);
        // The seed engine evaluated through the reference VMV (fresh bitmap
        // allocation + zero-fill per call).
        crossbar::EincResult evaluation;
        evaluation.raw_vmv =
            crossbar::reference::incremental_vmv(*model, spins, flips);
        evaluation.e_inc = evaluation.raw_vmv * point.factor;
        if (acceptance.accept(config.acceptance_gain * evaluation.e_inc,
                              rng)) {
          energy += model->delta_energy(spins, flips);
          ising::flip_in_place(spins, flips);
          if (energy < best) best = energy;
        }
      }
      if (best > energy) std::printf("(unreachable)\n");
    });
    row.reference_per_sec = static_cast<double>(iterations) / elapsed;
  }
  row.speedup = row.optimized_per_sec / row.reference_per_sec;
  return row;
}

// ---------------------------------------------------------------------------
// 4. Instance ingestion: Gset-scale parse + crossbar programming.
// ---------------------------------------------------------------------------

struct IngestionRow {
  std::size_t n = 0;
  std::size_t edges = 0;
  double parse_seconds = 0.0;
  double program_seconds = 0.0;
  /// Second programming of the same digest through the array cache: the
  /// steady-state cost a batch/serve workload pays per repeated instance.
  double program_seconds_cached = 0.0;
  double edges_per_sec_parse = 0.0;
};

IngestionRow bench_ingestion(std::size_t n, double avg_degree) {
  const auto graph = problems::random_graph(
      n, avg_degree, problems::WeightScheme::kPlusMinusOne, 4000 + n);
  std::string text;
  {
    std::ostringstream out;
    problems::write_gset(graph, out);
    text = out.str();
  }

  IngestionRow row;
  row.n = n;
  row.edges = graph.num_edges();

  std::size_t checksum = 0;
  row.parse_seconds = best_of_three_seconds([&] {
    std::istringstream in(text);
    const auto parsed = problems::read_gset(in);
    checksum += parsed.num_edges();
  });
  row.edges_per_sec_parse =
      static_cast<double>(row.edges) / row.parse_seconds;

  const auto model = problems::maxcut_to_ising(graph);
  const core::InSituConfig config;  // default device / mapping / variation
  row.program_seconds = best_of_three_seconds([&] {
    const crossbar::QuantizedCouplings quantized(model.couplings(),
                                                 config.mapping.bits);
    const crossbar::CrossbarMapping mapping(
        model.num_spins(), quantized.has_negative() ? 2 : 1, config.mapping);
    const crossbar::ProgrammedArray array(quantized, mapping, config.device,
                                          config.variation, 0x5eed);
    checksum += array.device_params().vbg_max > 0.0;
  });

  // Cache-hit programming: the first get_or_build pays the cold build, the
  // timed repeats measure the digest-keyed lookup a batch/serve workload
  // sees on every repeated instance (includes re-hashing the couplings).
  {
    const crossbar::QuantizedCouplings quantized(model.couplings(),
                                                 config.mapping.bits);
    const crossbar::CrossbarMapping mapping(
        model.num_spins(), quantized.has_negative() ? 2 : 1, config.mapping);
    crossbar::ArrayCache cache;
    cache.get_or_build(quantized, mapping, config.device, config.variation,
                       0x5eed, {});
    row.program_seconds_cached = best_of_three_seconds([&] {
      const auto array = cache.get_or_build(quantized, mapping, config.device,
                                            config.variation, 0x5eed, {});
      checksum += array->device_params().vbg_max > 0.0;
    });
  }
  if (checksum == 1) std::printf("(unreachable checksum)\n");
  return row;
}

// ---------------------------------------------------------------------------
// 5. Campaign wall-clock: optimized runner vs faithful legacy campaign.
// ---------------------------------------------------------------------------

/// The seed fork-join helper: spawn `threads` std::threads per call, shared
/// atomic claim counter (no pool, no early-stop).
void legacy_parallel_for(std::size_t count,
                         const std::function<void(std::size_t)>& body,
                         std::size_t threads) {
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      body(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
}

/// The seed in-situ analog run loop: reference engine kernel, freshly
/// allocated flip sets, delta_energy CSR row walks.
double legacy_insitu_run(const ising::IsingModel& model,
                         const AnalogWorkload& workload,
                         const crossbar::AnalogCrossbarEngine& probe,
                         double i_on_max, std::size_t iterations,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  auto noise = crossbar::ReadoutNoise::for_run(seed);
  auto spins = ising::random_spins(model.num_spins(), rng);
  double energy = model.energy(spins);
  double best = energy;
  const core::FractionalAcceptance acceptance;
  for (std::size_t it = 0; it < iterations; ++it) {
    const auto point = workload.schedule.at(it);
    const auto flips = ising::random_flip_set(model.num_flippable(), 2, rng);
    const auto evaluation = crossbar::reference::analog_evaluate(
        *workload.array, probe.adc(), probe.ir_attenuation(), probe.band_attenuations(), i_on_max, spins,
        flips, {point.factor, point.vbg}, noise);
    if (acceptance.accept(4.0 * evaluation.e_inc, rng)) {
      energy += model.delta_energy(spins, flips);
      ising::flip_in_place(spins, flips);
      if (energy < best) best = energy;
    }
  }
  return best;
}

core::ProblemInstance campaign_instance(std::size_t n) {
  return problems::make_maxcut_problem(
      "hotpath-n" + std::to_string(n),
      problems::random_graph(n, 24.0, problems::WeightScheme::kPlusMinusOne,
                             3000 + n),
      8, 3000 + n);
}

CampaignRow bench_campaign(std::size_t n, std::size_t runs,
                           std::size_t iterations) {
  const auto instance = campaign_instance(n);

  CampaignRow row;
  row.n = n;
  row.kind = "analog";
  row.runs = runs;
  row.iterations = iterations;
  row.threads = util::worker_threads();

  auto config = analog_config(/*noisy=*/false);
  config.iterations = iterations;
  config.flips_per_iteration = 2;
  config.flip_selection = core::InSituConfig::FlipSelection::kRandom;
  const core::InSituCimAnnealer annealer(instance.model, config);
  core::CampaignConfig campaign;
  campaign.runs = runs;

  row.optimized_seconds = best_of_three_seconds([&] {
    const auto result = core::run_campaign(annealer, instance, campaign);
    if (result.runs != runs) std::printf("(campaign run mismatch)\n");
  });

  {
    auto workload =
        make_analog_workload(*instance.model, iterations, /*noisy=*/false);
    workload.array = annealer.array();  // identical programmed weights
    const crossbar::AnalogCrossbarEngine probe(workload.array, config.analog);
    const double i_on_max =
        workload.array->on_current(workload.array->device_params().vbg_max);
    util::Rng seeder(campaign.base_seed);
    std::vector<std::uint64_t> seeds(runs);
    for (auto& s : seeds) s = seeder();

    row.legacy_seconds = best_of_three_seconds([&] {
      util::RunningStats best;
      std::mutex merge_mutex;  // the seed runner's serialization point
      legacy_parallel_for(
          runs,
          [&](std::size_t run) {
            const double b = legacy_insitu_run(*instance.model, workload,
                                               probe, i_on_max, iterations,
                                               seeds[run]);
            const std::lock_guard<std::mutex> lock(merge_mutex);
            best.add(b);
          },
          std::min<std::size_t>(row.threads, runs));
      if (best.count() != runs) std::printf("(legacy run mismatch)\n");
    });
  }

  row.speedup = row.legacy_seconds / row.optimized_seconds;
  return row;
}

/// Replica-parallel noisy-analog campaign: counter-keyed noise streams made
/// parallel noisy evaluation legal (runs no longer serialize on one RNG), so
/// the same run_campaign call scales across workers.  legacy_seconds holds
/// the threads=1 wall time, optimized_seconds the all-cores wall time; on a
/// single-core host the ratio degenerates to ~1.
CampaignRow bench_noisy_campaign(std::size_t n, std::size_t runs,
                                 std::size_t iterations) {
  const auto instance = campaign_instance(n);

  CampaignRow row;
  row.n = n;
  row.kind = "analog-noisy";
  row.runs = runs;
  row.iterations = iterations;
  row.threads = util::worker_threads();

  auto config = analog_config(/*noisy=*/true);
  config.iterations = iterations;
  config.flips_per_iteration = 2;
  config.flip_selection = core::InSituConfig::FlipSelection::kRandom;
  const core::InSituCimAnnealer annealer(instance.model, config);

  core::CampaignConfig serial;
  serial.runs = runs;
  serial.threads = 1;
  core::CampaignConfig parallel = serial;
  parallel.threads = row.threads;

  double serial_objective = 0.0;
  row.legacy_seconds = best_of_three_seconds([&] {
    const auto result = core::run_campaign(annealer, instance, serial);
    serial_objective = result.objective.mean();
  });
  row.optimized_seconds = best_of_three_seconds([&] {
    const auto result = core::run_campaign(annealer, instance, parallel);
    // Replica parallelism must not change results (keyed noise streams).
    if (result.objective.mean() != serial_objective)
      std::printf("(noisy campaign thread-determinism mismatch)\n");
  });

  row.speedup = row.legacy_seconds / row.optimized_seconds;
  return row;
}

/// Sharded noisy-analog campaign row (schema v8): the same noisy campaign
/// as "analog-noisy", executed by two fork-spawned worker processes
/// streaming journal-format records back over pipes (core/shard_runner.hpp)
/// vs the in-process serial path.  The row tracks multi-process campaign
/// wall-clock across PRs and hard-asserts process-topology determinism --
/// the sharded mean must equal the in-process mean bitwise on every bench
/// run.  Skipped (not emitted) on platforms without fork.
CampaignRow bench_sharded_campaign(std::size_t n, std::size_t runs,
                                   std::size_t iterations) {
  const auto instance = campaign_instance(n);

  CampaignRow row;
  row.n = n;
  row.kind = "analog-noisy-sharded";
  row.runs = runs;
  row.iterations = iterations;
  row.threads = util::worker_threads();
  row.workers = 2;

  auto config = analog_config(/*noisy=*/true);
  config.iterations = iterations;
  config.flips_per_iteration = 2;
  config.flip_selection = core::InSituConfig::FlipSelection::kRandom;
  const core::InSituCimAnnealer annealer(instance.model, config);

  core::CampaignConfig in_process;
  in_process.runs = runs;
  in_process.threads = 1;
  core::CampaignConfig sharded = in_process;
  sharded.workers = row.workers;

  double in_process_objective = 0.0;
  row.legacy_seconds = best_of_three_seconds([&] {
    const auto result = core::run_campaign(annealer, instance, in_process);
    in_process_objective = result.objective.mean();
  });
  row.optimized_seconds = best_of_three_seconds([&] {
    const auto result = core::run_campaign(annealer, instance, sharded);
    // Records cross a process boundary as journal-format lines; the
    // reduction must still be bit-identical to the in-process pool.
    if (result.objective.mean() != in_process_objective)
      std::printf("(sharded campaign process-determinism mismatch)\n");
  });

  row.speedup = row.legacy_seconds / row.optimized_seconds;
  return row;
}

/// Lifecycle-overhead row: the identical deterministic campaign with and
/// without an active CancellationToken (a generous run deadline arms the
/// amortized in-loop poll; the token-free run reduces it to one predictable
/// branch per kCancellationCheckStride iterations).  The speedup is the
/// no-token/with-token wall-clock ratio -- PERF.md pins it at ~1.0, i.e. the
/// run lifecycle costs under a percent of campaign throughput, and the bench
/// gate fails the build if token overhead ever grows past its tolerance.
CampaignRow bench_lifecycle_campaign(std::size_t n, std::size_t runs,
                                     std::size_t iterations) {
  const auto instance = campaign_instance(n);

  CampaignRow row;
  row.n = n;
  row.kind = "analog-lifecycle";
  row.runs = runs;
  row.iterations = iterations;
  row.threads = util::worker_threads();

  auto config = analog_config(/*noisy=*/false);
  config.iterations = iterations;
  config.flips_per_iteration = 2;
  config.flip_selection = core::InSituConfig::FlipSelection::kRandom;
  const core::InSituCimAnnealer annealer(instance.model, config);

  core::CampaignConfig plain;
  plain.runs = runs;
  core::CampaignConfig with_deadlines = plain;
  with_deadlines.run_timeout_seconds = 3600.0;  // never trips; polls stay hot

  double plain_energy = 0.0;
  row.legacy_seconds = best_of_three_seconds([&] {
    const auto result = core::run_campaign(annealer, instance, plain);
    plain_energy = result.per_run.front().best_energy;
  });
  row.optimized_seconds = best_of_three_seconds([&] {
    const auto result = core::run_campaign(annealer, instance, with_deadlines);
    // An untripped deadline must not perturb the run stream.
    if (result.per_run.front().best_energy != plain_energy)
      std::printf("(lifecycle campaign determinism mismatch)\n");
  });

  row.speedup = row.legacy_seconds / row.optimized_seconds;
  return row;
}

/// Simulated-bifurcation campaign row (schema v7): the SB backend on the
/// same analog array class, replica-parallel vs serial.  SB's dither stream
/// is counter-keyed exactly like the readout noise, so parallel runs must be
/// bit-identical to serial ones -- this row both tracks SB campaign
/// wall-clock across PRs and asserts that thread-invariance on every bench
/// run.  The step budget is scaled by 2/n so the row senses about as many
/// columns as the in-situ campaign rows (one SB step = n field readouts).
CampaignRow bench_sb_campaign(std::size_t n, std::size_t runs,
                              std::size_t insitu_iterations) {
  const auto instance = campaign_instance(n);

  CampaignRow row;
  row.n = n;
  row.kind = "sb-ballistic";
  row.runs = runs;
  row.iterations =
      std::max<std::size_t>(10, insitu_iterations * 2 / n);
  row.threads = util::worker_threads();

  core::StandardSetup setup;
  setup.iterations = row.iterations;
  const auto annealer = core::make_annealer(core::AnnealerKind::kSbBallistic,
                                            instance.model, setup);

  core::CampaignConfig serial;
  serial.runs = runs;
  serial.threads = 1;
  core::CampaignConfig parallel = serial;
  parallel.threads = row.threads;

  double serial_objective = 0.0;
  row.legacy_seconds = best_of_three_seconds([&] {
    const auto result = core::run_campaign(*annealer, instance, serial);
    serial_objective = result.objective.mean();
  });
  row.optimized_seconds = best_of_three_seconds([&] {
    const auto result = core::run_campaign(*annealer, instance, parallel);
    // Counter-keyed dither: replica parallelism must not change results.
    if (result.objective.mean() != serial_objective)
      std::printf("(sb campaign thread-determinism mismatch)\n");
  });

  row.speedup = row.legacy_seconds / row.optimized_seconds;
  return row;
}

/// Amortized batch row: the identical short campaign constructed and run
/// `repeats` times (one fresh annealer each, the way run_batch and the serve
/// loop replay a repeated manifest entry).  optimized shares one
/// digest-keyed array cache across the repeats -- the array programs once
/// and every later annealer construction is a lookup; legacy programs a
/// fresh array per construction (the pre-cache behavior).  The speedup is
/// the amortization factor a duplicate-heavy batch/serve workload sees.
CampaignRow bench_cached_batch_campaign(std::size_t n, std::size_t repeats,
                                        std::size_t runs,
                                        std::size_t iterations) {
  const auto instance = campaign_instance(n);

  CampaignRow row;
  row.n = n;
  row.kind = "analog-batch-cached";
  row.runs = repeats * runs;
  row.iterations = iterations;
  row.threads = util::worker_threads();

  auto config = analog_config(/*noisy=*/false);
  config.iterations = iterations;
  config.flips_per_iteration = 2;
  config.flip_selection = core::InSituConfig::FlipSelection::kRandom;
  core::CampaignConfig campaign;
  campaign.runs = runs;

  double objective_uncached = 0.0;
  row.legacy_seconds = best_of_three_seconds([&] {
    objective_uncached = 0.0;
    for (std::size_t repeat = 0; repeat < repeats; ++repeat) {
      const core::InSituCimAnnealer annealer(instance.model, config);
      const auto result = core::run_campaign(annealer, instance, campaign);
      objective_uncached += result.objective.mean();
    }
  });
  row.optimized_seconds = best_of_three_seconds([&] {
    // Fresh cache inside the timed region: the first repeat pays the cold
    // build, so the row reports honest end-to-end amortization, not a
    // warmed-up lower bound.
    auto cached_config = config;
    cached_config.array_cache = std::make_shared<crossbar::ArrayCache>();
    double objective = 0.0;
    for (std::size_t repeat = 0; repeat < repeats; ++repeat) {
      const core::InSituCimAnnealer annealer(instance.model, cached_config);
      const auto result = core::run_campaign(annealer, instance, campaign);
      objective += result.objective.mean();
    }
    // Shared arrays must not perturb results (PERF.md invariants 1-2).
    if (objective != objective_uncached)
      std::printf("(cached batch determinism mismatch)\n");
  });

  row.speedup = row.legacy_seconds / row.optimized_seconds;
  return row;
}

// ---------------------------------------------------------------------------

void write_json(const std::string& path, const std::string& mode,
                const SamplerRow& sampler, const IngestionRow& ingestion,
                const std::vector<EngineRow>& engines,
                const std::vector<CampaignRow>& campaigns) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"fecim-bench-hotpath-v8\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", mode.c_str());
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", util::worker_threads());
  std::fprintf(f,
               "  \"sampler\": {\"normals_per_sec_ziggurat\": %.1f, "
               "\"normals_per_sec_box_muller\": %.1f, \"speedup\": %.2f},\n",
               sampler.ziggurat_per_sec, sampler.box_muller_per_sec,
               sampler.speedup);
  // Tracked for the perf trajectory, never gated (see tools/bench_gate.py).
  std::fprintf(f,
               "  \"ingestion\": {\"n\": %zu, \"edges\": %zu, "
               "\"parse_seconds\": %.6f, \"program_seconds\": %.6f, "
               "\"program_seconds_cached\": %.9f, "
               "\"edges_per_sec_parse\": %.1f},\n",
               ingestion.n, ingestion.edges, ingestion.parse_seconds,
               ingestion.program_seconds, ingestion.program_seconds_cached,
               ingestion.edges_per_sec_parse);
  std::fprintf(f, "  \"engine_eval\": [\n");
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const auto& row = engines[i];
    std::fprintf(f,
                 "    {\"n\": %zu, \"engine\": \"%s\", "
                 "\"evals_per_sec_optimized\": %.1f, "
                 "\"evals_per_sec_reference\": %.1f, \"speedup\": %.2f}%s\n",
                 row.n, row.engine.c_str(), row.optimized_per_sec,
                 row.reference_per_sec, row.speedup,
                 i + 1 < engines.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"campaign\": [\n");
  for (std::size_t i = 0; i < campaigns.size(); ++i) {
    const auto& row = campaigns[i];
    // %.6f: the smoke campaign completes in milliseconds, and the gate
    // derives a throughput signal from this value -- %.3f quantization
    // would inject up to +-50 % error into it.
    std::fprintf(f,
                 "    {\"n\": %zu, \"kind\": \"%s\", \"runs\": %zu, "
                 "\"iterations\": %zu, "
                 "\"threads\": %zu, \"workers\": %zu, "
                 "\"wall_seconds_optimized\": %.6f, "
                 "\"wall_seconds_legacy\": %.6f, \"speedup\": %.2f}%s\n",
                 row.n, row.kind.c_str(), row.runs, row.iterations,
                 row.threads, row.workers, row.optimized_seconds,
                 row.legacy_seconds, row.speedup,
                 i + 1 < campaigns.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const bool smoke = util::env_flag("FECIM_BENCH_SMOKE", false);
  const bool full = util::full_reproduction_mode();
  bench::print_header("hot-path throughput: optimized kernels vs seed reference");

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{256}
            : std::vector<std::size_t>{256, 1024, 4096};
  // Smoke needs enough iterations that even the slowest regime (noisy
  // reference, iterations / 4) times a multi-millisecond region.
  const std::size_t engine_iterations = smoke ? 8000 : (full ? 200000 : 50000);

  const SamplerRow sampler = bench_sampler(smoke ? 2'000'000 : 20'000'000);
  std::printf(
      "normal sampler: ziggurat %.1f M/s vs Box-Muller %.1f M/s (%.2fx)\n",
      sampler.ziggurat_per_sec / 1e6, sampler.box_muller_per_sec / 1e6,
      sampler.speedup);

  // Gset-scale ingestion: 20k edges in the tracked modes (the size class
  // the acceptance criterion names), a smaller slice for smoke runs.
  const IngestionRow ingestion =
      smoke ? bench_ingestion(800, 12.0) : bench_ingestion(2000, 20.0);
  std::printf(
      "ingestion: n=%zu m=%zu parse %.3fs (%.0f edges/s), program %.3fs, "
      "cached reprogram %.6fs (%.0fx)\n",
      ingestion.n, ingestion.edges, ingestion.parse_seconds,
      ingestion.edges_per_sec_parse, ingestion.program_seconds,
      ingestion.program_seconds_cached,
      ingestion.program_seconds / ingestion.program_seconds_cached);

  util::Table table({"n", "engine", "opt evals/s", "ref evals/s", "speedup"});
  std::vector<EngineRow> engines;
  for (const auto n : sizes) {
    engines.push_back(bench_analog_engine(n, engine_iterations, false));
    engines.push_back(bench_analog_engine(n, engine_iterations / 4, true));
    // Tile-partitioned noisy sweep: 4 row bands (n/4-row tiles) exercise
    // the per-tile conversion walk the TilePlan execution model added --
    // n=1024 is the tracked size class, the n=256 smoke row gives check.sh
    // a baseline row to gate against.
    engines.push_back(bench_analog_engine(n, engine_iterations / 4, true,
                                          crossbar::TileShape{n / 4, 0}));
    engines.push_back(bench_ideal_annealer(n, engine_iterations));
    for (auto it = engines.end() - 4; it != engines.end(); ++it)
      table.row()
          .add(it->n)
          .add(it->engine)
          .add(it->optimized_per_sec, 0)
          .add(it->reference_per_sec, 0)
          .add(it->speedup, 2);
  }
  std::printf("%s\n", table.str().c_str());

  std::vector<CampaignRow> campaigns;
  {
    // n=256 rows run in every mode so the check.sh smoke pass always has a
    // baseline row to gate against; non-smoke modes add the n=1024 rows.
    const std::vector<std::size_t> campaign_sizes =
        smoke ? std::vector<std::size_t>{256}
              : std::vector<std::size_t>{256, 1024};
    // The smoke campaign runs the same workload as the reduced-mode
    // baseline row: an identical (runs, iterations) pair removes the
    // amortization bias a shorter campaign would carry, and the tens of
    // milliseconds it takes are what the gate's throughput signal needs to
    // sit clear of timer noise.
    const std::size_t runs = full ? 64 : 16;
    const std::size_t iterations = full ? 20000 : 5000;
    for (const auto n : campaign_sizes) {
      campaigns.push_back(bench_campaign(n, runs, iterations));
      campaigns.push_back(bench_noisy_campaign(n, runs, iterations / 4));
      campaigns.push_back(bench_lifecycle_campaign(n, runs, iterations));
      // Duplicate-heavy batch amortization: 6 repeats of a short campaign
      // on one instance, shared cache vs per-construction programming.
      campaigns.push_back(
          bench_cached_batch_campaign(n, 6, 4, iterations / 4));
      // SB dynamics on the same array class (schema v7): tracked campaign
      // wall-clock plus a hard replica-determinism assertion per run.
      campaigns.push_back(bench_sb_campaign(n, runs, iterations));
      // Multi-process sharding (schema v8): the noisy campaign across two
      // forked workers, with a process-topology determinism assertion.
      // Platforms without fork simply do not emit the row.
      if (core::shard_runner_supported())
        campaigns.push_back(bench_sharded_campaign(n, runs, iterations / 4));
    }
    for (const auto& row : campaigns) {
      const char* reference_label = "legacy";
      if (row.kind == "analog-noisy") reference_label = "serial";
      if (row.kind == "sb-ballistic") reference_label = "serial";
      if (row.kind == "analog-lifecycle") reference_label = "no-token";
      if (row.kind == "analog-batch-cached") reference_label = "uncached";
      if (row.kind == "analog-noisy-sharded") reference_label = "in-process";
      std::printf(
          "campaign n=%zu %s runs=%zu iters=%zu threads=%zu workers=%zu: "
          "optimized %.3fs, %s %.3fs, speedup %.2fx\n",
          row.n, row.kind.c_str(), row.runs, row.iterations, row.threads,
          row.workers, row.optimized_seconds, reference_label,
          row.legacy_seconds, row.speedup);
    }
  }

  // Smoke runs never overwrite the tracked baseline, but an explicit
  // FECIM_BENCH_OUT still captures their numbers (tools/check.sh compares
  // the smoke speedups against BENCH_hotpath.json to gate regressions).
  const char* out = std::getenv("FECIM_BENCH_OUT");
  if (!smoke || out != nullptr) {
    write_json(out != nullptr ? out : "BENCH_hotpath.json",
               smoke ? "smoke" : (full ? "full" : "reduced"), sampler,
               ingestion, engines, campaigns);
  }
  return 0;
}
