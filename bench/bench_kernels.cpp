// PERF: google-benchmark microbenchmarks of the arithmetic kernels -- the
// host-side cost of direct-E vs incremental-E evaluation, the analog
// crossbar read, and the flip-set generators.
#include <benchmark/benchmark.h>

#include "crossbar/analog_engine.hpp"
#include "crossbar/ideal_engine.hpp"
#include "ising/incremental.hpp"
#include "problems/generators.hpp"
#include "problems/maxcut.hpp"

using namespace fecim;

namespace {

struct KernelFixture {
  explicit KernelFixture(std::size_t n)
      : graph(problems::gset_like_instance(n, 7)),
        model(problems::maxcut_to_ising(graph)),
        rng(1),
        spins(ising::random_spins(n, rng)) {}

  problems::Graph graph;
  ising::IsingModel model;
  util::Rng rng;
  ising::SpinVector spins;
};

void BM_DirectEnergy(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.model.energy(fx.spins));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DirectEnergy)->Arg(800)->Arg(1000)->Arg(2000)->Arg(3000)
    ->Complexity(benchmark::oN);  // sparse instance: O(nnz) ~ O(n)

void BM_IncrementalVmv(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)));
  const auto flips = ising::random_flip_set(fx.model.num_spins(), 2, fx.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.model.incremental_vmv(fx.spins, flips));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IncrementalVmv)->Arg(800)->Arg(1000)->Arg(2000)->Arg(3000)
    ->Complexity(benchmark::o1);  // O(|F| * degree), size-independent

void BM_AnalogEngineEvaluate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  KernelFixture fx(n);
  const crossbar::QuantizedCouplings quantized(fx.model.couplings(), 8);
  const crossbar::CrossbarMapping mapping(
      n, quantized.has_negative() ? 2 : 1, {});
  const auto array = std::make_shared<const crossbar::ProgrammedArray>(
      quantized, mapping, device::DgFefetParams{},
      device::VariationParams{0.03, 0.02, 0.0, 0.0}, 5);
  crossbar::AnalogCrossbarEngine engine(array, {});
  const auto flips = ising::random_flip_set(n, 2, fx.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(fx.spins, flips, {0.5, 0.5}));
  }
}
BENCHMARK(BM_AnalogEngineEvaluate)->Arg(800)->Arg(2000);

void BM_RandomFlipSet(benchmark::State& state) {
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ising::random_flip_set(3000, static_cast<std::size_t>(state.range(0)),
                               rng));
  }
}
BENCHMARK(BM_RandomFlipSet)->Arg(1)->Arg(2)->Arg(8);

void BM_BitSliceQuantization(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const crossbar::QuantizedCouplings quantized(fx.model.couplings(), 8);
    benchmark::DoNotOptimize(quantized.nonzeros());
  }
}
BENCHMARK(BM_BitSliceQuantization)->Arg(800)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
