// Table 1 reproduction: the COP-solver summary row for this work (measured
// on the 3000-node group) next to the literature rows the paper reprints.
#include <cstdio>

#include "bench_common.hpp"

using namespace fecim;

int main() {
  bench::print_header("TABLE1 -- COP solver summary (paper Table 1)");

  // Measured row: the 3000-node group at the paper's 100k-iteration budget.
  const std::size_t iterations = 100000;
  util::RunningStats time_stats;
  util::RunningStats energy_stats;
  util::RunningStats success_stats;
  const std::size_t instances =
      util::full_reproduction_mode() ? 3 : 2;
  for (std::size_t i = 0; i < instances; ++i) {
    const auto instance = bench::make_instance(3000, i);
    core::StandardSetup setup;
    setup.iterations = iterations;
    const auto annealer = core::make_annealer(core::AnnealerKind::kThisWork,
                                              instance.model, setup);
    const auto result = core::run_campaign(
        *annealer, instance, bench::campaign_config(53 + i));
    time_stats.add(result.time.mean());
    energy_stats.add(result.energy.mean());
    success_stats.add(result.success_rate);
  }

  util::Table table({"solver", "COP", "complexity", "e^x", "crossbar",
                     "problem size", "time-to-sol", "energy-to-sol",
                     "success"});
  table.row().add("[39] memristor Hopfield").add("Max-Cut").add("O(n^2)")
      .add("yes").add("memristor").add("60").add("6.6 us").add("0.07 uJ")
      .add("65 %*");
  table.row().add("[7] FeFET CiM annealer").add("graph coloring")
      .add("O(n^2)").add("yes").add("FeFET").add("21").add("5.1 us")
      .add("0.2 uJ").add("-");
  table.row().add("[13] ReRAM SA").add("knapsack").add("O(n^2)").add("yes")
      .add("RRAM").add("10").add("3.8 us").add("-").add("92.4 %*");
  table.row().add("[15] HyCiM").add("quadratic knapsack").add("O(n^2)")
      .add("yes").add("FeFET").add("100").add("1.3 ms").add("2.1 uJ")
      .add("98.54 %*");
  table.row().add("[14] C-Nash").add("Nash equilibrium").add("O(n^2)")
      .add("yes").add("FeFET").add("104").add("0.08 s").add("-")
      .add("81.9 %*");
  table.row().add("This work (measured)").add("Max-Cut").add("O(n)")
      .add("no").add("DG FeFET").add("3000")
      .add(util::si_format(time_stats.mean(), "s"))
      .add(util::si_format(energy_stats.mean(), "J"))
      .add(std::to_string(static_cast<int>(success_stats.mean() * 100)) +
           " %");
  std::printf("%s", table.str().c_str());
  std::printf("* literature rows reprinted from the paper (Table 1); the "
              "last row is measured by this repository.\n");
  std::printf("paper's own row: 3000 nodes, 4.6 ms, 0.9 uJ, 98 %% success, "
              "complexity O(n), no e^x.\n");
  return 0;
}
