// Device playground: program/erase the Preisach FeFET, sweep its hysteresis
// loop, and walk the DG FeFET's four-input product + f(T) realization --
// everything Figs. 2 and 6 are built from, interactively printable.
//
//   build/examples/example_device_explorer
#include <cstdio>

#include "core/ft_calibration.hpp"
#include "device/dg_fefet.hpp"
#include "device/preisach.hpp"
#include "util/table.hpp"

int main() {
  using namespace fecim;

  std::printf("== Preisach FeFET: polarization hysteresis ==\n");
  device::PreisachFefet fefet;
  util::Table loop({"V_G sweep [V]", "P (up branch)", "P (down branch)"});
  // Major loop: sweep up from -5 V, then down from +5 V.
  std::vector<double> up;
  device::PreisachFefet sweep_up;
  sweep_up.apply_gate_voltage(-5.0);
  for (double v = -5.0; v <= 5.0; v += 1.0) {
    sweep_up.apply_gate_voltage(v);
    up.push_back(sweep_up.polarization());
  }
  device::PreisachFefet sweep_down;
  sweep_down.apply_gate_voltage(5.0);
  std::size_t idx = up.size();
  for (double v = 5.0; v >= -5.0; v -= 1.0) {
    sweep_down.apply_gate_voltage(v);
    loop.row().add(v, 1).add(up[--idx], 3).add(sweep_down.polarization(), 3);
  }
  std::printf("%s", loop.str().c_str());

  fefet.program();
  const double vth_low = fefet.threshold_voltage();
  fefet.erase();
  const double vth_high = fefet.threshold_voltage();
  std::printf("program -> V_TH = %.3f V; erase -> V_TH = %.3f V "
              "(memory window %.3f V)\n\n", vth_low, vth_high,
              vth_high - vth_low);

  std::printf("== DG FeFET: four-input product I_SL = x * G * y * z ==\n");
  const device::DgFefetParams params;
  util::Table product({"x (FG)", "G (stored)", "y (DL)", "z = V_BG [V]",
                       "I_SL"});
  for (const bool x : {false, true})
    for (const bool g : {false, true})
      for (const bool y : {false, true}) {
        const device::DgFefet cell(params, g);
        product.row()
            .add(x ? "1" : "0")
            .add(g ? "1" : "0")
            .add(y ? "1" : "0")
            .add(0.7, 1)
            .add(util::si_format(cell.isl_current(x, y, 0.7), "A"));
      }
  std::printf("%s", product.str().c_str());

  std::printf("\n== In-situ f(T): normalized I_SL across the BG ladder ==\n");
  const auto report = core::evaluate_ft_approximation(
      params, ising::FractionalFactor{}, circuit::BgDac{});
  std::printf("RMS error vs f(T) = 1/(-0.006T+5) - 0.2: %.4f "
              "(max %.4f, monotone %s)\n", report.rms_error, report.max_error,
              report.monotone ? "yes" : "no");
  for (std::size_t i = 0; i < report.samples.size(); i += 10) {
    const auto& s = report.samples[i];
    std::printf("  V_BG=%.2f V  T=%6.1f  f=%.4f  device=%.4f\n", s.vbg,
                s.temperature, s.target, s.device);
  }
  return 0;
}
