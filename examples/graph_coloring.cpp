// Graph coloring on the CiM annealer: QUBO one-hot encoding -> Ising with
// fields -> ancilla folding -> in-situ annealing -> decoded coloring.
//
//   build/examples/example_graph_coloring
#include <cstdio>

#include "core/annealer_factory.hpp"
#include "problems/coloring.hpp"
#include "problems/generators.hpp"

int main() {
  using namespace fecim;

  const auto graph = problems::random_graph(
      12, 2.5, problems::WeightScheme::kUnit, 11);
  const auto greedy = problems::greedy_coloring(graph);
  std::uint32_t greedy_colors = 0;
  for (const auto c : greedy) greedy_colors = std::max(greedy_colors, c + 1);
  std::printf("graph: %zu vertices, %zu edges; greedy uses %u colors\n",
              graph.num_vertices(), graph.num_edges(), greedy_colors);

  // Realistic workflow: try the greedy palette size first, widen by one
  // color if the annealer cannot satisfy every constraint.
  for (std::size_t k = greedy_colors; k <= greedy_colors + 1; ++k) {
    const auto encoding = problems::coloring_to_qubo(graph, k, 2.0);
    std::printf("\ntrying k = %zu: QUBO with %zu binary variables\n", k,
                encoding.qubo.num_variables());

    // Fields from the one-hot penalty fold into one pinned ancilla spin.
    const auto model = std::make_shared<const ising::IsingModel>(
        encoding.qubo.to_ising().with_ancilla());

    core::StandardSetup setup;
    setup.iterations = 20000;
    setup.acceptance_gain = 4.0;  // softer comparator for constraint problems
    // Constraint-exact problems need tighter programming than Max-Cut:
    // +-30 mV V_TH spread statically corrupts the penalty weights, while a
    // program-verify loop reaching +-10 mV preserves them (see EXPERIMENTS.md).
    setup.variation = {0.01, 0.02, 0.0, 0.0};
    const auto annealer =
        core::make_annealer(core::AnnealerKind::kThisWork, model, setup);

    std::size_t best_violations = ~std::size_t{0};
    std::vector<std::uint32_t> best_colors;
    for (std::uint64_t seed = 0; seed < 10 && best_violations > 0; ++seed) {
      auto spins = annealer->run(seed).best_spins;
      spins.pop_back();  // drop the ancilla
      const auto x = ising::binary_from_spins(spins);
      const auto violations =
          problems::coloring_violations(graph, encoding, x);
      if (violations < best_violations) {
        best_violations = violations;
        best_colors = problems::decode_coloring(encoding, x);
      }
    }

    std::printf("best assignment: %zu constraint violations\n",
                best_violations);
    if (best_violations == 0) {
      std::printf("valid %zu-coloring found; vertex colors:", k);
      for (const auto c : best_colors) std::printf(" %u", c);
      std::printf("\n");
      return 0;
    }
  }
  return 1;
}
