// Graph coloring on the CiM annealer through the unified campaign API:
// make_coloring_problem encodes the one-hot QUBO and run_campaign executes
// parallel replicas; the decode hook reports conflicts/feasibility, and the
// winning run's spins decode back into an explicit coloring.
//
//   build/examples/example_graph_coloring
#include <cstdio>

#include "core/annealer_factory.hpp"
#include "core/runner.hpp"
#include "problems/coloring.hpp"
#include "problems/generators.hpp"
#include "problems/instances.hpp"

int main() {
  using namespace fecim;

  const auto graph = problems::random_graph(
      12, 2.5, problems::WeightScheme::kUnit, 11);
  const auto greedy = problems::greedy_coloring(graph);
  std::uint32_t greedy_colors = 0;
  for (const auto c : greedy) greedy_colors = std::max(greedy_colors, c + 1);
  std::printf("graph: %zu vertices, %zu edges; greedy uses %u colors\n",
              graph.num_vertices(), graph.num_edges(), greedy_colors);

  // Realistic workflow: try the greedy palette size first, widen by one
  // color if the annealer cannot satisfy every constraint.
  for (std::size_t k = greedy_colors; k <= greedy_colors + 1; ++k) {
    const auto problem = problems::make_coloring_problem(
        "coloring-example", graph, k, 2.0);
    std::printf("\ntrying k = %zu: %s (%zu spins)\n", k,
                problem.summary.c_str(), problem.model->num_spins());

    core::StandardSetup setup;
    setup.iterations = 20000;
    setup.acceptance_gain = 4.0;  // softer comparator for constraint problems
    // Constraint-exact problems need tighter programming than Max-Cut:
    // +-30 mV V_TH spread statically corrupts the penalty weights, while a
    // program-verify loop reaching +-10 mV preserves them.
    setup.variation = {0.01, 0.02, 0.0, 0.0};
    const auto annealer =
        core::make_annealer(core::AnnealerKind::kThisWork, problem.model,
                            setup);

    core::CampaignConfig config;
    config.runs = 10;
    const auto result = core::run_campaign(*annealer, problem, config);
    std::printf("feasible runs: %.0f %%, mean violations %.1f\n",
                result.feasible_rate * 100.0, result.violations.mean());

    if (result.best_run < result.per_run.size()) {
      const auto& winner = result.per_run[result.best_run];
      // Re-decode the winning configuration into explicit vertex colors.
      const auto colors =
          problems::coloring_from_spins(graph, k, winner.best_spins);
      std::printf("valid %zu-coloring found (%.0f colors used); "
                  "vertex colors:",
                  k, winner.solution.objective);
      for (const auto c : colors) std::printf(" %u", c);
      std::printf("\n");
      return 0;
    }
  }
  return 1;
}
