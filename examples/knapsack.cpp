// 0/1 knapsack on the CiM annealer through the unified campaign API: the
// slack-bit QUBO encoding (the HyCiM [15] problem class) behind
// make_knapsack_problem, parallel replicas via run_campaign, and the decoded
// value/weight feasibility against the exact DP optimum.
//
//   build/examples/example_knapsack
#include <cstdio>

#include "core/annealer_factory.hpp"
#include "core/runner.hpp"
#include "problems/instances.hpp"
#include "problems/knapsack.hpp"

int main() {
  using namespace fecim;

  // A 12-item instance with integer weights; capacity defaults to ~40 % of
  // the total weight.
  const auto instance = problems::random_knapsack(12, 5, 30.0);
  const auto problem =
      problems::make_knapsack_problem("knapsack-example", instance);
  std::printf("knapsack: %s; DP optimum = %.0f\n", problem.summary.c_str(),
              problem.reference_objective);

  core::StandardSetup setup;
  setup.iterations = 30000;
  setup.acceptance_gain = 4.0;
  // Tight program-verify: constraint weights must survive D2D variation.
  setup.variation = {0.01, 0.02, 0.0, 0.0};
  const auto annealer =
      core::make_annealer(core::AnnealerKind::kThisWork, problem.model, setup);

  core::CampaignConfig config;
  config.runs = 10;
  const auto result = core::run_campaign(*annealer, problem, config);

  if (result.best_run >= result.per_run.size()) {
    std::printf("no feasible packing found (mean capacity excess %.1f)\n",
                result.violations.mean());
    return 1;
  }
  const auto& winner = result.per_run[result.best_run];
  const double best_value = winner.solution.objective;
  std::printf("annealed: best value %.0f (%.1f %% of optimum), feasible "
              "runs %.0f %%, success %.0f %%\n",
              best_value, 100.0 * best_value / problem.reference_objective,
              result.feasible_rate * 100.0, result.success_rate * 100.0);

  // Re-decode the winning run's spins into the explicit item selection.
  const auto solution =
      problems::knapsack_from_spins(instance, winner.best_spins);
  std::printf("selected items (weight %.0f / %.0f):", solution.weight,
              instance.capacity);
  for (std::size_t i = 0; i < solution.selection.size(); ++i)
    if (solution.selection[i]) std::printf(" %zu", i);
  std::printf("\n");
  return 0;
}
