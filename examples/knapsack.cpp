// 0/1 knapsack on the CiM annealer: slack-bit QUBO encoding (the HyCiM [15]
// problem class), solved by the in-situ flow and checked against the exact
// dynamic-programming optimum.
//
//   build/examples/example_knapsack
#include <cstdio>

#include "core/annealer_factory.hpp"
#include "problems/knapsack.hpp"
#include "util/rng.hpp"

int main() {
  using namespace fecim;

  // A 12-item instance with integer weights.
  util::Rng rng(5);
  problems::KnapsackInstance instance;
  instance.capacity = 30;
  for (int i = 0; i < 12; ++i) {
    instance.items.push_back(
        {static_cast<double>(rng.uniform_int(3, 20)),
         static_cast<double>(rng.uniform_int(2, 12))});
  }
  const double optimum = problems::knapsack_optimal_value(instance);
  std::printf("knapsack: %zu items, capacity %.0f, DP optimum = %.0f\n",
              instance.items.size(), instance.capacity, optimum);

  const auto encoding = problems::knapsack_to_qubo(instance);
  std::printf("QUBO: %zu item bits + %zu slack bits, penalty A = %.0f\n",
              encoding.num_items, encoding.num_slack_bits, encoding.penalty);

  const auto model = std::make_shared<const ising::IsingModel>(
      encoding.qubo.to_ising().with_ancilla());
  core::StandardSetup setup;
  setup.iterations = 30000;
  setup.acceptance_gain = 4.0;
  // Tight program-verify: constraint weights must survive D2D variation.
  setup.variation = {0.01, 0.02, 0.0, 0.0};
  const auto annealer =
      core::make_annealer(core::AnnealerKind::kThisWork, model, setup);

  problems::KnapsackSolution best;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto spins = annealer->run(seed).best_spins;
    spins.pop_back();
    const auto solution = problems::decode_knapsack(
        instance, encoding, ising::binary_from_spins(spins));
    if (solution.feasible && solution.value > best.value) best = solution;
  }

  std::printf("annealed: value %.0f, weight %.0f / %.0f (%s), "
              "%.1f %% of optimum\n",
              best.value, best.weight, instance.capacity,
              best.feasible ? "feasible" : "INFEASIBLE",
              100.0 * best.value / optimum);
  std::printf("selected items:");
  for (std::size_t i = 0; i < best.selection.size(); ++i)
    if (best.selection[i]) std::printf(" %zu", i);
  std::printf("\n");
  return 0;
}
