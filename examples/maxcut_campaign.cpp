// Max-Cut campaign: the paper's evaluation workflow on one instance --
// all three annealers, multiple Monte-Carlo runs, quality + hardware cost
// side by side.  Accepts an optional Gset file path to run on a real
// Stanford Gset instance.
//
//   build/examples/example_maxcut_campaign [path/to/G14.txt]
#include <cstdio>

#include "core/annealer_factory.hpp"
#include "core/runner.hpp"
#include "problems/generators.hpp"
#include "problems/gset_io.hpp"
#include "problems/instances.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fecim;

  problems::Graph graph = argc > 1
                              ? problems::read_gset_file(argv[1])
                              : problems::gset_like_instance(800, 1);
  std::printf("instance: %zu vertices, %zu edges (%s)\n",
              graph.num_vertices(), graph.num_edges(),
              argc > 1 ? argv[1] : "generated Gset-style");

  auto instance =
      problems::make_maxcut_problem("campaign", std::move(graph), 48);
  std::printf("reference cut: %.0f\n\n", instance.reference_objective);

  core::StandardSetup setup;
  setup.iterations = 700;  // the paper's 800-node budget
  core::CampaignConfig config;
  config.runs = 20;

  util::Table table({"annealer", "norm. cut", "success", "energy/run",
                     "time/run", "ADC conv/run"});
  for (const auto kind :
       {core::AnnealerKind::kThisWork, core::AnnealerKind::kThisWorkIdeal,
        core::AnnealerKind::kCimFpga, core::AnnealerKind::kCimAsic,
        core::AnnealerKind::kMesa}) {
    const auto annealer = core::make_annealer(kind, instance.model, setup);
    const auto result = core::run_campaign(*annealer, instance, config);
    table.row()
        .add(core::annealer_kind_name(kind))
        .add(result.normalized.mean(), 3)
        .add(result.success_rate * 100.0, 0)
        .add(util::si_format(result.energy.mean(), "J"))
        .add(util::si_format(result.time.mean(), "s"))
        .add(static_cast<long long>(result.total_ledger.adc_conversions /
                                    result.runs));
  }
  std::printf("%s", table.str().c_str());
  std::printf("\n'This Work (ideal)' runs the same dataflow without device/"
              "ADC noise -- the analog annealer gives it nothing away.\n");
  return 0;
}
