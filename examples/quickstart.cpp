// Quickstart: solve a Max-Cut instance on the ferroelectric CiM in-situ
// annealer in ~20 lines of library code.
//
//   build/examples/example_quickstart
#include <cstdio>

#include "core/annealer_factory.hpp"
#include "core/runner.hpp"
#include "problems/generators.hpp"
#include "problems/instances.hpp"
#include "util/table.hpp"

int main() {
  using namespace fecim;

  // 1. A COP instance: a Gset-style random Max-Cut graph.
  auto graph = problems::random_graph(200, 12.0,
                                      problems::WeightScheme::kUnit, 42);
  std::printf("graph: %zu vertices, %zu edges\n", graph.num_vertices(),
              graph.num_edges());

  // 2. Map it to the Ising form the crossbar stores (J = w/2, zero field).
  //    The ProblemInstance bundles the model, the best-known reference and
  //    the spin -> domain decode hook.
  auto problem = problems::make_maxcut_problem("quickstart", std::move(graph));
  std::printf("best-known cut (reference): %.0f\n",
              problem.reference_objective);

  // 3. Build "this work": DG FeFET analog crossbar + tunable-BG in-situ
  //    annealing flow, with default device variation switched on.
  core::StandardSetup setup;
  setup.iterations = 2000;
  auto annealer = core::make_annealer(core::AnnealerKind::kThisWork,
                                      problem.model, setup);

  // 4. One annealing run, decoded back into the domain objective.
  const auto result = annealer->run(/*seed=*/1);
  const double cut = problem.decode(result.best_spins).objective;
  std::printf("annealed cut: %.0f (%.1f %% of reference)\n", cut,
              100.0 * cut / problem.reference_objective);
  std::printf("accepted %llu of %llu moves (%llu uphill)\n",
              static_cast<unsigned long long>(result.accepted_moves),
              static_cast<unsigned long long>(result.ledger.iterations),
              static_cast<unsigned long long>(result.uphill_accepted));

  // 5. Hardware cost of the run, from the event ledger.
  const auto cost = cost::compute_cost(result.ledger, cost::ComponentCosts{},
                                       annealer->exp_unit());
  std::printf("modeled hardware cost: %s, %s  (%llu ADC conversions, "
              "no e^x unit)\n",
              util::si_format(cost.total_energy, "J").c_str(),
              util::si_format(cost.total_time, "s").c_str(),
              static_cast<unsigned long long>(result.ledger.adc_conversions));
  return 0;
}
