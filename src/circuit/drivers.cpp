#include "circuit/drivers.hpp"

#include <algorithm>
#include <cmath>

namespace fecim::circuit {

double BgDac::quantize(double v) const noexcept {
  const double clamped = std::clamp(v, v_min, v_max);
  const double steps = std::round((clamped - v_min) / step);
  return std::min(v_min + steps * step, v_max);
}

std::size_t BgDac::num_levels() const noexcept {
  return static_cast<std::size_t>(std::round((v_max - v_min) / step)) + 1;
}

double BgDac::level_voltage(std::size_t level) const {
  FECIM_EXPECTS(level < num_levels());
  return v_min + static_cast<double>(level) * step;
}

}  // namespace fecim::circuit
