// Peripheral drive circuitry behaviour: the FG/DL binary drivers that encode
// sigma_r / sigma_c, the analog back-gate DAC that encodes f(T), and the
// 8:1 column multiplexer.
#pragma once

#include <cstddef>

#include "util/assert.hpp"

namespace fecim::circuit {

/// Back-gate DAC: V_BG is generated on a uniform grid (paper: 0.7 V .. 0 V
/// with a 0.01 V gradient).  quantize() snaps an ideal voltage onto the grid
/// and clamps to the range.
struct BgDac {
  double v_min = 0.0;
  double v_max = 0.7;
  double step = 0.01;

  double quantize(double v) const noexcept;
  std::size_t num_levels() const noexcept;
  /// Grid voltage for a level index (0 -> v_min).
  double level_voltage(std::size_t level) const;
};

/// Binary line driver: maps a ternary encoded spin input in {-1, 0, +1} to
/// the wire voltage of the selected polarity pass (the crossbar handles
/// positive and negative inputs in separate passes; Sec. 3.3).
struct LineDriver {
  double v_high = 1.0;

  /// Drive voltage for this input during a pass of the given polarity
  /// (+1 pass drives +1 inputs, -1 pass drives -1 inputs).
  double drive(int input, int pass_polarity) const noexcept {
    return input == pass_polarity ? v_high : 0.0;
  }
};

/// 8:1 column multiplexer: `ratio` columns share one ADC and are sensed
/// sequentially; sensing m active columns in a group takes m slots.
struct ColumnMux {
  std::size_t ratio = 8;

  std::size_t group_of_column(std::size_t column) const {
    FECIM_EXPECTS(ratio > 0);
    return column / ratio;
  }
  std::size_t num_groups(std::size_t columns) const {
    FECIM_EXPECTS(ratio > 0);
    return (columns + ratio - 1) / ratio;
  }
};

}  // namespace fecim::circuit
