#include "circuit/mna.hpp"

#include "util/assert.hpp"

namespace fecim::circuit {

namespace {

struct LadderSystem {
  linalg::CsrMatrix conductance;
  std::vector<double> injection;
};

LadderSystem build_ladder(std::span<const double> cell_currents,
                          double v_drive, double r_segment) {
  FECIM_EXPECTS(!cell_currents.empty());
  FECIM_EXPECTS(v_drive > 0.0);
  FECIM_EXPECTS(r_segment > 0.0);
  const std::size_t n = cell_currents.size();
  const double g_wire = 1.0 / r_segment;

  linalg::CsrMatrix::Builder builder(n, n);
  std::vector<double> injection(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    FECIM_EXPECTS(cell_currents[k] >= 0.0);
    const double g_cell = cell_currents[k] / v_drive;
    double diag = g_cell;
    // Wire to the previous node (toward the far end).
    if (k > 0) {
      diag += g_wire;
      builder.add(k, k - 1, -g_wire);
    }
    // Wire to the next node; the last node connects to the virtual ground.
    diag += g_wire;
    if (k + 1 < n) builder.add(k, k + 1, -g_wire);
    builder.add(k, k, diag);
    injection[k] = g_cell * v_drive;
  }
  return {builder.build(), std::move(injection)};
}

}  // namespace

double sense_column_current(std::span<const double> cell_currents,
                            double v_drive, double r_segment,
                            const linalg::SolveOptions& options) {
  if (r_segment <= 0.0) {
    double sum = 0.0;
    for (const double i : cell_currents) sum += i;
    return sum;
  }
  const auto voltages =
      column_node_voltages(cell_currents, v_drive, r_segment, options);
  // Sensed current = current through the final segment into the 0 V node.
  return voltages.back() / r_segment;
}

std::vector<double> column_node_voltages(std::span<const double> cell_currents,
                                         double v_drive, double r_segment,
                                         const linalg::SolveOptions& options) {
  auto system = build_ladder(cell_currents, v_drive, r_segment);
  std::vector<double> voltages(cell_currents.size(), 0.0);
  const auto report = linalg::conjugate_gradient(
      system.conductance, system.injection, voltages, options);
  if (!report.converged)
    throw contract_error("mna: conjugate gradient failed to converge");
  return voltages;
}

}  // namespace fecim::circuit
