// Modified nodal analysis of one crossbar column: the DC operating point of
// a source line with distributed wire resistance and linearized device
// conductances.  This is the repo's stand-in for the SPECTRE DC solve.
//
// Topology (cells 0..n-1, sense amplifier at the far end holding virtual
// ground):
//
//   DL (v_drive) --g_0--+            g_k = i_k / v_drive
//                       | v_0
//   DL (v_drive) --g_1--+--r--+ ...--r--[sense @ 0 V]
//                             | v_1
//
// Each cell k would ideally contribute i_k; the finite wire resistance lifts
// the internal source-line nodes above ground, reducing the cell's effective
// drive.  The sensed current is the current through the last wire segment.
#pragma once

#include <span>
#include <vector>

#include "linalg/linear_solver.hpp"

namespace fecim::circuit {

/// Solve the ladder and return the sensed current at the virtual-ground
/// terminal.  `cell_currents[k]` is the ideal (zero-IR-drop) current of cell
/// k, cells ordered from the far end toward the sense amplifier;
/// `r_segment` is the wire resistance between adjacent cells (ohm).
double sense_column_current(std::span<const double> cell_currents,
                            double v_drive, double r_segment,
                            const linalg::SolveOptions& options = {});

/// Node voltages of the same network (for tests and IR-drop inspection).
std::vector<double> column_node_voltages(std::span<const double> cell_currents,
                                         double v_drive, double r_segment,
                                         const linalg::SolveOptions& options = {});

}  // namespace fecim::circuit
