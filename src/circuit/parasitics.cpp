#include "circuit/parasitics.hpp"

#include <algorithm>

#include "circuit/mna.hpp"
#include "util/assert.hpp"

namespace fecim::circuit {

ParasiticEstimate estimate_line_parasitics(std::size_t cells_per_line,
                                           double max_cell_current,
                                           double drive_voltage,
                                           const WireTech& tech) {
  FECIM_EXPECTS(cells_per_line > 0);
  FECIM_EXPECTS(drive_voltage > 0.0);
  ParasiticEstimate est{};
  est.segment_resistance = tech.r_per_um * tech.cell_pitch_um;
  est.segment_capacitance = tech.c_per_um * tech.cell_pitch_um;
  est.line_resistance =
      est.segment_resistance * static_cast<double>(cells_per_line);
  est.line_capacitance =
      est.segment_capacitance * static_cast<double>(cells_per_line);
  // Distributed RC line Elmore delay ~ R C / 2.
  est.elmore_delay = 0.5 * est.line_resistance * est.line_capacitance;
  est.ir_attenuation = ir_attenuation_factor(
      cells_per_line, est.segment_resistance, max_cell_current, drive_voltage);
  return est;
}

double ir_attenuation_factor(std::size_t cells, double r_segment,
                             double cell_current, double drive_voltage) {
  FECIM_EXPECTS(cells > 0);
  FECIM_EXPECTS(drive_voltage > 0.0);
  FECIM_EXPECTS(r_segment >= 0.0);
  FECIM_EXPECTS(cell_current >= 0.0);
  if (r_segment == 0.0 || cell_current == 0.0) return 1.0;

  // Worst case: all cells conduct at the full on-current.  Solve the ladder
  // exactly with the MNA column network.
  std::vector<double> currents(cells, cell_current);
  const double sensed =
      sense_column_current(currents, drive_voltage, r_segment);
  const double ideal = cell_current * static_cast<double>(cells);
  FECIM_ENSURES(sensed > 0.0);
  return std::min(1.0, sensed / ideal);
}

}  // namespace fecim::circuit
