// DESTINY-like wiring parasitic estimator [37] for the crossbar array at a
// 22 nm-class metal stack: per-segment R/C from the cell pitch, Elmore
// delay of the source/data lines, and the worst-case IR-drop attenuation
// used by the analog crossbar engine's fast path.
#pragma once

#include <cstddef>

namespace fecim::circuit {

struct WireTech {
  double r_per_um = 4.0;      ///< wire resistance [ohm/um] (22 nm Mx level)
  double c_per_um = 0.20e-15; ///< wire capacitance [F/um]
  double cell_pitch_um = 0.25;///< crossbar cell pitch [um]
};

struct ParasiticEstimate {
  double segment_resistance;   ///< per-cell wire segment [ohm]
  double segment_capacitance;  ///< per-cell wire segment [F]
  double line_resistance;      ///< full line (rows cells) [ohm]
  double line_capacitance;     ///< full line [F]
  double elmore_delay;         ///< distributed RC: 0.5 R C [s]
  double ir_attenuation;       ///< worst-case sensed-current factor in (0, 1]
};

/// Parasitics of a source line with `cells_per_line` cells, each able to
/// sink up to `max_cell_current` at `drive_voltage` (linearized device).
ParasiticEstimate estimate_line_parasitics(std::size_t cells_per_line,
                                           double max_cell_current,
                                           double drive_voltage,
                                           const WireTech& tech = {});

/// First-order worst-case IR attenuation of a current-summing line: every
/// cell on, uniform per-cell conductance g = i_cell / v_drive, wire segment
/// resistance r.  Returns sensed/ideal in (0, 1].
double ir_attenuation_factor(std::size_t cells, double r_segment,
                             double cell_current, double drive_voltage);

}  // namespace fecim::circuit
