#include "circuit/sar_adc.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace fecim::circuit {

SarAdc::SarAdc(const SarAdcParams& params) : params_(params) {
  FECIM_EXPECTS(params_.bits >= 1 && params_.bits <= 24);
  FECIM_EXPECTS(params_.full_scale_current > 0.0);
  FECIM_EXPECTS(params_.noise_lsb_rms >= 0.0);
  max_code_ = (std::uint32_t{1} << params_.bits) - 1;
  lsb_ = params_.full_scale_current / static_cast<double>(max_code_ + 1);
  inv_lsb_ = 1.0 / lsb_;
  noise_current_ = params_.noise_lsb_rms * lsb_;
}

double SarAdc::current_from_code(std::uint32_t code) const noexcept {
  const auto clamped = std::min(code, max_code_);
  return (static_cast<double>(clamped) + 0.5) * lsb_;
}

}  // namespace fecim::circuit
