#include "circuit/sar_adc.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace fecim::circuit {

SarAdc::SarAdc(const SarAdcParams& params) : params_(params) {
  FECIM_EXPECTS(params_.bits >= 1 && params_.bits <= 24);
  FECIM_EXPECTS(params_.full_scale_current > 0.0);
  FECIM_EXPECTS(params_.noise_lsb_rms >= 0.0);
  max_code_ = (std::uint32_t{1} << params_.bits) - 1;
  lsb_ = params_.full_scale_current / static_cast<double>(max_code_ + 1);
}

std::uint32_t SarAdc::convert(double current, util::Rng& rng) const {
  double noisy = current;
  if (params_.noise_lsb_rms > 0.0)
    noisy += rng.normal(0.0, params_.noise_lsb_rms) * lsb_;
  return convert_ideal(noisy);
}

std::uint32_t SarAdc::convert_ideal(double current) const {
  if (current <= 0.0) return 0;
  // Mid-tread transfer (0.5 LSB comparator offset): unbiased rounding, so
  // quantization error does not accumulate a systematic sign across the
  // shift-and-add of the bit-sliced columns.
  const double code = std::floor(current / lsb_ + 0.5);
  if (code >= static_cast<double>(max_code_)) return max_code_;
  return static_cast<std::uint32_t>(code);
}

double SarAdc::current_from_code(std::uint32_t code) const noexcept {
  const auto clamped = std::min(code, max_code_);
  return (static_cast<double>(clamped) + 0.5) * lsb_;
}

}  // namespace fecim::circuit
