// Behavioural model of the 13-bit SAR ADC the paper instantiates [36]
// (kT/C-noise-cancelling SAR, 40 MS/s, scaled to 22 nm; 8 columns share one
// converter through a MUX).
//
// The model captures what reaches the algorithm: input clamping, uniform
// quantization, and input-referred noise (comparator + residual kT/C) in
// LSBs.  Energy and latency per conversion live in fecim::cost.
#pragma once

#include <cmath>
#include <cstdint>

namespace fecim::circuit {

struct SarAdcParams {
  int bits = 13;
  double full_scale_current = 12e-6;  ///< current mapped to the top code [A]
  double noise_lsb_rms = 0.5;         ///< input-referred noise [LSB rms]
};

class SarAdc {
 public:
  explicit SarAdc(const SarAdcParams& params = {});

  /// Quantize a sensed column current into a code in [0, 2^bits - 1].
  /// Negative inputs clamp to 0, overrange clamps to full scale.
  ///
  /// `noise_z` is the conversion's standard-normal input-noise draw, keyed
  /// per conversion index by the caller (util::NoiseStream, site kAdcNoise);
  /// it is scaled by noise_lsb_rms * LSB internally.  Passing the draw
  /// instead of a generator keeps convert() a pure function, so conversions
  /// can be computed in any order or in batches.  Defined inline: the noisy
  /// engine performs one call per present segment per pass.
  std::uint32_t convert(double current, double noise_z) const noexcept {
    return convert_ideal(current + noise_z * noise_current_);
  }

  /// Noiseless transfer (also the shared quantizer behind convert()).
  std::uint32_t convert_ideal(double current) const noexcept {
    if (current <= 0.0) return 0;
    // Mid-tread transfer (0.5 LSB comparator offset): unbiased rounding, so
    // quantization error does not accumulate a systematic sign across the
    // shift-and-add of the bit-sliced columns.  The reciprocal multiply
    // replaces a divide on the per-conversion hot path; it can move a
    // current sitting exactly on a comparator threshold by one code, which
    // is within the 0.5 LSB accuracy the model claims.
    const double code = std::floor(current * inv_lsb_ + 0.5);
    if (code >= static_cast<double>(max_code_)) return max_code_;
    return static_cast<std::uint32_t>(code);
  }

  /// convert_ideal() with the code returned as an (exact integer-valued)
  /// double, written branch-free so the per-slot conversion loop of the
  /// stochastic sweep auto-vectorizes (floor + two blends).  Equal to
  /// double(convert_ideal(current)) for every input: both clamps select
  /// between the same exactly-representable values.
  double convert_ideal_d(double current) const noexcept {
    const double max_code = static_cast<double>(max_code_);
    const double code = std::floor(current * inv_lsb_ + 0.5);
    const double clamped = code >= max_code ? max_code : code;
    return current <= 0.0 ? 0.0 : clamped;
  }

  /// Current represented by one LSB.
  double lsb_current() const noexcept { return lsb_; }

  /// Input-referred noise sigma in amps (noise_lsb_rms * lsb); the engines
  /// fold it into the per-conversion total readout sigma.
  double noise_sigma_current() const noexcept { return noise_current_; }

  /// Reconstruct the current a code stands for (mid-rise).
  double current_from_code(std::uint32_t code) const noexcept;

  std::uint32_t max_code() const noexcept { return max_code_; }
  const SarAdcParams& params() const noexcept { return params_; }

 private:
  SarAdcParams params_;
  std::uint32_t max_code_;
  double lsb_;
  double inv_lsb_;        ///< 1 / lsb, hot-path reciprocal
  double noise_current_;  ///< noise_lsb_rms * lsb, the sigma in amps
};

}  // namespace fecim::circuit
