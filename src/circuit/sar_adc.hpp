// Behavioural model of the 13-bit SAR ADC the paper instantiates [36]
// (kT/C-noise-cancelling SAR, 40 MS/s, scaled to 22 nm; 8 columns share one
// converter through a MUX).
//
// The model captures what reaches the algorithm: input clamping, uniform
// quantization, and input-referred noise (comparator + residual kT/C) in
// LSBs.  Energy and latency per conversion live in fecim::cost.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace fecim::circuit {

struct SarAdcParams {
  int bits = 13;
  double full_scale_current = 12e-6;  ///< current mapped to the top code [A]
  double noise_lsb_rms = 0.5;         ///< input-referred noise [LSB rms]
};

class SarAdc {
 public:
  explicit SarAdc(const SarAdcParams& params = {});

  /// Quantize a sensed column current into a code in [0, 2^bits - 1].
  /// Negative inputs clamp to 0, overrange clamps to full scale.
  std::uint32_t convert(double current, util::Rng& rng) const;

  /// Noiseless transfer (for calibration and tests).
  std::uint32_t convert_ideal(double current) const;

  /// Current represented by one LSB.
  double lsb_current() const noexcept { return lsb_; }

  /// Reconstruct the current a code stands for (mid-rise).
  double current_from_code(std::uint32_t code) const noexcept;

  std::uint32_t max_code() const noexcept { return max_code_; }
  const SarAdcParams& params() const noexcept { return params_; }

 private:
  SarAdcParams params_;
  std::uint32_t max_code_;
  double lsb_;
};

}  // namespace fecim::circuit
