#include "core/acceptance.hpp"

#include <cmath>

namespace fecim::core {

MetropolisAcceptance::Decision MetropolisAcceptance::accept(
    double delta_e, double temperature, util::Rng& rng) const {
  if (delta_e <= 0.0) return {true, false};
  if (temperature <= 0.0) return {false, true};
  return {rng.uniform01() < std::exp(-delta_e / temperature), true};
}

}  // namespace fecim::core
