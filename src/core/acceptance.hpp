// Move acceptance rules.
//
// FractionalAcceptance -- Algorithm 1, lines 7-13: accept when E_inc <= 0,
// otherwise accept when E_inc <= rand(0,1).  No transcendental function;
// the temperature dependence is already inside E_inc via f(T).
//
// MetropolisAcceptance -- the baselines' rule: accept when dE <= 0,
// otherwise when rand(0,1) < exp(-dE/T); each uphill evaluation invokes the
// e^x hardware unit, which the decision reports so the annealer can charge
// the ledger.
#pragma once

#include "util/rng.hpp"

namespace fecim::core {

struct FractionalAcceptance {
  bool accept(double e_inc, util::Rng& rng) const {
    if (e_inc <= 0.0) return true;
    return e_inc <= rng.uniform01();
  }
};

struct MetropolisAcceptance {
  struct Decision {
    bool accepted;
    bool exp_evaluated;
  };

  Decision accept(double delta_e, double temperature, util::Rng& rng) const;
};

}  // namespace fecim::core
