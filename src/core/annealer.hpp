// Common annealer interface and run-result types.
//
// An Annealer is immutable after construction; run(seed) is const and
// thread-safe, so experiment campaigns execute runs in parallel.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/run_lifecycle.hpp"
#include "cost/components.hpp"
#include "crossbar/cost_ledger.hpp"
#include "ising/ising_model.hpp"

namespace fecim::core {

/// One recorded point of the annealing trajectory (energy vs iteration and
/// the control signal driving the schedule at that moment).
struct TrajectoryPoint {
  std::uint64_t iteration;
  double energy;       ///< exact Ising energy of the current configuration
  double best_energy;  ///< best energy observed so far
  double control;      ///< V_BG [V] for the in-situ annealer, T for baselines
};

/// Cumulative hardware-event snapshot, for energy/time-vs-iteration curves
/// (Fig. 8(b) / 9(b)).
struct LedgerSnapshot {
  std::uint64_t iteration;
  crossbar::CostLedger ledger;
};

struct TraceOptions {
  bool enabled = false;
  std::uint64_t stride = 1;  ///< record every `stride` iterations
};

struct AnnealResult {
  ising::SpinVector best_spins;
  double best_energy = 0.0;
  ising::SpinVector final_spins;
  double final_energy = 0.0;
  crossbar::CostLedger ledger;
  std::uint64_t accepted_moves = 0;
  std::uint64_t uphill_accepted = 0;
  std::vector<TrajectoryPoint> trajectory;
  std::vector<LedgerSnapshot> ledger_trajectory;
};

class Annealer {
 public:
  virtual ~Annealer() = default;

  /// Execute one independent annealing run.  Thread-safe.
  AnnealResult run(std::uint64_t seed) const {
    return run(seed, CancellationToken::none());
  }

  /// Execute one run under a cooperative cancellation token: the sweep loop
  /// polls the token every kCancellationCheckStride iterations (including
  /// iteration 0) and aborts by throwing run_timeout_error /
  /// run_cancelled_error.  An inactive token must cost no more than one
  /// predictable branch per stride (pinned by the "analog-lifecycle" bench
  /// row).  Thread-safe.
  virtual AnnealResult run(std::uint64_t seed,
                           const CancellationToken& token) const = 0;

  /// Exponential-unit hardware this annealer carries (for cost translation).
  virtual cost::ExpUnit exp_unit() const noexcept = 0;

  virtual std::string_view name() const noexcept = 0;

  virtual const ising::IsingModel& model() const noexcept = 0;
};

}  // namespace fecim::core
