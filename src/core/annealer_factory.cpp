#include "core/annealer_factory.hpp"

#include "core/bifurcation_annealer.hpp"
#include "core/direct_annealer.hpp"
#include "core/mesa.hpp"
#include "util/assert.hpp"

namespace fecim::core {

std::unique_ptr<Annealer> make_annealer(
    AnnealerKind kind, std::shared_ptr<const ising::IsingModel> model,
    const StandardSetup& setup) {
  FECIM_EXPECTS(model != nullptr);

  const crossbar::MappingConfig mapping{setup.bits, setup.mux_ratio};

  switch (kind) {
    case AnnealerKind::kThisWork:
    case AnnealerKind::kThisWorkIdeal: {
      InSituConfig config;
      config.iterations = setup.iterations;
      config.flips_per_iteration = setup.flips_per_iteration;
      config.acceptance_gain = setup.acceptance_gain;
      config.mapping = mapping;
      config.tiles = setup.tiles;
      config.device = setup.device;
      config.variation = setup.variation;
      config.array_cache = setup.array_cache;
      config.initial_spins = setup.initial_spins;
      config.trace = setup.trace;
      config.engine = kind == AnnealerKind::kThisWork
                          ? InSituConfig::EngineKind::kAnalog
                          : InSituConfig::EngineKind::kIdeal;
      return std::make_unique<InSituCimAnnealer>(std::move(model),
                                                 std::move(config));
    }
    case AnnealerKind::kCimFpga:
    case AnnealerKind::kCimAsic: {
      DirectEConfig config;
      config.iterations = setup.iterations;
      config.flips_per_iteration = setup.baseline_flips;
      config.mapping = mapping;
      config.tiles = setup.tiles;
      config.exp_unit = kind == AnnealerKind::kCimFpga ? cost::ExpUnit::kFpga
                                                       : cost::ExpUnit::kAsic;
      config.initial_spins = setup.initial_spins;
      config.trace = setup.trace;
      return std::make_unique<DirectEAnnealer>(std::move(model),
                                               std::move(config));
    }
    case AnnealerKind::kMesa: {
      MesaConfig config;
      config.base.iterations = setup.iterations;
      config.base.flips_per_iteration = setup.baseline_flips;
      config.base.mapping = mapping;
      config.base.tiles = setup.tiles;
      config.base.exp_unit = cost::ExpUnit::kFpga;
      // MESA re-ladders the temperature per epoch; use the budget-normalized
      // schedule within each epoch.
      config.base.schedule_kind = ClassicSchedule::Kind::kGeometric;
      config.base.initial_spins = setup.initial_spins;
      config.base.trace = setup.trace;
      return std::make_unique<MesaAnnealer>(std::move(model),
                                            std::move(config));
    }
    case AnnealerKind::kSbBallistic:
    case AnnealerKind::kSbDiscrete: {
      SbConfig config;
      config.steps = setup.iterations;
      config.variant = kind == AnnealerKind::kSbBallistic
                           ? SbVariant::kBallistic
                           : SbVariant::kDiscrete;
      config.dt = setup.sb_dt;
      config.a0 = setup.sb_a0;
      config.c0 = setup.sb_c0;
      config.mapping = mapping;
      config.tiles = setup.tiles;
      config.device = setup.device;
      config.variation = setup.variation;
      config.array_cache = setup.array_cache;
      config.initial_spins = setup.initial_spins;
      config.trace = setup.trace;
      return std::make_unique<BifurcationAnnealer>(std::move(model),
                                                   std::move(config));
    }
  }
  FECIM_ASSERT(false);
  return nullptr;
}

const char* annealer_kind_name(AnnealerKind kind) noexcept {
  switch (kind) {
    case AnnealerKind::kThisWork:
      return "This Work";
    case AnnealerKind::kThisWorkIdeal:
      return "This Work (ideal)";
    case AnnealerKind::kCimFpga:
      return "CiM/FPGA";
    case AnnealerKind::kCimAsic:
      return "CiM/ASIC";
    case AnnealerKind::kMesa:
      return "MESA";
    case AnnealerKind::kSbBallistic:
      return "SB (ballistic)";
    case AnnealerKind::kSbDiscrete:
      return "SB (discrete)";
  }
  return "unknown";
}

}  // namespace fecim::core
