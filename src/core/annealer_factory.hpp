// Convenience factory assembling the three annealers the paper evaluates
// (Sec. 4) from one shared setup: "this work" (DG FeFET in-situ, fractional
// factor, no e^x unit) and the two direct-E baselines (FeFET CiM + FPGA or
// ASIC exponential unit [7, 18]).
#pragma once

#include <memory>

#include "core/annealer.hpp"
#include "core/insitu_annealer.hpp"

namespace fecim::core {

enum class AnnealerKind {
  kThisWork,       ///< analog DG FeFET engine (default evaluation target)
  kThisWorkIdeal,  ///< in-situ dataflow with exact arithmetic (ablation)
  kCimFpga,        ///< direct-E baseline, FPGA exponential unit
  kCimAsic,        ///< direct-E baseline, ASIC exponential unit
  kMesa,           ///< MESA multi-epoch baseline [7] (extension)
  kSbBallistic,    ///< ballistic simulated bifurcation on the analog array
  kSbDiscrete      ///< discrete simulated bifurcation on the analog array
};

struct StandardSetup {
  std::size_t iterations = 1000;
  std::size_t flips_per_iteration = 2;   ///< |F| for the in-situ annealer
  std::size_t baseline_flips = 1;        ///< per-iteration flips for baselines
  double acceptance_gain = 16.0;         ///< comparator scaling (in-situ)
  int bits = 8;                          ///< weight quantization
  std::size_t mux_ratio = 8;
  /// Physical tile grid (max rows/columns per tile, 0 = unbounded =
  /// monolithic).  Applies to every annealer kind: the in-situ engines
  /// execute over the grid (per-tile sensing, digital partial-sum
  /// accumulation), the direct-E baselines account for it.
  crossbar::TileShape tiles{};
  device::DgFefetParams device{};
  /// Mild programming variation + read noise by default: the evaluation's
  /// robustness claim is made *with* device non-idealities on.
  device::VariationParams variation{0.03, 0.02, 0.0, 0.0};
  /// Optional digest-keyed programmed-array cache shared across annealers
  /// (see InSituConfig::array_cache); used by the crossbar-driving kinds
  /// (in-situ and simulated bifurcation).
  std::shared_ptr<crossbar::ArrayCache> array_cache;
  /// Simulated-bifurcation dynamics knobs (the kSb* kinds only).  For SB,
  /// `iterations` above is the STEP budget -- each step performs one field
  /// readout per spin, so a step costs ~n in-situ iterations.
  double sb_dt = 0.5;
  double sb_a0 = 1.0;
  double sb_c0 = 0.0;  ///< 0 = auto-calibrate (BifurcationAnnealer)
  /// Warm start shared by every kind: runs copy this configuration (SB
  /// additionally biases its oscillator positions toward it) instead of
  /// drawing random spins.  Null = random initialization.
  std::shared_ptr<const ising::SpinVector> initial_spins;
  TraceOptions trace{};
};

std::unique_ptr<Annealer> make_annealer(
    AnnealerKind kind, std::shared_ptr<const ising::IsingModel> model,
    const StandardSetup& setup);

/// Display name used by bench tables.
const char* annealer_kind_name(AnnealerKind kind) noexcept;

}  // namespace fecim::core
