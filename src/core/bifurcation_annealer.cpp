#include "core/bifurcation_annealer.hpp"

#include <cmath>

#include "core/run_driver.hpp"
#include "crossbar/ideal_engine.hpp"
#include "ising/flipset.hpp"
#include "util/assert.hpp"

namespace fecim::core {

namespace {

crossbar::CrossbarMapping make_mapping(const ising::IsingModel& model,
                                       const SbConfig& config) {
  const crossbar::QuantizedCouplings quantized(model.couplings(),
                                               config.mapping.bits);
  return crossbar::CrossbarMapping(model.num_spins(),
                                   quantized.has_negative() ? 2 : 1,
                                   config.mapping);
}

/// Standard SB coupling normalization c0 = 0.5 / (sigma * sqrt(n)) with
/// sigma the rms off-diagonal coupling.  J stores both triangles, so the
/// stored entries are exactly the n(n-1) ordered off-diagonal pairs.
double calibrate_c0(const ising::IsingModel& model) {
  const auto& j = model.couplings();
  const std::size_t n = model.num_spins();
  double sum_sq = 0.0;
  for (std::size_t r = 0; r < n; ++r)
    for (const double v : j.row_values(r)) sum_sq += v * v;
  if (n < 2 || sum_sq <= 0.0) return 1.0;
  const double sigma =
      std::sqrt(sum_sq / (static_cast<double>(n) * static_cast<double>(n - 1)));
  return 0.5 / (sigma * std::sqrt(static_cast<double>(n)));
}

}  // namespace

BifurcationAnnealer::BifurcationAnnealer(
    std::shared_ptr<const ising::IsingModel> model, SbConfig config)
    : model_(std::move(model)),
      config_(std::move(config)),
      schedule_({config_.a0, config_.dt, config_.steps}),
      mapping_(make_mapping(*model_, config_)) {
  FECIM_EXPECTS(model_ != nullptr);
  FECIM_EXPECTS(!model_->has_fields());  // fold fields via with_ancilla()
  FECIM_EXPECTS(model_->num_flippable() >= 1);
  FECIM_EXPECTS(config_.c0 >= 0.0);
  FECIM_EXPECTS(config_.momentum_init >= 0.0);
  c0_ = config_.c0 > 0.0 ? config_.c0 : calibrate_c0(*model_);

  if (config_.engine == SbConfig::EngineKind::kAnalog) {
    const crossbar::QuantizedCouplings quantized(model_->couplings(),
                                                 config_.mapping.bits);
    if (config_.array_cache) {
      array_ = config_.array_cache->get_or_build(quantized, mapping_,
                                                 config_.device,
                                                 config_.variation,
                                                 config_.array_seed,
                                                 config_.tiles);
    } else {
      array_ = std::make_shared<const crossbar::ProgrammedArray>(
          quantized, mapping_, config_.device, config_.variation,
          config_.array_seed, config_.tiles);
    }
    // One-time IR-drop ladder solve shared by every per-run engine instance
    // (same reasoning as the in-situ annealer; the array is immutable).
    if (config_.analog.model_ir_drop &&
        config_.analog.cached_ir_attenuation <= 0.0) {
      const crossbar::AnalogCrossbarEngine probe(array_, config_.analog);
      config_.analog.cached_ir_attenuation = probe.ir_attenuation();
      config_.analog.cached_band_ir_attenuation.assign(
          probe.band_attenuations().begin(), probe.band_attenuations().end());
    }
  }
}

AnnealResult BifurcationAnnealer::run(std::uint64_t seed,
                                      const CancellationToken& token) const {
  const std::size_t n = model_->num_spins();
  const std::size_t flippable = model_->num_flippable();
  const bool ballistic = config_.variant == SbVariant::kBallistic;

  std::unique_ptr<crossbar::EincEngine> engine;
  if (config_.engine == SbConfig::EngineKind::kAnalog) {
    engine = std::make_unique<crossbar::AnalogCrossbarEngine>(array_,
                                                              config_.analog);
  } else {
    // No local-field cache: the drive vector below is NOT the tracked spin
    // configuration (it is re-binarized from the oscillator positions every
    // step), so the cache-coherence protocol cannot apply.  The stateless
    // CSR row walk serves each single-flip readout directly.
    engine = std::make_unique<crossbar::IdealCrossbarEngine>(
        *model_, mapping_, crossbar::Accounting::kInSitu, config_.tiles);
  }
  engine->begin_run(seed);

  // Seed -> spins -> energy -> trace buffers -> cancellation gate.  The
  // driver's spin vector is SB's solution register: it tracks sign(x) and
  // carries the exact energy bookkeeping.
  RunDriver driver(*model_, seed, token,
                   {config_.steps, config_.trace, config_.initial_spins.get()});
  auto& rng = driver.rng;
  auto& spins = driver.spins;

  // Oscillator state.  Positions start at half amplitude toward the initial
  // configuration (so warm starts bias the basin, not just the register);
  // momenta break the x = 0 fixed point with small sequential-RNG kicks.
  std::vector<double> x(n), y(n, 0.0), field(flippable, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = 0.5 * static_cast<double>(spins[i]);
  for (std::size_t i = 0; i < flippable; ++i)
    y[i] = config_.momentum_init * (2.0 * rng.uniform01() - 1.0);
  if (model_->has_ancilla()) {
    // The ancilla oscillator is clamped at +1 so field extraction sees the
    // folded linear terms at full strength.
    x[model_->ancilla_index()] = 1.0;
    y[model_->ancilla_index()] = 0.0;
  }

  // Counter-keyed dither (ballistic only): draw (step, spin) is independent
  // of evaluation order, so the run is thread-invariant and pinned per
  // (seed, tile shape) exactly like the readout-noise streams.
  const util::NoiseStream dither(seed, util::stream_site::kSbDither);

  // Sensing at full back-gate drive: f_hw(vbg_max) = 1, so the analog
  // engine's raw_vmv estimate is the plain VMV with no annealing scaling --
  // SB's "temperature" lives in the pump ramp, not in the readout.
  const crossbar::AnnealSignal signal{1.0, config_.device.vbg_max};

  ising::SpinVector drive(n, ising::Spin{1});
  ising::FlipSet probe(1, 0), flips;
  flips.reserve(flippable);

  for (std::size_t step = 0; step < config_.steps; ++step) {
    driver.poll(step);
    const auto point = schedule_.at(step);

    // Binarize the oscillator positions into the crossbar drive vector.
    for (std::size_t j = 0; j < flippable; ++j) {
      const bool up =
          ballistic
              ? 2.0 * dither.uniform01(step * flippable + j) - 1.0 < x[j]
              : x[j] >= 0.0;
      drive[j] = up ? ising::Spin{1} : ising::Spin{-1};
    }

    // Extract every local field h_i = (J b)_i as a single-flip readout:
    // flipping column i of drive b gives raw_vmv = -b_i (J b)_i, so one
    // sweep of n readouts senses the whole field vector on the same
    // conversion path (and noise streams) the in-situ annealer uses.
    for (std::size_t i = 0; i < flippable; ++i) {
      probe[0] = static_cast<std::uint32_t>(i);
      const auto evaluation = engine->evaluate(drive, probe, signal);
      crossbar::merge_trace(driver.result.ledger, evaluation.trace);
      field[i] = -static_cast<double>(drive[i]) * evaluation.raw_vmv;
    }

    // Symplectic Euler with the fields frozen for the whole step (they were
    // all sensed from the same drive, so per-i interleaving is equivalent to
    // the two-phase kick/drift update), then inelastic walls.
    const double stiffness = config_.a0 - point.pump;
    for (std::size_t i = 0; i < flippable; ++i) {
      y[i] += (-stiffness * x[i] - c0_ * field[i]) * point.dt;
      x[i] += config_.a0 * y[i] * point.dt;
      if (x[i] > 1.0) {
        x[i] = 1.0;
        y[i] = 0.0;
      } else if (x[i] < -1.0) {
        x[i] = -1.0;
        y[i] = 0.0;
      }
    }
    ++driver.result.ledger.iterations;

    // Commit sign changes to the solution register with exact energies.
    flips.clear();
    for (std::size_t i = 0; i < flippable; ++i) {
      const ising::Spin sign = x[i] >= 0.0 ? ising::Spin{1} : ising::Spin{-1};
      if (sign != spins[i]) flips.push_back(static_cast<std::uint32_t>(i));
    }
    if (!flips.empty()) {
      const double delta_e = model_->delta_energy(spins, flips);
      driver.energy += delta_e;
      ising::flip_in_place(spins, flips);
      driver.count_accept(flips.size(), delta_e > 0.0);
      driver.track_best();
    }

    driver.record(step, point.pump);
  }

  return driver.finish();
}

}  // namespace fecim::core
