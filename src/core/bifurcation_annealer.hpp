// Simulated-bifurcation solver on the shared crossbar (Goto-style bSB/dSB).
//
// Each logical spin becomes a Kerr-oscillator position x_i in [-1, 1] with
// conjugate momentum y_i; the pump a(t) ramps 0 -> a0 and every oscillator
// passes through a pitchfork bifurcation toward x_i = +-1, with the coupling
// force steering the collective state toward low Ising energy:
//
//   y_i += (-(a0 - a(t)) * x_i - c0 * h_i) * dt
//   x_i += a0 * y_i * dt            (symplectic Euler, inelastic walls)
//
// The local fields h_i = (J b)_i are extracted from the SAME crossbar
// engines the in-situ annealer uses -- the array is driven with a binarized
// image b of the oscillator positions and each column's field is sensed as
// a single-flip VMV readout, so SB inherits the full analog stack (device
// variation, IR drop, ADC quantization, counter-keyed readout noise) with
// zero new hardware modeling.  Variants differ only in the binarization:
//
//   * kBallistic (bSB): stochastic dither, P(b_i = +1) = (1 + x_i) / 2, so
//     E[b] = x and the sensed field is an unbiased estimate of (J x)_i.
//     Dither draws are counter-keyed per (step, spin) -- never from the
//     sequential RNG -- so runs stay a pure function of (seed, tile shape).
//   * kDiscrete (dSB): b = sign(x); the discretized force is what makes dSB
//     resist error accumulation on analog hardware.
#pragma once

#include <memory>

#include "core/annealer.hpp"
#include "core/schedule.hpp"
#include "crossbar/analog_engine.hpp"
#include "crossbar/array_cache.hpp"
#include "crossbar/mapping.hpp"
#include "crossbar/tiling.hpp"
#include "device/dg_fefet.hpp"
#include "device/variation.hpp"

namespace fecim::core {

enum class SbVariant {
  kBallistic,  ///< dithered drive, force from (an estimate of) J x
  kDiscrete    ///< sign(x) drive, force from J sign(x)
};

struct SbConfig {
  /// SB time steps; each step performs one field extraction per flippable
  /// spin (n single-flip readouts), so a step costs ~n in-situ iterations.
  std::size_t steps = 1000;
  SbVariant variant = SbVariant::kBallistic;
  double dt = 0.5;            ///< symplectic time step
  double a0 = 1.0;            ///< detuning / final pump amplitude
  /// Coupling strength; 0 = auto-calibrate to 0.5 / (sigma * sqrt(n)) with
  /// sigma the rms coupling value (the standard SB normalization, keeping
  /// the coupling force comparable to the confining force at bifurcation).
  double c0 = 0.0;
  /// Initial momentum amplitude: y_i ~ U(-momentum_init, momentum_init)
  /// breaks the x = y = 0 fixed point symmetrically.
  double momentum_init = 0.01;

  crossbar::MappingConfig mapping{};
  crossbar::TileShape tiles{};

  enum class EngineKind {
    kAnalog,  ///< DG FeFET currents + variation + ADC (default)
    kIdeal    ///< exact arithmetic, in-situ cost accounting (ablations)
  };
  EngineKind engine = EngineKind::kAnalog;

  device::DgFefetParams device{};
  device::VariationParams variation{};
  crossbar::AnalogEngineConfig analog{};
  std::uint64_t array_seed = 0x5eed;  ///< programming-time variation stream
  /// Digest-keyed programmed-array sharing (see InSituConfig::array_cache).
  std::shared_ptr<crossbar::ArrayCache> array_cache;

  /// Warm start: positions are biased toward these spins (x_i = 0.5 sigma_i)
  /// instead of a random configuration.  Null = random initialization.
  std::shared_ptr<const ising::SpinVector> initial_spins;

  TraceOptions trace{};
};

class BifurcationAnnealer final : public Annealer {
 public:
  /// `model` must be pure quadratic (no fields) -- callers fold fields with
  /// IsingModel::with_ancilla() first.  The ancilla oscillator is pinned at
  /// x = +1, y = 0 and never updated.
  BifurcationAnnealer(std::shared_ptr<const ising::IsingModel> model,
                      SbConfig config);

  using Annealer::run;
  AnnealResult run(std::uint64_t seed,
                   const CancellationToken& token) const override;

  cost::ExpUnit exp_unit() const noexcept override {
    return cost::ExpUnit::kNone;  // no Metropolis test anywhere in SB
  }
  std::string_view name() const noexcept override {
    return config_.variant == SbVariant::kBallistic ? "sb-ballistic"
                                                    : "sb-discrete";
  }
  const ising::IsingModel& model() const noexcept override { return *model_; }

  /// Effective coupling strength (auto-calibrated when config.c0 == 0).
  double coupling_strength() const noexcept { return c0_; }
  const SbSchedule& schedule() const noexcept { return schedule_; }
  /// Programmed array (null when running the ideal engine).
  std::shared_ptr<const crossbar::ProgrammedArray> array() const noexcept {
    return array_;
  }

 private:
  std::shared_ptr<const ising::IsingModel> model_;
  SbConfig config_;
  SbSchedule schedule_;
  crossbar::CrossbarMapping mapping_;
  std::shared_ptr<const crossbar::ProgrammedArray> array_;
  double c0_;
};

}  // namespace fecim::core
