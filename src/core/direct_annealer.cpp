#include "core/direct_annealer.hpp"

#include <cmath>

#include "core/acceptance.hpp"
#include "core/run_driver.hpp"
#include "crossbar/bit_slicing.hpp"
#include "crossbar/ideal_engine.hpp"
#include "ising/flipset.hpp"
#include "util/assert.hpp"

namespace fecim::core {

namespace {

/// Mean |dE| of random moves from random states: the conventional SA
/// starting-temperature scale (initial uphill acceptance ~ e^-1/3 with
/// t_start = 3x this estimate).
double estimate_move_scale(const ising::IsingModel& model,
                           std::size_t flips_per_iteration) {
  util::Rng rng(0xca11b7a7e);
  constexpr int kSamples = 128;
  double sum = 0.0;
  auto spins = ising::random_spins(model.num_spins(), rng);
  for (int s = 0; s < kSamples; ++s) {
    const auto flips = ising::random_flip_set(model.num_flippable(),
                                              flips_per_iteration, rng);
    sum += std::fabs(model.delta_energy(spins, flips));
    ising::flip_in_place(spins, flips);  // drift so samples decorrelate
  }
  return std::max(1e-12, sum / kSamples);
}

}  // namespace

DirectEAnnealer::DirectEAnnealer(std::shared_ptr<const ising::IsingModel> model,
                                 DirectEConfig config)
    : model_(std::move(model)),
      config_(std::move(config)),
      mapping_(model_->num_spins(),
               crossbar::QuantizedCouplings(model_->couplings(),
                                            config_.mapping.bits)
                       .has_negative()
                   ? 2
                   : 1,
               config_.mapping) {
  FECIM_EXPECTS(model_ != nullptr);
  FECIM_EXPECTS(config_.flips_per_iteration >= 1);
  FECIM_EXPECTS(config_.flips_per_iteration <= model_->num_flippable());
  FECIM_EXPECTS(config_.t_end_fraction > 0.0 && config_.t_end_fraction <= 1.0);
  t_start_ = config_.t_start > 0.0
                 ? config_.t_start
                 : 3.0 * estimate_move_scale(*model_,
                                             config_.flips_per_iteration);
}

AnnealResult DirectEAnnealer::run(std::uint64_t seed,
                                  const CancellationToken& token) const {
  crossbar::IdealCrossbarEngine engine(*model_, mapping_,
                                       crossbar::Accounting::kDirectFullArray,
                                       config_.tiles);
  // Every applied flip set is reported back via on_flips_applied(), so the
  // engine serves each evaluation from its local-field cache instead of
  // re-walking CSR rows.
  engine.enable_local_field_cache();
  const ClassicSchedule schedule({t_start_, t_start_ * config_.t_end_fraction,
                                  config_.iterations, config_.schedule_kind,
                                  config_.decay_per_iteration});

  RunDriver driver(*model_, seed, token,
                   {config_.iterations, config_.trace,
                    config_.initial_spins.get()});
  auto& rng = driver.rng;
  auto& spins = driver.spins;

  const MetropolisAcceptance acceptance;

  // Reused proposal buffer: the loop below performs no heap allocations
  // after this point (plus the engine's lazy first-call cache build).
  ising::FlipSet flips;
  flips.reserve(config_.flips_per_iteration);

  for (std::size_t it = 0; it < config_.iterations; ++it) {
    driver.poll(it);
    const double temperature = schedule.temperature(it);
    ising::random_flip_set_into(flips, model_->num_flippable(),
                                config_.flips_per_iteration, rng);

    // The hardware computes E_new via the full-array VMV; dE follows
    // digitally.  Numerically dE = 4 sigma_r^T J sigma_c (+ field terms).
    const auto evaluation = engine.evaluate(spins, flips, {1.0, 0.0});
    crossbar::merge_trace(driver.result.ledger, evaluation.trace);
    ++driver.result.ledger.iterations;
    double delta_e = 4.0 * evaluation.raw_vmv;
    for (const auto i : flips)
      delta_e += -2.0 * model_->fields()[i] * static_cast<double>(spins[i]);

    const auto decision = acceptance.accept(delta_e, temperature, rng);
    if (config_.pipelined_exp_unit || decision.exp_evaluated)
      ++driver.result.ledger.exp_evaluations;
    if (decision.accepted) {
      driver.energy += delta_e;
      ising::flip_in_place(spins, flips);
      engine.on_flips_applied(spins, flips);
      driver.count_accept(flips.size(), delta_e > 0.0);
      driver.track_best();
    }

    driver.record(it, temperature);
  }

  return driver.finish();
}

}  // namespace fecim::core
