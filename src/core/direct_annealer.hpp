// Direct-E baseline annealers (CiM/FPGA and CiM/ASIC [7, 18]).
//
// Classic simulated annealing: per iteration a random flip set is proposed,
// the new energy is obtained through a full-array VMV multiplication
// (O(n^2) product terms -- every column sensed), dE is formed digitally,
// and uphill moves invoke the exponential unit for the Metropolis test.
// The two baseline variants differ only in the e^x hardware (FPGA vs ASIC),
// i.e. in cost translation, so one class covers both.
#pragma once

#include <memory>

#include "core/annealer.hpp"
#include "core/schedule.hpp"
#include "crossbar/mapping.hpp"
#include "crossbar/tiling.hpp"

namespace fecim::core {

struct DirectEConfig {
  std::size_t iterations = 1000;
  std::size_t flips_per_iteration = 1;
  /// 0 = auto-calibrate from the move-energy scale of the instance.
  double t_start = 0.0;
  /// Final temperature as a fraction of t_start.
  double t_end_fraction = 1e-3;
  /// Digital annealers apply a fixed per-iteration decay [9, 10]; short
  /// budgets then stop while still hot -- the paper's baselines fail the
  /// 800/1000-node groups for exactly this reason.  Use kGeometric for a
  /// budget-normalized ladder instead.
  ClassicSchedule::Kind schedule_kind = ClassicSchedule::Kind::kFixedDecay;
  double decay_per_iteration = 0.999;
  crossbar::MappingConfig mapping{};
  /// Physical tile grid for the hardware event accounting (0 = monolithic);
  /// the baselines' arithmetic is exact either way.
  crossbar::TileShape tiles{};
  cost::ExpUnit exp_unit = cost::ExpUnit::kFpga;
  /// Pipelined implementations [18] evaluate e^(-dE/T) unconditionally every
  /// iteration (branchless datapath) and select afterwards; set false to
  /// charge the unit only on uphill moves.
  bool pipelined_exp_unit = true;
  /// Warm start (core/run_driver.hpp); null = random initialization.
  std::shared_ptr<const ising::SpinVector> initial_spins;
  TraceOptions trace{};
};

class DirectEAnnealer final : public Annealer {
 public:
  DirectEAnnealer(std::shared_ptr<const ising::IsingModel> model,
                  DirectEConfig config);

  using Annealer::run;
  AnnealResult run(std::uint64_t seed,
                   const CancellationToken& token) const override;

  cost::ExpUnit exp_unit() const noexcept override { return config_.exp_unit; }
  std::string_view name() const noexcept override {
    return config_.exp_unit == cost::ExpUnit::kFpga ? "cim-fpga" : "cim-asic";
  }
  const ising::IsingModel& model() const noexcept override { return *model_; }

  /// Auto-calibrated starting temperature (the mean uphill |dE| scale).
  double calibrated_t_start() const noexcept { return t_start_; }

 private:
  std::shared_ptr<const ising::IsingModel> model_;
  DirectEConfig config_;
  crossbar::CrossbarMapping mapping_;
  double t_start_;
};

}  // namespace fecim::core
