#include "core/ft_calibration.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace fecim::core {

FtReport evaluate_ft_approximation(const device::DgFefetParams& device,
                                   const ising::FractionalFactor& factor,
                                   const circuit::BgDac& dac) {
  FECIM_EXPECTS(dac.v_max > dac.v_min);
  FtReport report;
  const double i_max = device::DgFefet::on_current(device, dac.v_max);
  FECIM_EXPECTS(i_max > 0.0);

  double sum_sq = 0.0;
  double previous = -std::numeric_limits<double>::infinity();
  const std::size_t levels = dac.num_levels();
  report.samples.reserve(levels);
  for (std::size_t level = 0; level < levels; ++level) {
    FtSample sample{};
    sample.vbg = dac.level_voltage(level);
    const double fraction = (sample.vbg - dac.v_min) / (dac.v_max - dac.v_min);
    sample.temperature =
        factor.t_min() + (factor.t_max() - factor.t_min()) * fraction;
    sample.target = factor(sample.temperature);
    sample.device = device::DgFefet::on_current(device, sample.vbg) / i_max;

    const double error = sample.device - sample.target;
    sum_sq += error * error;
    report.max_error = std::max(report.max_error, std::fabs(error));
    if (sample.device < previous) report.monotone = false;
    previous = sample.device;
    report.samples.push_back(sample);
  }
  report.rms_error = std::sqrt(sum_sq / static_cast<double>(levels));
  return report;
}

device::DgFefetParams fit_dg_fefet_to_factor(
    const ising::FractionalFactor& factor, const circuit::BgDac& dac,
    const device::DgFefetParams& base, const FtFitOptions& options) {
  FECIM_EXPECTS(options.step > 0.0);
  FECIM_EXPECTS(options.vth_low_max >= options.vth_low_min);
  FECIM_EXPECTS(options.coupling_max >= options.coupling_min);

  const double memory_window = base.vth_high - base.vth_low;
  // Seed with the base parameters so the fit never regresses below the
  // caller's starting point (the grid may not contain it).
  device::DgFefetParams best = base;
  const auto base_report = evaluate_ft_approximation(base, factor, dac);
  double best_rms = base_report.monotone
                        ? base_report.rms_error
                        : std::numeric_limits<double>::infinity();

  for (double vth = options.vth_low_min; vth <= options.vth_low_max + 1e-12;
       vth += options.step) {
    for (double gamma = options.coupling_min;
         gamma <= options.coupling_max + 1e-12; gamma += options.step) {
      device::DgFefetParams candidate = base;
      candidate.vth_low = vth;
      candidate.vth_high = vth + memory_window;
      candidate.back_gate_coupling = gamma;
      const auto report = evaluate_ft_approximation(candidate, factor, dac);
      if (report.monotone && report.rms_error < best_rms) {
        best_rms = report.rms_error;
        best = candidate;
      }
    }
  }
  FECIM_ENSURES(best_rms < std::numeric_limits<double>::infinity());
  return best;
}

}  // namespace fecim::core
