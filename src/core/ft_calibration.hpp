// Calibration of the DG FeFET normalized on-current against the fractional
// annealing factor (paper Fig. 6(c)): the device realizes
//
//   f(T) ~ I_SL(V_BG) / I_SL(V_BG_max),   T = T_max * V_BG / V_BG_max,
//
// sampled on the BG DAC grid.  evaluate_ft_approximation() reports the
// approximation error; fit_dg_fefet_to_factor() grid-searches the device's
// (vth_low, back-gate coupling) to minimize it.
#pragma once

#include <vector>

#include "circuit/drivers.hpp"
#include "device/dg_fefet.hpp"
#include "ising/fractional_factor.hpp"

namespace fecim::core {

struct FtSample {
  double vbg;          ///< DAC grid voltage [V]
  double temperature;  ///< mapped annealing temperature
  double target;       ///< ideal f(T)
  double device;       ///< normalized device on-current
};

struct FtReport {
  std::vector<FtSample> samples;
  double rms_error = 0.0;
  double max_error = 0.0;
  bool monotone = true;  ///< device curve non-decreasing in V_BG
};

FtReport evaluate_ft_approximation(const device::DgFefetParams& device,
                                   const ising::FractionalFactor& factor,
                                   const circuit::BgDac& dac);

struct FtFitOptions {
  double vth_low_min = 1.00;
  double vth_low_max = 1.30;
  double coupling_min = 0.10;
  double coupling_max = 0.60;
  double step = 0.005;
};

/// Returns device parameters (derived from `base`, memory window preserved)
/// minimizing the RMS error of the f(T) approximation.
device::DgFefetParams fit_dg_fefet_to_factor(
    const ising::FractionalFactor& factor, const circuit::BgDac& dac,
    const device::DgFefetParams& base = {}, const FtFitOptions& options = {});

}  // namespace fecim::core
