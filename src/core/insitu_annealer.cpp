#include "core/insitu_annealer.hpp"

#include "core/acceptance.hpp"
#include "crossbar/ideal_engine.hpp"
#include "ising/flipset.hpp"
#include "util/assert.hpp"

namespace fecim::core {

namespace {

crossbar::CrossbarMapping make_mapping(const ising::IsingModel& model,
                                       const InSituConfig& config) {
  const crossbar::QuantizedCouplings quantized(model.couplings(),
                                               config.mapping.bits);
  return crossbar::CrossbarMapping(model.num_spins(),
                                   quantized.has_negative() ? 2 : 1,
                                   config.mapping);
}

}  // namespace

InSituCimAnnealer::InSituCimAnnealer(
    std::shared_ptr<const ising::IsingModel> model, InSituConfig config)
    : model_(std::move(model)),
      config_(std::move(config)),
      schedule_([&] {
        auto schedule_config = config_.schedule;
        schedule_config.total_iterations = config_.iterations;
        return BgAnnealingSchedule(schedule_config);
      }()),
      mapping_(make_mapping(*model_, config_)) {
  FECIM_EXPECTS(model_ != nullptr);
  FECIM_EXPECTS(!model_->has_fields());  // fold fields via with_ancilla()
  FECIM_EXPECTS(config_.flips_per_iteration >= 1);
  FECIM_EXPECTS(config_.flips_per_iteration <= model_->num_flippable());
  FECIM_EXPECTS(config_.acceptance_gain > 0.0);
  // Keep the DAC range consistent with the device's annealing V_BG range.
  FECIM_EXPECTS(config_.schedule.dac.v_max <= config_.device.vbg_max + 1e-12);

  if (config_.engine == InSituConfig::EngineKind::kAnalog) {
    const crossbar::QuantizedCouplings quantized(model_->couplings(),
                                                 config_.mapping.bits);
    array_ = std::make_shared<const crossbar::ProgrammedArray>(
        quantized, mapping_, config_.device, config_.variation,
        config_.array_seed);
  }
}

ising::FlipSet InSituCimAnnealer::cluster_flip_set(util::Rng& rng) const {
  const std::size_t flippable = model_->num_flippable();
  double parity_mix = config_.parity_mix;
  if (parity_mix < 0.0) parity_mix = model_->has_ancilla() ? 0.25 : 0.0;
  std::size_t t = config_.flips_per_iteration;
  if (t > 1 && parity_mix > 0.0 && rng.bernoulli(parity_mix)) --t;
  ising::FlipSet flips;
  flips.reserve(t);
  flips.push_back(
      static_cast<std::uint32_t>(rng.uniform_index(flippable)));

  const auto& j = model_->couplings();
  while (flips.size() < t) {
    const auto current = flips.back();
    const auto neighbors = j.row_cols(current);
    std::uint32_t next = 0;
    bool found = false;
    // With probability cluster_neighbor_bias take a coupled spin; isolated
    // or exhausted neighborhoods (and the remaining probability mass) fall
    // back to a uniform pick so the set always reaches size t and every
    // pair stays proposable.
    if (rng.bernoulli(config_.cluster_neighbor_bias)) {
      for (int attempt = 0; attempt < 8 && !neighbors.empty(); ++attempt) {
        const auto candidate =
            neighbors[rng.uniform_index(neighbors.size())];
        if (candidate >= flippable) continue;  // never flip the ancilla
        bool duplicate = false;
        for (const auto f : flips) duplicate |= (f == candidate);
        if (!duplicate) {
          next = candidate;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      do {
        next = static_cast<std::uint32_t>(rng.uniform_index(flippable));
        bool duplicate = false;
        for (const auto f : flips) duplicate |= (f == next);
        if (!duplicate) break;
      } while (true);
    }
    flips.push_back(next);
  }
  return flips;
}

AnnealResult InSituCimAnnealer::run(std::uint64_t seed) const {
  util::Rng rng(seed);
  const std::size_t n = model_->num_spins();

  // Per-run engine instances: cheap wrappers over the shared immutable
  // model/array, so parallel campaigns need no locking.
  std::unique_ptr<crossbar::EincEngine> engine;
  if (config_.engine == InSituConfig::EngineKind::kAnalog) {
    engine = std::make_unique<crossbar::AnalogCrossbarEngine>(array_,
                                                              config_.analog);
  } else {
    engine = std::make_unique<crossbar::IdealCrossbarEngine>(
        *model_, mapping_, crossbar::Accounting::kInSitu);
  }

  AnnealResult result;
  auto spins = ising::random_spins(n, rng);
  if (model_->has_ancilla()) spins[model_->ancilla_index()] = ising::Spin{1};
  double energy = model_->energy(spins);
  result.best_spins = spins;
  result.best_energy = energy;

  const FractionalAcceptance acceptance;
  double previous_vbg = -1.0;
  ising::SweepFlipGenerator sweep(model_->num_flippable(),
                                  config_.flips_per_iteration);

  for (std::size_t it = 0; it < config_.iterations; ++it) {
    const auto point = schedule_.at(it);
    if (point.vbg != previous_vbg) {
      ++result.ledger.bg_dac_updates;
      previous_vbg = point.vbg;
    }

    ising::FlipSet flips;
    switch (config_.flip_selection) {
      case InSituConfig::FlipSelection::kCluster:
        flips = cluster_flip_set(rng);
        break;
      case InSituConfig::FlipSelection::kRandom:
        flips = ising::random_flip_set(model_->num_flippable(),
                                       config_.flips_per_iteration, rng);
        break;
      case InSituConfig::FlipSelection::kSweep:
        flips = sweep.next();
        break;
    }
    const auto evaluation = engine->evaluate(
        spins, flips, {point.factor, point.vbg}, rng);
    crossbar::merge_trace(result.ledger, evaluation.trace);
    ++result.ledger.iterations;

    if (acceptance.accept(config_.acceptance_gain * evaluation.e_inc, rng)) {
      // Exact energy bookkeeping is simulation-side observability; the
      // hardware only updates the spin registers.
      energy += model_->delta_energy(spins, flips);
      ising::flip_in_place(spins, flips);
      result.ledger.spin_updates += flips.size();
      ++result.accepted_moves;
      if (evaluation.e_inc > 0.0) ++result.uphill_accepted;
      if (energy < result.best_energy) {
        result.best_energy = energy;
        result.best_spins = spins;
      }
    }

    if (config_.trace.enabled && it % config_.trace.stride == 0) {
      result.trajectory.push_back(
          {it, energy, result.best_energy, point.vbg});
      result.ledger_trajectory.push_back({it, result.ledger});
    }
  }

  result.final_spins = std::move(spins);
  result.final_energy = energy;
  return result;
}

}  // namespace fecim::core
