#include "core/insitu_annealer.hpp"

#include "core/acceptance.hpp"
#include "core/run_driver.hpp"
#include "crossbar/ideal_engine.hpp"
#include "ising/flipset.hpp"
#include "util/assert.hpp"

namespace fecim::core {

namespace {

crossbar::CrossbarMapping make_mapping(const ising::IsingModel& model,
                                       const InSituConfig& config) {
  const crossbar::QuantizedCouplings quantized(model.couplings(),
                                               config.mapping.bits);
  return crossbar::CrossbarMapping(model.num_spins(),
                                   quantized.has_negative() ? 2 : 1,
                                   config.mapping);
}

}  // namespace

InSituCimAnnealer::InSituCimAnnealer(
    std::shared_ptr<const ising::IsingModel> model, InSituConfig config)
    : model_(std::move(model)),
      config_(std::move(config)),
      schedule_([&] {
        auto schedule_config = config_.schedule;
        schedule_config.total_iterations = config_.iterations;
        return BgAnnealingSchedule(schedule_config);
      }()),
      mapping_(make_mapping(*model_, config_)) {
  FECIM_EXPECTS(model_ != nullptr);
  FECIM_EXPECTS(!model_->has_fields());  // fold fields via with_ancilla()
  FECIM_EXPECTS(config_.flips_per_iteration >= 1);
  FECIM_EXPECTS(config_.flips_per_iteration <= model_->num_flippable());
  FECIM_EXPECTS(config_.acceptance_gain > 0.0);
  // Keep the DAC range consistent with the device's annealing V_BG range.
  FECIM_EXPECTS(config_.schedule.dac.v_max <= config_.device.vbg_max + 1e-12);

  if (config_.engine == InSituConfig::EngineKind::kAnalog) {
    const crossbar::QuantizedCouplings quantized(model_->couplings(),
                                                 config_.mapping.bits);
    if (config_.array_cache) {
      // Digest-keyed sharing: identical (couplings, mapping, device,
      // variation, seed, tiles) across annealers resolve to one programmed
      // array.  Safe because the array is immutable (PERF.md invariant 1)
      // and bit-identical because all run-time noise is counter-keyed per
      // run seed, not per array instance (invariant 2).
      array_ = config_.array_cache->get_or_build(quantized, mapping_,
                                                 config_.device,
                                                 config_.variation,
                                                 config_.array_seed,
                                                 config_.tiles);
    } else {
      array_ = std::make_shared<const crossbar::ProgrammedArray>(
          quantized, mapping_, config_.device, config_.variation,
          config_.array_seed, config_.tiles);
    }
    // Solve the IR-drop ladders once here: the array is immutable, so every
    // per-run engine instance reuses the same logical and per-tile
    // attenuations instead of re-running the MNA solves (which scale with
    // physical rows).
    if (config_.analog.model_ir_drop &&
        config_.analog.cached_ir_attenuation <= 0.0) {
      const crossbar::AnalogCrossbarEngine probe(array_, config_.analog);
      config_.analog.cached_ir_attenuation = probe.ir_attenuation();
      config_.analog.cached_band_ir_attenuation.assign(
          probe.band_attenuations().begin(), probe.band_attenuations().end());
    }
  }
}

void InSituCimAnnealer::cluster_flip_set(util::Rng& rng,
                                         RunWorkspace& ws) const {
  const std::size_t flippable = model_->num_flippable();
  double parity_mix = config_.parity_mix;
  if (parity_mix < 0.0) parity_mix = model_->has_ancilla() ? 0.25 : 0.0;
  std::size_t t = config_.flips_per_iteration;
  if (t > 1 && parity_mix > 0.0 && rng.bernoulli(parity_mix)) --t;

  auto& flips = ws.flips;
  auto& member = ws.member_mask;  // all-zero on entry, restored on exit
  flips.clear();
  auto take = [&](std::uint32_t spin) {
    flips.push_back(spin);
    member[spin] = 1;
  };
  take(static_cast<std::uint32_t>(rng.uniform_index(flippable)));

  const auto& j = model_->couplings();
  while (flips.size() < t) {
    const auto current = flips.back();
    const auto neighbors = j.row_cols(current);
    std::uint32_t next = 0;
    bool found = false;
    // With probability cluster_neighbor_bias take a coupled spin; isolated
    // or exhausted neighborhoods (and the remaining probability mass) fall
    // back to a uniform pick so the set always reaches size t and every
    // pair stays proposable.
    if (rng.bernoulli(config_.cluster_neighbor_bias)) {
      for (int attempt = 0; attempt < 8 && !neighbors.empty(); ++attempt) {
        const auto candidate =
            neighbors[rng.uniform_index(neighbors.size())];
        if (candidate >= flippable) continue;  // never flip the ancilla
        if (!member[candidate]) {
          next = candidate;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      // Bounded rejection sampling: when the set is sparse relative to the
      // flippable range (the standard regime), a non-member lands within a
      // couple of draws.  Dense sets (t approaching `flippable`) previously
      // degenerated into an unbounded coupon-collector loop; after the
      // bound trips, one draw picks uniformly among the remaining
      // non-members by rank, which is the same distribution.
      constexpr int kMaxRejects = 64;
      for (int attempt = 0; attempt < kMaxRejects && !found; ++attempt) {
        const auto candidate =
            static_cast<std::uint32_t>(rng.uniform_index(flippable));
        if (!member[candidate]) {
          next = candidate;
          found = true;
        }
      }
      if (!found) {
        std::size_t rank = rng.uniform_index(flippable - flips.size());
        for (std::uint32_t spin = 0; spin < flippable; ++spin) {
          if (member[spin]) continue;
          if (rank == 0) {
            next = spin;
            break;
          }
          --rank;
        }
      }
    }
    take(next);
  }

  for (const auto f : flips) member[f] = 0;
}

AnnealResult InSituCimAnnealer::run(std::uint64_t seed,
                                    const CancellationToken& token) const {
  const std::size_t n = model_->num_spins();
  const bool analog = config_.engine == InSituConfig::EngineKind::kAnalog;

  // Per-run engine instances: cheap wrappers over the shared immutable
  // model/array, so parallel campaigns need no locking.
  std::unique_ptr<crossbar::EincEngine> engine;
  if (analog) {
    engine = std::make_unique<crossbar::AnalogCrossbarEngine>(array_,
                                                              config_.analog);
  } else {
    auto ideal = std::make_unique<crossbar::IdealCrossbarEngine>(
        *model_, mapping_, crossbar::Accounting::kInSitu, config_.tiles);
    // This loop reports every applied flip set back through
    // on_flips_applied(), so the engine may serve evaluations from its
    // incrementally-maintained local-field cache.
    ideal->enable_local_field_cache();
    engine = std::move(ideal);
  }
  // Key the engine's readout-noise streams to this run: noisy evaluations
  // draw from (seed, site, conversion index), never from the driver's RNG,
  // so the proposal/acceptance draw sequence is independent of the noise
  // model.
  engine->begin_run(seed);

  // Seed -> spins -> energy -> trace buffers -> cancellation gate.
  RunDriver driver(*model_, seed, token,
                   {config_.iterations, config_.trace,
                    config_.initial_spins.get()});
  auto& rng = driver.rng;
  auto& spins = driver.spins;

  // Everything the inner loop touches is allocated here; the loop itself is
  // heap-allocation-free (see PERF.md and the counting-allocator test).
  RunWorkspace ws;
  ws.flips.reserve(config_.flips_per_iteration);
  ws.member_mask.assign(n, 0);
  // The analog engine's E_inc is a noisy hardware estimate, so exact energy
  // bookkeeping needs its own field cache; the ideal engine's raw_vmv is
  // already exact.
  if (analog) ws.field_cache.build(*model_, spins);

  const FractionalAcceptance acceptance;
  double previous_vbg = -1.0;
  ising::SweepFlipGenerator sweep(model_->num_flippable(),
                                  config_.flips_per_iteration);

  for (std::size_t it = 0; it < config_.iterations; ++it) {
    driver.poll(it);
    const auto point = schedule_.at(it);
    if (point.vbg != previous_vbg) {
      ++driver.result.ledger.bg_dac_updates;
      previous_vbg = point.vbg;
    }

    switch (config_.flip_selection) {
      case InSituConfig::FlipSelection::kCluster:
        cluster_flip_set(rng, ws);
        break;
      case InSituConfig::FlipSelection::kRandom:
        ising::random_flip_set_into(ws.flips, model_->num_flippable(),
                                    config_.flips_per_iteration, rng);
        break;
      case InSituConfig::FlipSelection::kSweep:
        sweep.next_into(ws.flips);
        break;
    }
    const auto evaluation =
        engine->evaluate(spins, ws.flips, {point.factor, point.vbg});
    crossbar::merge_trace(driver.result.ledger, evaluation.trace);
    ++driver.result.ledger.iterations;

    if (acceptance.accept(config_.acceptance_gain * evaluation.e_inc, rng)) {
      // Exact energy bookkeeping is simulation-side observability; the
      // hardware only updates the spin registers.  dE = 4 sigma_r^T J
      // sigma_c (the model is pure quadratic here); the cached local fields
      // supply the VMV in O(|F|^2) instead of a CSR row walk.
      driver.energy +=
          analog ? 4.0 * ws.field_cache.vmv(*model_, spins, ws.flips)
                 : 4.0 * evaluation.raw_vmv;
      ising::flip_in_place(spins, ws.flips);
      if (analog)
        ws.field_cache.apply_flips(*model_, spins, ws.flips);
      else
        engine->on_flips_applied(spins, ws.flips);
      driver.count_accept(ws.flips.size(), evaluation.e_inc > 0.0);
      driver.track_best();
    }

    driver.record(it, point.vbg);
  }

  return driver.finish();
}

}  // namespace fecim::core
