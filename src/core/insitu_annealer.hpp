// The proposed CiM in-situ annealer (paper Sec. 3.4, Algorithm 1).
//
// Per iteration: sample a flip set F (|F| = t constant), derive
// sigma_c / sigma_r, evaluate E_inc = sigma_r^T J sigma_c * f(T) on the
// crossbar engine at the current back-gate voltage, apply the fractional
// acceptance rule, and update the solution register.  All analog
// computation happens inside the engine; only the solution update is
// digital.
#pragma once

#include <memory>

#include "core/annealer.hpp"
#include "core/schedule.hpp"
#include "crossbar/analog_engine.hpp"
#include "crossbar/array_cache.hpp"
#include "crossbar/mapping.hpp"
#include "device/dg_fefet.hpp"
#include "device/variation.hpp"
#include "ising/flipset.hpp"
#include "ising/local_field.hpp"

namespace fecim::core {

struct InSituConfig {
  std::size_t iterations = 1000;
  std::size_t flips_per_iteration = 2;  ///< t = |F|
  /// Digital comparator reference scaling applied to E_inc before the
  /// acceptance test (Alg. 1 line 10 compares against rand(0,1); scaling the
  /// reference is free in the digital domain).  The factor-4 default makes
  /// the compared quantity dE * f(T) rather than (dE/4) * f(T).
  double acceptance_gain = 4.0;
  /// How the t flip candidates are selected each iteration (Alg. 1 line 3
  /// just says "select t elements").
  ///  * kCluster (default): a random-walk-connected set on the coupling
  ///    graph (first spin uniform, each next spin a random neighbor of the
  ///    previous).  Joint flips of coupled spins act as cluster moves --
  ///    essential for domain-wall migration on grid-like instances; on
  ///    high-girth random graphs it behaves like independent picks.
  ///  * kRandom: t uniform distinct spins.
  ///  * kSweep: consecutive index windows (a counter in hardware);
  ///    guarantees full coverage every n/t iterations.
  enum class FlipSelection { kCluster, kRandom, kSweep };
  FlipSelection flip_selection = FlipSelection::kCluster;
  /// kCluster: probability that the next flip candidate is a neighbor of
  /// the previous one (otherwise a uniform pick).  Strictly less than 1 so
  /// every pair of spins remains jointly proposable -- with pure neighbor
  /// pairs the mutual coupling term of a flipped pair is invariant, which
  /// loses ergodicity on disconnected-pair graphs.
  double cluster_neighbor_bias = 0.75;
  /// Probability of proposing |F| - 1 flips instead of |F|.  A constant
  /// even |F| conserves the configuration's bit parity, making valid
  /// one-hot states unreachable from half of all starts; odd-size moves
  /// restore ergodicity.  Negative = auto (0.25 when the model carries an
  /// ancilla, i.e. came from a constrained QUBO; 0 for pure quadratic
  /// models so Max-Cut keeps the paper's exact |F| accounting).
  double parity_mix = -1.0;
  BgAnnealingSchedule::Config schedule{};  ///< total_iterations overridden
  crossbar::MappingConfig mapping{};
  /// Physical tile grid the crossbar is realized on (max rows/columns per
  /// tile, 0 = unbounded).  The all-zero default keeps the historical
  /// monolithic execution; a bounded shape makes both engines sweep the
  /// row bands of the grid with digital partial-sum accumulation (see
  /// docs/tiling.md).
  crossbar::TileShape tiles{};

  enum class EngineKind {
    kAnalog,  ///< DG FeFET currents + variation + ADC (default)
    kIdeal    ///< exact arithmetic, in-situ cost accounting (ablations)
  };
  EngineKind engine = EngineKind::kAnalog;

  device::DgFefetParams device{};
  device::VariationParams variation{};
  crossbar::AnalogEngineConfig analog{};
  std::uint64_t array_seed = 0x5eed;  ///< programming-time variation stream
  /// Digest-keyed programmed-array cache (crossbar/array_cache.hpp).  When
  /// set, the analog annealer obtains its array via
  /// ArrayCache::get_or_build() -- identical inputs across annealers (batch
  /// entries, serve-loop jobs) then share one programmed array.  Results
  /// are bit-identical with or without the cache (invariants 1 + 2; pinned
  /// by tests/test_array_cache.cpp).  Null = program privately (default).
  std::shared_ptr<crossbar::ArrayCache> array_cache;

  /// Warm start: when set, every run copies this configuration instead of
  /// drawing random spins (core/run_driver.hpp; must match the model's spin
  /// count, ancilla included).  Null = random initialization.
  std::shared_ptr<const ising::SpinVector> initial_spins;

  TraceOptions trace{};
};

class InSituCimAnnealer final : public Annealer {
 public:
  /// `model` must be pure quadratic (no fields) -- callers fold fields with
  /// IsingModel::with_ancilla() first.
  InSituCimAnnealer(std::shared_ptr<const ising::IsingModel> model,
                    InSituConfig config);

  using Annealer::run;
  AnnealResult run(std::uint64_t seed,
                   const CancellationToken& token) const override;

  cost::ExpUnit exp_unit() const noexcept override {
    return cost::ExpUnit::kNone;  // fractional factor realized in situ
  }
  std::string_view name() const noexcept override { return "this-work"; }
  const ising::IsingModel& model() const noexcept override { return *model_; }

  const BgAnnealingSchedule& schedule() const noexcept { return schedule_; }
  const crossbar::CrossbarMapping& mapping() const noexcept { return mapping_; }
  /// Programmed array (null when running the ideal engine).
  std::shared_ptr<const crossbar::ProgrammedArray> array() const noexcept {
    return array_;
  }

 private:
  /// Per-run scratch, allocated once at the top of run() so the annealing
  /// inner loop performs zero heap allocations (pinned by the counting
  /// allocator test in tests/test_perf_equivalence.cpp).
  struct RunWorkspace {
    ising::FlipSet flips;                   ///< reused proposal buffer
    std::vector<std::uint8_t> member_mask;  ///< O(1) flip-set membership
    ising::LocalFieldCache field_cache;     ///< exact-energy bookkeeping
  };

  /// Connected flip set grown by a random walk on the coupling graph,
  /// written into ws.flips.  ws.member_mask provides O(1) duplicate checks;
  /// uniform re-draws are bounded, falling back to an exact uniform pick
  /// over the not-yet-chosen spins so dense flip sets (t close to the
  /// number of flippable spins) terminate deterministically.
  void cluster_flip_set(util::Rng& rng, RunWorkspace& ws) const;

  std::shared_ptr<const ising::IsingModel> model_;
  InSituConfig config_;
  BgAnnealingSchedule schedule_;
  crossbar::CrossbarMapping mapping_;
  std::shared_ptr<const crossbar::ProgrammedArray> array_;
};

}  // namespace fecim::core
