#include "core/mesa.hpp"

#include <cmath>

#include "core/acceptance.hpp"
#include "core/run_driver.hpp"
#include "crossbar/bit_slicing.hpp"
#include "crossbar/ideal_engine.hpp"
#include "ising/flipset.hpp"
#include "util/assert.hpp"

namespace fecim::core {

MesaAnnealer::MesaAnnealer(std::shared_ptr<const ising::IsingModel> model,
                           MesaConfig config)
    : model_(std::move(model)),
      config_(std::move(config)),
      mapping_(model_->num_spins(),
               crossbar::QuantizedCouplings(model_->couplings(),
                                            config_.base.mapping.bits)
                       .has_negative()
                   ? 2
                   : 1,
               config_.base.mapping) {
  FECIM_EXPECTS(model_ != nullptr);
  FECIM_EXPECTS(config_.epochs >= 1);
  FECIM_EXPECTS(config_.epoch_temperature_decay > 0.0 &&
                config_.epoch_temperature_decay <= 1.0);
  // Reuse the DirectEAnnealer's auto-calibration for the epoch-0 scale.
  const DirectEAnnealer probe(model_, config_.base);
  t_start_ = probe.calibrated_t_start();
}

AnnealResult MesaAnnealer::run(std::uint64_t seed,
                               const CancellationToken& token) const {
  const std::size_t base_per_epoch =
      std::max<std::size_t>(1, config_.base.iterations / config_.epochs);
  const std::size_t remainder =
      config_.base.iterations > base_per_epoch * config_.epochs
          ? config_.base.iterations - base_per_epoch * config_.epochs
          : 0;

  crossbar::IdealCrossbarEngine engine(*model_, mapping_,
                                       crossbar::Accounting::kDirectFullArray,
                                       config_.base.tiles);
  const MetropolisAcceptance acceptance;

  // MESA records no trajectory (the epoch restarts would need their own
  // encoding), so the driver gets a disabled trace regardless of config.
  RunDriver driver(*model_, seed, token,
                   {0, TraceOptions{}, config_.base.initial_spins.get()});
  auto& rng = driver.rng;
  auto& spins = driver.spins;

  // `global_it` strides across epoch boundaries so the cancellation poll
  // cadence matches the single-schedule annealers.
  std::uint64_t global_it = 0;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Each epoch restarts from the incumbent best with a reheated (but
    // decaying) temperature ladder.
    spins = driver.result.best_spins;
    driver.energy = driver.result.best_energy;
    // Early epochs absorb the division remainder so the exact budget runs.
    const std::size_t per_epoch = base_per_epoch + (epoch < remainder ? 1 : 0);
    const double epoch_t_start =
        t_start_ * std::pow(config_.epoch_temperature_decay,
                            static_cast<double>(epoch));
    const ClassicSchedule schedule(
        {epoch_t_start, epoch_t_start * config_.base.t_end_fraction,
         per_epoch, config_.base.schedule_kind});

    for (std::size_t it = 0; it < per_epoch; ++it, ++global_it) {
      driver.poll(global_it);
      const double temperature = schedule.temperature(it);
      const auto flips = ising::random_flip_set(
          model_->num_flippable(), config_.base.flips_per_iteration, rng);
      const auto evaluation = engine.evaluate(spins, flips, {1.0, 0.0});
      crossbar::merge_trace(driver.result.ledger, evaluation.trace);
      ++driver.result.ledger.iterations;
      double delta_e = 4.0 * evaluation.raw_vmv;
      for (const auto i : flips)
        delta_e += -2.0 * model_->fields()[i] * static_cast<double>(spins[i]);

      const auto decision = acceptance.accept(delta_e, temperature, rng);
      if (decision.exp_evaluated) ++driver.result.ledger.exp_evaluations;
      if (decision.accepted) {
        driver.energy += delta_e;
        ising::flip_in_place(spins, flips);
        driver.count_accept(flips.size(), delta_e > 0.0);
        driver.track_best();
      }
    }
  }

  return driver.finish();
}

}  // namespace fecim::core
