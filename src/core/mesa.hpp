// Multi-Epoch Simulated Annealing (MESA), the algorithmic enhancement of
// the FeFET CiM annealer of Yin et al. [7]: the iteration budget splits into
// epochs; each epoch restarts the temperature ladder (scaled down per epoch)
// from the best configuration found so far, combining exploitation of the
// incumbent with renewed uphill mobility.
#pragma once

#include <memory>

#include "core/direct_annealer.hpp"

namespace fecim::core {

struct MesaConfig {
  std::size_t epochs = 4;
  /// Temperature scale multiplier applied per epoch (reheat decay).
  double epoch_temperature_decay = 0.5;
  DirectEConfig base{};  ///< iterations = total budget across all epochs
};

class MesaAnnealer final : public Annealer {
 public:
  MesaAnnealer(std::shared_ptr<const ising::IsingModel> model,
               MesaConfig config);

  using Annealer::run;
  AnnealResult run(std::uint64_t seed,
                   const CancellationToken& token) const override;

  cost::ExpUnit exp_unit() const noexcept override {
    return config_.base.exp_unit;
  }
  std::string_view name() const noexcept override { return "mesa"; }
  const ising::IsingModel& model() const noexcept override { return *model_; }

 private:
  std::shared_ptr<const ising::IsingModel> model_;
  MesaConfig config_;
  crossbar::CrossbarMapping mapping_;
  double t_start_;
};

}  // namespace fecim::core
