#include "core/problem_instance.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fecim::core {

const char* objective_sense_name(ObjectiveSense sense) noexcept {
  return sense == ObjectiveSense::kMaximize ? "maximize" : "minimize";
}

bool ProblemInstance::success(const DecodedSolution& solution,
                              double threshold) const {
  if (!solution.feasible) return false;
  if (sense == ObjectiveSense::kMaximize)
    return solution.objective >= threshold * reference_objective;
  return solution.objective <= (2.0 - threshold) * reference_objective;
}

void validate_problem(const ProblemInstance& problem) {
  FECIM_EXPECTS(problem.model != nullptr);
  FECIM_EXPECTS(problem.model->num_spins() > 0);
  // Annealers require the fields folded (with_ancilla) before construction;
  // catching it here names the problem instead of the annealer internals.
  FECIM_EXPECTS(!problem.model->has_fields());
  FECIM_EXPECTS(static_cast<bool>(problem.decode));
  FECIM_EXPECTS(std::isfinite(problem.reference_objective));
}

}  // namespace fecim::core
