#include "core/problem_instance.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fecim::core {

const char* objective_sense_name(ObjectiveSense sense) noexcept {
  return sense == ObjectiveSense::kMaximize ? "maximize" : "minimize";
}

bool ProblemInstance::success(const DecodedSolution& solution,
                              double threshold) const {
  if (!solution.feasible) return false;
  // "Within (1 - threshold) of the reference" measured as a fraction of
  // |reference|, so the test stays meaningful for the negative references
  // generic QUBO minimization produces (a sign-naive threshold * reference
  // would *tighten* past the reference there).  For non-negative references
  // this reduces exactly to the historical objective >= threshold * ref
  // (maximize) / objective <= (2 - threshold) * ref (minimize) forms.
  const double slack =
      (1.0 - threshold) * std::fabs(reference_objective);
  if (sense == ObjectiveSense::kMaximize)
    return solution.objective >= reference_objective - slack;
  return solution.objective <= reference_objective + slack;
}

void validate_problem(const ProblemInstance& problem) {
  FECIM_EXPECTS(problem.model != nullptr);
  FECIM_EXPECTS(problem.model->num_spins() > 0);
  // Annealers require the fields folded (with_ancilla) before construction;
  // catching it here names the problem instead of the annealer internals.
  FECIM_EXPECTS(!problem.model->has_fields());
  FECIM_EXPECTS(static_cast<bool>(problem.decode));
  FECIM_EXPECTS(std::isfinite(problem.reference_objective));
}

}  // namespace fecim::core
