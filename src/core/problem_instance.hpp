// Problem-agnostic campaign abstraction.
//
// The paper positions the FeCiM in-situ annealer as a general combinatorial
// optimization engine; a ProblemInstance is the contract between one COP
// family (Max-Cut, graph coloring, knapsack, number partitioning, TSP) and
// the campaign runner: an annealer-ready Ising model, a best-known reference
// objective, and a decode hook that maps a final spin vector back into the
// problem's own domain (cut value, conflict count, knapsack value +
// capacity feasibility, partition imbalance, tour length).
//
// Factories for the five built-in families live in problems/instances.hpp;
// docs/problems.md documents each family's encoding, penalty auto-tuning
// and decode/feasibility semantics.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "ising/ising_model.hpp"

namespace fecim::core {

/// Whether a larger or a smaller domain objective is better.
enum class ObjectiveSense { kMaximize, kMinimize };

const char* objective_sense_name(ObjectiveSense sense) noexcept;

/// Domain-level outcome of decoding one run's best spin configuration.
struct DecodedSolution {
  /// Domain objective (cut value, knapsack value, imbalance, tour length,
  /// colors used).  For hard-constrained encodings the value is only
  /// meaningful when `feasible`; campaign statistics aggregate it over
  /// feasible runs.
  double objective = 0.0;
  /// All domain constraints satisfied (always true for unconstrained
  /// families such as Max-Cut and number partitioning).
  bool feasible = true;
  /// Constraint-violation count (non-one-hot groups, monochromatic edges,
  /// capacity excess...); 0 iff `feasible`.  Aggregated over every run, so
  /// near-miss quality is visible even when no run is feasible.
  double violations = 0.0;
};

/// One COP instance bundled with everything the campaign runner needs.
/// Plain data + a decode hook rather than a class hierarchy: factories
/// capture their encoding state (slack layout, one-hot geometry, distance
/// matrix) inside the std::function, and call sites stay value-semantic.
struct ProblemInstance {
  std::string name;
  std::string family;           ///< maxcut | coloring | knapsack | partition | tsp
  std::string summary;          ///< human-readable shape, e.g. "800 vertices, 19176 edges"
  std::string objective_label;  ///< what `objective` measures, e.g. "cut"

  /// Annealer-ready shared model: pure quadratic, with any QUBO linear
  /// terms already folded into a pinned ancilla spin (with_ancilla()).
  std::shared_ptr<const ising::IsingModel> model;

  double reference_objective = 0.0;  ///< best-known / heuristic reference
  ObjectiveSense sense = ObjectiveSense::kMaximize;

  /// Map a full spin vector (ancilla included, when the model carries one)
  /// to the domain objective + feasibility.  Must be pure and thread-safe:
  /// the campaign runner invokes it concurrently from worker threads.
  std::function<DecodedSolution(std::span<const ising::Spin>)> decode;

  /// Optional constructive warm start: a deterministic domain heuristic
  /// (greedy cut, DSatur coloring) producing a full spin vector in the
  /// model's layout, ancilla included.  Null for families without one; the
  /// CLI's --init greedy surfaces it (problems/warm_start.hpp).  Must be
  /// pure and thread-safe like decode.
  std::function<ising::SpinVector()> warm_start;

  /// Sense-aware success test against the reference objective:
  ///   maximize: feasible and objective >= reference - (1 - t) * |reference|,
  ///   minimize: feasible and objective <= reference + (1 - t) * |reference|
  /// (threshold 0.9 means "within 10 % of the reference" either way -- also
  /// for the negative references generic QUBO minimization produces; a zero
  /// reference demands an exact optimum).  Reduces to the historical
  /// threshold * reference forms for non-negative references.
  bool success(const DecodedSolution& solution, double threshold) const;

  /// objective / reference; sense-independent, so < 1 beats the reference
  /// for minimization families and trails it for maximization families.
  /// Only defined when the reference is nonzero (callers guard).
  double normalized(double objective) const {
    return objective / reference_objective;
  }
};

/// Contract checks shared by the runner and the factories: model present and
/// pure-quadratic-ready, decode hook set, finite reference.
void validate_problem(const ProblemInstance& problem);

}  // namespace fecim::core
