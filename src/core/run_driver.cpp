#include "core/run_driver.hpp"

#include "util/assert.hpp"

namespace fecim::core {

RunDriver::RunDriver(const ising::IsingModel& model, std::uint64_t seed,
                     const CancellationToken& token, const Options& options)
    : rng(seed), token_(&token), trace_(options.trace) {
  if (options.initial_spins != nullptr) {
    FECIM_EXPECTS(options.initial_spins->size() == model.num_spins());
    spins = *options.initial_spins;
  } else {
    spins = ising::random_spins(model.num_spins(), rng);
  }
  if (model.has_ancilla()) spins[model.ancilla_index()] = ising::Spin{1};
  energy = model.energy(spins);
  result.best_spins = spins;
  result.best_energy = energy;

  if (trace_.enabled) {
    if (trace_.stride == 0) trace_.stride = 1;
    result.trajectory.reserve(options.iterations / trace_.stride + 1);
    result.ledger_trajectory.reserve(options.iterations / trace_.stride + 1);
  }
  check_cancellation_ = token.active();
}

}  // namespace fecim::core
