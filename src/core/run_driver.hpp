// Shared per-run scaffolding for every solver backend.
//
// Each Annealer::run() used to open with the same dozen lines -- seed the
// sequential RNG, draw (or copy) the initial spin configuration, pin the
// ancilla, compute the starting energy, reserve the trajectory buffers,
// latch the cancellation flag -- and close with the same AnnealResult
// assembly.  RunDriver owns exactly that infrastructure so the annealer
// subclasses contain only their dynamics (Metropolis proposals, fractional
// acceptance, simulated-bifurcation oscillator updates) and every backend
// picks up run features (warm starts, cancellation, tracing) uniformly.
//
// Bit-identity contract: for a randomly-initialized run the driver performs
// the historical operations in the historical order -- Rng(seed) construction
// followed immediately by ising::random_spins(n, rng) -- so annealers
// rebuilt on the driver reproduce their pre-refactor results exactly
// (pinned by the refactor-guard digests in tests/test_bifurcation.cpp).
// Warm starts copy the provided spins instead of drawing from the RNG; that
// is a new mode with no goldens to preserve.
#pragma once

#include "core/annealer.hpp"
#include "ising/ising_model.hpp"
#include "util/rng.hpp"

namespace fecim::core {

class RunDriver {
 public:
  struct Options {
    /// Iteration budget, used to size the trajectory reservations.
    std::size_t iterations = 0;
    /// Trace recording; a disabled trace makes record() a no-op (MESA keeps
    /// its historical no-trace behavior by passing a default TraceOptions).
    TraceOptions trace{};
    /// Warm start: copied verbatim (ancilla re-pinned) instead of drawing
    /// random spins.  Null = random initialization (the default).  Must
    /// match the model's spin count when set.
    const ising::SpinVector* initial_spins = nullptr;
  };

  /// Seeds the RNG, initializes spins (random or warm), pins the ancilla,
  /// computes the starting energy and best-so-far, reserves the trace
  /// buffers, and latches the amortized cancellation gate.
  RunDriver(const ising::IsingModel& model, std::uint64_t seed,
            const CancellationToken& token, const Options& options);

  // The dynamics loop owns these directly -- the driver is scaffolding, not
  // an abstraction boundary, and the hot loops stay allocation- and
  // indirection-free.
  util::Rng rng;
  ising::SpinVector spins;
  double energy = 0.0;
  AnnealResult result;

  /// Amortized cancellation poll: one predictable branch per iteration when
  /// the token is inactive, a clock read every kCancellationCheckStride
  /// iterations when it is (fires at iteration 0 too; PERF.md invariant 6).
  void poll(std::uint64_t iteration) const {
    if (check_cancellation_ &&
        (iteration & (kCancellationCheckStride - 1)) == 0)
      token_->raise_if_stopped();
  }

  /// Book one accepted move: spin-update ledger events plus the
  /// accepted/uphill counters.  The caller decides what "uphill" means for
  /// its dynamics (noisy E_inc estimate vs exact dE).
  void count_accept(std::size_t flips_applied, bool uphill) {
    result.ledger.spin_updates += flips_applied;
    ++result.accepted_moves;
    if (uphill) ++result.uphill_accepted;
  }

  /// Fold the current configuration into the best-so-far.
  void track_best() {
    if (energy < result.best_energy) {
      result.best_energy = energy;
      result.best_spins = spins;
    }
  }

  /// Record one trajectory + ledger-snapshot point when tracing is enabled
  /// and `iteration` lands on the stride.
  void record(std::uint64_t iteration, double control) {
    if (trace_.enabled && iteration % trace_.stride == 0) {
      result.trajectory.push_back(
          {iteration, energy, result.best_energy, control});
      result.ledger_trajectory.push_back({iteration, result.ledger});
    }
  }

  /// Assemble the final AnnealResult (moves the spin vector out; the driver
  /// is spent afterwards).
  AnnealResult finish() {
    result.final_spins = std::move(spins);
    result.final_energy = energy;
    return std::move(result);
  }

 private:
  const CancellationToken* token_;
  TraceOptions trace_;
  bool check_cancellation_ = false;
};

}  // namespace fecim::core
