#include "core/run_journal.hpp"

#include <array>
#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace fecim::core {

namespace {

std::string format_double(double value) {
  // %a hexfloat: bit-exact round-trip through strtod, including nan/inf.
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

bool parse_double_token(const std::string& token, double& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

bool parse_u64_token(const std::string& token, std::uint64_t& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(token.c_str(), &end, 10);
  return end == token.c_str() + token.size() && errno == 0;
}

/// CostLedger fields in declaration order -- the journal's ledger column
/// order is pinned to this.
std::array<std::uint64_t*, 11> ledger_fields(crossbar::CostLedger& ledger) {
  return {&ledger.iterations,      &ledger.adc_conversions,
          &ledger.mux_slot_cycles, &ledger.row_drives,
          &ledger.column_drives,   &ledger.bg_dac_updates,
          &ledger.exp_evaluations, &ledger.spin_updates,
          &ledger.crossbar_passes, &ledger.tile_activations,
          &ledger.partial_sum_updates};
}

bool parse_ledger(const std::string& token, crossbar::CostLedger& ledger) {
  const auto fields = ledger_fields(ledger);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const std::size_t comma = token.find(',', pos);
    const bool last = i + 1 == fields.size();
    if (last != (comma == std::string::npos)) return false;
    const std::string part =
        token.substr(pos, last ? std::string::npos : comma - pos);
    if (!parse_u64_token(part, *fields[i])) return false;
    pos = comma + 1;
  }
  return true;
}

}  // namespace

std::string format_journal_header(std::uint64_t base_seed, std::size_t runs) {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer,
                "# fecim-journal v1 base_seed %llu runs %zu",
                static_cast<unsigned long long>(base_seed), runs);
  return buffer;
}

bool parse_journal_header(const std::string& line, std::uint64_t& base_seed,
                          std::size_t& runs) {
  unsigned long long file_seed = 0;
  std::size_t file_runs = 0;
  if (std::sscanf(line.c_str(), "# fecim-journal v1 base_seed %llu runs %zu",
                  &file_seed, &file_runs) != 2)
    return false;
  base_seed = file_seed;
  runs = file_runs;
  return true;
}

std::string encode_journal_entry(const JournalEntry& entry) {
  std::ostringstream out;
  out << "run " << entry.run << ' ' << run_status_name(entry.record.status)
      << ' ' << entry.record.attempt << ' ' << entry.record.seed;
  if (entry.record.status == RunStatus::kOk) {
    out << ' ' << format_double(entry.record.best_energy) << ' '
        << format_double(entry.record.solution.objective) << ' '
        << (entry.record.solution.feasible ? 1 : 0) << ' '
        << format_double(entry.record.solution.violations) << ' ';
    auto ledger = entry.ledger;
    const auto fields = ledger_fields(ledger);
    for (std::size_t i = 0; i < fields.size(); ++i)
      out << (i == 0 ? "" : ",") << *fields[i];
    out << ' ';
    for (const auto spin : entry.record.best_spins)
      out << (spin > 0 ? '+' : '-');
    // Completeness sentinel: a torn line cannot end in a lone "end" token,
    // so a partially written record is detectable.
    out << " end";
  } else {
    // Length-prefixed message: a truncated tail fails the length check
    // instead of silently yielding a shortened error string.
    std::string message = entry.record.error;
    for (auto& c : message)
      if (c == '\n' || c == '\r') c = ' ';
    out << ' ' << message.size() << ' ' << message;
  }
  return out.str();
}

bool decode_journal_entry(const std::string& line, JournalEntry& entry) {
  std::istringstream in(line);
  std::string tag;
  std::string status_name;
  if (!(in >> tag) || tag != "run") return false;
  if (!(in >> entry.run >> status_name >> entry.record.attempt >>
        entry.record.seed))
    return false;
  if (status_name == "ok") {
    entry.record.status = RunStatus::kOk;
  } else if (status_name == "failed") {
    entry.record.status = RunStatus::kFailed;
  } else if (status_name == "timed-out") {
    entry.record.status = RunStatus::kTimedOut;
  } else if (status_name == "cancelled") {
    entry.record.status = RunStatus::kCancelled;
  } else {
    return false;
  }

  if (entry.record.status == RunStatus::kOk) {
    std::string energy_token;
    std::string objective_token;
    std::string violations_token;
    std::string ledger_token;
    std::string spins_token;
    std::string sentinel;
    int feasible = 0;
    if (!(in >> energy_token >> objective_token >> feasible >>
          violations_token >> ledger_token >> spins_token >> sentinel))
      return false;
    if (sentinel != "end" || (in >> sentinel)) return false;
    if (feasible != 0 && feasible != 1) return false;
    if (!parse_double_token(energy_token, entry.record.best_energy) ||
        !parse_double_token(objective_token, entry.record.solution.objective) ||
        !parse_double_token(violations_token,
                            entry.record.solution.violations) ||
        !parse_ledger(ledger_token, entry.ledger))
      return false;
    entry.record.solution.feasible = feasible == 1;
    entry.record.error.clear();
    entry.record.best_spins.clear();
    entry.record.best_spins.reserve(spins_token.size());
    for (const char c : spins_token) {
      if (c != '+' && c != '-') return false;
      entry.record.best_spins.push_back(c == '+' ? ising::Spin{1}
                                                 : ising::Spin{-1});
    }
  } else {
    std::size_t length = 0;
    if (!(in >> length)) return false;
    in.get();  // the single separator space
    std::string message(length, '\0');
    if (length > 0) in.read(message.data(), static_cast<std::streamsize>(length));
    if (static_cast<std::size_t>(in.gcount()) != length && length > 0)
      return false;
    if (in.peek() != std::istringstream::traits_type::eof()) return false;
    entry.record.error = std::move(message);
    entry.record.best_energy = 0.0;
    entry.record.solution = failed_run_solution();
    entry.record.best_spins.clear();
    entry.ledger = crossbar::CostLedger{};
  }
  return true;
}

void RecordStreamDecoder::feed(const char* data, std::size_t size,
                               std::vector<JournalEntry>& out) {
  buffer_.append(data, size);
  std::size_t start = 0;
  for (;;) {
    const std::size_t newline = buffer_.find('\n', start);
    if (newline == std::string::npos) break;
    const std::string line = buffer_.substr(start, newline - start);
    start = newline + 1;
    if (line.empty()) continue;
    JournalEntry entry;
    FECIM_EXPECTS(decode_journal_entry(line, entry) &&
                  "record stream: corrupt complete line (a torn record "
                  "would have no newline)");
    out.push_back(std::move(entry));
  }
  buffer_.erase(0, start);
}

std::vector<JournalEntry> read_journal_file(
    const std::string& path, std::uint64_t base_seed, std::size_t runs,
    std::vector<std::string>* valid_lines) {
  std::vector<JournalEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(std::move(line));
  std::vector<char> seen(runs, 0);
  bool have_header = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const bool last = i + 1 == lines.size();
    const std::string& text = lines[i];
    if (text.empty()) continue;
    if (!have_header) {
      std::uint64_t file_seed = 0;
      std::size_t file_runs = 0;
      FECIM_EXPECTS(parse_journal_header(text, file_seed, file_runs) &&
                    "journal: missing or malformed header");
      FECIM_EXPECTS(file_seed == base_seed && file_runs == runs &&
                    "journal: header does not match this campaign");
      have_header = true;
      continue;
    }
    JournalEntry entry;
    if (!decode_journal_entry(text, entry)) {
      // A torn final line is the expected kill artifact; anything
      // earlier is corruption.
      FECIM_EXPECTS(last && "journal: corrupt interior line");
      continue;
    }
    FECIM_EXPECTS(entry.run < runs &&
                  "journal: run index out of range for this campaign");
    FECIM_EXPECTS(!seen[entry.run] && "journal: duplicate run entry");
    seen[entry.run] = 1;
    // Cancelled runs carry no work -- never install them from a file, so a
    // resume re-executes them (append never writes them either).
    if (entry.record.status == RunStatus::kCancelled) continue;
    if (valid_lines != nullptr) valid_lines->push_back(text);
    entries.push_back(std::move(entry));
  }
  return entries;
}

RunJournal::~RunJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

std::vector<JournalEntry> RunJournal::open(const std::string& path,
                                           bool resume,
                                           std::uint64_t base_seed,
                                           std::size_t runs) {
  FECIM_EXPECTS(file_ == nullptr);
  FECIM_EXPECTS(!path.empty());

  std::vector<JournalEntry> entries;
  std::vector<std::string> valid_lines;
  if (resume)
    entries = read_journal_file(path, base_seed, runs, &valid_lines);

  // Rewrite header + valid prefix (compaction drops any torn tail), then
  // keep the handle for appends.
  file_ = std::fopen(path.c_str(), "w");
  FECIM_EXPECTS(file_ != nullptr && "journal: cannot open path for writing");
  std::fprintf(file_, "%s\n", format_journal_header(base_seed, runs).c_str());
  for (const auto& text : valid_lines) std::fprintf(file_, "%s\n", text.c_str());
  std::fflush(file_);
  return entries;
}

void RunJournal::append(const JournalEntry& entry) {
  if (!enabled()) return;
  // Cancelled runs never executed: journaling them would make a resume
  // skip work that was never done.
  if (entry.record.status == RunStatus::kCancelled) return;
  const std::string line = encode_journal_entry(entry);
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(file_, "%s\n", line.c_str());
  std::fflush(file_);
}

}  // namespace fecim::core
