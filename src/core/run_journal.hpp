// Append-only checkpoint journal for campaign runs (docs/robustness.md),
// and the record codec its line format has grown into: the same v1 lines
// serve as the on-disk checkpoint AND as the wire protocol shard workers
// stream RunRecords over (docs/sharding.md).
//
// One text line per terminal run, flushed as the run completes, so a killed
// process loses at most the line it was writing.  On resume the journal is
// parsed, validated against the campaign (base seed, run count), and the
// recorded outcomes are installed without re-executing -- because run seeds
// are derived up front and the reduction walks runs in index order, the
// resumed CampaignResult is bit-identical to an uninterrupted one.
//
// Format (version 1, '#'-prefixed header, space-separated fields):
//
//   # fecim-journal v1 base_seed <u64> runs <count>
//   run <index> ok <attempt> <seed> <energy> <objective> <feas> <violations>
//       <ledger: 11 comma-separated u64, CostLedger declaration order>
//       <spins: one '+'/'-' per spin> end
//   run <index> failed <attempt> <seed> <msglen> <error message>
//   run <index> timed-out <attempt> <seed> <msglen> <error message>
//   run <index> cancelled <attempt> <seed> <msglen> <error message>
//
// Doubles are written as printf "%a" hexfloats so the round-trip is
// bit-exact.  The trailing "end" sentinel on ok lines and the length prefix
// on message lines make a torn/partial record detectable exactly the same
// way on disk and on a pipe.  Cancelled runs are never *journaled* to a
// file (they carry no work, and a resume should re-execute them) but they
// do encode/decode: the shard wire must carry every terminal status so the
// parent's per_run vector matches the in-process path bit for bit.  A torn
// final line (the kill case) is dropped on open -- the file is compacted to
// its valid prefix before new lines are appended; a malformed interior line
// means real corruption and throws contract_error.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "core/runner.hpp"

namespace fecim::core {

/// One parsed journal line: the run index plus everything the reduction
/// needs (the cost breakdown is recomputed from the ledger on resume --
/// cost::compute_cost is a pure function of it).
struct JournalEntry {
  std::size_t run = 0;
  RunRecord record;
  crossbar::CostLedger ledger{};
};

// ---------------------------------------------------------------------------
// Record codec -- shared by the file journal and the shard wire protocol.
// ---------------------------------------------------------------------------

/// The v1 header line (no trailing newline).
std::string format_journal_header(std::uint64_t base_seed, std::size_t runs);

/// Parse a v1 header line; false on any syntax problem.
bool parse_journal_header(const std::string& line, std::uint64_t& base_seed,
                          std::size_t& runs);

/// Encode one entry as a v1 line (no trailing newline).  All four terminal
/// statuses encode -- RunJournal::append skips kCancelled for files, but
/// the shard wire carries them.
std::string encode_journal_entry(const JournalEntry& entry);

/// Decode one entry line.  Returns false on any framing/syntax problem --
/// the caller decides whether that means a torn tail (dropped) or interior
/// corruption (contract_error).
bool decode_journal_entry(const std::string& line, JournalEntry& entry);

/// Incremental decoder over a streaming byte source (a shard worker's
/// pipe): feed arbitrary chunks, collect complete decoded entries as
/// newlines arrive.  A record truncated by a dying writer never gains its
/// newline, so it stays in the partial-line buffer instead of decoding --
/// torn records are detectable byte for byte like on disk.  A
/// newline-terminated line that fails to decode is real wire corruption and
/// throws contract_error.
class RecordStreamDecoder {
 public:
  /// Append `size` bytes; complete entries append to `out`.
  void feed(const char* data, std::size_t size,
            std::vector<JournalEntry>& out);

  /// True when the stream ended mid-record (torn tail).
  bool has_partial_line() const noexcept { return !buffer_.empty(); }
  const std::string& partial_line() const noexcept { return buffer_; }

 private:
  std::string buffer_;
};

/// Read-only parse of a journal file: header validated against
/// (base_seed, runs), entries validated for range and uniqueness, a torn
/// final line dropped, interior corruption throws contract_error.  A
/// missing file yields an empty vector.  Cancelled entries (only possible
/// in a hand-edited file) are skipped -- a resume must re-execute them.
/// When `valid_lines` is non-null it receives the surviving raw lines, for
/// compaction.
std::vector<JournalEntry> read_journal_file(
    const std::string& path, std::uint64_t base_seed, std::size_t runs,
    std::vector<std::string>* valid_lines = nullptr);

/// Append-side handle.  Thread-safe: workers append from inside
/// parallel_for as their runs complete; each line is flushed immediately.
class RunJournal {
 public:
  RunJournal() = default;
  ~RunJournal();
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// Open `path` for appending and return the previously journaled entries.
  ///
  /// Fresh journals (resume == false) are truncated and get a header, and
  /// the returned vector is empty.  With resume == true an existing file is
  /// parsed (header must match `base_seed` / `runs`; entries are validated
  /// for range and uniqueness), compacted to its valid prefix (dropping a
  /// torn trailing line from a killed writer), and extended in place; a
  /// missing file degrades to a fresh start.
  std::vector<JournalEntry> open(const std::string& path, bool resume,
                                 std::uint64_t base_seed, std::size_t runs);

  bool enabled() const noexcept { return file_ != nullptr; }

  void append(const JournalEntry& entry);

 private:
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

}  // namespace fecim::core
