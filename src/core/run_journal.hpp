// Append-only checkpoint journal for campaign runs (docs/robustness.md).
//
// One text line per terminal run, flushed as the run completes, so a killed
// process loses at most the line it was writing.  On resume the journal is
// parsed, validated against the campaign (base seed, run count), and the
// recorded outcomes are installed without re-executing -- because run seeds
// are derived up front and the reduction walks runs in index order, the
// resumed CampaignResult is bit-identical to an uninterrupted one.
//
// Format (version 1, '#'-prefixed header, space-separated fields):
//
//   # fecim-journal v1 base_seed <u64> runs <count>
//   run <index> ok <attempt> <seed> <energy> <objective> <feas> <violations>
//       <ledger: 11 comma-separated u64, CostLedger declaration order>
//       <spins: one '+'/'-' per spin>
//   run <index> failed <attempt> <seed> <error message to end of line>
//   run <index> timed-out <attempt> <seed> <error message to end of line>
//
// Doubles are written as printf "%a" hexfloats so the round-trip is
// bit-exact.  Cancelled runs are never journaled: they carry no work, and a
// resume should re-execute them.  A torn final line (the kill case) is
// dropped on open -- the file is compacted to its valid prefix before new
// lines are appended; a malformed interior line means real corruption and
// throws contract_error.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "core/runner.hpp"

namespace fecim::core {

/// One parsed journal line: the run index plus everything the reduction
/// needs (the cost breakdown is recomputed from the ledger on resume --
/// cost::compute_cost is a pure function of it).
struct JournalEntry {
  std::size_t run = 0;
  RunRecord record;
  crossbar::CostLedger ledger{};
};

/// Append-side handle.  Thread-safe: workers append from inside
/// parallel_for as their runs complete; each line is flushed immediately.
class RunJournal {
 public:
  RunJournal() = default;
  ~RunJournal();
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// Open `path` for appending and return the previously journaled entries.
  ///
  /// Fresh journals (resume == false) are truncated and get a header, and
  /// the returned vector is empty.  With resume == true an existing file is
  /// parsed (header must match `base_seed` / `runs`; entries are validated
  /// for range and uniqueness), compacted to its valid prefix (dropping a
  /// torn trailing line from a killed writer), and extended in place; a
  /// missing file degrades to a fresh start.
  std::vector<JournalEntry> open(const std::string& path, bool resume,
                                 std::uint64_t base_seed, std::size_t runs);

  bool enabled() const noexcept { return file_ != nullptr; }

  void append(const JournalEntry& entry);

 private:
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

}  // namespace fecim::core
