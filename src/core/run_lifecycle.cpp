#include "core/run_lifecycle.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fecim::core {

const char* run_status_name(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kFailed:
      return "failed";
    case RunStatus::kTimedOut:
      return "timed-out";
    case RunStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

RunStatus parse_run_status(const std::string& name) {
  if (name == "ok") return RunStatus::kOk;
  if (name == "failed") return RunStatus::kFailed;
  if (name == "timed-out") return RunStatus::kTimedOut;
  if (name == "cancelled") return RunStatus::kCancelled;
  FECIM_EXPECTS(false && "unknown run status name");
  return RunStatus::kFailed;  // unreachable
}

const CancellationToken& CancellationToken::none() noexcept {
  static const CancellationToken token;
  return token;
}

void CancellationToken::raise_if_stopped() const {
  switch (status()) {
    case RunStatus::kCancelled:
      throw run_cancelled_error("campaign time limit reached");
    case RunStatus::kTimedOut:
      throw run_timeout_error("run deadline exceeded");
    default:
      return;
  }
}

std::uint64_t run_attempt_seed(std::uint64_t seed, std::uint32_t attempt) {
  if (attempt == 0) return seed;
  // Golden-ratio stride separates attempt streams before the SplitMix64
  // finalizer; distinct attempts of the same run never share a stream.
  std::uint64_t state =
      seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(attempt);
  return util::splitmix64(state);
}

}  // namespace fecim::core
