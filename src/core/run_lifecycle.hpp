// Run lifecycle: the structured error taxonomy, per-run status, cooperative
// cancellation token, and deterministic retry reseeding the campaign runner
// is built on (see docs/robustness.md).
//
// A run terminates in exactly one of four states:
//
//   kOk        -- the annealer completed its iteration budget;
//   kFailed    -- the run threw (device fault, contract violation, injected
//                 fault); eligible for retry under (seed, attempt) reseeding;
//   kTimedOut  -- the per-run deadline expired mid-run; never retried (the
//                 deadline already consumed the run's time budget);
//   kCancelled -- the campaign-level time limit expired before or during the
//                 run; never retried and never journaled, so a later resume
//                 re-executes it.
//
// Cancellation is cooperative: annealer sweep loops poll the token every
// kCancellationCheckStride iterations (a power of two, so the poll gate is
// one mask + compare) and abort by throwing.  An inactive token (no deadline
// set) reduces the poll to a single predictable branch -- the hot path stays
// effectively zero-overhead, pinned by the "analog-lifecycle" bench row.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace fecim::core {

/// Terminal state of one campaign run.
enum class RunStatus : std::uint8_t {
  kOk = 0,
  kFailed = 1,
  kTimedOut = 2,
  kCancelled = 3,
};

/// Stable lower-case name ("ok", "failed", "timed-out", "cancelled") --
/// used in reports, CSV rows, and the journal format.
const char* run_status_name(RunStatus status) noexcept;

/// Parse a run_status_name() string; throws contract_error on unknown names.
RunStatus parse_run_status(const std::string& name);

/// Root of the run-failure taxonomy.  Anything else escaping a run body
/// (std::exception, contract_error, ...) is recorded as kFailed.
class run_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The per-run deadline expired (recorded as kTimedOut).
class run_timeout_error : public run_error {
 public:
  using run_error::run_error;
};

/// The campaign-level time limit expired (recorded as kCancelled).
class run_cancelled_error : public run_error {
 public:
  using run_error::run_error;
};

/// Deterministic test-hook failure raised by the fault-injection harness
/// (CampaignConfig::inject); recorded as kFailed like any other error.
class injected_fault : public run_error {
 public:
  using run_error::run_error;
};

/// Sweep loops poll the cancellation token once per this many iterations.
/// Power of two so the gate compiles to `(it & (stride - 1)) == 0`; the
/// poll fires at iteration 0 too, so a pre-expired deadline trips even on
/// runs shorter than the stride.
inline constexpr std::uint64_t kCancellationCheckStride = 1024;

/// Cooperative stop signal threaded through Annealer::run().  Carries up to
/// two steady-clock deadlines -- per-run and campaign-wide -- fixed before
/// the run starts, so no shared mutable state is needed: workers only read.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;

  /// Shared never-expiring token (the default for plain run(seed) calls).
  static const CancellationToken& none() noexcept;

  void set_run_deadline(Clock::time_point deadline) noexcept {
    run_deadline_ = deadline;
    has_run_deadline_ = true;
  }
  void set_campaign_deadline(Clock::time_point deadline) noexcept {
    campaign_deadline_ = deadline;
    has_campaign_deadline_ = true;
  }

  /// True when any deadline is set.  Annealers gate their amortized poll on
  /// this so a token-free run costs one predictable branch per stride.
  bool active() const noexcept {
    return has_run_deadline_ || has_campaign_deadline_;
  }

  /// Current verdict: kCancelled when the campaign deadline has passed
  /// (dominates -- a run that would also have timed out is still reported
  /// as collateral of the campaign limit), kTimedOut when the run deadline
  /// has passed, kOk otherwise.
  RunStatus status() const noexcept {
    if (!active()) return RunStatus::kOk;
    const auto now = Clock::now();
    if (has_campaign_deadline_ && now >= campaign_deadline_)
      return RunStatus::kCancelled;
    if (has_run_deadline_ && now >= run_deadline_) return RunStatus::kTimedOut;
    return RunStatus::kOk;
  }

  /// Throw run_cancelled_error / run_timeout_error when a deadline passed.
  void raise_if_stopped() const;

 private:
  Clock::time_point run_deadline_{};
  Clock::time_point campaign_deadline_{};
  bool has_run_deadline_ = false;
  bool has_campaign_deadline_ = false;
};

/// Seed for retry attempt `attempt` of a run whose campaign-derived seed is
/// `seed`.  Attempt 0 returns `seed` unchanged -- an untroubled campaign is
/// bit-identical to one run without the retry machinery -- and later
/// attempts mix the attempt index through SplitMix64, so a retried run is
/// itself reproducible: re-running annealer.run(run_attempt_seed(s, a))
/// yields the retried record exactly.
std::uint64_t run_attempt_seed(std::uint64_t seed, std::uint32_t attempt);

}  // namespace fecim::core
