#include "core/runner.hpp"

#include <mutex>

#include "problems/maxcut.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fecim::core {

MaxcutInstance make_maxcut_instance(std::string name, problems::Graph graph,
                                    std::size_t reference_restarts,
                                    std::uint64_t reference_seed) {
  MaxcutInstance instance;
  instance.name = std::move(name);
  instance.reference_cut =
      problems::reference_cut(graph, reference_restarts, reference_seed);
  instance.graph =
      std::make_shared<const problems::Graph>(std::move(graph));
  instance.model = std::make_shared<const ising::IsingModel>(
      problems::maxcut_to_ising(*instance.graph));
  return instance;
}

CampaignResult run_maxcut_campaign(const Annealer& annealer,
                                   const MaxcutInstance& instance,
                                   const CampaignConfig& config) {
  FECIM_EXPECTS(config.runs > 0);
  FECIM_EXPECTS(instance.graph != nullptr && instance.model != nullptr);
  FECIM_EXPECTS(instance.reference_cut > 0.0);

  CampaignResult result;
  result.runs = config.runs;
  std::mutex merge_mutex;
  std::size_t successes = 0;

  // Derive per-run seeds up front so the outcome is independent of the
  // thread schedule.
  util::Rng seeder(config.base_seed);
  std::vector<std::uint64_t> seeds(config.runs);
  for (auto& s : seeds) s = seeder();

  util::parallel_for(
      config.runs,
      [&](std::size_t run) {
        const auto outcome = annealer.run(seeds[run]);
        const double cut = problems::cut_from_energy(*instance.graph,
                                                     outcome.best_energy);
        const auto breakdown =
            cost::compute_cost(outcome.ledger, config.costs,
                               annealer.exp_unit());

        const std::lock_guard<std::mutex> lock(merge_mutex);
        result.cut.add(cut);
        result.normalized_cut.add(cut / instance.reference_cut);
        result.energy.add(breakdown.total_energy);
        result.time.add(breakdown.total_time);
        result.adc_energy.add(breakdown.adc_energy);
        result.exp_energy.add(breakdown.exp_energy);
        result.total_ledger.merge(outcome.ledger);
        if (cut >= config.success_threshold * instance.reference_cut)
          ++successes;
      },
      config.threads);

  result.success_rate =
      static_cast<double>(successes) / static_cast<double>(config.runs);
  return result;
}

}  // namespace fecim::core
