#include "core/runner.hpp"

#include <limits>

#include "problems/maxcut.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fecim::core {

MaxcutInstance make_maxcut_instance(std::string name, problems::Graph graph,
                                    std::size_t reference_restarts,
                                    std::uint64_t reference_seed) {
  MaxcutInstance instance;
  instance.name = std::move(name);
  instance.reference_cut =
      problems::reference_cut(graph, reference_restarts, reference_seed);
  instance.graph =
      std::make_shared<const problems::Graph>(std::move(graph));
  instance.model = std::make_shared<const ising::IsingModel>(
      problems::maxcut_to_ising(*instance.graph));
  return instance;
}

ProblemInstance as_problem(const MaxcutInstance& instance) {
  FECIM_EXPECTS(instance.graph != nullptr && instance.model != nullptr);
  ProblemInstance problem;
  problem.name = instance.name;
  problem.family = "maxcut";
  problem.summary = std::to_string(instance.graph->num_vertices()) +
                    " vertices, " +
                    std::to_string(instance.graph->num_edges()) + " edges";
  problem.objective_label = "cut";
  problem.model = instance.model;
  problem.reference_objective = instance.reference_cut;
  problem.sense = ObjectiveSense::kMaximize;
  problem.decode = [graph = instance.graph](
                       std::span<const ising::Spin> spins) {
    DecodedSolution solution;
    solution.objective = problems::cut_value(*graph, spins);
    solution.feasible = true;  // every bipartition is a valid cut
    return solution;
  };
  return problem;
}

double CampaignResult::best_objective(ObjectiveSense sense) const noexcept {
  if (objective.empty()) return std::numeric_limits<double>::quiet_NaN();
  return sense == ObjectiveSense::kMaximize ? objective.max()
                                            : objective.min();
}

namespace {

/// Per-run aggregation inputs, written into a disjoint slot by whichever
/// worker executes the run.  Keeping one slot per run (instead of per-thread
/// partial statistics) makes the final reduction byte-identical to a serial
/// campaign for every thread count: the reduce below always walks runs in
/// index order, so Welford update order never depends on the schedule.
struct RunOutcome {
  RunRecord record;
  cost::CostBreakdown breakdown{};
  crossbar::CostLedger ledger{};
};

}  // namespace

CampaignResult run_campaign(const Annealer& annealer,
                            const ProblemInstance& problem,
                            const CampaignConfig& config) {
  FECIM_EXPECTS(config.runs > 0);
  validate_problem(problem);

  CampaignResult result;
  result.runs = config.runs;

  // Derive per-run seeds up front so the outcome is independent of the
  // thread schedule.
  util::Rng seeder(config.base_seed);
  std::vector<std::uint64_t> seeds(config.runs);
  for (auto& s : seeds) s = seeder();

  std::vector<RunOutcome> outcomes(config.runs);

  // Replica-parallel execution: each run binds its own engine clone and
  // counter-keyed noise streams inside Annealer::run(seed), so noisy-analog
  // replicas no longer serialize on a shared RNG and need no locking.
  util::parallel_for(
      config.runs,
      [&](std::size_t run) {
        auto outcome = annealer.run(seeds[run]);
        auto& slot = outcomes[run];
        slot.record.seed = seeds[run];
        slot.record.best_energy = outcome.best_energy;
        slot.record.solution = problem.decode(outcome.best_spins);
        slot.record.best_spins = std::move(outcome.best_spins);
        slot.breakdown = cost::compute_cost(outcome.ledger, config.costs,
                                            annealer.exp_unit());
        slot.ledger = outcome.ledger;
      },
      config.threads);

  // Single-threaded reduction in run order -- no merge mutex on the hot
  // path, and the aggregate statistics are schedule-independent.
  std::size_t successes = 0;
  std::size_t feasible = 0;
  result.best_run = config.runs;  // "none feasible" sentinel
  result.per_run.reserve(config.runs);
  for (auto& slot : outcomes) {
    const auto& solution = slot.record.solution;
    if (solution.feasible) {
      ++feasible;
      result.objective.add(solution.objective);
      if (problem.reference_objective != 0.0)
        result.normalized.add(problem.normalized(solution.objective));
      const bool better =
          result.best_run == config.runs ||
          (problem.sense == ObjectiveSense::kMaximize
               ? solution.objective >
                     result.per_run[result.best_run].solution.objective
               : solution.objective <
                     result.per_run[result.best_run].solution.objective);
      if (better) result.best_run = result.per_run.size();
    }
    result.violations.add(solution.violations);
    result.energy.add(slot.breakdown.total_energy);
    result.time.add(slot.breakdown.total_time);
    result.adc_energy.add(slot.breakdown.adc_energy);
    result.exp_energy.add(slot.breakdown.exp_energy);
    result.total_ledger.merge(slot.ledger);
    if (problem.success(solution, config.success_threshold)) ++successes;
    result.per_run.push_back(std::move(slot.record));
  }

  result.success_rate =
      static_cast<double>(successes) / static_cast<double>(config.runs);
  result.feasible_rate =
      static_cast<double>(feasible) / static_cast<double>(config.runs);
  return result;
}

CampaignResult run_maxcut_campaign(const Annealer& annealer,
                                   const MaxcutInstance& instance,
                                   const CampaignConfig& config) {
  return run_campaign(annealer, as_problem(instance), config);
}

}  // namespace fecim::core
