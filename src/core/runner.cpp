#include "core/runner.hpp"

#include "problems/maxcut.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fecim::core {

MaxcutInstance make_maxcut_instance(std::string name, problems::Graph graph,
                                    std::size_t reference_restarts,
                                    std::uint64_t reference_seed) {
  MaxcutInstance instance;
  instance.name = std::move(name);
  instance.reference_cut =
      problems::reference_cut(graph, reference_restarts, reference_seed);
  instance.graph =
      std::make_shared<const problems::Graph>(std::move(graph));
  instance.model = std::make_shared<const ising::IsingModel>(
      problems::maxcut_to_ising(*instance.graph));
  return instance;
}

namespace {

/// Per-run aggregation inputs, written into a disjoint slot by whichever
/// worker executes the run.  Keeping one slot per run (instead of per-thread
/// partial statistics) makes the final reduction byte-identical to a serial
/// campaign for every thread count: the reduce below always walks runs in
/// index order, so Welford update order never depends on the schedule.
struct RunOutcome {
  double cut = 0.0;
  cost::CostBreakdown breakdown{};
  crossbar::CostLedger ledger{};
};

}  // namespace

CampaignResult run_maxcut_campaign(const Annealer& annealer,
                                   const MaxcutInstance& instance,
                                   const CampaignConfig& config) {
  FECIM_EXPECTS(config.runs > 0);
  FECIM_EXPECTS(instance.graph != nullptr && instance.model != nullptr);
  FECIM_EXPECTS(instance.reference_cut > 0.0);

  CampaignResult result;
  result.runs = config.runs;

  // Derive per-run seeds up front so the outcome is independent of the
  // thread schedule.
  util::Rng seeder(config.base_seed);
  std::vector<std::uint64_t> seeds(config.runs);
  for (auto& s : seeds) s = seeder();

  std::vector<RunOutcome> outcomes(config.runs);

  util::parallel_for(
      config.runs,
      [&](std::size_t run) {
        const auto outcome = annealer.run(seeds[run]);
        auto& slot = outcomes[run];
        slot.cut = problems::cut_from_energy(*instance.graph,
                                             outcome.best_energy);
        slot.breakdown = cost::compute_cost(outcome.ledger, config.costs,
                                            annealer.exp_unit());
        slot.ledger = outcome.ledger;
      },
      config.threads);

  // Single-threaded reduction in run order -- no merge mutex on the hot
  // path, and the aggregate statistics are schedule-independent.
  std::size_t successes = 0;
  for (const auto& slot : outcomes) {
    result.cut.add(slot.cut);
    result.normalized_cut.add(slot.cut / instance.reference_cut);
    result.energy.add(slot.breakdown.total_energy);
    result.time.add(slot.breakdown.total_time);
    result.adc_energy.add(slot.breakdown.adc_energy);
    result.exp_energy.add(slot.breakdown.exp_energy);
    result.total_ledger.merge(slot.ledger);
    if (slot.cut >= config.success_threshold * instance.reference_cut)
      ++successes;
  }

  result.success_rate =
      static_cast<double>(successes) / static_cast<double>(config.runs);
  return result;
}

}  // namespace fecim::core
