#include "core/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>

#include "core/run_journal.hpp"
#include "core/shard_runner.hpp"
#include "problems/maxcut.hpp"
#include "problems/warm_start.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fecim::core {

MaxcutInstance make_maxcut_instance(std::string name, problems::Graph graph,
                                    std::size_t reference_restarts,
                                    std::uint64_t reference_seed) {
  MaxcutInstance instance;
  instance.name = std::move(name);
  instance.reference_cut =
      problems::reference_cut(graph, reference_restarts, reference_seed);
  instance.graph =
      std::make_shared<const problems::Graph>(std::move(graph));
  instance.model = std::make_shared<const ising::IsingModel>(
      problems::maxcut_to_ising(*instance.graph));
  return instance;
}

ProblemInstance as_problem(const MaxcutInstance& instance) {
  FECIM_EXPECTS(instance.graph != nullptr && instance.model != nullptr);
  ProblemInstance problem;
  problem.name = instance.name;
  problem.family = "maxcut";
  problem.summary = std::to_string(instance.graph->num_vertices()) +
                    " vertices, " +
                    std::to_string(instance.graph->num_edges()) + " edges";
  problem.objective_label = "cut";
  problem.model = instance.model;
  problem.reference_objective = instance.reference_cut;
  problem.sense = ObjectiveSense::kMaximize;
  problem.decode = [graph = instance.graph](
                       std::span<const ising::Spin> spins) {
    DecodedSolution solution;
    solution.objective = problems::cut_value(*graph, spins);
    solution.feasible = true;  // every bipartition is a valid cut
    return solution;
  };
  problem.warm_start = [graph = instance.graph] {
    return problems::greedy_maxcut_spins(*graph);
  };
  return problem;
}

double CampaignResult::best_objective(ObjectiveSense sense) const noexcept {
  if (objective.empty()) return std::numeric_limits<double>::quiet_NaN();
  return sense == ObjectiveSense::kMaximize ? objective.max()
                                            : objective.min();
}

DecodedSolution failed_run_solution() noexcept {
  DecodedSolution solution;
  solution.objective = std::numeric_limits<double>::quiet_NaN();
  solution.feasible = false;
  solution.violations = 0.0;
  return solution;
}

namespace {

using Clock = CancellationToken::Clock;

Clock::duration to_clock_duration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

bool contains_run(const std::vector<std::size_t>& list, std::size_t run) {
  return std::find(list.begin(), list.end(), run) != list.end();
}

void record_failure(RunOutcome& slot) {
  slot.record.best_energy = 0.0;
  slot.record.solution = failed_run_solution();
  slot.record.best_spins.clear();
  slot.breakdown = cost::CostBreakdown{};
  slot.ledger = crossbar::CostLedger{};
}

}  // namespace

std::vector<std::uint64_t> derive_run_seeds(std::uint64_t base_seed,
                                            std::size_t runs) {
  util::Rng seeder(base_seed);
  std::vector<std::uint64_t> seeds(runs);
  for (auto& s : seeds) s = seeder();
  return seeds;
}

void validate_campaign(const ProblemInstance& problem,
                       const CampaignConfig& config) {
  FECIM_EXPECTS(config.runs > 0);
  FECIM_EXPECTS(std::isfinite(config.run_timeout_seconds) &&
                config.run_timeout_seconds >= 0.0);
  FECIM_EXPECTS(std::isfinite(config.time_limit_seconds) &&
                config.time_limit_seconds >= 0.0);
  FECIM_EXPECTS(!config.resume || !config.journal_path.empty());
  for (const auto run : config.inject.fail_runs)
    FECIM_EXPECTS(run < config.runs);
  for (const auto run : config.inject.hang_runs)
    FECIM_EXPECTS(run < config.runs);
  // Kill injection targets worker processes, not runs; meaningless without
  // the shard runner.
  FECIM_EXPECTS(config.inject.kill_workers.empty() || config.workers > 0);
  for (const auto worker : config.inject.kill_workers)
    FECIM_EXPECTS(worker < config.workers);
  validate_problem(problem);
}

RunOutcome execute_campaign_run(
    const Annealer& annealer, const ProblemInstance& problem,
    const CampaignConfig& config, std::size_t run, std::uint64_t run_seed,
    const std::optional<Clock::time_point>& campaign_deadline) {
  RunOutcome slot;
  const std::size_t attempts = config.retries + 1;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    auto& record = slot.record;
    record.seed = run_attempt_seed(run_seed, static_cast<std::uint32_t>(attempt));
    record.attempt = static_cast<std::uint32_t>(attempt);

    // A run that cannot start before the campaign limit is cancelled
    // without executing (and without burning an attempt's wall time).
    if (campaign_deadline && Clock::now() >= *campaign_deadline) {
      record.status = RunStatus::kCancelled;
      record.error = "campaign time limit reached before run start";
      record_failure(slot);
      return slot;
    }

    CancellationToken token;
    if (campaign_deadline) token.set_campaign_deadline(*campaign_deadline);
    if (config.run_timeout_seconds > 0.0)
      token.set_run_deadline(Clock::now() +
                             to_clock_duration(config.run_timeout_seconds));
    // Injection hits attempt 0 only, so retry recovery is exercisable.  The
    // hang hook pre-expires the run deadline: the annealer's own
    // cooperative poll must trip, proving the in-loop path works.
    if (attempt == 0 && contains_run(config.inject.hang_runs, run))
      token.set_run_deadline(Clock::now());

    try {
      if (attempt == 0 && contains_run(config.inject.fail_runs, run))
        throw injected_fault("injected fault (test hook)");
      auto outcome = annealer.run(record.seed, token);
      record.status = RunStatus::kOk;
      record.error.clear();
      record.best_energy = outcome.best_energy;
      record.solution = problem.decode(outcome.best_spins);
      record.best_spins = std::move(outcome.best_spins);
      slot.breakdown = cost::compute_cost(outcome.ledger, config.costs,
                                          annealer.exp_unit());
      slot.ledger = outcome.ledger;
      return slot;
    } catch (const run_cancelled_error& error) {
      record.status = RunStatus::kCancelled;
      record.error = error.what();
    } catch (const run_timeout_error& error) {
      record.status = RunStatus::kTimedOut;
      record.error = error.what();
    } catch (const std::exception& error) {
      record.status = RunStatus::kFailed;
      record.error = error.what();
    } catch (...) {
      record.status = RunStatus::kFailed;
      record.error = "unknown error";
    }
    record_failure(slot);
    // Deadlines are final -- the run already consumed its time budget;
    // only plain failures are worth a reseeded retry.
    if (record.status != RunStatus::kFailed) return slot;
  }
  return slot;
}

CampaignResult reduce_campaign(const ProblemInstance& problem,
                               const CampaignConfig& config,
                               std::vector<RunOutcome>&& outcomes) {
  FECIM_EXPECTS(outcomes.size() == config.runs);
  CampaignResult result;
  result.runs = config.runs;

  // Single-threaded reduction in run order -- no merge mutex on the hot
  // path, and the aggregate statistics are schedule-independent.  Only
  // completed (kOk) runs feed the statistics; failed runs are visible in
  // per_run and in completed_rate but never skew the aggregates.
  std::size_t successes = 0;
  std::size_t feasible = 0;
  std::size_t completed = 0;
  result.best_run = config.runs;  // "none feasible" sentinel
  result.per_run.reserve(config.runs);
  for (auto& slot : outcomes) {
    const auto& solution = slot.record.solution;
    if (slot.record.status == RunStatus::kOk) {
      ++completed;
      if (solution.feasible) {
        ++feasible;
        result.objective.add(solution.objective);
        if (problem.reference_objective != 0.0)
          result.normalized.add(problem.normalized(solution.objective));
        const bool better =
            result.best_run == config.runs ||
            (problem.sense == ObjectiveSense::kMaximize
                 ? solution.objective >
                       result.per_run[result.best_run].solution.objective
                 : solution.objective <
                       result.per_run[result.best_run].solution.objective);
        if (better) result.best_run = result.per_run.size();
      }
      result.violations.add(solution.violations);
      result.energy.add(slot.breakdown.total_energy);
      result.time.add(slot.breakdown.total_time);
      result.adc_energy.add(slot.breakdown.adc_energy);
      result.exp_energy.add(slot.breakdown.exp_energy);
      result.total_ledger.merge(slot.ledger);
      if (problem.success(solution, config.success_threshold)) ++successes;
    }
    result.per_run.push_back(std::move(slot.record));
  }

  result.completed = completed;
  result.completed_rate =
      static_cast<double>(completed) / static_cast<double>(config.runs);
  result.success_rate =
      completed == 0 ? 0.0
                     : static_cast<double>(successes) /
                           static_cast<double>(completed);
  result.feasible_rate =
      completed == 0 ? 0.0
                     : static_cast<double>(feasible) /
                           static_cast<double>(completed);
  return result;
}

CampaignResult run_campaign(const Annealer& annealer,
                            const ProblemInstance& problem,
                            const CampaignConfig& config) {
  // workers >= 1 selects the multi-process shard runner; same validation,
  // building blocks, and reduction, so the result is bit-identical.
  if (config.workers > 0)
    return run_sharded_campaign(annealer, problem, config);

  validate_campaign(problem, config);

  // Derive per-run seeds up front so the outcome is independent of the
  // thread schedule (and of which runs a resume still has to execute).
  const auto seeds = derive_run_seeds(config.base_seed, config.runs);

  std::vector<RunOutcome> outcomes(config.runs);
  std::vector<char> resumed(config.runs, 0);

  RunJournal journal;
  if (!config.journal_path.empty()) {
    const auto entries = journal.open(config.journal_path, config.resume,
                                      config.base_seed, config.runs);
    for (const auto& entry : entries) {
      // The journal stores the effective (seed, attempt) pair; it must
      // agree with this campaign's seed table or the file belongs to a
      // different configuration.
      FECIM_EXPECTS(entry.record.seed ==
                        run_attempt_seed(seeds[entry.run],
                                         entry.record.attempt) &&
                    "journal: seed mismatch (journal from another campaign?)");
      auto& slot = outcomes[entry.run];
      slot.record = entry.record;
      slot.ledger = entry.ledger;
      // The breakdown is a pure function of the ledger, so recomputing it
      // here keeps the journal format free of derived quantities.
      if (entry.record.status == RunStatus::kOk)
        slot.breakdown = cost::compute_cost(entry.ledger, config.costs,
                                            annealer.exp_unit());
      resumed[entry.run] = 1;
    }
  }

  std::optional<Clock::time_point> campaign_deadline;
  if (config.time_limit_seconds > 0.0)
    campaign_deadline =
        Clock::now() + to_clock_duration(config.time_limit_seconds);

  // Replica-parallel execution: each run binds its own engine clone and
  // counter-keyed noise streams inside Annealer::run(seed), so noisy-analog
  // replicas no longer serialize on a shared RNG and need no locking.
  // execute_campaign_run() never throws -- failures terminate on the run's
  // record, not the campaign.
  //
  // Under Parallelism::kBand the replica loop runs serially (threads = 1
  // takes parallel_for's inline path without claiming the pool), leaving
  // the worker pool free for the engine's nested band-level parallel_for
  // inside each evaluation.  Either way every run still derives its seed up
  // front and writes a disjoint slot, so the result is bit-identical.
  const std::size_t replica_threads =
      config.parallelism == Parallelism::kBand ? 1 : config.threads;
  util::parallel_for(
      config.runs,
      [&](std::size_t run) {
        if (resumed[run]) return;
        outcomes[run] = execute_campaign_run(annealer, problem, config, run,
                                             seeds[run], campaign_deadline);
        journal.append({run, outcomes[run].record, outcomes[run].ledger});
      },
      replica_threads);

  return reduce_campaign(problem, config, std::move(outcomes));
}

CampaignResult run_maxcut_campaign(const Annealer& annealer,
                                   const MaxcutInstance& instance,
                                   const CampaignConfig& config) {
  return run_campaign(annealer, as_problem(instance), config);
}

}  // namespace fecim::core
