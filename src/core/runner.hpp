// Experiment campaign runner: many independent annealing runs on one
// combinatorial-optimization instance, aggregated into the statistics the
// paper's evaluation reports (domain objective, feasibility and success
// rates, modeled energy and latency).
//
// The runner is problem-agnostic: run_campaign() drives any ProblemInstance
// (problems/instances.hpp builds the five built-in families) and scores runs
// through the instance's decode hook.  Replica execution is parallel and
// deterministic -- every run derives its seed up front, binds its own
// engine clone with counter-keyed noise streams inside Annealer::run(), and
// writes into a disjoint result slot, so the campaign outcome is
// bit-identical for every thread count.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/annealer.hpp"
#include "core/problem_instance.hpp"
#include "core/run_lifecycle.hpp"
#include "cost/cost_model.hpp"
#include "problems/graph.hpp"
#include "util/stats.hpp"

namespace fecim::core {

/// A Max-Cut benchmark instance bundled with its Ising model and the
/// best-known reference cut (certified for toroidal instances, long-run
/// local-search proxy otherwise).  Retained as a thin adapter over
/// ProblemInstance so pre-generalization call sites migrate incrementally;
/// new code should prefer problems::make_maxcut_problem.
struct MaxcutInstance {
  std::string name;
  std::shared_ptr<const problems::Graph> graph;
  std::shared_ptr<const ising::IsingModel> model;
  double reference_cut = 0.0;
};

/// Build an instance from a graph; reference cut from reference_cut() with
/// `reference_restarts` random-start 1-opt descents (ignored when the
/// optimum is certified).
MaxcutInstance make_maxcut_instance(std::string name, problems::Graph graph,
                                    std::size_t reference_restarts = 64,
                                    std::uint64_t reference_seed = 7);

/// View a MaxcutInstance as a ProblemInstance (shares graph/model; decode
/// scores the cut of the best spins).
ProblemInstance as_problem(const MaxcutInstance& instance);

/// Deterministic fault-injection test hooks: sabotage the listed run
/// indices so every recovery path is exercised in CI rather than trusted.
/// Injection hits attempt 0 only -- a retried run recovers, which is
/// exactly the path worth pinning.
struct FaultInjection {
  std::vector<std::size_t> fail_runs;  ///< throw injected_fault at run start
  std::vector<std::size_t> hang_runs;  ///< pre-expired run deadline: the
                                       ///< annealer's cooperative poll trips
  /// Shard-runner hook (workers >= 1 only): the listed worker processes
  /// _exit abruptly after streaming their first record, so the parent's
  /// dead-worker recovery path (EOF with missing runs -> re-execute) is
  /// exercised in CI rather than trusted.
  std::vector<std::size_t> kill_workers;
};

/// Where run_campaign points the shared worker pool.  kReplica (default)
/// parallelizes across runs; kBand executes replicas serially so the
/// annealer's engine-level band parallelism (e.g.
/// crossbar::AnalogEngineConfig::band_threads) can claim the pool for the
/// row bands of each evaluation instead.  kBand is the latency knob for few
/// long runs over tall tiled arrays; kReplica is the throughput knob for
/// many runs.  Results are bit-identical across both settings and every
/// thread count -- replicas and bands are independent by construction.
enum class Parallelism { kReplica, kBand };

struct CampaignConfig {
  std::size_t runs = 5;
  std::uint64_t base_seed = 42;
  double success_threshold = 0.9;  ///< paper: within 10 % of the reference
  std::size_t threads = 0;         ///< 0 = util::worker_threads()
  Parallelism parallelism = Parallelism::kReplica;
  /// Fork-spawned worker processes (docs/sharding.md).  0 (default)
  /// executes in process on the shared thread pool; >= 1 partitions the
  /// runs round-robin across that many forked workers that stream records
  /// back over pipes (core/shard_runner.hpp) -- bit-identical to the
  /// in-process path for every worker count.  Requires a platform with
  /// fork (core::shard_runner_supported()).
  std::size_t workers = 0;
  cost::ComponentCosts costs{};

  // --- run lifecycle (docs/robustness.md) ---
  /// Wall-clock deadline per run [s]; 0 = none.  An expired run is recorded
  /// as kTimedOut and never retried.
  double run_timeout_seconds = 0.0;
  /// Wall-clock limit for the whole campaign [s]; 0 = none.  Runs that
  /// cannot start (or finish) before the limit are recorded as kCancelled.
  double time_limit_seconds = 0.0;
  /// Extra attempts for a kFailed run, reseeded deterministically via
  /// run_attempt_seed(seed, attempt).  Timeouts and cancellations are final.
  std::size_t retries = 0;
  /// Append-only checkpoint journal path; empty = disabled.  See
  /// core/run_journal.hpp for the format.
  std::string journal_path;
  /// Resume from an existing journal: already-journaled runs are installed
  /// without executing, reproducing the uninterrupted CampaignResult
  /// bit-identically (per-run seeds are derived up front).
  bool resume = false;
  FaultInjection inject{};
};

/// Everything one run contributed, in run order.  Kept per run (not merged
/// on the fly) so thread-count determinism is testable record by record and
/// callers can re-decode domain artifacts (colorings, tours, selections)
/// from the winning configuration.
struct RunRecord {
  std::uint64_t seed = 0;          ///< effective seed of the recorded
                                   ///< attempt: run_attempt_seed(base, attempt)
  RunStatus status = RunStatus::kOk;
  std::uint32_t attempt = 0;       ///< winning (or final) attempt index
  std::string error;               ///< captured message; empty when kOk
  double best_energy = 0.0;        ///< best Ising energy of the run
  DecodedSolution solution;        ///< decoded domain outcome; only
                                   ///< meaningful when status == kOk (other
                                   ///< statuses carry objective = NaN,
                                   ///< feasible = false)
  ising::SpinVector best_spins;    ///< configuration achieving best_energy
};

/// Placeholder solution carried by non-kOk records: NaN objective (so an
/// accidental ranking of a failed run fails loudly instead of winning with
/// 0), infeasible, zero violations.
DecodedSolution failed_run_solution() noexcept;

struct CampaignResult {
  std::size_t runs = 0;
  std::size_t completed = 0;      ///< runs with status kOk; every aggregate
                                  ///< below is over completed runs only --
                                  ///< failed runs are recorded in per_run
                                  ///< but never pollute the statistics
  util::RunningStats objective;   ///< domain objective over *feasible* runs
  util::RunningStats normalized;  ///< objective / reference over feasible
                                  ///< runs (empty when the reference is 0)
  util::RunningStats violations;  ///< constraint violations, every run
  util::RunningStats energy;      ///< modeled energy per run [J]
  util::RunningStats time;        ///< modeled latency per run [s]
  util::RunningStats adc_energy;  ///< ADC share of run energy [J]
  util::RunningStats exp_energy;  ///< e^x share of run energy [J]
  double success_rate = 0.0;      ///< fraction of completed runs feasible
                                  ///< AND within threshold (0 when none
                                  ///< completed)
  double feasible_rate = 0.0;     ///< fraction of completed runs satisfying
                                  ///< constraints (0 when none completed)
  double completed_rate = 0.0;    ///< completed / runs
  /// Summed over all runs.  Includes the tile-grid events
  /// (adc_conversions per (tile, column), tile_activations,
  /// partial_sum_updates) when the annealer executes over a bounded
  /// crossbar::TileShape -- see docs/tiling.md.
  crossbar::CostLedger total_ledger;
  std::vector<RunRecord> per_run;     ///< per-run records in run order

  /// Index into per_run of the best feasible run (sense-aware), or
  /// per_run.size() when no run was feasible.
  std::size_t best_run = 0;

  /// Best feasible domain objective (objective.max() for maximization,
  /// objective.min() for minimization).  NaN when no run was feasible -- a
  /// literal 0 would be indistinguishable from a perfect imbalance or tour
  /// for minimization families, so rank-by-objective callers fail loudly
  /// instead of silently preferring fully infeasible campaigns.
  double best_objective(ObjectiveSense sense) const noexcept;
};

// ---------------------------------------------------------------------------
// Campaign execution building blocks -- shared by the in-process thread-pool
// path below and the multi-process shard runner (core/shard_runner.hpp), so
// bit-identity between the two holds by construction instead of by parallel
// maintenance.
// ---------------------------------------------------------------------------

/// Per-run aggregation inputs, written into a disjoint slot by whichever
/// worker (thread or process) executes the run.  One slot per run makes the
/// final reduction byte-identical to a serial campaign for every schedule:
/// reduce_campaign always walks runs in index order, so Welford update
/// order never depends on where a run executed.
struct RunOutcome {
  RunRecord record;
  cost::CostBreakdown breakdown{};
  crossbar::CostLedger ledger{};
};

/// Per-run seeds derived up front from the campaign base seed -- the seed
/// table is what makes the outcome independent of the schedule, of which
/// runs a resume still has to execute, and of which process runs a shard.
std::vector<std::uint64_t> derive_run_seeds(std::uint64_t base_seed,
                                            std::size_t runs);

/// Shared config/problem validation (throws contract_error).
void validate_campaign(const ProblemInstance& problem,
                       const CampaignConfig& config);

/// Execute one run to its terminal status.  Never throws: every failure
/// mode lands on the record, so the campaign degrades gracefully instead of
/// aborting.  The full run lifecycle applies: campaign/run deadlines,
/// deterministic run_attempt_seed retry for kFailed, fault injection at
/// attempt 0.
RunOutcome execute_campaign_run(
    const Annealer& annealer, const ProblemInstance& problem,
    const CampaignConfig& config, std::size_t run, std::uint64_t run_seed,
    const std::optional<CancellationToken::Clock::time_point>&
        campaign_deadline);

/// Single-threaded reduction in run index order: consumes one RunOutcome
/// per run and aggregates into the CampaignResult.  No merge mutex, and the
/// statistics are schedule- and process-topology-independent.
CampaignResult reduce_campaign(const ProblemInstance& problem,
                               const CampaignConfig& config,
                               std::vector<RunOutcome>&& outcomes);

/// Run `config.runs` independent replicas of `annealer` on `problem` and
/// aggregate.  Runs execute in parallel across `config.threads` workers;
/// results are bit-identical for every thread count (fixed per-run seeds,
/// disjoint result slots, reduction in run order).  With config.workers >=
/// 1 the campaign executes on fork-spawned worker processes instead
/// (core/shard_runner.hpp) -- still bit-identical.
///
/// Fault-tolerant: a throwing, timed-out, or cancelled run is recorded on
/// its RunRecord (status + captured error) and excluded from the aggregate
/// statistics instead of aborting the campaign; completed_rate reports how
/// much of the campaign survived.  Only errors outside the run bodies
/// (invalid config, journal corruption) propagate to the caller.
CampaignResult run_campaign(const Annealer& annealer,
                            const ProblemInstance& problem,
                            const CampaignConfig& config);

/// Thin adapter: run_campaign over as_problem(instance).
CampaignResult run_maxcut_campaign(const Annealer& annealer,
                                   const MaxcutInstance& instance,
                                   const CampaignConfig& config);

}  // namespace fecim::core
