// Experiment campaign runner: many independent annealing runs on a Max-Cut
// instance, aggregated into the statistics the paper's evaluation reports
// (normalized cut, success rate vs the 90 %-of-optimum target, modeled
// energy and latency).
#pragma once

#include <memory>
#include <string>

#include "core/annealer.hpp"
#include "cost/cost_model.hpp"
#include "problems/graph.hpp"
#include "util/stats.hpp"

namespace fecim::core {

/// A Max-Cut benchmark instance bundled with its Ising model and the
/// best-known reference cut (certified for toroidal instances, long-run
/// local-search proxy otherwise).
struct MaxcutInstance {
  std::string name;
  std::shared_ptr<const problems::Graph> graph;
  std::shared_ptr<const ising::IsingModel> model;
  double reference_cut = 0.0;
};

/// Build an instance from a graph; reference cut from reference_cut() with
/// `reference_restarts` random-start 1-opt descents (ignored when the
/// optimum is certified).
MaxcutInstance make_maxcut_instance(std::string name, problems::Graph graph,
                                    std::size_t reference_restarts = 64,
                                    std::uint64_t reference_seed = 7);

struct CampaignConfig {
  std::size_t runs = 5;
  std::uint64_t base_seed = 42;
  double success_threshold = 0.9;  ///< paper: 90 % of the optimal cut
  std::size_t threads = 0;         ///< 0 = util::worker_threads()
  cost::ComponentCosts costs{};
};

struct CampaignResult {
  std::size_t runs = 0;
  util::RunningStats cut;             ///< best cut per run
  util::RunningStats normalized_cut;  ///< cut / reference
  util::RunningStats energy;          ///< modeled energy per run [J]
  util::RunningStats time;            ///< modeled latency per run [s]
  util::RunningStats adc_energy;      ///< ADC share of run energy [J]
  util::RunningStats exp_energy;      ///< e^x share of run energy [J]
  double success_rate = 0.0;          ///< fraction reaching the target cut
  crossbar::CostLedger total_ledger;  ///< summed over all runs
};

CampaignResult run_maxcut_campaign(const Annealer& annealer,
                                   const MaxcutInstance& instance,
                                   const CampaignConfig& config);

}  // namespace fecim::core
