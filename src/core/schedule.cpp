#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace fecim::core {

BgAnnealingSchedule::BgAnnealingSchedule(const Config& config)
    : config_(config), factor_(config.factor_coefficients) {
  FECIM_EXPECTS(config_.total_iterations > 0);
  const std::size_t levels = config_.dac.num_levels();
  FECIM_EXPECTS(levels >= 2);
  // Hold each voltage level for an equal share of the budget; with fewer
  // iterations than levels the voltage steps faster than one level per
  // iteration and skips levels.
  hold_ = std::max<std::size_t>(1, config_.total_iterations / levels);
}

std::size_t BgAnnealingSchedule::num_levels() const noexcept {
  return config_.dac.num_levels();
}

BgAnnealingSchedule::Point BgAnnealingSchedule::at(
    std::size_t iteration) const {
  const std::size_t levels = config_.dac.num_levels();
  // Spread the DAC ladder uniformly across the budget: each level holds for
  // ~total/levels iterations ("T decreases only after a pre-set number of
  // iterations"); budgets shorter than the ladder skip levels instead.
  // Saturates at the final level past the budget end.
  const std::size_t steps =
      std::min(iteration * levels / config_.total_iterations, levels - 1);
  // kRampUp ascends from v_min toward v_max; kPaperLiteral descends from
  // v_max and parks at v_min ("remains at zero, terminating the annealing").
  const std::size_t level = config_.direction == Direction::kRampUp
                                ? steps
                                : levels - 1 - steps;
  Point point{};
  point.vbg = config_.dac.level_voltage(level);
  const double span = config_.dac.v_max - config_.dac.v_min;
  FECIM_ASSERT(span > 0.0);
  const double fraction = (point.vbg - config_.dac.v_min) / span;
  point.temperature =
      factor_.t_min() + (factor_.t_max() - factor_.t_min()) * fraction;
  point.factor = factor_(point.temperature);
  return point;
}

ClassicSchedule::ClassicSchedule(const Config& config) : config_(config) {
  FECIM_EXPECTS(config_.t_start > 0.0);
  FECIM_EXPECTS(config_.t_end > 0.0);
  FECIM_EXPECTS(config_.t_end <= config_.t_start);
  FECIM_EXPECTS(config_.total_iterations > 0);
  FECIM_EXPECTS(config_.decay > 0.0 && config_.decay <= 1.0);
}

double ClassicSchedule::temperature(std::size_t iteration) const {
  if (config_.kind == Kind::kFixedDecay) {
    const double t = config_.t_start *
                     std::pow(config_.decay, static_cast<double>(iteration));
    return std::max(t, config_.t_end);
  }
  if (config_.total_iterations == 1) return config_.t_start;
  const double progress = std::min(
      1.0, static_cast<double>(iteration) /
               static_cast<double>(config_.total_iterations - 1));
  switch (config_.kind) {
    case Kind::kGeometric:
      return config_.t_start *
             std::pow(config_.t_end / config_.t_start, progress);
    case Kind::kLinear:
      return config_.t_start + (config_.t_end - config_.t_start) * progress;
    case Kind::kFixedDecay:
      break;  // handled above
  }
  FECIM_ASSERT(false);
  return config_.t_end;
}

SbSchedule::SbSchedule(const Config& config) : config_(config) {
  FECIM_EXPECTS(config_.a0 > 0.0);
  FECIM_EXPECTS(config_.dt > 0.0);
  FECIM_EXPECTS(config_.total_steps > 0);
}

SbSchedule::Point SbSchedule::at(std::size_t step) const {
  // Linear pump 0 -> a0 reaching a0 exactly on the final step; a one-step
  // budget jumps straight to the bifurcated regime.
  const double progress =
      config_.total_steps == 1
          ? 1.0
          : std::min(1.0, static_cast<double>(step) /
                              static_cast<double>(config_.total_steps - 1));
  return {config_.a0 * progress, config_.dt};
}

}  // namespace fecim::core
