// Annealing schedules.
//
// BgAnnealingSchedule -- the paper's tunable back-gate flow (Sec. 3.4):
// V_BG starts at 0.7 V and steps down on the 0.01 V DAC grid, holding each
// level for a fixed number of iterations; once it reaches 0 V it stays there
// (annealing terminated).  The temperature and fractional factor are derived
// from the quantized voltage, so DAC granularity is inherent to the flow.
//
// ClassicSchedule -- geometric/linear temperature decay for the direct-E
// baseline annealers (temperature in energy units).
//
// SbSchedule -- the simulated-bifurcation pump ramp: the bifurcation
// parameter a(t) rises linearly 0 -> a0 across the step budget, sweeping
// every oscillator through its pitchfork bifurcation (the SB analogue of
// cooling).  The time step is constant; both knobs live here so the CLI and
// benches configure SB the same way they configure the thermal ladders.
#pragma once

#include <cstddef>

#include "circuit/drivers.hpp"
#include "ising/fractional_factor.hpp"

namespace fecim::core {

class BgAnnealingSchedule {
 public:
  /// Direction of the back-gate sweep.
  ///
  /// kRampUp (default): V_BG climbs v_min -> v_max, so E_inc (which scales
  /// with the cell current) grows over the run and the acceptance test
  /// "E_inc <= rand(0,1)" tightens -- the linearized Metropolis rule
  /// P(accept) = max(0, 1 - dE * beta) with coldness beta = f rising from 0
  /// to 1.  This is the physically coherent realization of Alg. 1.
  ///
  /// kPaperLiteral: V_BG falls v_max -> v_min as the paper's text states.
  /// Under the same comparison this accepts *more* uphill moves as it
  /// cools (greedy descent first, noise injection last); it converges
  /// measurably worse on hard instances -- see bench_ablation_acceptance.
  enum class Direction { kRampUp, kPaperLiteral };

  struct Config {
    circuit::BgDac dac{};
    std::size_t total_iterations = 1000;
    ising::FractionalFactor::Coefficients factor_coefficients{};
    Direction direction = Direction::kRampUp;
  };

  explicit BgAnnealingSchedule(const Config& config);

  struct Point {
    double vbg;          ///< quantized back-gate voltage [V]
    double factor;       ///< ideal f(T) at this voltage
    double temperature;  ///< T in the fractional factor's domain
  };

  Point at(std::size_t iteration) const;

  /// Iterations spent on each DAC level before stepping down.
  std::size_t hold_iterations() const noexcept { return hold_; }
  std::size_t num_levels() const noexcept;
  const ising::FractionalFactor& factor() const noexcept { return factor_; }
  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  ising::FractionalFactor factor_;
  std::size_t hold_;
};

class ClassicSchedule {
 public:
  /// kGeometric / kLinear interpolate t_start -> t_end across the budget;
  /// kFixedDecay applies T *= decay each iteration regardless of budget
  /// (the standard digital-annealer configuration [9, 10]) with t_end as a
  /// floor -- short budgets then terminate while still hot.
  enum class Kind { kGeometric, kLinear, kFixedDecay };

  struct Config {
    double t_start = 10.0;
    double t_end = 0.01;
    std::size_t total_iterations = 1000;
    Kind kind = Kind::kGeometric;
    double decay = 0.999;  ///< per-iteration factor for kFixedDecay
  };

  explicit ClassicSchedule(const Config& config);

  double temperature(std::size_t iteration) const;
  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

class SbSchedule {
 public:
  struct Config {
    double a0 = 1.0;       ///< detuning / final pump amplitude
    double dt = 0.5;       ///< symplectic time step
    std::size_t total_steps = 1000;
  };

  explicit SbSchedule(const Config& config);

  struct Point {
    double pump;  ///< a(t) in [0, a0]; a0 - a(t) is the confining stiffness
    double dt;    ///< time step (constant, carried for uniform Point shape)
  };

  Point at(std::size_t step) const;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace fecim::core
