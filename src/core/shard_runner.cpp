#include "core/shard_runner.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/run_journal.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/subprocess.hpp"

namespace fecim::core {

namespace {

using Clock = CancellationToken::Clock;

/// One live worker as seen by the parent: its pipe, its pid, and a stream
/// decoder holding any partial line between reads.
struct Worker {
  std::size_t index = 0;
  long pid = -1;
  int read_fd = -1;
  RecordStreamDecoder decoder;
  bool eof = false;
};

bool contains_worker(const std::vector<std::size_t>& list, std::size_t k) {
  return std::find(list.begin(), list.end(), k) != list.end();
}

/// Child body: execute the shard's pending runs serially in increasing run
/// index, journal to the per-shard file, stream each finished record.
/// Runs inside the forked process only.
void run_shard_worker(int write_fd, std::size_t worker, std::size_t workers,
                      const Annealer& annealer, const ProblemInstance& problem,
                      const CampaignConfig& config,
                      const std::vector<std::uint64_t>& seeds,
                      const std::vector<char>& have,
                      const std::optional<Clock::time_point>& deadline) {
  // The parent's pool threads did not survive the fork; pin every
  // parallel_for in this process to the inline serial path.  Runs are
  // bit-identical across thread counts, so serial execution changes
  // nothing but wall time.
  util::force_serial_parallelism();

  RunJournal shard_journal;
  if (!config.journal_path.empty())
    shard_journal.open(shard_journal_path(config.journal_path, worker),
                       /*resume=*/false, config.base_seed, config.runs);

  const bool kill_after_first =
      contains_worker(config.inject.kill_workers, worker);
  std::size_t streamed = 0;
  for (std::size_t run = worker; run < config.runs; run += workers) {
    if (have[run]) continue;  // resumed before the fork
    const RunOutcome outcome = execute_campaign_run(
        annealer, problem, config, run, seeds[run], deadline);
    const JournalEntry entry{run, outcome.record, outcome.ledger};
    shard_journal.append(entry);  // skips kCancelled by contract
    // Wire format = journal line format; cancelled records DO travel (the
    // parent needs them for per_run) even though they are never journaled.
    const std::string line = encode_journal_entry(entry) + "\n";
    if (!util::write_all(write_fd, line.data(), line.size())) return;
    ++streamed;
    // Fault injection: die abruptly (no journal close, no stream flush)
    // so the parent's recovery path is exercised against a real dead pipe.
    if (kill_after_first && streamed == 1) util::exit_child_now(42);
  }
}

}  // namespace

bool shard_runner_supported() noexcept {
  return util::subprocess_supported();
}

std::string shard_journal_path(const std::string& journal_path,
                               std::size_t worker) {
  return journal_path + ".shard" + std::to_string(worker);
}

CampaignResult run_sharded_campaign(const Annealer& annealer,
                                    const ProblemInstance& problem,
                                    const CampaignConfig& config) {
  validate_campaign(problem, config);
  FECIM_EXPECTS(config.workers > 0);
  FECIM_EXPECTS(shard_runner_supported() &&
                "shard runner: this platform cannot fork worker processes "
                "(use workers = 0)");

  const std::size_t workers = std::min(config.workers, config.runs);
  const auto seeds = derive_run_seeds(config.base_seed, config.runs);

  std::vector<RunOutcome> outcomes(config.runs);
  std::vector<char> have(config.runs, 0);

  // The breakdown is a pure function of the ledger; recomputing it on the
  // parent side keeps both the journal and the wire free of derived
  // quantities.
  const auto install = [&](const JournalEntry& entry) {
    auto& slot = outcomes[entry.run];
    slot.record = entry.record;
    slot.ledger = entry.ledger;
    if (entry.record.status == RunStatus::kOk)
      slot.breakdown = cost::compute_cost(entry.ledger, config.costs,
                                          annealer.exp_unit());
    have[entry.run] = 1;
  };
  const auto check_entry = [&](const JournalEntry& entry) {
    FECIM_EXPECTS(entry.run < config.runs &&
                  "shard: run index out of range for this campaign");
    FECIM_EXPECTS(!have[entry.run] && "shard: duplicate run record");
    FECIM_EXPECTS(entry.record.seed ==
                      run_attempt_seed(seeds[entry.run],
                                       entry.record.attempt) &&
                  "shard: seed mismatch (record from another campaign?)");
  };

  // Resume: union the main journal with every surviving per-shard prefix
  // from the interrupted execution, then persist the union into the main
  // journal so shard files become redundant.
  RunJournal journal;
  if (!config.journal_path.empty()) {
    const auto entries = journal.open(config.journal_path, config.resume,
                                      config.base_seed, config.runs);
    for (const auto& entry : entries) {
      check_entry(entry);
      install(entry);
    }
    if (config.resume) {
      for (std::size_t k = 0;; ++k) {
        const auto shard_path = shard_journal_path(config.journal_path, k);
        if (!std::filesystem::exists(shard_path)) break;
        for (const auto& entry :
             read_journal_file(shard_path, config.base_seed, config.runs)) {
          if (have[entry.run]) continue;  // already in the main journal
          check_entry(entry);
          install(entry);
          journal.append(entry);
        }
      }
    }
  }

  std::optional<Clock::time_point> campaign_deadline;
  if (config.time_limit_seconds > 0.0)
    campaign_deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               config.time_limit_seconds));

  // Spawn one worker per shard that still has pending runs.  fork()
  // snapshots the parent's memory, so children read the annealer, problem,
  // seed table, and resume mask directly -- only records cross a pipe.
  std::vector<Worker> live;
  for (std::size_t k = 0; k < workers; ++k) {
    bool pending = false;
    for (std::size_t run = k; run < config.runs && !pending; run += workers)
      pending = !have[run];
    if (!pending) continue;
    auto child = util::spawn_pipe_child([&, k](int write_fd) {
      run_shard_worker(write_fd, k, workers, annealer, problem, config,
                       seeds, have, campaign_deadline);
    });
    FECIM_EXPECTS(child.has_value() &&
                  "shard runner: fork/pipe failed spawning worker");
    live.push_back(Worker{k, child->pid, child->read_fd, {}, false});
  }

  // Drain records until every worker's pipe reaches EOF.  Pipe contents
  // survive a child's death, so even a killed worker's already-streamed
  // records are installed; a torn final line stays in the decoder's
  // partial buffer and is simply re-executed below.  Past the campaign
  // deadline (plus a short grace for workers busy writing their cancelled
  // records) stragglers are SIGKILLed -- a hung worker cannot hang the
  // campaign.
  try {
    bool deadline_killed = false;
    while (std::any_of(live.begin(), live.end(),
                       [](const Worker& w) { return !w.eof; })) {
      int timeout_ms = -1;
      if (campaign_deadline) {
        const auto grace = std::chrono::milliseconds(500);
        const auto remain =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                *campaign_deadline + grace - Clock::now())
                .count();
        if (remain <= 0) {
          if (!deadline_killed) {
            for (const auto& w : live)
              if (!w.eof) util::kill_child(w.pid);
            deadline_killed = true;
          }
          timeout_ms = 100;  // drain what the pipes still hold
        } else {
          timeout_ms = static_cast<int>(
              std::min<long long>(remain, 1000));
        }
      }
      std::vector<int> fds;
      std::vector<std::size_t> fd_owner;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].eof) continue;
        fds.push_back(live[i].read_fd);
        fd_owner.push_back(i);
      }
      for (const auto ready : util::poll_readable(fds, timeout_ms)) {
        auto& worker = live[fd_owner[ready]];
        char buffer[4096];
        const long n = util::read_some(worker.read_fd, buffer, sizeof buffer);
        if (n > 0) {
          std::vector<JournalEntry> entries;
          worker.decoder.feed(buffer, static_cast<std::size_t>(n), entries);
          for (const auto& entry : entries) {
            check_entry(entry);
            FECIM_EXPECTS(entry.run % workers == worker.index &&
                          "shard: record from a run this worker does not own");
            install(entry);
            journal.append(entry);  // skips kCancelled by contract
          }
        } else {  // EOF or read error: the worker is done (or dead)
          util::close_fd(worker.read_fd);
          util::wait_child(worker.pid);
          worker.eof = true;
        }
      }
    }
  } catch (...) {
    // Corrupt stream or journal failure: never leak worker processes.
    for (const auto& w : live) {
      if (w.eof) continue;
      util::kill_child(w.pid);
      util::close_fd(w.read_fd);
      util::wait_child(w.pid);
    }
    throw;
  }

  // Recovery: any run without an installed record (dead worker, torn final
  // line, worker killed at the deadline) is re-executed in the parent from
  // its predetermined seed -- bit-identical to what the worker would have
  // streamed.  Past the deadline this instantly produces the same
  // kCancelled records the worker itself would have emitted.
  std::vector<std::size_t> missing;
  for (std::size_t run = 0; run < config.runs; ++run)
    if (!have[run]) missing.push_back(run);
  if (!missing.empty()) {
    const std::size_t replica_threads =
        config.parallelism == Parallelism::kBand ? 1 : config.threads;
    util::parallel_for(
        missing.size(),
        [&](std::size_t i) {
          const std::size_t run = missing[i];
          outcomes[run] = execute_campaign_run(
              annealer, problem, config, run, seeds[run], campaign_deadline);
          journal.append({run, outcomes[run].record, outcomes[run].ledger});
        },
        replica_threads);
  }

  // Success: the main journal now holds every journalable record, so the
  // per-shard files are redundant -- remove them.
  if (!config.journal_path.empty()) {
    for (std::size_t k = 0;; ++k) {
      const auto shard_path = shard_journal_path(config.journal_path, k);
      std::error_code ec;
      if (!std::filesystem::remove(shard_path, ec)) break;
    }
  }

  return reduce_campaign(problem, config, std::move(outcomes));
}

}  // namespace fecim::core
