// Multi-process campaign execution: partition a campaign's runs round-robin
// across fork-spawned worker processes, stream completed RunRecords back to
// the parent over pipes, and reduce in canonical run order.
//
// The wire protocol IS the run-journal v1 line format
// (core/run_journal.hpp): one newline-terminated line per finished run,
// with the "end" sentinel / length-prefixed message making a torn record
// (worker died mid-write) detectable as a partial line rather than silently
// installed.  Because per-run seeds are derived up front, every record a
// worker streams is byte-identical to what the in-process pool would have
// produced, and reduce_campaign() walks runs in index order -- so the
// CampaignResult is bit-identical to config.workers = 0 for every worker
// count, including noisy, tiled, SB, and warm-started campaigns.
//
// Failure model (docs/sharding.md): a worker that dies or hangs is detected
// by the parent (pipe EOF / campaign deadline); its unfinished runs are
// simply re-executed in the parent from their predetermined seeds, which
// reproduces the missing records bit-identically.  With journaling enabled
// each worker also appends to a per-shard journal
// (shard_journal_path(path, k)); a resumed campaign unions the main journal
// with every surviving shard prefix before spawning new workers.
#pragma once

#include <string>

#include "core/runner.hpp"

namespace fecim::core {

/// True when this platform can fork pipe-connected worker processes.
/// When false, run_sharded_campaign() throws contract_error; callers that
/// want graceful degradation (fecim_solve does) check here first and fall
/// back to the in-process pool.
bool shard_runner_supported() noexcept;

/// Per-shard journal path for worker `worker`: "<journal_path>.shard<k>".
std::string shard_journal_path(const std::string& journal_path,
                               std::size_t worker);

/// Execute `config.runs` runs across config.workers forked worker
/// processes (clamped to the run count) and reduce.  Bit-identical to
/// run_campaign with workers = 0.  Called by run_campaign when
/// config.workers >= 1; direct use is equivalent.
CampaignResult run_sharded_campaign(const Annealer& annealer,
                                    const ProblemInstance& problem,
                                    const CampaignConfig& config);

}  // namespace fecim::core
