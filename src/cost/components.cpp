#include "cost/components.hpp"

namespace fecim::cost {

double ComponentCosts::exp_energy(ExpUnit unit) const noexcept {
  switch (unit) {
    case ExpUnit::kNone:
      return 0.0;
    case ExpUnit::kFpga:
      return exp_energy_fpga;
    case ExpUnit::kAsic:
      return exp_energy_asic;
  }
  return 0.0;
}

double ComponentCosts::exp_time(ExpUnit unit) const noexcept {
  switch (unit) {
    case ExpUnit::kNone:
      return 0.0;
    case ExpUnit::kFpga:
      return exp_time_fpga;
    case ExpUnit::kAsic:
      return exp_time_asic;
  }
  return 0.0;
}

}  // namespace fecim::cost
