// Per-event energy/latency constants of the annealer's hardware components
// at the paper's 22 nm node.
//
// Calibration targets (EXPERIMENTS.md records the derivation):
//  * SAR ADC: 13-bit, 40 MS/s [36] -> 25 ns/conversion slot; 0.25 pJ per
//    conversion scaled to 22 nm.  ADC energy/time dominate both annealers,
//    exactly as the paper states.
//  * Exponential unit [18]: the FPGA implementation costs ~2.66 nJ / 43 ns
//    per e^x evaluation, the ASIC implementation ~8 pJ / 39 ns.  These
//    reproduce the paper's baseline-vs-this-work ratios (Fig. 8(a): 732x /
//    401x at 800 nodes ... 1716x / 1503x at 3000 nodes; Fig. 9(a): ~8x).
//  * Line drivers / BG DAC / digital update logic: small CV^2-class costs;
//    the paper treats them as negligible next to ADC + e^x.
#pragma once

namespace fecim::cost {

/// Which exponential-function implementation a baseline annealer carries
/// (this work needs none: the fractional factor is realized in situ).
enum class ExpUnit { kNone, kFpga, kAsic };

struct ComponentCosts {
  // ADC [36], 8-to-1 multiplexed, scaled to 22 nm.
  double adc_energy_per_conversion = 0.25e-12;  ///< [J]
  double adc_time_per_slot = 25e-9;             ///< [s] (40 MS/s)

  // Exponential function unit [18].
  double exp_energy_fpga = 2.66e-9;  ///< [J] per evaluation
  double exp_time_fpga = 43e-9;      ///< [s]
  double exp_energy_asic = 8.0e-12;  ///< [J]
  double exp_time_asic = 39e-9;      ///< [s]

  // Peripheral drive (per line toggle).
  double row_drive_energy = 0.01e-15;     ///< [J] FG wordline
  double column_drive_energy = 0.01e-15;  ///< [J] DL bitline
  double bg_dac_energy = 20e-15;          ///< [J] per V_BG reprogram

  // Digital annealing logic (flip-set generation, compare, accept).
  double digital_energy_per_iteration = 0.1e-12;  ///< [J]
  double digital_time_per_iteration = 5e-9;       ///< [s]
  double spin_update_energy = 10e-15;             ///< [J] per register write

  double exp_energy(ExpUnit unit) const noexcept;
  double exp_time(ExpUnit unit) const noexcept;
};

}  // namespace fecim::cost
