#include "cost/cost_model.hpp"

namespace fecim::cost {

CostBreakdown compute_cost(const crossbar::CostLedger& ledger,
                           const ComponentCosts& costs, ExpUnit exp_unit) {
  CostBreakdown out;
  const auto count = [](std::uint64_t c) { return static_cast<double>(c); };

  out.adc_energy =
      count(ledger.adc_conversions) * costs.adc_energy_per_conversion;
  out.exp_energy = count(ledger.exp_evaluations) * costs.exp_energy(exp_unit);
  out.drive_energy = count(ledger.row_drives) * costs.row_drive_energy +
                     count(ledger.column_drives) * costs.column_drive_energy +
                     count(ledger.bg_dac_updates) * costs.bg_dac_energy;
  out.digital_energy =
      count(ledger.iterations) * costs.digital_energy_per_iteration +
      count(ledger.spin_updates) * costs.spin_update_energy;
  out.total_energy =
      out.adc_energy + out.exp_energy + out.drive_energy + out.digital_energy;

  out.adc_time = count(ledger.mux_slot_cycles) * costs.adc_time_per_slot;
  out.exp_time = count(ledger.exp_evaluations) * costs.exp_time(exp_unit);
  out.digital_time =
      count(ledger.iterations) * costs.digital_time_per_iteration;
  out.total_time = out.adc_time + out.exp_time + out.digital_time;
  return out;
}

}  // namespace fecim::cost
