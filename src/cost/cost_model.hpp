// Translate a CostLedger (hardware event counts) into energy and latency.
//
// Latency model: ADC sensing serializes per MUX slot (groups run in
// parallel); the e^x unit and the digital update logic sit on the iteration
// critical path; drivers and the BG DAC settle under the ADC slots and do
// not add latency.
#pragma once

#include "cost/components.hpp"
#include "crossbar/cost_ledger.hpp"

namespace fecim::cost {

struct CostBreakdown {
  double adc_energy = 0.0;
  double exp_energy = 0.0;
  double drive_energy = 0.0;
  double digital_energy = 0.0;
  double total_energy = 0.0;  ///< [J]

  double adc_time = 0.0;
  double exp_time = 0.0;
  double digital_time = 0.0;
  double total_time = 0.0;  ///< [s]
};

CostBreakdown compute_cost(const crossbar::CostLedger& ledger,
                           const ComponentCosts& costs, ExpUnit exp_unit);

}  // namespace fecim::cost
