#include "crossbar/analog_engine.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace fecim::crossbar {

namespace {

circuit::SarAdcParams resolve_adc_params(const AnalogEngineConfig& config,
                                         const ProgrammedArray& array) {
  circuit::SarAdcParams params = config.adc;
  const double i_on_max =
      array.on_current(array.device_params().vbg_max);
  params.full_scale_current = i_on_max * config.full_scale_cells;
  return params;
}

/// One row-polarity conversion pass over the compacted present slots of a
/// (flip, band) unit: gather the slot's accumulated current (and squared
/// sum), apply its batched keyed draw, quantize branch-free, weight by the
/// slot's signed bit weight, and sum.  Terms are exact integer-valued
/// doubles (|code| < 2^13 scaled by 2^bit < 2^16), so the 4-lane
/// exact_integer_sum equals the historical sequential int64 shift-and-add
/// bit-for-bit.  Kept `noinline` as a vectorization barrier: inlined into
/// the per-band sweep, GCC's induction-variable rewrite defeats the
/// gather-based vectorization of the nsum/nsq lookups (same failure mode as
/// the ziggurat fill pass, see util/rng.cpp).
template <bool kTrackSq>
__attribute__((noinline)) double convert_pass(
    const double* FECIM_RESTRICT nsum, const double* FECIM_RESTRICT nsq,
    const std::uint8_t* FECIM_RESTRICT src, const double* FECIM_RESTRICT wgt,
    const double* FECIM_RESTRICT z, double* FECIM_RESTRICT terms,
    std::size_t count, double current_scale, double noise_var_scale,
    double adc_variance, double sigma_adc,
    const circuit::SarAdc& adc) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t s = src[i];
    // Same sigma expression tree as the reference kernel: readout_sigma of
    // the scaled squared sum, or the bare ADC sigma when read noise is off.
    const double sigma =
        kTrackSq ? readout_sigma(noise_var_scale * nsq[s], adc_variance)
                 : sigma_adc;
    const double current = current_scale * nsum[s] + sigma * z[i];
    terms[i] = wgt[i] * adc.convert_ideal_d(current);
  }
  return util::exact_integer_sum(terms, count);
}

/// Both row-polarity conversion passes of a fully-present (flip, band) unit
/// in one loop.  When every (bit, plane) segment is present the conversion
/// lane order [pass][plane][bit] coincides with the packed scratch layout
/// [bank][plane][bit] (the pass selects its bank), so `nsum`/`nsq` are read
/// contiguously -- no gathers -- and the pass polarity rides in the
/// precomputed signed lane weights.  The signed weighted codes are exact
/// integer-valued doubles, so accumulating them into eight independent
/// vector-lane accumulators (reduced pairwise at the end) equals the
/// historical per-pass left-to-right sums -- and their int64 shift-and-add
/// ancestor -- bit-for-bit, while keeping the whole reduction inside the
/// vectorized loop (no terms store/reload).  `noinline` for the same IVOPTS
/// vectorization barrier as convert_pass.
template <bool kTrackSq>
__attribute__((noinline)) double convert_unit_dense(
    const double* FECIM_RESTRICT nsum, const double* FECIM_RESTRICT nsq,
    const double* FECIM_RESTRICT wgt, const double* FECIM_RESTRICT zt,
    std::size_t lanes, double current_scale, double noise_var_scale,
    double adc_variance, double sigma_adc,
    const circuit::SarAdc& adc) noexcept {
  double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::size_t l = 0;
  for (; l + 8 <= lanes; l += 8) {
    for (std::size_t m = 0; m < 8; ++m) {
      const std::size_t i = l + m;
      const double sigma =
          kTrackSq ? readout_sigma(noise_var_scale * nsq[i], adc_variance)
                   : sigma_adc;
      const double current = current_scale * nsum[i] + sigma * zt[i];
      acc[m] += wgt[i] * adc.convert_ideal_d(current);
    }
  }
  for (std::size_t m = 0; l < lanes; ++l, ++m) {
    const double sigma =
        kTrackSq ? readout_sigma(noise_var_scale * nsq[l], adc_variance)
                 : sigma_adc;
    const double current = current_scale * nsum[l] + sigma * zt[l];
    acc[m] += wgt[l] * adc.convert_ideal_d(current);
  }
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

}  // namespace

AnalogCrossbarEngine::AnalogCrossbarEngine(
    std::shared_ptr<const ProgrammedArray> array,
    const AnalogEngineConfig& config)
    : array_(std::move(array)),
      config_(config),
      adc_(resolve_adc_params(config, *array_)) {
  FECIM_EXPECTS(array_ != nullptr);
  i_on_max_ = array_->on_current(array_->device_params().vbg_max);
  FECIM_EXPECTS(i_on_max_ > 0.0);
  const auto bands = array_->bands();
  band_attenuation_.assign(bands.size(), 1.0);
  if (config_.model_ir_drop) {
    if (config_.cached_ir_attenuation > 0.0) {
      attenuation_ = config_.cached_ir_attenuation;
    } else {
      const auto est = circuit::estimate_line_parasitics(
          array_->mapping().physical_rows(), i_on_max_,
          array_->device_params().read_vdl, config_.wire);
      attenuation_ = est.ir_attenuation;
    }
    if (config_.cached_band_ir_attenuation.size() == bands.size()) {
      band_attenuation_ = config_.cached_band_ir_attenuation;
    } else {
      // At most two distinct band heights under the balanced split (full
      // bands plus one remainder), so at most two extra MNA solves; a
      // monolithic array reuses the logical attenuation outright.
      for (std::size_t b = 0; b < bands.size(); ++b) {
        if (bands[b].rows() == array_->mapping().physical_rows()) {
          band_attenuation_[b] = attenuation_;
        } else if (b > 0 && bands[b].rows() == bands[b - 1].rows()) {
          band_attenuation_[b] = band_attenuation_[b - 1];
        } else {
          band_attenuation_[b] =
              circuit::estimate_line_parasitics(
                  bands[b].rows(), i_on_max_,
                  array_->device_params().read_vdl, config_.wire)
                  .ir_attenuation;
        }
      }
    }
  }
  noise_ = ReadoutNoise::for_run(0);
  // Per-tile digital calibration factors of the stochastic path (see the
  // e_inc merge in evaluate()); constant per engine, so the per-evaluation
  // merge is a multiply instead of a divide per band.
  band_to_einc_.resize(bands.size());
  for (std::size_t b = 0; b < bands.size(); ++b)
    band_to_einc_[b] = array_->couplings().scale() * adc_.lsb_current() /
                       (i_on_max_ * band_attenuation_[b]);
  workspace_.flip_mask.assign(array_->mapping().num_spins(), 0);
  workspace_.band_acc.assign(bands.size(), 0.0);
  scratch_.resize(bands.size());
  const auto bits = static_cast<std::size_t>(array_->couplings().bits());
  lane_weight_.resize(4 * bits);
  for (std::size_t pass = 0; pass < 2; ++pass)
    for (std::size_t plane = 0; plane < 2; ++plane)
      for (std::size_t b = 0; b < bits; ++b)
        lane_weight_[pass * 2 * bits + plane * bits + b] =
            (pass == 0 ? 1.0 : -1.0) * (plane == 0 ? 1.0 : -1.0) *
            static_cast<double>(std::uint32_t{1} << b);
}

void AnalogCrossbarEngine::begin_run(std::uint64_t run_seed) {
  noise_ = ReadoutNoise::for_run(run_seed);
}

EincResult AnalogCrossbarEngine::evaluate(std::span<const ising::Spin> spins,
                                          const ising::FlipSet& flips,
                                          const AnnealSignal& signal) {
  FECIM_EXPECTS(!flips.empty());
  const auto& mapping = array_->mapping();
  const auto& couplings = array_->couplings();
  FECIM_EXPECTS(spins.size() == mapping.num_spins());

  const int bits = couplings.bits();
  if (signal.vbg != cached_vbg_) {
    cached_i_on_ = array_->on_current(signal.vbg);
    cached_vbg_ = signal.vbg;
  }
  const double i_on = cached_i_on_;
  const double read_noise_rel = array_->variation_params().read_noise_rel;
  const bool adc_noisy = adc_.params().noise_lsb_rms > 0.0;
  const bool deterministic_readout = read_noise_rel <= 0.0 && !adc_noisy;
  // Association mirrors the per-cell form: (i_on * att) * sum and
  // ((rel * i_on) * att) * sqrt(sq_sum), keeping results bit-identical.
  // Deterministic readout evaluates at the logical-array calibration point
  // (attenuation_); stochastic conversions use each band's own attenuation.
  const double current_scale = i_on * attenuation_;

  const auto bands = array_->bands();
  const std::size_t num_bands = bands.size();

  EincResult result;
  EngineTrace& trace = result.trace;
  trace.crossbar_passes = 4;
  trace.tile_ir_attenuation = band_attenuation_[0];

  // Digital accumulator of signed, bit-weighted ADC codes (deterministic
  // shared-conversion path; the stochastic path accumulates per band into
  // ws.band_acc for the per-tile calibration).
  double accumulator = 0.0;

  auto& ws = workspace_;
  for (auto& acc : ws.band_acc) acc = 0.0;
  // Validate before marking so a contract throw cannot leave stale bits in
  // the reusable mask (contract_error is catchable; a dirty mask would
  // silently corrupt every later evaluation).
  for (const auto f : flips) FECIM_EXPECTS(f < ws.flip_mask.size());
  for (const auto f : flips) ws.flip_mask[f] = 1;

  const auto cache_rows = array_->cache_rows();
  const auto cache_mults = array_->cache_multipliers();
  const auto all_mults = array_->multipliers();
  const std::size_t slots = static_cast<std::size_t>(bits) * 2;

  // One sweep over each distinct cell list of a (band, column) accumulates
  // both row-polarity passes into ws.sum (index 0 = +1 pass, 1 = -1): an
  // unflipped row contributes to exactly one polarity, and the
  // per-polarity addition order stays the column's cell order.
  // `base_spins`/`base_mask` point at the band's first row, so the
  // band-relative cached rows index them directly (a monolithic band
  // starts at row 0).
  const auto accumulate_classes =
      [&](std::span<const ProgrammedArray::SegmentClass> classes,
          const ising::Spin* base_spins, const std::uint8_t* base_mask) {
        for (std::size_t ci = 0; ci < classes.size(); ++ci) {
          const auto& cls = classes[ci];
          if (cls.all_unit) {
            // Branchless: spins are random +-1, so per-cell branches
            // mispredict half the time; counting live and positive cells
            // with masks keeps the loop vectorizable.
            std::uint32_t live = 0;
            std::uint32_t count_pos = 0;
            for (std::uint32_t k = cls.begin; k < cls.end; ++k) {
              const auto row = cache_rows[k];
              const std::uint32_t unflipped = base_mask[row] == 0 ? 1u : 0u;
              live += unflipped;
              count_pos += unflipped & (base_spins[row] > 0 ? 1u : 0u);
            }
            const std::uint32_t count_neg = live - count_pos;
            ws.sum[0][ci] = static_cast<double>(count_pos);
            ws.sum[1][ci] = static_cast<double>(count_neg);
          } else {
            double sum_pos = 0.0;
            double sum_neg = 0.0;
            for (std::uint32_t k = cls.begin; k < cls.end; ++k) {
              const auto row = cache_rows[k];
              if (base_mask[row]) continue;
              const double m = cache_mults[k];
              if (base_spins[row] > 0)
                sum_pos += m;
              else
                sum_neg += m;
            }
            ws.sum[0][ci] = sum_pos;
            ws.sum[1][ci] = sum_neg;
          }
        }
      };

  if (deterministic_readout) {
    for (const auto j : flips) {
      // sigma_c_j = -sigma_j (the flipped value); its sign selects the
      // DL-polarity pass this column participates in.
      const int q = -static_cast<int>(spins[j]);

      const std::uint32_t total_present =
          array_->column_total_present_segments(j);
      const std::size_t column_conversions =
          2 * static_cast<std::size_t>(total_present);
      trace.tile_activations += array_->column_active_bands(j);
      trace.partial_sum_updates += 2 * static_cast<std::size_t>(
          total_present - array_->column_union_present_segments(j));
      // No stochastic term anywhere in the sensing chain: the partial
      // currents are exact functions of the programmed cells, so the
      // digital merge of the per-tile partial sums reconstructs the
      // logical-array conversion, and the engine evaluates the shared
      // quantizer once per logical segment (for a monolithic band: once
      // per segment class, fanning the code out through the precomputed
      // per-class net weight).  The ledger still counts one conversion per
      // (tile, physical column) sensed, and the noise cursor still
      // advances by that count so the indexing stays aligned with
      // implementations that convert per tile segment.
      if (num_bands == 1) {
        const auto classes = array_->column_classes(0, j);
        accumulate_classes(classes, spins.data(), ws.flip_mask.data());

        // Segments sharing a class see the same current, hence the same
        // code, so one conversion per class plus the precomputed per-class
        // net weight replaces the per-segment shift-and-add.  Codes and
        // weights are integers (< 2^53 in every partial sum), so this
        // association is bit-identical to the per-segment order.
        const auto weights = array_->column_class_weights(0, j);
        for (const int p : {+1, -1}) {  // row-polarity (FG) passes
          const int bank = p > 0 ? 0 : 1;
          double column_acc = 0.0;
          for (std::size_t ci = 0; ci < classes.size(); ++ci) {
            const std::uint32_t code =
                adc_.convert_ideal(current_scale * ws.sum[bank][ci]);
            column_acc += weights[ci] * static_cast<double>(code);
          }
          accumulator += static_cast<double>(p * q) * column_acc;
        }
      } else {
        // Multi-tile grid: per band, accumulate the band's class sums and
        // scatter them through the band's segment refs into the
        // per-logical-segment totals (exact for integer multiplier sums --
        // the "integer regrouping" the tiled equivalence suite pins), then
        // convert each logical segment once.
        std::uint32_t union_mask = 0;
        for (std::size_t b = 0; b < static_cast<std::size_t>(bits); ++b) {
          ws.det_sum[0][0][b] = ws.det_sum[0][1][b] = 0.0;
          ws.det_sum[1][0][b] = ws.det_sum[1][1][b] = 0.0;
        }
        for (std::size_t band = 0; band < num_bands; ++band) {
          if (array_->column_present_segments(band, j) == 0) continue;
          const auto row0 = bands[band].row_begin;
          accumulate_classes(array_->column_classes(band, j),
                             spins.data() + row0,
                             ws.flip_mask.data() + row0);
          const auto segments = array_->column_segments(band, j);
          for (std::size_t s = 0; s < slots; ++s) {
            if (!segments[s].present) continue;
            const std::size_t b = s >> 1;
            const std::size_t plane = s & 1;
            ws.det_sum[0][plane][b] += ws.sum[0][segments[s].cls];
            ws.det_sum[1][plane][b] += ws.sum[1][segments[s].cls];
            union_mask |= 1u << s;
          }
        }
        for (const int p : {+1, -1}) {  // row-polarity (FG) passes
          const int bank = p > 0 ? 0 : 1;
          std::int64_t pass_acc = 0;
          for (std::size_t s = 0; s < slots; ++s) {
            if (!((union_mask >> s) & 1u)) continue;
            const std::size_t b = s >> 1;
            const std::size_t plane = s & 1;
            const std::uint32_t code = adc_.convert_ideal(
                current_scale * ws.det_sum[bank][plane][b]);
            const auto shifted = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(code) << b);
            pass_acc += plane == 0 ? shifted : -shifted;
          }
          accumulator +=
              static_cast<double>(p * q) * static_cast<double>(pass_acc);
        }
      }
      trace.adc_conversions += column_conversions;
      noise_.next_conversion += column_conversions;
    }
  } else {
    // Stochastic readout sweep over independent (flip, band) units.
    //
    // Serial prelude: ledger accounting, the canonical conversion-index
    // layout (flip-major, then band, then polarity/bit/plane -- exactly the
    // cursor order of the reference kernel), and ONE widened ziggurat fill
    // covering every conversion of the evaluation.  Each keyed draw is a
    // pure function of its absolute conversion index, so one evaluation-wide
    // fill equals the historical per-(flip, band) fills element-wise, and
    // any regrouping of the sweep below sees identical noise.
    const std::size_t flip_count = flips.size();
    if (ws.conv_base.size() < flip_count * num_bands)
      ws.conv_base.resize(flip_count * num_bands);
    if (ws.flip_view.size() < flip_count) {
      ws.flip_view.resize(flip_count);
      ws.flip_q.resize(flip_count);
    }
    std::size_t total_conversions = 0;
    for (std::size_t fi = 0; fi < flip_count; ++fi) {
      const auto j = flips[fi];
      ws.flip_view[fi] = array_->column(j);
      // sigma_c_j = -sigma_j (the flipped value); its sign selects the
      // DL-polarity pass this column participates in.
      ws.flip_q[fi] = -static_cast<int>(spins[j]);
      const std::uint32_t total_present =
          array_->column_total_present_segments(j);
      trace.tile_activations += array_->column_active_bands(j);
      trace.partial_sum_updates += 2 * static_cast<std::size_t>(
          total_present - array_->column_union_present_segments(j));
      trace.adc_conversions += 2 * static_cast<std::size_t>(total_present);
      for (std::size_t band = 0; band < num_bands; ++band) {
        ws.conv_base[fi * num_bands + band] =
            static_cast<std::uint32_t>(total_conversions);
        total_conversions +=
            2 * static_cast<std::size_t>(
                    array_->column_present_segments(band, j));
      }
    }
    if (ws.z.size() < total_conversions) ws.z.resize(total_conversions);
    noise_.conversion.normal_fill(noise_.next_conversion,
                                  {ws.z.data(), total_conversions});
    noise_.next_conversion += total_conversions;

    const bool track_sq = read_noise_rel > 0.0;
    const double sigma_adc = adc_.noise_sigma_current();
    const double adc_variance = sigma_adc * sigma_adc;

    // Hot state as raw pointers/locals: the sweep below reads them through
    // the lambda capture on every unit, and loading them out of the
    // workspace vectors once keeps the per-unit code free of repeated
    // data-pointer indirections (they are loop-invariant; the compiler
    // cannot hoist them itself past the scratch stores).
    const double* const z_data = ws.z.data();
    const std::uint32_t* const conv_base = ws.conv_base.data();
    double* const band_acc = ws.band_acc.data();
    const std::uint8_t* const flip_mask = ws.flip_mask.data();
    const ProgrammedArray::ColumnView* const flip_view = ws.flip_view.data();
    const int* const flip_q = ws.flip_q.data();
    BandScratch* const scratch = scratch_.data();
    const double* const batt = band_attenuation_.data();
    const double* const lane_weight = lane_weight_.data();
    const ising::Spin* const spin_data = spins.data();

    const std::size_t unit_lanes = 2 * slots;  // 4 * bits conversion lanes

    // Cell sweep of one (flip, band) unit into band scratch at lane_base:
    // bank-selecting per-cell walk over the band's contiguous sub-range of
    // the column's cells against the entry-major multiplier storage.  The
    // inner bit loop is branch-free and unit-stride (absent bits store
    // multiplier 0); cells of flipped rows and of the other spin bank only
    // ever contributed exact +0.0 terms to the historical
    // select-and-multiply form, so skipping them outright leaves every
    // (nonnegative) accumulator bit-identical to the filtered per-segment
    // walk of the reference kernel -- addition order per segment is the
    // column's cell order either way.  For dense units the unit's batched
    // draws are also de-interleaved from cursor order [pass][bit][plane]
    // into conversion lane order [pass][plane][bit] at the same lane_base.
    const auto sweep_cells = [&](std::size_t band, std::size_t fi,
                                 std::size_t lane_base,
                                 bool dense) FECIM_ALWAYS_INLINE {
      const auto j = flips[fi];
      const auto& view = flip_view[fi];
      const auto range = array_->column_band_cells(band, j);
      auto& sc = scratch[band];
      double* FECIM_RESTRICT nsum = sc.nsum + lane_base;
      double* FECIM_RESTRICT nsq = sc.nsq + lane_base;
      for (std::size_t i = 0; i < 2 * slots; ++i) nsum[i] = 0.0;
      if (track_sq)
        for (std::size_t i = 0; i < 2 * slots; ++i) nsq[i] = 0.0;
      for (std::size_t k = range.begin; k < range.end; ++k) {
        const auto row = view.rows[k];
        if (flip_mask[row] != 0) continue;
        const std::size_t bank = spin_data[row] > 0 ? 0 : 1;
        const std::size_t plane = view.magnitudes[k] < 0 ? 1 : 0;
        const float* FECIM_RESTRICT entry_mults =
            all_mults.data() +
            (view.first_entry + k) * static_cast<std::size_t>(bits);
        double* FECIM_RESTRICT sum =
            nsum + bank * slots + plane * static_cast<std::size_t>(bits);
        if (track_sq) {
          double* FECIM_RESTRICT sq =
              nsq + bank * slots + plane * static_cast<std::size_t>(bits);
          for (int b = 0; b < bits; ++b) {
            const double m = entry_mults[b];
            sum[b] += m;
            sq[b] += m * m;
          }
        } else {
          // ADC-noise-only regime (the default config): the squared sums
          // are never read, so skip half the sweep's arithmetic.
          for (int b = 0; b < bits; ++b) sum[b] += entry_mults[b];
        }
      }
      if (dense) {
        const double* z = z_data + conv_base[fi * num_bands + band];
        for (std::size_t half = 0; half < 2; ++half) {
          const double* FECIM_RESTRICT zp = z + half * slots;
          double* FECIM_RESTRICT ztp = sc.zt + lane_base + half * slots;
          FECIM_LOOP_IVDEP
          for (int b = 0; b < bits; ++b) {
            ztp[b] = zp[2 * b];
            ztp[bits + b] = zp[2 * b + 1];
          }
        }
      }
    };

    // One band end to end: walk the flips in order, sweeping each present
    // unit and converting it.  A DENSE unit (every (bit, plane) segment
    // present -- the common case for non-degenerate couplings) converts
    // both passes in one call: its conversion lane order coincides with the
    // packed scratch layout (the pass selects its bank), so nsum/nsq/zt are
    // read contiguously with no gathers, and the pass polarity rides in the
    // precomputed signed lane weights.  Every weighted-code term, pass sum
    // and band_acc partial is an exact integer well under 2^53, so any
    // association here matches the historical int64 shift-and-add
    // bit-for-bit.  Units are independent: each writes only its band's
    // scratch and band_acc slot, and per band the flips arrive in flip
    // order, so the band-parallel dispatch below is bit-identical to the
    // serial one.
    const auto sweep_band = [&](std::size_t band) FECIM_ALWAYS_INLINE {
      auto& sc = scratch[band];
      const double att_b = batt[band];
      const double current_scale_b = i_on * att_b;
      const double noise_scale_b = (read_noise_rel * i_on) * att_b;
      const double noise_var_scale = noise_scale_b * noise_scale_b;
      std::size_t fi = 0;
      while (fi < flip_count) {
        const auto j = flips[fi];
        const std::uint32_t band_present =
            array_->column_present_segments(band, j);
        if (band_present == 0) {  // tile stores nothing: no conversion
          ++fi;
          continue;
        }
        if (band_present == slots) {
          sweep_cells(band, fi, 0, true);
          const double both =
              track_sq ? convert_unit_dense<true>(
                             sc.nsum, sc.nsq, lane_weight, sc.zt, unit_lanes,
                             current_scale_b, noise_var_scale, adc_variance,
                             sigma_adc, adc_)
                       : convert_unit_dense<false>(
                             sc.nsum, sc.nsq, lane_weight, sc.zt, unit_lanes,
                             current_scale_b, noise_var_scale, adc_variance,
                             sigma_adc, adc_);
          band_acc[band] += static_cast<double>(flip_q[fi]) * both;
          ++fi;
          continue;
        }
        // Sparse unit: gather the present slots through the compacted
        // slot metadata, one pass at a time.
        sweep_cells(band, fi, 0, false);
        const int q = flip_q[fi];
        const double* z = z_data + conv_base[fi * num_bands + band];
        const auto src = array_->column_slot_src(band, j);
        const auto wgt = array_->column_slot_weights(band, j);
        for (const int p : {+1, -1}) {  // row-polarity (FG) passes
          const std::size_t bank = p > 0 ? 0 : 1;
          const double pass_acc =
              track_sq ? convert_pass<true>(sc.nsum + bank * slots,
                                            sc.nsq + bank * slots, src.data(),
                                            wgt.data(), z, sc.terms,
                                            band_present, current_scale_b,
                                            noise_var_scale, adc_variance,
                                            sigma_adc, adc_)
                       : convert_pass<false>(sc.nsum + bank * slots,
                                             sc.nsq + bank * slots, src.data(),
                                             wgt.data(), z, sc.terms,
                                             band_present, current_scale_b,
                                             noise_var_scale, adc_variance,
                                             sigma_adc, adc_);
          band_acc[band] += static_cast<double>(p * q) * pass_acc;
          z += band_present;
        }
        ++fi;
      }
    };

    if (config_.band_threads == 1 || num_bands == 1) {
      for (std::size_t band = 0; band < num_bands; ++band) sweep_band(band);
    } else {
      // Band-level parallelism: each pool task owns one band end to end
      // (all flips in flip order), meeting the serial path only at the
      // digital partial-sum merge below.  Nested inside an already-parallel
      // campaign replica this degrades to the serial inline sweep.
      const auto threads = config_.band_threads < 0
                               ? std::size_t{0}
                               : static_cast<std::size_t>(config_.band_threads);
      util::parallel_for(
          num_bands, [&](std::size_t band) { sweep_band(band); }, threads);
    }
  }

  for (const auto f : flips) ws.flip_mask[f] = 0;

  // Fixed digital calibration: codes carry I_on(vbg) * attenuation / LSB;
  // dividing by I_on(vbg_max) * attenuation re-expresses the result as
  // (sigma_r^T J_hat sigma_c) * [I_on(vbg) / I_on(vbg_max)], i.e. the raw
  // VMV times the hardware realization of f(T).  The stochastic path
  // calibrates each tile's code sum by that tile's own attenuation; the
  // deterministic path divides the shared logical-array factor back out.
  if (deterministic_readout) {
    const double to_einc =
        couplings.scale() * adc_.lsb_current() / (i_on_max_ * attenuation_);
    result.e_inc = accumulator * to_einc;
  } else {
    double e_inc = 0.0;
    for (std::size_t band = 0; band < num_bands; ++band)
      e_inc += ws.band_acc[band] * band_to_einc_[band];
    result.e_inc = e_inc;
  }
  const double f_hw = i_on / i_on_max_;
  result.raw_vmv = f_hw > 0.0 ? result.e_inc / f_hw : 0.0;

  const auto n = static_cast<std::uint64_t>(mapping.num_spins());
  const auto t = static_cast<std::uint64_t>(flips.size());
  trace.mux_slot_cycles = 2 * mapping.slots_for_flips(flips);
  trace.row_drives = 2 * (n - t);
  trace.column_drives =
      2 * t * static_cast<std::uint64_t>(bits) *
      static_cast<std::uint64_t>(mapping.planes());
  return result;
}

}  // namespace fecim::crossbar
