#include "crossbar/analog_engine.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fecim::crossbar {

namespace {

circuit::SarAdcParams resolve_adc_params(const AnalogEngineConfig& config,
                                         const ProgrammedArray& array) {
  circuit::SarAdcParams params = config.adc;
  const double i_on_max =
      array.on_current(array.device_params().vbg_max);
  params.full_scale_current = i_on_max * config.full_scale_cells;
  return params;
}

}  // namespace

AnalogCrossbarEngine::AnalogCrossbarEngine(
    std::shared_ptr<const ProgrammedArray> array,
    const AnalogEngineConfig& config)
    : array_(std::move(array)),
      config_(config),
      adc_(resolve_adc_params(config, *array_)) {
  FECIM_EXPECTS(array_ != nullptr);
  i_on_max_ = array_->on_current(array_->device_params().vbg_max);
  FECIM_EXPECTS(i_on_max_ > 0.0);
  const auto bands = array_->bands();
  band_attenuation_.assign(bands.size(), 1.0);
  if (config_.model_ir_drop) {
    if (config_.cached_ir_attenuation > 0.0) {
      attenuation_ = config_.cached_ir_attenuation;
    } else {
      const auto est = circuit::estimate_line_parasitics(
          array_->mapping().physical_rows(), i_on_max_,
          array_->device_params().read_vdl, config_.wire);
      attenuation_ = est.ir_attenuation;
    }
    if (config_.cached_band_ir_attenuation.size() == bands.size()) {
      band_attenuation_ = config_.cached_band_ir_attenuation;
    } else {
      // At most two distinct band heights under the balanced split (full
      // bands plus one remainder), so at most two extra MNA solves; a
      // monolithic array reuses the logical attenuation outright.
      for (std::size_t b = 0; b < bands.size(); ++b) {
        if (bands[b].rows() == array_->mapping().physical_rows()) {
          band_attenuation_[b] = attenuation_;
        } else if (b > 0 && bands[b].rows() == bands[b - 1].rows()) {
          band_attenuation_[b] = band_attenuation_[b - 1];
        } else {
          band_attenuation_[b] =
              circuit::estimate_line_parasitics(
                  bands[b].rows(), i_on_max_,
                  array_->device_params().read_vdl, config_.wire)
                  .ir_attenuation;
        }
      }
    }
  }
  noise_ = ReadoutNoise::for_run(0);
  workspace_.flip_mask.assign(array_->mapping().num_spins(), 0);
  workspace_.band_acc.assign(bands.size(), 0.0);
}

void AnalogCrossbarEngine::begin_run(std::uint64_t run_seed) {
  noise_ = ReadoutNoise::for_run(run_seed);
}

EincResult AnalogCrossbarEngine::evaluate(std::span<const ising::Spin> spins,
                                          const ising::FlipSet& flips,
                                          const AnnealSignal& signal) {
  FECIM_EXPECTS(!flips.empty());
  const auto& mapping = array_->mapping();
  const auto& couplings = array_->couplings();
  FECIM_EXPECTS(spins.size() == mapping.num_spins());

  const int bits = couplings.bits();
  if (signal.vbg != cached_vbg_) {
    cached_i_on_ = array_->on_current(signal.vbg);
    cached_vbg_ = signal.vbg;
  }
  const double i_on = cached_i_on_;
  const double read_noise_rel = array_->variation_params().read_noise_rel;
  const bool adc_noisy = adc_.params().noise_lsb_rms > 0.0;
  const bool deterministic_readout = read_noise_rel <= 0.0 && !adc_noisy;
  // Association mirrors the per-cell form: (i_on * att) * sum and
  // ((rel * i_on) * att) * sqrt(sq_sum), keeping results bit-identical.
  // Deterministic readout evaluates at the logical-array calibration point
  // (attenuation_); stochastic conversions use each band's own attenuation.
  const double current_scale = i_on * attenuation_;

  const auto bands = array_->bands();
  const std::size_t num_bands = bands.size();

  EincResult result;
  EngineTrace& trace = result.trace;
  trace.crossbar_passes = 4;
  trace.tile_ir_attenuation = band_attenuation_[0];

  // Digital accumulator of signed, bit-weighted ADC codes (deterministic
  // shared-conversion path; the stochastic path accumulates per band into
  // ws.band_acc for the per-tile calibration).
  double accumulator = 0.0;

  auto& ws = workspace_;
  for (auto& acc : ws.band_acc) acc = 0.0;
  // Validate before marking so a contract throw cannot leave stale bits in
  // the reusable mask (contract_error is catchable; a dirty mask would
  // silently corrupt every later evaluation).
  for (const auto f : flips) FECIM_EXPECTS(f < ws.flip_mask.size());
  for (const auto f : flips) ws.flip_mask[f] = 1;

  const auto cache_rows = array_->cache_rows();
  const auto cache_mults = array_->cache_multipliers();
  const auto all_mults = array_->multipliers();
  const std::size_t slots = static_cast<std::size_t>(bits) * 2;

  // One sweep over each distinct cell list of a (band, column) accumulates
  // both row-polarity passes into ws.sum (index 0 = +1 pass, 1 = -1): an
  // unflipped row contributes to exactly one polarity, and the
  // per-polarity addition order stays the column's cell order.
  // `base_spins`/`base_mask` point at the band's first row, so the
  // band-relative cached rows index them directly (a monolithic band
  // starts at row 0).
  const auto accumulate_classes =
      [&](std::span<const ProgrammedArray::SegmentClass> classes,
          const ising::Spin* base_spins, const std::uint8_t* base_mask) {
        for (std::size_t ci = 0; ci < classes.size(); ++ci) {
          const auto& cls = classes[ci];
          if (cls.all_unit) {
            // Branchless: spins are random +-1, so per-cell branches
            // mispredict half the time; counting live and positive cells
            // with masks keeps the loop vectorizable.
            std::uint32_t live = 0;
            std::uint32_t count_pos = 0;
            for (std::uint32_t k = cls.begin; k < cls.end; ++k) {
              const auto row = cache_rows[k];
              const std::uint32_t unflipped = base_mask[row] == 0 ? 1u : 0u;
              live += unflipped;
              count_pos += unflipped & (base_spins[row] > 0 ? 1u : 0u);
            }
            const std::uint32_t count_neg = live - count_pos;
            ws.sum[0][ci] = static_cast<double>(count_pos);
            ws.sum[1][ci] = static_cast<double>(count_neg);
          } else {
            double sum_pos = 0.0;
            double sum_neg = 0.0;
            for (std::uint32_t k = cls.begin; k < cls.end; ++k) {
              const auto row = cache_rows[k];
              if (base_mask[row]) continue;
              const double m = cache_mults[k];
              if (base_spins[row] > 0)
                sum_pos += m;
              else
                sum_neg += m;
            }
            ws.sum[0][ci] = sum_pos;
            ws.sum[1][ci] = sum_neg;
          }
        }
      };

  for (const auto j : flips) {
    // sigma_c_j = -sigma_j (the flipped value); its sign selects the
    // DL-polarity pass this column participates in.
    const int q = -static_cast<int>(spins[j]);

    const std::uint32_t total_present =
        array_->column_total_present_segments(j);
    const std::size_t column_conversions =
        2 * static_cast<std::size_t>(total_present);
    trace.tile_activations += array_->column_active_bands(j);
    trace.partial_sum_updates +=
        2 * static_cast<std::size_t>(total_present -
                                     array_->column_union_present_segments(j));

    if (deterministic_readout) {
      // No stochastic term anywhere in the sensing chain: the partial
      // currents are exact functions of the programmed cells, so the
      // digital merge of the per-tile partial sums reconstructs the
      // logical-array conversion, and the engine evaluates the shared
      // quantizer once per logical segment (for a monolithic band: once
      // per segment class, fanning the code out through the precomputed
      // per-class net weight).  The ledger still counts one conversion per
      // (tile, physical column) sensed, and the noise cursor still
      // advances by that count so the indexing stays aligned with
      // implementations that convert per tile segment.
      if (num_bands == 1) {
        const auto classes = array_->column_classes(0, j);
        accumulate_classes(classes, spins.data(), ws.flip_mask.data());

        // Segments sharing a class see the same current, hence the same
        // code, so one conversion per class plus the precomputed per-class
        // net weight replaces the per-segment shift-and-add.  Codes and
        // weights are integers (< 2^53 in every partial sum), so this
        // association is bit-identical to the per-segment order.
        const auto weights = array_->column_class_weights(0, j);
        for (const int p : {+1, -1}) {  // row-polarity (FG) passes
          const int bank = p > 0 ? 0 : 1;
          double column_acc = 0.0;
          for (std::size_t ci = 0; ci < classes.size(); ++ci) {
            const std::uint32_t code =
                adc_.convert_ideal(current_scale * ws.sum[bank][ci]);
            column_acc += weights[ci] * static_cast<double>(code);
          }
          accumulator += static_cast<double>(p * q) * column_acc;
        }
      } else {
        // Multi-tile grid: per band, accumulate the band's class sums and
        // scatter them through the band's segment refs into the
        // per-logical-segment totals (exact for integer multiplier sums --
        // the "integer regrouping" the tiled equivalence suite pins), then
        // convert each logical segment once.
        std::uint32_t union_mask = 0;
        for (std::size_t b = 0; b < static_cast<std::size_t>(bits); ++b) {
          ws.det_sum[0][0][b] = ws.det_sum[0][1][b] = 0.0;
          ws.det_sum[1][0][b] = ws.det_sum[1][1][b] = 0.0;
        }
        for (std::size_t band = 0; band < num_bands; ++band) {
          if (array_->column_present_segments(band, j) == 0) continue;
          const auto row0 = bands[band].row_begin;
          accumulate_classes(array_->column_classes(band, j),
                             spins.data() + row0,
                             ws.flip_mask.data() + row0);
          const auto segments = array_->column_segments(band, j);
          for (std::size_t s = 0; s < slots; ++s) {
            if (!segments[s].present) continue;
            const std::size_t b = s >> 1;
            const std::size_t plane = s & 1;
            ws.det_sum[0][plane][b] += ws.sum[0][segments[s].cls];
            ws.det_sum[1][plane][b] += ws.sum[1][segments[s].cls];
            union_mask |= 1u << s;
          }
        }
        for (const int p : {+1, -1}) {  // row-polarity (FG) passes
          const int bank = p > 0 ? 0 : 1;
          std::int64_t pass_acc = 0;
          for (std::size_t s = 0; s < slots; ++s) {
            if (!((union_mask >> s) & 1u)) continue;
            const std::size_t b = s >> 1;
            const std::size_t plane = s & 1;
            const std::uint32_t code = adc_.convert_ideal(
                current_scale * ws.det_sum[bank][plane][b]);
            const auto shifted = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(code) << b);
            pass_acc += plane == 0 ? shifted : -shifted;
          }
          accumulator +=
              static_cast<double>(p * q) * static_cast<double>(pass_acc);
        }
      }
      trace.adc_conversions += column_conversions;
      noise_.next_conversion += column_conversions;
      continue;
    }

    // Stochastic readout sweep, one row band (tile) at a time: device
    // variation de-dupes to nothing (every multiplier is distinct), so walk
    // the band's contiguous sub-range of the column's cells against the
    // entry-major multiplier storage -- one row/flip/spin gather per cell,
    // and a branch-free unit-stride inner bit loop (absent bits store
    // multiplier 0, filtered cells select 0.0, and +0.0 terms never change
    // a sum, so every accumulator stays bit-identical to the filtered
    // per-segment walk of the reference kernel; addition order per segment
    // is the column's cell order either way).
    const auto view = array_->column(j);
    for (std::size_t band = 0; band < num_bands; ++band) {
      const std::uint32_t band_present =
          array_->column_present_segments(band, j);
      if (band_present == 0) continue;  // tile stores nothing: no conversion
      const auto range = array_->column_band_cells(band, j);
      const auto segments = array_->column_segments(band, j);
      const double att_b = band_attenuation_[band];
      const double current_scale_b = i_on * att_b;
      const double noise_scale_b = (read_noise_rel * i_on) * att_b;

      for (std::size_t b = 0; b < static_cast<std::size_t>(bits); ++b) {
        ws.nsum[0][0][b] = ws.nsum[0][1][b] = 0.0;
        ws.nsum[1][0][b] = ws.nsum[1][1][b] = 0.0;
        ws.nsq[0][0][b] = ws.nsq[0][1][b] = 0.0;
        ws.nsq[1][0][b] = ws.nsq[1][1][b] = 0.0;
      }
      for (std::size_t k = range.begin; k < range.end; ++k) {
        const auto row = view.rows[k];
        const double live = ws.flip_mask[row] == 0 ? 1.0 : 0.0;
        const double sel_pos = spins[row] > 0 ? live : 0.0;
        const double sel_neg = live - sel_pos;
        const std::size_t plane = view.magnitudes[k] < 0 ? 1 : 0;
        const float* entry_mults =
            all_mults.data() +
            (view.first_entry + k) * static_cast<std::size_t>(bits);
        double* sum_pos = ws.nsum[0][plane];
        double* sum_neg = ws.nsum[1][plane];
        double* sq_pos = ws.nsq[0][plane];
        double* sq_neg = ws.nsq[1][plane];
        if (read_noise_rel > 0.0) {
          for (int b = 0; b < bits; ++b) {
            const double m = entry_mults[b];
            const double m_pos = m * sel_pos;
            const double m_neg = m * sel_neg;
            sum_pos[b] += m_pos;
            sum_neg[b] += m_neg;
            sq_pos[b] += m_pos * m_pos;
            sq_neg[b] += m_neg * m_neg;
          }
        } else {
          // ADC-noise-only regime (the default config): the squared sums
          // are never read, so skip half the sweep's arithmetic.
          for (int b = 0; b < bits; ++b) {
            const double m = entry_mults[b];
            sum_pos[b] += m * sel_pos;
            sum_neg[b] += m * sel_neg;
          }
        }
      }

      // Batch this (column, tile)'s keyed draws -- conversion indices
      // [next_conversion, next_conversion + band_conversions) in the
      // canonical band/polarity/bit/plane order -- then consume them in
      // sequence.  The batched values equal element-wise keyed draws, so
      // any regrouping of this loop (or a future tile-parallel version)
      // sees identical noise.  Each conversion takes ONE draw scaled by its
      // total input-referred sigma (read noise + ADC noise in quadrature,
      // see readout_sigma), precomputed per segment so the sqrt stays out
      // of the polarity passes.
      const std::size_t band_conversions =
          2 * static_cast<std::size_t>(band_present);
      noise_.conversion.normal_fill(noise_.next_conversion,
                                    {ws.z, band_conversions});
      const double sigma_adc = adc_.noise_sigma_current();
      const double noise_var_scale = noise_scale_b * noise_scale_b;
      const double adc_variance = sigma_adc * sigma_adc;
      for (std::size_t s = 0; s < slots; ++s) {
        if (!segments[s].present) continue;
        const std::size_t b = s >> 1;
        const std::size_t plane = s & 1;
        if (read_noise_rel > 0.0) {
          ws.nsigma[0][plane][b] = readout_sigma(
              noise_var_scale * ws.nsq[0][plane][b], adc_variance);
          ws.nsigma[1][plane][b] = readout_sigma(
              noise_var_scale * ws.nsq[1][plane][b], adc_variance);
        } else {
          ws.nsigma[0][plane][b] = sigma_adc;
          ws.nsigma[1][plane][b] = sigma_adc;
        }
      }
      std::size_t conversion = 0;
      for (const int p : {+1, -1}) {  // row-polarity (FG) passes
        const int bank = p > 0 ? 0 : 1;
        // Codes and bit weights are integers, so the per-pass shift-and-add
        // runs in int64 (max |sum| < 2^34) and joins the double accumulator
        // once per pass -- exact, hence bit-identical to the per-segment
        // double adds.
        std::int64_t pass_acc = 0;
        for (std::size_t s = 0; s < slots; ++s) {
          if (!segments[s].present) continue;
          const std::size_t b = s >> 1;
          const std::size_t plane = s & 1;
          const double current =
              current_scale_b * ws.nsum[bank][plane][b] +
              ws.nsigma[bank][plane][b] * ws.z[conversion];
          const std::uint32_t code = adc_.convert_ideal(current);
          const auto shifted = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(code) << b);
          pass_acc += plane == 0 ? shifted : -shifted;
          ++conversion;
        }
        ws.band_acc[band] +=
            static_cast<double>(p * q) * static_cast<double>(pass_acc);
      }
      noise_.next_conversion += band_conversions;
    }
    trace.adc_conversions += column_conversions;
  }

  for (const auto f : flips) ws.flip_mask[f] = 0;

  // Fixed digital calibration: codes carry I_on(vbg) * attenuation / LSB;
  // dividing by I_on(vbg_max) * attenuation re-expresses the result as
  // (sigma_r^T J_hat sigma_c) * [I_on(vbg) / I_on(vbg_max)], i.e. the raw
  // VMV times the hardware realization of f(T).  The stochastic path
  // calibrates each tile's code sum by that tile's own attenuation; the
  // deterministic path divides the shared logical-array factor back out.
  if (deterministic_readout) {
    const double to_einc =
        couplings.scale() * adc_.lsb_current() / (i_on_max_ * attenuation_);
    result.e_inc = accumulator * to_einc;
  } else {
    double e_inc = 0.0;
    for (std::size_t band = 0; band < num_bands; ++band) {
      const double to_einc_band =
          couplings.scale() * adc_.lsb_current() /
          (i_on_max_ * band_attenuation_[band]);
      e_inc += ws.band_acc[band] * to_einc_band;
    }
    result.e_inc = e_inc;
  }
  const double f_hw = i_on / i_on_max_;
  result.raw_vmv = f_hw > 0.0 ? result.e_inc / f_hw : 0.0;

  const auto n = static_cast<std::uint64_t>(mapping.num_spins());
  const auto t = static_cast<std::uint64_t>(flips.size());
  trace.mux_slot_cycles = 2 * mapping.slots_for_flips(flips);
  trace.row_drives = 2 * (n - t);
  trace.column_drives =
      2 * t * static_cast<std::uint64_t>(bits) *
      static_cast<std::uint64_t>(mapping.planes());
  return result;
}

}  // namespace fecim::crossbar
