#include "crossbar/analog_engine.hpp"

#include <array>
#include <cmath>

#include "util/assert.hpp"

namespace fecim::crossbar {

namespace {

circuit::SarAdcParams resolve_adc_params(const AnalogEngineConfig& config,
                                         const ProgrammedArray& array) {
  circuit::SarAdcParams params = config.adc;
  const double i_on_max =
      array.on_current(array.device_params().vbg_max);
  params.full_scale_current = i_on_max * config.full_scale_cells;
  return params;
}

}  // namespace

AnalogCrossbarEngine::AnalogCrossbarEngine(
    std::shared_ptr<const ProgrammedArray> array,
    const AnalogEngineConfig& config)
    : array_(std::move(array)),
      config_(config),
      adc_(resolve_adc_params(config, *array_)) {
  FECIM_EXPECTS(array_ != nullptr);
  i_on_max_ = array_->on_current(array_->device_params().vbg_max);
  FECIM_EXPECTS(i_on_max_ > 0.0);
  if (config_.model_ir_drop) {
    const auto est = circuit::estimate_line_parasitics(
        array_->mapping().physical_rows(), i_on_max_,
        array_->device_params().read_vdl, config_.wire);
    attenuation_ = est.ir_attenuation;
  }
}

EincResult AnalogCrossbarEngine::evaluate(std::span<const ising::Spin> spins,
                                          const ising::FlipSet& flips,
                                          const AnnealSignal& signal,
                                          util::Rng& rng) {
  FECIM_EXPECTS(!flips.empty());
  const auto& mapping = array_->mapping();
  const auto& couplings = array_->couplings();
  FECIM_EXPECTS(spins.size() == mapping.num_spins());

  const int bits = couplings.bits();
  const double i_on = array_->on_current(signal.vbg);
  const double read_noise_rel = array_->variation_params().read_noise_rel;

  EincResult result;
  EngineTrace& trace = result.trace;
  trace.crossbar_passes = 4;

  // Digital accumulator of signed, bit-weighted ADC codes.
  double accumulator = 0.0;

  auto is_flipped = [&flips](std::uint32_t row) {
    for (const auto f : flips)
      if (f == row) return true;
    return false;
  };

  // Per (bit, plane) current accumulation scratch: [bit][plane 0=pos,1=neg]
  // holding the sum of cell multipliers and the sum of their squares (for
  // aggregated per-cell read noise).
  std::array<std::array<double, 2>, 16> mult_sum{};
  std::array<std::array<double, 2>, 16> mult_sq_sum{};
  std::array<std::array<bool, 2>, 16> column_present{};

  for (const auto j : flips) {
    // sigma_c_j = -sigma_j (the flipped value); its sign selects the
    // DL-polarity pass this column participates in.
    const int q = -static_cast<int>(spins[j]);
    const auto view = array_->column(j);

    // Which (bit, plane) physical columns exist for this logical column:
    // the controller knows the programmed map and skips empty bit-columns.
    for (auto& row : column_present) row = {false, false};
    for (std::size_t k = 0; k < view.rows.size(); ++k) {
      const std::int32_t mag = view.magnitudes[k];
      const auto abs_mag = static_cast<std::uint32_t>(std::abs(mag));
      const int plane = mag < 0 ? 1 : 0;
      for (int b = 0; b < bits; ++b)
        if (abs_mag & (1u << b))
          column_present[static_cast<std::size_t>(b)]
                        [static_cast<std::size_t>(plane)] = true;
    }

    for (const int p : {+1, -1}) {  // row-polarity (FG) passes
      for (auto& row : mult_sum) row = {0.0, 0.0};
      for (auto& row : mult_sq_sum) row = {0.0, 0.0};

      for (std::size_t k = 0; k < view.rows.size(); ++k) {
        const auto i = view.rows[k];
        // sigma_r is zero at flipped rows; the FG driver only raises rows
        // whose unflipped spin matches the pass polarity.
        if (static_cast<int>(spins[i]) != p || is_flipped(i)) continue;
        const std::int32_t mag = view.magnitudes[k];
        const auto abs_mag = static_cast<std::uint32_t>(std::abs(mag));
        const int plane = mag < 0 ? 1 : 0;
        const std::size_t entry = view.first_entry + k;
        for (int b = 0; b < bits; ++b) {
          if (!(abs_mag & (1u << b))) continue;
          const double m = array_->bit_multiplier(entry, b);
          mult_sum[static_cast<std::size_t>(b)]
                  [static_cast<std::size_t>(plane)] += m;
          mult_sq_sum[static_cast<std::size_t>(b)]
                     [static_cast<std::size_t>(plane)] += m * m;
        }
      }

      for (int b = 0; b < bits; ++b) {
        for (int plane = 0; plane < 2; ++plane) {
          if (!column_present[static_cast<std::size_t>(b)]
                             [static_cast<std::size_t>(plane)])
            continue;
          double current = i_on * attenuation_ *
                           mult_sum[static_cast<std::size_t>(b)]
                                   [static_cast<std::size_t>(plane)];
          if (read_noise_rel > 0.0) {
            // Independent per-cell C2C noise aggregates in quadrature.
            const double sigma =
                read_noise_rel * i_on * attenuation_ *
                std::sqrt(mult_sq_sum[static_cast<std::size_t>(b)]
                                     [static_cast<std::size_t>(plane)]);
            if (sigma > 0.0) current += rng.normal(0.0, sigma);
          }
          const std::uint32_t code = adc_.convert(current, rng);
          const double plane_sign = plane == 0 ? 1.0 : -1.0;
          accumulator += static_cast<double>(p * q) * plane_sign *
                         static_cast<double>(1u << b) *
                         static_cast<double>(code);
          ++trace.adc_conversions;
        }
      }
    }
  }

  // Fixed digital calibration: codes carry I_on(vbg) * attenuation / LSB;
  // dividing by I_on(vbg_max) * attenuation re-expresses the result as
  // (sigma_r^T J_hat sigma_c) * [I_on(vbg) / I_on(vbg_max)], i.e. the raw
  // VMV times the hardware realization of f(T).
  const double to_einc =
      couplings.scale() * adc_.lsb_current() / (i_on_max_ * attenuation_);
  result.e_inc = accumulator * to_einc;
  const double f_hw = i_on / i_on_max_;
  result.raw_vmv = f_hw > 0.0 ? result.e_inc / f_hw : 0.0;

  const auto n = static_cast<std::uint64_t>(mapping.num_spins());
  const auto t = static_cast<std::uint64_t>(flips.size());
  trace.mux_slot_cycles = 2 * mapping.slots_for_flips(flips);
  trace.row_drives = 2 * (n - t);
  trace.column_drives =
      2 * t * static_cast<std::uint64_t>(bits) *
      static_cast<std::uint64_t>(mapping.planes());
  return result;
}

}  // namespace fecim::crossbar
