#include "crossbar/analog_engine.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fecim::crossbar {

namespace {

circuit::SarAdcParams resolve_adc_params(const AnalogEngineConfig& config,
                                         const ProgrammedArray& array) {
  circuit::SarAdcParams params = config.adc;
  const double i_on_max =
      array.on_current(array.device_params().vbg_max);
  params.full_scale_current = i_on_max * config.full_scale_cells;
  return params;
}

}  // namespace

AnalogCrossbarEngine::AnalogCrossbarEngine(
    std::shared_ptr<const ProgrammedArray> array,
    const AnalogEngineConfig& config)
    : array_(std::move(array)),
      config_(config),
      adc_(resolve_adc_params(config, *array_)) {
  FECIM_EXPECTS(array_ != nullptr);
  i_on_max_ = array_->on_current(array_->device_params().vbg_max);
  FECIM_EXPECTS(i_on_max_ > 0.0);
  if (config_.model_ir_drop) {
    if (config_.cached_ir_attenuation > 0.0) {
      attenuation_ = config_.cached_ir_attenuation;
    } else {
      const auto est = circuit::estimate_line_parasitics(
          array_->mapping().physical_rows(), i_on_max_,
          array_->device_params().read_vdl, config_.wire);
      attenuation_ = est.ir_attenuation;
    }
  }
  workspace_.flip_mask.assign(array_->mapping().num_spins(), 0);
}

EincResult AnalogCrossbarEngine::evaluate(std::span<const ising::Spin> spins,
                                          const ising::FlipSet& flips,
                                          const AnnealSignal& signal,
                                          util::Rng& rng) {
  FECIM_EXPECTS(!flips.empty());
  const auto& mapping = array_->mapping();
  const auto& couplings = array_->couplings();
  FECIM_EXPECTS(spins.size() == mapping.num_spins());

  const int bits = couplings.bits();
  if (signal.vbg != cached_vbg_) {
    cached_i_on_ = array_->on_current(signal.vbg);
    cached_vbg_ = signal.vbg;
  }
  const double i_on = cached_i_on_;
  const double read_noise_rel = array_->variation_params().read_noise_rel;
  // Association mirrors the per-cell form: (i_on * att) * sum and
  // ((rel * i_on) * att) * sqrt(sq_sum), keeping results bit-identical.
  const double current_scale = i_on * attenuation_;
  const double noise_scale = (read_noise_rel * i_on) * attenuation_;
  const bool deterministic_readout =
      read_noise_rel <= 0.0 && adc_.params().noise_lsb_rms <= 0.0;

  EincResult result;
  EngineTrace& trace = result.trace;
  trace.crossbar_passes = 4;

  // Digital accumulator of signed, bit-weighted ADC codes.
  double accumulator = 0.0;

  auto& ws = workspace_;
  // Validate before marking so a contract throw cannot leave stale bits in
  // the reusable mask (contract_error is catchable; a dirty mask would
  // silently corrupt every later evaluation).
  for (const auto f : flips) FECIM_EXPECTS(f < ws.flip_mask.size());
  for (const auto f : flips) ws.flip_mask[f] = 1;

  const auto cache_rows = array_->cache_rows();
  const auto cache_mults = array_->cache_multipliers();

  for (const auto j : flips) {
    // sigma_c_j = -sigma_j (the flipped value); its sign selects the
    // DL-polarity pass this column participates in.
    const int q = -static_cast<int>(spins[j]);

    // One sweep over each distinct cell list accumulates both row-polarity
    // passes: an unflipped row contributes to exactly one polarity, and the
    // per-polarity addition order stays the column's cell order.
    const auto classes = array_->column_classes(j);
    for (std::size_t ci = 0; ci < classes.size(); ++ci) {
      const auto& cls = classes[ci];
      if (cls.all_unit) {
        // Branchless: spins are random +-1, so per-cell branches mispredict
        // half the time; counting live and positive cells with masks keeps
        // the loop vectorizable.
        std::uint32_t live = 0;
        std::uint32_t count_pos = 0;
        for (std::uint32_t k = cls.begin; k < cls.end; ++k) {
          const auto row = cache_rows[k];
          const std::uint32_t unflipped = ws.flip_mask[row] == 0 ? 1u : 0u;
          live += unflipped;
          count_pos += unflipped & (spins[row] > 0 ? 1u : 0u);
        }
        const std::uint32_t count_neg = live - count_pos;
        ws.sum[0][ci] = static_cast<double>(count_pos);
        ws.sum[1][ci] = static_cast<double>(count_neg);
        ws.sq_sum[0][ci] = static_cast<double>(count_pos);
        ws.sq_sum[1][ci] = static_cast<double>(count_neg);
      } else {
        double sum_pos = 0.0;
        double sum_neg = 0.0;
        double sq_pos = 0.0;
        double sq_neg = 0.0;
        for (std::uint32_t k = cls.begin; k < cls.end; ++k) {
          const auto row = cache_rows[k];
          if (ws.flip_mask[row]) continue;
          const double m = cache_mults[k];
          if (spins[row] > 0) {
            sum_pos += m;
            sq_pos += m * m;
          } else {
            sum_neg += m;
            sq_neg += m * m;
          }
        }
        ws.sum[0][ci] = sum_pos;
        ws.sum[1][ci] = sum_neg;
        ws.sq_sum[0][ci] = sq_pos;
        ws.sq_sum[1][ci] = sq_neg;
      }
    }

    const auto segments = array_->column_segments(j);
    for (const int p : {+1, -1}) {  // row-polarity (FG) passes
      const int bank = p > 0 ? 0 : 1;
      if (deterministic_readout) {
        // No stochastic term anywhere in the sensing chain: segments
        // sharing a class see the same current, hence the same code, so
        // one conversion per class plus the precomputed per-class net
        // weight replaces the per-segment shift-and-add.  Codes and
        // weights are integers (< 2^53 in every partial sum), so this
        // association is bit-identical to the per-segment order.  The
        // ledger still counts one conversion per physical column sensed.
        const auto weights = array_->column_class_weights(j);
        double column_acc = 0.0;
        for (std::size_t ci = 0; ci < classes.size(); ++ci) {
          const std::uint32_t code =
              adc_.convert(current_scale * ws.sum[bank][ci], rng);
          column_acc += weights[ci] * static_cast<double>(code);
        }
        accumulator += static_cast<double>(p * q) * column_acc;
        trace.adc_conversions += array_->column_present_segments(j);
        continue;
      }
      for (int b = 0; b < bits; ++b) {
        for (int plane = 0; plane < 2; ++plane) {
          const auto seg = segments[static_cast<std::size_t>(b * 2 + plane)];
          if (!seg.present) continue;
          double current = current_scale * ws.sum[bank][seg.cls];
          if (read_noise_rel > 0.0) {
            // Independent per-cell C2C noise aggregates in quadrature.
            const double sigma =
                noise_scale * std::sqrt(ws.sq_sum[bank][seg.cls]);
            if (sigma > 0.0) current += rng.normal(0.0, sigma);
          }
          const std::uint32_t code = adc_.convert(current, rng);
          const double plane_sign = plane == 0 ? 1.0 : -1.0;
          accumulator += static_cast<double>(p * q) * plane_sign *
                         static_cast<double>(1u << b) *
                         static_cast<double>(code);
          ++trace.adc_conversions;
        }
      }
    }
  }

  for (const auto f : flips) ws.flip_mask[f] = 0;

  // Fixed digital calibration: codes carry I_on(vbg) * attenuation / LSB;
  // dividing by I_on(vbg_max) * attenuation re-expresses the result as
  // (sigma_r^T J_hat sigma_c) * [I_on(vbg) / I_on(vbg_max)], i.e. the raw
  // VMV times the hardware realization of f(T).
  const double to_einc =
      couplings.scale() * adc_.lsb_current() / (i_on_max_ * attenuation_);
  result.e_inc = accumulator * to_einc;
  const double f_hw = i_on / i_on_max_;
  result.raw_vmv = f_hw > 0.0 ? result.e_inc / f_hw : 0.0;

  const auto n = static_cast<std::uint64_t>(mapping.num_spins());
  const auto t = static_cast<std::uint64_t>(flips.size());
  trace.mux_slot_cycles = 2 * mapping.slots_for_flips(flips);
  trace.row_drives = 2 * (n - t);
  trace.column_drives =
      2 * t * static_cast<std::uint64_t>(bits) *
      static_cast<std::uint64_t>(mapping.planes());
  return result;
}

}  // namespace fecim::crossbar
