#include "crossbar/analog_engine.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fecim::crossbar {

namespace {

circuit::SarAdcParams resolve_adc_params(const AnalogEngineConfig& config,
                                         const ProgrammedArray& array) {
  circuit::SarAdcParams params = config.adc;
  const double i_on_max =
      array.on_current(array.device_params().vbg_max);
  params.full_scale_current = i_on_max * config.full_scale_cells;
  return params;
}

}  // namespace

AnalogCrossbarEngine::AnalogCrossbarEngine(
    std::shared_ptr<const ProgrammedArray> array,
    const AnalogEngineConfig& config)
    : array_(std::move(array)),
      config_(config),
      adc_(resolve_adc_params(config, *array_)) {
  FECIM_EXPECTS(array_ != nullptr);
  i_on_max_ = array_->on_current(array_->device_params().vbg_max);
  FECIM_EXPECTS(i_on_max_ > 0.0);
  if (config_.model_ir_drop) {
    if (config_.cached_ir_attenuation > 0.0) {
      attenuation_ = config_.cached_ir_attenuation;
    } else {
      const auto est = circuit::estimate_line_parasitics(
          array_->mapping().physical_rows(), i_on_max_,
          array_->device_params().read_vdl, config_.wire);
      attenuation_ = est.ir_attenuation;
    }
  }
  noise_ = ReadoutNoise::for_run(0);
  workspace_.flip_mask.assign(array_->mapping().num_spins(), 0);
}

void AnalogCrossbarEngine::begin_run(std::uint64_t run_seed) {
  noise_ = ReadoutNoise::for_run(run_seed);
}

EincResult AnalogCrossbarEngine::evaluate(std::span<const ising::Spin> spins,
                                          const ising::FlipSet& flips,
                                          const AnnealSignal& signal) {
  FECIM_EXPECTS(!flips.empty());
  const auto& mapping = array_->mapping();
  const auto& couplings = array_->couplings();
  FECIM_EXPECTS(spins.size() == mapping.num_spins());

  const int bits = couplings.bits();
  if (signal.vbg != cached_vbg_) {
    cached_i_on_ = array_->on_current(signal.vbg);
    cached_vbg_ = signal.vbg;
  }
  const double i_on = cached_i_on_;
  const double read_noise_rel = array_->variation_params().read_noise_rel;
  // Association mirrors the per-cell form: (i_on * att) * sum and
  // ((rel * i_on) * att) * sqrt(sq_sum), keeping results bit-identical.
  const double current_scale = i_on * attenuation_;
  const double noise_scale = (read_noise_rel * i_on) * attenuation_;
  const bool adc_noisy = adc_.params().noise_lsb_rms > 0.0;
  const bool deterministic_readout = read_noise_rel <= 0.0 && !adc_noisy;

  EincResult result;
  EngineTrace& trace = result.trace;
  trace.crossbar_passes = 4;

  // Digital accumulator of signed, bit-weighted ADC codes.
  double accumulator = 0.0;

  auto& ws = workspace_;
  // Validate before marking so a contract throw cannot leave stale bits in
  // the reusable mask (contract_error is catchable; a dirty mask would
  // silently corrupt every later evaluation).
  for (const auto f : flips) FECIM_EXPECTS(f < ws.flip_mask.size());
  for (const auto f : flips) ws.flip_mask[f] = 1;

  const auto cache_rows = array_->cache_rows();
  const auto cache_mults = array_->cache_multipliers();
  const auto all_mults = array_->multipliers();
  const std::size_t slots = static_cast<std::size_t>(bits) * 2;

  for (const auto j : flips) {
    // sigma_c_j = -sigma_j (the flipped value); its sign selects the
    // DL-polarity pass this column participates in.
    const int q = -static_cast<int>(spins[j]);

    const auto segments = array_->column_segments(j);
    const std::size_t column_conversions =
        2 * static_cast<std::size_t>(array_->column_present_segments(j));
    if (deterministic_readout) {
      // One sweep over each distinct cell list accumulates both
      // row-polarity passes: an unflipped row contributes to exactly one
      // polarity, and the per-polarity addition order stays the column's
      // cell order.
      const auto classes = array_->column_classes(j);
      for (std::size_t ci = 0; ci < classes.size(); ++ci) {
        const auto& cls = classes[ci];
        if (cls.all_unit) {
          // Branchless: spins are random +-1, so per-cell branches
          // mispredict half the time; counting live and positive cells
          // with masks keeps the loop vectorizable.
          std::uint32_t live = 0;
          std::uint32_t count_pos = 0;
          for (std::uint32_t k = cls.begin; k < cls.end; ++k) {
            const auto row = cache_rows[k];
            const std::uint32_t unflipped = ws.flip_mask[row] == 0 ? 1u : 0u;
            live += unflipped;
            count_pos += unflipped & (spins[row] > 0 ? 1u : 0u);
          }
          const std::uint32_t count_neg = live - count_pos;
          ws.sum[0][ci] = static_cast<double>(count_pos);
          ws.sum[1][ci] = static_cast<double>(count_neg);
        } else {
          double sum_pos = 0.0;
          double sum_neg = 0.0;
          for (std::uint32_t k = cls.begin; k < cls.end; ++k) {
            const auto row = cache_rows[k];
            if (ws.flip_mask[row]) continue;
            const double m = cache_mults[k];
            if (spins[row] > 0)
              sum_pos += m;
            else
              sum_neg += m;
          }
          ws.sum[0][ci] = sum_pos;
          ws.sum[1][ci] = sum_neg;
        }
      }

      // No stochastic term anywhere in the sensing chain: segments sharing
      // a class see the same current, hence the same code, so one
      // conversion per class plus the precomputed per-class net weight
      // replaces the per-segment shift-and-add.  Codes and weights are
      // integers (< 2^53 in every partial sum), so this association is
      // bit-identical to the per-segment order.  The ledger still counts
      // one conversion per physical column sensed, and the noise cursor
      // still advances so the indexing stays aligned with implementations
      // that convert per segment.
      const auto weights = array_->column_class_weights(j);
      for (const int p : {+1, -1}) {  // row-polarity (FG) passes
        const int bank = p > 0 ? 0 : 1;
        double column_acc = 0.0;
        for (std::size_t ci = 0; ci < classes.size(); ++ci) {
          const std::uint32_t code =
              adc_.convert_ideal(current_scale * ws.sum[bank][ci]);
          column_acc += weights[ci] * static_cast<double>(code);
        }
        accumulator += static_cast<double>(p * q) * column_acc;
        trace.adc_conversions += array_->column_present_segments(j);
      }
      noise_.next_conversion += column_conversions;
      continue;
    }

    // Stochastic readout sweep: device variation de-dupes to nothing (every
    // multiplier is distinct), so walk the column's cells once against the
    // entry-major multiplier storage -- one row/flip/spin gather per cell,
    // and a branch-free unit-stride inner bit loop (absent bits store
    // multiplier 0, filtered cells select 0.0, and +0.0 terms never change
    // a sum, so every accumulator stays bit-identical to the filtered
    // per-segment walk of the reference kernel; addition order per segment
    // is the column's cell order either way).
    const auto view = array_->column(j);
    for (std::size_t b = 0; b < static_cast<std::size_t>(bits); ++b) {
      ws.nsum[0][0][b] = ws.nsum[0][1][b] = 0.0;
      ws.nsum[1][0][b] = ws.nsum[1][1][b] = 0.0;
      ws.nsq[0][0][b] = ws.nsq[0][1][b] = 0.0;
      ws.nsq[1][0][b] = ws.nsq[1][1][b] = 0.0;
    }
    for (std::size_t k = 0; k < view.rows.size(); ++k) {
      const auto row = view.rows[k];
      const double live = ws.flip_mask[row] == 0 ? 1.0 : 0.0;
      const double sel_pos = spins[row] > 0 ? live : 0.0;
      const double sel_neg = live - sel_pos;
      const std::size_t plane = view.magnitudes[k] < 0 ? 1 : 0;
      const float* entry_mults =
          all_mults.data() +
          (view.first_entry + k) * static_cast<std::size_t>(bits);
      double* sum_pos = ws.nsum[0][plane];
      double* sum_neg = ws.nsum[1][plane];
      double* sq_pos = ws.nsq[0][plane];
      double* sq_neg = ws.nsq[1][plane];
      if (read_noise_rel > 0.0) {
        for (int b = 0; b < bits; ++b) {
          const double m = entry_mults[b];
          const double m_pos = m * sel_pos;
          const double m_neg = m * sel_neg;
          sum_pos[b] += m_pos;
          sum_neg[b] += m_neg;
          sq_pos[b] += m_pos * m_pos;
          sq_neg[b] += m_neg * m_neg;
        }
      } else {
        // ADC-noise-only regime (the default config): the squared sums are
        // never read, so skip half the sweep's arithmetic.
        for (int b = 0; b < bits; ++b) {
          const double m = entry_mults[b];
          sum_pos[b] += m * sel_pos;
          sum_neg[b] += m * sel_neg;
        }
      }
    }

    // Batch this column's keyed draws -- conversion indices
    // [next_conversion, next_conversion + column_conversions) in the
    // canonical polarity/bit/plane order -- then consume them in sequence.
    // The batched values equal element-wise keyed draws, so any regrouping
    // of this loop (or a future parallel version) sees identical noise.
    // Each conversion takes ONE draw scaled by its total input-referred
    // sigma (read noise + ADC noise in quadrature, see readout_sigma),
    // precomputed per segment so the sqrt stays out of the polarity passes.
    noise_.conversion.normal_fill(noise_.next_conversion,
                                  {ws.z, column_conversions});
    const double sigma_adc = adc_.noise_sigma_current();
    const double noise_var_scale = noise_scale * noise_scale;
    const double adc_variance = sigma_adc * sigma_adc;
    for (std::size_t s = 0; s < slots; ++s) {
      if (!segments[s].present) continue;
      const std::size_t b = s >> 1;
      const std::size_t plane = s & 1;
      if (read_noise_rel > 0.0) {
        ws.nsigma[0][plane][b] = readout_sigma(
            noise_var_scale * ws.nsq[0][plane][b], adc_variance);
        ws.nsigma[1][plane][b] = readout_sigma(
            noise_var_scale * ws.nsq[1][plane][b], adc_variance);
      } else {
        ws.nsigma[0][plane][b] = sigma_adc;
        ws.nsigma[1][plane][b] = sigma_adc;
      }
    }
    std::size_t conversion = 0;
    for (const int p : {+1, -1}) {  // row-polarity (FG) passes
      const int bank = p > 0 ? 0 : 1;
      // Codes and bit weights are integers, so the per-pass shift-and-add
      // runs in int64 (max |sum| < 2^34) and joins the double accumulator
      // once per pass -- exact, hence bit-identical to the per-segment
      // double adds.
      std::int64_t pass_acc = 0;
      for (std::size_t s = 0; s < slots; ++s) {
        if (!segments[s].present) continue;
        const std::size_t b = s >> 1;
        const std::size_t plane = s & 1;
        const double current =
            current_scale * ws.nsum[bank][plane][b] +
            ws.nsigma[bank][plane][b] * ws.z[conversion];
        const std::uint32_t code = adc_.convert_ideal(current);
        const auto shifted =
            static_cast<std::int64_t>(static_cast<std::uint64_t>(code) << b);
        pass_acc += plane == 0 ? shifted : -shifted;
        ++conversion;
      }
      accumulator +=
          static_cast<double>(p * q) * static_cast<double>(pass_acc);
    }
    trace.adc_conversions += column_conversions;
    noise_.next_conversion += column_conversions;
  }

  for (const auto f : flips) ws.flip_mask[f] = 0;

  // Fixed digital calibration: codes carry I_on(vbg) * attenuation / LSB;
  // dividing by I_on(vbg_max) * attenuation re-expresses the result as
  // (sigma_r^T J_hat sigma_c) * [I_on(vbg) / I_on(vbg_max)], i.e. the raw
  // VMV times the hardware realization of f(T).
  const double to_einc =
      couplings.scale() * adc_.lsb_current() / (i_on_max_ * attenuation_);
  result.e_inc = accumulator * to_einc;
  const double f_hw = i_on / i_on_max_;
  result.raw_vmv = f_hw > 0.0 ? result.e_inc / f_hw : 0.0;

  const auto n = static_cast<std::uint64_t>(mapping.num_spins());
  const auto t = static_cast<std::uint64_t>(flips.size());
  trace.mux_slot_cycles = 2 * mapping.slots_for_flips(flips);
  trace.row_drives = 2 * (n - t);
  trace.column_drives =
      2 * t * static_cast<std::uint64_t>(bits) *
      static_cast<std::uint64_t>(mapping.planes());
  return result;
}

}  // namespace fecim::crossbar
