// Analog DG FeFET crossbar E_inc engine (paper Sec. 3.3, Fig. 6(d)).
//
// For each flipped logical column j (driven at DL with sigma_c_j) the engine
// senses the k bit-slice columns in both weight planes across the two
// row-polarity passes; each sensed current is
//
//   I_col = I_on(V_BG) * att * sum_{active cells} multiplier_cell + noise,
//
// digitized by the shared SAR ADC, shifted by its bit weight, and
// accumulated with the pass polarity sign.  Because every conducting cell's
// current carries the factor I_on(V_BG), the product with the fractional
// annealing factor f(T) happens *in situ*; the digital back end only scales
// by the fixed calibration constant  scale * LSB / I_on(V_BG_max).
//
// Tiled execution: the array realizes its logical rows as a grid of
// physical tiles (ProgrammedArray::bands()); the engine sweeps the row
// bands, senses each band's partial column currents with that band's own
// IR-drop attenuation, and accumulates the per-tile results digitally into
// per-logical-column sums.  Stochastic readout performs one genuine ADC
// conversion (one keyed draw, one quantization, per-tile calibration) per
// (tile, present physical column) in the canonical cursor order, so noisy
// results are a pure function of (run seed, tile shape).  Deterministic
// readout accumulates the exact per-tile partial sums digitally and
// evaluates the shared quantizer once per logical segment at the
// logical-array calibration point -- the tile-grid counterpart of the
// per-class shared conversion below -- which makes the deterministic result
// partition-invariant (bit-identical across tile shapes whenever the
// partial sums regroup exactly, i.e. integer multiplier sums) while the
// ledger still counts every physical per-tile conversion.
//
// Hot path: the engine walks the array's precomputed per-band bit-plane
// column cache (one pass over each distinct segment class accumulates both
// row polarities) instead of decoding magnitudes per cell per call, and
// tracks flip membership through a reusable per-engine workspace bitmask.
// Readout noise comes from counter-keyed streams (ReadoutNoise) indexed by
// the canonical conversion order, batched per (column, tile) through the
// ziggurat sampler -- no sequential RNG anywhere in the sensing chain.  All
// of it is floating-point-identical to the direct per-cell evaluation;
// tests/test_perf_equivalence.cpp and tests/test_tiled_engine.cpp pin that
// equivalence against crossbar/reference_kernels.hpp.
#pragma once

#include <memory>
#include <vector>

#include "circuit/parasitics.hpp"
#include "circuit/sar_adc.hpp"
#include "crossbar/engine.hpp"
#include "crossbar/programmed_array.hpp"

namespace fecim::crossbar {

struct AnalogEngineConfig {
  circuit::SarAdcParams adc{};
  /// ADC full scale expressed in full-drive cell currents at V_BG max; the
  /// absolute full_scale_current is derived at construction.
  double full_scale_cells = 64.0;
  bool model_ir_drop = true;
  circuit::WireTech wire{};
  /// Precomputed IR-drop attenuation of the *logical* (monolithic) array
  /// for this (array, wire) pair; <= 0 means solve the MNA ladder at
  /// construction.  Campaign annealers solve it once and stamp it here so
  /// per-run engine instances are cheap -- the array is immutable, so the
  /// factor cannot change between runs.  This is also the deterministic
  /// readout's calibration point (see file comment).
  double cached_ir_attenuation = 0.0;
  /// Precomputed per-row-band attenuations (index = band).  Used when the
  /// size matches the array's band count; otherwise solved at construction
  /// (one MNA solve per distinct band height -- at most two under the
  /// balanced split).
  std::vector<double> cached_band_ir_attenuation;
  /// Threads for the band-level sweep of one stochastic evaluation: 1
  /// (default) sweeps row bands serially; 0 hands the bands to the shared
  /// util::parallel_for pool; N caps the pool at N workers.  Every
  /// (flip, band) unit is independent until the digital partial-sum merge
  /// and each band owns its scratch and its band_acc slot, so results are
  /// bit-identical for every setting (pinned by tests/test_band_parallel).
  /// Inside an already-parallel campaign replica the nested call degrades
  /// to the serial sweep; pair with core::Parallelism::kBand to devote the
  /// pool to bands instead of replicas.
  int band_threads = 1;
};

class AnalogCrossbarEngine final : public EincEngine {
 public:
  AnalogCrossbarEngine(std::shared_ptr<const ProgrammedArray> array,
                       const AnalogEngineConfig& config = {});

  /// Re-keys the readout noise streams to `run_seed` and resets the
  /// conversion counter.  Without a call the engine behaves as run 0.
  void begin_run(std::uint64_t run_seed) override;

  EincResult evaluate(std::span<const ising::Spin> spins,
                      const ising::FlipSet& flips,
                      const AnnealSignal& signal) override;

  std::size_t num_spins() const noexcept override {
    return array_->mapping().num_spins();
  }

  const circuit::SarAdc& adc() const noexcept { return adc_; }
  /// IR-drop attenuation of the logical (monolithic) array -- the fixed
  /// digital calibration point.
  double ir_attenuation() const noexcept { return attenuation_; }
  /// Per-row-band (tile) IR-drop attenuations; band_attenuations()[0] is
  /// the nominal (full-height) tile and equals ir_attenuation() for a
  /// monolithic array.
  std::span<const double> band_attenuations() const noexcept {
    return band_attenuation_;
  }
  /// Nominal per-tile attenuation (the full-height band).
  double tile_attenuation() const noexcept { return band_attenuation_[0]; }
  /// Current stochastic readout state (streams + conversion cursor); the
  /// equivalence tests use it to check cursor lockstep with the reference.
  const ReadoutNoise& readout_noise() const noexcept { return noise_; }

 private:
  /// Reusable per-engine scratch so evaluate() performs no heap allocation.
  /// Deterministic readout accumulates per segment class (`sum`, index 0 =
  /// +1 row-polarity pass, 1 = -1; a (band, column) has at most
  /// bits * 2 <= 32 distinct classes) and, on >1-band grids, merges the
  /// band partial sums into `det_sum` before the shared conversion.
  /// Stochastic readout works per (flip, band) unit out of band-owned
  /// scratch (below); `z` holds the whole evaluation's batched
  /// per-conversion draws (one widened ziggurat fill), `conv_base` the
  /// per-(flip, band) offsets into it in canonical cursor order, and
  /// `band_acc` accumulates each band's signed code sums for the per-tile
  /// calibration.
  struct EvalWorkspace {
    std::vector<std::uint8_t> flip_mask;
    double sum[2][32];
    double det_sum[2][2][16];  ///< [bank][plane][bit] cross-band totals
    std::vector<double> z;     ///< batched standard-normal conversion draws
    std::vector<std::uint32_t> conv_base;  ///< [flip * bands + band] -> z offset
    std::vector<double> band_acc;  ///< per-band signed code accumulators
    /// Per-flip invariants hoisted out of the (flip, band) sweep units:
    /// the column view (ProgrammedArray::column is out of line, so calling
    /// it once per flip instead of once per unit matters on tiled grids)
    /// and the column-polarity sign q.  Read-only during the sweep, so
    /// band-parallel workers share them safely.
    std::vector<ProgrammedArray::ColumnView> flip_view;
    std::vector<int> flip_q;
  };

  /// Per-band stochastic scratch: current sums / squared-multiplier sums
  /// packed [bank * 2bits + plane * bits + bit] (4 * bits live lanes) so the
  /// bank-selecting per-cell sweep's inner bit loop is branch-free and
  /// unit-stride -- and so the conversion lane order (polarity pass, then
  /// plane, then bit; pass selects its bank) walks the scratch contiguously:
  /// a fully-present unit converts both passes in one gather-free vector
  /// loop.  `zt` holds the unit's draws de-interleaved from cursor order
  /// into that lane order, `terms` the signed weighted codes.  128 lanes
  /// comfortably cover one unit at the maximum bit width (4 * bits <= 64).
  /// One instance per row band keeps the band-parallel sweep
  /// write-disjoint.
  struct alignas(64) BandScratch {
    double nsum[128];
    double nsq[128];
    double zt[128];
    double terms[128];
  };

  std::shared_ptr<const ProgrammedArray> array_;
  AnalogEngineConfig config_;
  circuit::SarAdc adc_;
  double attenuation_ = 1.0;              ///< logical-array calibration
  std::vector<double> band_attenuation_;  ///< per row band (tile)
  /// scale * LSB / (I_on(vbg_max) * band_attenuation): the per-tile digital
  /// calibration of the stochastic readout, precomputed so the per-eval
  /// merge avoids a divide per band.
  std::vector<double> band_to_einc_;
  double i_on_max_ = 0.0;
  // on_current() evaluates the EKV transistor model; the DAC-quantized V_BG
  // schedule repeats levels for long stretches, so memoize the last level.
  double cached_vbg_ = -1.0;
  double cached_i_on_ = 0.0;
  ReadoutNoise noise_;
  EvalWorkspace workspace_;
  std::vector<BandScratch> scratch_;  ///< one per row band
  /// Signed digital weight of each conversion lane of a fully-present unit,
  /// [pass * 2bits + plane * bits + bit] = pass_sign * plane_sign * 2^bit.
  /// Folding the pass polarity into the weights lets the dense path sum
  /// both passes' (exact integer) terms in one reduction.
  std::vector<double> lane_weight_;
};

}  // namespace fecim::crossbar
