// Analog DG FeFET crossbar E_inc engine (paper Sec. 3.3, Fig. 6(d)).
//
// For each flipped logical column j (driven at DL with sigma_c_j) the engine
// senses the k bit-slice columns in both weight planes across the two
// row-polarity passes; each sensed current is
//
//   I_col = I_on(V_BG) * att * sum_{active cells} multiplier_cell + noise,
//
// digitized by the shared SAR ADC, shifted by its bit weight, and
// accumulated with the pass polarity sign.  Because every conducting cell's
// current carries the factor I_on(V_BG), the product with the fractional
// annealing factor f(T) happens *in situ*; the digital back end only scales
// by the fixed calibration constant  scale * LSB / I_on(V_BG_max).
#pragma once

#include <memory>

#include "circuit/parasitics.hpp"
#include "circuit/sar_adc.hpp"
#include "crossbar/engine.hpp"
#include "crossbar/programmed_array.hpp"

namespace fecim::crossbar {

struct AnalogEngineConfig {
  circuit::SarAdcParams adc{};
  /// ADC full scale expressed in full-drive cell currents at V_BG max; the
  /// absolute full_scale_current is derived at construction.
  double full_scale_cells = 64.0;
  bool model_ir_drop = true;
  circuit::WireTech wire{};
};

class AnalogCrossbarEngine final : public EincEngine {
 public:
  AnalogCrossbarEngine(std::shared_ptr<const ProgrammedArray> array,
                       const AnalogEngineConfig& config = {});

  EincResult evaluate(std::span<const ising::Spin> spins,
                      const ising::FlipSet& flips, const AnnealSignal& signal,
                      util::Rng& rng) override;

  std::size_t num_spins() const noexcept override {
    return array_->mapping().num_spins();
  }

  const circuit::SarAdc& adc() const noexcept { return adc_; }
  /// IR-drop attenuation factor applied to all column currents.
  double ir_attenuation() const noexcept { return attenuation_; }

 private:
  std::shared_ptr<const ProgrammedArray> array_;
  AnalogEngineConfig config_;
  circuit::SarAdc adc_;
  double attenuation_ = 1.0;
  double i_on_max_ = 0.0;
};

}  // namespace fecim::crossbar
