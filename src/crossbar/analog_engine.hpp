// Analog DG FeFET crossbar E_inc engine (paper Sec. 3.3, Fig. 6(d)).
//
// For each flipped logical column j (driven at DL with sigma_c_j) the engine
// senses the k bit-slice columns in both weight planes across the two
// row-polarity passes; each sensed current is
//
//   I_col = I_on(V_BG) * att * sum_{active cells} multiplier_cell + noise,
//
// digitized by the shared SAR ADC, shifted by its bit weight, and
// accumulated with the pass polarity sign.  Because every conducting cell's
// current carries the factor I_on(V_BG), the product with the fractional
// annealing factor f(T) happens *in situ*; the digital back end only scales
// by the fixed calibration constant  scale * LSB / I_on(V_BG_max).
//
// Tiled execution: the array realizes its logical rows as a grid of
// physical tiles (ProgrammedArray::bands()); the engine sweeps the row
// bands, senses each band's partial column currents with that band's own
// IR-drop attenuation, and accumulates the per-tile results digitally into
// per-logical-column sums.  Stochastic readout performs one genuine ADC
// conversion (one keyed draw, one quantization, per-tile calibration) per
// (tile, present physical column) in the canonical cursor order, so noisy
// results are a pure function of (run seed, tile shape).  Deterministic
// readout accumulates the exact per-tile partial sums digitally and
// evaluates the shared quantizer once per logical segment at the
// logical-array calibration point -- the tile-grid counterpart of the
// per-class shared conversion below -- which makes the deterministic result
// partition-invariant (bit-identical across tile shapes whenever the
// partial sums regroup exactly, i.e. integer multiplier sums) while the
// ledger still counts every physical per-tile conversion.
//
// Hot path: the engine walks the array's precomputed per-band bit-plane
// column cache (one pass over each distinct segment class accumulates both
// row polarities) instead of decoding magnitudes per cell per call, and
// tracks flip membership through a reusable per-engine workspace bitmask.
// Readout noise comes from counter-keyed streams (ReadoutNoise) indexed by
// the canonical conversion order, batched per (column, tile) through the
// ziggurat sampler -- no sequential RNG anywhere in the sensing chain.  All
// of it is floating-point-identical to the direct per-cell evaluation;
// tests/test_perf_equivalence.cpp and tests/test_tiled_engine.cpp pin that
// equivalence against crossbar/reference_kernels.hpp.
#pragma once

#include <memory>
#include <vector>

#include "circuit/parasitics.hpp"
#include "circuit/sar_adc.hpp"
#include "crossbar/engine.hpp"
#include "crossbar/programmed_array.hpp"

namespace fecim::crossbar {

struct AnalogEngineConfig {
  circuit::SarAdcParams adc{};
  /// ADC full scale expressed in full-drive cell currents at V_BG max; the
  /// absolute full_scale_current is derived at construction.
  double full_scale_cells = 64.0;
  bool model_ir_drop = true;
  circuit::WireTech wire{};
  /// Precomputed IR-drop attenuation of the *logical* (monolithic) array
  /// for this (array, wire) pair; <= 0 means solve the MNA ladder at
  /// construction.  Campaign annealers solve it once and stamp it here so
  /// per-run engine instances are cheap -- the array is immutable, so the
  /// factor cannot change between runs.  This is also the deterministic
  /// readout's calibration point (see file comment).
  double cached_ir_attenuation = 0.0;
  /// Precomputed per-row-band attenuations (index = band).  Used when the
  /// size matches the array's band count; otherwise solved at construction
  /// (one MNA solve per distinct band height -- at most two under the
  /// balanced split).
  std::vector<double> cached_band_ir_attenuation;
};

class AnalogCrossbarEngine final : public EincEngine {
 public:
  AnalogCrossbarEngine(std::shared_ptr<const ProgrammedArray> array,
                       const AnalogEngineConfig& config = {});

  /// Re-keys the readout noise streams to `run_seed` and resets the
  /// conversion counter.  Without a call the engine behaves as run 0.
  void begin_run(std::uint64_t run_seed) override;

  EincResult evaluate(std::span<const ising::Spin> spins,
                      const ising::FlipSet& flips,
                      const AnnealSignal& signal) override;

  std::size_t num_spins() const noexcept override {
    return array_->mapping().num_spins();
  }

  const circuit::SarAdc& adc() const noexcept { return adc_; }
  /// IR-drop attenuation of the logical (monolithic) array -- the fixed
  /// digital calibration point.
  double ir_attenuation() const noexcept { return attenuation_; }
  /// Per-row-band (tile) IR-drop attenuations; band_attenuations()[0] is
  /// the nominal (full-height) tile and equals ir_attenuation() for a
  /// monolithic array.
  std::span<const double> band_attenuations() const noexcept {
    return band_attenuation_;
  }
  /// Nominal per-tile attenuation (the full-height band).
  double tile_attenuation() const noexcept { return band_attenuation_[0]; }
  /// Current stochastic readout state (streams + conversion cursor); the
  /// equivalence tests use it to check cursor lockstep with the reference.
  const ReadoutNoise& readout_noise() const noexcept { return noise_; }

 private:
  /// Reusable per-engine scratch so evaluate() performs no heap allocation.
  /// Deterministic readout accumulates per segment class (`sum`, index 0 =
  /// +1 row-polarity pass, 1 = -1; a (band, column) has at most
  /// bits * 2 <= 32 distinct classes) and, on >1-band grids, merges the
  /// band partial sums into `det_sum` before the shared conversion.
  /// Stochastic readout accumulates per physical segment, laid out
  /// [bank][plane][bit] so the per-cell sweep's inner bit loop is
  /// branch-free and unit-stride; `z` holds one band's batched
  /// per-conversion draws (<= 2 passes * 32 segments); `band_acc`
  /// accumulates each band's signed code sums for the per-tile calibration.
  struct EvalWorkspace {
    std::vector<std::uint8_t> flip_mask;
    double sum[2][32];
    double det_sum[2][2][16];  ///< [bank][plane][bit] cross-band totals
    double nsum[2][2][16];    ///< [bank][plane][bit] current sums
    double nsq[2][2][16];     ///< [bank][plane][bit] squared-multiplier sums
    double nsigma[2][2][16];  ///< [bank][plane][bit] total readout sigma
    double z[64];             ///< batched standard-normal conversion draws
    std::vector<double> band_acc;  ///< per-band signed code accumulators
  };

  std::shared_ptr<const ProgrammedArray> array_;
  AnalogEngineConfig config_;
  circuit::SarAdc adc_;
  double attenuation_ = 1.0;              ///< logical-array calibration
  std::vector<double> band_attenuation_;  ///< per row band (tile)
  double i_on_max_ = 0.0;
  // on_current() evaluates the EKV transistor model; the DAC-quantized V_BG
  // schedule repeats levels for long stretches, so memoize the last level.
  double cached_vbg_ = -1.0;
  double cached_i_on_ = 0.0;
  ReadoutNoise noise_;
  EvalWorkspace workspace_;
};

}  // namespace fecim::crossbar
