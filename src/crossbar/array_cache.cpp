#include "crossbar/array_cache.hpp"

#include <bit>
#include <chrono>
#include <utility>

namespace fecim::crossbar {

namespace {

std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void DigestBuilder::add_u64(std::uint64_t v) noexcept {
  hi_ = splitmix64(hi_ ^ v);
  lo_ = splitmix64(lo_ + (v ^ 0xd1b54a32d192ed03ULL));
}

void DigestBuilder::add_double(double v) noexcept {
  add_u64(std::bit_cast<std::uint64_t>(v));
}

ArrayDigest array_digest(const QuantizedCouplings& couplings,
                         const MappingConfig& mapping,
                         const device::DgFefetParams& device_params,
                         const device::VariationParams& variation,
                         std::uint64_t seed, const TileShape& tiles) {
  DigestBuilder b;
  b.add_u64(0xfec1'0008'0001ULL);  // key-schema version tag

  // Quantized coupling content: geometry, calibration, and the full CSC
  // pattern.  scale folds the source matrix's max|J| in, so two matrices
  // with identical codes but different physical scales key differently.
  b.add_u64(couplings.num_spins());
  b.add_i64(couplings.bits());
  b.add_double(couplings.scale());
  b.add_bool(couplings.has_negative());
  b.add_u64(couplings.nonzeros());
  for (std::size_t j = 0; j < couplings.num_spins(); ++j) {
    const auto rows = couplings.column_rows(j);
    const auto values = couplings.column_values(j);
    b.add_u64(rows.size());
    for (const auto r : rows) b.add_u64(r);
    for (const auto v : values) b.add_i64(v);
  }

  // Mapping configuration (bits already covered, but framing is cheap).
  b.add_i64(mapping.bits);
  b.add_u64(mapping.mux_ratio);
  b.add_bool(mapping.interleave_columns);

  // Device compact model -- cell multipliers fold dVth through n * Vt, so
  // every transistor parameter is key material.
  b.add_double(device_params.vth_low);
  b.add_double(device_params.vth_high);
  b.add_double(device_params.back_gate_coupling);
  b.add_double(device_params.read_vfg);
  b.add_double(device_params.read_vdl);
  b.add_double(device_params.vbg_max);
  b.add_double(device_params.transistor.i_spec);
  b.add_double(device_params.transistor.slope_factor);
  b.add_double(device_params.transistor.thermal_voltage);
  b.add_double(device_params.transistor.lambda);

  // Programming-time stochastic state: variation model + its seed.  (Read
  // noise is re-keyed per run and does not live in the array, but its rate
  // parameter travels with VariationParams; hashing it is conservative.)
  b.add_double(variation.vth_sigma);
  b.add_double(variation.read_noise_rel);
  b.add_double(variation.stuck_off_rate);
  b.add_double(variation.stuck_on_rate);
  b.add_u64(seed);

  // Tile shape changes the band-local column cache layout.
  b.add_u64(tiles.rows);
  b.add_u64(tiles.cols);

  return b.digest();
}

std::shared_ptr<const ProgrammedArray> ArrayCache::get_or_build(
    const QuantizedCouplings& couplings, const CrossbarMapping& mapping,
    const device::DgFefetParams& device_params,
    const device::VariationParams& variation, std::uint64_t seed,
    const TileShape& tiles) {
  const ArrayDigest key = array_digest(couplings, mapping.config(),
                                       device_params, variation, seed, tiles);

  std::promise<ArrayPtr> promise;
  {
    std::shared_future<ArrayPtr> pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = slots_.find(key);
      if (it != slots_.end()) {
        ++counters_.hits;
        if (it->second.resident)
          lru_.splice(lru_.begin(), lru_, it->second.lru);
        pending = it->second.future;
      } else {
        ++counters_.misses;
        Slot slot;
        slot.future = promise.get_future().share();
        slots_.emplace(key, std::move(slot));
      }
    }
    // get() outside the lock: an in-flight build may still be programming,
    // and waiting for it must not block other digests' lookups.  Waiting
    // counts as a hit.
    if (pending.valid()) return pending.get();
  }

  ArrayPtr array;
  const auto start = std::chrono::steady_clock::now();
  try {
    array = std::make_shared<const ProgrammedArray>(
        couplings, mapping, device_params, variation, seed, tiles);
  } catch (...) {
    // Publish the failure to waiters, then forget the digest so a later
    // request may retry the build.
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mutex_);
    slots_.erase(key);
    throw;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  promise.set_value(array);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.build_seconds += elapsed;
    auto it = slots_.find(key);
    // The slot is still ours: only a failed build erases it, and only the
    // builder does that.
    if (it != slots_.end() && !it->second.resident) {
      it->second.bytes = array->approx_bytes() + sizeof(Slot);
      it->second.resident = true;
      lru_.push_front(key);
      it->second.lru = lru_.begin();
      bytes_ += it->second.bytes;
      evict_over_budget();
    }
  }
  return array;
}

void ArrayCache::evict_over_budget() {
  while (bytes_ > byte_budget_ && lru_.size() > 1) {
    const ArrayDigest victim = lru_.back();
    lru_.pop_back();
    auto it = slots_.find(victim);
    if (it != slots_.end()) {
      bytes_ -= it->second.bytes;
      slots_.erase(it);
      ++counters_.evictions;
    }
  }
}

ArrayCacheStats ArrayCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ArrayCacheStats snapshot = counters_;
  snapshot.entries = lru_.size();
  snapshot.bytes = bytes_;
  return snapshot;
}

}  // namespace fecim::crossbar
