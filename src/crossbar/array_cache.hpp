// Content-addressed cache of programmed crossbar arrays (the serving
// amortization layer, see docs/serving.md).
//
// PERF.md invariant 1 -- a ProgrammedArray is immutable once programmed --
// makes cross-request sharing safe by construction: two requests whose
// quantized couplings, mapping, device/variation parameters, programming
// seed, and tile shape coincide would program byte-identical arrays, so
// they may share one.  The cache keys arrays by a 128-bit content digest
// over exactly those inputs (every field that ProgrammedArray's constructor
// reads, nothing else) and hands out shared_ptr<const ProgrammedArray>.
// Because readout noise is counter-keyed per (run seed, conversion index)
// rather than per array instance (invariant 2), a cached array yields
// bit-identical campaign results to a freshly programmed one -- the cache
// is a pure build-time optimization, pinned by tests/test_array_cache.cpp.
//
// Concurrency: get_or_build() publishes an in-flight build as a
// shared_future before releasing the lock, so racing requests for the same
// digest wait on the winner's build instead of duplicating it -- each
// distinct array is programmed exactly once per residency.  Eviction is
// LRU over resident entries, bounded by an approximate byte budget
// (ProgrammedArray::approx_bytes()); the most recently inserted entry is
// never evicted, so a single array larger than the budget still serves.
// Evicting only drops the cache's reference -- annealers holding the
// shared_ptr keep their array alive.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "crossbar/programmed_array.hpp"

namespace fecim::crossbar {

/// 128-bit content digest identifying one programmable array.
struct ArrayDigest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  friend bool operator==(const ArrayDigest&, const ArrayDigest&) = default;
};

struct ArrayDigestHash {
  std::size_t operator()(const ArrayDigest& d) const noexcept {
    // hi and lo are already well-mixed splitmix lanes; fold them.
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Streaming two-lane splitmix64 hash.  Fields are fed individually (never
/// as raw struct bytes, so padding can't leak in), each preceded by enough
/// framing (span lengths, version tag) to keep distinct input sequences
/// from colliding by concatenation.
class DigestBuilder {
 public:
  void add_u64(std::uint64_t v) noexcept;
  void add_i64(std::int64_t v) noexcept {
    add_u64(static_cast<std::uint64_t>(v));
  }
  void add_double(double v) noexcept;
  void add_bool(bool v) noexcept { add_u64(v ? 1 : 0); }
  ArrayDigest digest() const noexcept { return {hi_, lo_}; }

 private:
  std::uint64_t hi_ = 0x6a09e667f3bcc909ULL;
  std::uint64_t lo_ = 0xbb67ae8584caa73bULL;
};

/// Digest of every input ProgrammedArray's constructor reads: the quantized
/// coupling content (n, bits, scale, sign planes, per-column sparsity
/// pattern and magnitudes), the mapping configuration, the device compact
/// model, the variation model, the programming-time variation seed, and the
/// tile shape.
ArrayDigest array_digest(const QuantizedCouplings& couplings,
                         const MappingConfig& mapping,
                         const device::DgFefetParams& device_params,
                         const device::VariationParams& variation,
                         std::uint64_t seed, const TileShape& tiles);

/// Monotonic counters, snapshot under the cache lock by stats().
struct ArrayCacheStats {
  std::size_t hits = 0;    ///< lookups served by an existing/in-flight build
  std::size_t misses = 0;  ///< lookups that programmed an array (== builds)
  std::size_t evictions = 0;
  std::size_t entries = 0;       ///< resident arrays right now
  std::size_t bytes = 0;         ///< approximate resident footprint
  double build_seconds = 0.0;    ///< total wall time spent programming
};

class ArrayCache {
 public:
  /// Roughly eight Gset-G81-scale arrays by default.
  static constexpr std::size_t kDefaultByteBudget =
      std::size_t{1} << 31;  // 2 GiB

  explicit ArrayCache(std::size_t byte_budget = kDefaultByteBudget)
      : byte_budget_(byte_budget) {}

  ArrayCache(const ArrayCache&) = delete;
  ArrayCache& operator=(const ArrayCache&) = delete;

  /// Returns the array for the digest of the given inputs, programming it
  /// (outside the lock) iff no resident or in-flight build exists.  Racing
  /// callers of the same digest share one build; a failed build rethrows to
  /// every waiter and leaves the digest rebuildable.
  std::shared_ptr<const ProgrammedArray> get_or_build(
      const QuantizedCouplings& couplings, const CrossbarMapping& mapping,
      const device::DgFefetParams& device_params,
      const device::VariationParams& variation, std::uint64_t seed,
      const TileShape& tiles);

  ArrayCacheStats stats() const;
  std::size_t byte_budget() const noexcept { return byte_budget_; }

 private:
  using ArrayPtr = std::shared_ptr<const ProgrammedArray>;

  struct Slot {
    std::shared_future<ArrayPtr> future;
    std::size_t bytes = 0;
    bool resident = false;
    std::list<ArrayDigest>::iterator lru{};  ///< valid iff resident
  };

  /// Pop least-recently-used residents until within budget; never evicts
  /// the front (most recent) entry.  Caller holds mutex_.
  void evict_over_budget();

  const std::size_t byte_budget_;
  mutable std::mutex mutex_;
  std::unordered_map<ArrayDigest, Slot, ArrayDigestHash> slots_;
  std::list<ArrayDigest> lru_;  ///< front = most recently used
  std::size_t bytes_ = 0;
  ArrayCacheStats counters_{};
};

}  // namespace fecim::crossbar
