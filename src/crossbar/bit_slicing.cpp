#include "crossbar/bit_slicing.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fecim::crossbar {

QuantizedCouplings::QuantizedCouplings(const linalg::CsrMatrix& j, int bits)
    : n_(j.rows()), bits_(bits) {
  FECIM_EXPECTS(bits >= 1 && bits <= 16);
  FECIM_EXPECTS(j.rows() == j.cols());
  FECIM_EXPECTS(j.is_symmetric(1e-12));

  const double max_abs = j.max_abs_value();
  const double levels = static_cast<double>(max_magnitude());
  scale_ = max_abs > 0.0 ? max_abs / levels : 1.0;

  col_ptr_.assign(n_ + 1, 0);
  // Symmetric matrix: its CSR is also its CSC, so quantize row-by-row and
  // reinterpret rows as columns.
  for (std::size_t r = 0; r < n_; ++r) {
    const auto cols = j.row_cols(r);
    const auto vals = j.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double q = std::round(std::fabs(vals[k]) / scale_);
      FECIM_ASSERT(q <= levels + 0.5);
      auto magnitude = static_cast<std::int32_t>(q);
      if (magnitude == 0) continue;  // rounds to zero: cell left erased
      if (vals[k] < 0.0) {
        magnitude = -magnitude;
        has_negative_ = true;
      }
      row_idx_.push_back(cols[k]);
      values_.push_back(magnitude);
      ++col_ptr_[r + 1];
    }
  }
  for (std::size_t c = 0; c < n_; ++c) col_ptr_[c + 1] += col_ptr_[c];
}

std::span<const std::uint32_t> QuantizedCouplings::column_rows(
    std::size_t j) const {
  FECIM_EXPECTS(j < n_);
  return {row_idx_.data() + col_ptr_[j], col_ptr_[j + 1] - col_ptr_[j]};
}

std::span<const std::int32_t> QuantizedCouplings::column_values(
    std::size_t j) const {
  FECIM_EXPECTS(j < n_);
  return {values_.data() + col_ptr_[j], col_ptr_[j + 1] - col_ptr_[j]};
}

linalg::CsrMatrix QuantizedCouplings::dequantize() const {
  linalg::CsrMatrix::Builder builder(n_, n_);
  for (std::size_t c = 0; c < n_; ++c) {
    const auto rows = column_rows(c);
    const auto vals = column_values(c);
    for (std::size_t k = 0; k < rows.size(); ++k)
      builder.add(c, rows[k], static_cast<double>(vals[k]) * scale_);
  }
  return builder.build();
}

double QuantizedCouplings::max_abs_error(
    const linalg::CsrMatrix& original) const {
  FECIM_EXPECTS(original.rows() == n_);
  const auto dequantized = dequantize();
  double worst = 0.0;
  for (std::size_t r = 0; r < n_; ++r) {
    const auto cols = original.row_cols(r);
    const auto vals = original.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      worst = std::max(worst,
                       std::fabs(vals[k] - dequantized.at(r, cols[k])));
  }
  return worst;
}

}  // namespace fecim::crossbar
