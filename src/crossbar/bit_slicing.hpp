// k-bit sign-magnitude quantization of the coupling matrix J.
//
// Each element J_ij maps onto a 1 x k subarray of DG FeFET cells storing the
// binary magnitude (paper Fig. 6(d): "each element ... is mapped onto a 1xk
// subarray, with each cell storing 1 bit under k-bit quantization").
// Negative couplings occupy a separate column plane whose sensed value is
// subtracted digitally, since conductances are non-negative.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace fecim::crossbar {

class QuantizedCouplings {
 public:
  /// Quantize a symmetric coupling matrix to `bits`-bit sign-magnitude.
  /// scale = max|J| / (2^bits - 1), so the largest coupling uses the full
  /// code and J_ij ~ sign * magnitude * scale.
  QuantizedCouplings(const linalg::CsrMatrix& j, int bits);

  std::size_t num_spins() const noexcept { return n_; }
  int bits() const noexcept { return bits_; }
  double scale() const noexcept { return scale_; }
  std::uint32_t max_magnitude() const noexcept {
    return (std::uint32_t{1} << bits_) - 1;
  }
  bool has_negative() const noexcept { return has_negative_; }
  std::size_t nonzeros() const noexcept { return values_.size(); }

  /// Column-major access (identical to row-major for the symmetric pattern):
  /// the stored entries of logical column j as parallel spans.
  std::span<const std::uint32_t> column_rows(std::size_t j) const;
  std::span<const std::int32_t> column_values(std::size_t j) const;

  /// Dequantized matrix (for error analysis and the ideal engine on
  /// quantized weights).
  linalg::CsrMatrix dequantize() const;

  /// Worst-case absolute quantization error vs the source matrix.
  double max_abs_error(const linalg::CsrMatrix& original) const;

 private:
  std::size_t n_;
  int bits_;
  double scale_;
  bool has_negative_ = false;
  // CSC layout (== CSR of the symmetric pattern): signed magnitudes.
  std::vector<std::size_t> col_ptr_;
  std::vector<std::uint32_t> row_idx_;
  std::vector<std::int32_t> values_;
};

}  // namespace fecim::crossbar
