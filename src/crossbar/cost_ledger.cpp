#include "crossbar/cost_ledger.hpp"

namespace fecim::crossbar {

void CostLedger::merge(const CostLedger& other) noexcept {
  iterations += other.iterations;
  adc_conversions += other.adc_conversions;
  mux_slot_cycles += other.mux_slot_cycles;
  row_drives += other.row_drives;
  column_drives += other.column_drives;
  bg_dac_updates += other.bg_dac_updates;
  exp_evaluations += other.exp_evaluations;
  spin_updates += other.spin_updates;
  crossbar_passes += other.crossbar_passes;
  tile_activations += other.tile_activations;
  partial_sum_updates += other.partial_sum_updates;
}

void merge_trace(CostLedger& ledger, const EngineTrace& trace) noexcept {
  ledger.adc_conversions += trace.adc_conversions;
  ledger.mux_slot_cycles += trace.mux_slot_cycles;
  ledger.row_drives += trace.row_drives;
  ledger.column_drives += trace.column_drives;
  ledger.crossbar_passes += trace.crossbar_passes;
  ledger.tile_activations += trace.tile_activations;
  ledger.partial_sum_updates += trace.partial_sum_updates;
}

}  // namespace fecim::crossbar
