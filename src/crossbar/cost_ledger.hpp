// Event counters for hardware cost accounting.  Engines and annealers only
// count *events* here; translating events into joules/seconds is the cost
// library's job, keeping the physics constants in one place.
#pragma once

#include <cstdint>

namespace fecim::crossbar {

struct CostLedger {
  std::uint64_t iterations = 0;         ///< annealing iterations executed
  std::uint64_t adc_conversions = 0;    ///< column currents digitized
  std::uint64_t mux_slot_cycles = 0;    ///< serialized ADC sense slots
  std::uint64_t row_drives = 0;         ///< FG lines driven high
  std::uint64_t column_drives = 0;      ///< DL lines driven high
  std::uint64_t bg_dac_updates = 0;     ///< back-gate voltage re-programs
  std::uint64_t exp_evaluations = 0;    ///< e^x unit invocations (baselines)
  std::uint64_t spin_updates = 0;       ///< digital solution-register writes
  std::uint64_t crossbar_passes = 0;    ///< polarity passes issued
  std::uint64_t tile_activations = 0;   ///< (tile, column) sense activations
  /// Digital accumulator merges of per-tile partial codes into logical
  /// column sums; 0 for a monolithic array (nothing to merge).
  std::uint64_t partial_sum_updates = 0;

  void merge(const CostLedger& other) noexcept;
};

/// Per-evaluation event trace an engine returns; the annealer merges it into
/// its run ledger.
struct EngineTrace {
  std::uint64_t adc_conversions = 0;
  std::uint64_t mux_slot_cycles = 0;
  std::uint64_t row_drives = 0;
  std::uint64_t column_drives = 0;
  std::uint64_t crossbar_passes = 0;
  std::uint64_t tile_activations = 0;
  std::uint64_t partial_sum_updates = 0;
  /// Per-tile source-line IR attenuation the sensed currents experienced
  /// (factor in (0, 1]; 1 = lossless).  A >1-tile grid senses over shorter
  /// lines, so this sits strictly above the monolithic counterpart.  Not an
  /// event counter: merge_trace leaves it to the trace.
  double tile_ir_attenuation = 1.0;
};

void merge_trace(CostLedger& ledger, const EngineTrace& trace) noexcept;

}  // namespace fecim::crossbar
