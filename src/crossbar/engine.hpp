// Abstract E_inc evaluation engine.
//
// The annealer hands the engine the current spins, the proposed flip set and
// the annealing control signal; the engine returns
//
//   e_inc ~ sigma_r^T J sigma_c * f(T)
//
// plus the hardware events the evaluation incurred.  Two implementations:
//   * IdealCrossbarEngine  -- exact digital arithmetic (and the baselines'
//     full-array cost accounting mode);
//   * AnalogCrossbarEngine -- DG FeFET currents, variation, ADC sampling,
//     shift & add, positive/negative pass separation.
//
// Stochastic readout contract: engines do NOT draw from the annealer's
// sequential RNG.  All readout noise comes from counter-keyed streams
// (util::NoiseStream) bound to the run via begin_run(run_seed) and indexed
// by a per-run conversion counter, so a noisy evaluation is a pure function
// of (spins, flips, signal, run_seed, conversions already performed).  See
// ReadoutNoise below and docs/noise-model.md for the key scheme.
#pragma once

#include <cmath>

#include "crossbar/cost_ledger.hpp"
#include "ising/flipset.hpp"
#include "ising/spin.hpp"
#include "util/rng.hpp"

namespace fecim::crossbar {

/// Annealing control signal for one evaluation.  `factor` is the ideal f(T)
/// value; `vbg` is the (quantized) back-gate voltage realizing it on the
/// device.  Engines use whichever representation their abstraction level
/// needs.
struct AnnealSignal {
  double factor = 1.0;
  double vbg = 0.7;
};

struct EincResult {
  double e_inc = 0.0;    ///< sigma_r^T J sigma_c * f(T), engine's estimate
  double raw_vmv = 0.0;  ///< engine's estimate of sigma_r^T J sigma_c alone
  EngineTrace trace;     ///< hardware events incurred
};

/// Per-run stochastic readout state: the counter-keyed conversion-noise
/// stream plus the index of the next ADC conversion.
///
/// Each conversion consumes exactly ONE standard-normal draw -- its total
/// input-referred noise.  C2C read noise (per-cell, aggregated in
/// quadrature over the live cells) and ADC input noise are independent
/// zero-mean Gaussians, so their sum is exactly Gaussian with
/// sigma_tot = sqrt(sigma_read^2 + sigma_adc^2); folding them into one draw
/// halves the stochastic work without changing the model's distribution
/// (readout_sigma below is the shared formula).
///
/// Conversion indices are assigned canonically -- flips in flip-set order,
/// row band (tile) ascending, row polarity +1 then -1, bit ascending,
/// + plane before - plane, counting only segments present in that band's
/// tile -- so any two implementations that walk the same flip sets over the
/// same tile grid assign the same index to the same physical conversion,
/// and the noise they see is bit-identical regardless of evaluation order,
/// batching, or which draws they elide.  A monolithic array has one band,
/// which reduces the walk to the historical flip/polarity/bit/plane order;
/// a >1-tile grid performs more conversions per column (one per present
/// (tile, physical column)), so noisy results are a pure function of
/// (seed, tile shape) and deliberately differ between tile shapes.
/// `next_conversion` advances by the number of conversions in each
/// evaluation (even fully deterministic ones, which keep the cursor aligned
/// without computing any draw).
struct ReadoutNoise {
  util::NoiseStream conversion;  ///< total input-referred (kReadoutNoise)
  std::uint64_t next_conversion = 0;

  static ReadoutNoise for_run(std::uint64_t run_seed) noexcept {
    return {util::NoiseStream(run_seed, util::stream_site::kReadoutNoise), 0};
  }
};

/// Total input-referred sigma of one conversion, in amps, from the two
/// noise VARIANCES: `read_variance` is the quadrature-aggregated C2C
/// read-noise variance of the sensed cells
/// ((read_noise_rel * i_on * attenuation)^2 * sum of squared multipliers),
/// `adc_variance` the square of the ADC's input-referred sigma
/// (SarAdc::noise_sigma_current()).  One sqrt covers both sources.  When
/// read noise is off entirely, callers use sigma_adc directly instead (the
/// exact round trip sqrt(sigma^2) is not guaranteed bitwise).  Shared by
/// the optimized engine and the reference kernel so the expression tree --
/// and therefore the result bits -- match exactly.
inline double readout_sigma(double read_variance,
                            double adc_variance) noexcept {
  return std::sqrt(read_variance + adc_variance);
}

class EincEngine {
 public:
  virtual ~EincEngine() = default;

  /// Bind the engine's stochastic state to a run.  Engines with keyed noise
  /// (the analog engine) re-derive their streams from `run_seed` and reset
  /// their conversion counter; deterministic engines ignore it (default
  /// no-op).  Annealers call this once at the top of run(seed); an engine
  /// that never sees begin_run behaves as run_seed = 0.
  virtual void begin_run(std::uint64_t run_seed) { (void)run_seed; }

  /// Evaluate E_inc for the proposed (not yet applied) `flips`.  Stochastic
  /// engines advance their internal ReadoutNoise cursor; there is no other
  /// mutable coupling between calls, and no draw is taken from any shared
  /// sequential RNG.
  virtual EincResult evaluate(std::span<const ising::Spin> spins,
                              const ising::FlipSet& flips,
                              const AnnealSignal& signal) = 0;

  /// Cache-coherence protocol: the annealer MUST report every flip set it
  /// actually applies, after applying it to the spin vector, through this
  /// hook (`spins_after` already holds the flipped values).  Engines
  /// carrying spin-dependent caches -- the ideal engine's local-field cache
  /// -- resynchronize here in O(sum degree); skipping a report, or reporting
  /// a set that was not applied, silently corrupts every later evaluation.
  /// Wholesale spin rewrites (restarts) require a fresh engine or cache
  /// reset instead.  Default no-op for stateless engines.
  virtual void on_flips_applied(std::span<const ising::Spin> spins_after,
                                const ising::FlipSet& flips) {
    (void)spins_after;
    (void)flips;
  }

  virtual std::size_t num_spins() const noexcept = 0;
};

}  // namespace fecim::crossbar
