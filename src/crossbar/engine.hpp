// Abstract E_inc evaluation engine.
//
// The annealer hands the engine the current spins, the proposed flip set and
// the annealing control signal; the engine returns
//
//   e_inc ~ sigma_r^T J sigma_c * f(T)
//
// plus the hardware events the evaluation incurred.  Two implementations:
//   * IdealCrossbarEngine  -- exact digital arithmetic (and the baselines'
//     full-array cost accounting mode);
//   * AnalogCrossbarEngine -- DG FeFET currents, variation, ADC sampling,
//     shift & add, positive/negative pass separation.
#pragma once

#include "crossbar/cost_ledger.hpp"
#include "ising/flipset.hpp"
#include "ising/spin.hpp"
#include "util/rng.hpp"

namespace fecim::crossbar {

/// Annealing control signal for one evaluation.  `factor` is the ideal f(T)
/// value; `vbg` is the (quantized) back-gate voltage realizing it on the
/// device.  Engines use whichever representation their abstraction level
/// needs.
struct AnnealSignal {
  double factor = 1.0;
  double vbg = 0.7;
};

struct EincResult {
  double e_inc = 0.0;    ///< sigma_r^T J sigma_c * f(T), engine's estimate
  double raw_vmv = 0.0;  ///< engine's estimate of sigma_r^T J sigma_c alone
  EngineTrace trace;     ///< hardware events incurred
};

class EincEngine {
 public:
  virtual ~EincEngine() = default;

  virtual EincResult evaluate(std::span<const ising::Spin> spins,
                              const ising::FlipSet& flips,
                              const AnnealSignal& signal, util::Rng& rng) = 0;

  /// Notification that the annealer accepted `flips` and already applied
  /// them to `spins_after`.  Engines carrying spin-dependent caches (the
  /// ideal engine's local-field cache) resynchronize here; default no-op.
  virtual void on_flips_applied(std::span<const ising::Spin> spins_after,
                                const ising::FlipSet& flips) {
    (void)spins_after;
    (void)flips;
  }

  virtual std::size_t num_spins() const noexcept = 0;
};

}  // namespace fecim::crossbar
