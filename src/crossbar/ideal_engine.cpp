#include "crossbar/ideal_engine.hpp"

#include "util/assert.hpp"

namespace fecim::crossbar {

IdealCrossbarEngine::IdealCrossbarEngine(const ising::IsingModel& model,
                                         CrossbarMapping mapping,
                                         Accounting accounting,
                                         const TileShape& tiles)
    : model_(&model), mapping_(std::move(mapping)), accounting_(accounting) {
  FECIM_EXPECTS(mapping_.num_spins() == model.num_spins());
  grid_rows_ = plan_row_bands(mapping_.physical_rows(), tiles.rows).size();
}

EincResult IdealCrossbarEngine::evaluate(std::span<const ising::Spin> spins,
                                         const ising::FlipSet& flips,
                                         const AnnealSignal& signal) {
  FECIM_EXPECTS(!flips.empty());
  EincResult result;
  if (use_cache_) {
    if (!cache_.ready()) cache_.build(*model_, spins);
    result.raw_vmv = cache_.vmv(*model_, spins, flips);
  } else {
    result.raw_vmv = model_->incremental_vmv(spins, flips);
  }
  result.e_inc = result.raw_vmv * signal.factor;

  const auto n = static_cast<std::uint64_t>(model_->num_spins());
  const auto t = static_cast<std::uint64_t>(flips.size());
  const auto bits = static_cast<std::uint64_t>(mapping_.bits());
  const auto planes = static_cast<std::uint64_t>(mapping_.planes());

  // Positive/negative inputs are handled in separate passes (Sec. 3.3):
  // each active column is sensed once per row-polarity pass, i.e. twice --
  // per row band of the tile grid, with the per-tile codes digitally merged
  // (tiles sense concurrently, so mux slot cycles do not scale with bands).
  const auto bands = static_cast<std::uint64_t>(grid_rows_);
  EngineTrace& trace = result.trace;
  trace.crossbar_passes = 4;
  if (accounting_ == Accounting::kInSitu) {
    trace.adc_conversions = 2 * t * bits * planes * bands;
    trace.mux_slot_cycles = 2 * mapping_.slots_for_flips(flips);
    trace.row_drives = 2 * (n - t);
    trace.column_drives = 2 * t * bits * planes;
    trace.tile_activations = t * bands;
    trace.partial_sum_updates = 2 * t * bits * planes * (bands - 1);
  } else {
    trace.adc_conversions = 2 * n * bits * planes * bands;
    trace.mux_slot_cycles = 2 * mapping_.slots_full_array();
    trace.row_drives = 2 * n;
    trace.column_drives = 2 * n * bits * planes;
    trace.tile_activations = n * bands;
    trace.partial_sum_updates = 2 * n * bits * planes * (bands - 1);
  }
  return result;
}

void IdealCrossbarEngine::on_flips_applied(
    std::span<const ising::Spin> spins_after, const ising::FlipSet& flips) {
  if (use_cache_ && cache_.ready())
    cache_.apply_flips(*model_, spins_after, flips);
}

}  // namespace fecim::crossbar
