// Exact-arithmetic E_inc engine.
//
// Computes sigma_r^T J sigma_c in floating point (no quantization, device or
// ADC effects) while still producing a faithful hardware event trace.  Two
// accounting modes:
//   * kInSitu         -- only the |F| flipped columns are driven and sensed
//                        (this work's dataflow);
//   * kDirectFullArray-- every column is sensed, modeling the direct-E
//                        annealers [7] that recompute the full VMV each
//                        iteration.
// The baselines use this engine (their algorithmic behaviour is exact
// digital arithmetic); the proposed annealer uses it for noise-free
// ablations.
//
// Annealers opt into the local-field cache (enable_local_field_cache()):
// evaluations then read cached h_eff values instead of walking CSR rows, at
// the cost of a protocol -- the caller must report every applied flip set
// through on_flips_applied() and invalidate_local_field_cache() whenever it
// rewrites the configuration wholesale.  Callers that hand arbitrary spin
// vectors to evaluate() (tests, benches) leave the cache off and get the
// stateless row-walk path.
#pragma once

#include <vector>

#include "crossbar/engine.hpp"
#include "crossbar/mapping.hpp"
#include "crossbar/tiling.hpp"
#include "ising/ising_model.hpp"
#include "ising/local_field.hpp"

namespace fecim::crossbar {

enum class Accounting { kInSitu, kDirectFullArray };

class IdealCrossbarEngine final : public EincEngine {
 public:
  /// `model` must outlive the engine.  `tiles` selects the physical tile
  /// grid the event accounting assumes (default monolithic): arithmetic is
  /// exact either way, but a >1-tile grid converts each sensed column once
  /// per row band and digitally merges the per-tile partial sums, so
  /// adc_conversions / tile_activations / partial_sum_updates scale with
  /// the band count.  Lacking a programmed-cell map, the ideal engine
  /// charges every band (dense-tile accounting) -- an upper bound the
  /// analog engine's sparsity-aware trace refines.
  IdealCrossbarEngine(const ising::IsingModel& model, CrossbarMapping mapping,
                      Accounting accounting, const TileShape& tiles = {});

  EincResult evaluate(std::span<const ising::Spin> spins,
                      const ising::FlipSet& flips,
                      const AnnealSignal& signal) override;

  void on_flips_applied(std::span<const ising::Spin> spins_after,
                        const ising::FlipSet& flips) override;

  /// Switch evaluations to the incrementally-maintained local-field cache
  /// (built lazily from the spins of the next evaluate() call).
  void enable_local_field_cache() {
    use_cache_ = true;
    cache_.reset();
  }
  /// Drop the cached fields (e.g. after resetting spins to an earlier
  /// configuration); the next evaluate() rebuilds them.
  void invalidate_local_field_cache() { cache_.reset(); }
  bool local_field_cache_enabled() const noexcept { return use_cache_; }

  std::size_t num_spins() const noexcept override {
    return model_->num_spins();
  }

  const CrossbarMapping& mapping() const noexcept { return mapping_; }

  /// Row bands of the assumed tile grid (1 = monolithic).
  std::size_t grid_rows() const noexcept { return grid_rows_; }

 private:
  const ising::IsingModel* model_;
  CrossbarMapping mapping_;
  Accounting accounting_;
  std::size_t grid_rows_ = 1;
  bool use_cache_ = false;
  ising::LocalFieldCache cache_;
};

}  // namespace fecim::crossbar
