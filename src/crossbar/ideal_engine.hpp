// Exact-arithmetic E_inc engine.
//
// Computes sigma_r^T J sigma_c in floating point (no quantization, device or
// ADC effects) while still producing a faithful hardware event trace.  Two
// accounting modes:
//   * kInSitu         -- only the |F| flipped columns are driven and sensed
//                        (this work's dataflow);
//   * kDirectFullArray-- every column is sensed, modeling the direct-E
//                        annealers [7] that recompute the full VMV each
//                        iteration.
// The baselines use this engine (their algorithmic behaviour is exact
// digital arithmetic); the proposed annealer uses it for noise-free
// ablations.
#pragma once

#include "crossbar/engine.hpp"
#include "crossbar/mapping.hpp"
#include "ising/ising_model.hpp"

namespace fecim::crossbar {

enum class Accounting { kInSitu, kDirectFullArray };

class IdealCrossbarEngine final : public EincEngine {
 public:
  /// `model` must outlive the engine.
  IdealCrossbarEngine(const ising::IsingModel& model, CrossbarMapping mapping,
                      Accounting accounting);

  EincResult evaluate(std::span<const ising::Spin> spins,
                      const ising::FlipSet& flips, const AnnealSignal& signal,
                      util::Rng& rng) override;

  std::size_t num_spins() const noexcept override {
    return model_->num_spins();
  }

  const CrossbarMapping& mapping() const noexcept { return mapping_; }

 private:
  const ising::IsingModel* model_;
  CrossbarMapping mapping_;
  Accounting accounting_;
};

}  // namespace fecim::crossbar
