#include "crossbar/mapping.hpp"

#include <algorithm>
#include <vector>

namespace fecim::crossbar {

CrossbarMapping::CrossbarMapping(std::size_t num_spins, int planes,
                                 const MappingConfig& config)
    : n_(num_spins), planes_(planes), config_(config) {
  FECIM_EXPECTS(num_spins > 0);
  FECIM_EXPECTS(planes == 1 || planes == 2);
  FECIM_EXPECTS(config_.bits >= 1 && config_.bits <= 16);
  FECIM_EXPECTS(config_.mux_ratio >= 1);
}

std::size_t CrossbarMapping::physical_column(int plane, int bit,
                                             std::size_t logical) const {
  FECIM_EXPECTS(plane >= 0 && plane < planes_);
  FECIM_EXPECTS(bit >= 0 && bit < config_.bits);
  FECIM_EXPECTS(logical < n_);
  return (static_cast<std::size_t>(plane) * config_.bits +
          static_cast<std::size_t>(bit)) * n_ + logical;
}

std::size_t CrossbarMapping::mux_group(std::size_t physical_col) const {
  FECIM_EXPECTS(physical_col < physical_columns());
  return physical_col / config_.mux_ratio;
}

std::size_t CrossbarMapping::num_mux_groups() const noexcept {
  return (physical_columns() + config_.mux_ratio - 1) / config_.mux_ratio;
}

std::size_t CrossbarMapping::group_of_logical(std::size_t logical) const {
  FECIM_EXPECTS(logical < n_);
  const std::size_t groups_per_segment =
      (n_ + config_.mux_ratio - 1) / config_.mux_ratio;
  return config_.interleave_columns ? logical % groups_per_segment
                                    : logical / config_.mux_ratio;
}

std::size_t CrossbarMapping::slots_for_flips(
    std::span<const std::uint32_t> flips) const {
  if (flips.empty()) return 0;
  // Two flipped columns serialize only when they share a MUX group within a
  // bit-plane segment; the segment-local group assignment is identical
  // across segments, so one multiplicity count suffices.  Annealers call
  // this every iteration with |F| of a handful, so the common path counts
  // the maximum group multiplicity with an O(t^2) scan on the stack instead
  // of allocating and sorting a scratch vector.
  std::size_t worst = 1;
  if (flips.size() <= 64) {
    for (std::size_t i = 0; i < flips.size(); ++i) {
      const std::size_t group = group_of_logical(flips[i]);
      std::size_t multiplicity = 1;
      for (std::size_t k = 0; k < i; ++k)
        multiplicity += group_of_logical(flips[k]) == group ? 1 : 0;
      worst = std::max(worst, multiplicity);
    }
    return worst;
  }
  std::vector<std::size_t> groups;
  groups.reserve(flips.size());
  for (const auto j : flips) groups.push_back(group_of_logical(j));
  std::sort(groups.begin(), groups.end());
  std::size_t run = 1;
  for (std::size_t i = 1; i < groups.size(); ++i) {
    run = groups[i] == groups[i - 1] ? run + 1 : 1;
    worst = std::max(worst, run);
  }
  return worst;
}

}  // namespace fecim::crossbar
