// Physical layout of the n x m crossbar (m = n * bits * planes) and the
// MUX-group geometry that determines sensing serialization.
//
// Layout is bit-plane-major: plane p (0 = positive weights, 1 = negative),
// bit b, logical column j  ->  physical column ((p * bits + b) * n) + j.
// Every `mux_ratio` adjacent physical columns share one ADC (Fig. 6(d));
// sensing a group's active columns is sequential, groups run in parallel.
//
// Consequence (the paper's ~8x latency gap): a full-array direct-E pass
// touches all `mux_ratio` columns of every group, while an incremental pass
// touches at most one column per group unless two flipped spins land in the
// same group -- slots_for_flips() counts that exactly.
#pragma once

#include <cstdint>
#include <span>

#include "util/assert.hpp"

namespace fecim::crossbar {

struct MappingConfig {
  int bits = 8;               ///< k-bit weight quantization
  std::size_t mux_ratio = 8;  ///< columns per ADC (8-to-1 MUX [36])
  /// Interleave logical columns across MUX groups (group = j mod #groups)
  /// instead of blocking them (group = j / ratio).  Cluster moves flip
  /// *coupled* -- often index-adjacent -- spins; interleaving keeps their
  /// columns in distinct groups so they are sensed in parallel slots.
  bool interleave_columns = true;
};

class CrossbarMapping {
 public:
  CrossbarMapping(std::size_t num_spins, int planes, const MappingConfig& config);

  std::size_t num_spins() const noexcept { return n_; }
  int bits() const noexcept { return config_.bits; }
  int planes() const noexcept { return planes_; }
  std::size_t mux_ratio() const noexcept { return config_.mux_ratio; }
  const MappingConfig& config() const noexcept { return config_; }

  std::size_t physical_columns() const noexcept {
    return n_ * static_cast<std::size_t>(config_.bits) *
           static_cast<std::size_t>(planes_);
  }
  std::size_t physical_rows() const noexcept { return n_; }
  std::size_t num_cells() const noexcept {
    return physical_rows() * physical_columns();
  }

  std::size_t physical_column(int plane, int bit, std::size_t logical) const;
  std::size_t mux_group(std::size_t physical_col) const;
  std::size_t num_mux_groups() const noexcept;

  /// MUX group a logical column's bit-slices belong to (identical across
  /// bit-plane segments).  With interleave_columns the assignment is
  /// j mod #groups (a column-decoder remap), otherwise j / mux_ratio.
  std::size_t group_of_logical(std::size_t logical) const;

  /// Sequential ADC slots needed to sense the given flipped logical columns
  /// in one pass: the maximum number of active columns falling into a single
  /// MUX group (identical across bit planes by construction).
  std::size_t slots_for_flips(std::span<const std::uint32_t> flips) const;

  /// Slots for a full-array pass: every column of every group is sensed.
  std::size_t slots_full_array() const noexcept { return config_.mux_ratio; }

 private:
  std::size_t n_;
  int planes_;
  MappingConfig config_;
};

}  // namespace fecim::crossbar
