#include "crossbar/programmed_array.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fecim::crossbar {

ProgrammedArray::ProgrammedArray(const QuantizedCouplings& couplings,
                                 const CrossbarMapping& mapping,
                                 const device::DgFefetParams& device_params,
                                 const device::VariationParams& variation,
                                 std::uint64_t seed)
    : couplings_(couplings),
      mapping_(mapping),
      device_params_(device_params),
      variation_(variation) {
  FECIM_EXPECTS(mapping_.num_spins() == couplings_.num_spins());
  FECIM_EXPECTS(mapping_.bits() == couplings_.bits());

  const auto bits = static_cast<std::size_t>(couplings_.bits());
  multipliers_.assign(couplings_.nonzeros() * bits, 1.0F);

  if (variation_.ideal()) return;

  util::Rng rng(seed);
  // Subthreshold translation of a V_TH offset into a current factor:
  // I ~ exp(-dVth / (n Vt)).
  const double v_slope = device_params_.transistor.slope_factor *
                         device_params_.transistor.thermal_voltage;
  for (std::size_t cell = 0; cell < multipliers_.size(); ++cell) {
    const double roll = rng.uniform01();
    if (roll < variation_.stuck_off_rate) {
      multipliers_[cell] = 0.0F;
      ++faulted_;
      continue;
    }
    if (roll < variation_.stuck_off_rate + variation_.stuck_on_rate) {
      multipliers_[cell] = 1.0F;
      ++faulted_;
      continue;
    }
    if (variation_.vth_sigma > 0.0) {
      const double dvth = rng.normal(0.0, variation_.vth_sigma);
      multipliers_[cell] = static_cast<float>(std::exp(-dvth / v_slope));
    }
  }
}

double ProgrammedArray::on_current(double vbg) const noexcept {
  return device::DgFefet::on_current(device_params_, vbg);
}

ProgrammedArray::ColumnView ProgrammedArray::column(std::size_t j) const {
  ColumnView view;
  view.rows = couplings_.column_rows(j);
  view.magnitudes = couplings_.column_values(j);
  // Entry index of the first element in this column: the spans are slices
  // of the underlying arrays, so recover the offset from pointers.
  view.first_entry = view.rows.empty()
                         ? 0
                         : static_cast<std::size_t>(
                               view.rows.data() -
                               couplings_.column_rows(0).data());
  return view;
}

double ProgrammedArray::bit_multiplier(std::size_t entry, int bit) const {
  const auto bits = static_cast<std::size_t>(couplings_.bits());
  const std::size_t index = entry * bits + static_cast<std::size_t>(bit);
  FECIM_EXPECTS(index < multipliers_.size());
  return multipliers_[index];
}

}  // namespace fecim::crossbar
