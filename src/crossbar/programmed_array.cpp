#include "crossbar/programmed_array.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "util/assert.hpp"

namespace fecim::crossbar {

ProgrammedArray::ProgrammedArray(const QuantizedCouplings& couplings,
                                 const CrossbarMapping& mapping,
                                 const device::DgFefetParams& device_params,
                                 const device::VariationParams& variation,
                                 std::uint64_t seed, const TileShape& tiles)
    : couplings_(couplings),
      mapping_(mapping),
      device_params_(device_params),
      variation_(variation),
      tiles_(tiles),
      bands_(plan_row_bands(mapping.physical_rows(), tiles.rows)) {
  FECIM_EXPECTS(mapping_.num_spins() == couplings_.num_spins());
  FECIM_EXPECTS(mapping_.bits() == couplings_.bits());

  const auto bits = static_cast<std::size_t>(couplings_.bits());
  multipliers_.assign(couplings_.nonzeros() * bits, 1.0F);

  if (!variation_.ideal()) {
    // (absent-bit slots are zeroed below, after variation sampling, so the
    // per-cell noise-stream indexing stays a pure function of cell index)
    // Counter-keyed programming variation: cell c's fault roll and V_TH
    // offset are draws at index c of the kCellFault / kCellVth streams, so
    // a cell's programmed state is independent of array size and sampling
    // order (and reproducible in isolation for debugging).  The tile shape
    // never enters the cell index, so re-tiling an array does not reprogram
    // it: the same seed yields the same cells for every TileShape.
    const util::NoiseStream fault_stream(seed, util::stream_site::kCellFault);
    const util::NoiseStream vth_stream(seed, util::stream_site::kCellVth);
    // Subthreshold translation of a V_TH offset into a current factor:
    // I ~ exp(-dVth / (n Vt)).
    const double v_slope = device_params_.transistor.slope_factor *
                           device_params_.transistor.thermal_voltage;
    for (std::size_t cell = 0; cell < multipliers_.size(); ++cell) {
      const double roll = fault_stream.uniform01(cell);
      if (roll < variation_.stuck_off_rate) {
        multipliers_[cell] = 0.0F;
        ++faulted_;
        continue;
      }
      if (roll < variation_.stuck_off_rate + variation_.stuck_on_rate) {
        multipliers_[cell] = 1.0F;
        ++faulted_;
        continue;
      }
      if (variation_.vth_sigma > 0.0) {
        const double dvth = vth_stream.normal(cell, 0.0, variation_.vth_sigma);
        multipliers_[cell] = static_cast<float>(std::exp(-dvth / v_slope));
      }
    }
  }

  // Zero the multiplier slots of bits a cell does not store: the stochastic
  // readout sweep can then accumulate every (cell, bit) unconditionally --
  // absent bits contribute exact +0.0 -- which removes the per-bit presence
  // branch from the hot loop and keeps it vectorizable.  bit_multiplier()
  // and multipliers() therefore report 0 for absent bits.
  for (std::size_t j = 0; j < couplings_.num_spins(); ++j) {
    const auto view = column(j);
    for (std::size_t k = 0; k < view.rows.size(); ++k) {
      const auto abs_mag =
          static_cast<std::uint32_t>(std::abs(view.magnitudes[k]));
      float* entry_mults = multipliers_.data() + (view.first_entry + k) * bits;
      for (std::size_t b = 0; b < bits; ++b)
        if (!(abs_mag & (1u << b))) entry_mults[b] = 0.0F;
    }
  }

  build_column_cache();
}

TilePlan ProgrammedArray::plan(const circuit::WireTech& wire) const {
  return plan_tiles(mapping_, tiles_, on_current(device_params_.vbg_max),
                    device_params_.read_vdl, wire);
}

void ProgrammedArray::build_column_cache() {
  const auto bits = static_cast<std::size_t>(couplings_.bits());
  const std::size_t n = couplings_.num_spins();
  const std::size_t num_bands = bands_.size();
  FECIM_EXPECTS(bits >= 1 && bits <= 16);

  segments_.assign(num_bands * n * bits * 2, SegmentRef{});
  class_ptr_.assign(num_bands * n + 1, 0);
  slot_ptr_.assign(num_bands * n + 1, 0);
  slot_src_.clear();
  slot_weight_.clear();
  classes_.clear();
  class_weights_.clear();
  present_count_.assign(num_bands * n, 0);
  present_total_.assign(n, 0);
  present_union_.assign(n, 0);
  active_bands_.assign(n, 0);
  band_cell_ptr_.assign(n * (num_bands + 1), 0);
  cache_rows_.clear();
  cache_mults_.clear();
  // Heuristic reserve: with segment-class dedup the common cases (unit
  // weights, coarse quantization) store each programmed entry about once;
  // fully-distinct multipliers can grow this toward nonzeros * bits, which
  // the vectors absorb geometrically during this one-time build and
  // shrink_to_fit trims below.
  cache_rows_.reserve(couplings_.nonzeros());
  cache_mults_.reserve(couplings_.nonzeros());

  // Cells within a column are stored in ascending row order, so each row
  // band owns one contiguous sub-range of the column's cells: resolve the
  // band boundaries once per column for the stochastic per-cell sweep.
  for (std::size_t j = 0; j < n; ++j) {
    const auto view = column(j);
    auto* ptr = band_cell_ptr_.data() + j * (num_bands + 1);
    std::size_t k = 0;
    for (std::size_t b = 0; b < num_bands; ++b) {
      ptr[b] = static_cast<std::uint32_t>(k);
      while (k < view.rows.size() && view.rows[k] < bands_[b].row_end) ++k;
    }
    ptr[num_bands] = static_cast<std::uint32_t>(k);
    FECIM_ASSERT(k == view.rows.size());
  }

  std::vector<std::uint32_t> stage_rows;
  std::vector<float> stage_mults;
  // Per-column scratch tracking the union of present segments over bands.
  std::vector<std::uint32_t> union_mask(n, 0);

  for (std::size_t band = 0; band < num_bands; ++band) {
    const std::uint32_t row0 = bands_[band].row_begin;
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t slot = band * n + j;
      const auto view = column(j);
      const auto range = column_band_cells(band, j);
      const std::size_t class_base = classes_.size();
      bool band_active = false;
      for (std::size_t b = 0; b < bits; ++b) {
        for (int plane = 0; plane < 2; ++plane) {
          stage_rows.clear();
          stage_mults.clear();
          bool present = false;
          bool all_unit = true;
          for (std::size_t k = range.begin; k < range.end; ++k) {
            const std::int32_t mag = view.magnitudes[k];
            const auto abs_mag = static_cast<std::uint32_t>(std::abs(mag));
            if (!(abs_mag & (1u << b))) continue;
            if ((mag < 0 ? 1 : 0) != plane) continue;
            present = true;
            const float m = multipliers_[(view.first_entry + k) * bits + b];
            if (m == 0.0F) continue;  // stuck-off: exact +0.0 contribution
            stage_rows.push_back(view.rows[k] - row0);  // band-relative
            stage_mults.push_back(m);
            all_unit &= m == 1.0F;
          }
          auto& seg =
              segments_[(slot * bits + b) * 2 + static_cast<std::size_t>(plane)];
          seg.present = present ? 1 : 0;
          if (!present) continue;
          band_active = true;
          union_mask[j] |= 1u << (b * 2 + static_cast<std::size_t>(plane));

          // Dedupe against this (band, column)'s existing classes: identical
          // cell lists (common under coarse quantization, universal for unit
          // weights) share one accumulation per evaluation.
          std::size_t cls = classes_.size();
          for (std::size_t ci = class_base; ci < classes_.size(); ++ci) {
            const auto& cand = classes_[ci];
            const std::size_t len = cand.end - cand.begin;
            if (len != stage_rows.size()) continue;
            bool match = true;
            for (std::size_t e = 0; e < len && match; ++e) {
              match = cache_rows_[cand.begin + e] == stage_rows[e] &&
                      cache_mults_[cand.begin + e] == stage_mults[e];
            }
            if (match) {
              cls = ci;
              break;
            }
          }
          if (cls == classes_.size()) {
            SegmentClass fresh;
            fresh.begin = static_cast<std::uint32_t>(cache_rows_.size());
            cache_rows_.insert(cache_rows_.end(), stage_rows.begin(),
                               stage_rows.end());
            cache_mults_.insert(cache_mults_.end(), stage_mults.begin(),
                                stage_mults.end());
            fresh.end = static_cast<std::uint32_t>(cache_rows_.size());
            fresh.all_unit = all_unit ? 1 : 0;
            classes_.push_back(fresh);
            class_weights_.push_back(0.0);
          }
          // A (band, column) has at most bits * 2 <= 32 segments, so at most
          // 32 distinct classes -- the engine's accumulator banks rely on
          // this.
          const std::size_t local = cls - class_base;
          FECIM_ASSERT(local < 32);
          seg.cls = static_cast<std::uint8_t>(local);
          class_weights_[cls] +=
              (plane == 0 ? 1.0 : -1.0) * static_cast<double>(1u << b);
          ++present_count_[slot];
          // Compacted slot metadata (canonical order: this b-outer,
          // plane-inner loop IS the noise-cursor walk).
          slot_src_.push_back(static_cast<std::uint8_t>(
              static_cast<std::size_t>(plane) * bits + b));
          slot_weight_.push_back((plane == 0 ? 1.0 : -1.0) *
                                 static_cast<double>(1u << b));
        }
      }
      class_ptr_[slot + 1] = static_cast<std::uint32_t>(classes_.size());
      slot_ptr_[slot + 1] = static_cast<std::uint32_t>(slot_src_.size());
      present_total_[j] += present_count_[slot];
      if (band_active) ++active_bands_[j];
    }
  }

  for (std::size_t j = 0; j < n; ++j)
    present_union_[j] =
        static_cast<std::uint32_t>(std::popcount(union_mask[j]));

  cache_rows_.shrink_to_fit();
  cache_mults_.shrink_to_fit();
}

double ProgrammedArray::on_current(double vbg) const noexcept {
  return device::DgFefet::on_current(device_params_, vbg);
}

ProgrammedArray::ColumnView ProgrammedArray::column(std::size_t j) const {
  ColumnView view;
  view.rows = couplings_.column_rows(j);
  view.magnitudes = couplings_.column_values(j);
  // Entry index of the first element in this column: the spans are slices
  // of the underlying arrays, so recover the offset from pointers.
  view.first_entry = view.rows.empty()
                         ? 0
                         : static_cast<std::size_t>(
                               view.rows.data() -
                               couplings_.column_rows(0).data());
  return view;
}

double ProgrammedArray::bit_multiplier(std::size_t entry, int bit) const {
  const auto bits = static_cast<std::size_t>(couplings_.bits());
  const std::size_t index = entry * bits + static_cast<std::size_t>(bit);
  FECIM_EXPECTS(index < multipliers_.size());
  return multipliers_[index];
}

std::size_t ProgrammedArray::approx_bytes() const noexcept {
  auto vec_bytes = [](const auto& v) {
    return v.size() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  // The coupling copy's CSC arrays: sizes recoverable through the public
  // interface (col_ptr is n + 1 size_t entries, row/value arrays nonzeros
  // each).
  const std::size_t coupling_bytes =
      (couplings_.num_spins() + 1) * sizeof(std::size_t) +
      couplings_.nonzeros() * (sizeof(std::uint32_t) + sizeof(std::int32_t));
  return sizeof(*this) + coupling_bytes + vec_bytes(bands_) +
         vec_bytes(multipliers_) + vec_bytes(segments_) + vec_bytes(classes_) +
         vec_bytes(class_ptr_) + vec_bytes(cache_rows_) +
         vec_bytes(cache_mults_) + vec_bytes(class_weights_) +
         vec_bytes(present_count_) + vec_bytes(present_total_) +
         vec_bytes(present_union_) + vec_bytes(active_bands_) +
         vec_bytes(band_cell_ptr_) + vec_bytes(slot_src_) +
         vec_bytes(slot_weight_) + vec_bytes(slot_ptr_);
}

}  // namespace fecim::crossbar
