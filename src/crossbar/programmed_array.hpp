// The programmed DG FeFET crossbar: quantized couplings written into cells,
// with per-cell variation sampled at programming time.
//
// The array is stored sparsely (only cells whose magnitude bit is set
// conduct, and Gset-class J matrices are sparse); per conducting bit-cell we
// keep a static current multiplier that folds the device-to-device V_TH
// offset through the subthreshold slope:
//     I_cell(vbg) = I_on(vbg) * multiplier,
//     multiplier  = exp(-dVth / (n * Vt))   (stuck-off -> 0, stuck-on -> 1).
// This first-order factorization keeps campaign-scale simulation tractable;
// tests compare it against the exact EKV evaluation on small arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "crossbar/bit_slicing.hpp"
#include "crossbar/mapping.hpp"
#include "device/dg_fefet.hpp"
#include "device/variation.hpp"
#include "util/rng.hpp"

namespace fecim::crossbar {

class ProgrammedArray {
 public:
  ProgrammedArray(const QuantizedCouplings& couplings,
                  const CrossbarMapping& mapping,
                  const device::DgFefetParams& device_params,
                  const device::VariationParams& variation, std::uint64_t seed);

  const CrossbarMapping& mapping() const noexcept { return mapping_; }
  const QuantizedCouplings& couplings() const noexcept { return couplings_; }
  const device::DgFefetParams& device_params() const noexcept {
    return device_params_;
  }
  const device::VariationParams& variation_params() const noexcept {
    return variation_;
  }

  /// Full-drive on-current at the given back-gate voltage (no variation).
  double on_current(double vbg) const noexcept;

  /// Sparse column view: entry k couples logical column `j` to row
  /// `rows()[k]` with signed magnitude `magnitudes()[k]`; the per-bit
  /// current multipliers for that entry start at `bit_multipliers(k)`.
  struct ColumnView {
    std::span<const std::uint32_t> rows;
    std::span<const std::int32_t> magnitudes;
    std::size_t first_entry;  ///< global entry index of rows[0]
  };
  ColumnView column(std::size_t j) const;

  /// Current multiplier of bit `bit` of global entry `entry`.
  double bit_multiplier(std::size_t entry, int bit) const;

  /// Number of programmed (nonzero-magnitude) logical cells.
  std::size_t num_programmed_entries() const noexcept {
    return couplings_.nonzeros();
  }

  /// Count of faulted bit-cells (stuck-off or stuck-on) among programmed
  /// cells -- reported by robustness benches.
  std::size_t num_faulted_bit_cells() const noexcept { return faulted_; }

 private:
  QuantizedCouplings couplings_;
  CrossbarMapping mapping_;
  device::DgFefetParams device_params_;
  device::VariationParams variation_;
  // multipliers_[entry * bits + bit]
  std::vector<float> multipliers_;
  std::size_t faulted_ = 0;
};

}  // namespace fecim::crossbar
