// The programmed DG FeFET crossbar: quantized couplings written into cells,
// with per-cell variation sampled at programming time.
//
// The array is stored sparsely (only cells whose magnitude bit is set
// conduct, and Gset-class J matrices are sparse); per conducting bit-cell we
// keep a static current multiplier that folds the device-to-device V_TH
// offset through the subthreshold slope:
//     I_cell(vbg) = I_on(vbg) * multiplier,
//     multiplier  = exp(-dVth / (n * Vt))   (stuck-off -> 0, stuck-on -> 1).
// This first-order factorization keeps campaign-scale simulation tractable;
// tests compare it against the exact EKV evaluation on small arrays.
//
// Because the array is immutable once programmed, programming time also
// builds a bit-plane-sliced column cache: for every (logical column, bit,
// plane) the conducting cells are laid out contiguously as (row, multiplier)
// entries, and segments with identical content within a column are deduped
// into shared "segment classes" so the engine accumulates each distinct cell
// list once per evaluation instead of once per bit.  The cache is a pure
// re-layout of column()/bit_multiplier(): the engine's sums over it are
// bit-identical to decoding magnitudes on the fly (entries stay in ascending
// intra-column order, and dropped zero-multiplier cells only ever
// contributed exact +0.0 terms).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crossbar/bit_slicing.hpp"
#include "crossbar/mapping.hpp"
#include "device/dg_fefet.hpp"
#include "device/variation.hpp"
#include "util/rng.hpp"

namespace fecim::crossbar {

class ProgrammedArray {
 public:
  ProgrammedArray(const QuantizedCouplings& couplings,
                  const CrossbarMapping& mapping,
                  const device::DgFefetParams& device_params,
                  const device::VariationParams& variation, std::uint64_t seed);

  const CrossbarMapping& mapping() const noexcept { return mapping_; }
  const QuantizedCouplings& couplings() const noexcept { return couplings_; }
  const device::DgFefetParams& device_params() const noexcept {
    return device_params_;
  }
  const device::VariationParams& variation_params() const noexcept {
    return variation_;
  }

  /// Full-drive on-current at the given back-gate voltage (no variation).
  double on_current(double vbg) const noexcept;

  /// Sparse column view: entry k couples logical column `j` to row
  /// `rows()[k]` with signed magnitude `magnitudes()[k]`; the per-bit
  /// current multipliers for that entry start at `bit_multipliers(k)`.
  struct ColumnView {
    std::span<const std::uint32_t> rows;
    std::span<const std::int32_t> magnitudes;
    std::size_t first_entry;  ///< global entry index of rows[0]
  };
  ColumnView column(std::size_t j) const;

  /// Current multiplier of bit `bit` of global entry `entry`.
  double bit_multiplier(std::size_t entry, int bit) const;

  /// Raw per-(entry, bit) multiplier storage, entry-major
  /// (multipliers()[entry * bits + bit], stuck-off cells stored as 0).  The
  /// stochastic readout path decodes magnitudes per cell against it so the
  /// per-bit loads are contiguous.
  std::span<const float> multipliers() const noexcept { return multipliers_; }

  /// Number of programmed (nonzero-magnitude) logical cells.
  std::size_t num_programmed_entries() const noexcept {
    return couplings_.nonzeros();
  }

  /// Count of faulted bit-cells (stuck-off or stuck-on) among programmed
  /// cells -- reported by robustness benches.
  std::size_t num_faulted_bit_cells() const noexcept { return faulted_; }

  // -------------------------------------------------------------------------
  // Bit-plane column cache (precomputed at program time; see file comment).
  // -------------------------------------------------------------------------

  /// One distinct conducting-cell list of a column.  Entries live in
  /// cache_rows()/cache_multipliers()[begin, end), in ascending intra-column
  /// order with zero-multiplier (stuck-off) cells dropped.
  struct SegmentClass {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    /// Every multiplier is exactly 1.0f (ideal or stuck-on cells): sums of
    /// k ones equal double(k) exactly, so the engine may count instead of
    /// accumulate.
    std::uint8_t all_unit = 0;
  };

  /// Physical (bit, plane) column of a logical column: whether any
  /// programmed cell stores this bit (the controller senses the column even
  /// when every such cell is stuck off), and which class holds its
  /// conducting cells.  `cls` indexes column_classes(j).
  struct SegmentRef {
    std::uint8_t cls = 0;
    std::uint8_t present = 0;
  };

  /// Segment refs of logical column j, indexed [bit * 2 + plane]
  /// (plane 0 = positive weights, 1 = negative).
  std::span<const SegmentRef> column_segments(std::size_t j) const {
    const auto stride = static_cast<std::size_t>(couplings_.bits()) * 2;
    return {segments_.data() + j * stride, stride};
  }

  /// Distinct segment classes of logical column j (at most bits * 2).
  std::span<const SegmentClass> column_classes(std::size_t j) const {
    return {classes_.data() + class_ptr_[j], class_ptr_[j + 1] - class_ptr_[j]};
  }

  /// Net digital weight of each class of column j, aligned with
  /// column_classes(j):  sum over the present segments referencing the
  /// class of  plane_sign * 2^bit.  Every term is an integer, so with a
  /// deterministic readout (one shared code per class) accumulating
  /// weight * code per class is bit-identical to the per-segment
  /// shift-and-add in any association.
  std::span<const double> column_class_weights(std::size_t j) const {
    return {class_weights_.data() + class_ptr_[j],
            class_ptr_[j + 1] - class_ptr_[j]};
  }

  /// Number of present (bit, plane) physical columns of logical column j --
  /// the ADC conversions one polarity pass of this column costs.
  std::uint32_t column_present_segments(std::size_t j) const {
    return present_count_[j];
  }

  std::span<const std::uint32_t> cache_rows() const noexcept { return cache_rows_; }
  std::span<const float> cache_multipliers() const noexcept {
    return cache_mults_;
  }

 private:
  void build_column_cache();

  QuantizedCouplings couplings_;
  CrossbarMapping mapping_;
  device::DgFefetParams device_params_;
  device::VariationParams variation_;
  // multipliers_[entry * bits + bit]
  std::vector<float> multipliers_;
  std::size_t faulted_ = 0;

  // Column cache storage (see accessors above).
  std::vector<SegmentRef> segments_;     // [(j * bits + bit) * 2 + plane]
  std::vector<SegmentClass> classes_;    // grouped per column
  std::vector<std::uint32_t> class_ptr_;  // column -> range in classes_
  std::vector<std::uint32_t> cache_rows_;
  std::vector<float> cache_mults_;
  std::vector<double> class_weights_;      // aligned with classes_
  std::vector<std::uint32_t> present_count_;  // per column
};

}  // namespace fecim::crossbar
