// The programmed DG FeFET crossbar: quantized couplings written into cells,
// with per-cell variation sampled at programming time.
//
// The array is stored sparsely (only cells whose magnitude bit is set
// conduct, and Gset-class J matrices are sparse); per conducting bit-cell we
// keep a static current multiplier that folds the device-to-device V_TH
// offset through the subthreshold slope:
//     I_cell(vbg) = I_on(vbg) * multiplier,
//     multiplier  = exp(-dVth / (n * Vt))   (stuck-off -> 0, stuck-on -> 1).
// This first-order factorization keeps campaign-scale simulation tractable;
// tests compare it against the exact EKV evaluation on small arrays.
//
// Tile partitioning: manufacturable arrays are bounded (~1024 rows/columns
// per tile), so the logical n x (n*bits*planes) array is realized as a grid
// of physical tiles (crossbar::TilePlan).  The compute-relevant partition is
// the row-band one: each band of rows senses its own partial column currents
// which the digital periphery accumulates per logical column.  The array
// therefore builds its bit-plane column cache PER BAND -- segment classes,
// presence and class weights are band-local, and cached row indices are
// band-relative -- so the engines can sweep tiles independently.  The
// all-zero TileShape default keeps one band covering every row, which is
// byte-for-byte the historical monolithic cache.
//
// Because the array is immutable once programmed, programming time also
// builds the cache: for every (band, logical column, bit, plane) the
// conducting cells are laid out contiguously as (band-relative row,
// multiplier) entries, and segments with identical content within a
// (band, column) are deduped into shared "segment classes" so the engine
// accumulates each distinct cell list once per evaluation instead of once
// per bit.  The cache is a pure re-layout of column()/bit_multiplier(): the
// engine's sums over it are bit-identical to decoding magnitudes on the fly
// (entries stay in ascending intra-column order, and dropped
// zero-multiplier cells only ever contributed exact +0.0 terms).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crossbar/bit_slicing.hpp"
#include "crossbar/mapping.hpp"
#include "crossbar/tiling.hpp"
#include "device/dg_fefet.hpp"
#include "device/variation.hpp"
#include "util/rng.hpp"

namespace fecim::crossbar {

class ProgrammedArray {
 public:
  ProgrammedArray(const QuantizedCouplings& couplings,
                  const CrossbarMapping& mapping,
                  const device::DgFefetParams& device_params,
                  const device::VariationParams& variation, std::uint64_t seed,
                  const TileShape& tiles = {});

  const CrossbarMapping& mapping() const noexcept { return mapping_; }
  const QuantizedCouplings& couplings() const noexcept { return couplings_; }
  const device::DgFefetParams& device_params() const noexcept {
    return device_params_;
  }
  const device::VariationParams& variation_params() const noexcept {
    return variation_;
  }

  /// Full-drive on-current at the given back-gate voltage (no variation).
  double on_current(double vbg) const noexcept;

  /// Sparse column view: entry k couples logical column `j` to row
  /// `rows()[k]` with signed magnitude `magnitudes()[k]`; the per-bit
  /// current multipliers for that entry start at `bit_multipliers(k)`.
  struct ColumnView {
    std::span<const std::uint32_t> rows;
    std::span<const std::int32_t> magnitudes;
    std::size_t first_entry;  ///< global entry index of rows[0]
  };
  ColumnView column(std::size_t j) const;

  /// Current multiplier of bit `bit` of global entry `entry`.
  double bit_multiplier(std::size_t entry, int bit) const;

  /// Raw per-(entry, bit) multiplier storage, entry-major
  /// (multipliers()[entry * bits + bit], stuck-off cells stored as 0).  The
  /// stochastic readout path decodes magnitudes per cell against it so the
  /// per-bit loads are contiguous.
  std::span<const float> multipliers() const noexcept { return multipliers_; }

  /// Number of programmed (nonzero-magnitude) logical cells.
  std::size_t num_programmed_entries() const noexcept {
    return couplings_.nonzeros();
  }

  /// Count of faulted bit-cells (stuck-off or stuck-on) among programmed
  /// cells -- reported by robustness benches.
  std::size_t num_faulted_bit_cells() const noexcept { return faulted_; }

  // -------------------------------------------------------------------------
  // Tile geometry.
  // -------------------------------------------------------------------------

  /// Tile request the array was programmed under (all-zero = monolithic).
  const TileShape& tile_shape() const noexcept { return tiles_; }
  /// Row bands of the tile grid, in ascending row order; always >= 1.
  std::span<const TileBand> bands() const noexcept { return bands_; }
  std::size_t num_bands() const noexcept { return bands_.size(); }

  /// Tile plan of this array for the given wire technology (per-tile and
  /// monolithic IR attenuation, grid geometry).  Row-band geometry is the
  /// one the execution path uses; plan_row_bands is the shared splitter.
  TilePlan plan(const circuit::WireTech& wire) const;

  /// Range of column j's cells that fall into row band `band`, as indices
  /// into the column() view (cells are stored in ascending row order, so
  /// each band owns one contiguous sub-range).
  struct BandCellRange {
    std::uint32_t begin = 0;  ///< first in-band cell index within column j
    std::uint32_t end = 0;    ///< one past the last in-band cell index
  };
  BandCellRange column_band_cells(std::size_t band, std::size_t j) const {
    const auto* ptr = band_cell_ptr_.data() + j * (bands_.size() + 1);
    return {ptr[band], ptr[band + 1]};
  }

  // -------------------------------------------------------------------------
  // Bit-plane column cache (precomputed at program time, one copy per row
  // band; see file comment).
  // -------------------------------------------------------------------------

  /// One distinct conducting-cell list of a (band, column).  Entries live in
  /// cache_rows()/cache_multipliers()[begin, end), in ascending intra-column
  /// order with zero-multiplier (stuck-off) cells dropped; cached rows are
  /// relative to the band's row_begin.
  struct SegmentClass {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    /// Every multiplier is exactly 1.0f (ideal or stuck-on cells): sums of
    /// k ones equal double(k) exactly, so the engine may count instead of
    /// accumulate.
    std::uint8_t all_unit = 0;
  };

  /// Physical (bit, plane) column of a logical column within one row band:
  /// whether any programmed cell of the band stores this bit (the tile
  /// controller senses the column even when every such cell is stuck off),
  /// and which class holds its conducting cells.  `cls` indexes
  /// column_classes(band, j).
  struct SegmentRef {
    std::uint8_t cls = 0;
    std::uint8_t present = 0;
  };

  /// Segment refs of logical column j in row band `band`, indexed
  /// [bit * 2 + plane] (plane 0 = positive weights, 1 = negative).
  std::span<const SegmentRef> column_segments(std::size_t band,
                                              std::size_t j) const {
    const auto stride = static_cast<std::size_t>(couplings_.bits()) * 2;
    return {segments_.data() + (band * num_columns() + j) * stride, stride};
  }

  /// Distinct segment classes of (band, column j) (at most bits * 2).
  std::span<const SegmentClass> column_classes(std::size_t band,
                                               std::size_t j) const {
    const std::size_t slot = band * num_columns() + j;
    return {classes_.data() + class_ptr_[slot],
            class_ptr_[slot + 1] - class_ptr_[slot]};
  }

  /// Net digital weight of each class of (band, column j), aligned with
  /// column_classes(band, j):  sum over the present segments referencing
  /// the class of  plane_sign * 2^bit.  Every term is an integer, so with a
  /// deterministic readout (one shared code per class) accumulating
  /// weight * code per class is bit-identical to the per-segment
  /// shift-and-add in any association.
  std::span<const double> column_class_weights(std::size_t band,
                                               std::size_t j) const {
    const std::size_t slot = band * num_columns() + j;
    return {class_weights_.data() + class_ptr_[slot],
            class_ptr_[slot + 1] - class_ptr_[slot]};
  }

  /// Number of present (bit, plane) physical columns of logical column j in
  /// row band `band` -- the ADC conversions one polarity pass of this
  /// column costs in that band's tile.
  std::uint32_t column_present_segments(std::size_t band,
                                        std::size_t j) const {
    return present_count_[band * num_columns() + j];
  }

  /// Present (band, segment) pairs of column j summed over all bands: the
  /// total per-polarity-pass ADC conversions the tiled walk performs.  With
  /// one band this equals column_present_segments(0, j).
  std::uint32_t column_total_present_segments(std::size_t j) const {
    return present_total_[j];
  }

  /// Present (bit, plane) segments of column j in the union over bands --
  /// the distinct logical segments the deterministic shared conversion
  /// evaluates.  partial-sum merges per pass = total - union.
  std::uint32_t column_union_present_segments(std::size_t j) const {
    return present_union_[j];
  }

  /// Row bands in which column j has at least one present segment -- the
  /// tiles activated when the column is driven.
  std::uint32_t column_active_bands(std::size_t j) const {
    return active_bands_[j];
  }

  /// Compacted conversion-slot metadata of (band, column j): entry i
  /// describes the i-th present segment in the canonical slot order
  /// (ascending bit, + plane before -), which is also the order the noise
  /// cursor walks.  column_slot_src()[i] is the segment's offset into a
  /// packed [plane][bit] accumulator block (plane * bits + bit), and
  /// column_slot_weights()[i] its signed digital weight plane_sign * 2^bit
  /// (an exact integer-valued double).  The stochastic sweep iterates these
  /// dense arrays instead of skipping absent segments branch-wise, which is
  /// what lets its conversion stage vectorize.
  std::span<const std::uint8_t> column_slot_src(std::size_t band,
                                                std::size_t j) const {
    const std::size_t slot = band * num_columns() + j;
    return {slot_src_.data() + slot_ptr_[slot],
            slot_ptr_[slot + 1] - slot_ptr_[slot]};
  }
  std::span<const double> column_slot_weights(std::size_t band,
                                              std::size_t j) const {
    const std::size_t slot = band * num_columns() + j;
    return {slot_weight_.data() + slot_ptr_[slot],
            slot_ptr_[slot + 1] - slot_ptr_[slot]};
  }

  std::span<const std::uint32_t> cache_rows() const noexcept { return cache_rows_; }
  std::span<const float> cache_multipliers() const noexcept {
    return cache_mults_;
  }

  /// Approximate heap footprint of the programmed array (cell multipliers,
  /// coupling copy, per-band column cache) -- the unit the array cache's
  /// byte budget accounts in (crossbar/array_cache.hpp).
  std::size_t approx_bytes() const noexcept;

 private:
  std::size_t num_columns() const noexcept { return couplings_.num_spins(); }
  void build_column_cache();

  QuantizedCouplings couplings_;
  CrossbarMapping mapping_;
  device::DgFefetParams device_params_;
  device::VariationParams variation_;
  TileShape tiles_;
  std::vector<TileBand> bands_;
  // multipliers_[entry * bits + bit]
  std::vector<float> multipliers_;
  std::size_t faulted_ = 0;

  // Column cache storage (see accessors above).  Band-major: the cache of
  // band b occupies the index range [b * n, (b + 1) * n) of the per-column
  // arrays, so a monolithic array keeps the historical single-block layout.
  std::vector<SegmentRef> segments_;  // [((band * n + j) * bits + bit) * 2 + plane]
  std::vector<SegmentClass> classes_;    // grouped per (band, column)
  std::vector<std::uint32_t> class_ptr_;  // (band, column) -> range in classes_
  std::vector<std::uint32_t> cache_rows_;  // band-relative rows
  std::vector<float> cache_mults_;
  std::vector<double> class_weights_;      // aligned with classes_
  std::vector<std::uint32_t> present_count_;  // per (band, column)
  std::vector<std::uint32_t> present_total_;  // per column, summed over bands
  std::vector<std::uint32_t> present_union_;  // per column, union over bands
  std::vector<std::uint32_t> active_bands_;   // per column
  std::vector<std::uint32_t> band_cell_ptr_;  // [j * (bands + 1) + band]
  std::vector<std::uint8_t> slot_src_;        // compacted slots, see accessor
  std::vector<double> slot_weight_;           // aligned with slot_src_
  std::vector<std::uint32_t> slot_ptr_;       // (band, column) -> slot range
};

}  // namespace fecim::crossbar
