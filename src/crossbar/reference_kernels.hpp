// Golden reference implementations of the simulation hot paths, preserved
// from the pre-cache direct algorithms.
//
// The optimized kernels (AnalogCrossbarEngine over the per-band bit-plane
// column cache, IsingModel::incremental_vmv over the persistent flip bitmap)
// are required to be floating-point-identical to these, with readout noise
// drawn from the shared counter-keyed ReadoutNoise streams (same canonical
// tile-aware conversion indexing on both sides -- flips, row band ascending,
// polarity, bit, plane -- so results match bit-for-bit without any
// draw-order coupling); tests/test_perf_equivalence.cpp and
// tests/test_tiled_engine.cpp assert that contract and
// bench/bench_hotpath.cpp measures the speedup against them.  They are
// intentionally slow -- do not call them outside tests/benches.
#pragma once

#include <array>
#include <cmath>

#include "circuit/sar_adc.hpp"
#include "crossbar/engine.hpp"
#include "crossbar/programmed_array.hpp"
#include "ising/ising_model.hpp"
#include "util/assert.hpp"

namespace fecim::crossbar::reference {

/// Per-cell magnitude-decoding analog evaluation (the seed algorithm,
/// extended to the tile grid): re-derives bit-plane column structure per
/// call -- independently of the array's cache -- and scans the flip set
/// linearly per row.  `adc`, `attenuation` (the logical-array calibration
/// factor), `band_attenuation` (per row band, from
/// AnalogCrossbarEngine::band_attenuations()) and `i_on_max` come from the
/// engine under test so both paths share one calibration; `noise` is the
/// run's counter-keyed readout cursor (engine side: begin_run /
/// readout_noise()), advanced by one index per present (band, segment)
/// conversion in the canonical order.
///
/// Contract encoded here (the engine mirrors it):
///  * stochastic readout (read noise or ADC noise on): one genuine
///    conversion -- one keyed draw, one quantization, per-tile calibration
///    by that band's attenuation -- per present (band, bit, plane) segment
///    and polarity pass;
///  * deterministic readout: the per-tile partial sums merge digitally and
///    the shared quantizer runs once per logical segment at the
///    logical-array calibration point, so the result is partition-invariant
///    (bit-identical across tile shapes whenever the partial sums regroup
///    exactly); the cursor and the ledger still advance by the physical
///    per-tile conversion count.
inline EincResult analog_evaluate(const ProgrammedArray& array,
                                  const circuit::SarAdc& adc,
                                  double attenuation,
                                  std::span<const double> band_attenuation,
                                  double i_on_max,
                                  std::span<const ising::Spin> spins,
                                  const ising::FlipSet& flips,
                                  const AnnealSignal& signal,
                                  ReadoutNoise& noise) {
  FECIM_EXPECTS(!flips.empty());
  const auto& mapping = array.mapping();
  const auto& couplings = array.couplings();
  FECIM_EXPECTS(spins.size() == mapping.num_spins());
  const auto bands = array.bands();
  FECIM_EXPECTS(band_attenuation.size() == bands.size());

  const int bits = couplings.bits();
  const double i_on = array.on_current(signal.vbg);
  const double read_noise_rel = array.variation_params().read_noise_rel;
  const bool deterministic =
      read_noise_rel <= 0.0 && adc.noise_sigma_current() <= 0.0;

  EincResult result;
  EngineTrace& trace = result.trace;
  trace.crossbar_passes = 4;
  trace.tile_ir_attenuation = band_attenuation[0];

  double accumulator = 0.0;  // deterministic shared-conversion accumulator
  std::vector<double> band_acc(bands.size(), 0.0);  // stochastic, per tile

  auto is_flipped = [&flips](std::uint32_t row) {
    for (const auto f : flips)
      if (f == row) return true;
    return false;
  };

  std::array<std::array<double, 2>, 16> mult_sum{};
  std::array<std::array<double, 2>, 16> mult_sq_sum{};
  std::array<std::array<bool, 2>, 16> column_present{};

  for (const auto j : flips) {
    const int q = -static_cast<int>(spins[j]);
    const auto view = array.column(j);

    // Deterministic cross-band totals and segment-presence union.
    std::array<std::array<std::array<double, 2>, 16>, 2> det_total{};
    std::array<std::array<bool, 2>, 16> union_present{};
    std::uint64_t total_present = 0;
    std::uint64_t active_bands = 0;

    for (std::size_t band = 0; band < bands.size(); ++band) {
      const std::uint32_t row_begin = bands[band].row_begin;
      const std::uint32_t row_end = bands[band].row_end;
      const double att_band = band_attenuation[band];

      for (auto& row : column_present) row = {false, false};
      bool any_present = false;
      for (std::size_t k = 0; k < view.rows.size(); ++k) {
        const auto row = view.rows[k];
        if (row < row_begin || row >= row_end) continue;
        const std::int32_t mag = view.magnitudes[k];
        const auto abs_mag = static_cast<std::uint32_t>(std::abs(mag));
        const int plane = mag < 0 ? 1 : 0;
        for (int b = 0; b < bits; ++b)
          if (abs_mag & (1u << b)) {
            column_present[static_cast<std::size_t>(b)]
                          [static_cast<std::size_t>(plane)] = true;
            any_present = true;
          }
      }
      if (!any_present) continue;  // this tile stores nothing of column j
      ++active_bands;

      for (const int p : {+1, -1}) {
        for (auto& row : mult_sum) row = {0.0, 0.0};
        for (auto& row : mult_sq_sum) row = {0.0, 0.0};

        for (std::size_t k = 0; k < view.rows.size(); ++k) {
          const auto i = view.rows[k];
          if (i < row_begin || i >= row_end) continue;
          if (static_cast<int>(spins[i]) != p || is_flipped(i)) continue;
          const std::int32_t mag = view.magnitudes[k];
          const auto abs_mag = static_cast<std::uint32_t>(std::abs(mag));
          const int plane = mag < 0 ? 1 : 0;
          const std::size_t entry = view.first_entry + k;
          for (int b = 0; b < bits; ++b) {
            if (!(abs_mag & (1u << b))) continue;
            const double m = array.bit_multiplier(entry, b);
            mult_sum[static_cast<std::size_t>(b)]
                    [static_cast<std::size_t>(plane)] += m;
            mult_sq_sum[static_cast<std::size_t>(b)]
                       [static_cast<std::size_t>(plane)] += m * m;
          }
        }

        const std::size_t bank = p > 0 ? 0 : 1;
        for (int b = 0; b < bits; ++b) {
          for (int plane = 0; plane < 2; ++plane) {
            if (!column_present[static_cast<std::size_t>(b)]
                               [static_cast<std::size_t>(plane)])
              continue;
            if (bank == 0) ++total_present;  // count once per segment
            if (deterministic) {
              // Merge the exact partial sum digitally; the shared
              // conversion happens after the band sweep.  The cursor still
              // advances one index per physical (band, segment) conversion.
              det_total[bank][static_cast<std::size_t>(b)]
                       [static_cast<std::size_t>(plane)] +=
                  mult_sum[static_cast<std::size_t>(b)]
                          [static_cast<std::size_t>(plane)];
              union_present[static_cast<std::size_t>(b)]
                           [static_cast<std::size_t>(plane)] = true;
              ++noise.next_conversion;
              ++trace.adc_conversions;
              continue;
            }
            double current = i_on * att_band *
                             mult_sum[static_cast<std::size_t>(b)]
                                     [static_cast<std::size_t>(plane)];
            // One keyed draw per conversion, scaled by the total
            // input-referred sigma (read + ADC noise in quadrature); the
            // expression tree matches the engine's exactly.
            const double noise_scale = (read_noise_rel * i_on) * att_band;
            const double noise_var_scale = noise_scale * noise_scale;
            const double adc_variance =
                adc.noise_sigma_current() * adc.noise_sigma_current();
            const double sigma =
                read_noise_rel > 0.0
                    ? readout_sigma(
                          noise_var_scale *
                              mult_sq_sum[static_cast<std::size_t>(b)]
                                         [static_cast<std::size_t>(plane)],
                          adc_variance)
                    : adc.noise_sigma_current();
            if (sigma > 0.0)
              current +=
                  sigma * noise.conversion.normal(noise.next_conversion);
            const std::uint32_t code = adc.convert_ideal(current);
            ++noise.next_conversion;
            const double plane_sign = plane == 0 ? 1.0 : -1.0;
            band_acc[band] += static_cast<double>(p * q) * plane_sign *
                              static_cast<double>(1u << b) *
                              static_cast<double>(code);
            ++trace.adc_conversions;
          }
        }
      }
    }

    if (deterministic) {
      // Shared conversion of the merged totals at the logical-array
      // calibration point -- once per logical segment, for every tile
      // shape.
      std::uint64_t union_count = 0;
      for (const int p : {+1, -1}) {
        const std::size_t bank = p > 0 ? 0 : 1;
        for (int b = 0; b < bits; ++b) {
          for (int plane = 0; plane < 2; ++plane) {
            if (!union_present[static_cast<std::size_t>(b)]
                              [static_cast<std::size_t>(plane)])
              continue;
            if (bank == 0) ++union_count;
            const double current =
                i_on * attenuation *
                det_total[bank][static_cast<std::size_t>(b)]
                         [static_cast<std::size_t>(plane)];
            const std::uint32_t code = adc.convert_ideal(current);
            const double plane_sign = plane == 0 ? 1.0 : -1.0;
            accumulator += static_cast<double>(p * q) * plane_sign *
                           static_cast<double>(1u << b) *
                           static_cast<double>(code);
          }
        }
      }
      trace.partial_sum_updates += 2 * (total_present - union_count);
    } else {
      std::uint64_t union_count = 0;
      for (int b = 0; b < bits; ++b)
        for (int plane = 0; plane < 2; ++plane) {
          // Union presence over bands, re-derived from the magnitudes.
          bool present = false;
          for (std::size_t k = 0; k < view.rows.size() && !present; ++k) {
            const auto abs_mag =
                static_cast<std::uint32_t>(std::abs(view.magnitudes[k]));
            present = (abs_mag & (1u << b)) &&
                      ((view.magnitudes[k] < 0 ? 1 : 0) == plane);
          }
          if (present) ++union_count;
        }
      trace.partial_sum_updates += 2 * (total_present - union_count);
    }
    trace.tile_activations += active_bands;
  }

  // Fixed digital calibration; the stochastic path calibrates each tile's
  // code sum by that tile's own attenuation.
  if (deterministic) {
    const double to_einc =
        couplings.scale() * adc.lsb_current() / (i_on_max * attenuation);
    result.e_inc = accumulator * to_einc;
  } else {
    double e_inc = 0.0;
    for (std::size_t band = 0; band < bands.size(); ++band) {
      const double to_einc_band = couplings.scale() * adc.lsb_current() /
                                  (i_on_max * band_attenuation[band]);
      e_inc += band_acc[band] * to_einc_band;
    }
    result.e_inc = e_inc;
  }
  const double f_hw = i_on / i_on_max;
  result.raw_vmv = f_hw > 0.0 ? result.e_inc / f_hw : 0.0;

  const auto n = static_cast<std::uint64_t>(mapping.num_spins());
  const auto t = static_cast<std::uint64_t>(flips.size());
  trace.mux_slot_cycles = 2 * mapping.slots_for_flips(flips);
  trace.row_drives = 2 * (n - t);
  trace.column_drives =
      2 * t * static_cast<std::uint64_t>(bits) *
      static_cast<std::uint64_t>(mapping.planes());
  return result;
}

/// Seed incremental VMV: rebuilds (and zero-fills) an n-sized flip bitmap on
/// every call.  Arithmetic is identical to IsingModel::incremental_vmv.
inline double incremental_vmv(const ising::IsingModel& model,
                              std::span<const ising::Spin> spins,
                              std::span<const std::uint32_t> flips) {
  const std::size_t n = model.num_spins();
  FECIM_EXPECTS(spins.size() == n);
  std::vector<std::uint8_t> flipped(n, 0);
  for (const auto idx : flips) {
    FECIM_EXPECTS(idx < n);
    FECIM_EXPECTS(!flipped[idx]);
    flipped[idx] = 1;
  }
  const auto& j_matrix = model.couplings();
  double acc = 0.0;
  for (const auto i : flips) {
    const double sigma_c_i = -static_cast<double>(spins[i]);
    const auto cols = j_matrix.row_cols(i);
    const auto vals = j_matrix.row_values(i);
    double inner = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const auto j = cols[k];
      if (!flipped[j]) inner += vals[k] * static_cast<double>(spins[j]);
    }
    acc += sigma_c_i * inner;
  }
  return acc;
}

}  // namespace fecim::crossbar::reference
