#include "crossbar/tiling.hpp"

#include "util/assert.hpp"

namespace fecim::crossbar {

std::vector<TileBand> plan_row_bands(std::size_t logical_rows,
                                     std::size_t max_rows) {
  FECIM_EXPECTS(logical_rows > 0);
  if (max_rows == 0 || max_rows >= logical_rows)
    return {TileBand{0, static_cast<std::uint32_t>(logical_rows)}};

  // Balance the load: distribute rows evenly instead of filling bands to
  // the maximum and leaving a ragged remainder band.
  const std::size_t grid_rows = (logical_rows + max_rows - 1) / max_rows;
  const std::size_t band_rows = (logical_rows + grid_rows - 1) / grid_rows;
  std::vector<TileBand> bands;
  bands.reserve(grid_rows);
  for (std::size_t begin = 0; begin < logical_rows; begin += band_rows) {
    const std::size_t end = std::min(begin + band_rows, logical_rows);
    bands.push_back(TileBand{static_cast<std::uint32_t>(begin),
                             static_cast<std::uint32_t>(end)});
  }
  FECIM_ENSURES(bands.size() == grid_rows);
  return bands;
}

TilePlan plan_tiles(const CrossbarMapping& mapping,
                    const TileConstraints& constraints,
                    double max_cell_current, double drive_voltage) {
  FECIM_EXPECTS(constraints.max_rows > 0 && constraints.max_columns > 0);
  FECIM_EXPECTS(drive_voltage > 0.0);

  TilePlan plan;
  plan.logical_rows = mapping.physical_rows();
  plan.logical_columns = mapping.physical_columns();

  const auto bands = plan_row_bands(plan.logical_rows, constraints.max_rows);
  plan.grid_rows = bands.size();
  plan.grid_columns = (plan.logical_columns + constraints.max_columns - 1) /
                      constraints.max_columns;
  plan.num_tiles = plan.grid_rows * plan.grid_columns;
  plan.tile_rows = bands.front().rows();
  plan.tile_columns =
      (plan.logical_columns + plan.grid_columns - 1) / plan.grid_columns;

  plan.tile_ir_attenuation = circuit::estimate_line_parasitics(
                                 plan.tile_rows, max_cell_current,
                                 drive_voltage, constraints.wire)
                                 .ir_attenuation;
  plan.monolithic_ir_attenuation = circuit::estimate_line_parasitics(
                                       plan.logical_rows, max_cell_current,
                                       drive_voltage, constraints.wire)
                                       .ir_attenuation;
  FECIM_ENSURES(plan.tile_ir_attenuation >=
                plan.monolithic_ir_attenuation - 1e-12);
  return plan;
}

TilePlan plan_tiles(const CrossbarMapping& mapping, const TileShape& shape,
                    double max_cell_current, double drive_voltage,
                    const circuit::WireTech& wire) {
  TileConstraints constraints;
  constraints.max_rows =
      shape.rows > 0 ? shape.rows : mapping.physical_rows();
  constraints.max_columns =
      shape.cols > 0 ? shape.cols : mapping.physical_columns();
  constraints.wire = wire;
  return plan_tiles(mapping, constraints, max_cell_current, drive_voltage);
}

}  // namespace fecim::crossbar
