#include "crossbar/tiling.hpp"

#include "util/assert.hpp"

namespace fecim::crossbar {

TilePlan plan_tiles(const CrossbarMapping& mapping,
                    const TileConstraints& constraints,
                    double max_cell_current, double drive_voltage) {
  FECIM_EXPECTS(constraints.max_rows > 0 && constraints.max_columns > 0);
  FECIM_EXPECTS(drive_voltage > 0.0);

  TilePlan plan;
  plan.logical_rows = mapping.physical_rows();
  plan.logical_columns = mapping.physical_columns();

  plan.grid_rows =
      (plan.logical_rows + constraints.max_rows - 1) / constraints.max_rows;
  plan.grid_columns = (plan.logical_columns + constraints.max_columns - 1) /
                      constraints.max_columns;
  plan.num_tiles = plan.grid_rows * plan.grid_columns;
  // Balance the load: distribute rows/columns evenly instead of filling
  // tiles to the maximum and leaving a ragged remainder tile.
  plan.tile_rows =
      (plan.logical_rows + plan.grid_rows - 1) / plan.grid_rows;
  plan.tile_columns =
      (plan.logical_columns + plan.grid_columns - 1) / plan.grid_columns;

  plan.tile_ir_attenuation = circuit::estimate_line_parasitics(
                                 plan.tile_rows, max_cell_current,
                                 drive_voltage, constraints.wire)
                                 .ir_attenuation;
  plan.monolithic_ir_attenuation = circuit::estimate_line_parasitics(
                                       plan.logical_rows, max_cell_current,
                                       drive_voltage, constraints.wire)
                                       .ir_attenuation;
  FECIM_ENSURES(plan.tile_ir_attenuation >=
                plan.monolithic_ir_attenuation - 1e-12);
  return plan;
}

}  // namespace fecim::crossbar
