// Multi-tile crossbar planning.
//
// The paper evaluates a single logical crossbar even at 3000 spins
// (3000 x 24000 bit-cells); manufacturable arrays are bounded (typically
// <= 1024 rows/columns per tile because of line parasitics and sense
// margin).  TilePlan partitions the logical array onto a grid of physical
// tiles, reports per-tile parasitics, and scales the peripheral overhead so
// campaign costs stay honest for large instances.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/parasitics.hpp"
#include "crossbar/mapping.hpp"

namespace fecim::crossbar {

struct TileConstraints {
  std::size_t max_rows = 1024;
  std::size_t max_columns = 1024;
  circuit::WireTech wire{};
};

/// User-facing tile request plumbed from the campaign/CLI layer down to the
/// programmed array: maximum physical rows/columns per tile, 0 = unbounded.
/// The all-zero default therefore reproduces the historical monolithic
/// execution exactly, for every instance size.
struct TileShape {
  std::size_t rows = 0;
  std::size_t cols = 0;

  bool monolithic() const noexcept { return rows == 0 && cols == 0; }
};

/// One horizontal band of the tile grid: the physical rows
/// [row_begin, row_end) a tile stack owns.  Row indices inside a band's
/// column cache are stored relative to `row_begin`.
struct TileBand {
  std::uint32_t row_begin = 0;
  std::uint32_t row_end = 0;

  std::uint32_t rows() const noexcept { return row_end - row_begin; }
};

/// Balanced partition of `logical_rows` rows into bands of at most
/// `max_rows` (0 = unbounded -> one band).  Shared by plan_tiles and
/// ProgrammedArray so the planner and the execution path can never disagree
/// about band boundaries.
std::vector<TileBand> plan_row_bands(std::size_t logical_rows,
                                     std::size_t max_rows);

struct TilePlan {
  std::size_t logical_rows = 0;
  std::size_t logical_columns = 0;
  std::size_t tile_rows = 0;      ///< rows per tile (<= max_rows)
  std::size_t tile_columns = 0;   ///< columns per tile (<= max_columns)
  std::size_t grid_rows = 0;      ///< tiles stacked vertically
  std::size_t grid_columns = 0;   ///< tiles side by side
  std::size_t num_tiles = 0;

  /// Per-tile source-line IR attenuation (rows per tile, worst case).
  double tile_ir_attenuation = 1.0;
  /// Attenuation if the same logical array were built as one monolithic
  /// tile -- quantifies what tiling buys.
  double monolithic_ir_attenuation = 1.0;

  /// Partial results that must be digitally accumulated per logical column
  /// (= tiles stacked along the row dimension).
  std::size_t partial_sums_per_column() const noexcept { return grid_rows; }
};

/// Plan the tiling of a mapped crossbar under the given constraints.
/// `max_cell_current` is the full-drive cell current used for the IR-drop
/// estimates.
TilePlan plan_tiles(const CrossbarMapping& mapping,
                    const TileConstraints& constraints,
                    double max_cell_current, double drive_voltage);

/// Same plan from a TileShape request (0 = unbounded on either axis).
TilePlan plan_tiles(const CrossbarMapping& mapping, const TileShape& shape,
                    double max_cell_current, double drive_voltage,
                    const circuit::WireTech& wire = {});

}  // namespace fecim::crossbar
