#include "device/dg_fefet.hpp"

namespace fecim::device {

double DgFefet::effective_vth(double vbg) const noexcept {
  const double vth0 = stored_one_ ? params_.vth_low : params_.vth_high;
  return vth0 - params_.back_gate_coupling * vbg;
}

double DgFefet::drain_current(double vfg, double vbg, double vds) const noexcept {
  return ekv_drain_current(params_.transistor, vfg, effective_vth(vbg), vds);
}

double DgFefet::isl_current(bool x, bool y, double z_vbg) const noexcept {
  if (!x || !y) return 0.0;
  return drain_current(params_.read_vfg, z_vbg, params_.read_vdl);
}

double DgFefet::on_current(const DgFefetParams& params, double vbg) noexcept {
  const DgFefet reference(params, /*stored_one=*/true);
  return reference.isl_current(true, true, vbg);
}

}  // namespace fecim::device
