// Double-gate (FDSOI) FeFET compact model, substituting for the 22 nm
// BSIM-IMG model [34] the paper simulates in SPECTRE.
//
// The ferroelectric front-gate stack stores a binary V_TH state
// (G = '1' -> low V_TH, G = '0' -> high V_TH); the non-ferroelectric buried
// oxide lets the back gate shift the effective threshold linearly without
// disturbing the stored polarization (Fig. 2(d)):
//
//   V_TH_eff(V_BG) = V_TH(G) - gamma * V_BG.
//
// With binary front-gate/drain drive the cell realizes the four-input
// product of Fig. 6(a):  I_SL = x * G * y * z  -- zero when any binary input
// or the stored bit is 0, and an analog function of the back-gate voltage z
// otherwise.  The normalized I_SL(V_BG) curve approximates the fractional
// annealing factor f(T) (Fig. 6(c)); see core/ft_calibration.
#pragma once

#include "device/ekv.hpp"

namespace fecim::device {

struct DgFefetParams {
  // Defaults are the core/ft_calibration.hpp fit of the normalized
  // I_SL(V_BG) curve against the paper's f(T) (RMS error ~2.5 %, Fig. 6(c));
  // i_spec is then scaled so the full-drive on-current at V_BG = 0.7 V lands
  // near the ~10 uA of Fig. 6(b) (wide read transistor).
  double vth_low = 1.30;   ///< stored '1' threshold at V_BG = 0 [V]
  double vth_high = 2.30;  ///< stored '0' threshold at V_BG = 0 [V]
  double back_gate_coupling = 0.205;  ///< gamma = -dV_TH/dV_BG [V/V]
  double read_vfg = 1.0;   ///< front-gate read voltage for x = 1 [V]
  double read_vdl = 1.0;   ///< data-line read voltage for y = 1 [V]
  double vbg_max = 0.7;    ///< annealing back-gate range top [V]
  EkvParams transistor{1.35e-3, 1.25, 0.0259, 0.02};
};

class DgFefet {
 public:
  explicit DgFefet(const DgFefetParams& params = {}, bool stored_one = false)
      : params_(params), stored_one_(stored_one) {}

  void store(bool one) noexcept { stored_one_ = one; }
  bool stored_one() const noexcept { return stored_one_; }

  /// Effective front-gate-referred threshold under back-gate bias.
  double effective_vth(double vbg) const noexcept;

  /// General-bias drain current (for I_D-V_G sweeps, Fig. 2(d)).
  double drain_current(double vfg, double vbg, double vds) const noexcept;

  /// The four-input product of Fig. 6(a): x (front gate) and y (data line)
  /// are binary, z is the analog back-gate voltage.  Output current in A.
  double isl_current(bool x, bool y, double z_vbg) const noexcept;

  /// I_SL at full drive with '1' stored -- the normalization reference for
  /// mapping currents onto f(T).
  static double on_current(const DgFefetParams& params, double vbg) noexcept;

  const DgFefetParams& params() const noexcept { return params_; }

 private:
  DgFefetParams params_;
  bool stored_one_;
};

}  // namespace fecim::device
