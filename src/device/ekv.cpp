#include "device/ekv.hpp"

#include <cmath>

namespace fecim::device {

double ekv_drain_current(const EkvParams& params, double vgs, double vth,
                         double vds) noexcept {
  if (vds <= 0.0) return 0.0;
  const double overdrive = (vgs - vth) / (2.0 * params.slope_factor *
                                          params.thermal_voltage);
  // log1p(exp(x)) with overflow-safe branch for large overdrive.
  const double interp =
      overdrive > 30.0 ? overdrive : std::log1p(std::exp(overdrive));
  const double forward = interp * interp;
  // Drain saturation: (1 - exp(-VDS/Vt)) rises to 1 within a few Vt, then
  // channel-length modulation adds the weak linear slope.
  const double sat = 1.0 - std::exp(-vds / params.thermal_voltage);
  return params.i_spec * forward * sat * (1.0 + params.lambda * vds);
}

double ekv_subthreshold_swing(const EkvParams& params) noexcept {
  return params.slope_factor * params.thermal_voltage * std::log(10.0);
}

}  // namespace fecim::device
