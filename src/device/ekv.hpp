// EKV-style long-channel MOSFET drain-current expression.
//
// Shared by the single-gate FeFET (Fig. 2a/b) and the DG FeFET (Fig. 2c/d)
// compact models.  The interpolation
//   I_D = I_spec * [ln(1 + exp((V_GS - V_TH) / (2 n V_t)))]^2 * f_sat(V_DS)
// reproduces the subthreshold exponential, the smooth transition around
// threshold, and square-law saturation with one continuous expression --
// exactly the regime span the annealer's back-gate sweep traverses.
#pragma once

namespace fecim::device {

struct EkvParams {
  double i_spec = 1e-6;            ///< specific current 2 n mu Cox (W/L) Vt^2 [A]
  double slope_factor = 1.25;      ///< n; SS = n * Vt * ln(10)
  double thermal_voltage = 0.0259; ///< Vt = kT/q at 300 K [V]
  double lambda = 0.02;            ///< channel-length modulation [1/V]
};

/// Drain current for gate overdrive computed against an externally supplied
/// threshold voltage (the ferroelectric state owns V_TH).
double ekv_drain_current(const EkvParams& params, double vgs, double vth,
                         double vds) noexcept;

/// Subthreshold swing implied by the parameters [V/decade].
double ekv_subthreshold_swing(const EkvParams& params) noexcept;

}  // namespace fecim::device
