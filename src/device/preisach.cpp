#include "device/preisach.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fecim::device {

PreisachFefet::PreisachFefet(const PreisachParams& params) : params_(params) {
  FECIM_EXPECTS(params_.grid_size >= 2);
  FECIM_EXPECTS(params_.v_span > 0.0);
  FECIM_EXPECTS(params_.memory_window > 0.0);

  const int n = params_.grid_size;
  const double step = 2.0 * params_.v_span / n;
  const double vc = params_.coercive_voltage;
  const double sigma = params_.density_sigma;

  double total_weight = 0.0;
  for (int ia = 0; ia < n; ++ia) {
    const double alpha = -params_.v_span + (ia + 0.5) * step;
    for (int ib = 0; ib < n; ++ib) {
      const double beta = -params_.v_span + (ib + 0.5) * step;
      if (beta > alpha) continue;  // Preisach half-plane
      const double da = (alpha - vc) / sigma;
      const double db = (beta + vc) / sigma;
      const double w = std::exp(-0.5 * (da * da + db * db));
      alpha_.push_back(alpha);
      beta_.push_back(beta);
      weight_.push_back(w);
      state_.push_back(-1);  // negatively poled (erased, high V_TH)
      total_weight += w;
    }
  }
  FECIM_ASSERT(total_weight > 0.0);
  for (auto& w : weight_) w /= total_weight;
  recompute_polarization();
}

void PreisachFefet::apply_gate_voltage(double voltage) {
  for (std::size_t k = 0; k < state_.size(); ++k) {
    if (voltage >= alpha_[k])
      state_[k] = 1;
    else if (voltage <= beta_[k])
      state_[k] = -1;
  }
  recompute_polarization();
}

void PreisachFefet::program(double amplitude) {
  FECIM_EXPECTS(amplitude > 0.0);
  apply_gate_voltage(amplitude);
  apply_gate_voltage(0.0);
}

void PreisachFefet::erase(double amplitude) {
  FECIM_EXPECTS(amplitude > 0.0);
  apply_gate_voltage(-amplitude);
  apply_gate_voltage(0.0);
}

double PreisachFefet::threshold_voltage() const noexcept {
  return params_.vth_center - 0.5 * params_.memory_window * polarization_;
}

double PreisachFefet::drain_current(double vg, double vds) const noexcept {
  return ekv_drain_current(params_.transistor, vg, threshold_voltage(), vds);
}

void PreisachFefet::recompute_polarization() noexcept {
  double p = 0.0;
  for (std::size_t k = 0; k < state_.size(); ++k)
    p += weight_[k] * static_cast<double>(state_[k]);
  polarization_ = p;
}

}  // namespace fecim::device
