// Scalar Preisach hysteresis model of the ferroelectric gate stack,
// substituting for the circuit-compatible FeFET compact model of Ni et al.
// [35] the paper simulates in SPECTRE.
//
// The polarization is the weighted sum of elementary hysterons on the
// (alpha, beta) half-plane (alpha >= beta): a hysteron switches up when the
// applied gate voltage exceeds alpha and down when it falls below beta.  A
// Gaussian weight density centered at (+Vc, -Vc) reproduces the measured
// saturation loop; the model inherits the classical Preisach properties
// (return-point memory / wiping-out, congruent minor loops), which the test
// suite checks explicitly.
//
// The FeFET's threshold voltage follows the polarization:
//   V_TH = vth_center - (memory_window / 2) * P,   P in [-1, +1],
// so +P saturation gives the low-V_TH ('1') state of Fig. 2(b).
#pragma once

#include <vector>

#include "device/ekv.hpp"

namespace fecim::device {

struct PreisachParams {
  int grid_size = 32;          ///< hysterons per axis
  double v_span = 5.0;         ///< alpha/beta modeled over [-v_span, +v_span]
  double coercive_voltage = 2.2;
  double density_sigma = 0.9;  ///< spread of the Gaussian hysteron density
  double vth_center = 0.3;     ///< V_TH at zero polarization [V]
  double memory_window = 1.0;  ///< V_TH(low P) - V_TH(high P) [V]
  EkvParams transistor{};      ///< read transistor underneath the FE stack
};

class PreisachFefet {
 public:
  explicit PreisachFefet(const PreisachParams& params = {});

  /// Apply one quasi-static gate voltage level (pulse plateau).
  void apply_gate_voltage(double voltage);

  /// Apply a program (+amplitude) or erase (-amplitude) pulse and return to
  /// 0 V.
  void program(double amplitude = 4.0);
  void erase(double amplitude = 4.0);

  /// Normalized remanent polarization in [-1, 1].
  double polarization() const noexcept { return polarization_; }

  /// Threshold voltage implied by the current polarization.
  double threshold_voltage() const noexcept;

  /// Read current at the given bias using the EKV transistor model and the
  /// ferroelectric V_TH (Fig. 2(b) I_D-V_G curves).
  double drain_current(double vg, double vds) const noexcept;

  const PreisachParams& params() const noexcept { return params_; }

 private:
  PreisachParams params_;
  // Hysteron lattice: state_[k] in {-1, +1}, weight_[k] >= 0, sum weight = 1.
  std::vector<double> alpha_;
  std::vector<double> beta_;
  std::vector<double> weight_;
  std::vector<signed char> state_;
  double polarization_ = 0.0;

  void recompute_polarization() noexcept;
};

}  // namespace fecim::device
