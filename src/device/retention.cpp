#include "device/retention.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace fecim::device {

RetentionModel::RetentionModel(const RetentionParams& params)
    : params_(params) {
  FECIM_EXPECTS(params_.decay_per_decade >= 0.0);
  FECIM_EXPECTS(params_.time_reference > 0.0);
  FECIM_EXPECTS(params_.read_disturb >= 0.0);
  FECIM_EXPECTS(params_.min_polarization > 0.0 &&
                params_.min_polarization < 1.0);
}

double RetentionModel::polarization_fraction(double elapsed_seconds,
                                             std::uint64_t reads) const {
  FECIM_EXPECTS(elapsed_seconds >= 0.0);
  const double time_loss =
      params_.decay_per_decade *
      std::log10(1.0 + elapsed_seconds / params_.time_reference);
  const double read_loss =
      params_.read_disturb * static_cast<double>(reads);
  return std::clamp(1.0 - time_loss - read_loss, 0.0, 1.0);
}

double RetentionModel::seconds_until_refresh(double reads_per_second) const {
  FECIM_EXPECTS(reads_per_second >= 0.0);
  // Solve 1 - k*log10(1 + t/t0) - r*t = threshold for t by bisection (the
  // expression is monotone decreasing in t).
  const double target = params_.min_polarization;
  double lo = 0.0;
  double hi = 1.0;
  auto fraction_at = [&](double t) {
    return polarization_fraction(
        t, static_cast<std::uint64_t>(reads_per_second * t));
  };
  if (params_.decay_per_decade == 0.0 &&
      params_.read_disturb * reads_per_second == 0.0)
    return std::numeric_limits<double>::infinity();
  while (fraction_at(hi) > target) {
    hi *= 2.0;
    if (hi > 1e18) return std::numeric_limits<double>::infinity();
  }
  for (int iteration = 0; iteration < 200; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    (fraction_at(mid) > target ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

std::uint64_t RetentionModel::refreshes_needed(double total_seconds,
                                               double reads_per_second) const {
  FECIM_EXPECTS(total_seconds >= 0.0);
  const double interval = seconds_until_refresh(reads_per_second);
  if (!std::isfinite(interval) || interval >= total_seconds) return 0;
  return static_cast<std::uint64_t>(std::floor(total_seconds / interval));
}

}  // namespace fecim::device
