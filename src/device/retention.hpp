// Ferroelectric retention / read-disturb model.
//
// FeFET polarization relaxes over time (depolarization field) and degrades
// slightly with read cycling; both shrink the memory window and hence the
// on/off margin of the stored couplings.  The standard empirical model is a
// logarithmic decay of the remanent polarization:
//
//   P(t) = P0 * (1 - k_ret * log10(1 + t / t0)),
//
// plus a per-read disturb term.  The annealer re-programs the array when the
// projected margin falls below a threshold; plan_refresh() computes that
// interval so campaigns can charge the re-programming cost honestly.
#pragma once

#include <cstdint>

namespace fecim::device {

struct RetentionParams {
  double decay_per_decade = 0.02;   ///< fractional P loss per time decade
  double time_reference = 1.0;      ///< t0 [s]
  double read_disturb = 1e-9;       ///< fractional P loss per read pulse
  double min_polarization = 0.5;    ///< refresh threshold (fraction of P0)
};

class RetentionModel {
 public:
  explicit RetentionModel(const RetentionParams& params = {});

  /// Remaining polarization fraction after `elapsed_seconds` and `reads`
  /// read pulses, starting from full remanence (1.0).  Clamped to [0, 1].
  double polarization_fraction(double elapsed_seconds,
                               std::uint64_t reads = 0) const;

  /// Memory-window fraction tracks the polarization fraction directly
  /// (V_TH shift is linear in P).
  double memory_window_fraction(double elapsed_seconds,
                                std::uint64_t reads = 0) const {
    return polarization_fraction(elapsed_seconds, reads);
  }

  /// Seconds until the polarization fraction reaches the refresh threshold
  /// assuming `reads_per_second` read pulses.
  double seconds_until_refresh(double reads_per_second) const;

  /// Number of array refreshes needed over a campaign of `total_seconds`
  /// at the given read rate (0 when retention outlasts the campaign).
  std::uint64_t refreshes_needed(double total_seconds,
                                 double reads_per_second) const;

  const RetentionParams& params() const noexcept { return params_; }

 private:
  RetentionParams params_;
};

}  // namespace fecim::device
