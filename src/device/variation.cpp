#include "device/variation.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fecim::device {

CellVariation::CellVariation(std::size_t num_cells,
                             const VariationParams& params,
                             std::uint64_t seed) {
  FECIM_EXPECTS(params.vth_sigma >= 0.0);
  FECIM_EXPECTS(params.read_noise_rel >= 0.0);
  FECIM_EXPECTS(params.stuck_off_rate >= 0.0 && params.stuck_on_rate >= 0.0);
  FECIM_EXPECTS(params.stuck_off_rate + params.stuck_on_rate <= 1.0);

  const util::NoiseStream vth(seed, util::stream_site::kCellVth);
  const util::NoiseStream fault(seed, util::stream_site::kCellFault);
  vth_offset_.resize(num_cells);
  fault_.resize(num_cells, CellFault::kNone);
  for (std::size_t c = 0; c < num_cells; ++c) {
    vth_offset_[c] =
        params.vth_sigma > 0.0 ? vth.normal(c, 0.0, params.vth_sigma) : 0.0;
    const double roll = fault.uniform01(c);
    if (roll < params.stuck_off_rate)
      fault_[c] = CellFault::kStuckOff;
    else if (roll < params.stuck_off_rate + params.stuck_on_rate)
      fault_[c] = CellFault::kStuckOn;
  }
}

double CellVariation::vth_offset(std::size_t cell) const {
  FECIM_EXPECTS(cell < vth_offset_.size());
  return vth_offset_[cell];
}

CellFault CellVariation::fault(std::size_t cell) const {
  FECIM_EXPECTS(cell < fault_.size());
  return fault_[cell];
}

std::size_t CellVariation::count_faults() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(fault_.begin(), fault_.end(),
                    [](CellFault f) { return f != CellFault::kNone; }));
}

double apply_read_noise(double current, const VariationParams& params,
                        const util::NoiseStream& stream,
                        std::uint64_t conversion_index) noexcept {
  if (params.read_noise_rel <= 0.0 || current == 0.0) return current;
  const double noisy =
      current *
      (1.0 + stream.normal(conversion_index, 0.0, params.read_noise_rel));
  return std::max(0.0, noisy);
}

}  // namespace fecim::device
