// Non-ideality model for the crossbar cells: device-to-device threshold
// spread (programming variation), cycle-to-cycle read noise, and stuck-at
// faults.  This is the "custom device noise model" the algorithm is
// evaluated against.
//
// All draws come from counter-keyed noise streams (util::NoiseStream):
// programming-time variation is keyed per cell on the kCellVth / kCellFault
// sites, read noise per conversion on kReadNoise.  A cell's offset or fault
// is therefore a pure function of (seed, cell index) -- independent of how
// many other cells exist or in what order they are sampled.  See
// docs/noise-model.md.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace fecim::device {

struct VariationParams {
  double vth_sigma = 0.0;        ///< D2D threshold spread [V], applied once
  double read_noise_rel = 0.0;   ///< C2C relative current noise per read
  double stuck_off_rate = 0.0;   ///< fraction of cells stuck at I = 0
  double stuck_on_rate = 0.0;    ///< fraction stuck at full on-current

  bool ideal() const noexcept {
    return vth_sigma == 0.0 && read_noise_rel == 0.0 &&
           stuck_off_rate == 0.0 && stuck_on_rate == 0.0;
  }
};

enum class CellFault : std::uint8_t { kNone = 0, kStuckOff = 1, kStuckOn = 2 };

/// Per-cell static variation state, sampled once at programming time from
/// the counter-keyed kCellVth / kCellFault streams of `seed`: cell c's
/// offset and fault are draws at index c, reproducible in isolation.
class CellVariation {
 public:
  CellVariation() = default;
  CellVariation(std::size_t num_cells, const VariationParams& params,
                std::uint64_t seed);

  std::size_t size() const noexcept { return vth_offset_.size(); }
  double vth_offset(std::size_t cell) const;
  CellFault fault(std::size_t cell) const;
  std::size_t count_faults() const noexcept;

 private:
  std::vector<double> vth_offset_;
  std::vector<CellFault> fault_;
};

/// Apply cycle-to-cycle read noise to a just-computed cell current, drawing
/// the relative-noise normal at `conversion_index` of `stream` (site
/// kReadNoise).
double apply_read_noise(double current, const VariationParams& params,
                        const util::NoiseStream& stream,
                        std::uint64_t conversion_index) noexcept;

}  // namespace fecim::device
