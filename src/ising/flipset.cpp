#include "ising/flipset.hpp"

#include "util/assert.hpp"

namespace fecim::ising {

FlipSet random_flip_set(std::size_t n_flippable, std::size_t t,
                        util::Rng& rng) {
  FECIM_EXPECTS(t > 0);
  FECIM_EXPECTS(t <= n_flippable);
  return rng.sample_without_replacement(static_cast<std::uint32_t>(n_flippable),
                                        static_cast<std::uint32_t>(t));
}

SweepFlipGenerator::SweepFlipGenerator(std::size_t n_flippable, std::size_t t)
    : n_(n_flippable), t_(t) {
  FECIM_EXPECTS(t > 0);
  FECIM_EXPECTS(t <= n_flippable);
}

FlipSet SweepFlipGenerator::next() {
  FlipSet flips(t_);
  for (std::size_t i = 0; i < t_; ++i)
    flips[i] = static_cast<std::uint32_t>((cursor_ + i) % n_);
  cursor_ = (cursor_ + t_) % n_;
  return flips;
}

}  // namespace fecim::ising
