#include "ising/flipset.hpp"

#include "util/assert.hpp"

namespace fecim::ising {

FlipSet random_flip_set(std::size_t n_flippable, std::size_t t,
                        util::Rng& rng) {
  FlipSet flips;
  random_flip_set_into(flips, n_flippable, t, rng);
  return flips;
}

void random_flip_set_into(FlipSet& out, std::size_t n_flippable,
                          std::size_t t, util::Rng& rng) {
  FECIM_EXPECTS(t > 0);
  FECIM_EXPECTS(t <= n_flippable);
  rng.sample_without_replacement_into(static_cast<std::uint32_t>(n_flippable),
                                      static_cast<std::uint32_t>(t), out);
}

SweepFlipGenerator::SweepFlipGenerator(std::size_t n_flippable, std::size_t t)
    : n_(n_flippable), t_(t) {
  FECIM_EXPECTS(t > 0);
  FECIM_EXPECTS(t <= n_flippable);
}

FlipSet SweepFlipGenerator::next() {
  FlipSet flips;
  next_into(flips);
  return flips;
}

void SweepFlipGenerator::next_into(FlipSet& flips) {
  flips.clear();
  flips.reserve(t_);
  for (std::size_t i = 0; i < t_; ++i)
    flips.push_back(static_cast<std::uint32_t>((cursor_ + i) % n_));
  cursor_ = (cursor_ + t_) % n_;
}

}  // namespace fecim::ising
