// Flip-set generation: which |F| = t spins a move proposes to flip.
//
// The paper holds |F| constant, which is what turns the O(n^2) direct-E
// VMV into the O(n) incremental form (Fig. 5: (n - |F|) * |F| terms).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace fecim::ising {

using FlipSet = std::vector<std::uint32_t>;

/// Uniformly random set of `t` distinct spin indices out of `n_flippable`.
FlipSet random_flip_set(std::size_t n_flippable, std::size_t t,
                        util::Rng& rng);

/// Allocation-free variant for annealer inner loops: clears and refills
/// `out`, reusing its capacity.  Same RNG draw order and contents as
/// random_flip_set for the same engine state.
void random_flip_set_into(FlipSet& out, std::size_t n_flippable,
                          std::size_t t, util::Rng& rng);

/// Deterministic sweep generator: consecutive windows of `t` indices,
/// wrapping around.  Useful for tests and for sweep-style annealing modes.
class SweepFlipGenerator {
 public:
  SweepFlipGenerator(std::size_t n_flippable, std::size_t t);

  FlipSet next();

  /// Allocation-free next(): clears and refills `out`.
  void next_into(FlipSet& out);

 private:
  std::size_t n_;
  std::size_t t_;
  std::size_t cursor_ = 0;
};

}  // namespace fecim::ising
