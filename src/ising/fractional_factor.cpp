#include "ising/fractional_factor.hpp"

#include "util/assert.hpp"

namespace fecim::ising {

FractionalFactor::FractionalFactor() : FractionalFactor(Coefficients{}) {}

FractionalFactor::FractionalFactor(const Coefficients& coefficients)
    : coefficients_(coefficients) {
  FECIM_EXPECTS(coefficients_.a != 0.0);
  FECIM_EXPECTS(coefficients_.b != 0.0);
  // Solve f(T) = 0 and f(T) = 1 for the paper's functional form; both must
  // exist with t_min < t_max and f increasing between them.
  const auto& k = coefficients_;
  // f(T) = a/(bT + c) + d = v  ->  T = (a/(v - d) - c) / b
  auto invert = [&k](double v) { return (k.a / (v - k.d) - k.c) / k.b; };
  t_min_ = invert(0.0);
  t_max_ = invert(1.0);
  FECIM_EXPECTS(t_min_ < t_max_);
  FECIM_EXPECTS((*this)(0.5 * (t_min_ + t_max_)) > 0.0);
}

double FractionalFactor::operator()(double temperature) const {
  FECIM_EXPECTS(temperature >= t_min_ - 1e-9 &&
                temperature <= t_max_ + 1e-9);
  const auto& k = coefficients_;
  return k.a / (k.b * temperature + k.c) + k.d;
}

double FractionalFactor::temperature_for(double f) const {
  FECIM_EXPECTS(f >= 0.0 && f <= 1.0);
  const auto& k = coefficients_;
  return (k.a / (f - k.d) - k.c) / k.b;
}

}  // namespace fecim::ising
