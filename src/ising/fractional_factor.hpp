// The fractional annealing factor of the incremental-E transformation
// (paper Eq. 10/11):
//
//   e^(-dE/T) is approximated through   E_inc = sigma_r^T J sigma_c * f(T),
//   f(T) = a / (b*T + c) + d,
//
// with the paper's constants a=1, b=-0.006, c=5, d=-0.2 (Fig. 6(c)), i.e.
// f(T) = 0.2*T / (833.3 - T): zero at T=0, unity at T_max = 694.44, strictly
// increasing, and implementable as a normalized DG FeFET on-current.
#pragma once

namespace fecim::ising {

class FractionalFactor {
 public:
  struct Coefficients {
    double a = 1.0;
    double b = -0.006;
    double c = 5.0;
    double d = -0.2;
  };

  /// Paper-default coefficients.
  FractionalFactor();
  explicit FractionalFactor(const Coefficients& coefficients);

  /// f(T); valid for T in [0, t_max()].
  double operator()(double temperature) const;

  /// Temperature at which f reaches 1 (the annealing start temperature).
  double t_max() const noexcept { return t_max_; }

  /// Temperature at which f reaches 0 (the annealing end temperature).
  double t_min() const noexcept { return t_min_; }

  /// Inverse map: the temperature whose factor equals `f` (f in [0, 1]).
  double temperature_for(double f) const;

  const Coefficients& coefficients() const noexcept { return coefficients_; }

 private:
  Coefficients coefficients_;
  double t_min_;
  double t_max_;
};

}  // namespace fecim::ising
