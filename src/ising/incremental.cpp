#include "ising/incremental.hpp"

#include "util/assert.hpp"

namespace fecim::ising {

IncrementalVectors make_incremental_vectors(std::span<const Spin> spins,
                                            const FlipSet& flips) {
  const std::size_t n = spins.size();
  IncrementalVectors out;
  out.sigma_f.assign(n, 0);
  out.sigma_c.assign(n, 0);
  out.sigma_r.assign(n, 0);

  for (const auto idx : flips) {
    FECIM_EXPECTS(idx < n);
    FECIM_EXPECTS(out.sigma_f[idx] == 0);
    out.sigma_f[idx] = 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    // sigma_new_i = sigma_i * (1 - 2 sigma_f_i)
    const auto sigma_new =
        static_cast<std::int8_t>(spins[i] * (1 - 2 * out.sigma_f[i]));
    if (out.sigma_f[i])
      out.sigma_c[i] = sigma_new;
    else
      out.sigma_r[i] = sigma_new;
  }
  return out;
}

double incremental_vmv_reference(const linalg::CsrMatrix& j,
                                 const IncrementalVectors& vectors) {
  const std::size_t n = j.rows();
  FECIM_EXPECTS(vectors.sigma_r.size() == n && vectors.sigma_c.size() == n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    if (vectors.sigma_r[r] == 0) continue;
    const auto cols = j.row_cols(r);
    const auto vals = j.row_values(r);
    double inner = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k)
      inner += vals[k] * static_cast<double>(vectors.sigma_c[cols[k]]);
    acc += static_cast<double>(vectors.sigma_r[r]) * inner;
  }
  return acc;
}

ComplexityCount count_product_terms(std::size_t n, std::size_t flips) noexcept {
  ComplexityCount count{};
  count.direct_terms = static_cast<std::uint64_t>(n) * n;
  count.incremental_terms =
      static_cast<std::uint64_t>(n - flips) * static_cast<std::uint64_t>(flips);
  return count;
}

}  // namespace fecim::ising
