// The incremental-E transformation (paper Sec. 3.2).
//
// Given the current configuration sigma and a flip set F, build the vectors
//   sigma_f : logical flip mask                  (Eq. before (7))
//   sigma_c = sigma_new o sigma_f                (Eq. 7)  -- flipped values
//   sigma_r = sigma_new o (1 - sigma_f)          (Eq. 8)  -- unflipped values
// so that   dE = E_new - E = 4 sigma_r^T J sigma_c        (Eq. 9).
//
// This header also exposes the product-term counting used to reproduce the
// complexity-reduction figure (Fig. 5): direct-E evaluates n^2 terms, the
// incremental form (n - |F|) * |F|.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ising/flipset.hpp"
#include "ising/spin.hpp"
#include "linalg/csr_matrix.hpp"

namespace fecim::ising {

/// Dense representation of the transformation inputs handed to the crossbar.
/// sigma_c/sigma_r hold values in {-1, 0, +1}; exactly |F| entries of
/// sigma_c and n - |F| entries of sigma_r are nonzero, and their supports
/// are disjoint.
struct IncrementalVectors {
  std::vector<std::int8_t> sigma_f;  ///< 1 where flipped, else 0
  std::vector<std::int8_t> sigma_c;  ///< new values of flipped spins
  std::vector<std::int8_t> sigma_r;  ///< values of unflipped spins
};

/// Build sigma_f / sigma_c / sigma_r for a proposed move (sigma_new is
/// derived internally as sigma o (1 - 2 sigma_f); Alg. 1 lines 4-5).
IncrementalVectors make_incremental_vectors(std::span<const Spin> spins,
                                            const FlipSet& flips);

/// Reference (dense) evaluation of sigma_r^T J sigma_c from the transformed
/// vectors.  The IsingModel::incremental_vmv fast path must agree exactly.
double incremental_vmv_reference(const linalg::CsrMatrix& j,
                                 const IncrementalVectors& vectors);

/// Product-term counts of Fig. 5 (dense-form arithmetic complexity).
struct ComplexityCount {
  std::uint64_t direct_terms;       ///< n^2
  std::uint64_t incremental_terms;  ///< (n - |F|) * |F|
};
ComplexityCount count_product_terms(std::size_t n, std::size_t flips) noexcept;

}  // namespace fecim::ising
