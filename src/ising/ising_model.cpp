#include "ising/ising_model.hpp"

#include <limits>

#include "util/assert.hpp"

namespace fecim::ising {

IsingModel::IsingModel(linalg::CsrMatrix couplings, std::vector<double> fields,
                       double constant)
    : n_(couplings.rows()),
      j_(std::move(couplings)),
      h_(std::move(fields)),
      constant_(constant),
      ancilla_(n_) {
  FECIM_EXPECTS(j_.cols() == n_);
  FECIM_EXPECTS(h_.empty() || h_.size() == n_);
  if (h_.empty()) h_.assign(n_, 0.0);
  FECIM_EXPECTS(j_.is_symmetric(1e-12));
  for (std::size_t i = 0; i < n_; ++i) FECIM_EXPECTS(j_.at(i, i) == 0.0);
}

bool IsingModel::has_fields() const noexcept {
  for (const double h : h_)
    if (h != 0.0) return true;
  return false;
}

double IsingModel::energy(std::span<const Spin> spins) const {
  FECIM_EXPECTS(spins.size() == n_);
  double quad = 0.0;
  double linear = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    const auto cols = j_.row_cols(i);
    const auto vals = j_.row_values(i);
    double inner = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k)
      inner += vals[k] * static_cast<double>(spins[cols[k]]);
    quad += static_cast<double>(spins[i]) * inner;
    linear += h_[i] * static_cast<double>(spins[i]);
  }
  return quad + linear + constant_;
}

double IsingModel::incremental_vmv(std::span<const Spin> spins,
                                   std::span<const std::uint32_t> flips) const {
  FECIM_EXPECTS(spins.size() == n_);
  // sigma_c = sigma_new restricted to flipped indices (sigma_new_i = -sigma_i
  // there); sigma_r = sigma_new restricted to unflipped indices (= sigma_j).
  // The flip set is small, so mark membership in a scratch bitmap.  The
  // bitmap persists across calls (only the |F| touched bits are cleared at
  // the end) -- zero-filling n bytes per call dominated the whole evaluation
  // at campaign scale.
  thread_local std::vector<std::uint8_t> flipped;
  if (flipped.size() < n_) flipped.resize(n_, 0);
  std::size_t marked = 0;
  for (; marked < flips.size(); ++marked) {
    const auto idx = flips[marked];
    if (idx >= n_ || flipped[idx]) break;
    flipped[idx] = 1;
  }
  if (marked != flips.size()) {
    const auto idx = flips[marked];
    const bool duplicate = idx < n_ && flipped[idx] != 0;
    for (std::size_t b = 0; b < marked; ++b) flipped[flips[b]] = 0;
    FECIM_EXPECTS(idx < n_);
    FECIM_EXPECTS(!duplicate);  // duplicate flips cancel; reject them
  }

  double acc = 0.0;
  for (const auto i : flips) {
    const double sigma_c_i = -static_cast<double>(spins[i]);
    const auto cols = j_.row_cols(i);
    const auto vals = j_.row_values(i);
    double inner = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const auto j = cols[k];
      if (!flipped[j]) inner += vals[k] * static_cast<double>(spins[j]);
    }
    acc += sigma_c_i * inner;
  }
  for (const auto idx : flips) flipped[idx] = 0;
  return acc;
}

double IsingModel::delta_energy(std::span<const Spin> spins,
                                std::span<const std::uint32_t> flips) const {
  double field_term = 0.0;
  for (const auto i : flips) {
    FECIM_EXPECTS(i < n_);
    // sigma_new_i = -sigma_i, so h_i * (sigma_new_i - sigma_i) = -2 h_i sigma_i
    field_term += -2.0 * h_[i] * static_cast<double>(spins[i]);
  }
  return 4.0 * incremental_vmv(spins, flips) + field_term;
}

IsingModel IsingModel::with_ancilla() const {
  if (!has_fields()) {
    IsingModel copy = *this;
    return copy;
  }
  linalg::CsrMatrix::Builder builder(n_ + 1, n_ + 1);
  for (std::size_t r = 0; r < n_; ++r) {
    const auto cols = j_.row_cols(r);
    const auto vals = j_.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      builder.add(r, cols[k], vals[k]);
    // sigma^T J' sigma double-counts the ancilla pair, so store h_i / 2 on
    // each triangle: 2 * (h_i/2) * sigma_i * 1 == h_i sigma_i.
    if (h_[r] != 0.0) builder.add_symmetric(r, n_, h_[r] / 2.0);
  }
  IsingModel out(builder.build(), std::vector<double>(n_ + 1, 0.0), constant_);
  out.ancilla_ = n_;  // pinned spin lives at the last index
  return out;
}

std::pair<SpinVector, double> IsingModel::brute_force_ground_state() const {
  const std::size_t flippable = num_flippable();
  FECIM_EXPECTS(flippable <= 24);
  const std::uint64_t combos = std::uint64_t{1} << flippable;

  SpinVector best;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::uint64_t bits = 0; bits < combos; ++bits) {
    SpinVector candidate = spins_from_bits(bits, flippable);
    if (has_ancilla()) candidate.push_back(Spin{1});
    const double e = energy(candidate);
    if (e < best_energy) {
      best_energy = e;
      best = std::move(candidate);
    }
  }
  FECIM_ENSURES(!best.empty());
  return {best, best_energy};
}

}  // namespace fecim::ising
