// Ising Hamiltonian H(sigma) = sigma^T J sigma + h^T sigma + c.
//
// J is stored symmetric with zero diagonal (both triangles populated), so
// sigma^T J sigma counts every coupling twice -- the same convention the
// paper's E = sigma^T J sigma uses.  External fields h are kept explicit;
// with_ancilla() folds them into a pure quadratic form (one always-up spin)
// for hardware mapping, since the crossbar evaluates quadratic terms only.
#pragma once

#include <span>

#include "ising/spin.hpp"
#include "linalg/csr_matrix.hpp"

namespace fecim::ising {

class IsingModel {
 public:
  /// `couplings` must be square/symmetric with zero diagonal; `fields` may be
  /// empty (treated as all-zero) or of matching size.
  IsingModel(linalg::CsrMatrix couplings, std::vector<double> fields = {},
             double constant = 0.0);

  std::size_t num_spins() const noexcept { return n_; }
  const linalg::CsrMatrix& couplings() const noexcept { return j_; }
  std::span<const double> fields() const noexcept { return h_; }
  double constant() const noexcept { return constant_; }
  bool has_fields() const noexcept;

  /// Full O(n^2)-form energy sigma^T J sigma + h^T sigma + c (the direct-E
  /// computation current annealers perform each iteration).
  double energy(std::span<const Spin> spins) const;

  /// Exact energy change if the spins at `flips` were flipped; O(|F| * deg)
  /// via the incremental identity dE = 4 sigma_r^T J sigma_c + 2 h^T sigma_c.
  double delta_energy(std::span<const Spin> spins,
                      std::span<const std::uint32_t> flips) const;

  /// Pure quadratic part sigma_r^T J sigma_c for a proposed flip set -- the
  /// quantity the CiM crossbar computes (paper Eq. 9 without the factor 4).
  double incremental_vmv(std::span<const Spin> spins,
                         std::span<const std::uint32_t> flips) const;

  /// Fold fields into couplings by adding one ancilla spin pinned to +1
  /// (index n).  The returned model has no fields and satisfies
  /// E'(sigma, +1) == E(sigma).
  IsingModel with_ancilla() const;

  /// Index of the pinned ancilla spin, or num_spins() when none exists.
  std::size_t ancilla_index() const noexcept { return ancilla_; }
  bool has_ancilla() const noexcept { return ancilla_ < n_; }

  /// Number of spins a move generator may flip (excludes the ancilla).
  std::size_t num_flippable() const noexcept { return has_ancilla() ? n_ - 1 : n_; }

  /// Exhaustive ground-state search; requires num_flippable() <= 24.
  /// Returns the minimizing configuration (ancilla pinned to +1 if present).
  std::pair<SpinVector, double> brute_force_ground_state() const;

 private:
  std::size_t n_;
  linalg::CsrMatrix j_;
  std::vector<double> h_;
  double constant_;
  std::size_t ancilla_;
};

}  // namespace fecim::ising
