#include "ising/local_field.hpp"

#include "util/assert.hpp"

namespace fecim::ising {

void LocalFieldCache::build(const IsingModel& model,
                            std::span<const Spin> spins) {
  const std::size_t n = model.num_spins();
  FECIM_EXPECTS(spins.size() == n);
  h_.assign(n, 0.0);
  const auto& j = model.couplings();
  for (std::size_t i = 0; i < n; ++i) {
    const auto cols = j.row_cols(i);
    const auto vals = j.row_values(i);
    double acc = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k)
      acc += vals[k] * static_cast<double>(spins[cols[k]]);
    h_[i] = acc;
  }
}

double LocalFieldCache::vmv(const IsingModel& model,
                            std::span<const Spin> spins,
                            std::span<const std::uint32_t> flips) const {
  FECIM_EXPECTS(ready());
  FECIM_EXPECTS(spins.size() == h_.size());
  // Beyond small flip sets the pairwise correction loses to a row walk.
  if (flips.size() > 16) return model.incremental_vmv(spins, flips);

  const auto& j = model.couplings();
  double acc = 0.0;
  for (const auto i : flips) {
    FECIM_EXPECTS(i < h_.size());
    // sum_{j not in F} J_ij sigma_j = h_i - sum_{j in F} J_ij sigma_j.
    double inner = h_[i];
    for (const auto other : flips) {
      if (other == i) continue;
      const double v = j.at(i, other);
      if (v != 0.0) inner -= v * static_cast<double>(spins[other]);
    }
    acc += -static_cast<double>(spins[i]) * inner;
  }
  return acc;
}

void LocalFieldCache::apply_flips(const IsingModel& model,
                                  std::span<const Spin> spins_after,
                                  std::span<const std::uint32_t> flips) {
  FECIM_EXPECTS(ready());
  FECIM_EXPECTS(spins_after.size() == h_.size());
  const auto& j = model.couplings();
  for (const auto i : flips) {
    FECIM_EXPECTS(i < h_.size());
    // sigma_new - sigma_old = 2 sigma_new for a flipped spin.
    const double delta = 2.0 * static_cast<double>(spins_after[i]);
    const auto cols = j.row_cols(i);
    const auto vals = j.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k)
      h_[cols[k]] += vals[k] * delta;
  }
}

}  // namespace fecim::ising
