// Local-field cache: h_eff[i] = sum_j J_ij sigma_j for the current
// configuration, maintained incrementally.
//
// With the cache, the incremental VMV of a proposed flip set needs only the
// cached fields of the flipped spins plus the O(|F|^2) mutual-coupling
// correction -- no CSR row walk -- and an accepted flip set updates the
// fields of the flipped spins' neighborhoods in O(sum degree).  The cached
// evaluation reassociates the per-row sum (h_i - cross_i instead of a
// filtered row walk), so results can differ from IsingModel::incremental_vmv
// by floating-point rounding; the consumer must use one path consistently
// within a run, which IdealCrossbarEngine's opt-in wiring guarantees.
//
// Coherence protocol (the `on_flips_applied` contract, shared with
// crossbar::EincEngine):
//   1. build() once against the run's starting spins (or lazily before the
//      first cached evaluation);
//   2. vmv() only ever sees *proposed* flips -- it must not mutate state;
//   3. every flip set the caller actually applies is reported through
//      apply_flips() with the already-flipped spin vector, exactly once, in
//      application order;
//   4. any wholesale rewrite of the spin vector (restart, reseed, loading a
//      snapshot) invalidates the fields: call reset()/build() again.
// Violating 3 or 4 does not fail fast -- the fields silently drift and every
// later vmv() is wrong -- which is why the annealers own the wiring and
// fresh per-run engines make stale state impossible across runs.
#pragma once

#include <span>
#include <vector>

#include "ising/ising_model.hpp"
#include "ising/spin.hpp"

namespace fecim::ising {

class LocalFieldCache {
 public:
  /// Populate the fields from scratch for `spins`; O(nnz).
  void build(const IsingModel& model, std::span<const Spin> spins);

  bool ready() const noexcept { return !h_.empty(); }
  void reset() noexcept { h_.clear(); }

  /// sigma_r^T J sigma_c for the proposed (not yet applied) `flips`.
  /// O(|F|^2 log degree) via mutual-coupling lookups for the small flip sets
  /// the annealers propose; falls back to the row-walk form beyond that.
  double vmv(const IsingModel& model, std::span<const Spin> spins,
             std::span<const std::uint32_t> flips) const;

  /// Resynchronize after `flips` were applied (`spins_after` already holds
  /// the flipped values); O(sum degree of flipped spins).
  void apply_flips(const IsingModel& model,
                   std::span<const Spin> spins_after,
                   std::span<const std::uint32_t> flips);

  std::span<const double> fields() const noexcept { return h_; }

 private:
  std::vector<double> h_;
};

}  // namespace fecim::ising
