#include "ising/qubo.hpp"

#include "util/assert.hpp"

namespace fecim::ising {

QuboModel::QuboModel(linalg::CsrMatrix q, double constant)
    : q_(std::move(q)), constant_(constant) {
  FECIM_EXPECTS(q_.rows() == q_.cols());
}

double QuboModel::value(std::span<const std::uint8_t> x) const {
  FECIM_EXPECTS(x.size() == num_variables());
  double acc = constant_;
  for (std::size_t i = 0; i < num_variables(); ++i) {
    if (!x[i]) continue;
    const auto cols = q_.row_cols(i);
    const auto vals = q_.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k)
      if (x[cols[k]]) acc += vals[k];
  }
  return acc;
}

IsingModel QuboModel::to_ising() const {
  const std::size_t n = num_variables();
  // Substitute x_i = (1 - sigma_i) / 2 into x^T Q x:
  //   sum_ij Q_ij (1 - sigma_i)(1 - sigma_j) / 4
  // i != j terms contribute quadratic, linear, and constant parts; diagonal
  // terms are purely linear because x_i^2 = x_i.
  linalg::CsrMatrix::Builder j_builder(n, n);
  std::vector<double> h(n, 0.0);
  double c = constant_;

  for (std::size_t i = 0; i < n; ++i) {
    const auto cols = q_.row_cols(i);
    const auto vals = q_.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const std::size_t j = cols[k];
      const double q = vals[k];
      if (i == j) {
        h[i] += -q / 2.0;
        c += q / 2.0;
      } else {
        // sigma^T J sigma counts (i,j) and (j,i), so store q/8 per triangle
        // to realize the q/4 coefficient of sigma_i sigma_j.
        j_builder.add_symmetric(i, j, q / 8.0);
        h[i] += -q / 4.0;
        h[j] += -q / 4.0;
        c += q / 4.0;
      }
    }
  }
  return IsingModel(j_builder.build(), std::move(h), c);
}

SpinVector spins_from_binary(std::span<const std::uint8_t> x) {
  SpinVector spins(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    FECIM_EXPECTS(x[i] == 0 || x[i] == 1);
    spins[i] = x[i] ? Spin{-1} : Spin{1};  // sigma = 1 - 2x
  }
  return spins;
}

BinaryVector binary_from_spins(std::span<const Spin> spins) {
  BinaryVector x(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i) {
    FECIM_EXPECTS(spins[i] == 1 || spins[i] == -1);
    x[i] = spins[i] == -1 ? 1 : 0;  // x = (1 - sigma) / 2
  }
  return x;
}

QuboModel qubo_from_ising(const IsingModel& model) {
  const std::size_t n = model.num_spins();
  // sigma_i = 1 - 2 x_i:
  //   sigma_i sigma_j = 1 - 2x_i - 2x_j + 4 x_i x_j
  //   sigma_i         = 1 - 2 x_i
  // Linear pieces live on the Q diagonal (x_i^2 == x_i).
  linalg::CsrMatrix::Builder q_builder(n, n);
  std::vector<double> diag(n, 0.0);
  double c = model.constant();

  const auto& j = model.couplings();
  for (std::size_t i = 0; i < n; ++i) {
    const auto cols = j.row_cols(i);
    const auto vals = j.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const std::size_t col = cols[k];
      const double v = vals[k];
      q_builder.add(i, col, 4.0 * v);
      diag[i] += -2.0 * v;
      diag[col] += -2.0 * v;
      c += v;
    }
    const double h = model.fields()[i];
    diag[i] += -2.0 * h;
    c += h;
  }
  for (std::size_t i = 0; i < n; ++i)
    if (diag[i] != 0.0) q_builder.add(i, i, diag[i]);
  return QuboModel(q_builder.build(), c);
}

}  // namespace fecim::ising
