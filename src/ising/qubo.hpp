// Quadratic Unconstrained Binary Optimization: H(x) = x^T Q x + c,
// x_i in {0,1}, with exact conversion to/from the Ising form via
// sigma_i = 1 - 2 x_i (paper Sec. 2.1).
#pragma once

#include <span>
#include <vector>

#include "ising/ising_model.hpp"
#include "linalg/csr_matrix.hpp"

namespace fecim::ising {

using BinaryVector = std::vector<std::uint8_t>;

class QuboModel {
 public:
  /// Q may be any square matrix (not necessarily symmetric); x^T Q x is
  /// evaluated as written.  Diagonal entries act linearly since x_i^2 = x_i.
  explicit QuboModel(linalg::CsrMatrix q, double constant = 0.0);

  std::size_t num_variables() const noexcept { return q_.rows(); }
  const linalg::CsrMatrix& q() const noexcept { return q_; }
  double constant() const noexcept { return constant_; }

  double value(std::span<const std::uint8_t> x) const;

  /// Equivalent Ising model; energies match exactly:
  /// value(x) == to_ising().energy(spins_from_binary(x)).
  IsingModel to_ising() const;

 private:
  linalg::CsrMatrix q_;
  double constant_;
};

/// sigma = 1 - 2x mapping helpers.
SpinVector spins_from_binary(std::span<const std::uint8_t> x);
BinaryVector binary_from_spins(std::span<const Spin> spins);

/// Inverse conversion: an Ising model as a QUBO with the same objective:
/// ising.energy(sigma(x)) == qubo.value(x).
QuboModel qubo_from_ising(const IsingModel& model);

}  // namespace fecim::ising
