#include "ising/spin.hpp"

#include "util/assert.hpp"

namespace fecim::ising {

SpinVector random_spins(std::size_t n, util::Rng& rng) {
  SpinVector spins(n);
  for (auto& s : spins) s = static_cast<Spin>(rng.spin());
  return spins;
}

bool is_valid_spins(std::span<const Spin> spins) noexcept {
  for (const Spin s : spins)
    if (s != 1 && s != -1) return false;
  return true;
}

SpinVector spins_from_bits(std::uint64_t bits, std::size_t n) {
  FECIM_EXPECTS(n <= 64);
  SpinVector spins(n);
  for (std::size_t i = 0; i < n; ++i)
    spins[i] = (bits >> i) & 1u ? Spin{1} : Spin{-1};
  return spins;
}

SpinVector flipped_copy(std::span<const Spin> spins,
                        std::span<const std::uint32_t> flips) {
  SpinVector out(spins.begin(), spins.end());
  flip_in_place(out, flips);
  return out;
}

void flip_in_place(SpinVector& spins, std::span<const std::uint32_t> flips) {
  for (const auto idx : flips) {
    FECIM_EXPECTS(idx < spins.size());
    spins[idx] = static_cast<Spin>(-spins[idx]);
  }
}

std::vector<double> to_double(std::span<const Spin> spins) {
  std::vector<double> out(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i)
    out[i] = static_cast<double>(spins[i]);
  return out;
}

std::size_t hamming_distance(std::span<const Spin> a,
                             std::span<const Spin> b) {
  FECIM_EXPECTS(a.size() == b.size());
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.size(); ++i) count += a[i] != b[i];
  return count;
}

}  // namespace fecim::ising
