// Spin vectors: sigma_i in {-1, +1}, stored as int8 for cache density.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace fecim::ising {

using Spin = std::int8_t;
using SpinVector = std::vector<Spin>;

/// Uniformly random +-1 configuration of length n.
SpinVector random_spins(std::size_t n, util::Rng& rng);

/// True when every element is exactly -1 or +1.
bool is_valid_spins(std::span<const Spin> spins) noexcept;

/// Spins encoded from the low n bits of `bits` (bit set -> +1); used by the
/// brute-force reference solvers.
SpinVector spins_from_bits(std::uint64_t bits, std::size_t n);

/// Copy with the listed indices flipped.
SpinVector flipped_copy(std::span<const Spin> spins,
                        std::span<const std::uint32_t> flips);

/// In-place flip of the listed indices.
void flip_in_place(SpinVector& spins, std::span<const std::uint32_t> flips);

/// Widened copy for dense linear algebra.
std::vector<double> to_double(std::span<const Spin> spins);

/// Hamming distance between two configurations of equal length.
std::size_t hamming_distance(std::span<const Spin> a, std::span<const Spin> b);

}  // namespace fecim::ising
