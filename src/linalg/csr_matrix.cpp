#include "linalg/csr_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace fecim::linalg {

std::span<const std::uint32_t> CsrMatrix::row_cols(std::size_t r) const {
  FECIM_EXPECTS(r < rows());
  return {col_idx_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

std::span<const double> CsrMatrix::row_values(std::size_t r) const {
  FECIM_EXPECTS(r < rows());
  return {values_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  FECIM_EXPECTS(r < rows() && c < cols_);
  const auto cols = row_cols(r);
  const auto vals = row_values(r);
  const auto it = std::lower_bound(cols.begin(), cols.end(),
                                   static_cast<std::uint32_t>(c));
  if (it == cols.end() || *it != c) return 0.0;
  return vals[static_cast<std::size_t>(it - cols.begin())];
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  FECIM_EXPECTS(x.size() == cols_ && y.size() == rows());
  for (std::size_t r = 0; r < rows(); ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      acc += values_[k] * x[col_idx_[k]];
    y[r] = acc;
  }
}

double CsrMatrix::vmv(std::span<const double> x, std::span<const double> y) const {
  FECIM_EXPECTS(x.size() == rows() && y.size() == cols_);
  double acc = 0.0;
  for (std::size_t r = 0; r < rows(); ++r) {
    if (x[r] == 0.0) continue;
    double inner = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      inner += values_[k] * y[col_idx_[k]];
    acc += x[r] * inner;
  }
  return acc;
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows() != cols_) return false;
  for (std::size_t r = 0; r < rows(); ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double mirror = at(cols[k], r);
      if (std::fabs(mirror - vals[k]) > tol) return false;
    }
  }
  return true;
}

double CsrMatrix::max_abs_value() const noexcept {
  double best = 0.0;
  for (const double v : values_) best = std::max(best, std::fabs(v));
  return best;
}

DenseMatrix<double> CsrMatrix::to_dense() const {
  DenseMatrix<double> dense(rows(), cols_);
  for (std::size_t r = 0; r < rows(); ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) dense(r, cols[k]) = vals[k];
  }
  return dense;
}

void CsrMatrix::Builder::add(std::size_t r, std::size_t c, double value) {
  FECIM_EXPECTS(r < rows_ && c < cols_);
  triplets_.push_back({static_cast<std::uint32_t>(r),
                       static_cast<std::uint32_t>(c), value});
}

void CsrMatrix::Builder::add_symmetric(std::size_t r, std::size_t c,
                                       double value) {
  add(r, c, value);
  if (r != c) add(c, r, value);
}

CsrMatrix CsrMatrix::Builder::build() {
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.cols_ = cols_;
  m.row_ptr_.assign(rows_ + 1, 0);

  // Merge duplicate coordinates by summation while copying out.
  std::size_t i = 0;
  while (i < triplets_.size()) {
    const std::uint32_t row = triplets_[i].row;
    const std::uint32_t col = triplets_[i].col;
    double sum = 0.0;
    while (i < triplets_.size() && triplets_[i].row == row &&
           triplets_[i].col == col) {
      sum += triplets_[i].value;
      ++i;
    }
    if (sum != 0.0) {
      m.col_idx_.push_back(col);
      m.values_.push_back(sum);
      ++m.row_ptr_[row + 1];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  FECIM_ENSURES(m.row_ptr_.back() == m.values_.size());
  return m;
}

}  // namespace fecim::linalg
