// Compressed-sparse-row matrix for coupling matrices J.
//
// Gset-class Max-Cut instances are sparse (average degree ~4-50), so the
// annealer's inner loops run over CSR rows.  The builder accepts arbitrary
// (row, col, value) triplets, merges duplicates by summation, and can
// symmetrize on demand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace fecim::linalg {

class CsrMatrix {
 public:
  struct Entry {
    std::uint32_t col;
    double value;
  };

  CsrMatrix() = default;

  std::size_t rows() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.size() - 1;
  }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nonzeros() const noexcept { return values_.size(); }

  /// Entries of one row as parallel spans.
  std::span<const std::uint32_t> row_cols(std::size_t r) const;
  std::span<const double> row_values(std::size_t r) const;

  /// Value at (r, c); 0 when the entry is absent.  O(log degree).
  double at(std::size_t r, std::size_t c) const;

  /// y = A x (dense vectors).
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// xᵀ A y.
  double vmv(std::span<const double> x, std::span<const double> y) const;

  /// True when the sparsity pattern and values are symmetric within tol.
  bool is_symmetric(double tol = 0.0) const;

  /// Largest |value|; 0 for an empty matrix.
  double max_abs_value() const noexcept;

  DenseMatrix<double> to_dense() const;

  class Builder {
   public:
    Builder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

    /// Accumulate value at (r, c); duplicates sum.
    void add(std::size_t r, std::size_t c, double value);
    /// Accumulate value at (r, c) and (c, r).
    void add_symmetric(std::size_t r, std::size_t c, double value);

    CsrMatrix build();

   private:
    struct Triplet {
      std::uint32_t row;
      std::uint32_t col;
      double value;
    };
    std::size_t rows_;
    std::size_t cols_;
    std::vector<Triplet> triplets_;
  };

 private:
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace fecim::linalg
