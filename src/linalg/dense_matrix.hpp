// Dense row-major matrix.  Used for small reference computations (tests,
// brute-force energies) and as the dense fallback of the MNA solver.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace fecim::linalg {

template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static DenseMatrix identity(std::size_t n) {
    DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  T& operator()(std::size_t r, std::size_t c) {
    FECIM_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    FECIM_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<T> row(std::size_t r) {
    FECIM_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const T> row(std::size_t r) const {
    FECIM_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<const T> data() const noexcept { return data_; }
  std::span<T> data() noexcept { return data_; }

  bool is_symmetric(T tolerance = T{}) const {
    if (rows_ != cols_) return false;
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = i + 1; j < cols_; ++j) {
        const T diff = (*this)(i, j) - (*this)(j, i);
        if (diff > tolerance || diff < -tolerance) return false;
      }
    return true;
  }

  /// y = A x
  void multiply(std::span<const T> x, std::span<T> y) const {
    FECIM_EXPECTS(x.size() == cols_ && y.size() == rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      T acc{};
      const T* row_ptr = data_.data() + r * cols_;
      for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
      y[r] = acc;
    }
  }

  /// xᵀ A y — the vector-matrix-vector product at the heart of the Ising
  /// energy (direct-E form).
  T vmv(std::span<const T> x, std::span<const T> y) const {
    FECIM_EXPECTS(x.size() == rows_ && y.size() == cols_);
    T acc{};
    for (std::size_t r = 0; r < rows_; ++r) {
      if (x[r] == T{}) continue;
      T inner{};
      const T* row_ptr = data_.data() + r * cols_;
      for (std::size_t c = 0; c < cols_; ++c) inner += row_ptr[c] * y[c];
      acc += x[r] * inner;
    }
    return acc;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace fecim::linalg
