#include "linalg/linear_solver.hpp"

#include <cmath>
#include <vector>

#include "linalg/vec_ops.hpp"
#include "util/assert.hpp"

namespace fecim::linalg {

SolveReport conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                               std::span<double> x,
                               const SolveOptions& options) {
  const std::size_t n = a.rows();
  FECIM_EXPECTS(a.cols() == n);
  FECIM_EXPECTS(b.size() == n && x.size() == n);

  std::vector<double> r(n), p(n), ap(n);
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  p.assign(r.begin(), r.end());

  const double b_norm = norm2(b);
  const double b_scale = b_norm > 0.0 ? b_norm : 1.0;
  double rr = dot(r, r);

  SolveReport report;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    report.iterations = it;
    report.residual_norm = std::sqrt(rr);
    if (report.residual_norm / b_scale <= options.tolerance) {
      report.converged = true;
      return report;
    }
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD (or exact solution); bail out
    const double alpha = rr / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double rr_next = dot(r, r);
    const double beta = rr_next / rr;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_next;
  }
  report.residual_norm = std::sqrt(rr);
  report.converged = report.residual_norm / b_scale <= options.tolerance;
  return report;
}

SolveReport gauss_seidel(const CsrMatrix& a, std::span<const double> b,
                         std::span<double> x, const SolveOptions& options) {
  const std::size_t n = a.rows();
  FECIM_EXPECTS(a.cols() == n);
  FECIM_EXPECTS(b.size() == n && x.size() == n);

  const double b_norm = norm2(b);
  const double b_scale = b_norm > 0.0 ? b_norm : 1.0;
  std::vector<double> residual(n);

  SolveReport report;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    report.iterations = it;
    for (std::size_t r = 0; r < n; ++r) {
      double sum = b[r];
      double diag = 0.0;
      const auto cols = a.row_cols(r);
      const auto vals = a.row_values(r);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] == r)
          diag = vals[k];
        else
          sum -= vals[k] * x[cols[k]];
      }
      FECIM_ASSERT(diag != 0.0);
      x[r] = sum / diag;
    }
    a.multiply(x, residual);
    for (std::size_t i = 0; i < n; ++i) residual[i] -= b[i];
    report.residual_norm = norm2(residual);
    if (report.residual_norm / b_scale <= options.tolerance) {
      report.converged = true;
      return report;
    }
  }
  return report;
}

}  // namespace fecim::linalg
