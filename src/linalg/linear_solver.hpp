// Iterative solvers for the crossbar MNA system G·v = i.
//
// The MNA conductance matrix is symmetric positive definite (resistive
// network with at least one path to a driven terminal), so conjugate
// gradient is the workhorse; Gauss-Seidel is kept as a robust fallback and
// as an independent cross-check in tests.
#pragma once

#include <span>

#include "linalg/csr_matrix.hpp"

namespace fecim::linalg {

struct SolveReport {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
};

struct SolveOptions {
  std::size_t max_iterations = 10000;
  double tolerance = 1e-10;  ///< on ||Ax-b|| / ||b|| (relative)
};

/// Conjugate gradient for SPD systems.  `x` carries the initial guess in and
/// the solution out.
SolveReport conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                               std::span<double> x,
                               const SolveOptions& options = {});

/// Gauss-Seidel sweep iteration; requires nonzero diagonal.
SolveReport gauss_seidel(const CsrMatrix& a, std::span<const double> b,
                         std::span<double> x, const SolveOptions& options = {});

}  // namespace fecim::linalg
