#include "linalg/vec_ops.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace fecim::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
  FECIM_EXPECTS(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  FECIM_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double max_abs(std::span<const double> x) {
  double best = 0.0;
  for (const double v : x) best = std::max(best, std::fabs(v));
  return best;
}

std::vector<double> hadamard(std::span<const double> a,
                             std::span<const double> b) {
  FECIM_EXPECTS(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

}  // namespace fecim::linalg
