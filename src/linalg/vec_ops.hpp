// Span-based vector kernels shared across modules.
#pragma once

#include <span>
#include <vector>

namespace fecim::linalg {

double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

double norm2(std::span<const double> x);

/// Largest absolute element; 0 for empty input.
double max_abs(std::span<const double> x);

/// Element-wise (Hadamard) product into a new vector.
std::vector<double> hadamard(std::span<const double> a,
                             std::span<const double> b);

}  // namespace fecim::linalg
