#include "problems/coloring.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace fecim::problems {

ColoringEncoding coloring_to_qubo(const Graph& graph, std::size_t num_colors,
                                  double penalty) {
  FECIM_EXPECTS(num_colors >= 1);
  FECIM_EXPECTS(penalty > 0.0);
  const std::size_t n = graph.num_vertices();
  const std::size_t k = num_colors;
  const std::size_t vars = n * k;
  linalg::CsrMatrix::Builder q(vars, vars);
  double constant = 0.0;

  auto var = [k](std::size_t v, std::size_t c) { return v * k + c; };

  // One-hot penalty: A (1 - sum_c x)^2 = A (1 - 2 sum_c x + sum_c x
  //                  + 2 sum_{c<c'} x_c x_c')   [x^2 = x]
  for (std::size_t v = 0; v < n; ++v) {
    constant += penalty;
    for (std::size_t c = 0; c < k; ++c) {
      q.add(var(v, c), var(v, c), -penalty);  // -2A + A on the diagonal
      for (std::size_t c2 = c + 1; c2 < k; ++c2)
        q.add(var(v, c), var(v, c2), 2.0 * penalty);
    }
  }

  // Edge penalty: A x_{u,c} x_{v,c} per color.
  for (const auto& e : graph.edges())
    for (std::size_t c = 0; c < k; ++c)
      q.add(var(e.u, c), var(e.v, c), penalty);

  return ColoringEncoding{ising::QuboModel(q.build(), constant), n, k};
}

std::vector<std::uint32_t> decode_coloring(const ColoringEncoding& encoding,
                                           std::span<const std::uint8_t> x) {
  FECIM_EXPECTS(x.size() == encoding.num_vertices * encoding.num_colors);
  std::vector<std::uint32_t> colors(encoding.num_vertices);
  for (std::size_t v = 0; v < encoding.num_vertices; ++v) {
    std::size_t count = 0;
    std::uint32_t chosen = 0;
    for (std::size_t c = 0; c < encoding.num_colors; ++c) {
      if (x[v * encoding.num_colors + c]) {
        ++count;
        chosen = static_cast<std::uint32_t>(c);
      }
    }
    colors[v] = count == 1 ? chosen
                           : static_cast<std::uint32_t>(encoding.num_colors);
  }
  return colors;
}

std::size_t coloring_violations(const Graph& graph,
                                const ColoringEncoding& encoding,
                                std::span<const std::uint8_t> x) {
  const auto colors = decode_coloring(encoding, x);
  std::size_t violations = 0;
  for (const auto c : colors)
    if (c >= encoding.num_colors) ++violations;
  for (const auto& e : graph.edges())
    if (colors[e.u] < encoding.num_colors && colors[e.u] == colors[e.v])
      ++violations;
  return violations;
}

std::vector<std::uint32_t> greedy_coloring(const Graph& graph) {
  const std::size_t n = graph.num_vertices();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return graph.degree(a) > graph.degree(b);
  });

  constexpr std::uint32_t kUncolored = ~std::uint32_t{0};
  std::vector<std::uint32_t> colors(n, kUncolored);
  std::vector<std::uint8_t> neighbor_has;
  for (const auto v : order) {
    neighbor_has.assign(n + 1, 0);
    for (const auto u : graph.neighbors(v))
      if (colors[u] != kUncolored) neighbor_has[colors[u]] = 1;
    std::uint32_t c = 0;
    while (neighbor_has[c]) ++c;
    colors[v] = c;
  }
  return colors;
}

}  // namespace fecim::problems
