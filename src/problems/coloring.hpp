// Graph k-coloring as a QUBO (one-hot encoding), the COP class ref. [7]
// solves on FeFET CiM hardware.
//
//   H = A * sum_v (1 - sum_c x_{v,c})^2  +  A * sum_{(u,v) in E} sum_c x_{u,c} x_{v,c}
//
// H == 0 iff x encodes a valid k-coloring.  Variable layout: x_{v,c} at
// index v * k + c.
#pragma once

#include <cstdint>
#include <vector>

#include "ising/qubo.hpp"
#include "problems/graph.hpp"

namespace fecim::problems {

struct ColoringEncoding {
  ising::QuboModel qubo;
  std::size_t num_vertices;
  std::size_t num_colors;
};

ColoringEncoding coloring_to_qubo(const Graph& graph, std::size_t num_colors,
                                  double penalty = 1.0);

/// Decode one-hot variables into a color per vertex.  Vertices whose one-hot
/// group is not exactly single-hot get color = num_colors (invalid marker).
std::vector<std::uint32_t> decode_coloring(const ColoringEncoding& encoding,
                                           std::span<const std::uint8_t> x);

/// Number of constraint violations (non-single-hot vertices + monochromatic
/// edges); 0 iff the assignment is a valid coloring.
std::size_t coloring_violations(const Graph& graph,
                                const ColoringEncoding& encoding,
                                std::span<const std::uint8_t> x);

/// Greedy (largest-degree-first) coloring; upper bound on the chromatic
/// number, used to pick feasible k in tests and examples.
std::vector<std::uint32_t> greedy_coloring(const Graph& graph);

}  // namespace fecim::problems
