#include "problems/generators.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"

namespace fecim::problems {

namespace {

double sample_weight(WeightScheme scheme, util::Rng& rng) {
  switch (scheme) {
    case WeightScheme::kUnit:
      return 1.0;
    case WeightScheme::kPlusMinusOne:
      return rng.bernoulli(0.5) ? 1.0 : -1.0;
  }
  FECIM_ASSERT(false);
  return 0.0;
}

std::uint64_t edge_key(std::uint32_t u, std::uint32_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph random_graph(std::size_t n, double avg_degree, WeightScheme weights,
                   std::uint64_t seed) {
  FECIM_EXPECTS(n >= 2);
  FECIM_EXPECTS(avg_degree > 0.0);
  const auto target_edges = static_cast<std::size_t>(
      avg_degree * static_cast<double>(n) / 2.0 + 0.5);
  const std::size_t max_edges = n * (n - 1) / 2;
  FECIM_EXPECTS(target_edges <= max_edges);

  util::Rng rng(seed);
  Graph graph(n);
  std::unordered_set<std::uint64_t> used;
  used.reserve(target_edges * 2);
  while (used.size() < target_edges) {
    const auto u = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto v = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (u == v) continue;
    if (!used.insert(edge_key(u, v)).second) continue;
    graph.add_edge(u, v, sample_weight(weights, rng));
  }
  return graph;
}

Graph regular_graph(std::size_t n, std::size_t degree, WeightScheme weights,
                    std::uint64_t seed) {
  FECIM_EXPECTS(degree >= 1 && degree < n);
  FECIM_EXPECTS(n * degree % 2 == 0);  // handshake lemma

  util::Rng rng(seed);
  for (int attempt = 0; attempt < 200; ++attempt) {
    // Configuration model: each vertex contributes `degree` stubs; a random
    // perfect matching of stubs becomes the edge set unless it produces a
    // self-loop or duplicate, in which case we re-shuffle.
    std::vector<std::uint32_t> stubs;
    stubs.reserve(n * degree);
    for (std::uint32_t v = 0; v < n; ++v)
      for (std::size_t k = 0; k < degree; ++k) stubs.push_back(v);
    for (std::size_t i = stubs.size(); i > 1; --i)
      std::swap(stubs[i - 1], stubs[rng.uniform_index(i)]);

    std::unordered_set<std::uint64_t> used;
    bool ok = true;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    pairs.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      const auto u = stubs[i];
      const auto v = stubs[i + 1];
      if (u == v || !used.insert(edge_key(u, v)).second) {
        ok = false;
        break;
      }
      pairs.emplace_back(u, v);
    }
    if (!ok) continue;
    Graph graph(n);
    for (const auto& [u, v] : pairs)
      graph.add_edge(u, v, sample_weight(weights, rng));
    return graph;
  }
  throw contract_error("regular_graph: configuration model failed to converge");
}

Graph toroidal_grid(std::size_t rows, std::size_t cols, WeightScheme weights,
                    std::uint64_t seed) {
  FECIM_EXPECTS(rows >= 2 && cols >= 2);
  util::Rng rng(seed);
  Graph graph(rows * cols);
  auto index = [cols](std::size_t r, std::size_t c) {
    return static_cast<std::uint32_t>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      graph.add_edge(index(r, c), index(r, (c + 1) % cols),
                     sample_weight(weights, rng));
      graph.add_edge(index(r, c), index((r + 1) % rows, c),
                     sample_weight(weights, rng));
    }
  }
  return graph;
}

Graph gset_like_instance(std::size_t nodes, std::uint64_t seed) {
  switch (nodes) {
    case 800:
      // G1-G5 class: 800 nodes, ~19.2k edges (average degree ~48).
      return random_graph(800, 48.0, WeightScheme::kUnit, seed);
    case 1000:
      // G1-class density extended to 1000 nodes.  (Gset's own 1000-node
      // groups, G43-G47/G51-G54, are sparser; at the paper's 1000-iteration
      // budget only the dense family supports the reported success rates --
      // see EXPERIMENTS.md.)
      return random_graph(1000, 48.0, WeightScheme::kUnit, seed);
    case 2000:
      // G22-G31 class: 2000 nodes, ~19.9k edges (average degree ~19.9).
      return random_graph(2000, 19.9, WeightScheme::kUnit, seed);
    case 3000:
      // G48-G50 class: 3000-node toroidal grid, degree 4, known optimum.
      return toroidal_grid(50, 60, WeightScheme::kUnit, seed);
    default:
      // Generic fallback: random graph at Gset-like density.
      return random_graph(nodes, 12.0, WeightScheme::kUnit, seed);
  }
}

}  // namespace fecim::problems
