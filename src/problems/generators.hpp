// Seeded instance generators mirroring the Stanford Gset families the paper
// evaluates on [38].  The real dataset is not available offline; these
// generators produce the same three structural families at the same sizes
// and densities, and gset_io.hpp loads genuine Gset files when present.
#pragma once

#include <cstdint>

#include "problems/graph.hpp"
#include "util/rng.hpp"

namespace fecim::problems {

enum class WeightScheme {
  kUnit,         ///< all edges +1 (Gset G1-G21 style)
  kPlusMinusOne  ///< edges +1 or -1 with equal probability (G22+ style)
};

/// Erdos-Renyi-like random graph with a target average degree; the generator
/// samples exactly round(n * avg_degree / 2) distinct edges.
Graph random_graph(std::size_t n, double avg_degree, WeightScheme weights,
                   std::uint64_t seed);

/// Random d-regular-ish graph via the configuration model (pair stubs,
/// reject self-loops/duplicates, re-shuffle on collision).
Graph regular_graph(std::size_t n, std::size_t degree, WeightScheme weights,
                    std::uint64_t seed);

/// rows x cols toroidal grid (every vertex degree 4).  With kUnit weights
/// and both dimensions even the graph is bipartite, so the optimal Max-Cut
/// equals the edge count -- giving instances with a *provable* optimum at
/// any size (the G48-G50 family the paper's 3000-node group mirrors).
Graph toroidal_grid(std::size_t rows, std::size_t cols, WeightScheme weights,
                    std::uint64_t seed);

/// The benchmark family dispatcher used by the figure harnesses: 800-, 1000-
/// and 2000-node groups are random graphs (Gset densities); 3000-node groups
/// are toroidal grids with known optimum.
Graph gset_like_instance(std::size_t nodes, std::uint64_t seed);

}  // namespace fecim::problems
