#include "problems/graph.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/assert.hpp"

namespace fecim::problems {

Graph::Graph(std::size_t num_vertices) : num_vertices_(num_vertices) {
  FECIM_EXPECTS(num_vertices > 0);
}

void Graph::add_edge(std::uint32_t u, std::uint32_t v, double weight) {
  FECIM_EXPECTS(u < num_vertices_ && v < num_vertices_);
  FECIM_EXPECTS(u != v);
  if (u > v) std::swap(u, v);
  // Merge parallel edges by weight accumulation.
  const auto [it, inserted] = edge_slot_.try_emplace(edge_key(u, v),
                                                     edges_.size());
  if (inserted)
    edges_.push_back({u, v, weight});
  else
    edges_[it->second].weight += weight;
  adjacency_valid_ = false;
}

bool Graph::has_edge(std::uint32_t u, std::uint32_t v) const {
  if (u > v) std::swap(u, v);
  return edge_slot_.contains(edge_key(u, v));
}

double Graph::edge_weight(std::uint32_t u, std::uint32_t v) const {
  if (u > v) std::swap(u, v);
  const auto it = edge_slot_.find(edge_key(u, v));
  return it == edge_slot_.end() ? 0.0 : edges_[it->second].weight;
}

double Graph::total_weight() const noexcept {
  double sum = 0.0;
  for (const auto& e : edges_) sum += e.weight;
  return sum;
}

double Graph::total_abs_weight() const noexcept {
  double sum = 0.0;
  for (const auto& e : edges_) sum += std::fabs(e.weight);
  return sum;
}

std::size_t Graph::degree(std::uint32_t v) const {
  ensure_adjacency();
  FECIM_EXPECTS(v < num_vertices_);
  return adj_ptr_[v + 1] - adj_ptr_[v];
}

double Graph::average_degree() const noexcept {
  return 2.0 * static_cast<double>(edges_.size()) /
         static_cast<double>(num_vertices_);
}

std::span<const std::uint32_t> Graph::neighbors(std::uint32_t v) const {
  ensure_adjacency();
  FECIM_EXPECTS(v < num_vertices_);
  return {adj_idx_.data() + adj_ptr_[v], adj_ptr_[v + 1] - adj_ptr_[v]};
}

std::span<const double> Graph::neighbor_weights(std::uint32_t v) const {
  ensure_adjacency();
  FECIM_EXPECTS(v < num_vertices_);
  return {adj_weight_.data() + adj_ptr_[v], adj_ptr_[v + 1] - adj_ptr_[v]};
}

bool Graph::is_bipartite() const {
  ensure_adjacency();
  std::vector<int> color(num_vertices_, -1);
  std::queue<std::uint32_t> frontier;
  for (std::uint32_t start = 0; start < num_vertices_; ++start) {
    if (color[start] != -1) continue;
    color[start] = 0;
    frontier.push(start);
    while (!frontier.empty()) {
      const auto v = frontier.front();
      frontier.pop();
      for (const auto w : neighbors(v)) {
        if (color[w] == -1) {
          color[w] = 1 - color[v];
          frontier.push(w);
        } else if (color[w] == color[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

void Graph::ensure_adjacency() const {
  if (adjacency_valid_) return;
  adj_ptr_.assign(num_vertices_ + 1, 0);
  for (const auto& e : edges_) {
    ++adj_ptr_[e.u + 1];
    ++adj_ptr_[e.v + 1];
  }
  for (std::size_t v = 0; v < num_vertices_; ++v) adj_ptr_[v + 1] += adj_ptr_[v];
  adj_idx_.resize(2 * edges_.size());
  adj_weight_.resize(2 * edges_.size());
  std::vector<std::size_t> cursor(adj_ptr_.begin(), adj_ptr_.end() - 1);
  for (const auto& e : edges_) {
    adj_idx_[cursor[e.u]] = e.v;
    adj_weight_[cursor[e.u]++] = e.weight;
    adj_idx_[cursor[e.v]] = e.u;
    adj_weight_[cursor[e.v]++] = e.weight;
  }
  adjacency_valid_ = true;
}

}  // namespace fecim::problems
