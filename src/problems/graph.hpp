// Undirected weighted graph for COP instances (Max-Cut, coloring, ...).
//
// Stored as an edge list with a CSR adjacency built at finalization; parallel
// edges merge by weight summation through a persistent (u,v) -> edge-slot
// hash index, so loading an m-edge file is O(m) rather than O(m^2).
// Self-loops are rejected (they are meaningless for every COP in this
// project).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace fecim::problems {

struct Edge {
  std::uint32_t u;
  std::uint32_t v;
  double weight;
};

class Graph {
 public:
  explicit Graph(std::size_t num_vertices);

  std::size_t num_vertices() const noexcept { return num_vertices_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  std::span<const Edge> edges() const noexcept { return edges_; }

  /// Add (or accumulate onto) the undirected edge {u, v}.  u != v.
  void add_edge(std::uint32_t u, std::uint32_t v, double weight = 1.0);

  bool has_edge(std::uint32_t u, std::uint32_t v) const;
  double edge_weight(std::uint32_t u, std::uint32_t v) const;

  double total_weight() const noexcept;
  /// Sum of |w| over edges -- an upper bound on any cut.
  double total_abs_weight() const noexcept;

  std::size_t degree(std::uint32_t v) const;
  double average_degree() const noexcept;

  /// Neighbors of v with weights, as parallel spans (valid until next
  /// add_edge).
  std::span<const std::uint32_t> neighbors(std::uint32_t v) const;
  std::span<const double> neighbor_weights(std::uint32_t v) const;

  /// True when the vertex set splits into two classes with all edges across
  /// (ignoring weights).  Used to certify toroidal instances' optimal cut.
  bool is_bipartite() const;

 private:
  void ensure_adjacency() const;

  static std::uint64_t edge_key(std::uint32_t u, std::uint32_t v) noexcept {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  std::size_t num_vertices_;
  std::vector<Edge> edges_;
  // (u << 32 | v) with u < v -> index into edges_; makes parallel-edge
  // merging and has_edge/edge_weight O(1) instead of an O(m) list scan.
  std::unordered_map<std::uint64_t, std::size_t> edge_slot_;

  // Lazily built adjacency (mutable cache; rebuilt when edges change).
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::size_t> adj_ptr_;
  mutable std::vector<std::uint32_t> adj_idx_;
  mutable std::vector<double> adj_weight_;
};

}  // namespace fecim::problems
