#include "problems/gset_io.hpp"

#include <fstream>
#include <limits>
#include <ostream>

#include "problems/instance_io.hpp"
#include "util/assert.hpp"

namespace fecim::problems {

namespace {

template <typename Source>
Graph read_gset_impl(Source&& in, const std::string& context) {
  io::LineParser parser(in, context);
  if (!parser.next())
    throw contract_error(context + ": empty input (expected '<n> <m>')");
  parser.require_fields(2, 2);
  const std::size_t n = parser.index(0);
  const std::size_t m = parser.index(1);
  if (n == 0) parser.fail("graph must have at least one vertex");

  Graph graph(n);
  for (std::size_t k = 0; k < m; ++k) {
    if (!parser.next())
      parser.fail_truncated(std::to_string(m) + " edges, got " +
                            std::to_string(k));
    parser.require_fields(2, 3);
    const std::size_t u = parser.index(0);
    const std::size_t v = parser.index(1);
    const double w = parser.fields() == 3 ? parser.number(2) : 1.0;
    if (u < 1 || u > n || v < 1 || v > n)
      parser.fail("vertex index out of range [1, " + std::to_string(n) + "]");
    if (u == v) parser.fail("self-loop on vertex " + std::to_string(u));
    graph.add_edge(static_cast<std::uint32_t>(u - 1),
                   static_cast<std::uint32_t>(v - 1), w);
  }
  if (parser.next())
    parser.fail("trailing content after " + std::to_string(m) + " edges");
  return graph;
}

}  // namespace

Graph read_gset(std::istream& in, const std::string& context) {
  return read_gset_impl(in, context);
}

Graph read_gset(std::string_view text, const std::string& context) {
  return read_gset_impl(text, context);
}

Graph read_gset_file(const std::string& path) {
  return io::read_file(path, "gset",
                       [](auto&& in, const std::string& context) {
                         return read_gset_impl(in, context);
                       });
}

void write_gset(const Graph& graph, std::ostream& out) {
  // max_digits10 makes the textual weight round-trip bit-lossless; the
  // default stream precision (6) silently truncated e.g. 1/3.
  const auto previous =
      out.precision(std::numeric_limits<double>::max_digits10);
  out << graph.num_vertices() << ' ' << graph.num_edges() << '\n';
  for (const auto& e : graph.edges())
    out << (e.u + 1) << ' ' << (e.v + 1) << ' ' << e.weight << '\n';
  out.precision(previous);
}

void write_gset_file(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw contract_error("gset: cannot open " + path + " for write");
  write_gset(graph, out);
}

}  // namespace fecim::problems
