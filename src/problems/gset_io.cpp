#include "problems/gset_io.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace fecim::problems {

Graph read_gset(std::istream& in) {
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(in >> n >> m))
    throw contract_error("gset: malformed header (expected '<n> <m>')");
  FECIM_EXPECTS(n > 0);

  Graph graph(n);
  for (std::size_t k = 0; k < m; ++k) {
    std::size_t u = 0;
    std::size_t v = 0;
    double w = 0.0;
    if (!(in >> u >> v >> w))
      throw contract_error("gset: truncated edge list at edge " +
                           std::to_string(k));
    if (u < 1 || u > n || v < 1 || v > n)
      throw contract_error("gset: vertex index out of range at edge " +
                           std::to_string(k));
    graph.add_edge(static_cast<std::uint32_t>(u - 1),
                   static_cast<std::uint32_t>(v - 1), w);
  }
  return graph;
}

Graph read_gset_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw contract_error("gset: cannot open " + path);
  return read_gset(in);
}

void write_gset(const Graph& graph, std::ostream& out) {
  out << graph.num_vertices() << ' ' << graph.num_edges() << '\n';
  for (const auto& e : graph.edges())
    out << (e.u + 1) << ' ' << (e.v + 1) << ' ' << e.weight << '\n';
}

void write_gset_file(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw contract_error("gset: cannot open " + path + " for write");
  write_gset(graph, out);
}

}  // namespace fecim::problems
