// Reader/writer for the Stanford Gset Max-Cut file format [38]:
//   line 1:  <num_vertices> <num_edges>
//   line k:  <u> <v> <weight>      (1-indexed vertices)
#pragma once

#include <iosfwd>
#include <string>

#include "problems/graph.hpp"

namespace fecim::problems {

Graph read_gset(std::istream& in);
Graph read_gset_file(const std::string& path);

void write_gset(const Graph& graph, std::ostream& out);
void write_gset_file(const Graph& graph, const std::string& path);

}  // namespace fecim::problems
