// Reader/writer for the Stanford Gset Max-Cut file format [38]:
//   line 1:  <num_vertices> <num_edges>
//   line k:  <u> <v> <weight>      (1-indexed vertices; weight optional,
//                                   defaults to 1)
//
// '#' and '%' comment lines and blank lines are skipped anywhere.  Parsing
// runs on the shared ingestion core (problems/instance_io.hpp): malformed
// headers, out-of-range or self-loop edges, and truncated edge lists all
// raise fecim::contract_error naming the offending line.  Parallel edges
// merge by weight summation (O(1) per edge via the graph's edge index).
//
// write_gset emits weights at max_digits10 precision so a write/read
// round-trip is bit-lossless.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "problems/graph.hpp"

namespace fecim::problems {

Graph read_gset(std::istream& in, const std::string& context = "gset");
Graph read_gset(std::string_view text, const std::string& context = "gset");
Graph read_gset_file(const std::string& path);

void write_gset(const Graph& graph, std::ostream& out);
void write_gset_file(const Graph& graph, const std::string& path);

}  // namespace fecim::problems
