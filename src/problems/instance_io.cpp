#include "problems/instance_io.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FECIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fecim::problems {

namespace io {

// ---------------------------------------------------------------------------
// MappedFile
// ---------------------------------------------------------------------------

#ifdef FECIM_HAVE_MMAP

bool MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return false;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // mmap rejects zero-length mappings; an empty file is simply an empty
    // view (the parser yields no lines, matching an exhausted stream).
    ::close(fd);
    view_ = std::string_view{};
    return true;
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (data == MAP_FAILED) return false;
  data_ = data;
  size_ = size;
  view_ = std::string_view(static_cast<const char*>(data_), size_);
  return true;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

#else  // no mmap on this platform: read_file always streams

bool MappedFile::open(const std::string&) { return false; }
MappedFile::~MappedFile() = default;

#endif

// ---------------------------------------------------------------------------
// LineParser
// ---------------------------------------------------------------------------

LineParser::LineParser(std::istream& in, std::string context,
                       std::string comment_prefixes)
    : in_(&in),
      context_(std::move(context)),
      comment_prefixes_(std::move(comment_prefixes)) {}

LineParser::LineParser(std::string_view text, std::string context,
                       std::string comment_prefixes)
    : buffer_(text),
      context_(std::move(context)),
      comment_prefixes_(std::move(comment_prefixes)) {}

bool LineParser::next_raw_line(std::string_view& out) {
  if (in_ != nullptr) {
    if (!std::getline(*in_, line_buf_)) return false;
    out = line_buf_;
    return true;
  }
  // Memory source: split on '\n' with getline semantics -- the terminator
  // is consumed, a final line without one still counts, '\r' stays in the
  // line (both paths strip it as whitespace during tokenization).
  if (buffer_pos_ >= buffer_.size()) return false;
  const std::size_t nl = buffer_.find('\n', buffer_pos_);
  if (nl == std::string_view::npos) {
    out = buffer_.substr(buffer_pos_);
    buffer_pos_ = buffer_.size();
  } else {
    out = buffer_.substr(buffer_pos_, nl - buffer_pos_);
    buffer_pos_ = nl + 1;
  }
  return true;
}

bool LineParser::next() {
  std::string_view line;
  while (next_raw_line(line)) {
    ++line_number_;
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start])))
      ++start;
    if (start == line.size()) continue;  // blank
    if (comment_prefixes_.find(line[start]) != std::string::npos) continue;
    fields_.clear();
    std::size_t pos = start;
    while (pos < line.size()) {
      while (pos < line.size() &&
             std::isspace(static_cast<unsigned char>(line[pos])))
        ++pos;
      if (pos == line.size()) break;
      const std::size_t begin = pos;
      while (pos < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[pos])))
        ++pos;
      fields_.push_back(line.substr(begin, pos - begin));
    }
    return true;
  }
  return false;
}

std::string_view LineParser::field(std::size_t i) const {
  FECIM_EXPECTS(i < fields_.size());
  return fields_[i];
}

double LineParser::number(std::size_t i) const {
  // strtod needs a NUL-terminated token; the copy is SSO-small for any
  // realistic numeral and keeps the historical grammar (leading '+', hex
  // floats, inf/nan rejected below via isfinite) bit-exact on both sources.
  const std::string text(field(i));
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || end == text.c_str() ||
      errno == ERANGE || !std::isfinite(value))
    fail("'" + text + "' is not a finite number");
  return value;
}

std::size_t LineParser::index(std::size_t i) const {
  const std::string text(field(i));
  if (text.empty() || text[0] == '-' || text[0] == '+')
    fail("'" + text + "' is not a non-negative integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || end == text.c_str() ||
      errno == ERANGE)
    fail("'" + text + "' is not a non-negative integer");
  return static_cast<std::size_t>(value);
}

void LineParser::require_fields(std::size_t lo, std::size_t hi) const {
  if (fields_.size() < lo || fields_.size() > hi) {
    if (lo == hi)
      fail("expected " + std::to_string(lo) + " fields, got " +
           std::to_string(fields_.size()));
    fail("expected " + std::to_string(lo) + ".." + std::to_string(hi) +
         " fields, got " + std::to_string(fields_.size()));
  }
}

void LineParser::fail(const std::string& message) const {
  throw contract_error(context_ + ":" + std::to_string(line_number_) + ": " +
                       message);
}

void LineParser::fail_truncated(const std::string& expected) const {
  throw contract_error(context_ + ": unexpected end of input (expected " +
                       expected + ")");
}

}  // namespace io

// ---------------------------------------------------------------------------
// DIMACS coloring (.col)
// ---------------------------------------------------------------------------

namespace {

// Each reader's body is a template over the line source (std::istream& or
// std::string_view): io::LineParser has a constructor for either, so the
// stream and mmap ingestion paths share one parse -- their behavioral
// identity is by construction, not by parallel maintenance.
template <typename Source>
Graph read_dimacs_coloring_impl(Source&& in, const std::string& context) {
  // DIMACS comments are "c ..." lines; tolerate '#'/'%' too so the shared
  // fixture conventions work across every format.
  io::LineParser parser(in, context, "c#%");
  if (!parser.next())
    throw contract_error(context + ": empty input (expected 'p edge <n> <m>')");
  if (parser.field(0) != "p" || parser.fields() < 4 ||
      parser.field(1) != "edge")
    parser.fail("expected problem line 'p edge <n> <m>'");
  const std::size_t n = parser.index(2);
  const std::size_t m = parser.index(3);
  if (n == 0) parser.fail("graph must have at least one vertex");

  Graph graph(n);
  std::size_t edges_seen = 0;
  while (parser.next()) {
    if (parser.field(0) != "e")
      parser.fail("expected edge line 'e <u> <v>', got '" +
                  std::string(parser.field(0)) + "'");
    parser.require_fields(3, 3);
    const std::size_t u = parser.index(1);
    const std::size_t v = parser.index(2);
    if (u < 1 || u > n || v < 1 || v > n)
      parser.fail("vertex index out of range [1, " + std::to_string(n) + "]");
    if (u == v) parser.fail("self-loop on vertex " + std::to_string(u));
    ++edges_seen;
    // DIMACS files routinely list both directions; dedupe (O(1) via the
    // graph's edge index) instead of accumulating a meaningless weight.
    if (!graph.has_edge(static_cast<std::uint32_t>(u - 1),
                        static_cast<std::uint32_t>(v - 1)))
      graph.add_edge(static_cast<std::uint32_t>(u - 1),
                     static_cast<std::uint32_t>(v - 1), 1.0);
  }
  if (edges_seen < m)
    parser.fail_truncated(std::to_string(m) + " edges, got " +
                          std::to_string(edges_seen));
  return graph;
}

}  // namespace

Graph read_dimacs_coloring(std::istream& in, const std::string& context) {
  return read_dimacs_coloring_impl(in, context);
}

Graph read_dimacs_coloring(std::string_view text, const std::string& context) {
  return read_dimacs_coloring_impl(text, context);
}

Graph read_dimacs_coloring_file(const std::string& path) {
  return io::read_file(path, "dimacs",
                        [](auto&& in, const std::string& context) {
                          return read_dimacs_coloring_impl(in, context);
                        });
}

// ---------------------------------------------------------------------------
// Knapsack
// ---------------------------------------------------------------------------

namespace {

template <typename Source>
KnapsackInstance read_knapsack_impl(Source&& in, const std::string& context) {
  io::LineParser parser(in, context);
  if (!parser.next())
    throw contract_error(context +
                         ": empty input (expected '<num_items> <capacity>')");
  parser.require_fields(2, 2);
  const std::size_t items = parser.index(0);
  const double capacity = parser.number(1);
  if (items == 0) parser.fail("instance must have at least one item");
  if (capacity <= 0.0) parser.fail("capacity must be positive");

  KnapsackInstance instance;
  instance.capacity = capacity;
  instance.items.reserve(items);
  for (std::size_t i = 0; i < items; ++i) {
    if (!parser.next())
      parser.fail_truncated(std::to_string(items) + " item lines, got " +
                            std::to_string(i));
    parser.require_fields(2, 2);
    const double value = parser.number(0);
    const double weight = parser.number(1);
    if (value < 0.0) parser.fail("item value must be non-negative");
    if (weight <= 0.0) parser.fail("item weight must be positive");
    instance.items.push_back({value, weight});
  }
  if (parser.next())
    parser.fail("trailing content after " + std::to_string(items) +
                " item lines");
  return instance;
}

}  // namespace

KnapsackInstance read_knapsack(std::istream& in, const std::string& context) {
  return read_knapsack_impl(in, context);
}

KnapsackInstance read_knapsack(std::string_view text,
                               const std::string& context) {
  return read_knapsack_impl(text, context);
}

KnapsackInstance read_knapsack_file(const std::string& path) {
  return io::read_file(path, "knapsack",
                        [](auto&& in, const std::string& context) {
                          return read_knapsack_impl(in, context);
                        });
}

void write_knapsack(const KnapsackInstance& instance, std::ostream& out) {
  const auto previous = out.precision(
      std::numeric_limits<double>::max_digits10);
  out << instance.items.size() << ' ' << instance.capacity << '\n';
  for (const auto& item : instance.items)
    out << item.value << ' ' << item.weight << '\n';
  out.precision(previous);
}

// ---------------------------------------------------------------------------
// Number partitioning
// ---------------------------------------------------------------------------

namespace {

template <typename Source>
std::vector<double> read_partition_impl(Source&& in,
                                        const std::string& context) {
  io::LineParser parser(in, context);
  std::vector<double> numbers;
  while (parser.next()) {
    for (std::size_t i = 0; i < parser.fields(); ++i) {
      const double value = parser.number(i);
      if (value <= 0.0) parser.fail("numbers must be positive");
      numbers.push_back(value);
    }
  }
  if (numbers.size() < 2)
    throw contract_error(context + ": need at least 2 numbers, got " +
                         std::to_string(numbers.size()));
  return numbers;
}

}  // namespace

std::vector<double> read_partition(std::istream& in,
                                   const std::string& context) {
  return read_partition_impl(in, context);
}

std::vector<double> read_partition(std::string_view text,
                                   const std::string& context) {
  return read_partition_impl(text, context);
}

std::vector<double> read_partition_file(const std::string& path) {
  return io::read_file(path, "partition",
                        [](auto&& in, const std::string& context) {
                          return read_partition_impl(in, context);
                        });
}

// ---------------------------------------------------------------------------
// TSP coordinate list
// ---------------------------------------------------------------------------

namespace {

template <typename Source>
TspInstance read_tsp_coords_impl(Source&& in, const std::string& context) {
  io::LineParser parser(in, context);
  if (!parser.next())
    throw contract_error(context + ": empty input (expected '<num_cities>')");
  parser.require_fields(1, 1);
  const std::size_t cities = parser.index(0);
  if (cities < 3) parser.fail("need at least 3 cities");

  std::vector<std::pair<double, double>> points;
  points.reserve(cities);
  for (std::size_t i = 0; i < cities; ++i) {
    if (!parser.next())
      parser.fail_truncated(std::to_string(cities) + " coordinate lines, got " +
                            std::to_string(i));
    parser.require_fields(2, 2);
    points.emplace_back(parser.number(0), parser.number(1));
  }
  if (parser.next())
    parser.fail("trailing content after " + std::to_string(cities) +
                " coordinate lines");

  TspInstance instance;
  instance.distances.assign(cities, std::vector<double>(cities, 0.0));
  for (std::size_t u = 0; u < cities; ++u)
    for (std::size_t v = u + 1; v < cities; ++v) {
      const double dx = points[u].first - points[v].first;
      const double dy = points[u].second - points[v].second;
      const double d = std::sqrt(dx * dx + dy * dy);
      instance.distances[u][v] = d;
      instance.distances[v][u] = d;
    }
  return instance;
}

}  // namespace

TspInstance read_tsp_coords(std::istream& in, const std::string& context) {
  return read_tsp_coords_impl(in, context);
}

TspInstance read_tsp_coords(std::string_view text,
                            const std::string& context) {
  return read_tsp_coords_impl(text, context);
}

TspInstance read_tsp_coords_file(const std::string& path) {
  return io::read_file(path, "tsp",
                        [](auto&& in, const std::string& context) {
                          return read_tsp_coords_impl(in, context);
                        });
}

// ---------------------------------------------------------------------------
// TSPLIB (EUC_2D subset)
// ---------------------------------------------------------------------------

namespace {

std::string trim_copy(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

/// Split a TSPLIB specification line into (key, value).  The format allows
/// "KEY : value", "KEY: value" and "KEY:value"; section markers like
/// NODE_COORD_SECTION and EOF carry no colon and no value.
void split_spec_line(const io::LineParser& parser, std::string& key,
                     std::string& value) {
  std::string line(parser.field(0));
  for (std::size_t i = 1; i < parser.fields(); ++i) {
    line += ' ';
    line += parser.field(i);
  }
  const auto colon = line.find(':');
  if (colon == std::string::npos) {
    key = std::string(parser.field(0));
    value = trim_copy(line.substr(key.size()));
  } else {
    key = trim_copy(line.substr(0, colon));
    value = trim_copy(line.substr(colon + 1));
  }
}

template <typename Source>
TspInstance read_tsplib_impl(Source&& in, const std::string& context) {
  io::LineParser parser(in, context);

  std::size_t dimension = 0;
  bool have_dimension = false;
  bool have_weight_type = false;
  for (;;) {
    if (!parser.next())
      parser.fail_truncated("NODE_COORD_SECTION");
    std::string key;
    std::string value;
    split_spec_line(parser, key, value);
    if (key == "NODE_COORD_SECTION") break;
    if (key == "EOF")
      parser.fail("EOF before NODE_COORD_SECTION");
    if (key == "DIMENSION") {
      // Match io::LineParser::index(): reject a leading sign explicitly --
      // strtoull legally wraps "-4" to a huge value with no ERANGE, which
      // would turn a malformed header into an allocation failure instead
      // of a line-numbered diagnostic.
      errno = 0;
      char* end = nullptr;
      const unsigned long long parsed =
          (!value.empty() && value[0] != '-' && value[0] != '+')
              ? std::strtoull(value.c_str(), &end, 10)
              : 0;
      if (end == nullptr || end != value.c_str() + value.size() ||
          end == value.c_str() || errno == ERANGE)
        parser.fail("DIMENSION '" + value +
                    "' is not a non-negative integer");
      dimension = static_cast<std::size_t>(parsed);
      have_dimension = true;
    } else if (key == "EDGE_WEIGHT_TYPE") {
      if (value != "EUC_2D")
        parser.fail("unsupported EDGE_WEIGHT_TYPE '" + value +
                    "' (only EUC_2D is supported)");
      have_weight_type = true;
    } else if (key == "TYPE") {
      if (value != "TSP")
        parser.fail("unsupported TYPE '" + value + "' (only TSP)");
    }
    // NAME, COMMENT and any other specification keys are irrelevant to the
    // distance matrix; skip them so real TSPLIB files load unmodified.
  }
  if (!have_dimension)
    parser.fail("NODE_COORD_SECTION before DIMENSION");
  if (!have_weight_type)
    parser.fail("NODE_COORD_SECTION before EDGE_WEIGHT_TYPE (EUC_2D)");
  if (dimension < 3) parser.fail("need at least 3 cities");

  std::vector<std::pair<double, double>> points(dimension);
  std::vector<std::uint8_t> seen(dimension, 0);
  for (std::size_t i = 0; i < dimension; ++i) {
    if (!parser.next())
      parser.fail_truncated(std::to_string(dimension) +
                            " node coordinate lines, got " +
                            std::to_string(i));
    parser.require_fields(3, 3);
    const std::size_t id = parser.index(0);
    if (id < 1 || id > dimension)
      parser.fail("node id " + std::to_string(id) + " outside 1.." +
                  std::to_string(dimension));
    if (seen[id - 1])
      parser.fail("duplicate node id " + std::to_string(id));
    seen[id - 1] = 1;
    points[id - 1] = {parser.number(1), parser.number(2)};
  }
  if (parser.next()) {
    std::string key;
    std::string value;
    split_spec_line(parser, key, value);
    if (key != "EOF" || parser.next())
      parser.fail("trailing content after NODE_COORD_SECTION");
  }

  TspInstance instance;
  instance.distances.assign(dimension, std::vector<double>(dimension, 0.0));
  for (std::size_t u = 0; u < dimension; ++u)
    for (std::size_t v = u + 1; v < dimension; ++v) {
      const double dx = points[u].first - points[v].first;
      const double dy = points[u].second - points[v].second;
      // TSPLIB EUC_2D: nint(sqrt(dx^2 + dy^2)).  The rounding is part of
      // the format -- published optimal tour lengths assume it.
      const double d = std::floor(std::sqrt(dx * dx + dy * dy) + 0.5);
      instance.distances[u][v] = d;
      instance.distances[v][u] = d;
    }
  return instance;
}

/// First significant token decides the format: TSPLIB specification
/// keywords parse as TSPLIB, anything else as the coordinate list.
bool sniff_tsplib_head(std::string_view head) {
  if (const auto colon = head.find(':'); colon != std::string_view::npos)
    head = head.substr(0, colon);
  return head == "NAME" || head == "TYPE" || head == "COMMENT" ||
         head == "DIMENSION" || head == "EDGE_WEIGHT_TYPE" ||
         head == "NODE_COORD_SECTION";
}

TspInstance read_tsp_any(std::string_view text, const std::string& context) {
  // Memory source: sniffing re-reads the same view -- no copy at all.
  bool tsplib = false;
  {
    io::LineParser sniff(text, context);
    if (sniff.next()) tsplib = sniff_tsplib_head(sniff.field(0));
  }
  return tsplib ? read_tsplib_impl(text, context)
                : read_tsp_coords_impl(text, context);
}

TspInstance read_tsp_any(std::istream& in, const std::string& context) {
  // Stream source: buffer once so the sniffed bytes can be re-parsed
  // (streams don't rewind in general), then hand the buffer to the
  // zero-copy path.
  std::stringstream source;
  source << in.rdbuf();
  return read_tsp_any(std::string_view(source.view()), context);
}

}  // namespace

TspInstance read_tsplib(std::istream& in, const std::string& context) {
  return read_tsplib_impl(in, context);
}

TspInstance read_tsplib(std::string_view text, const std::string& context) {
  return read_tsplib_impl(text, context);
}

TspInstance read_tsplib_file(const std::string& path) {
  return io::read_file(path, "tsplib",
                        [](auto&& in, const std::string& context) {
                          return read_tsplib_impl(in, context);
                        });
}

TspInstance read_tsp_file(const std::string& path) {
  return io::read_file(path, "tsp",
                       [](auto&& in, const std::string& context) {
                         return read_tsp_any(in, context);
                       });
}

}  // namespace fecim::problems
