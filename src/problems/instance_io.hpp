// File ingestion for externally specified COP instances.
//
// One tokenizer / comment-skipping / error-reporting core (io::LineParser)
// backs every text format the project reads -- Gset Max-Cut files
// (gset_io.hpp), the QPLIB-subset QUBO format (qubo.hpp), and the
// family-specific formats declared here -- so every malformed input fails
// with a fecim::contract_error naming "<context>:<line>" instead of a bare
// contract crash deep inside a factory.
//
// The parser reads from either of two line sources with identical
// semantics (tests/test_instance_io.cpp pins the differential):
//   * a std::istream (stdin, pipes, string streams), line-buffered;
//   * a read-only memory range (io::MappedFile) -- io::read_file mmaps
//     regular files so multi-million-edge Gset/QPLIB instances tokenize
//     zero-copy, without materializing the text through stream buffers,
//     and falls back to the stream path for anything not mappable.
//
// Formats (all: blank lines skipped, '#' and '%' comment lines skipped,
// fields whitespace-separated):
//
//   DIMACS coloring (.col)    c <comment> / p edge <n> <m> / e <u> <v>
//                             (1-indexed; duplicate and mirrored edges
//                             dedupe; weights are irrelevant to coloring)
//   knapsack                  <num_items> <capacity>
//                             <value> <weight>          (one line per item)
//   partition                 whitespace-separated positive numbers,
//                             any line layout
//   TSP coordinate list       <num_cities>
//                             <x> <y>                   (one line per city;
//                             Euclidean distances)
//   TSPLIB (EUC_2D subset)    "<KEY> : <value>" specification headers,
//                             NODE_COORD_SECTION with "<id> <x> <y>" lines
//                             (published TSPLIB instances load unmodified)
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "problems/graph.hpp"
#include "problems/knapsack.hpp"
#include "problems/tsp.hpp"
#include "util/assert.hpp"

namespace fecim::problems {

namespace io {

/// Read-only memory mapping of a regular file (RAII; unmapped on
/// destruction).  open() returns false -- instead of throwing -- when the
/// path is absent, not a regular file, or the mapping fails, so callers can
/// fall back to stream ingestion; an empty regular file opens successfully
/// as an empty view without an actual mapping (mmap rejects length 0).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  bool open(const std::string& path);
  std::string_view view() const noexcept { return view_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
  std::string_view view_{};
};

/// Splits its source into significant lines (blank and comment lines
/// skipped), tracks physical line numbers, and parses typed fields.  Every
/// failure throws fecim::contract_error prefixed "<context>:<line>:" so
/// callers get actionable diagnostics for hand-edited benchmark files.
///
/// Fields are std::string_view slices: into the caller's memory range for
/// the zero-copy constructor, into an internal line buffer for the stream
/// constructor; either way they stay valid until the next next().
class LineParser {
 public:
  /// `comment_prefixes`: a line whose first non-space character is listed
  /// here is skipped (e.g. "#%" for Gset-style files, "c#%" for DIMACS).
  LineParser(std::istream& in, std::string context,
             std::string comment_prefixes = "#%");
  /// Zero-copy source: `text` (e.g. a MappedFile view) must outlive the
  /// parser.  Lines split on '\n' exactly like std::getline -- no trailing
  /// newline required, '\r' is ordinary (stripped as whitespace during
  /// tokenization, exactly as the stream path treats it).
  LineParser(std::string_view text, std::string context,
             std::string comment_prefixes = "#%");

  /// Advance to the next significant line; false at end of input.
  bool next();

  std::size_t line_number() const noexcept { return line_number_; }
  std::size_t fields() const noexcept { return fields_.size(); }
  std::string_view field(std::size_t i) const;

  /// Typed field accessors; full-token validation (no silent strtod/strtoull
  /// garbage-to-zero), failures name the field text and the line.
  double number(std::size_t i) const;
  std::size_t index(std::size_t i) const;

  /// Fail unless the current line has between `lo` and `hi` fields.
  void require_fields(std::size_t lo, std::size_t hi) const;

  /// Throw a contract_error for the current line: "<context>:<line>: msg".
  [[noreturn]] void fail(const std::string& message) const;
  /// Throw for a truncated stream (no current line to blame).
  [[noreturn]] void fail_truncated(const std::string& expected) const;

 private:
  /// Next raw line from whichever source backs the parser; getline
  /// semantics ('\n' consumed, not delivered).
  bool next_raw_line(std::string_view& out);

  std::istream* in_ = nullptr;    ///< stream source (null for memory source)
  std::string_view buffer_{};     ///< memory source
  std::size_t buffer_pos_ = 0;
  std::string line_buf_;          ///< stream path's current-line storage
  std::string context_;
  std::string comment_prefixes_;
  std::size_t line_number_ = 0;
  std::vector<std::string_view> fields_;
};

/// Open `path` and hand its content to `reader(source, path)` (the path
/// doubles as the parser context, so diagnostics read "<path>:<line>: ...").
/// Regular files arrive as a zero-copy std::string_view over an mmap;
/// anything else (and platforms without mmap) falls back to a std::istream.
/// `reader` must therefore accept both source types -- in practice a
/// generic lambda forwarding to a reader with istream + string_view
/// overloads.  Throws contract_error "<what>: cannot open <path>" when the
/// open fails.  One helper so every *_file reader shares the identical
/// ingestion policy and failure shape.
template <typename Reader>
auto read_file(const std::string& path, const char* what,
               const Reader& reader) {
  MappedFile mapped;
  if (mapped.open(path)) return reader(mapped.view(), path);
  std::ifstream in(path);
  if (!in)
    throw contract_error(std::string(what) + ": cannot open " + path);
  return reader(in, path);
}

}  // namespace io

/// DIMACS graph-coloring instance (.col).  Vertices 1-indexed in the file,
/// 0-indexed in the Graph; duplicate/mirrored "e" lines dedupe (unit weight).
Graph read_dimacs_coloring(std::istream& in,
                           const std::string& context = "dimacs");
Graph read_dimacs_coloring(std::string_view text,
                           const std::string& context = "dimacs");
Graph read_dimacs_coloring_file(const std::string& path);

/// Knapsack instance: header "<num_items> <capacity>" then one
/// "<value> <weight>" line per item.
KnapsackInstance read_knapsack(std::istream& in,
                               const std::string& context = "knapsack");
KnapsackInstance read_knapsack(std::string_view text,
                               const std::string& context = "knapsack");
KnapsackInstance read_knapsack_file(const std::string& path);
void write_knapsack(const KnapsackInstance& instance, std::ostream& out);

/// Number-partitioning instance: all fields of all significant lines are
/// the (positive) numbers; at least two required.
std::vector<double> read_partition(std::istream& in,
                                   const std::string& context = "partition");
std::vector<double> read_partition(std::string_view text,
                                   const std::string& context = "partition");
std::vector<double> read_partition_file(const std::string& path);

/// TSP instance from planar coordinates: "<num_cities>" then one "<x> <y>"
/// line per city; the distance matrix is Euclidean.
TspInstance read_tsp_coords(std::istream& in,
                            const std::string& context = "tsp");
TspInstance read_tsp_coords(std::string_view text,
                            const std::string& context = "tsp");
TspInstance read_tsp_coords_file(const std::string& path);

/// TSPLIB instance, EUC_2D subset: "<KEY> : <value>" specification headers
/// (NAME/COMMENT and unknown keys are skipped; DIMENSION and
/// EDGE_WEIGHT_TYPE : EUC_2D are required, TYPE must be TSP when present),
/// then NODE_COORD_SECTION with one "<id> <x> <y>" line per city (ids
/// 1..DIMENSION, any order, each exactly once) and an optional EOF
/// terminator.  Distances follow the TSPLIB EUC_2D definition
/// nint(sqrt(dx^2 + dy^2)) -- rounded to the nearest integer, so published
/// optima compare exactly.
TspInstance read_tsplib(std::istream& in,
                        const std::string& context = "tsplib");
TspInstance read_tsplib(std::string_view text,
                        const std::string& context = "tsplib");
TspInstance read_tsplib_file(const std::string& path);

/// Load a TSP instance from either supported on-disk format, sniffing the
/// content: a file opening with a TSPLIB specification keyword parses as
/// TSPLIB, anything else as the plain coordinate list.
TspInstance read_tsp_file(const std::string& path);

}  // namespace fecim::problems
