// File ingestion for externally specified COP instances.
//
// One tokenizer / comment-skipping / error-reporting core (io::LineParser)
// backs every text format the project reads -- Gset Max-Cut files
// (gset_io.hpp), the QPLIB-subset QUBO format (qubo.hpp), and the
// family-specific formats declared here -- so every malformed input fails
// with a fecim::contract_error naming "<context>:<line>" instead of a bare
// contract crash deep inside a factory.
//
// Formats (all: blank lines skipped, '#' and '%' comment lines skipped,
// fields whitespace-separated):
//
//   DIMACS coloring (.col)    c <comment> / p edge <n> <m> / e <u> <v>
//                             (1-indexed; duplicate and mirrored edges
//                             dedupe; weights are irrelevant to coloring)
//   knapsack                  <num_items> <capacity>
//                             <value> <weight>          (one line per item)
//   partition                 whitespace-separated positive numbers,
//                             any line layout
//   TSP coordinate list       <num_cities>
//                             <x> <y>                   (one line per city;
//                             Euclidean distances)
//   TSPLIB (EUC_2D subset)    "<KEY> : <value>" specification headers,
//                             NODE_COORD_SECTION with "<id> <x> <y>" lines
//                             (published TSPLIB instances load unmodified)
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "problems/graph.hpp"
#include "problems/knapsack.hpp"
#include "problems/tsp.hpp"
#include "util/assert.hpp"

namespace fecim::problems {

namespace io {

/// Open `path` and hand the stream to `reader(in, path)` (the path doubles
/// as the parser context, so diagnostics read "<path>:<line>: ...").
/// Throws contract_error "<what>: cannot open <path>" when the open fails.
/// One helper so every *_file reader shares the identical failure shape.
template <typename Reader>
auto read_file(const std::string& path, const char* what,
               const Reader& reader) {
  std::ifstream in(path);
  if (!in)
    throw contract_error(std::string(what) + ": cannot open " + path);
  return reader(in, path);
}

/// Splits a stream into significant lines (blank and comment lines skipped),
/// tracks physical line numbers, and parses typed fields.  Every failure
/// throws fecim::contract_error prefixed "<context>:<line>:" so callers get
/// actionable diagnostics for hand-edited benchmark files.
class LineParser {
 public:
  /// `comment_prefixes`: a line whose first non-space character is listed
  /// here is skipped (e.g. "#%" for Gset-style files, "c#%" for DIMACS).
  LineParser(std::istream& in, std::string context,
             std::string comment_prefixes = "#%");

  /// Advance to the next significant line; false at end of input.
  bool next();

  std::size_t line_number() const noexcept { return line_number_; }
  std::size_t fields() const noexcept { return fields_.size(); }
  const std::string& field(std::size_t i) const;

  /// Typed field accessors; full-token validation (no silent strtod/strtoull
  /// garbage-to-zero), failures name the field text and the line.
  double number(std::size_t i) const;
  std::size_t index(std::size_t i) const;

  /// Fail unless the current line has between `lo` and `hi` fields.
  void require_fields(std::size_t lo, std::size_t hi) const;

  /// Throw a contract_error for the current line: "<context>:<line>: msg".
  [[noreturn]] void fail(const std::string& message) const;
  /// Throw for a truncated stream (no current line to blame).
  [[noreturn]] void fail_truncated(const std::string& expected) const;

 private:
  std::istream& in_;
  std::string context_;
  std::string comment_prefixes_;
  std::size_t line_number_ = 0;
  std::vector<std::string> fields_;
};

}  // namespace io

/// DIMACS graph-coloring instance (.col).  Vertices 1-indexed in the file,
/// 0-indexed in the Graph; duplicate/mirrored "e" lines dedupe (unit weight).
Graph read_dimacs_coloring(std::istream& in,
                           const std::string& context = "dimacs");
Graph read_dimacs_coloring_file(const std::string& path);

/// Knapsack instance: header "<num_items> <capacity>" then one
/// "<value> <weight>" line per item.
KnapsackInstance read_knapsack(std::istream& in,
                               const std::string& context = "knapsack");
KnapsackInstance read_knapsack_file(const std::string& path);
void write_knapsack(const KnapsackInstance& instance, std::ostream& out);

/// Number-partitioning instance: all fields of all significant lines are
/// the (positive) numbers; at least two required.
std::vector<double> read_partition(std::istream& in,
                                   const std::string& context = "partition");
std::vector<double> read_partition_file(const std::string& path);

/// TSP instance from planar coordinates: "<num_cities>" then one "<x> <y>"
/// line per city; the distance matrix is Euclidean.
TspInstance read_tsp_coords(std::istream& in,
                            const std::string& context = "tsp");
TspInstance read_tsp_coords_file(const std::string& path);

/// TSPLIB instance, EUC_2D subset: "<KEY> : <value>" specification headers
/// (NAME/COMMENT and unknown keys are skipped; DIMENSION and
/// EDGE_WEIGHT_TYPE : EUC_2D are required, TYPE must be TSP when present),
/// then NODE_COORD_SECTION with one "<id> <x> <y>" line per city (ids
/// 1..DIMENSION, any order, each exactly once) and an optional EOF
/// terminator.  Distances follow the TSPLIB EUC_2D definition
/// nint(sqrt(dx^2 + dy^2)) -- rounded to the nearest integer, so published
/// optima compare exactly.
TspInstance read_tsplib(std::istream& in,
                        const std::string& context = "tsplib");
TspInstance read_tsplib_file(const std::string& path);

/// Load a TSP instance from either supported on-disk format, sniffing the
/// content: a file opening with a TSPLIB specification keyword parses as
/// TSPLIB, anything else as the plain coordinate list.
TspInstance read_tsp_file(const std::string& path);

}  // namespace fecim::problems
