#include "problems/instances.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <numeric>

#include "core/runner.hpp"
#include "ising/qubo.hpp"
#include "problems/coloring.hpp"
#include "problems/partition.hpp"
#include "problems/warm_start.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fecim::problems {

namespace {

/// Strip the pinned ancilla (always the last spin of a with_ancilla model)
/// and convert to binary QUBO variables.
ising::BinaryVector qubo_variables(std::span<const ising::Spin> spins,
                                   std::size_t num_variables) {
  FECIM_EXPECTS(spins.size() >= num_variables);
  return ising::binary_from_spins(spins.subspan(0, num_variables));
}

/// Shortest exact decimal for summaries ("37.5", not "37.500000" -- and a
/// fractional capacity must not be truncated to its integer part).
std::string compact_number(double x) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", x);
  return buffer;
}

/// -H: same variables, every coefficient and the constant negated.
ising::QuboModel negated_qubo(const ising::QuboModel& model) {
  const auto& q = model.q();
  linalg::CsrMatrix::Builder builder(q.rows(), q.rows());
  for (std::size_t r = 0; r < q.rows(); ++r) {
    const auto cols = q.row_cols(r);
    const auto values = q.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      builder.add(r, cols[k], -values[k]);
  }
  return ising::QuboModel(builder.build(), -model.constant());
}

}  // namespace

core::ProblemInstance make_maxcut_problem(std::string name, Graph graph,
                                          std::size_t reference_restarts,
                                          std::uint64_t reference_seed) {
  return core::as_problem(core::make_maxcut_instance(
      std::move(name), std::move(graph), reference_restarts, reference_seed));
}

core::ProblemInstance make_coloring_problem(std::string name, Graph graph,
                                            std::size_t num_colors,
                                            double penalty) {
  if (num_colors == 0) {
    const auto greedy = greedy_coloring(graph);
    for (const auto c : greedy)
      num_colors = std::max<std::size_t>(num_colors, c + 1);
  }
  auto shared_graph = std::make_shared<const Graph>(std::move(graph));
  auto encoding = std::make_shared<const ColoringEncoding>(
      coloring_to_qubo(*shared_graph, num_colors, penalty));

  core::ProblemInstance problem;
  problem.name = std::move(name);
  problem.family = "coloring";
  problem.summary = std::to_string(shared_graph->num_vertices()) +
                    " vertices, " +
                    std::to_string(shared_graph->num_edges()) + " edges, k=" +
                    std::to_string(num_colors);
  problem.objective_label = "colors used";
  problem.model = std::make_shared<const ising::IsingModel>(
      encoding->qubo.to_ising().with_ancilla());
  // Any conflict-free assignment uses at most the palette, so success
  // coincides with feasibility; fewer colors than the palette is a bonus
  // the objective makes visible.
  problem.reference_objective = static_cast<double>(num_colors);
  problem.sense = core::ObjectiveSense::kMinimize;
  problem.decode = [shared_graph, encoding](
                       std::span<const ising::Spin> spins) {
    const auto x =
        qubo_variables(spins, encoding->qubo.num_variables());
    core::DecodedSolution solution;
    solution.violations = static_cast<double>(
        coloring_violations(*shared_graph, *encoding, x));
    solution.feasible = solution.violations == 0.0;
    if (solution.feasible) {
      const auto colors = decode_coloring(*encoding, x);
      std::vector<std::uint8_t> used(encoding->num_colors, 0);
      for (const auto c : colors) used[c] = 1;
      solution.objective = static_cast<double>(
          std::count(used.begin(), used.end(), std::uint8_t{1}));
    } else {
      solution.objective = static_cast<double>(encoding->num_colors);
    }
    return solution;
  };
  problem.warm_start = [shared_graph, encoding] {
    return dsatur_coloring_spins(*shared_graph, encoding->num_colors);
  };
  return problem;
}

core::ProblemInstance make_knapsack_problem(std::string name,
                                            KnapsackInstance instance,
                                            double penalty) {
  auto shared_instance =
      std::make_shared<const KnapsackInstance>(std::move(instance));
  auto encoding = std::make_shared<const KnapsackEncoding>(
      knapsack_to_qubo(*shared_instance, penalty));

  core::ProblemInstance problem;
  problem.name = std::move(name);
  problem.family = "knapsack";
  problem.summary =
      std::to_string(shared_instance->items.size()) + " items + " +
      std::to_string(encoding->num_slack_bits) + " slack bits, capacity " +
      compact_number(shared_instance->capacity);
  problem.objective_label = "value";
  problem.model = std::make_shared<const ising::IsingModel>(
      encoding->qubo.to_ising().with_ancilla());
  // DP optimum for integral weights, greedy density bound otherwise (the
  // selection happens inside knapsack_optimal_value, which no longer
  // contract-crashes on fractional capacities like --capacity 37.5).
  problem.reference_objective = knapsack_optimal_value(*shared_instance);
  problem.sense = core::ObjectiveSense::kMaximize;
  problem.decode = [shared_instance, encoding](
                       std::span<const ising::Spin> spins) {
    const auto x = qubo_variables(
        spins, encoding->num_items + encoding->num_slack_bits);
    const auto decoded = decode_knapsack(*shared_instance, *encoding, x);
    core::DecodedSolution solution;
    solution.objective = decoded.value;
    solution.feasible = decoded.feasible;
    // Capacity excess as the violation magnitude, derived from the decode's
    // own feasibility verdict so the "violations == 0 iff feasible"
    // invariant holds even when the excess sits inside decode_knapsack's
    // floating-point tolerance.
    solution.violations =
        decoded.feasible
            ? 0.0
            : std::max(0.0, decoded.weight - shared_instance->capacity);
    return solution;
  };
  problem.warm_start = [shared_instance, encoding] {
    return greedy_knapsack_spins(*shared_instance, *encoding);
  };
  return problem;
}

core::ProblemInstance make_partition_problem(std::string name,
                                             std::vector<double> numbers) {
  auto shared_numbers =
      std::make_shared<const std::vector<double>>(std::move(numbers));

  core::ProblemInstance problem;
  problem.name = std::move(name);
  problem.family = "partition";
  problem.summary = std::to_string(shared_numbers->size()) + " numbers, sum " +
                    std::to_string(static_cast<long long>(std::accumulate(
                        shared_numbers->begin(), shared_numbers->end(), 0.0)));
  problem.objective_label = "imbalance";
  problem.model = std::make_shared<const ising::IsingModel>(
      partition_to_ising(*shared_numbers));
  problem.reference_objective = greedy_partition_imbalance(*shared_numbers);
  problem.sense = core::ObjectiveSense::kMinimize;
  problem.decode = [shared_numbers](std::span<const ising::Spin> spins) {
    core::DecodedSolution solution;
    solution.objective = partition_imbalance(*shared_numbers, spins);
    solution.feasible = true;  // every bipartition is admissible
    return solution;
  };
  problem.warm_start = [shared_numbers] {
    return differencing_partition_spins(*shared_numbers);
  };
  return problem;
}

core::ProblemInstance make_tsp_problem(std::string name, TspInstance instance,
                                       double penalty) {
  auto shared_instance =
      std::make_shared<const TspInstance>(std::move(instance));
  auto encoding = std::make_shared<const TspEncoding>(
      tsp_to_qubo(*shared_instance, penalty));

  core::ProblemInstance problem;
  problem.name = std::move(name);
  problem.family = "tsp";
  problem.summary = std::to_string(shared_instance->num_cities()) +
                    " cities, " +
                    std::to_string(encoding->qubo.num_variables()) +
                    " one-hot variables";
  problem.objective_label = "tour length";
  problem.model = std::make_shared<const ising::IsingModel>(
      encoding->qubo.to_ising().with_ancilla());
  problem.reference_objective = tsp_heuristic(*shared_instance).length;
  problem.sense = core::ObjectiveSense::kMinimize;
  problem.decode = [shared_instance, encoding](
                       std::span<const ising::Spin> spins) {
    const std::size_t n = encoding->num_cities;
    const auto x = qubo_variables(spins, n * n);
    const auto tour = decode_tsp(*shared_instance, *encoding, x);
    core::DecodedSolution solution;
    solution.feasible = tour.valid;
    solution.objective = tour.valid ? tour.length : 0.0;
    solution.violations = static_cast<double>(tour.violations);
    return solution;
  };
  problem.warm_start = [shared_instance] {
    return nearest_neighbor_tsp_spins(*shared_instance);
  };
  return problem;
}

core::ProblemInstance make_qubo_problem(std::string name,
                                        QuboInstance instance,
                                        std::size_t reference_restarts,
                                        std::uint64_t reference_seed) {
  auto shared_model =
      std::make_shared<const ising::QuboModel>(std::move(instance.model));
  const bool maximize = instance.maximize;

  core::ProblemInstance problem;
  problem.name = std::move(name);
  problem.family = "qubo";
  problem.summary = std::to_string(shared_model->num_variables()) +
                    " variables, " +
                    std::to_string(shared_model->q().nonzeros()) +
                    " coefficients";
  problem.objective_label = "objective";
  // Annealers minimize Ising energy, so a maximize instance anneals -H
  // (the energy minimum is then the domain optimum) while the decode hook
  // and reference keep reporting in original-H units.  The annealed model
  // is kept for the warm start, which must descend the minimized H.
  auto annealed = std::make_shared<const ising::QuboModel>(
      maximize ? negated_qubo(*shared_model) : *shared_model);
  problem.model = std::make_shared<const ising::IsingModel>(
      annealed->to_ising().with_ancilla());
  problem.reference_objective = qubo_reference_value(
      *shared_model, maximize, reference_restarts, reference_seed);
  problem.sense = maximize ? core::ObjectiveSense::kMaximize
                           : core::ObjectiveSense::kMinimize;
  problem.decode = [shared_model](std::span<const ising::Spin> spins) {
    const auto x = qubo_variables(spins, shared_model->num_variables());
    core::DecodedSolution solution;
    solution.objective = shared_model->value(x);
    solution.feasible = true;  // unconstrained by definition
    return solution;
  };
  problem.warm_start = [annealed] { return descent_qubo_spins(*annealed); };
  return problem;
}

std::vector<std::uint32_t> coloring_from_spins(
    const Graph& graph, std::size_t num_colors,
    std::span<const ising::Spin> spins) {
  // The one-hot layout depends on (vertices, colors) only, so any positive
  // penalty rebuilds the factory's encoding exactly.
  const auto encoding = coloring_to_qubo(graph, num_colors, 1.0);
  return decode_coloring(encoding,
                         qubo_variables(spins, encoding.qubo.num_variables()));
}

KnapsackSolution knapsack_from_spins(const KnapsackInstance& instance,
                                     std::span<const ising::Spin> spins) {
  // Variable layout (items first, then slack) depends on the instance only,
  // not on the penalty weight.
  const auto encoding = knapsack_to_qubo(instance);
  return decode_knapsack(
      instance, encoding,
      qubo_variables(spins, encoding.num_items + encoding.num_slack_bits));
}

KnapsackInstance random_knapsack(std::size_t items, std::uint64_t seed,
                                 double capacity) {
  FECIM_EXPECTS(items > 0);
  util::Rng rng(seed);
  KnapsackInstance instance;
  instance.items.reserve(items);
  double total_weight = 0.0;
  for (std::size_t i = 0; i < items; ++i) {
    const auto value = static_cast<double>(rng.uniform_int(3, 20));
    const auto weight = static_cast<double>(rng.uniform_int(2, 12));
    instance.items.push_back({value, weight});
    total_weight += weight;
  }
  instance.capacity =
      capacity > 0.0 ? capacity : std::max(1.0, std::round(0.4 * total_weight));
  return instance;
}

std::vector<double> random_partition_numbers(std::size_t count,
                                             std::uint64_t seed) {
  FECIM_EXPECTS(count >= 2);
  util::Rng rng(seed);
  std::vector<double> numbers(count);
  for (auto& x : numbers)
    x = static_cast<double>(rng.uniform_int(1, 64));
  return numbers;
}

}  // namespace fecim::problems
