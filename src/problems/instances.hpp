// ProblemInstance factories: one per built-in COP family.
//
// Each factory encodes the domain problem into an annealer-ready Ising
// model (QUBO linear terms folded into a pinned ancilla spin), computes a
// best-known reference objective, and captures the encoding state inside a
// decode hook that maps final spins back to the domain:
//
//   family     | objective        | sense    | feasibility
//   -----------+------------------+----------+---------------------------------
//   maxcut     | cut value        | maximize | always feasible
//   coloring   | colors used      | minimize | no conflicts (one-hot + edges)
//   knapsack   | packed value     | maximize | total weight <= capacity
//   partition  | |sum A - sum B|  | minimize | always feasible
//   tsp        | tour length      | minimize | both one-hot families satisfied
//   qubo       | H(x)             | either   | always feasible
//
// Encoding conventions, penalty auto-tuning and decode semantics are
// documented in docs/problems.md.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/problem_instance.hpp"
#include "problems/graph.hpp"
#include "problems/knapsack.hpp"
#include "problems/qubo.hpp"
#include "problems/tsp.hpp"

namespace fecim::problems {

/// Max-Cut: direct Ising mapping, reference from reference_cut() with
/// `reference_restarts` random-start 1-opt descents (certified optimum for
/// toroidal instances).
core::ProblemInstance make_maxcut_problem(std::string name, Graph graph,
                                          std::size_t reference_restarts = 64,
                                          std::uint64_t reference_seed = 7);

/// Graph k-coloring (one-hot QUBO).  num_colors == 0 picks the greedy
/// (largest-degree-first) palette size.  The reference objective is the
/// palette size, so any conflict-free assignment counts as success.
core::ProblemInstance make_coloring_problem(std::string name, Graph graph,
                                            std::size_t num_colors = 0,
                                            double penalty = 2.0);

/// 0/1 knapsack (logarithmic slack QUBO).  penalty == 0 auto-tunes to
/// max item value + 1.  The reference objective is the exact DP optimum for
/// integral weights, a greedy density bound otherwise.
core::ProblemInstance make_knapsack_problem(std::string name,
                                            KnapsackInstance instance,
                                            double penalty = 0.0);

/// Number partitioning: dense J_ij = s_i s_j coupling matrix; reference is
/// the greedy largest-first imbalance (sound upper bound).
core::ProblemInstance make_partition_problem(std::string name,
                                             std::vector<double> numbers);

/// Travelling salesman (Lucas one-hot position QUBO).  penalty == 0
/// auto-tunes to max distance * n.  Reference is the nearest-neighbour +
/// 2-opt heuristic tour.
core::ProblemInstance make_tsp_problem(std::string name, TspInstance instance,
                                       double penalty = 0.0);

/// Generic QUBO (read_qubo_file / random_qubo): objective is H(x) itself,
/// sense from the instance, every assignment feasible.  Reference from
/// qubo_reference_value() with `reference_restarts` random-start 1-opt
/// descents.  Maximize instances anneal -H (annealers minimize energy);
/// decode and reference stay in original-H units.
core::ProblemInstance make_qubo_problem(std::string name,
                                        QuboInstance instance,
                                        std::size_t reference_restarts = 24,
                                        std::uint64_t reference_seed = 7);

/// Explicit vertex colors from a spin configuration produced by a
/// make_coloring_problem campaign (e.g. a RunRecord's best_spins; the
/// pinned ancilla is stripped internally).  Vertices whose one-hot group is
/// not exactly single-hot get the invalid marker num_colors.  Lives here so
/// call sites never re-derive the factory's variable layout themselves.
std::vector<std::uint32_t> coloring_from_spins(
    const Graph& graph, std::size_t num_colors,
    std::span<const ising::Spin> spins);

/// Item selection + value/weight feasibility from a spin configuration
/// produced by a make_knapsack_problem campaign (ancilla stripped, slack
/// bits dropped).
KnapsackSolution knapsack_from_spins(const KnapsackInstance& instance,
                                     std::span<const ising::Spin> spins);

/// Seeded random knapsack with integral values/weights (so the DP reference
/// applies); capacity == 0 defaults to ~40 % of the total weight.
KnapsackInstance random_knapsack(std::size_t items, std::uint64_t seed,
                                 double capacity = 0.0);

/// Seeded random partition numbers: integers in [1, 64].
std::vector<double> random_partition_numbers(std::size_t count,
                                             std::uint64_t seed);

}  // namespace fecim::problems
