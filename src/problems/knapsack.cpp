#include "problems/knapsack.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace fecim::problems {

KnapsackEncoding knapsack_to_qubo(const KnapsackInstance& instance,
                                  double penalty) {
  const std::size_t n = instance.items.size();
  FECIM_EXPECTS(n > 0);
  FECIM_EXPECTS(instance.capacity > 0.0);
  for (const auto& item : instance.items) {
    FECIM_EXPECTS(item.weight > 0.0);
    FECIM_EXPECTS(item.value >= 0.0);
  }

  if (penalty <= 0.0) {
    double max_value = 0.0;
    for (const auto& item : instance.items)
      max_value = std::max(max_value, item.value);
    penalty = max_value + 1.0;
  }

  // Slack coefficients 1, 2, 4, ..., residual so that sum c_j covers
  // exactly [0, capacity].
  std::vector<double> slack;
  double remaining = instance.capacity;
  double next_bit = 1.0;
  while (remaining > 0.0) {
    const double coeff = std::min(next_bit, remaining);
    slack.push_back(coeff);
    remaining -= coeff;
    next_bit *= 2.0;
  }

  const std::size_t vars = n + slack.size();
  // Linear coefficient vector a: item weights then slack coefficients.
  std::vector<double> a(vars);
  for (std::size_t i = 0; i < n; ++i) a[i] = instance.items[i].weight;
  for (std::size_t j = 0; j < slack.size(); ++j) a[n + j] = slack[j];

  // H = -sum v_i x_i + A (a.x - W)^2
  //   = -sum v_i x_i + A (sum_i a_i^2 x_i + 2 sum_{i<j} a_i a_j x_i x_j
  //                       - 2W a.x + W^2)
  linalg::CsrMatrix::Builder q(vars, vars);
  double constant = penalty * instance.capacity * instance.capacity;
  for (std::size_t i = 0; i < vars; ++i) {
    double diag = penalty * a[i] * (a[i] - 2.0 * instance.capacity);
    if (i < n) diag -= instance.items[i].value;
    q.add(i, i, diag);
    for (std::size_t j = i + 1; j < vars; ++j)
      q.add(i, j, 2.0 * penalty * a[i] * a[j]);
  }

  return KnapsackEncoding{ising::QuboModel(q.build(), constant), n,
                          slack.size(), std::move(slack), penalty};
}

KnapsackSolution decode_knapsack(const KnapsackInstance& instance,
                                 const KnapsackEncoding& encoding,
                                 std::span<const std::uint8_t> x) {
  FECIM_EXPECTS(x.size() == encoding.num_items + encoding.num_slack_bits);
  KnapsackSolution solution;
  solution.selection.assign(x.begin(),
                            x.begin() + static_cast<std::ptrdiff_t>(
                                            encoding.num_items));
  for (std::size_t i = 0; i < encoding.num_items; ++i) {
    if (!solution.selection[i]) continue;
    solution.value += instance.items[i].value;
    solution.weight += instance.items[i].weight;
  }
  solution.feasible = solution.weight <= instance.capacity + 1e-9;
  return solution;
}

double knapsack_optimal_value(const KnapsackInstance& instance) {
  // Classic DP over integer capacities; weights must be integral.
  const auto capacity = static_cast<std::size_t>(instance.capacity);
  FECIM_EXPECTS(std::fabs(instance.capacity -
                          static_cast<double>(capacity)) < 1e-9);
  std::vector<double> best(capacity + 1, 0.0);
  for (const auto& item : instance.items) {
    const auto w = static_cast<std::size_t>(item.weight);
    FECIM_EXPECTS(std::fabs(item.weight - static_cast<double>(w)) < 1e-9);
    for (std::size_t c = capacity; c >= w; --c)
      best[c] = std::max(best[c], best[c - w] + item.value);
  }
  return best[capacity];
}

}  // namespace fecim::problems
