#include "problems/knapsack.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace fecim::problems {

KnapsackEncoding knapsack_to_qubo(const KnapsackInstance& instance,
                                  double penalty) {
  const std::size_t n = instance.items.size();
  FECIM_EXPECTS(n > 0);
  FECIM_EXPECTS(instance.capacity > 0.0);
  for (const auto& item : instance.items) {
    FECIM_EXPECTS(item.weight > 0.0);
    FECIM_EXPECTS(item.value >= 0.0);
  }

  if (penalty <= 0.0) {
    double max_value = 0.0;
    for (const auto& item : instance.items)
      max_value = std::max(max_value, item.value);
    penalty = max_value + 1.0;
  }

  // Slack coefficients 1, 2, 4, ..., residual so that sum c_j covers
  // exactly [0, capacity].
  std::vector<double> slack;
  double remaining = instance.capacity;
  double next_bit = 1.0;
  while (remaining > 0.0) {
    const double coeff = std::min(next_bit, remaining);
    slack.push_back(coeff);
    remaining -= coeff;
    next_bit *= 2.0;
  }

  const std::size_t vars = n + slack.size();
  // Linear coefficient vector a: item weights then slack coefficients.
  std::vector<double> a(vars);
  for (std::size_t i = 0; i < n; ++i) a[i] = instance.items[i].weight;
  for (std::size_t j = 0; j < slack.size(); ++j) a[n + j] = slack[j];

  // H = -sum v_i x_i + A (a.x - W)^2
  //   = -sum v_i x_i + A (sum_i a_i^2 x_i + 2 sum_{i<j} a_i a_j x_i x_j
  //                       - 2W a.x + W^2)
  linalg::CsrMatrix::Builder q(vars, vars);
  double constant = penalty * instance.capacity * instance.capacity;
  for (std::size_t i = 0; i < vars; ++i) {
    double diag = penalty * a[i] * (a[i] - 2.0 * instance.capacity);
    if (i < n) diag -= instance.items[i].value;
    q.add(i, i, diag);
    for (std::size_t j = i + 1; j < vars; ++j)
      q.add(i, j, 2.0 * penalty * a[i] * a[j]);
  }

  return KnapsackEncoding{ising::QuboModel(q.build(), constant), n,
                          slack.size(), std::move(slack), penalty};
}

KnapsackSolution decode_knapsack(const KnapsackInstance& instance,
                                 const KnapsackEncoding& encoding,
                                 std::span<const std::uint8_t> x) {
  FECIM_EXPECTS(x.size() == encoding.num_items + encoding.num_slack_bits);
  KnapsackSolution solution;
  solution.selection.assign(x.begin(),
                            x.begin() + static_cast<std::ptrdiff_t>(
                                            encoding.num_items));
  for (std::size_t i = 0; i < encoding.num_items; ++i) {
    if (!solution.selection[i]) continue;
    solution.value += instance.items[i].value;
    solution.weight += instance.items[i].weight;
  }
  solution.feasible = solution.weight <= instance.capacity + 1e-9;
  return solution;
}

double knapsack_greedy_value(const KnapsackInstance& instance) {
  std::vector<std::size_t> order(instance.items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return instance.items[a].value * instance.items[b].weight >
           instance.items[b].value * instance.items[a].weight;
  });
  double value = 0.0;
  double weight = 0.0;
  for (const auto i : order) {
    if (weight + instance.items[i].weight > instance.capacity) continue;
    weight += instance.items[i].weight;
    value += instance.items[i].value;
  }
  return value;
}

double knapsack_optimal_value(const KnapsackInstance& instance) {
  const auto integral = [](double x) {
    return std::fabs(x - std::round(x)) < 1e-9;
  };
  // Classic DP over integer capacities needs integral weights; a user
  // capacity like 37.5 must not crash -- integral weights cannot use the
  // fractional part, so flooring preserves the optimum exactly.
  for (const auto& item : instance.items)
    if (!integral(item.weight)) return knapsack_greedy_value(instance);
  // The DP table is O(capacity); a file-supplied capacity like 1e15 must
  // degrade to the greedy bound, not abort on an 8 PB allocation.
  constexpr double kDpCapacityLimit = 16'000'000.0;  // 128 MB of doubles
  if (instance.capacity > kDpCapacityLimit)
    return knapsack_greedy_value(instance);
  const auto capacity = static_cast<std::size_t>(std::floor(instance.capacity));
  std::vector<double> best(capacity + 1, 0.0);
  double free_value = 0.0;  // zero-weight items always pack
  for (const auto& item : instance.items) {
    const auto w = static_cast<std::size_t>(std::llround(item.weight));
    if (w == 0) {
      free_value += item.value;
      continue;
    }
    if (w > capacity) continue;
    for (std::size_t c = capacity; c >= w; --c)
      best[c] = std::max(best[c], best[c - w] + item.value);
  }
  return best[capacity] + free_value;
}

}  // namespace fecim::problems
