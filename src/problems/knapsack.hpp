// 0/1 knapsack as a QUBO with logarithmic slack encoding -- the COP class
// HyCiM [15] targets (inequality-constrained problems).
//
//   maximize  sum v_i x_i   s.t.  sum w_i x_i <= W
//
//   H = -sum v_i x_i + A * (sum w_i x_i + sum_j c_j s_j - W)^2
//
// with slack coefficients c_j = 1,2,4,...,residual so the slack can express
// every value in [0, W].  For feasible x with the matching slack, H equals
// -value; infeasible x cannot reach the penalty minimum when A > max v_i.
#pragma once

#include <cstdint>
#include <vector>

#include "ising/qubo.hpp"

namespace fecim::problems {

struct KnapsackItem {
  double value;
  double weight;
};

struct KnapsackInstance {
  std::vector<KnapsackItem> items;
  double capacity;
};

struct KnapsackEncoding {
  ising::QuboModel qubo;
  std::size_t num_items;
  std::size_t num_slack_bits;
  std::vector<double> slack_coefficients;
  double penalty;
};

KnapsackEncoding knapsack_to_qubo(const KnapsackInstance& instance,
                                  double penalty = 0.0 /* 0 = auto */);

struct KnapsackSolution {
  std::vector<std::uint8_t> selection;  ///< item bits only (slack stripped)
  double value = 0.0;
  double weight = 0.0;
  bool feasible = false;
};

/// Decode the item bits from a full variable assignment (items first, then
/// slack bits) and evaluate value/weight/feasibility.
KnapsackSolution decode_knapsack(const KnapsackInstance& instance,
                                 const KnapsackEncoding& encoding,
                                 std::span<const std::uint8_t> x);

/// Greedy value-density packing: always-feasible lower bound on the
/// optimum, and the reference when non-integral weights rule out DP.
double knapsack_greedy_value(const KnapsackInstance& instance);

/// Best-known packed value.  Exact DP optimum when every weight is
/// integral (a fractional capacity is floored first -- integral weights
/// cannot use the fraction, so the optimum is unchanged); falls back to
/// the greedy density bound for non-integral weights or capacities too
/// large for the O(capacity) DP table, instead of dying on a contract
/// check or an allocation failure.
double knapsack_optimal_value(const KnapsackInstance& instance);

}  // namespace fecim::problems
