#include "problems/maxcut.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace fecim::problems {

ising::IsingModel maxcut_to_ising(const Graph& graph) {
  const std::size_t n = graph.num_vertices();
  linalg::CsrMatrix::Builder builder(n, n);
  for (const auto& e : graph.edges())
    builder.add_symmetric(e.u, e.v, e.weight / 2.0);
  return ising::IsingModel(builder.build());
}

double cut_value(const Graph& graph, std::span<const ising::Spin> spins) {
  FECIM_EXPECTS(spins.size() == graph.num_vertices());
  double cut = 0.0;
  for (const auto& e : graph.edges())
    if (spins[e.u] != spins[e.v]) cut += e.weight;
  return cut;
}

double cut_from_energy(const Graph& graph, double energy) {
  return (graph.total_weight() - energy) / 2.0;
}

ExactCut brute_force_max_cut(const Graph& graph) {
  const std::size_t n = graph.num_vertices();
  FECIM_EXPECTS(n <= 24);
  // Spin 0 can be pinned: cut(sigma) == cut(-sigma).
  const std::uint64_t combos = std::uint64_t{1} << (n - 1);
  ExactCut best{ising::spins_from_bits(0, n), 0.0};
  best.cut = cut_value(graph, best.spins);
  for (std::uint64_t bits = 0; bits < combos; ++bits) {
    const auto spins = ising::spins_from_bits(bits << 1, n);
    const double cut = cut_value(graph, spins);
    if (cut > best.cut) {
      best.cut = cut;
      best.spins = spins;
    }
  }
  return best;
}

double local_search_1opt(const Graph& graph, ising::SpinVector& spins,
                         std::size_t max_passes) {
  const std::size_t n = graph.num_vertices();
  FECIM_EXPECTS(spins.size() == n);

  // gain[v] = cut increase from flipping v
  //         = sum_{u ~ v} w_uv * (same_side ? +1 : -1).
  std::vector<double> gain(n, 0.0);
  for (const auto& e : graph.edges()) {
    const double signed_w =
        spins[e.u] == spins[e.v] ? e.weight : -e.weight;
    gain[e.u] += signed_w;
    gain[e.v] += signed_w;
  }

  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (gain[v] <= 1e-12) continue;
      improved = true;
      spins[v] = static_cast<ising::Spin>(-spins[v]);
      gain[v] = -gain[v];
      const auto nbrs = graph.neighbors(v);
      const auto weights = graph.neighbor_weights(v);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const auto u = nbrs[k];
        // Edge u-v changed sides: the u gain shifts by +-2w.
        gain[u] += spins[u] == spins[v] ? 2.0 * weights[k] : -2.0 * weights[k];
      }
    }
    if (!improved) break;
  }
  return cut_value(graph, spins);
}

double reference_cut(const Graph& graph, std::size_t restarts,
                     std::uint64_t seed) {
  // Certified optimum for the toroidal family: bipartite graph with
  // non-negative weights cuts every edge.
  bool all_positive = true;
  for (const auto& e : graph.edges())
    if (e.weight < 0.0) {
      all_positive = false;
      break;
    }
  if (all_positive && graph.is_bipartite()) return graph.total_weight();

  FECIM_EXPECTS(restarts > 0);
  util::Rng rng(seed);
  double best = 0.0;
  for (std::size_t r = 0; r < restarts; ++r) {
    auto spins = ising::random_spins(graph.num_vertices(), rng);
    best = std::max(best, local_search_1opt(graph, spins));
  }
  return best;
}

}  // namespace fecim::problems
