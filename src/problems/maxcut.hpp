// Max-Cut <-> Ising mapping and reference solvers.
//
// With J_uv = J_vu = w_uv / 2 (zero diagonal) the Ising energy satisfies
//   E(sigma) = sum_e w_e sigma_u sigma_v,
//   cut(sigma) = (W_total - E(sigma)) / 2,
// so minimizing E maximizes the cut.  These identities are property-tested.
#pragma once

#include <cstdint>
#include <optional>

#include "ising/ising_model.hpp"
#include "problems/graph.hpp"
#include "util/rng.hpp"

namespace fecim::problems {

/// Ising model whose ground state is the maximum cut of `graph`.
ising::IsingModel maxcut_to_ising(const Graph& graph);

/// Weight of edges crossing the partition induced by `spins`.
double cut_value(const Graph& graph, std::span<const ising::Spin> spins);

/// cut from an Ising energy: (W_total - energy) / 2.
double cut_from_energy(const Graph& graph, double energy);

/// Exhaustive optimum (n <= 24).
struct ExactCut {
  ising::SpinVector spins;
  double cut;
};
ExactCut brute_force_max_cut(const Graph& graph);

/// Single-flip steepest-descent local search on the cut objective; improves
/// `spins` in place until 1-opt locality, returns the final cut value.
/// O(iterations * degree) via incremental gain maintenance.
double local_search_1opt(const Graph& graph, ising::SpinVector& spins,
                         std::size_t max_passes = 200);

/// Best-known cut proxy for instances too large to solve exactly: the best
/// of `restarts` random-start 1-opt descents, or the certified optimum for
/// bipartite unit-weight graphs (toroidal family) where max cut == |E|.
double reference_cut(const Graph& graph, std::size_t restarts,
                     std::uint64_t seed);

}  // namespace fecim::problems
