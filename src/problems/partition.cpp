#include "problems/partition.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace fecim::problems {

ising::IsingModel partition_to_ising(std::span<const double> numbers) {
  const std::size_t n = numbers.size();
  FECIM_EXPECTS(n >= 2);
  linalg::CsrMatrix::Builder builder(n, n);
  double constant = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    constant += numbers[i] * numbers[i];
    for (std::size_t j = i + 1; j < n; ++j)
      builder.add_symmetric(i, j, numbers[i] * numbers[j]);
  }
  // (sum s_i sigma_i)^2 = sum s_i^2 + 2 sum_{i<j} s_i s_j sigma_i sigma_j,
  // and sigma^T J sigma with both triangles realizes exactly that doubled sum.
  return ising::IsingModel(builder.build(), {}, constant);
}

double partition_imbalance(std::span<const double> numbers,
                           std::span<const ising::Spin> spins) {
  FECIM_EXPECTS(numbers.size() == spins.size());
  double signed_sum = 0.0;
  for (std::size_t i = 0; i < numbers.size(); ++i)
    signed_sum += numbers[i] * static_cast<double>(spins[i]);
  return std::fabs(signed_sum);
}

double greedy_partition_imbalance(std::span<const double> numbers) {
  std::vector<double> sorted(numbers.begin(), numbers.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double a = 0.0;
  double b = 0.0;
  for (const double s : sorted) (a <= b ? a : b) += s;
  return std::fabs(a - b);
}

}  // namespace fecim::problems
