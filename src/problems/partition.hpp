// Number partitioning: split numbers s_i into two sets with minimal sum
// difference.  H(sigma) = (sum s_i sigma_i)^2 maps directly onto the Ising
// form with J_ij = s_i s_j and constant sum s_i^2 -- a fully dense coupling
// matrix, which stresses the crossbar mapping differently from sparse
// Max-Cut instances.
#pragma once

#include <span>
#include <vector>

#include "ising/ising_model.hpp"

namespace fecim::problems {

ising::IsingModel partition_to_ising(std::span<const double> numbers);

/// |sum of side A - sum of side B| for a configuration.
double partition_imbalance(std::span<const double> numbers,
                           std::span<const ising::Spin> spins);

/// Greedy differencing-style reference: largest-first assignment to the
/// lighter side.  Not optimal, but a sound upper bound for tests.
double greedy_partition_imbalance(std::span<const double> numbers);

}  // namespace fecim::problems
