#include "problems/qubo.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>
#include <unordered_set>
#include <utility>

#include "problems/instance_io.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fecim::problems {

namespace {

template <typename Source>
QuboInstance read_qubo_impl(Source&& in, const std::string& context) {
  io::LineParser parser(in, context);

  // Optional directives ahead of the header, in any order.
  bool maximize = false;
  double constant = 0.0;
  for (;;) {
    if (!parser.next())
      throw contract_error(context + ": empty input (expected '<n> <nnz>')");
    if (parser.field(0) == "minimize" || parser.field(0) == "maximize") {
      parser.require_fields(1, 1);
      maximize = parser.field(0) == "maximize";
      continue;
    }
    if (parser.field(0) == "constant") {
      parser.require_fields(2, 2);
      constant = parser.number(1);
      continue;
    }
    break;
  }

  parser.require_fields(2, 2);
  const std::size_t n = parser.index(0);
  const std::size_t nnz = parser.index(1);
  if (n == 0) parser.fail("QUBO must have at least one variable");

  linalg::CsrMatrix::Builder builder(n, n);
  for (std::size_t k = 0; k < nnz; ++k) {
    if (!parser.next())
      parser.fail_truncated(std::to_string(nnz) + " triplets, got " +
                            std::to_string(k));
    parser.require_fields(3, 3);
    std::size_t i = parser.index(0);
    std::size_t j = parser.index(1);
    const double q = parser.number(2);
    if (i < 1 || i > n || j < 1 || j > n)
      parser.fail("variable index out of range [1, " + std::to_string(n) +
                  "]");
    // Canonicalize onto the upper triangle; duplicates and mirrored
    // entries accumulate (the Builder merges by summation).
    if (i > j) std::swap(i, j);
    builder.add(i - 1, j - 1, q);
  }
  if (parser.next())
    parser.fail("trailing content after " + std::to_string(nnz) +
                " triplets");

  return QuboInstance{ising::QuboModel(builder.build(), constant), maximize};
}

}  // namespace

QuboInstance read_qubo(std::istream& in, const std::string& context) {
  return read_qubo_impl(in, context);
}

QuboInstance read_qubo(std::string_view text, const std::string& context) {
  return read_qubo_impl(text, context);
}

QuboInstance read_qubo_file(const std::string& path) {
  return io::read_file(path, "qubo",
                       [](auto&& in, const std::string& context) {
                         return read_qubo_impl(in, context);
                       });
}

void write_qubo(const QuboInstance& instance, std::ostream& out) {
  const auto previous =
      out.precision(std::numeric_limits<double>::max_digits10);
  out << (instance.maximize ? "maximize" : "minimize") << '\n';
  if (instance.model.constant() != 0.0)
    out << "constant " << instance.model.constant() << '\n';
  const auto& q = instance.model.q();
  out << q.rows() << ' ' << q.nonzeros() << '\n';
  for (std::size_t r = 0; r < q.rows(); ++r) {
    const auto cols = q.row_cols(r);
    const auto values = q.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      out << (r + 1) << ' ' << (cols[k] + 1) << ' ' << values[k] << '\n';
  }
  out.precision(previous);
}

void write_qubo_file(const QuboInstance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw contract_error("qubo: cannot open " + path + " for write");
  write_qubo(instance, out);
}

QuboInstance random_qubo(std::size_t variables, double avg_degree,
                         std::uint64_t seed) {
  FECIM_EXPECTS(variables > 0);
  FECIM_EXPECTS(avg_degree >= 0.0);
  util::Rng rng(seed);
  linalg::CsrMatrix::Builder builder(variables, variables);
  for (std::size_t i = 0; i < variables; ++i)
    builder.add(i, i, rng.uniform(-1.0, 1.0));

  const auto target = static_cast<std::size_t>(
      std::min(avg_degree * static_cast<double>(variables) / 2.0,
               static_cast<double>(variables) *
                   static_cast<double>(variables - 1) / 2.0));
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(target * 2);
  while (seen.size() < target) {
    auto u = rng.uniform_index(variables);
    auto v = rng.uniform_index(variables);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!seen.insert((u << 32) | v).second) continue;
    builder.add(static_cast<std::size_t>(u), static_cast<std::size_t>(v),
                rng.uniform(-1.0, 1.0));
  }
  return QuboInstance{ising::QuboModel(builder.build()), false};
}

double qubo_reference_value(const ising::QuboModel& model, bool maximize,
                            std::size_t restarts, std::uint64_t seed) {
  FECIM_EXPECTS(restarts > 0);
  // value(x) == to_ising().energy(spins_from_binary(x)) exactly, so the
  // descent runs on the Ising form's O(degree) delta_energy.
  const auto ising_model = model.to_ising();
  const std::size_t n = ising_model.num_spins();
  util::Rng rng(seed);
  double best = maximize ? -std::numeric_limits<double>::infinity()
                         : std::numeric_limits<double>::infinity();
  for (std::size_t restart = 0; restart < restarts; ++restart) {
    auto spins = ising::random_spins(n, rng);
    double energy = ising_model.energy(spins);
    bool improved = true;
    for (std::size_t pass = 0; improved && pass < 200; ++pass) {
      improved = false;
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t flip[1] = {i};
        const double delta = ising_model.delta_energy(spins, flip);
        if (maximize ? delta > 1e-12 : delta < -1e-12) {
          spins[i] = static_cast<ising::Spin>(-spins[i]);
          energy += delta;
          improved = true;
        }
      }
    }
    best = maximize ? std::max(best, energy) : std::min(best, energy);
  }
  return best;
}

}  // namespace fecim::problems
