// Generic QUBO instances: externally specified H(x) = x^T Q x + c problems
// imported from files, the path that lets the annealer meet published
// QUBO/Ising benchmarks (QPLIB-style collections) head-on instead of only
// solving generated instances.
//
// File format (QPLIB-subset / COO triplets; '#'/'%' comments and blank
// lines skipped anywhere, parsed on the shared ingestion core of
// problems/instance_io.hpp):
//
//   [minimize | maximize]      optional sense directive   [minimize]
//   [constant <c>]             optional objective offset  [0]
//   <n> <nnz>                  header
//   <i> <j> <q>                nnz coefficient triplets, 1-indexed;
//                              i == j is a linear term, duplicates and
//                              mirrored (j, i) entries accumulate onto the
//                              upper triangle
//
// The objective is H(x) evaluated as written (upper-triangle convention);
// `maximize` flips the campaign sense, not the stored coefficients.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "ising/qubo.hpp"

namespace fecim::problems {

struct QuboInstance {
  ising::QuboModel model;
  bool maximize = false;
};

QuboInstance read_qubo(std::istream& in, const std::string& context = "qubo");
QuboInstance read_qubo(std::string_view text,
                       const std::string& context = "qubo");
QuboInstance read_qubo_file(const std::string& path);

/// Inverse of read_qubo at max_digits10 precision (round-trip lossless).
void write_qubo(const QuboInstance& instance, std::ostream& out);
void write_qubo_file(const QuboInstance& instance, const std::string& path);

/// Seeded random sparse QUBO: round(n * avg_degree / 2) distinct off-diagonal
/// couplings and a dense diagonal, coefficients uniform in [-1, 1].  Used by
/// fecim_solve when --problem qubo runs without a file, and by tests.
QuboInstance random_qubo(std::size_t variables, double avg_degree,
                         std::uint64_t seed);

/// Best-known reference objective: the best of `restarts` random-start
/// single-flip steepest descents on H (sense-aware).  The same 1-opt
/// multi-restart proxy reference_cut() provides for Max-Cut.
double qubo_reference_value(const ising::QuboModel& model, bool maximize,
                            std::size_t restarts, std::uint64_t seed);

}  // namespace fecim::problems
