#include "problems/tsp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fecim::problems {

TspInstance random_tsp(std::size_t cities, std::uint64_t seed) {
  FECIM_EXPECTS(cities >= 3);
  util::Rng rng(seed);
  std::vector<std::pair<double, double>> points(cities);
  for (auto& p : points) p = {rng.uniform01(), rng.uniform01()};

  TspInstance instance;
  instance.distances.assign(cities, std::vector<double>(cities, 0.0));
  for (std::size_t u = 0; u < cities; ++u)
    for (std::size_t v = u + 1; v < cities; ++v) {
      const double dx = points[u].first - points[v].first;
      const double dy = points[u].second - points[v].second;
      const double d = std::sqrt(dx * dx + dy * dy);
      instance.distances[u][v] = d;
      instance.distances[v][u] = d;
    }
  return instance;
}

TspEncoding tsp_to_qubo(const TspInstance& instance, double penalty) {
  const std::size_t n = instance.num_cities();
  FECIM_EXPECTS(n >= 3);
  double max_distance = 0.0;
  for (const auto& row : instance.distances)
    for (const double d : row) max_distance = std::max(max_distance, d);
  if (penalty <= 0.0) penalty = max_distance * static_cast<double>(n);

  const std::size_t vars = n * n;
  auto var = [n](std::size_t city, std::size_t pos) {
    return city * n + pos;
  };

  linalg::CsrMatrix::Builder q(vars, vars);
  double constant = 0.0;

  // One-hot per city over positions, and per position over cities:
  // A (1 - sum x)^2 = A (1 - sum x + 2 sum_{pairs} x x')   [x^2 = x].
  auto add_one_hot = [&](auto index_of) {
    for (std::size_t outer = 0; outer < n; ++outer) {
      constant += penalty;
      for (std::size_t a = 0; a < n; ++a) {
        q.add(index_of(outer, a), index_of(outer, a), -penalty);
        for (std::size_t b = a + 1; b < n; ++b)
          q.add(index_of(outer, a), index_of(outer, b), 2.0 * penalty);
      }
    }
  };
  add_one_hot([&](std::size_t city, std::size_t pos) { return var(city, pos); });
  add_one_hot([&](std::size_t pos, std::size_t city) { return var(city, pos); });

  // Tour length: d(u,v) when u at position p and v at position p+1 (cyclic).
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      const double d = instance.distances[u][v];
      if (d == 0.0) continue;
      for (std::size_t p = 0; p < n; ++p)
        q.add(var(u, p), var(v, (p + 1) % n), d);
    }

  return TspEncoding{ising::QuboModel(q.build(), constant), n, penalty};
}

TspTour decode_tsp(const TspInstance& instance, const TspEncoding& encoding,
                   std::span<const std::uint8_t> x) {
  const std::size_t n = encoding.num_cities;
  FECIM_EXPECTS(x.size() == n * n);
  TspTour tour;
  tour.order.assign(n, 0);
  std::vector<int> per_position(n, 0);
  std::vector<int> per_city(n, 0);
  for (std::size_t city = 0; city < n; ++city)
    for (std::size_t pos = 0; pos < n; ++pos)
      if (x[city * n + pos]) {
        tour.order[pos] = static_cast<std::uint32_t>(city);
        ++per_position[pos];
        ++per_city[city];
      }
  for (std::size_t i = 0; i < n; ++i) {
    tour.violations += per_city[i] != 1;
    tour.violations += per_position[i] != 1;
  }
  tour.valid = tour.violations == 0;
  if (tour.valid) tour.length = tour_length(instance, tour.order);
  return tour;
}

double tour_length(const TspInstance& instance,
                   std::span<const std::uint32_t> order) {
  const std::size_t n = instance.num_cities();
  FECIM_EXPECTS(order.size() == n);
  double length = 0.0;
  for (std::size_t p = 0; p < n; ++p)
    length += instance.distances[order[p]][order[(p + 1) % n]];
  return length;
}

double tsp_optimal_length(const TspInstance& instance) {
  const std::size_t n = instance.num_cities();
  FECIM_EXPECTS(n <= 10);
  // Fix city 0 at position 0 (cyclic symmetry) and enumerate the rest.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, tour_length(instance, order));
  } while (std::next_permutation(order.begin() + 1, order.end()));
  return best;
}

TspTour tsp_heuristic(const TspInstance& instance) {
  const std::size_t n = instance.num_cities();
  TspTour tour;
  tour.order.reserve(n);
  std::vector<bool> used(n, false);
  std::uint32_t current = 0;
  used[0] = true;
  tour.order.push_back(0);
  for (std::size_t step = 1; step < n; ++step) {
    double best_d = std::numeric_limits<double>::infinity();
    std::uint32_t best_city = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (used[v]) continue;
      if (instance.distances[current][v] < best_d) {
        best_d = instance.distances[current][v];
        best_city = v;
      }
    }
    used[best_city] = true;
    tour.order.push_back(best_city);
    current = best_city;
  }

  // 2-opt: reverse segments while it shortens the tour.
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = i + 2; j < n; ++j) {
        if (i == 0 && j == n - 1) continue;  // same edge, cyclic
        const auto a = tour.order[i];
        const auto b = tour.order[i + 1];
        const auto c = tour.order[j];
        const auto d = tour.order[(j + 1) % n];
        const double delta = instance.distances[a][c] +
                             instance.distances[b][d] -
                             instance.distances[a][b] -
                             instance.distances[c][d];
        if (delta < -1e-12) {
          std::reverse(tour.order.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       tour.order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          improved = true;
        }
      }
    }
  }
  tour.length = tour_length(instance, tour.order);
  tour.valid = true;
  return tour;
}

}  // namespace fecim::problems
