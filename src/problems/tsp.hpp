// Travelling salesman as a QUBO (one-hot position encoding):
//
//   x_{v,p} = 1  iff city v occupies tour position p,
//   H = A * sum_v (1 - sum_p x_{v,p})^2          every city placed once
//     + A * sum_p (1 - sum_v x_{v,p})^2          every position filled once
//     + sum_{u != v} d(u,v) sum_p x_{u,p} x_{v,p+1}   tour length (cyclic)
//
// The classic Lucas (2014) formulation; with A > max distance * n the
// minimum of H is the optimal tour length plus zero penalty.  Variable
// layout: x_{v,p} at index v * n + p.
#pragma once

#include <cstdint>
#include <vector>

#include "ising/qubo.hpp"

namespace fecim::problems {

struct TspInstance {
  /// Symmetric distance matrix; d[u][v] with zero diagonal.
  std::vector<std::vector<double>> distances;

  std::size_t num_cities() const noexcept { return distances.size(); }
};

/// Random Euclidean instance: cities uniform in the unit square.
TspInstance random_tsp(std::size_t cities, std::uint64_t seed);

struct TspEncoding {
  ising::QuboModel qubo;
  std::size_t num_cities;
  double penalty;
};

TspEncoding tsp_to_qubo(const TspInstance& instance,
                        double penalty = 0.0 /* 0 = auto */);

struct TspTour {
  std::vector<std::uint32_t> order;  ///< city at each position
  double length = 0.0;
  bool valid = false;  ///< exactly one city per position and vice versa
  /// Constraint violations: cities not visited exactly once plus positions
  /// not filled exactly once; 0 iff `valid`.
  std::size_t violations = 0;
};

/// Decode a variable assignment into a tour (valid == both one-hot
/// constraint families satisfied).
TspTour decode_tsp(const TspInstance& instance, const TspEncoding& encoding,
                   std::span<const std::uint8_t> x);

/// Tour length of an explicit city order (cyclic).
double tour_length(const TspInstance& instance,
                   std::span<const std::uint32_t> order);

/// Exact optimum by permutation enumeration (cities <= 10).
double tsp_optimal_length(const TspInstance& instance);

/// Nearest-neighbour construction + 2-opt improvement: the reference
/// heuristic used to sanity-bound annealer output on larger instances.
TspTour tsp_heuristic(const TspInstance& instance);

}  // namespace fecim::problems
