#include "problems/warm_start.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace fecim::problems {

ising::SpinVector greedy_maxcut_spins(const Graph& graph) {
  const std::size_t n = graph.num_vertices();
  ising::SpinVector spins(n, ising::Spin{0});  // 0 = not yet placed

  // Descending degree, index ascending on ties: high-degree vertices place
  // first while their neighborhoods are still mostly free, which is where a
  // greedy choice is worth the most.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return graph.degree(a) > graph.degree(b);
                   });

  int alternate = 1;  // deterministic tie-break for zero-gain placements
  for (const auto v : order) {
    const auto neighbors = graph.neighbors(v);
    const auto weights = graph.neighbor_weights(v);
    // gain(+1) - gain(-1): placing v opposite a placed neighbor cuts the
    // edge, so side -sign(w * spin) is favored per neighbor.
    double balance = 0.0;
    for (std::size_t k = 0; k < neighbors.size(); ++k)
      balance -= weights[k] * static_cast<double>(spins[neighbors[k]]);
    if (balance > 0.0) {
      spins[v] = ising::Spin{1};
    } else if (balance < 0.0) {
      spins[v] = ising::Spin{-1};
    } else {
      spins[v] = static_cast<ising::Spin>(alternate);
      alternate = -alternate;
    }
  }
  return spins;
}

ising::SpinVector dsatur_coloring_spins(const Graph& graph,
                                        std::size_t num_colors) {
  FECIM_EXPECTS(num_colors >= 1);
  const std::size_t n = graph.num_vertices();
  const std::uint32_t k = static_cast<std::uint32_t>(num_colors);
  constexpr std::uint32_t kUncolored = ~std::uint32_t{0};

  std::vector<std::uint32_t> color(n, kUncolored);
  // Per-vertex palette saturation as bitmask-free counts: adjacent[v][c] is
  // how many neighbors of v hold color c (saturation degree = #nonzero).
  std::vector<std::uint32_t> adjacent(n * num_colors, 0);
  std::vector<std::uint32_t> saturation(n, 0);
  std::vector<std::uint32_t> usage(num_colors, 0);

  for (std::size_t placed = 0; placed < n; ++placed) {
    // Next vertex: max saturation, then max degree, then lowest index --
    // the classic DSatur order, fully deterministic.
    std::uint32_t best = kUncolored;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (color[v] != kUncolored) continue;
      if (best == kUncolored || saturation[v] > saturation[best] ||
          (saturation[v] == saturation[best] &&
           graph.degree(v) > graph.degree(best)))
        best = v;
    }

    std::uint32_t chosen = k;
    for (std::uint32_t c = 0; c < k; ++c) {
      if (adjacent[best * num_colors + c] == 0) {
        chosen = c;
        break;
      }
    }
    if (chosen == k) {
      // Palette exhausted around `best` (DSatur proper would open a new
      // color): clamp to the least-used palette color and let the annealer
      // repair the conflict.
      chosen = 0;
      for (std::uint32_t c = 1; c < k; ++c)
        if (usage[c] < usage[chosen]) chosen = c;
    }
    color[best] = chosen;
    ++usage[chosen];
    for (const auto u : graph.neighbors(best)) {
      if (color[u] != kUncolored) continue;
      if (adjacent[u * num_colors + chosen]++ == 0) ++saturation[u];
    }
  }

  // One-hot layout of coloring_to_qubo (x_{v,c} at v * k + c) in the
  // project's x = (1 - sigma) / 2 convention (assigned bit -> spin -1),
  // plus the pinned +1 ancilla the with_ancilla model appends.
  ising::SpinVector spins(n * num_colors + 1, ising::Spin{1});
  for (std::uint32_t v = 0; v < n; ++v)
    spins[v * num_colors + color[v]] = ising::Spin{-1};
  return spins;
}

ising::SpinVector greedy_knapsack_spins(const KnapsackInstance& instance,
                                        const KnapsackEncoding& encoding) {
  const std::size_t n = encoding.num_items;
  FECIM_EXPECTS(instance.items.size() == n);

  // Descending value density, index ascending on ties -- the same order
  // knapsack_greedy_value packs in, compared by cross-multiplication so
  // zero weights never divide.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return instance.items[a].value * instance.items[b].weight >
                            instance.items[b].value * instance.items[a].weight;
                   });

  std::vector<char> taken(n, 0);
  double weight = 0.0;
  for (const auto i : order) {
    if (weight + instance.items[i].weight > instance.capacity) continue;
    taken[i] = 1;
    weight += instance.items[i].weight;
  }

  // Slack greedily from the largest coefficient down.  The canonical
  // 1,2,4,...,residual sequence expresses every integer in [0, W] this
  // way; with fractional weights the nearest expressible value is taken,
  // which still lands next to the penalty minimum.
  double remaining = instance.capacity - weight;
  std::vector<std::uint32_t> slack_order(encoding.num_slack_bits);
  std::iota(slack_order.begin(), slack_order.end(), 0u);
  std::stable_sort(slack_order.begin(), slack_order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return encoding.slack_coefficients[a] >
                            encoding.slack_coefficients[b];
                   });
  std::vector<char> slack(encoding.num_slack_bits, 0);
  for (const auto j : slack_order) {
    const double coefficient = encoding.slack_coefficients[j];
    if (coefficient <= remaining + 1e-9) {
      slack[j] = 1;
      remaining -= coefficient;
    }
  }

  // knapsack_to_qubo layout: items, then slack, then the pinned ancilla;
  // x = (1 - sigma) / 2, so a set bit is spin -1.
  ising::SpinVector spins(n + encoding.num_slack_bits + 1, ising::Spin{1});
  for (std::size_t i = 0; i < n; ++i)
    if (taken[i]) spins[i] = ising::Spin{-1};
  for (std::size_t j = 0; j < encoding.num_slack_bits; ++j)
    if (slack[j]) spins[n + j] = ising::Spin{-1};
  return spins;
}

ising::SpinVector differencing_partition_spins(
    std::span<const double> numbers) {
  const std::size_t n = numbers.size();
  if (n == 0) return {};
  if (n == 1) return ising::SpinVector(1, ising::Spin{1});

  // Karmarkar-Karp: repeatedly merge the two largest remaining values into
  // their difference.  Merged nodes get fresh ids; each merge records an
  // "opposite sides" edge, and the resulting difference tree is 2-colored
  // into the final bipartition.  Ties break on the lower id, so the whole
  // construction is deterministic.
  using Node = std::pair<double, std::size_t>;  // (value, id)
  const auto heavier = [](const Node& a, const Node& b) {
    if (a.first != b.first) return a.first < b.first;  // max-heap by value
    return a.second > b.second;                        // then lowest id first
  };
  std::priority_queue<Node, std::vector<Node>, decltype(heavier)> heap(
      heavier);
  for (std::size_t i = 0; i < n; ++i) heap.push({numbers[i], i});

  struct Merge {
    std::size_t keep;  ///< side of the merged node
    std::size_t flip;  ///< opposite side
  };
  std::vector<Merge> merges;  // merged node n + k comes from merges[k]
  merges.reserve(n - 1);
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    heap.push({a.first - b.first, n + merges.size()});
    merges.push_back({a.second, b.second});
  }

  // Unwind: the final survivor picks a side, every merge propagates its
  // side to `keep` and the opposite side to `flip`.
  std::vector<ising::Spin> side(n + merges.size(), ising::Spin{0});
  side[heap.top().second] = ising::Spin{1};
  for (std::size_t k = merges.size(); k-- > 0;) {
    const auto s = side[n + k];
    side[merges[k].keep] = s;
    side[merges[k].flip] = static_cast<ising::Spin>(-s);
  }
  return ising::SpinVector(side.begin(), side.begin() + n);
}

ising::SpinVector nearest_neighbor_tsp_spins(const TspInstance& instance) {
  const std::size_t n = instance.num_cities();
  FECIM_EXPECTS(n >= 1);

  // Pure nearest-neighbour construction from city 0, ties to the lowest
  // index.  Deliberately no 2-opt: the annealer should still have local
  // improvements available, and tsp_heuristic (with 2-opt) stays a
  // meaningfully stronger reference.
  std::vector<char> visited(n, 0);
  std::vector<std::uint32_t> tour;
  tour.reserve(n);
  std::uint32_t current = 0;
  visited[0] = 1;
  tour.push_back(0);
  for (std::size_t step = 1; step < n; ++step) {
    std::uint32_t next = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::uint32_t v = 0; v < n; ++v) {
      if (visited[v]) continue;
      const double d = instance.distances[current][v];
      if (d < best) {
        best = d;
        next = v;
      }
    }
    visited[next] = 1;
    tour.push_back(next);
    current = next;
  }

  // One-hot layout of tsp_to_qubo: x_{v,p} at v * n + p, set bit = spin -1,
  // plus the pinned ancilla.
  ising::SpinVector spins(n * n + 1, ising::Spin{1});
  for (std::size_t p = 0; p < n; ++p)
    spins[static_cast<std::size_t>(tour[p]) * n + p] = ising::Spin{-1};
  return spins;
}

ising::SpinVector descent_qubo_spins(const ising::QuboModel& model) {
  const std::size_t n = model.num_variables();

  // Symmetrize the coefficient matrix into per-variable neighbor lists so
  // a single-flip delta is one sparse dot product regardless of whether
  // the model stores Q upper-triangular or fully symmetric:
  //   delta_i = (1 - 2 x_i) * (Q_ii + sum_j (Q_ij + Q_ji) x_j).
  std::vector<double> diagonal(n, 0.0);
  std::vector<std::vector<std::pair<std::uint32_t, double>>> neighbors(n);
  const auto& q = model.q();
  for (std::size_t r = 0; r < n; ++r) {
    const auto cols = q.row_cols(r);
    const auto values = q.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == r) {
        diagonal[r] += values[k];
      } else {
        neighbors[r].push_back({static_cast<std::uint32_t>(cols[k]),
                                values[k]});
        neighbors[cols[k]].push_back({static_cast<std::uint32_t>(r),
                                      values[k]});
      }
    }
  }

  // Greedy 1-opt from all zeros: sweep in index order, flip on any strict
  // improvement, stop when a sweep is clean.  The pass bound keeps the
  // construction cheap on adversarial instances; descent is monotone, so
  // stopping early still yields a valid (just less refined) start.
  std::vector<std::uint8_t> x(n, 0);
  constexpr std::size_t kMaxPasses = 64;
  for (std::size_t pass = 0; pass < kMaxPasses; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i < n; ++i) {
      double coupling = diagonal[i];
      for (const auto& [j, w] : neighbors[i])
        if (x[j]) coupling += w;
      const double delta = (x[i] ? -1.0 : 1.0) * coupling;
      if (delta < 0.0) {
        x[i] ^= 1;
        improved = true;
      }
    }
    if (!improved) break;
  }

  ising::SpinVector spins(n + 1, ising::Spin{1});
  for (std::size_t i = 0; i < n; ++i)
    if (x[i]) spins[i] = ising::Spin{-1};
  return spins;
}

}  // namespace fecim::problems
