#include "problems/warm_start.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/assert.hpp"

namespace fecim::problems {

ising::SpinVector greedy_maxcut_spins(const Graph& graph) {
  const std::size_t n = graph.num_vertices();
  ising::SpinVector spins(n, ising::Spin{0});  // 0 = not yet placed

  // Descending degree, index ascending on ties: high-degree vertices place
  // first while their neighborhoods are still mostly free, which is where a
  // greedy choice is worth the most.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return graph.degree(a) > graph.degree(b);
                   });

  int alternate = 1;  // deterministic tie-break for zero-gain placements
  for (const auto v : order) {
    const auto neighbors = graph.neighbors(v);
    const auto weights = graph.neighbor_weights(v);
    // gain(+1) - gain(-1): placing v opposite a placed neighbor cuts the
    // edge, so side -sign(w * spin) is favored per neighbor.
    double balance = 0.0;
    for (std::size_t k = 0; k < neighbors.size(); ++k)
      balance -= weights[k] * static_cast<double>(spins[neighbors[k]]);
    if (balance > 0.0) {
      spins[v] = ising::Spin{1};
    } else if (balance < 0.0) {
      spins[v] = ising::Spin{-1};
    } else {
      spins[v] = static_cast<ising::Spin>(alternate);
      alternate = -alternate;
    }
  }
  return spins;
}

ising::SpinVector dsatur_coloring_spins(const Graph& graph,
                                        std::size_t num_colors) {
  FECIM_EXPECTS(num_colors >= 1);
  const std::size_t n = graph.num_vertices();
  const std::uint32_t k = static_cast<std::uint32_t>(num_colors);
  constexpr std::uint32_t kUncolored = ~std::uint32_t{0};

  std::vector<std::uint32_t> color(n, kUncolored);
  // Per-vertex palette saturation as bitmask-free counts: adjacent[v][c] is
  // how many neighbors of v hold color c (saturation degree = #nonzero).
  std::vector<std::uint32_t> adjacent(n * num_colors, 0);
  std::vector<std::uint32_t> saturation(n, 0);
  std::vector<std::uint32_t> usage(num_colors, 0);

  for (std::size_t placed = 0; placed < n; ++placed) {
    // Next vertex: max saturation, then max degree, then lowest index --
    // the classic DSatur order, fully deterministic.
    std::uint32_t best = kUncolored;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (color[v] != kUncolored) continue;
      if (best == kUncolored || saturation[v] > saturation[best] ||
          (saturation[v] == saturation[best] &&
           graph.degree(v) > graph.degree(best)))
        best = v;
    }

    std::uint32_t chosen = k;
    for (std::uint32_t c = 0; c < k; ++c) {
      if (adjacent[best * num_colors + c] == 0) {
        chosen = c;
        break;
      }
    }
    if (chosen == k) {
      // Palette exhausted around `best` (DSatur proper would open a new
      // color): clamp to the least-used palette color and let the annealer
      // repair the conflict.
      chosen = 0;
      for (std::uint32_t c = 1; c < k; ++c)
        if (usage[c] < usage[chosen]) chosen = c;
    }
    color[best] = chosen;
    ++usage[chosen];
    for (const auto u : graph.neighbors(best)) {
      if (color[u] != kUncolored) continue;
      if (adjacent[u * num_colors + chosen]++ == 0) ++saturation[u];
    }
  }

  // One-hot layout of coloring_to_qubo (x_{v,c} at v * k + c) in the
  // project's x = (1 - sigma) / 2 convention (assigned bit -> spin -1),
  // plus the pinned +1 ancilla the with_ancilla model appends.
  ising::SpinVector spins(n * num_colors + 1, ising::Spin{1});
  for (std::uint32_t v = 0; v < n; ++v)
    spins[v * num_colors + color[v]] = ising::Spin{-1};
  return spins;
}

}  // namespace fecim::problems
