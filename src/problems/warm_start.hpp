// Constructive warm starts: cheap domain heuristics producing an
// annealer-ready spin configuration for a ProblemInstance's model.
//
// A warm start does not replace annealing -- it replaces the RANDOM initial
// configuration with a decent feasible one, so the solver spends its budget
// refining instead of first escaping a random high-energy state.  The
// portfolio angle: greedy construction + in-situ/SB refinement beats either
// alone on short budgets (bench_ablation_algorithm measures this).
//
// Both heuristics are deterministic (no RNG): the warm configuration is a
// pure function of the instance, so warm-started runs stay reproducible
// from the run seed alone.
#pragma once

#include <cstddef>
#include <span>

#include "ising/qubo.hpp"
#include "ising/spin.hpp"
#include "problems/graph.hpp"
#include "problems/knapsack.hpp"
#include "problems/tsp.hpp"

namespace fecim::problems {

/// Greedy Max-Cut bipartition: vertices in descending-degree order, each
/// placed on the side that maximizes its cut weight against the already
/// placed neighbors (ties and isolated vertices alternate sides).  Returns
/// one spin per vertex -- the exact layout maxcut_to_ising expects (the
/// Max-Cut model carries no ancilla).
ising::SpinVector greedy_maxcut_spins(const Graph& graph);

/// DSatur graph coloring clamped to a k-color palette: vertices colored in
/// saturation-degree order with the lowest color unused in their
/// neighborhood; when the whole palette is saturated (DSatur would open
/// color k+1) the least-used palette color is taken, accepting a conflict
/// the annealer then repairs.  Returns the one-hot QUBO layout of
/// coloring_to_qubo -- x_{v,c} at index v * k + c mapped to spins in the
/// x = (1 - sigma) / 2 convention (assigned = spin -1), with one trailing
/// +1 ancilla slot for the with_ancilla model.
ising::SpinVector dsatur_coloring_spins(const Graph& graph,
                                        std::size_t num_colors);

/// Greedy value-density knapsack fill (the same order knapsack_greedy_value
/// uses, ties by index), then the slack bits set greedily from the largest
/// coefficient down to express the unused capacity -- so the warm
/// configuration sits at (or, with fractional weights, next to) the penalty
/// minimum of its selection.  Returns the knapsack_to_qubo layout: item
/// bits, then slack bits (x = (1 - sigma) / 2, taken = spin -1), plus the
/// trailing +1 ancilla of the with_ancilla model.
ising::SpinVector greedy_knapsack_spins(const KnapsackInstance& instance,
                                        const KnapsackEncoding& encoding);

/// Karmarkar-Karp largest differencing for number partitioning: repeatedly
/// replace the two largest values by their difference (committing the two
/// sets to opposite sides), then 2-color the difference tree.  Typically
/// orders of magnitude tighter than the largest-first greedy reference.
/// Returns one spin per number -- partition_to_ising carries no ancilla.
ising::SpinVector differencing_partition_spins(std::span<const double> numbers);

/// Nearest-neighbour tour from city 0 (ties to the lowest index) in the
/// one-hot layout of tsp_to_qubo: x_{v,p} at v * n + p, visited = spin -1,
/// plus the trailing +1 ancilla.  Construction only -- no 2-opt -- so the
/// annealer still has local improvements to find (tsp_heuristic, which adds
/// 2-opt, stays the reference bound).
ising::SpinVector nearest_neighbor_tsp_spins(const TspInstance& instance);

/// Greedy 1-opt descent on a QUBO from the all-zeros assignment: bounded
/// sweeps flipping any variable whose single-flip delta is negative, until
/// a sweep finds none.  Pass the model the annealer actually minimizes
/// (i.e. the negated one for maximize instances).  Returns variable spins
/// plus the trailing +1 ancilla.
ising::SpinVector descent_qubo_spins(const ising::QuboModel& model);

}  // namespace fecim::problems
