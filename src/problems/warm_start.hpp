// Constructive warm starts: cheap domain heuristics producing an
// annealer-ready spin configuration for a ProblemInstance's model.
//
// A warm start does not replace annealing -- it replaces the RANDOM initial
// configuration with a decent feasible one, so the solver spends its budget
// refining instead of first escaping a random high-energy state.  The
// portfolio angle: greedy construction + in-situ/SB refinement beats either
// alone on short budgets (bench_ablation_algorithm measures this).
//
// Both heuristics are deterministic (no RNG): the warm configuration is a
// pure function of the instance, so warm-started runs stay reproducible
// from the run seed alone.
#pragma once

#include <cstddef>

#include "ising/spin.hpp"
#include "problems/graph.hpp"

namespace fecim::problems {

/// Greedy Max-Cut bipartition: vertices in descending-degree order, each
/// placed on the side that maximizes its cut weight against the already
/// placed neighbors (ties and isolated vertices alternate sides).  Returns
/// one spin per vertex -- the exact layout maxcut_to_ising expects (the
/// Max-Cut model carries no ancilla).
ising::SpinVector greedy_maxcut_spins(const Graph& graph);

/// DSatur graph coloring clamped to a k-color palette: vertices colored in
/// saturation-degree order with the lowest color unused in their
/// neighborhood; when the whole palette is saturated (DSatur would open
/// color k+1) the least-used palette color is taken, accepting a conflict
/// the annealer then repairs.  Returns the one-hot QUBO layout of
/// coloring_to_qubo -- x_{v,c} at index v * k + c mapped to spins in the
/// x = (1 - sigma) / 2 convention (assigned = spin -1), with one trailing
/// +1 ancilla slot for the with_ancilla model.
ising::SpinVector dsatur_coloring_spins(const Graph& graph,
                                        std::size_t num_colors);

}  // namespace fecim::problems
