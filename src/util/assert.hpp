// Contract-checking helpers in the spirit of the GSL Expects/Ensures macros.
//
// FECIM_EXPECTS  — precondition on the arguments of a function
// FECIM_ENSURES  — postcondition on the result of a function
// FECIM_ASSERT   — internal invariant
//
// All three throw fecim::contract_error so tests can assert on violations;
// they stay active in release builds (including -DNDEBUG) because every
// check here guards a numerical-model invariant whose silent violation
// would corrupt results.  The `release-fast` CMake preset defines
// FECIM_DISABLE_CONTRACTS to compile them out for throughput measurements
// only; conditions are never evaluated in that mode, so they must stay
// side-effect-free.
#pragma once

#include <stdexcept>
#include <string>

namespace fecim {

/// Thrown when a contract (pre/postcondition or invariant) is violated.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw contract_error(std::string(kind) + " failed: " + expr + " at " + file +
                       ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace fecim

#if defined(FECIM_DISABLE_CONTRACTS)

// Compiled-out form: the condition is type-checked but never evaluated.
#define FECIM_CONTRACT_NOOP(cond)                                           \
  do {                                                                      \
    if (false) static_cast<void>(cond);                                     \
  } while (false)

#define FECIM_EXPECTS(cond) FECIM_CONTRACT_NOOP(cond)
#define FECIM_ENSURES(cond) FECIM_CONTRACT_NOOP(cond)
#define FECIM_ASSERT(cond) FECIM_CONTRACT_NOOP(cond)

#else

#define FECIM_EXPECTS(cond)                                                 \
  do {                                                                      \
    if (!(cond))                                                            \
      ::fecim::detail::contract_fail("precondition", #cond, __FILE__,       \
                                     __LINE__);                             \
  } while (false)

#define FECIM_ENSURES(cond)                                                 \
  do {                                                                      \
    if (!(cond))                                                            \
      ::fecim::detail::contract_fail("postcondition", #cond, __FILE__,      \
                                     __LINE__);                             \
  } while (false)

#define FECIM_ASSERT(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::fecim::detail::contract_fail("invariant", #cond, __FILE__,          \
                                     __LINE__);                             \
  } while (false)

#endif  // FECIM_DISABLE_CONTRACTS
