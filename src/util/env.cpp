#include "util/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <thread>

namespace fecim::util {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return value;
}

bool env_flag(const std::string& name, bool fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  std::string text(raw);
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return text == "1" || text == "true" || text == "yes" || text == "on";
}

bool full_reproduction_mode() { return env_flag("FECIM_FULL"); }

std::size_t worker_threads() {
  const auto requested = env_int("FECIM_THREADS", 0);
  if (requested > 0) return static_cast<std::size_t>(requested);
  const auto hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace fecim::util
