// Environment-variable configuration knobs for the bench harness.
//
// Benches run a scaled-down campaign by default so `for b in build/bench/*`
// stays fast; setting FECIM_FULL=1 restores the paper's full run counts.
#pragma once

#include <cstdint>
#include <string>

namespace fecim::util {

/// Read an integer env var; returns `fallback` when unset or unparsable.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Read a boolean env var (1/true/yes/on, case-insensitive).
bool env_flag(const std::string& name, bool fallback = false);

/// True when FECIM_FULL=1 — benches then use the paper's full instance
/// counts, iteration budgets, and Monte-Carlo run counts.
bool full_reproduction_mode();

/// Number of worker threads for campaign runners (FECIM_THREADS, default:
/// hardware concurrency).
std::size_t worker_threads();

}  // namespace fecim::util
