#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/env.hpp"

namespace fecim::util {

namespace {

/// Set while a thread is executing pool work (workers, and the caller while
/// it participates); nested parallel_for calls detect it and run inline.
thread_local bool tl_in_parallel_region = false;

/// Process-wide serial pin for fork-spawned children (the inherited pool
/// state has no live threads behind it).  One-way: never cleared.
std::atomic<bool> g_force_serial{false};

std::vector<std::string> describe_errors(
    const std::vector<std::exception_ptr>& errors) {
  std::vector<std::string> messages;
  messages.reserve(errors.size());
  for (const auto& error : errors) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      messages.emplace_back(e.what());
    } catch (...) {
      messages.emplace_back("unknown exception");
    }
  }
  return messages;
}

/// One parallel_for invocation.  Heap-owned via shared_ptr so a worker that
/// wakes late (after the caller returned) can still inspect the claim
/// counters safely; it then finds the index range exhausted and never
/// touches `body`, which only outlives the caller's stack frame through the
/// caller's own wait on `done == count`.
struct Job {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t count = 0;
  std::size_t max_slots = 0;                 ///< participating threads
  std::atomic<std::size_t> next{0};          ///< index claim counter
  std::atomic<std::size_t> done{0};          ///< indices fully processed
  std::atomic<std::size_t> slots{0};         ///< participation tickets
  std::atomic<bool> failed{false};
  std::size_t failure_count = 0;             ///< guarded by mutex
  std::vector<std::exception_ptr> errors;    ///< first kMaxMessages, guarded
  std::mutex mutex;                          ///< guards errors + completion cv
  std::condition_variable completed;
};

void execute(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    // After a failure, keep claiming (so `done` still reaches `count` and
    // the caller unblocks) but skip the body: no wasted work on a campaign
    // that is already going to rethrow.
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.body)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(job.mutex);
        ++job.failure_count;
        if (job.errors.size() < parallel_error::kMaxMessages)
          job.errors.push_back(std::current_exception());
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      const std::lock_guard<std::mutex> lock(job.mutex);
      job.completed.notify_all();
    }
  }
}

/// Lazily-spawned persistent worker pool (grows to the largest concurrency
/// any call has requested; threads idle on a condition variable between
/// jobs and are joined at process exit).
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& body,
           std::size_t max_slots) {
    // One job at a time: concurrent top-level parallel_for calls queue here
    // rather than interleaving claims on the shared worker set.
    const std::lock_guard<std::mutex> run_lock(run_mutex_);
    auto job = std::make_shared<Job>();
    job->body = &body;
    job->count = count;
    job->max_slots = max_slots;

    ensure_workers(max_slots - 1);  // the caller occupies one slot
    // Claim the caller's participation ticket before the job becomes
    // visible: the caller always executes, so its ticket must be one of
    // the max_slots counted ones or surplus pool workers could push the
    // concurrency to max_slots + 1.
    job->slots.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job_ = job;
      ++generation_;
    }
    wake_.notify_all();

    const bool was_in_region = tl_in_parallel_region;
    tl_in_parallel_region = true;
    execute(*job);
    tl_in_parallel_region = was_in_region;

    {
      std::unique_lock<std::mutex> lock(job->mutex);
      job->completed.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) >= job->count;
      });
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job_.reset();
    }
    // All workers are done with the job here, so the error fields need no
    // lock.  One failure rethrows the original exception; concurrent
    // failures aggregate so none is silently dropped.
    if (job->failure_count == 1) std::rethrow_exception(job->errors.front());
    if (job->failure_count > 1)
      throw parallel_error(job->failure_count, describe_errors(job->errors));
  }

 private:
  ThreadPool() = default;

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  void ensure_workers(std::size_t wanted) {
    const std::lock_guard<std::mutex> lock(mutex_);
    while (workers_.size() < wanted)
      workers_.emplace_back([this] { worker_main(); });
  }

  void worker_main() {
    tl_in_parallel_region = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return stop_ || generation_ > seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      if (!job) continue;
      // Participation ticket: calls may request fewer slots than the pool
      // has workers; surplus workers go straight back to sleep.
      if (job->slots.fetch_add(1, std::memory_order_relaxed) < job->max_slots)
        execute(*job);
    }
  }

  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

std::string compose_parallel_error_message(
    std::size_t failures, const std::vector<std::string>& messages) {
  std::string text = std::to_string(failures) + " parallel task" +
                     (failures == 1 ? "" : "s") + " failed";
  const char* separator = ": ";
  for (const auto& message : messages) {
    text += separator;
    text += message;
    separator = "; ";
  }
  if (failures > messages.size())
    text += "; " + std::to_string(failures - messages.size()) + " more";
  return text;
}

}  // namespace

parallel_error::parallel_error(std::size_t failures,
                               std::vector<std::string> messages)
    : std::runtime_error(compose_parallel_error_message(failures, messages)),
      failures_(failures),
      messages_(std::move(messages)) {}

std::size_t resolved_parallel_threads(std::size_t count, std::size_t threads) {
  if (threads == 0) threads = worker_threads();
  threads = std::min(threads, count);
  return threads == 0 ? 1 : threads;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) return;
  threads = resolved_parallel_threads(count, threads);

  // Serial fast path; also taken for nested calls from inside a pool task,
  // which would otherwise deadlock on the single-job pool, and for forked
  // shard workers (force_serial_parallelism).
  if (threads <= 1 || tl_in_parallel_region ||
      g_force_serial.load(std::memory_order_relaxed)) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  ThreadPool::instance().run(count, body, threads);
}

void force_serial_parallelism() noexcept {
  g_force_serial.store(true, std::memory_order_relaxed);
}

}  // namespace fecim::util
