// Minimal fork-join helper for embarrassingly parallel experiment campaigns.
//
// Each task index gets its own RNG stream derived outside the loop, so the
// result of a campaign is independent of the thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace fecim::util {

/// Run body(i) for i in [0, count) across `threads` workers (0 = use
/// worker_threads()).  Exceptions from tasks are captured and the first one
/// is rethrown after all workers join.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace fecim::util
