// Minimal fork-join helper for embarrassingly parallel experiment campaigns.
//
// Each task index gets its own RNG stream derived outside the loop, so the
// result of a campaign is independent of the thread count.
//
// Workers live in a lazily-initialized persistent pool: the first parallel
// call spawns them, every later call reuses them, so campaign loops that
// issue many parallel_for calls (sweeps, ablation grids) pay thread-creation
// cost once per process instead of once per call.  After a task throws, the
// remaining indices are still claimed (so completion accounting stays exact)
// but their bodies are skipped -- a failed campaign stops doing work
// immediately instead of running every remaining run to completion.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace fecim::util {

/// Composite failure from a parallel_for call in which more than one task
/// threw: carries the total failure count and the first few messages, so no
/// concurrent failure is silently dropped.  A single-failure call rethrows
/// the original exception unchanged.
class parallel_error : public std::runtime_error {
 public:
  /// How many task messages the composite retains (failures beyond this
  /// are counted but their messages dropped).
  static constexpr std::size_t kMaxMessages = 4;

  parallel_error(std::size_t failures, std::vector<std::string> messages);

  std::size_t failures() const noexcept { return failures_; }
  /// Captured messages, at most kMaxMessages, in capture order.
  const std::vector<std::string>& messages() const noexcept {
    return messages_;
  }

 private:
  std::size_t failures_;
  std::vector<std::string> messages_;
};

/// Run body(i) for i in [0, count) across `threads` workers (0 = use
/// worker_threads()).  Task exceptions are captured: a single failure is
/// rethrown unchanged after the call completes; concurrent failures are
/// aggregated into a parallel_error (count + first messages).  Once a task
/// has thrown, remaining indices are drained as no-ops, so only tasks
/// already in flight can add to the aggregate.  The worker pool stays
/// usable after a throwing call.  Nested calls from inside a task body
/// execute serially inline (and stop at the first exception).  Thread-safe:
/// concurrent top-level calls are serialized against each other.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// Number of worker slots parallel_for would use for this request
/// (min(threads or worker_threads(), count), at least 1).
std::size_t resolved_parallel_threads(std::size_t count, std::size_t threads);

/// Irreversibly pin every parallel_for in this process to the inline serial
/// path.  Fork-spawned shard workers call this first thing: the persistent
/// pool's threads do not survive fork, so a child that submitted work to the
/// inherited pool state would block forever.  Serial execution is
/// bit-identical by construction (fixed per-run seeds, disjoint slots), so
/// the only cost is losing engine-level band parallelism inside the child.
void force_serial_parallelism() noexcept;

}  // namespace fecim::util
