// Minimal fork-join helper for embarrassingly parallel experiment campaigns.
//
// Each task index gets its own RNG stream derived outside the loop, so the
// result of a campaign is independent of the thread count.
//
// Workers live in a lazily-initialized persistent pool: the first parallel
// call spawns them, every later call reuses them, so campaign loops that
// issue many parallel_for calls (sweeps, ablation grids) pay thread-creation
// cost once per process instead of once per call.  After a task throws, the
// remaining indices are still claimed (so completion accounting stays exact)
// but their bodies are skipped -- a failed campaign stops doing work
// immediately instead of running every remaining run to completion.
#pragma once

#include <cstddef>
#include <functional>

namespace fecim::util {

/// Run body(i) for i in [0, count) across `threads` workers (0 = use
/// worker_threads()).  Exceptions from tasks are captured and the first one
/// is rethrown after the call completes; once a task has thrown, remaining
/// indices are drained as no-ops.  Nested calls from inside a task body
/// execute serially inline.  Thread-safe: concurrent top-level calls are
/// serialized against each other.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// Number of worker slots parallel_for would use for this request
/// (min(threads or worker_threads(), count), at least 1).
std::size_t resolved_parallel_threads(std::size_t count, std::size_t threads);

}  // namespace fecim::util
