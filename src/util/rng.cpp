#include "util/rng.hpp"

#include <bit>
#include <cmath>

#include "util/simd.hpp"

namespace fecim::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // A state of all zeros would lock the engine at zero; splitmix64 cannot
  // produce four zero words from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0,1) with full mantissa resolution.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  FECIM_EXPECTS(n > 0);
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  FECIM_EXPECTS(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  std::vector<std::uint32_t> chosen;
  sample_without_replacement_into(n, k, chosen);
  return chosen;
}

void Rng::sample_without_replacement_into(std::uint32_t n, std::uint32_t k,
                                          std::vector<std::uint32_t>& chosen) {
  FECIM_EXPECTS(k <= n);
  chosen.clear();
  chosen.reserve(k);
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; if t already
  // chosen insert j, else insert t.  O(k) expected with a linear membership
  // scan (k is small everywhere in this project).
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(uniform_index(j + 1));
    bool seen = false;
    for (const auto c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  FECIM_ENSURES(chosen.size() == k);
}

Rng Rng::split(std::uint64_t stream_tag) const noexcept {
  // Derive a child seed by hashing the parent state with the stream tag.
  std::uint64_t h = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                    rotl(state_[3], 43);
  h ^= 0xd6e8feb86659fd93ULL * (stream_tag + 1);
  std::uint64_t sm = h;
  return Rng(splitmix64(sm));
}

// ---------------------------------------------------------------------------
// NoiseStream: counter-keyed draws.
// ---------------------------------------------------------------------------

namespace {

// 128-layer ziggurat for the standard normal (Marsaglia & Tsang layout,
// Doornik's double-precision acceptance form).  R is the right edge of the
// last finite strip, V the common strip area.
constexpr int kZigLayers = 128;
constexpr double kZigR = 3.442619855899;
constexpr double kZigV = 9.91256303526217e-3;

struct ZigguratTables {
  double x[kZigLayers + 1];  // strip right edges; x[kZigLayers] = 0
  double ratio[kZigLayers];  // x[i+1] / x[i]: the quick-accept thresholds

  ZigguratTables() noexcept {
    const double f_r = std::exp(-0.5 * kZigR * kZigR);
    x[0] = kZigV / f_r;  // pseudo-edge of the base strip (holds the tail)
    x[1] = kZigR;
    x[kZigLayers] = 0.0;
    for (int i = 2; i < kZigLayers; ++i) {
      const double prev = x[i - 1];
      x[i] = std::sqrt(
          -2.0 * std::log(kZigV / prev + std::exp(-0.5 * prev * prev)));
    }
    for (int i = 0; i < kZigLayers; ++i) ratio[i] = x[i + 1] / x[i];
  }
};

// Namespace-scope constant: initialized once before main, so the hot
// samplers read the tables without a function-local-static guard check on
// every draw.
const ZigguratTables g_zig_tables;

inline double unit_from_bits(std::uint64_t bits) noexcept {
  // 53 high bits -> [0, 1), full mantissa resolution.
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

inline double positive_unit_from_bits(std::uint64_t bits) noexcept {
  // (0, 1]: safe as a log() argument.
  return static_cast<double>((bits >> 11) + 1) * 0x1.0p-53;
}

/// Cold continuation of a draw whose first attempt failed the quick box
/// test: resolve that attempt (tail for layer 0, wedge otherwise), then keep
/// drawing until acceptance.  `state` advances only within this draw, so
/// rejection retries never leak into neighboring indices.  Out of line on
/// purpose -- ~1.2% of draws land here, and keeping it cold lets the box
/// fast path inline into the fill loops.
double normal_rejection(std::uint64_t state, int layer, double u) noexcept {
  const ZigguratTables& t = g_zig_tables;
  for (;;) {
    if (layer == 0) {
      // Base strip: sample the tail beyond R (Marsaglia's exact method).
      const bool negative = u < 0.0;
      for (;;) {
        const double a =
            -std::log(positive_unit_from_bits(splitmix64(state))) / kZigR;
        const double b = -std::log(positive_unit_from_bits(splitmix64(state)));
        if (b + b > a * a) return negative ? -(kZigR + a) : kZigR + a;
      }
    }
    // Wedge: accept against the density between the strip edges.
    const double x = u * t.x[layer];
    const double f0 = std::exp(-0.5 * (t.x[layer] * t.x[layer] - x * x));
    const double f1 =
        std::exp(-0.5 * (t.x[layer + 1] * t.x[layer + 1] - x * x));
    if (f1 + unit_from_bits(splitmix64(state)) * (f0 - f1) < 1.0) return x;
    // Next attempt: layer from the low 7 bits, signed uniform in [-1, 1)
    // from the high 53 -- disjoint bit ranges of one hash.
    const std::uint64_t bits = splitmix64(state);
    layer = static_cast<int>(bits & 0x7F);
    u = 2.0 * unit_from_bits(bits) - 1.0;
    if (std::fabs(u) < t.ratio[layer]) return u * t.x[layer];
  }
}

/// Sub-stream state for draw `index` of stream `key`: a Weyl step over the
/// index xor'd into the key; every downstream use runs it through at least
/// one splitmix64 round for avalanche.
inline std::uint64_t substream_state(std::uint64_t key,
                                     std::uint64_t index) noexcept {
  return key ^ (index * 0x9e3779b97f4a7c15ULL);
}

constexpr std::uint64_t kWeyl = 0x9e3779b97f4a7c15ULL;

/// Vector pass of the widened fill: one block of up to 64 consecutive draws.
/// Each lane fuses substream_state with the first splitmix64 round of
/// keyed_normal and resolves the quick box test; accepted lanes store their
/// final value, failed lanes set their bit in the returned miss mask.  Kept
/// `noinline` as a vectorization barrier, not for code size: inlined into
/// the caller's block loop, GCC's induction-variable rewrite turns the two
/// table lookups into address forms its vectorizer rejects ("no vectype"),
/// and the whole loop silently compiles scalar.  As a standalone function it
/// auto-vectorizes end to end -- counter hash, u64->double conversion, the
/// two gathers, the box compare and the mask reduction (verify with
/// -fopt-info-vec).
__attribute__((noinline)) std::uint64_t normal_fill_pass(
    const double* FECIM_RESTRICT xs, const double* FECIM_RESTRICT rs,
    double* FECIM_RESTRICT o, std::uint64_t key, std::uint64_t weyl,
    std::size_t w) noexcept {
  std::uint64_t miss = 0;
  for (std::size_t lane = 0; lane < w; ++lane) {
    std::uint64_t z = (key ^ (weyl + lane * kWeyl)) + kWeyl;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const auto layer = static_cast<std::size_t>(z & 0x7F);
    const double u = 2.0 * unit_from_bits(z) - 1.0;
    o[lane] = u * xs[layer];
    miss |= static_cast<std::uint64_t>(!(std::fabs(u) < rs[layer])) << lane;
  }
  return miss;
}

/// One standard normal for (key, index); the ~98.8% box case inlines.
inline double keyed_normal(std::uint64_t key, std::uint64_t index) noexcept {
  std::uint64_t state = substream_state(key, index);
  const std::uint64_t bits = splitmix64(state);
  const int layer = static_cast<int>(bits & 0x7F);
  const double u = 2.0 * unit_from_bits(bits) - 1.0;
  const ZigguratTables& t = g_zig_tables;
  if (std::fabs(u) < t.ratio[layer]) return u * t.x[layer];
  return normal_rejection(state, layer, u);
}

}  // namespace

NoiseStream::NoiseStream(std::uint64_t run_seed,
                         std::uint64_t site_id) noexcept {
  // Two mixing rounds: decorrelate raw seeds, then fold in the site so
  // (seed, site) pairs land far apart even for small consecutive values.
  std::uint64_t s = run_seed;
  const std::uint64_t mixed_seed = splitmix64(s);
  s = mixed_seed ^ (site_id * 0xd6e8feb86659fd93ULL);
  key_ = splitmix64(s);
}

std::uint64_t NoiseStream::bits(std::uint64_t index) const noexcept {
  std::uint64_t state = substream_state(key_, index);
  return splitmix64(state);
}

double NoiseStream::uniform01(std::uint64_t index) const noexcept {
  return unit_from_bits(bits(index));
}

double NoiseStream::normal(std::uint64_t index) const noexcept {
  return keyed_normal(key_, index);
}

double NoiseStream::normal(std::uint64_t index, double mean,
                           double stddev) const noexcept {
  return mean + stddev * normal(index);
}

void NoiseStream::normal_fill(std::uint64_t base_index,
                              std::span<double> out) const noexcept {
  // Widened ziggurat pass: the draws are independent pure functions of
  // (key, base_index + i), so the fill runs in blocks of kLanes -- the
  // counter hash, the layer/uniform extraction and the box test are all
  // straight-line lane-parallel arithmetic the compiler auto-vectorizes
  // (the 64-bit multiplies and the two small table gathers need a recent
  // ISA; on older targets the same loops simply compile scalar).  The
  // ~1.2% of lanes that fail the quick box test fall back to the scalar
  // rejection continuation, which resumes each lane's private sub-stream
  // exactly where keyed_normal would -- so every element is bit-identical
  // to normal(base_index + i), for every block width and any base_index
  // alignment.
  const std::uint64_t key = key_;
  const std::size_t size = out.size();
  double* FECIM_RESTRICT o = out.data();
  // Strength-reduced Weyl counter: index * kWeyl advances by one addition
  // per block instead of one multiplication per lane (the value is
  // identical -- the Weyl product is linear in the index).
  std::uint64_t weyl = base_index * kWeyl;
  for (std::size_t block = 0; block < size; block += 64) {
    const std::size_t w = size - block < 64 ? size - block : 64;
    std::uint64_t miss = normal_fill_pass(g_zig_tables.x, g_zig_tables.ratio,
                                          o + block, key, weyl, w);
    // Cold pass (~2.8% of lanes): each miss re-derives its hash from the
    // index -- a draw is a pure function of (key, index), so nothing needs
    // to be carried over -- and resolves its private rejection sub-stream.
    // The first wedge attempt of every missed lane is unrolled here in
    // structure-of-arrays phases: argument setup for all misses, then the
    // exp pairs back to back (independent calls, so they pipeline instead
    // of serializing behind each miss's branches), then the accept tests.
    // Lanes are independent sub-streams, so resolving them out of the
    // strictly interleaved order leaves every element's private splitmix64
    // chain -- and hence its value -- untouched; only the ~7% of misses
    // that fail their first wedge test (or hit the layer-0 tail) fall back
    // to the general rejection loop.
    if (miss != 0) {
      const ZigguratTables& t = g_zig_tables;
      std::uint8_t lane_of[64];
      std::uint64_t st[64];
      double arg0[64], arg1[64], xx[64], f0[64], f1[64];
      int k = 0;
      while (miss != 0) {
        const auto lane = static_cast<std::size_t>(std::countr_zero(miss));
        miss &= miss - 1;
        std::uint64_t s = (key ^ (weyl + lane * kWeyl)) + kWeyl;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        const int layer = static_cast<int>(z & 0x7F);
        const double u = 2.0 * unit_from_bits(z) - 1.0;
        if (layer == 0) {  // base strip: straight to the tail sampler
          o[block + lane] = normal_rejection(s, layer, u);
          continue;
        }
        const double x = u * t.x[layer];
        lane_of[k] = static_cast<std::uint8_t>(lane);
        st[k] = s;
        xx[k] = x;
        arg0[k] = -0.5 * (t.x[layer] * t.x[layer] - x * x);
        arg1[k] = -0.5 * (t.x[layer + 1] * t.x[layer + 1] - x * x);
        ++k;
      }
      for (int i = 0; i < k; ++i) f0[i] = std::exp(arg0[i]);
      for (int i = 0; i < k; ++i) f1[i] = std::exp(arg1[i]);
      for (int i = 0; i < k; ++i) {
        std::uint64_t s = st[i];
        if (f1[i] + unit_from_bits(splitmix64(s)) * (f0[i] - f1[i]) < 1.0) {
          o[block + lane_of[i]] = xx[i];
          continue;
        }
        // Failed wedge: the next attempt's box test, inline; its own
        // misses continue in the shared rejection loop with the state
        // advanced exactly as the interleaved form would have left it.
        const std::uint64_t bits = splitmix64(s);
        const int layer2 = static_cast<int>(bits & 0x7F);
        const double u2 = 2.0 * unit_from_bits(bits) - 1.0;
        o[block + lane_of[i]] = std::fabs(u2) < t.ratio[layer2]
                                    ? u2 * t.x[layer2]
                                    : normal_rejection(s, layer2, u2);
      }
    }
    weyl += 64 * kWeyl;
  }
}

}  // namespace fecim::util
