#include "util/rng.hpp"

#include <cmath>

namespace fecim::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // A state of all zeros would lock the engine at zero; splitmix64 cannot
  // produce four zero words from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0,1) with full mantissa resolution.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  FECIM_EXPECTS(n > 0);
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  FECIM_EXPECTS(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  std::vector<std::uint32_t> chosen;
  sample_without_replacement_into(n, k, chosen);
  return chosen;
}

void Rng::sample_without_replacement_into(std::uint32_t n, std::uint32_t k,
                                          std::vector<std::uint32_t>& chosen) {
  FECIM_EXPECTS(k <= n);
  chosen.clear();
  chosen.reserve(k);
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; if t already
  // chosen insert j, else insert t.  O(k) expected with a linear membership
  // scan (k is small everywhere in this project).
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(uniform_index(j + 1));
    bool seen = false;
    for (const auto c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  FECIM_ENSURES(chosen.size() == k);
}

Rng Rng::split(std::uint64_t stream_tag) const noexcept {
  // Derive a child seed by hashing the parent state with the stream tag.
  std::uint64_t h = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                    rotl(state_[3], 43);
  h ^= 0xd6e8feb86659fd93ULL * (stream_tag + 1);
  std::uint64_t sm = h;
  return Rng(splitmix64(sm));
}

}  // namespace fecim::util
