// Deterministic pseudo-random number generation for the whole project.
//
// All stochastic components (annealing moves, device variation, ADC noise,
// instance generators) draw from fecim::util::Rng so experiments are exactly
// reproducible from a single 64-bit seed.  The engine is xoshiro256**, seeded
// through SplitMix64; independent sub-streams are derived with split(), which
// mixes a stream tag into the state so parallel runs never share a sequence.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace fecim::util {

/// SplitMix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** engine wrapped with the distribution helpers the project
/// actually needs.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Raw 64 random bits.
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be positive.  Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (cached pair).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial.
  bool bernoulli(double p) noexcept;

  /// Random spin value, -1 or +1 with equal probability.
  int spin() noexcept { return bernoulli(0.5) ? 1 : -1; }

  /// k distinct indices sampled uniformly from [0, n); k <= n.
  /// Uses Floyd's algorithm; result is unsorted.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// Allocation-free variant for hot loops: clears `out` and fills it with
  /// the sample, reusing its capacity.  Identical RNG draw order and result
  /// as sample_without_replacement for the same engine state.
  void sample_without_replacement_into(std::uint32_t n, std::uint32_t k,
                                       std::vector<std::uint32_t>& out);

  /// Derive an independent stream for (e.g.) a worker thread or a run index.
  Rng split(std::uint64_t stream_tag) const noexcept;

 private:
  result_type next() noexcept;

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace fecim::util
