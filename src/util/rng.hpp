// Deterministic pseudo-random number generation for the whole project.
//
// Two generator families, with distinct contracts:
//
//  * `Rng` -- a sequential xoshiro256** engine seeded through SplitMix64.
//    Algorithmic randomness (annealing move proposals, acceptance tests,
//    initial spins, instance generators) draws from it, so a run is exactly
//    reproducible from a single 64-bit seed.  Draws are order-dependent by
//    construction: the value of draw k depends on every draw before it.
//
//  * `NoiseStream` -- a stateless counter-based generator for *physical*
//    noise (device variation, read noise, ADC noise).  Each stream is keyed
//    by (run_seed, site_id) and each draw by an index, so the value of draw
//    (site, index) is derivable independently, in any order, on any thread.
//    This is what lets the optimized analog engine and the golden reference
//    kernel produce bit-identical noisy results without sharing a
//    sequential RNG, and lets samplers batch (see normal_fill).  See
//    docs/noise-model.md for the full key scheme and the contract.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace fecim::util {

/// SplitMix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** engine wrapped with the distribution helpers the project
/// actually needs.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Raw 64 random bits.
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be positive.  Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (cached pair).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial.
  bool bernoulli(double p) noexcept;

  /// Random spin value, -1 or +1 with equal probability.
  int spin() noexcept { return bernoulli(0.5) ? 1 : -1; }

  /// k distinct indices sampled uniformly from [0, n); k <= n.
  /// Uses Floyd's algorithm; result is unsorted.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// Allocation-free variant for hot loops: clears `out` and fills it with
  /// the sample, reusing its capacity.  Identical RNG draw order and result
  /// as sample_without_replacement for the same engine state.
  void sample_without_replacement_into(std::uint32_t n, std::uint32_t k,
                                       std::vector<std::uint32_t>& out);

  /// Derive an independent stream for (e.g.) a worker thread or a run index.
  Rng split(std::uint64_t stream_tag) const noexcept;

 private:
  result_type next() noexcept;

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// ---------------------------------------------------------------------------
// Counter-keyed noise streams.
// ---------------------------------------------------------------------------

/// Well-known site ids for the noise streams the simulation draws from.  A
/// site identifies *which physical noise source* a stream models; the draw
/// index identifies *which event* within that source (cell index at
/// programming time, conversion index at readout time).  Keeping the ids in
/// one place documents the whole key space: a (run_seed, site_id, index)
/// triple globally identifies every stochastic value in a run.
namespace stream_site {
inline constexpr std::uint64_t kCellVth = 0x01;    ///< D2D V_TH offset, per cell
inline constexpr std::uint64_t kCellFault = 0x02;  ///< stuck-at roll, per cell
inline constexpr std::uint64_t kReadNoise = 0x03;  ///< C2C read noise, per read
inline constexpr std::uint64_t kAdcNoise = 0x04;   ///< ADC input noise, per conversion
/// Crossbar readout: ONE draw per ADC conversion carrying the conversion's
/// total input-referred sigma (C2C read noise aggregated in quadrature with
/// the ADC input noise -- exact, because independent zero-mean Gaussians sum
/// to a Gaussian).  The engines use this site; kReadNoise / kAdcNoise serve
/// the standalone component models.
inline constexpr std::uint64_t kReadoutNoise = 0x05;
/// Simulated-bifurcation drive dither: the ballistic SB backend binarizes
/// its continuous oscillator positions stochastically before driving them
/// onto the crossbar (sign(x) with probability (1 + x)/2), one draw per
/// (step, spin) indexed step * num_flippable + spin.  Counter-keyed like
/// every physical stream, so SB runs are order- and thread-independent.
inline constexpr std::uint64_t kSbDither = 0x06;
}  // namespace stream_site

/// Stateless counter-based noise generator (SplitMix64-style).
///
/// A stream is a pure function of (key, index): `normal(i)` returns the same
/// value no matter when, in what order, or on which thread it is called, and
/// never perturbs any other draw.  Rejection steps inside a draw iterate a
/// private sub-stream derived from (key, index), so even the variable-length
/// samplers (ziggurat wedges/tail) keep index i fully independent of index j.
///
/// The standard-normal sampler is a 128-layer ziggurat: ~1 counter hash plus
/// one table compare on the ~98.8% fast path, which is what unblocks the
/// noisy-analog hot path from the sequential Box-Muller in Rng::normal().
/// `normal_fill` batches draws of consecutive indices; the iterations are
/// independent, so the loop pipelines instead of serializing on RNG state.
class NoiseStream {
 public:
  /// Null stream (key 0); valid but only useful as a placeholder.
  NoiseStream() = default;

  /// Stream for one noise site of one run.  Different (run_seed, site_id)
  /// pairs give statistically independent streams.
  NoiseStream(std::uint64_t run_seed, std::uint64_t site_id) noexcept;

  /// Raw 64 random bits for draw `index`.
  std::uint64_t bits(std::uint64_t index) const noexcept;

  /// Uniform double in [0, 1) for draw `index`.
  double uniform01(std::uint64_t index) const noexcept;

  /// Standard normal draw for `index` (ziggurat; exact N(0,1), not an
  /// approximation -- tails included).
  double normal(std::uint64_t index) const noexcept;

  /// Normal with the given mean and standard deviation for `index`.
  double normal(std::uint64_t index, double mean, double stddev) const noexcept;

  /// Batched standard normals for indices [base_index, base_index + out.size()).
  /// Identical values to calling normal(base_index + i) element-wise.
  void normal_fill(std::uint64_t base_index, std::span<double> out) const noexcept;

  std::uint64_t key() const noexcept { return key_; }

 private:
  std::uint64_t key_ = 0;
};

}  // namespace fecim::util
