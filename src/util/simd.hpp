// Portability layer for the auto-vectorized hot loops.
//
// The project's SIMD strategy is deliberate: hot loops are written as plain
// scalar code over contiguous lane-major arrays, shaped so the compiler's
// auto-vectorizer proves them safe (no loop-carried FP dependence, no
// calls, branchless selects), and these macros only *remove obstacles* --
// aliasing ambiguity and, where an explicit promise is needed,
// iteration-independence.  No intrinsics, no OpenMP (`#pragma omp simd`
// would drag in a runtime dependency), no per-ISA code paths: the same
// source compiles on any target and merely runs wider where the ISA allows.
// Build with -fopt-info-vec (GCC) to audit which loops actually vectorize;
// CMake's FECIM_NATIVE_ARCH=ON (default) supplies the host ISA.
//
// Bit-exactness: every loop carrying these annotations must remain
// bit-identical when vectorized.  That is guaranteed only because the
// project (a) pins -ffp-contract=off globally (no FMA re-rounding), and
// (b) never asks the vectorizer to reassociate an FP reduction -- lane
// accumulators are independent array elements, and genuine reductions over
// exact integers use util-level helpers whose association is value-free.
#pragma once

#include <cstddef>

#if defined(__GNUC__) && !defined(__clang__)
/// Promise the compiler the following loop has no loop-carried
/// dependences it must prove (GCC).  Use only on loops whose iterations
/// are independent by construction.
#define FECIM_LOOP_IVDEP _Pragma("GCC ivdep")
#elif defined(__clang__)
#define FECIM_LOOP_IVDEP _Pragma("clang loop vectorize(assume_safety)")
#else
#define FECIM_LOOP_IVDEP
#endif

#if defined(__GNUC__) || defined(__clang__)
/// Non-aliasing pointer qualifier for kernel-local spans.
#define FECIM_RESTRICT __restrict__
/// Force-inline a hot helper (or lambda, attached after its parameter
/// list) the optimizer would otherwise leave as an out-of-line call --
/// e.g. a sweep body invoked once per (flip, band) unit, where the call
/// plus capture-frame reloads cost more than the duplicated code.
#define FECIM_ALWAYS_INLINE __attribute__((always_inline))
#else
#define FECIM_RESTRICT
#define FECIM_ALWAYS_INLINE
#endif

namespace fecim::util {

/// Sum of `n` doubles whose values are exact integers (|total| < 2^53):
/// every association yields the same bits, so the four-lane unrolling here
/// -- which breaks the serial addsd dependence chain -- is value-identical
/// to a left-to-right fold.  Do NOT use on general FP data.
inline double exact_integer_sum(const double* FECIM_RESTRICT v,
                                std::size_t n) noexcept {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += v[i];
    a1 += v[i + 1];
    a2 += v[i + 2];
    a3 += v[i + 3];
  }
  for (; i < n; ++i) a0 += v[i];
  return (a0 + a1) + (a2 + a3);
}

}  // namespace fecim::util
