#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace fecim::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const noexcept { return count_ ? mean_ : 0.0; }

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return count_ ? min_ : 0.0; }

double RunningStats::max() const noexcept { return count_ ? max_ : 0.0; }

double percentile(std::vector<double> values, double p) {
  FECIM_EXPECTS(!values.empty());
  FECIM_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  FECIM_EXPECTS(hi > lo);
  FECIM_EXPECTS(bins > 0);
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  FECIM_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  FECIM_EXPECTS(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1 - 1) +
      (hi_ - lo_) / static_cast<double>(counts_.size()); }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    out << "[" << bin_lo(b) << ", " << bin_hi(b) << ") ";
    for (std::size_t i = 0; i < bar; ++i) out << '#';
    out << ' ' << counts_[b] << '\n';
  }
  return out.str();
}

}  // namespace fecim::util
