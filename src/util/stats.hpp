// Streaming and batch statistics used by the experiment runner and benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fecim::util {

/// Numerically stable streaming mean/variance (Welford's algorithm) with
/// min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set with linear interpolation; p in [0, 100].
/// The input is copied and sorted internally.
double percentile(std::vector<double> values, double p);

/// Median convenience wrapper.
double median(std::vector<double> values);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Compact ASCII rendering (one line per bin), used by example binaries.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace fecim::util
