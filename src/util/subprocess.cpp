#include "util/subprocess.hpp"

#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#define FECIM_HAVE_FORK 1
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace fecim::util {

#if defined(FECIM_HAVE_FORK)

bool subprocess_supported() noexcept { return true; }

std::optional<ChildProcess> spawn_pipe_child(
    const std::function<void(int)>& body) {
  int fds[2];
  if (::pipe(fds) != 0) return std::nullopt;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return std::nullopt;
  }
  if (pid == 0) {
    // Child: keep only the write end; _exit so inherited stdio buffers are
    // never flushed twice and no atexit handler touches parent-owned state.
    ::close(fds[0]);
    int code = 0;
    try {
      body(fds[1]);
    } catch (...) {
      code = 70;  // EX_SOFTWARE; the parent judges by streamed records
    }
    ::close(fds[1]);
    ::_exit(code);
  }
  ::close(fds[1]);
  return ChildProcess{static_cast<long>(pid), fds[0]};
}

bool write_all(int fd, const void* data, std::size_t size) noexcept {
  const char* cursor = static_cast<const char*>(data);
  while (size > 0) {
    const ::ssize_t written = ::write(fd, cursor, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

long read_some(int fd, void* buffer, std::size_t size) noexcept {
  for (;;) {
    const ::ssize_t n = ::read(fd, buffer, size);
    if (n >= 0) return static_cast<long>(n);
    if (errno != EINTR) return -1;
  }
}

std::vector<std::size_t> poll_readable(const std::vector<int>& fds,
                                       int timeout_ms) {
  std::vector<::pollfd> poll_fds(fds.size());
  for (std::size_t i = 0; i < fds.size(); ++i)
    poll_fds[i] = {fds[i], POLLIN, 0};
  std::vector<std::size_t> ready;
  const int hits =
      ::poll(poll_fds.data(), static_cast<::nfds_t>(poll_fds.size()),
             timeout_ms);
  if (hits <= 0) return ready;  // timeout, or EINTR (caller re-polls)
  for (std::size_t i = 0; i < poll_fds.size(); ++i)
    if ((poll_fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
      ready.push_back(i);
  return ready;
}

ChildExit wait_child(long pid) noexcept {
  int status = 0;
  for (;;) {
    const pid_t reaped = ::waitpid(static_cast<pid_t>(pid), &status, 0);
    if (reaped >= 0) break;
    if (errno != EINTR) return {};
  }
  if (WIFEXITED(status)) return {true, WEXITSTATUS(status)};
  if (WIFSIGNALED(status)) return {false, WTERMSIG(status)};
  return {};
}

void kill_child(long pid) noexcept {
  if (pid > 0) ::kill(static_cast<pid_t>(pid), SIGKILL);
}

void exit_child_now(int code) noexcept { ::_exit(code); }

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

#else  // !FECIM_HAVE_FORK

bool subprocess_supported() noexcept { return false; }

std::optional<ChildProcess> spawn_pipe_child(
    const std::function<void(int)>&) {
  return std::nullopt;
}

bool write_all(int, const void*, std::size_t) noexcept { return false; }

long read_some(int, void*, std::size_t) noexcept { return -1; }

std::vector<std::size_t> poll_readable(const std::vector<int>&, int) {
  return {};
}

ChildExit wait_child(long) noexcept { return {}; }

void kill_child(long) noexcept {}

[[noreturn]] void exit_child_now(int) noexcept { std::abort(); }

void close_fd(int) noexcept {}

#endif  // FECIM_HAVE_FORK

}  // namespace fecim::util
