// Thin POSIX process helpers for the fork-based shard runner
// (core/shard_runner.hpp): fork a pipe-connected child, stream bytes back,
// poll several children at once, reap or kill them.
//
// Everything platform-specific lives behind this seam so the shard runner
// stays free of <unistd.h>: on platforms without fork,
// subprocess_supported() is false and spawn_pipe_child() returns nullopt --
// callers degrade to the in-process pool (fecim_solve names the reason on
// stderr).
//
// Fork discipline (why children are safe): the child runs `body(write_fd)`
// on the forking thread only and terminates with _exit -- no atexit
// handlers, no stdio teardown, so inherited buffers are never double-
// flushed and the parent's persistent thread pool (whose threads do not
// survive fork) is never joined.  Children must also never SUBMIT to that
// pool; shard workers call util::force_serial_parallelism() first thing.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

namespace fecim::util {

/// True when fork/pipe process workers are available on this platform.
bool subprocess_supported() noexcept;

struct ChildProcess {
  long pid = -1;     ///< child process id
  int read_fd = -1;  ///< parent's read end of the child's pipe
};

/// Fork a child connected by a pipe.  The child runs `body(write_fd)` and
/// terminates with _exit(0); an exception escaping `body` terminates it
/// with _exit(70) instead (EX_SOFTWARE) -- the parent sees EOF either way
/// and judges completeness from the streamed records, not the exit code.
/// Returns nullopt when pipe/fork fails or the platform has no fork.
std::optional<ChildProcess> spawn_pipe_child(
    const std::function<void(int)>& body);

/// write(2) until all `size` bytes are written; EINTR-safe.  False on a
/// write error (e.g. the parent died and the pipe broke).
bool write_all(int fd, const void* data, std::size_t size) noexcept;

/// read(2) once, EINTR retried: bytes read, 0 on EOF, -1 on error.
long read_some(int fd, void* buffer, std::size_t size) noexcept;

/// Indices into `fds` that are readable (or at EOF); empty on timeout.
/// timeout_ms < 0 blocks indefinitely.
std::vector<std::size_t> poll_readable(const std::vector<int>& fds,
                                       int timeout_ms);

struct ChildExit {
  bool exited = false;  ///< terminated normally (vs killed by a signal)
  int status = -1;      ///< exit code when exited, signal number otherwise
};

/// Blocking waitpid on one child.
ChildExit wait_child(long pid) noexcept;

/// SIGKILL, best effort (a child already gone is not an error).
void kill_child(long pid) noexcept;

/// _exit(code): terminate without atexit/stdio teardown.  For use inside
/// spawn_pipe_child bodies that must die abruptly (kill-worker injection).
[[noreturn]] void exit_child_now(int code) noexcept;

void close_fd(int fd) noexcept;

}  // namespace fecim::util
