#include "util/table.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace fecim::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FECIM_EXPECTS(!header_.empty());
}

Table& Table::row() {
  FECIM_EXPECTS(cells_.empty() || cells_.back().size() == header_.size());
  cells_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  FECIM_EXPECTS(!cells_.empty());
  FECIM_EXPECTS(cells_.back().size() < header_.size());
  cells_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return add(out.str());
}

Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(long long value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : cells_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : cells_) emit_row(row);
  return out.str();
}

std::string Table::csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : cells_) emit_row(row);
  return out.str();
}

std::string si_format(double value, const std::string& unit, int precision) {
  struct Scale {
    double factor;
    const char* prefix;
  };
  static constexpr Scale scales[] = {
      {1e9, "G"}, {1e6, "M"}, {1e3, "k"},  {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
  };
  const double magnitude = std::fabs(value);
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision);
  if (magnitude == 0.0) {
    out << 0.0 << ' ' << unit;
    return out.str();
  }
  for (const auto& s : scales) {
    if (magnitude >= s.factor) {
      out << value / s.factor << ' ' << s.prefix << unit;
      return out.str();
    }
  }
  out << value / 1e-12 << " p" << unit;
  return out.str();
}

}  // namespace fecim::util
