// Console table / CSV emitter used by every bench binary so the reproduced
// rows print in a uniform, paper-comparable format.
#pragma once

#include <string>
#include <vector>

namespace fecim::util {

/// A simple column-aligned table.  Cells are strings; helpers format numbers
/// with a fixed precision so bench output stays diff-friendly.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Start a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(double value, int precision = 3);
  Table& add(std::size_t value);
  Table& add(long long value);
  Table& add(int value);

  /// Aligned fixed-width rendering for the console.
  std::string str() const;
  /// Comma-separated rendering (no alignment padding).
  std::string csv() const;

  std::size_t rows() const noexcept { return cells_.size(); }
  std::size_t columns() const noexcept { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format a double in engineering style with an SI suffix (n, u, m, k, M, G)
/// relative to `unit`, e.g. si_format(2.5e-9, "J") -> "2.500 nJ".
std::string si_format(double value, const std::string& unit, int precision = 3);

}  // namespace fecim::util
