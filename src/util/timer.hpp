// Wall-clock timer for bench harness bookkeeping (host time, not the modeled
// hardware latency — that lives in fecim::cost).
#pragma once

#include <chrono>

namespace fecim::util {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fecim::util
