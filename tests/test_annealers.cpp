// Annealer behaviour: exact optima on brute-forceable instances, ledger
// accounting, determinism, trace recording, MESA, factory wiring.
#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "core/annealer_factory.hpp"
#include "core/direct_annealer.hpp"
#include "core/insitu_annealer.hpp"
#include "core/mesa.hpp"
#include "problems/generators.hpp"
#include "problems/maxcut.hpp"

namespace {

using namespace fecim;
using core::AnnealerKind;
using core::DirectEAnnealer;
using core::DirectEConfig;
using core::InSituCimAnnealer;
using core::InSituConfig;

std::shared_ptr<const ising::IsingModel> small_model(std::uint64_t seed,
                                                     std::size_t n = 14) {
  const auto graph =
      problems::random_graph(n, 4.0, problems::WeightScheme::kUnit, seed);
  return std::make_shared<const ising::IsingModel>(
      problems::maxcut_to_ising(graph));
}

TEST(InSituAnnealer, FindsExactOptimumOnSmallInstances) {
  const auto model = small_model(1);
  const auto [spins, optimum] = model->brute_force_ground_state();

  InSituConfig config;
  config.iterations = 3000;
  config.flips_per_iteration = 2;
  const InSituCimAnnealer annealer(model, config);
  int hits = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto result = annealer.run(seed);
    EXPECT_GE(result.best_energy, optimum - 1e-9);
    hits += std::fabs(result.best_energy - optimum) < 1e-9;
  }
  EXPECT_GE(hits, 8);  // near-certain on a 14-spin instance
}

TEST(InSituAnnealer, DeterministicPerSeed) {
  const auto model = small_model(2, 24);
  InSituConfig config;
  config.iterations = 500;
  const InSituCimAnnealer annealer(model, config);
  const auto a = annealer.run(7);
  const auto b = annealer.run(7);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.final_spins, b.final_spins);
  EXPECT_EQ(a.ledger.adc_conversions, b.ledger.adc_conversions);
}

TEST(InSituAnnealer, LedgerAccountingPerIteration) {
  const auto model = small_model(3, 32);
  InSituConfig config;
  config.iterations = 200;
  config.flips_per_iteration = 2;
  config.engine = InSituConfig::EngineKind::kIdeal;
  const InSituCimAnnealer annealer(model, config);
  const auto result = annealer.run(1);
  EXPECT_EQ(result.ledger.iterations, 200u);
  // 2 row passes x t x bits (single plane for unit weights).
  EXPECT_EQ(result.ledger.adc_conversions, 200u * 2u * 2u * 8u);
  EXPECT_GE(result.ledger.mux_slot_cycles, 400u);  // >= 2 per iteration
  EXPECT_GT(result.ledger.bg_dac_updates, 0u);
  EXPECT_EQ(result.ledger.exp_evaluations, 0u);  // no e^x unit in this work
  EXPECT_EQ(result.ledger.spin_updates, result.accepted_moves * 2u);
}

TEST(InSituAnnealer, EnergyBookkeepingMatchesRecomputation) {
  const auto model = small_model(4, 40);
  InSituConfig config;
  config.iterations = 300;
  const InSituCimAnnealer annealer(model, config);
  const auto result = annealer.run(3);
  EXPECT_NEAR(result.final_energy, model->energy(result.final_spins), 1e-9);
  EXPECT_NEAR(result.best_energy, model->energy(result.best_spins), 1e-9);
  EXPECT_LE(result.best_energy, result.final_energy + 1e-9);
}

TEST(InSituAnnealer, TraceRecordsRequestedStride) {
  const auto model = small_model(5, 20);
  InSituConfig config;
  config.iterations = 100;
  config.trace.enabled = true;
  config.trace.stride = 10;
  const InSituCimAnnealer annealer(model, config);
  const auto result = annealer.run(1);
  EXPECT_EQ(result.trajectory.size(), 10u);
  EXPECT_EQ(result.ledger_trajectory.size(), 10u);
  // Cumulative ledger snapshots are monotone.
  for (std::size_t i = 1; i < result.ledger_trajectory.size(); ++i) {
    EXPECT_GE(result.ledger_trajectory[i].ledger.adc_conversions,
              result.ledger_trajectory[i - 1].ledger.adc_conversions);
  }
}

TEST(InSituAnnealer, HandlesFieldsViaAncilla) {
  // A model with fields must be folded first; the annealer then pins the
  // ancilla and still reaches the true optimum.
  linalg::CsrMatrix::Builder builder(6, 6);
  builder.add_symmetric(0, 1, 1.0);
  builder.add_symmetric(2, 3, -1.5);
  builder.add_symmetric(4, 5, 0.5);
  const ising::IsingModel with_fields(builder.build(),
                                      {0.3, -0.7, 0.2, 0.0, -0.4, 0.1});
  const auto folded = std::make_shared<const ising::IsingModel>(
      with_fields.with_ancilla());
  const auto [best, optimum] = folded->brute_force_ground_state();

  InSituConfig config;
  config.iterations = 2000;
  const InSituCimAnnealer annealer(folded, config);
  const auto result = annealer.run(11);
  EXPECT_EQ(result.best_spins[folded->ancilla_index()], 1);
  EXPECT_NEAR(result.best_energy, optimum, 1e-9);
}

TEST(InSituAnnealer, RejectsModelsWithRawFields) {
  linalg::CsrMatrix::Builder builder(3, 3);
  builder.add_symmetric(0, 1, 1.0);
  const auto bad = std::make_shared<const ising::IsingModel>(
      builder.build(), std::vector<double>{1.0, 0.0, 0.0});
  EXPECT_THROW(InSituCimAnnealer(bad, InSituConfig{}),
               fecim::contract_error);
}

TEST(DirectEAnnealer, FindsExactOptimumOnSmallInstances) {
  const auto model = small_model(6);
  const auto [spins, optimum] = model->brute_force_ground_state();
  DirectEConfig config;
  config.iterations = 3000;
  config.schedule_kind = core::ClassicSchedule::Kind::kGeometric;
  const DirectEAnnealer annealer(model, config);
  int hits = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed)
    hits += std::fabs(annealer.run(seed).best_energy - optimum) < 1e-9;
  EXPECT_GE(hits, 8);
}

TEST(DirectEAnnealer, FullArrayLedger) {
  const auto model = small_model(7, 32);
  DirectEConfig config;
  config.iterations = 100;
  const DirectEAnnealer annealer(model, config);
  const auto result = annealer.run(1);
  EXPECT_EQ(result.ledger.adc_conversions, 100u * 2u * 32u * 8u);
  EXPECT_EQ(result.ledger.mux_slot_cycles, 100u * 16u);
  // Pipelined e^x unit: one evaluation per iteration.
  EXPECT_EQ(result.ledger.exp_evaluations, 100u);
}

TEST(DirectEAnnealer, ConditionalExpUnitChargesOnlyUphill) {
  const auto model = small_model(8, 32);
  DirectEConfig config;
  config.iterations = 500;
  config.pipelined_exp_unit = false;
  const DirectEAnnealer annealer(model, config);
  const auto result = annealer.run(1);
  EXPECT_LT(result.ledger.exp_evaluations, 500u);
  EXPECT_GT(result.ledger.exp_evaluations, 0u);
}

TEST(DirectEAnnealer, AutoCalibratesStartTemperature) {
  const auto model = small_model(9, 50);
  const DirectEAnnealer annealer(model, DirectEConfig{});
  EXPECT_GT(annealer.calibrated_t_start(), 0.0);
  DirectEConfig manual;
  manual.t_start = 42.0;
  const DirectEAnnealer fixed(model, manual);
  EXPECT_DOUBLE_EQ(fixed.calibrated_t_start(), 42.0);
}

TEST(MesaAnnealer, ReachesOptimaAndRunsEpochs) {
  const auto model = small_model(10);
  const auto [spins, optimum] = model->brute_force_ground_state();
  core::MesaConfig config;
  config.epochs = 4;
  config.base.iterations = 4000;
  config.base.schedule_kind = core::ClassicSchedule::Kind::kGeometric;
  const core::MesaAnnealer annealer(model, config);
  const auto result = annealer.run(5);
  EXPECT_NEAR(result.best_energy, optimum, 1e-9);
  EXPECT_EQ(result.ledger.iterations, 4000u);
}

TEST(Factory, BuildsAllKinds) {
  const auto model = small_model(11, 20);
  core::StandardSetup setup;
  setup.iterations = 50;
  for (const auto kind :
       {AnnealerKind::kThisWork, AnnealerKind::kThisWorkIdeal,
        AnnealerKind::kCimFpga, AnnealerKind::kCimAsic, AnnealerKind::kMesa}) {
    const auto annealer = core::make_annealer(kind, model, setup);
    ASSERT_NE(annealer, nullptr);
    const auto result = annealer->run(1);
    EXPECT_EQ(result.ledger.iterations, 50u);
  }
}

TEST(Factory, ExpUnitsWiredCorrectly) {
  const auto model = small_model(12, 20);
  core::StandardSetup setup;
  setup.iterations = 10;
  EXPECT_EQ(core::make_annealer(AnnealerKind::kThisWork, model, setup)
                ->exp_unit(),
            cost::ExpUnit::kNone);
  EXPECT_EQ(core::make_annealer(AnnealerKind::kCimFpga, model, setup)
                ->exp_unit(),
            cost::ExpUnit::kFpga);
  EXPECT_EQ(core::make_annealer(AnnealerKind::kCimAsic, model, setup)
                ->exp_unit(),
            cost::ExpUnit::kAsic);
}

TEST(Factory, NamesAreStable) {
  EXPECT_STREQ(core::annealer_kind_name(AnnealerKind::kThisWork), "This Work");
  EXPECT_STREQ(core::annealer_kind_name(AnnealerKind::kCimFpga), "CiM/FPGA");
  EXPECT_STREQ(core::annealer_kind_name(AnnealerKind::kCimAsic), "CiM/ASIC");
}

}  // namespace
