// Digest-keyed programmed-array cache (crossbar/array_cache.hpp):
//
//  * array_digest is deterministic in its inputs and sensitive to every
//    key ingredient -- coupling content, quantization bits, mux ratio,
//    column interleave, device/variation parameters, variation seed, and
//    tile shape -- so two annealers share an array exactly when a fresh
//    build would be bit-identical (PERF.md invariants 1 and 2).
//  * get_or_build returns the *same* shared array for equal keys, evicts
//    in LRU order under a byte budget (never the most-recent entry), and
//    builds each digest exactly once under concurrent racing callers.
//  * End to end: campaigns run through a shared cache are bit-identical to
//    uncached campaigns, deterministic and noisy, monolithic and tiled.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/annealer_factory.hpp"
#include "core/runner.hpp"
#include "crossbar/array_cache.hpp"
#include "problems/generators.hpp"
#include "problems/instances.hpp"
#include "problems/maxcut.hpp"
#include "util/parallel.hpp"

namespace {

using namespace fecim;

struct ArrayInputs {
  std::shared_ptr<const ising::IsingModel> model;
  crossbar::QuantizedCouplings quantized;
  crossbar::CrossbarMapping mapping;
  device::DgFefetParams device{};
  device::VariationParams variation{0.03, 0.02, 0.0, 0.0};
  std::uint64_t seed = 0x5eed;
  crossbar::TileShape tiles{};
};

ArrayInputs make_inputs(std::size_t n = 48, std::uint64_t graph_seed = 7,
                        int bits = 8, std::size_t mux = 8,
                        bool interleave = true) {
  auto model = std::make_shared<const ising::IsingModel>(
      problems::maxcut_to_ising(problems::random_graph(
          n, 5.0, problems::WeightScheme::kPlusMinusOne, graph_seed)));
  crossbar::QuantizedCouplings quantized(model->couplings(), bits);
  const bool negative = quantized.has_negative();
  crossbar::CrossbarMapping mapping(
      model->num_spins(), negative ? 2 : 1,
      crossbar::MappingConfig{bits, mux, interleave});
  return ArrayInputs{std::move(model), std::move(quantized),
                     std::move(mapping)};
}

crossbar::ArrayDigest digest_of(const ArrayInputs& in) {
  return crossbar::array_digest(in.quantized, in.mapping.config(), in.device,
                                in.variation, in.seed, in.tiles);
}

// ---------------------------------------------------------------------------
// Digest determinism and sensitivity.
// ---------------------------------------------------------------------------

TEST(ArrayDigest, DeterministicAcrossIndependentConstructions) {
  const auto a = make_inputs();
  const auto b = make_inputs();
  EXPECT_EQ(digest_of(a), digest_of(b));
}

TEST(ArrayDigest, SensitiveToEveryKeyIngredient) {
  const auto base = make_inputs();
  const auto base_digest = digest_of(base);

  // Different coupling content (another graph seed).
  EXPECT_NE(digest_of(make_inputs(48, 8)), base_digest);

  // Quantization bits.
  EXPECT_NE(digest_of(make_inputs(48, 7, 6)), base_digest);

  // Mux ratio and column interleave are mapping-layout key material.
  EXPECT_NE(digest_of(make_inputs(48, 7, 8, 4)), base_digest);
  EXPECT_NE(digest_of(make_inputs(48, 7, 8, 8, false)), base_digest);

  // Programming-time variation seed and parameters.
  {
    auto in = make_inputs();
    in.seed = base.seed + 1;
    EXPECT_NE(digest_of(in), base_digest);
  }
  {
    auto in = make_inputs();
    in.variation.vth_sigma = 0.05;
    EXPECT_NE(digest_of(in), base_digest);
  }
  {
    auto in = make_inputs();
    in.variation.stuck_off_rate = 0.01;
    EXPECT_NE(digest_of(in), base_digest);
  }

  // Device compact-model parameters feed the cell multipliers.
  {
    auto in = make_inputs();
    in.device.vth_high += 0.01;
    EXPECT_NE(digest_of(in), base_digest);
  }

  // Tile shape changes the band-local cache layout.
  {
    auto in = make_inputs();
    in.tiles = crossbar::TileShape{16, 0};
    EXPECT_NE(digest_of(in), base_digest);
  }
}

// ---------------------------------------------------------------------------
// Hit/miss behavior and sharing.
// ---------------------------------------------------------------------------

TEST(ArrayCache, EqualKeysShareOneArray) {
  const auto in = make_inputs();
  crossbar::ArrayCache cache;
  const auto first = cache.get_or_build(in.quantized, in.mapping, in.device,
                                        in.variation, in.seed, in.tiles);
  const auto second = cache.get_or_build(in.quantized, in.mapping, in.device,
                                         in.variation, in.seed, in.tiles);
  EXPECT_EQ(first.get(), second.get());  // pointer identity, not just value
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GE(stats.build_seconds, 0.0);
}

TEST(ArrayCache, DifferentSeedsBuildDistinctArrays) {
  auto in = make_inputs();
  crossbar::ArrayCache cache;
  const auto a = cache.get_or_build(in.quantized, in.mapping, in.device,
                                    in.variation, in.seed, in.tiles);
  const auto b = cache.get_or_build(in.quantized, in.mapping, in.device,
                                    in.variation, in.seed + 1, in.tiles);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

// ---------------------------------------------------------------------------
// LRU eviction under a byte budget.
// ---------------------------------------------------------------------------

TEST(ArrayCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  const auto in = make_inputs();
  // Budget of one byte: every insertion overflows, so after each build only
  // the most-recent entry survives (eviction never drops the newest).
  crossbar::ArrayCache cache(1);
  const auto a = cache.get_or_build(in.quantized, in.mapping, in.device,
                                    in.variation, 1, in.tiles);
  EXPECT_EQ(cache.stats().entries, 1u);
  const auto b = cache.get_or_build(in.quantized, in.mapping, in.device,
                                    in.variation, 2, in.tiles);
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 2u);

  // Seed 1 was evicted: re-requesting it is a fresh build (a third miss),
  // not a hit -- and the evicted shared_ptr `a` stayed fully usable.
  EXPECT_GT(a->num_programmed_entries(), 0u);
  const auto a_again = cache.get_or_build(in.quantized, in.mapping, in.device,
                                          in.variation, 1, in.tiles);
  EXPECT_NE(a.get(), a_again.get());
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 1u);

  // Requesting the resident digest is still a hit.
  const auto again = cache.get_or_build(in.quantized, in.mapping, in.device,
                                        in.variation, 1, in.tiles);
  EXPECT_EQ(a_again.get(), again.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  (void)b;
}

TEST(ArrayCache, GenerousBudgetKeepsEverythingResident) {
  const auto in = make_inputs();
  crossbar::ArrayCache cache;  // default budget: far above three small arrays
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    cache.get_or_build(in.quantized, in.mapping, in.device, in.variation,
                       seed, in.tiles);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, cache.byte_budget());
}

// ---------------------------------------------------------------------------
// Concurrent get-or-build: one build per digest, no torn state.
// ---------------------------------------------------------------------------

TEST(ArrayCache, ConcurrentRequestsBuildEachDigestOnce) {
  const auto in = make_inputs(96);
  crossbar::ArrayCache cache;
  constexpr std::size_t kCallers = 16;
  constexpr std::size_t kDigests = 2;
  std::vector<std::shared_ptr<const crossbar::ProgrammedArray>> arrays(
      kCallers);
  util::parallel_for(kCallers, [&](std::size_t i) {
    arrays[i] = cache.get_or_build(in.quantized, in.mapping, in.device,
                                   in.variation, 100 + i % kDigests,
                                   in.tiles);
  });
  for (std::size_t i = 0; i < kCallers; ++i) {
    ASSERT_TRUE(arrays[i]);
    EXPECT_EQ(arrays[i].get(), arrays[i % kDigests].get());
  }
  EXPECT_NE(arrays[0].get(), arrays[1].get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, kDigests);  // misses == actual builds
  EXPECT_EQ(stats.hits, kCallers - kDigests);
  EXPECT_EQ(stats.entries, kDigests);
}

// ---------------------------------------------------------------------------
// End-to-end: cached campaigns are bit-identical to uncached campaigns.
// ---------------------------------------------------------------------------

void expect_bit_identical(const core::CampaignResult& a,
                          const core::CampaignResult& b) {
  ASSERT_EQ(a.per_run.size(), b.per_run.size());
  for (std::size_t i = 0; i < a.per_run.size(); ++i) {
    EXPECT_EQ(a.per_run[i].seed, b.per_run[i].seed);
    EXPECT_EQ(a.per_run[i].best_energy, b.per_run[i].best_energy) << i;
    EXPECT_EQ(a.per_run[i].best_spins, b.per_run[i].best_spins) << i;
    EXPECT_EQ(a.per_run[i].solution.objective, b.per_run[i].solution.objective)
        << i;
  }
}

void check_cached_campaign_identity(const device::VariationParams& variation,
                                    const crossbar::TileShape& tiles) {
  auto problem = problems::make_maxcut_problem(
      "cache-identity",
      problems::random_graph(40, 5.0, problems::WeightScheme::kPlusMinusOne,
                             11),
      40, 11);
  core::StandardSetup setup;
  setup.iterations = 300;
  setup.variation = variation;
  setup.tiles = tiles;
  core::CampaignConfig config;
  config.runs = 4;

  const auto uncached = core::make_annealer(core::AnnealerKind::kThisWork,
                                            problem.model, setup);
  const auto baseline = core::run_campaign(*uncached, problem, config);

  // Two annealers through one cache: the second shares the first's array.
  setup.array_cache = std::make_shared<crossbar::ArrayCache>();
  const auto cached_a = core::make_annealer(core::AnnealerKind::kThisWork,
                                            problem.model, setup);
  const auto cached_b = core::make_annealer(core::AnnealerKind::kThisWork,
                                            problem.model, setup);
  expect_bit_identical(baseline, core::run_campaign(*cached_a, problem,
                                                    config));
  expect_bit_identical(baseline, core::run_campaign(*cached_b, problem,
                                                    config));
  const auto stats = setup.array_cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ArrayCache, CachedCampaignBitIdenticalDeterministic) {
  check_cached_campaign_identity(device::VariationParams{0.0, 0.0, 0.0, 0.0},
                                 crossbar::TileShape{});
}

TEST(ArrayCache, CachedCampaignBitIdenticalNoisy) {
  check_cached_campaign_identity(device::VariationParams{0.04, 0.02, 0.01,
                                                         0.0},
                                 crossbar::TileShape{});
}

TEST(ArrayCache, CachedCampaignBitIdenticalTiled) {
  check_cached_campaign_identity(device::VariationParams{0.03, 0.02, 0.0,
                                                         0.0},
                                 crossbar::TileShape{16, 16});
}

}  // namespace
