// Band-level parallelism of the noisy readout sweep
// (crossbar::AnalogEngineConfig::band_threads): every (flip, band) unit of
// a stochastic evaluation is independent until the digital partial-sum
// merge, each band owns its scratch and its band_acc slot, and the keyed
// draws are a pure function of the conversion index -- so the sweep must be
// bit-identical for every thread count, including handing the shared
// util::parallel_for pool to the bands (band_threads = 0, the
// core::Parallelism::kBand configuration).  Cancellation is cooperative and
// polled outside the sweep, so a mid-run deadline stops a band-parallel run
// exactly like a serial one.
#include <gtest/gtest.h>

#include <memory>

#include "core/insitu_annealer.hpp"
#include "core/run_lifecycle.hpp"
#include "core/runner.hpp"
#include "crossbar/analog_engine.hpp"
#include "problems/generators.hpp"
#include "problems/instances.hpp"
#include "problems/maxcut.hpp"
#include "util/rng.hpp"

namespace {

using namespace fecim;

std::shared_ptr<const ising::IsingModel> make_model(std::size_t n,
                                                    std::uint64_t seed) {
  return std::make_shared<const ising::IsingModel>(
      problems::maxcut_to_ising(problems::random_graph(
          n, 6.0, problems::WeightScheme::kPlusMinusOne, seed)));
}

/// Noisy tiled array: several row bands, Vth spread + read noise so the
/// stochastic sweep (not the deterministic merge) is what runs per band.
std::shared_ptr<const crossbar::ProgrammedArray> make_noisy_array(
    const ising::IsingModel& model, const core::InSituConfig& config) {
  const crossbar::QuantizedCouplings quantized(model.couplings(),
                                               config.mapping.bits);
  const crossbar::CrossbarMapping mapping(
      model.num_spins(), quantized.has_negative() ? 2 : 1, config.mapping);
  return std::make_shared<const crossbar::ProgrammedArray>(
      quantized, mapping, config.device, config.variation, 0xbad5eed,
      config.tiles);
}

core::InSituConfig noisy_tiled_config() {
  core::InSituConfig config;
  config.variation.vth_sigma = 0.04;
  config.variation.read_noise_rel = 0.02;
  config.tiles = crossbar::TileShape{16, 0};
  return config;
}

TEST(BandParallel, EvaluationBitIdenticalAcrossThreadCounts) {
  const auto model = make_model(96, 21);
  const auto config = noisy_tiled_config();
  const auto array = make_noisy_array(*model, config);
  ASSERT_GT(array->num_bands(), 1u);

  // One engine per thread-count setting, all keyed to the same run: 1 =
  // serial sweep, 0 = whole shared pool, 2 / 5 = capped pool (5 exceeds the
  // band count on purpose).
  const int thread_settings[] = {1, 0, 2, 5};
  std::vector<std::unique_ptr<crossbar::AnalogCrossbarEngine>> engines;
  for (const int threads : thread_settings) {
    auto analog = config.analog;
    analog.band_threads = threads;
    engines.push_back(
        std::make_unique<crossbar::AnalogCrossbarEngine>(array, analog));
    engines.back()->begin_run(77);
  }

  util::Rng rng(123);
  const double vbg_max = array->device_params().vbg_max;
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t t = 1 + rng.uniform_index(4);
    const auto flips = ising::random_flip_set(model->num_spins(), t, rng);
    const auto spins = ising::random_spins(model->num_spins(), rng);
    const crossbar::AnnealSignal signal{rng.uniform01(),
                                        rng.uniform(0.3, vbg_max)};
    const auto serial = engines[0]->evaluate(spins, flips, signal);
    for (std::size_t e = 1; e < engines.size(); ++e) {
      const auto parallel = engines[e]->evaluate(spins, flips, signal);
      ASSERT_EQ(parallel.e_inc, serial.e_inc)
          << "band_threads=" << thread_settings[e] << " trial " << trial;
      ASSERT_EQ(parallel.raw_vmv, serial.raw_vmv);
      ASSERT_EQ(parallel.trace.adc_conversions, serial.trace.adc_conversions);
      // Same conversions got the same keyed indices on every engine.
      ASSERT_EQ(engines[e]->readout_noise().next_conversion,
                engines[0]->readout_noise().next_conversion);
    }
  }
}

TEST(BandParallel, AnnealerRunBitIdenticalAndCancellable) {
  const auto model = make_model(72, 9);
  auto config = noisy_tiled_config();
  config.iterations = 400;

  const core::InSituCimAnnealer serial(model, config);
  config.analog.band_threads = 0;  // nested parallel_for over the bands
  const core::InSituCimAnnealer banded(model, config);

  const auto a = serial.run(5);
  const auto b = banded.run(5);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.final_energy, b.final_energy);
  EXPECT_EQ(a.best_spins, b.best_spins);
  EXPECT_EQ(a.accepted_moves, b.accepted_moves);

  // A run deadline that has already passed trips the annealer's cooperative
  // poll mid-run -- under band parallelism exactly as serially.
  core::CancellationToken expired;
  expired.set_run_deadline(core::CancellationToken::Clock::now());
  EXPECT_THROW(banded.run(5, expired), core::run_timeout_error);

  // A generous deadline changes nothing: the token is observational until
  // it expires.
  core::CancellationToken generous;
  generous.set_run_deadline(core::CancellationToken::Clock::now() +
                            std::chrono::hours(1));
  const auto c = banded.run(5, generous);
  EXPECT_EQ(c.best_energy, a.best_energy);
  EXPECT_EQ(c.best_spins, a.best_spins);
}

TEST(BandParallel, CampaignKBandMatchesKReplica) {
  // Parallelism::kBand runs replicas serially and leaves the pool to the
  // engine's band sweep; per-run records must match the replica-parallel
  // campaign bit for bit (each run derives its seed up front either way).
  auto problem = problems::make_maxcut_problem(
      "maxcut-band-64",
      problems::random_graph(64, 5.0, problems::WeightScheme::kPlusMinusOne,
                             31),
      64, 31);
  auto config = noisy_tiled_config();
  config.iterations = 300;
  const auto model = problem.model;  // annealer-ready (ancilla folded)

  core::CampaignConfig replica_campaign;
  replica_campaign.runs = 4;
  replica_campaign.threads = 2;
  replica_campaign.parallelism = core::Parallelism::kReplica;

  core::CampaignConfig band_campaign = replica_campaign;
  band_campaign.parallelism = core::Parallelism::kBand;

  const core::InSituCimAnnealer serial_engine_annealer(model, config);
  config.analog.band_threads = 0;
  const core::InSituCimAnnealer band_engine_annealer(model, config);

  const auto by_replica =
      core::run_campaign(serial_engine_annealer, problem, replica_campaign);
  const auto by_band =
      core::run_campaign(band_engine_annealer, problem, band_campaign);

  ASSERT_EQ(by_replica.per_run.size(), by_band.per_run.size());
  for (std::size_t r = 0; r < by_replica.per_run.size(); ++r) {
    EXPECT_EQ(by_replica.per_run[r].seed, by_band.per_run[r].seed);
    EXPECT_EQ(by_replica.per_run[r].best_energy,
              by_band.per_run[r].best_energy);
    EXPECT_EQ(by_replica.per_run[r].solution.objective,
              by_band.per_run[r].solution.objective);
  }
}

}  // namespace
