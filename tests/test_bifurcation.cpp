// Simulated-bifurcation backend + run-driver refactor guards.
//
// Two concerns share this file because they share one contract:
//
//  * Refactor guard -- the legacy annealers (in-situ analog/ideal, direct-E,
//    MESA) were rebuilt on core/run_driver.hpp; the FNV-1a digests below
//    were captured from the PRE-refactor binaries and pin every observable
//    field of their AnnealResults (energies, spins, counters, trajectory,
//    ledger snapshots) bit-for-bit.  A digest mismatch means the shared
//    driver changed legacy behavior -- fix the driver, never re-pin.
//
//  * SB backend -- determinism per seed, thread-count invariance through
//    run_campaign, the per-(seed, tile shape) noise pin, warm starts,
//    cooperative cancellation, and journal/resume bit-identity: the same
//    run contracts every other backend honors.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/annealer_factory.hpp"
#include "core/bifurcation_annealer.hpp"
#include "core/run_driver.hpp"
#include "core/run_lifecycle.hpp"
#include "core/runner.hpp"
#include "problems/generators.hpp"
#include "problems/instances.hpp"
#include "problems/maxcut.hpp"
#include "problems/warm_start.hpp"
#include "util/assert.hpp"

namespace {

using namespace fecim;

// ---------------------------------------------------------------------------
// Refactor guard: pre-refactor goldens for the legacy annealers.
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    hash ^= (value >> (8 * b)) & 0xffu;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t fnv1a(std::uint64_t hash, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return fnv1a(hash, bits);
}

/// Digest of every observable AnnealResult field.  Must stay byte-for-byte
/// in sync with the capture tool that produced the goldens.
std::uint64_t result_digest(const core::AnnealResult& result) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  hash = fnv1a(hash, result.best_energy);
  hash = fnv1a(hash, result.final_energy);
  hash = fnv1a(hash, result.accepted_moves);
  hash = fnv1a(hash, result.uphill_accepted);
  for (const auto spin : result.best_spins)
    hash = fnv1a(hash, static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(spin)));
  for (const auto spin : result.final_spins)
    hash = fnv1a(hash, static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(spin)));
  hash = fnv1a(hash, result.ledger.iterations);
  hash = fnv1a(hash, result.ledger.adc_conversions);
  hash = fnv1a(hash, result.ledger.spin_updates);
  hash = fnv1a(hash, result.ledger.exp_evaluations);
  hash = fnv1a(hash, result.ledger.bg_dac_updates);
  for (const auto& point : result.trajectory) {
    hash = fnv1a(hash, point.iteration);
    hash = fnv1a(hash, point.energy);
    hash = fnv1a(hash, point.best_energy);
    hash = fnv1a(hash, point.control);
  }
  for (const auto& snap : result.ledger_trajectory) {
    hash = fnv1a(hash, snap.iteration);
    hash = fnv1a(hash, snap.ledger.adc_conversions);
    hash = fnv1a(hash, snap.ledger.spin_updates);
  }
  return hash;
}

struct Golden {
  const char* name;
  core::AnnealerKind kind;
  double best_energy;
  std::uint64_t accepted_moves;
  std::uint64_t adc_conversions;
  std::uint64_t trajectory_points;
  std::uint64_t digest;
};

// Captured from the pre-refactor annealers: gset_like_instance(48, 7),
// StandardSetup{iterations = 400, trace = {true, 7}}, seed 11.
constexpr Golden kGoldens[] = {
    {"This Work", core::AnnealerKind::kThisWork, -76.0, 79, 12800, 58,
     0x15c28f7fc643481eull},
    {"This Work (ideal)", core::AnnealerKind::kThisWorkIdeal, -82.0, 85,
     12800, 58, 0x7dd1ae8bbd5ead05ull},
    {"CiM/FPGA", core::AnnealerKind::kCimFpga, -42.0, 301, 307200, 58,
     0xa35ff4123b261bc7ull},
    {"MESA", core::AnnealerKind::kMesa, -88.0, 72, 307200, 0,
     0xc8c347b26d786500ull},
};

TEST(RunDriverRefactor, LegacyAnnealersMatchPreRefactorGoldens) {
  auto graph = problems::gset_like_instance(48, 7);
  const auto instance =
      core::make_maxcut_instance("golden", std::move(graph));

  core::StandardSetup setup;
  setup.iterations = 400;
  setup.trace = {true, 7};

  for (const auto& golden : kGoldens) {
    const auto annealer =
        core::make_annealer(golden.kind, instance.model, setup);
    const auto result = annealer->run(11);
    EXPECT_EQ(result.best_energy, golden.best_energy) << golden.name;
    EXPECT_EQ(result.accepted_moves, golden.accepted_moves) << golden.name;
    EXPECT_EQ(result.ledger.adc_conversions, golden.adc_conversions)
        << golden.name;
    EXPECT_EQ(result.trajectory.size(), golden.trajectory_points)
        << golden.name;
    EXPECT_EQ(result_digest(result), golden.digest)
        << golden.name
        << ": the shared run driver changed legacy annealer behavior -- "
           "fix the driver, do not re-pin this digest";
  }
}

TEST(RunDriver, WarmStartCopiesSpinsAndPinsAncilla) {
  // A fielded model folds into an ancilla, exercising the re-pin path.
  const auto qubo = problems::random_qubo(12, 4.0, 5);
  const auto problem = problems::make_qubo_problem("driver-warm", qubo);
  const auto& model = *problem.model;
  ASSERT_TRUE(model.has_ancilla());

  ising::SpinVector warm(model.num_spins(), ising::Spin{-1});
  warm[2] = ising::Spin{1};
  warm[model.ancilla_index()] = ising::Spin{-1};  // deliberately wrong

  const core::RunDriver driver(model, 9, core::CancellationToken::none(),
                               {0, core::TraceOptions{}, &warm});
  EXPECT_EQ(driver.spins[2], ising::Spin{1});
  EXPECT_EQ(driver.spins[0], ising::Spin{-1});
  // The driver re-pins the ancilla regardless of the warm vector.
  EXPECT_EQ(driver.spins[model.ancilla_index()], ising::Spin{1});
  auto pinned = warm;
  pinned[model.ancilla_index()] = ising::Spin{1};
  EXPECT_EQ(driver.energy, model.energy(pinned));
  EXPECT_EQ(driver.result.best_energy, driver.energy);
}

TEST(RunDriver, WarmStartSizeMismatchIsContractError) {
  const auto problem = problems::make_maxcut_problem(
      "driver-bad-warm",
      problems::random_graph(10, 3.0, problems::WeightScheme::kUnit, 4), 8, 4);
  core::StandardSetup setup;
  setup.iterations = 10;
  setup.initial_spins = std::make_shared<const ising::SpinVector>(
      ising::SpinVector(3, ising::Spin{1}));  // wrong length
  const auto annealer = core::make_annealer(core::AnnealerKind::kThisWorkIdeal,
                                            problem.model, setup);
  EXPECT_THROW(annealer->run(1), contract_error);
}

// ---------------------------------------------------------------------------
// Simulated-bifurcation backend
// ---------------------------------------------------------------------------

std::shared_ptr<const ising::IsingModel> sb_model(std::uint64_t seed,
                                                  std::size_t n = 14) {
  const auto graph =
      problems::random_graph(n, 4.0, problems::WeightScheme::kUnit, seed);
  return std::make_shared<const ising::IsingModel>(
      problems::maxcut_to_ising(graph));
}

TEST(BifurcationAnnealer, FindsExactOptimumOnSmallInstances) {
  const auto model = sb_model(1);
  const auto [spins, optimum] = model->brute_force_ground_state();

  core::SbConfig config;
  config.steps = 500;
  config.engine = core::SbConfig::EngineKind::kIdeal;
  const core::BifurcationAnnealer annealer(model, config);
  int hits = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto result = annealer.run(seed);
    EXPECT_GE(result.best_energy, optimum - 1e-9);
    hits += std::fabs(result.best_energy - optimum) < 1e-9;
  }
  EXPECT_GE(hits, 8);  // near-certain on a 14-spin instance
}

TEST(BifurcationAnnealer, BothVariantsDeterministicPerSeed) {
  const auto model = sb_model(2, 24);
  for (const auto variant :
       {core::SbVariant::kBallistic, core::SbVariant::kDiscrete}) {
    core::SbConfig config;
    config.steps = 150;
    config.variant = variant;
    config.trace = {true, 11};
    const core::BifurcationAnnealer annealer(model, config);
    const auto a = annealer.run(7);
    const auto b = annealer.run(7);
    EXPECT_EQ(a.best_energy, b.best_energy);
    EXPECT_EQ(a.final_energy, b.final_energy);
    EXPECT_EQ(a.final_spins, b.final_spins);
    EXPECT_EQ(a.accepted_moves, b.accepted_moves);
    EXPECT_EQ(a.ledger.adc_conversions, b.ledger.adc_conversions);
    EXPECT_EQ(a.trajectory.size(), b.trajectory.size());
    // Different seeds diverge (noise + momenta + dither all re-key).
    const auto c = annealer.run(8);
    EXPECT_NE(a.final_spins, c.final_spins);
  }
}

TEST(BifurcationAnnealer, CampaignIsThreadCountInvariant) {
  const auto problem = problems::make_maxcut_problem(
      "sb-threads",
      problems::random_graph(40, 5.0, problems::WeightScheme::kUnit, 6), 16,
      6);
  core::StandardSetup setup;
  setup.iterations = 120;
  const auto annealer = core::make_annealer(core::AnnealerKind::kSbBallistic,
                                            problem.model, setup);

  core::CampaignConfig serial;
  serial.runs = 6;
  serial.threads = 1;
  core::CampaignConfig parallel = serial;
  parallel.threads = 4;

  const auto a = core::run_campaign(*annealer, problem, serial);
  const auto b = core::run_campaign(*annealer, problem, parallel);
  ASSERT_EQ(a.per_run.size(), b.per_run.size());
  for (std::size_t run = 0; run < a.per_run.size(); ++run) {
    EXPECT_EQ(a.per_run[run].seed, b.per_run[run].seed);
    EXPECT_EQ(a.per_run[run].best_energy, b.per_run[run].best_energy);
    EXPECT_EQ(a.per_run[run].best_spins, b.per_run[run].best_spins);
  }
  EXPECT_EQ(a.total_ledger.adc_conversions, b.total_ledger.adc_conversions);
}

TEST(BifurcationAnnealer, NoisyResultsArePinnedPerSeedAndTileShape) {
  const auto model = sb_model(3, 32);
  core::SbConfig config;
  config.steps = 60;
  config.variation = {0.03, 0.02, 0.0, 0.0};  // read noise on

  // Same (seed, tile shape) twice: bit-identical.
  const core::BifurcationAnnealer monolithic(model, config);
  EXPECT_EQ(monolithic.run(5).final_spins, monolithic.run(5).final_spins);

  // A different tile grid performs different conversions, so the
  // counter-keyed noise deliberately differs.
  auto tiled_config = config;
  tiled_config.tiles = crossbar::TileShape{16, 16};
  const core::BifurcationAnnealer tiled(model, tiled_config);
  const auto a = monolithic.run(5);
  const auto c = tiled.run(5);
  EXPECT_EQ(tiled.run(5).final_spins, c.final_spins);
  EXPECT_NE(a.ledger.adc_conversions, c.ledger.adc_conversions);
}

TEST(BifurcationAnnealer, WarmStartBiasesTheRun) {
  const auto problem = problems::make_maxcut_problem(
      "sb-warm",
      problems::gset_like_instance(60, 9), 24, 9);
  const auto warm = problem.warm_start();
  ASSERT_EQ(warm.size(), problem.model->num_spins());
  const double warm_energy = problem.model->energy(warm);

  core::SbConfig config;
  config.steps = 80;
  config.engine = core::SbConfig::EngineKind::kIdeal;
  config.initial_spins = std::make_shared<const ising::SpinVector>(warm);
  const core::BifurcationAnnealer annealer(problem.model, config);
  const auto result = annealer.run(3);
  // The warm configuration is the starting incumbent: SB can only improve.
  EXPECT_LE(result.best_energy, warm_energy);
  // And the warm-started run is still deterministic.
  EXPECT_EQ(annealer.run(3).final_spins, result.final_spins);
}

TEST(BifurcationAnnealer, ExpiredDeadlineTripsCooperativePoll) {
  const auto model = sb_model(4, 20);
  core::SbConfig config;
  config.steps = 50;
  config.engine = core::SbConfig::EngineKind::kIdeal;
  const core::BifurcationAnnealer annealer(model, config);

  core::CancellationToken token;
  token.set_run_deadline(core::CancellationToken::Clock::now() -
                         std::chrono::milliseconds(1));
  // The amortized poll fires at step 0, so a pre-expired deadline trips
  // before any dynamics run.
  EXPECT_THROW(annealer.run(1, token), core::run_timeout_error);
}

TEST(BifurcationAnnealer, JournalResumeIsBitIdentical) {
  const auto problem = problems::make_maxcut_problem(
      "sb-journal",
      problems::random_graph(32, 5.0, problems::WeightScheme::kUnit, 8), 16,
      8);
  core::StandardSetup setup;
  setup.iterations = 100;
  const auto annealer = core::make_annealer(core::AnnealerKind::kSbDiscrete,
                                            problem.model, setup);

  const std::string path = testing::TempDir() + "/fecim_sb.journal";
  std::remove(path.c_str());

  core::CampaignConfig config;
  config.runs = 5;
  config.journal_path = path;
  const auto first = core::run_campaign(*annealer, problem, config);

  // Truncate the journal to simulate a kill after three runs, then resume.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 4u);
  {
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < 4; ++i) out << lines[i] << "\n";
  }
  auto resume = config;
  resume.resume = true;
  const auto resumed = core::run_campaign(*annealer, problem, resume);

  ASSERT_EQ(first.per_run.size(), resumed.per_run.size());
  for (std::size_t run = 0; run < first.per_run.size(); ++run) {
    EXPECT_EQ(first.per_run[run].seed, resumed.per_run[run].seed);
    EXPECT_EQ(first.per_run[run].best_energy,
              resumed.per_run[run].best_energy);
    EXPECT_EQ(first.per_run[run].best_spins, resumed.per_run[run].best_spins);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Constructive warm starts
// ---------------------------------------------------------------------------

TEST(WarmStart, GreedyMaxcutBeatsTheExpectedRandomCut) {
  const auto graph = problems::gset_like_instance(80, 13);
  const auto spins = problems::greedy_maxcut_spins(graph);
  ASSERT_EQ(spins.size(), graph.num_vertices());
  EXPECT_TRUE(ising::is_valid_spins(spins));
  // A random bipartition cuts half the weight in expectation; the greedy
  // construction is strictly better by the derandomized argument.
  EXPECT_GT(problems::cut_value(graph, spins), 0.5 * graph.total_weight());
  // Deterministic: same instance, same configuration.
  EXPECT_EQ(problems::greedy_maxcut_spins(graph), spins);
}

TEST(WarmStart, DsaturColoringIsOneHotAndDecodes) {
  const auto graph =
      problems::random_graph(16, 2.5, problems::WeightScheme::kUnit, 2);
  const auto problem = problems::make_coloring_problem("ws-color", graph);
  ASSERT_TRUE(problem.warm_start != nullptr);
  const auto spins = problem.warm_start();
  ASSERT_EQ(spins.size(), problem.model->num_spins());
  EXPECT_EQ(spins.back(), ising::Spin{1});  // ancilla pinned

  // Exactly one assigned bit per vertex group (valid one-hot assignment;
  // x = 1 is spin -1 in the project's QUBO convention).
  const std::size_t k = (spins.size() - 1) / graph.num_vertices();
  for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
    int hot = 0;
    for (std::size_t c = 0; c < k; ++c)
      hot += spins[v * k + c] == ising::Spin{-1};
    EXPECT_EQ(hot, 1) << "vertex " << v;
  }
  // DSatur within the greedy palette is conflict-free on this instance, so
  // the decoded warm start is already feasible.
  const auto solution = problem.decode(spins);
  EXPECT_TRUE(solution.feasible);
  EXPECT_EQ(solution.violations, 0.0);
}

TEST(WarmStart, FactoryThreadsInitialSpinsToEveryKind) {
  const auto problem = problems::make_maxcut_problem(
      "ws-factory",
      problems::random_graph(20, 4.0, problems::WeightScheme::kUnit, 5), 8,
      5);
  const auto warm = std::make_shared<const ising::SpinVector>(
      problem.warm_start());
  const double warm_energy = problem.model->energy(*warm);

  core::StandardSetup setup;
  setup.iterations = 1;
  setup.initial_spins = warm;
  const core::AnnealerKind kinds[] = {
      core::AnnealerKind::kThisWorkIdeal, core::AnnealerKind::kCimFpga,
      core::AnnealerKind::kMesa, core::AnnealerKind::kSbBallistic,
      core::AnnealerKind::kSbDiscrete};
  for (const auto kind : kinds) {
    const auto annealer = core::make_annealer(kind, problem.model, setup);
    const auto result = annealer->run(2);
    // One iteration from the warm incumbent can only hold or improve it.
    EXPECT_LE(result.best_energy, warm_energy)
        << core::annealer_kind_name(kind);
  }
}

}  // namespace
