// k-bit sign-magnitude quantization of J.
#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "crossbar/bit_slicing.hpp"
#include "util/rng.hpp"

namespace {

using fecim::crossbar::QuantizedCouplings;
using fecim::linalg::CsrMatrix;

CsrMatrix random_symmetric(std::size_t n, bool negatives,
                           fecim::util::Rng& rng) {
  CsrMatrix::Builder builder(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.4)) {
        const double lo = negatives ? -1.0 : 0.1;
        builder.add_symmetric(i, j, rng.uniform(lo, 1.0));
      }
  return builder.build();
}

TEST(BitSlicing, ExactForUniformMagnitudes) {
  // Unit-weight Max-Cut J (all entries +-0.5): one level, zero error.
  CsrMatrix::Builder builder(4, 4);
  builder.add_symmetric(0, 1, 0.5);
  builder.add_symmetric(2, 3, -0.5);
  const auto j = builder.build();
  const QuantizedCouplings quantized(j, 8);
  EXPECT_DOUBLE_EQ(quantized.max_abs_error(j), 0.0);
  EXPECT_TRUE(quantized.has_negative());
  EXPECT_EQ(quantized.nonzeros(), 4u);  // both triangles stored
}

class QuantizationErrorTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantizationErrorTest, ErrorBoundedByHalfScale) {
  const int bits = GetParam();
  fecim::util::Rng rng(bits);
  const auto j = random_symmetric(30, true, rng);
  const QuantizedCouplings quantized(j, bits);
  // Rounding to the nearest level: error <= scale / 2.
  EXPECT_LE(quantized.max_abs_error(j), quantized.scale() / 2.0 + 1e-12);
  // And the scale halves (roughly) per extra bit.
  EXPECT_NEAR(quantized.scale(),
              j.max_abs_value() / ((1u << bits) - 1), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizationErrorTest,
                         ::testing::Values(2, 4, 6, 8, 10, 12));

TEST(BitSlicing, DequantizeRoundTripsSymmetry) {
  fecim::util::Rng rng(9);
  const auto j = random_symmetric(20, true, rng);
  const QuantizedCouplings quantized(j, 8);
  const auto back = quantized.dequantize();
  EXPECT_TRUE(back.is_symmetric(1e-12));
  EXPECT_EQ(back.rows(), 20u);
}

TEST(BitSlicing, PositiveOnlyMatrixHasNoNegativePlane) {
  fecim::util::Rng rng(10);
  const auto j = random_symmetric(15, false, rng);
  const QuantizedCouplings quantized(j, 8);
  EXPECT_FALSE(quantized.has_negative());
}

TEST(BitSlicing, MagnitudesWithinRange) {
  fecim::util::Rng rng(11);
  const auto j = random_symmetric(25, true, rng);
  const QuantizedCouplings quantized(j, 6);
  for (std::size_t c = 0; c < 25; ++c) {
    for (const auto v : quantized.column_values(c)) {
      EXPECT_LE(static_cast<std::uint32_t>(std::abs(v)),
                quantized.max_magnitude());
      EXPECT_NE(v, 0);  // zero-rounded entries must be dropped
    }
  }
}

TEST(BitSlicing, TinyValuesRoundToZeroAndAreDropped) {
  CsrMatrix::Builder builder(3, 3);
  builder.add_symmetric(0, 1, 1.0);
  builder.add_symmetric(1, 2, 1e-4);  // far below 1 LSB at 4 bits
  const auto j = builder.build();
  const QuantizedCouplings quantized(j, 4);
  EXPECT_EQ(quantized.nonzeros(), 2u);  // only the (0,1)/(1,0) pair survives
}

TEST(BitSlicing, ColumnViewMatchesMatrix) {
  fecim::util::Rng rng(13);
  const auto j = random_symmetric(12, true, rng);
  const QuantizedCouplings quantized(j, 8);
  const auto dequantized = quantized.dequantize();
  for (std::size_t c = 0; c < 12; ++c) {
    const auto rows = quantized.column_rows(c);
    const auto values = quantized.column_values(c);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      EXPECT_NEAR(static_cast<double>(values[k]) * quantized.scale(),
                  dequantized.at(c, rows[k]), 1e-12);
    }
  }
}

TEST(BitSlicing, RejectsAsymmetricInput) {
  CsrMatrix::Builder builder(2, 2);
  builder.add(0, 1, 1.0);
  EXPECT_THROW(QuantizedCouplings(builder.build(), 8),
               fecim::contract_error);
}

}  // namespace
