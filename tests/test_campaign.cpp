// Problem-agnostic campaign layer: run_campaign over every COP family,
// decode/feasibility aggregation, sense-aware success, and the
// replica-parallel determinism contract (threads=1 vs threads=N produce
// bit-identical per-run records at fixed seeds).
#include <gtest/gtest.h>

#include <cmath>

#include "core/annealer_factory.hpp"
#include "core/runner.hpp"
#include "problems/generators.hpp"
#include "problems/instances.hpp"
#include "problems/tsp.hpp"

namespace {

using namespace fecim;

std::unique_ptr<core::Annealer> standard_annealer(
    const core::ProblemInstance& problem, std::size_t iterations,
    double gain = 16.0) {
  core::StandardSetup setup;
  setup.iterations = iterations;
  setup.acceptance_gain = gain;
  return core::make_annealer(core::AnnealerKind::kThisWork, problem.model,
                             setup);
}

/// Family-independent invariants every campaign result satisfies.
void check_campaign_shape(const core::ProblemInstance& problem,
                          const core::CampaignResult& result,
                          std::size_t runs) {
  EXPECT_EQ(result.runs, runs);
  EXPECT_EQ(result.per_run.size(), runs);
  EXPECT_EQ(result.violations.count(), runs);
  EXPECT_GE(result.feasible_rate, 0.0);
  EXPECT_LE(result.feasible_rate, 1.0);
  EXPECT_LE(result.success_rate, result.feasible_rate);
  // objective aggregates feasible runs only.
  EXPECT_DOUBLE_EQ(static_cast<double>(result.objective.count()),
                   result.feasible_rate * static_cast<double>(runs));
  std::size_t feasible = 0;
  for (const auto& record : result.per_run) {
    feasible += record.solution.feasible;
    EXPECT_EQ(record.solution.feasible, record.solution.violations == 0.0);
    // The decode hook is pure: re-decoding the stored spins reproduces the
    // recorded solution.
    const auto redecoded = problem.decode(record.best_spins);
    EXPECT_DOUBLE_EQ(redecoded.objective, record.solution.objective);
    EXPECT_EQ(redecoded.feasible, record.solution.feasible);
    EXPECT_DOUBLE_EQ(redecoded.violations, record.solution.violations);
  }
  EXPECT_EQ(result.objective.count(), feasible);
  if (feasible > 0) {
    ASSERT_LT(result.best_run, runs);
    EXPECT_TRUE(result.per_run[result.best_run].solution.feasible);
    EXPECT_DOUBLE_EQ(result.per_run[result.best_run].solution.objective,
                     result.best_objective(problem.sense));
  } else {
    EXPECT_EQ(result.best_run, runs);
  }
}

TEST(Campaign, MaxcutFamily) {
  auto problem = problems::make_maxcut_problem(
      "maxcut-32",
      problems::random_graph(32, 5.0, problems::WeightScheme::kUnit, 3), 32,
      3);
  EXPECT_EQ(problem.family, "maxcut");
  EXPECT_EQ(problem.sense, core::ObjectiveSense::kMaximize);
  const auto annealer = standard_annealer(problem, 500);
  core::CampaignConfig config;
  config.runs = 6;
  const auto result = core::run_campaign(*annealer, problem, config);
  check_campaign_shape(problem, result, 6);
  EXPECT_DOUBLE_EQ(result.feasible_rate, 1.0);
  EXPECT_GT(result.objective.mean(), 0.0);
  EXPECT_LE(result.normalized.max(), 1.0 + 1e-9);
}

TEST(Campaign, ColoringFamily) {
  auto problem = problems::make_coloring_problem(
      "coloring-10",
      problems::random_graph(10, 2.4, problems::WeightScheme::kUnit, 8), 3,
      2.0);
  EXPECT_EQ(problem.family, "coloring");
  EXPECT_EQ(problem.sense, core::ObjectiveSense::kMinimize);
  EXPECT_DOUBLE_EQ(problem.reference_objective, 3.0);
  const auto annealer = standard_annealer(problem, 8000, 4.0);
  core::CampaignConfig config;
  config.runs = 6;
  const auto result = core::run_campaign(*annealer, problem, config);
  check_campaign_shape(problem, result, 6);
  // At this size a valid 3-coloring is reliably found by at least one run.
  EXPECT_GT(result.feasible_rate, 0.0);
  // Feasible colorings use at most the palette; success == feasibility.
  EXPECT_LE(result.objective.max(), 3.0);
  EXPECT_DOUBLE_EQ(result.success_rate, result.feasible_rate);
}

TEST(Campaign, KnapsackFamily) {
  const problems::KnapsackInstance instance{
      {{10, 5}, {7, 4}, {4, 3}, {6, 5}}, 9};
  auto problem = problems::make_knapsack_problem("knapsack-4", instance);
  EXPECT_EQ(problem.family, "knapsack");
  EXPECT_EQ(problem.sense, core::ObjectiveSense::kMaximize);
  EXPECT_GT(problem.reference_objective, 0.0);  // DP optimum
  const auto annealer = standard_annealer(problem, 6000, 4.0);
  core::CampaignConfig config;
  config.runs = 6;
  const auto result = core::run_campaign(*annealer, problem, config);
  check_campaign_shape(problem, result, 6);
  EXPECT_GT(result.feasible_rate, 0.0);
  // No feasible packing can beat the DP optimum.
  EXPECT_LE(result.objective.max(), problem.reference_objective + 1e-9);
}

TEST(Campaign, PartitionFamily) {
  auto problem = problems::make_partition_problem(
      "partition-9", {7, 5, 4, 3, 3, 2, 2, 1, 1});
  EXPECT_EQ(problem.family, "partition");
  EXPECT_EQ(problem.sense, core::ObjectiveSense::kMinimize);
  const auto annealer = standard_annealer(problem, 2000);
  core::CampaignConfig config;
  config.runs = 6;
  const auto result = core::run_campaign(*annealer, problem, config);
  check_campaign_shape(problem, result, 6);
  EXPECT_DOUBLE_EQ(result.feasible_rate, 1.0);
  EXPECT_LE(result.best_objective(problem.sense), 4.0);  // near-perfect split
}

TEST(Campaign, TspFamily) {
  auto problem = problems::make_tsp_problem("tsp-4",
                                            problems::random_tsp(4, 2));
  EXPECT_EQ(problem.family, "tsp");
  EXPECT_EQ(problem.sense, core::ObjectiveSense::kMinimize);
  EXPECT_GT(problem.reference_objective, 0.0);
  const auto annealer = standard_annealer(problem, 8000, 4.0);
  core::CampaignConfig config;
  config.runs = 6;
  const auto result = core::run_campaign(*annealer, problem, config);
  check_campaign_shape(problem, result, 6);
  EXPECT_GT(result.feasible_rate, 0.0);
  // A valid tour on 4 cities is at worst the heuristic times a small factor.
  EXPECT_LE(result.best_objective(problem.sense),
            2.0 * problem.reference_objective + 1e-9);
}

TEST(Campaign, QuboFamily) {
  auto problem = problems::make_qubo_problem(
      "qubo-24", problems::random_qubo(24, 5.0, 9), 16, 9);
  EXPECT_EQ(problem.family, "qubo");
  EXPECT_EQ(problem.sense, core::ObjectiveSense::kMinimize);
  const auto annealer = standard_annealer(problem, 1500);
  core::CampaignConfig config;
  config.runs = 6;
  const auto result = core::run_campaign(*annealer, problem, config);
  check_campaign_shape(problem, result, 6);
  EXPECT_DOUBLE_EQ(result.feasible_rate, 1.0);  // unconstrained family
  // The 1-opt multi-restart reference bounds any annealed minimum from
  // below only at the true optimum; what must always hold is that the
  // annealer's best cannot beat the brute-force optimum.  At n=24 brute
  // force is too big, so check against the reference with slack instead:
  // a healthy campaign lands within 2x of it.
  EXPECT_LT(result.best_objective(problem.sense), 0.0);
}

TEST(Campaign, SenseAwareSuccess) {
  core::ProblemInstance maximize;
  maximize.reference_objective = 100.0;
  maximize.sense = core::ObjectiveSense::kMaximize;
  EXPECT_TRUE(maximize.success({95.0, true, 0.0}, 0.9));
  EXPECT_FALSE(maximize.success({85.0, true, 0.0}, 0.9));
  EXPECT_FALSE(maximize.success({95.0, false, 1.0}, 0.9));  // infeasible

  core::ProblemInstance minimize;
  minimize.reference_objective = 100.0;
  minimize.sense = core::ObjectiveSense::kMinimize;
  EXPECT_TRUE(minimize.success({105.0, true, 0.0}, 0.9));   // within 10 %
  EXPECT_FALSE(minimize.success({115.0, true, 0.0}, 0.9));  // beyond 10 %
  EXPECT_TRUE(minimize.success({50.0, true, 0.0}, 0.9));    // beats reference

  core::ProblemInstance exact = minimize;
  exact.reference_objective = 0.0;  // zero reference demands the optimum
  EXPECT_TRUE(exact.success({0.0, true, 0.0}, 0.9));
  EXPECT_FALSE(exact.success({1.0, true, 0.0}, 0.9));
}

TEST(Campaign, SuccessHandlesNegativeReferences) {
  // Generic QUBO minimization routinely has a negative optimum; "within
  // 10 %" must widen away from the reference, not tighten past it (the
  // sign-naive (2 - t) * reference form demanded objective <= -4.4 here).
  core::ProblemInstance minimize;
  minimize.reference_objective = -4.0;
  minimize.sense = core::ObjectiveSense::kMinimize;
  EXPECT_TRUE(minimize.success({-4.0, true, 0.0}, 0.9));   // at reference
  EXPECT_TRUE(minimize.success({-3.7, true, 0.0}, 0.9));   // within 10 %
  EXPECT_FALSE(minimize.success({-3.0, true, 0.0}, 0.9));  // beyond 10 %
  EXPECT_TRUE(minimize.success({-5.0, true, 0.0}, 0.9));   // beats reference

  core::ProblemInstance maximize;
  maximize.reference_objective = -10.0;
  maximize.sense = core::ObjectiveSense::kMaximize;
  EXPECT_TRUE(maximize.success({-10.5, true, 0.0}, 0.9));   // within 10 %
  EXPECT_FALSE(maximize.success({-11.5, true, 0.0}, 0.9));  // beyond 10 %
  EXPECT_TRUE(maximize.success({-9.0, true, 0.0}, 0.9));    // beats reference
}

TEST(Campaign, AllRunsInfeasibleLeavesSentinel) {
  auto problem = problems::make_partition_problem("infeasible", {3, 2, 1});
  // Override the decode hook: every run reports infeasible.
  problem.decode = [](std::span<const ising::Spin>) {
    core::DecodedSolution solution;
    solution.feasible = false;
    solution.violations = 1.0;
    solution.objective = 42.0;
    return solution;
  };
  const auto annealer = standard_annealer(problem, 50);
  core::CampaignConfig config;
  config.runs = 3;
  const auto result = core::run_campaign(*annealer, problem, config);
  EXPECT_EQ(result.best_run, 3u);  // "none feasible" sentinel
  EXPECT_TRUE(result.objective.empty());
  EXPECT_DOUBLE_EQ(result.feasible_rate, 0.0);
  EXPECT_DOUBLE_EQ(result.success_rate, 0.0);
  // NaN, not 0: a zero "best imbalance" would read as a perfect split.
  EXPECT_TRUE(std::isnan(result.best_objective(problem.sense)));
  EXPECT_DOUBLE_EQ(result.violations.mean(), 1.0);

  // Consumer contract for the sentinel: best_run == per_run.size(), so the
  // guard every consumer uses (examples/knapsack.cpp,
  // examples/graph_coloring.cpp, fecim_solve's NaN CSV path) keeps
  // per_run[best_run] from ever being indexed.  A sentinel inside
  // [0, runs) would silently crown an infeasible run instead.
  ASSERT_EQ(result.best_run, result.per_run.size());
  EXPECT_FALSE(result.best_run < result.per_run.size());  // the guard form
  for (const auto& record : result.per_run)
    EXPECT_FALSE(record.solution.feasible);
}

/// Replica-parallel determinism on the *noisy* analog path: every run binds
/// its own counter-keyed noise stream, so the per-run records are
/// bit-identical for any thread count at fixed seeds.
TEST(Campaign, NoisyCampaignIsThreadCountInvariant) {
  auto problem = problems::make_maxcut_problem(
      "determinism-48",
      problems::random_graph(48, 6.0, problems::WeightScheme::kUnit, 4), 24,
      4);
  core::StandardSetup setup;
  setup.iterations = 300;
  // Full stochastic model: programming spread + C2C read noise + ADC noise.
  setup.variation = {0.03, 0.05, 0.0, 0.0};
  const auto annealer = core::make_annealer(core::AnnealerKind::kThisWork,
                                            problem.model, setup);

  core::CampaignConfig serial;
  serial.runs = 6;
  serial.threads = 1;
  core::CampaignConfig parallel = serial;
  parallel.threads = 4;

  const auto a = core::run_campaign(*annealer, problem, serial);
  const auto b = core::run_campaign(*annealer, problem, parallel);

  ASSERT_EQ(a.per_run.size(), b.per_run.size());
  for (std::size_t run = 0; run < a.per_run.size(); ++run) {
    const auto& ra = a.per_run[run];
    const auto& rb = b.per_run[run];
    EXPECT_EQ(ra.seed, rb.seed);
    EXPECT_EQ(ra.best_energy, rb.best_energy);  // bit-identical, not "near"
    EXPECT_EQ(ra.solution.objective, rb.solution.objective);
    EXPECT_EQ(ra.solution.feasible, rb.solution.feasible);
    EXPECT_EQ(ra.best_spins, rb.best_spins);
  }
  EXPECT_EQ(a.best_run, b.best_run);
  EXPECT_DOUBLE_EQ(a.objective.mean(), b.objective.mean());
  EXPECT_DOUBLE_EQ(a.energy.mean(), b.energy.mean());
  EXPECT_EQ(a.total_ledger.adc_conversions, b.total_ledger.adc_conversions);
}

}  // namespace
