// Peripheral circuit models: SAR ADC, BG DAC, line drivers, MUX, parasitics.
#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "circuit/drivers.hpp"
#include "circuit/parasitics.hpp"
#include "circuit/sar_adc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace fecim::circuit;

TEST(SarAdc, IdealTransferIsMonotoneStaircase) {
  SarAdc adc({8, 1e-6, 0.0});
  std::uint32_t previous = 0;
  for (double i = 0.0; i <= 1e-6; i += 1e-9) {
    const auto code = adc.convert_ideal(i);
    EXPECT_GE(code, previous);
    previous = code;
  }
  EXPECT_EQ(adc.max_code(), 255u);
}

TEST(SarAdc, ClampsOutOfRange) {
  SarAdc adc({8, 1e-6, 0.0});
  EXPECT_EQ(adc.convert_ideal(-1e-7), 0u);
  EXPECT_EQ(adc.convert_ideal(5e-6), 255u);
}

TEST(SarAdc, QuantizationErrorBounded) {
  SarAdc adc({13, 1e-5, 0.0});
  for (double i = 0.0; i < 1e-5; i += 1.7e-8) {
    const auto code = adc.convert_ideal(i);
    EXPECT_NEAR(adc.current_from_code(code), i, adc.lsb_current());
  }
}

TEST(SarAdc, LsbMatchesResolution) {
  SarAdc adc({13, 8.192e-6, 0.0});
  EXPECT_NEAR(adc.lsb_current(), 8.192e-6 / 8192.0, 1e-15);
}

TEST(SarAdc, NoiseIsUnbiasedWithRequestedSigma) {
  SarAdc adc({13, 1e-5, 0.5});
  const fecim::util::NoiseStream stream(3, fecim::util::stream_site::kAdcNoise);
  const double input = 5e-6;
  fecim::util::RunningStats stats;
  for (std::uint64_t i = 0; i < 20000; ++i)
    stats.add(adc.current_from_code(adc.convert(input, stream.normal(i))));
  EXPECT_NEAR(stats.mean(), input, adc.lsb_current());
  // Total sigma ~ sqrt(noise^2 + quantization^2) LSB ~ 0.58 LSB.
  EXPECT_NEAR(stats.stddev(), 0.58 * adc.lsb_current(),
              0.15 * adc.lsb_current());
}

TEST(SarAdc, RejectsInvalidConfig) {
  EXPECT_THROW(SarAdc({0, 1e-6, 0.0}), fecim::contract_error);
  EXPECT_THROW(SarAdc({8, -1.0, 0.0}), fecim::contract_error);
}

TEST(BgDac, QuantizesToGridAndClamps) {
  const BgDac dac;  // 0..0.7 V, 10 mV steps
  EXPECT_NEAR(dac.quantize(0.333), 0.33, 1e-12);
  EXPECT_NEAR(dac.quantize(0.336), 0.34, 1e-12);
  EXPECT_DOUBLE_EQ(dac.quantize(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(dac.quantize(1.2), 0.7);
}

TEST(BgDac, LevelCountMatchesPaper) {
  const BgDac dac;
  EXPECT_EQ(dac.num_levels(), 71u);  // 0.00, 0.01, ..., 0.70
  EXPECT_DOUBLE_EQ(dac.level_voltage(0), 0.0);
  EXPECT_NEAR(dac.level_voltage(70), 0.7, 1e-12);
}

TEST(LineDriver, PolarityGating) {
  const LineDriver driver;
  EXPECT_DOUBLE_EQ(driver.drive(+1, +1), 1.0);
  EXPECT_DOUBLE_EQ(driver.drive(-1, +1), 0.0);
  EXPECT_DOUBLE_EQ(driver.drive(0, +1), 0.0);
  EXPECT_DOUBLE_EQ(driver.drive(-1, -1), 1.0);
}

TEST(ColumnMux, Grouping) {
  const ColumnMux mux;  // 8:1
  EXPECT_EQ(mux.group_of_column(0), 0u);
  EXPECT_EQ(mux.group_of_column(7), 0u);
  EXPECT_EQ(mux.group_of_column(8), 1u);
  EXPECT_EQ(mux.num_groups(17), 3u);
}

TEST(Parasitics, EstimateScalesWithLineLength) {
  const auto short_line = estimate_line_parasitics(64, 1e-6, 1.0);
  const auto long_line = estimate_line_parasitics(1024, 1e-6, 1.0);
  EXPECT_NEAR(long_line.line_resistance / short_line.line_resistance, 16.0,
              1e-9);
  EXPECT_GT(long_line.elmore_delay, short_line.elmore_delay * 200.0);
  // More cells -> more IR drop -> lower attenuation factor.
  EXPECT_LT(long_line.ir_attenuation, short_line.ir_attenuation);
}

TEST(Parasitics, AttenuationInUnitRange) {
  for (const std::size_t cells : {8u, 64u, 512u, 3000u}) {
    const double att = ir_attenuation_factor(cells, 1.0, 1e-5, 1.0);
    EXPECT_GT(att, 0.0);
    EXPECT_LE(att, 1.0);
  }
}

TEST(Parasitics, ZeroWireResistanceIsLossless) {
  EXPECT_DOUBLE_EQ(ir_attenuation_factor(100, 0.0, 1e-5, 1.0), 1.0);
}

TEST(Parasitics, AttenuationWorsensWithCurrentDensity) {
  const double light = ir_attenuation_factor(256, 1.0, 1e-7, 1.0);
  const double heavy = ir_attenuation_factor(256, 1.0, 1e-4, 1.0);
  EXPECT_GT(light, heavy);
  EXPECT_GT(light, 0.99);  // light loading ~ lossless
}

}  // namespace
