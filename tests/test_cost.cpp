// Cost ledger and energy/latency translation.
#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost_model.hpp"

namespace {

using fecim::cost::ComponentCosts;
using fecim::cost::compute_cost;
using fecim::cost::ExpUnit;
using fecim::crossbar::CostLedger;
using fecim::crossbar::EngineTrace;

TEST(Ledger, MergeSumsAllCounters) {
  CostLedger a;
  a.iterations = 10;
  a.adc_conversions = 100;
  a.exp_evaluations = 5;
  CostLedger b;
  b.iterations = 3;
  b.adc_conversions = 7;
  b.spin_updates = 2;
  a.merge(b);
  EXPECT_EQ(a.iterations, 13u);
  EXPECT_EQ(a.adc_conversions, 107u);
  EXPECT_EQ(a.exp_evaluations, 5u);
  EXPECT_EQ(a.spin_updates, 2u);
}

TEST(Ledger, MergeTrace) {
  CostLedger ledger;
  EngineTrace trace;
  trace.adc_conversions = 32;
  trace.mux_slot_cycles = 2;
  trace.row_drives = 100;
  trace.column_drives = 16;
  trace.crossbar_passes = 4;
  merge_trace(ledger, trace);
  merge_trace(ledger, trace);
  EXPECT_EQ(ledger.adc_conversions, 64u);
  EXPECT_EQ(ledger.mux_slot_cycles, 4u);
  EXPECT_EQ(ledger.crossbar_passes, 8u);
}

TEST(CostModel, AdcDominatedEnergy) {
  ComponentCosts costs;
  CostLedger ledger;
  ledger.adc_conversions = 1000;
  const auto breakdown = compute_cost(ledger, costs, ExpUnit::kNone);
  EXPECT_DOUBLE_EQ(breakdown.adc_energy,
                   1000 * costs.adc_energy_per_conversion);
  EXPECT_DOUBLE_EQ(breakdown.total_energy, breakdown.adc_energy);
}

TEST(CostModel, ExpUnitSelection) {
  ComponentCosts costs;
  CostLedger ledger;
  ledger.exp_evaluations = 10;
  const auto none = compute_cost(ledger, costs, ExpUnit::kNone);
  const auto fpga = compute_cost(ledger, costs, ExpUnit::kFpga);
  const auto asic = compute_cost(ledger, costs, ExpUnit::kAsic);
  EXPECT_DOUBLE_EQ(none.exp_energy, 0.0);
  EXPECT_DOUBLE_EQ(fpga.exp_energy, 10 * costs.exp_energy_fpga);
  EXPECT_DOUBLE_EQ(asic.exp_energy, 10 * costs.exp_energy_asic);
  // The FPGA unit costs more energy; the ASIC unit is faster than FPGA.
  EXPECT_GT(fpga.exp_energy, asic.exp_energy);
  EXPECT_GT(fpga.exp_time, asic.exp_time);
}

TEST(CostModel, TimeIsSlotSerialized) {
  ComponentCosts costs;
  CostLedger ledger;
  ledger.mux_slot_cycles = 16;
  ledger.iterations = 1;
  const auto breakdown = compute_cost(ledger, costs, ExpUnit::kNone);
  EXPECT_DOUBLE_EQ(breakdown.adc_time, 16 * costs.adc_time_per_slot);
  EXPECT_DOUBLE_EQ(breakdown.total_time,
                   breakdown.adc_time + costs.digital_time_per_iteration);
}

TEST(CostModel, PaperRatioShape) {
  // One in-situ iteration (t=2, k=8): 32 conversions, 2 slots.
  // One direct-E iteration at n=3000: 48000 conversions, 16 slots, 1 e^x.
  ComponentCosts costs;
  CostLedger ours;
  ours.iterations = 1;
  ours.adc_conversions = 32;
  ours.mux_slot_cycles = 2;
  ours.row_drives = 2 * 2998;
  ours.bg_dac_updates = 1;
  CostLedger baseline;
  baseline.iterations = 1;
  baseline.adc_conversions = 48000;
  baseline.mux_slot_cycles = 16;
  baseline.row_drives = 2 * 3000;
  baseline.exp_evaluations = 1;

  const auto ours_cost = compute_cost(ours, costs, ExpUnit::kNone);
  const auto fpga = compute_cost(baseline, costs, ExpUnit::kFpga);
  const auto asic = compute_cost(baseline, costs, ExpUnit::kAsic);

  // Fig. 8(a) at 3000 nodes: ~1716x / ~1503x; we accept the band 1300-2000.
  const double fpga_ratio = fpga.total_energy / ours_cost.total_energy;
  const double asic_ratio = asic.total_energy / ours_cost.total_energy;
  EXPECT_GT(fpga_ratio, 1300.0);
  EXPECT_LT(fpga_ratio, 2000.0);
  EXPECT_GT(asic_ratio, 1300.0);
  EXPECT_LT(asic_ratio, 1600.0);
  EXPECT_GT(fpga_ratio, asic_ratio);

  // Fig. 9(a): ~8x latency.
  const double time_ratio = fpga.total_time / ours_cost.total_time;
  EXPECT_NEAR(time_ratio, 8.1, 0.5);
}

TEST(CostModel, EnergyScalesLinearlyWithIterations) {
  ComponentCosts costs;
  CostLedger one;
  one.iterations = 1;
  one.adc_conversions = 32;
  one.mux_slot_cycles = 2;
  CostLedger thousand;
  thousand.iterations = 1000;
  thousand.adc_conversions = 32000;
  thousand.mux_slot_cycles = 2000;
  const auto a = compute_cost(one, costs, ExpUnit::kNone);
  const auto b = compute_cost(thousand, costs, ExpUnit::kNone);
  EXPECT_NEAR(b.total_energy / a.total_energy, 1000.0, 1e-6);
  EXPECT_NEAR(b.total_time / a.total_time, 1000.0, 1e-6);
}

TEST(CostModel, EmptyLedgerCostsNothing) {
  const auto breakdown =
      compute_cost(CostLedger{}, ComponentCosts{}, ExpUnit::kFpga);
  EXPECT_DOUBLE_EQ(breakdown.total_energy, 0.0);
  EXPECT_DOUBLE_EQ(breakdown.total_time, 0.0);
}

}  // namespace
