// DG FeFET compact model: four-input product semantics, back-gate V_TH
// tuning, on/off behaviour, variation model.
#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "device/dg_fefet.hpp"
#include "device/ekv.hpp"
#include "device/variation.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace fecim::device;

TEST(Ekv, SubthresholdSlopeMatchesParameters) {
  const EkvParams params;
  // Two points one decade apart in the deep subthreshold region.
  const double ss = ekv_subthreshold_swing(params);
  const double i1 = ekv_drain_current(params, 0.2, 1.0, 1.0);
  const double i2 = ekv_drain_current(params, 0.2 + ss, 1.0, 1.0);
  EXPECT_NEAR(i2 / i1, 10.0, 0.5);
}

TEST(Ekv, ZeroVdsGivesZeroCurrent) {
  EXPECT_DOUBLE_EQ(ekv_drain_current(EkvParams{}, 1.0, 0.3, 0.0), 0.0);
}

TEST(Ekv, MonotoneInGateVoltage) {
  const EkvParams params;
  double previous = 0.0;
  for (double vg = -0.5; vg <= 1.5; vg += 0.05) {
    const double i = ekv_drain_current(params, vg, 0.5, 1.0);
    EXPECT_GE(i, previous);
    previous = i;
  }
}

TEST(Ekv, LargeOverdriveDoesNotOverflow) {
  const double i = ekv_drain_current(EkvParams{}, 10.0, 0.0, 1.0);
  EXPECT_TRUE(std::isfinite(i));
  EXPECT_GT(i, 0.0);
}

TEST(DgFefet, FourInputProductZeroCases) {
  // I_SL = x * G * y * z (Fig. 6(a)): any binary zero input or stored '0'
  // kills the current.
  const DgFefetParams params;
  DgFefet stored_one(params, true);
  DgFefet stored_zero(params, false);
  const double vbg = params.vbg_max;

  EXPECT_DOUBLE_EQ(stored_one.isl_current(false, true, vbg), 0.0);   // x = 0
  EXPECT_DOUBLE_EQ(stored_one.isl_current(true, false, vbg), 0.0);   // y = 0
  EXPECT_GT(stored_one.isl_current(true, true, vbg), 0.0);
  // Stored '0': current negligible vs stored '1' (>= 5 decades of margin).
  const double on = stored_one.isl_current(true, true, vbg);
  const double off = stored_zero.isl_current(true, true, vbg);
  EXPECT_LT(off, on * 1e-5);
}

TEST(DgFefet, BackGateIncreasesCurrent) {
  const DgFefetParams params;
  const DgFefet cell(params, true);
  double previous = 0.0;
  for (double vbg = 0.0; vbg <= params.vbg_max + 1e-9; vbg += 0.01) {
    const double i = cell.isl_current(true, true, vbg);
    EXPECT_GT(i, previous);  // strictly increasing (z acts as analog input)
    previous = i;
  }
}

TEST(DgFefet, BackGateCouplingShiftsVth) {
  const DgFefetParams params;
  const DgFefet cell(params, true);
  const double shift = cell.effective_vth(0.0) - cell.effective_vth(1.0);
  EXPECT_NEAR(shift, params.back_gate_coupling, 1e-12);
}

TEST(DgFefet, VthTuningDoesNotDisturbStoredState) {
  // Applying any back-gate bias must not change the stored bit (the BG
  // dielectric is non-ferroelectric).
  DgFefet cell(DgFefetParams{}, true);
  (void)cell.isl_current(true, true, 0.7);
  (void)cell.isl_current(true, true, 0.0);
  EXPECT_TRUE(cell.stored_one());
}

TEST(DgFefet, MemoryWindowPreserved) {
  const DgFefetParams params;
  EXPECT_NEAR(params.vth_high - params.vth_low, 1.0, 1e-9);
}

TEST(DgFefet, OnCurrentMatchesInstanceCurrent) {
  const DgFefetParams params;
  const DgFefet cell(params, true);
  EXPECT_DOUBLE_EQ(DgFefet::on_current(params, 0.5),
                   cell.isl_current(true, true, 0.5));
}

TEST(DgFefet, IdVgCurvesShiftWithBackGate) {
  // Fig. 2(d): the I_D-V_G curve translates along V_G as V_BG moves.
  const DgFefetParams params;
  const DgFefet cell(params, true);
  // Find V_G where current crosses 1 uA for two back-gate biases.
  auto crossing = [&](double vbg) {
    for (double vg = 0.0; vg < 3.0; vg += 0.001)
      if (cell.drain_current(vg, vbg, 1.0) > 1e-6) return vg;
    return 3.0;
  };
  const double shift = crossing(-1.0) - crossing(1.0);
  EXPECT_NEAR(shift, 2.0 * params.back_gate_coupling, 0.01);
}

TEST(Variation, IdealFlagsDetectNoise) {
  VariationParams ideal;
  EXPECT_TRUE(ideal.ideal());
  VariationParams noisy{0.01, 0.0, 0.0, 0.0};
  EXPECT_FALSE(noisy.ideal());
}

TEST(Variation, OffsetsHaveRequestedSpread) {
  const VariationParams params{0.05, 0.0, 0.0, 0.0};
  const CellVariation cells(20000, params, /*seed=*/5);
  fecim::util::RunningStats stats;
  for (std::size_t c = 0; c < cells.size(); ++c) stats.add(cells.vth_offset(c));
  EXPECT_NEAR(stats.mean(), 0.0, 0.002);
  EXPECT_NEAR(stats.stddev(), 0.05, 0.003);
}

TEST(Variation, StuckFaultRatesRespected) {
  const VariationParams params{0.0, 0.0, 0.02, 0.01};
  const CellVariation cells(50000, params, /*seed=*/6);
  std::size_t off = 0;
  std::size_t on = 0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    off += cells.fault(c) == CellFault::kStuckOff;
    on += cells.fault(c) == CellFault::kStuckOn;
  }
  EXPECT_NEAR(off / 50000.0, 0.02, 0.004);
  EXPECT_NEAR(on / 50000.0, 0.01, 0.003);
  EXPECT_EQ(cells.count_faults(), off + on);
}

TEST(Variation, ReadNoiseIsUnbiasedAndClampsAtZero) {
  const fecim::util::NoiseStream stream(7, fecim::util::stream_site::kReadNoise);
  const VariationParams params{0.0, 0.1, 0.0, 0.0};
  fecim::util::RunningStats stats;
  for (std::uint64_t i = 0; i < 50000; ++i) {
    const double noisy = apply_read_noise(1e-6, params, stream, i);
    EXPECT_GE(noisy, 0.0);
    stats.add(noisy);
  }
  EXPECT_NEAR(stats.mean(), 1e-6, 2e-8);
  EXPECT_NEAR(stats.stddev(), 1e-7, 5e-9);
}

TEST(Variation, KeyedDrawsAreSizeAndOrderIndependent) {
  // Cell c's variation state must not depend on how many cells were
  // sampled: growing the array preserves the prefix.
  const VariationParams params{0.05, 0.0, 0.02, 0.01};
  const CellVariation small(100, params, /*seed=*/9);
  const CellVariation large(4096, params, /*seed=*/9);
  for (std::size_t c = 0; c < small.size(); ++c) {
    EXPECT_EQ(small.vth_offset(c), large.vth_offset(c));
    EXPECT_EQ(small.fault(c), large.fault(c));
  }
}

TEST(Variation, RejectsInvalidRates) {
  const VariationParams bad{0.0, 0.0, 0.7, 0.5};  // rates sum > 1
  EXPECT_THROW(CellVariation(10, bad, /*seed=*/8), fecim::contract_error);
}

}  // namespace
