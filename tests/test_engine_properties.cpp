// Parameterized cross-engine property sweeps: the analog engine must agree
// with exact arithmetic within its quantization budget for every weight
// width, and the annealer must behave sanely across budget scales.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "circuit/drivers.hpp"
#include "core/insitu_annealer.hpp"
#include "crossbar/analog_engine.hpp"
#include "problems/generators.hpp"
#include "problems/maxcut.hpp"

namespace {

using namespace fecim;

class BitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitsSweep, AnalogMatchesQuantizedArithmetic) {
  const int bits = GetParam();
  const auto graph = problems::random_graph(
      48, 6.0, problems::WeightScheme::kPlusMinusOne, 7);
  const auto model = problems::maxcut_to_ising(graph);
  const crossbar::QuantizedCouplings quantized(model.couplings(), bits);
  const crossbar::CrossbarMapping mapping(
      48, quantized.has_negative() ? 2 : 1,
      crossbar::MappingConfig{bits, 8, true});
  const auto array = std::make_shared<const crossbar::ProgrammedArray>(
      quantized, mapping, device::DgFefetParams{}, device::VariationParams{},
      7);
  crossbar::AnalogEngineConfig config;
  config.adc.noise_lsb_rms = 0.0;
  config.model_ir_drop = false;
  crossbar::AnalogCrossbarEngine engine(array, config);

  // Reference: exact arithmetic on the *dequantized* couplings.
  const ising::IsingModel quantized_model(quantized.dequantize());
  util::Rng rng(9);
  const double lsb_in_vmv =
      quantized.scale() * engine.adc().lsb_current() /
      array->on_current(0.7);
  const double max_level = static_cast<double>((1u << bits) - 1);

  for (int trial = 0; trial < 30; ++trial) {
    const auto spins = ising::random_spins(48, rng);
    const auto flips = ising::random_flip_set(48, 2, rng);
    const auto result = engine.evaluate(spins, flips, {1.0, 0.7});
    const double expected =
        quantized_model.incremental_vmv(spins, flips);
    // Mid-tread ADC: <= 0.5 LSB per sensed column, amplified by shift-add.
    const double budget = 2.0 * 2.0 * max_level * lsb_in_vmv;
    EXPECT_NEAR(result.raw_vmv, expected, budget) << "bits=" << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(WeightWidths, BitsSweep,
                         ::testing::Values(2, 4, 6, 8, 10));

class BudgetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BudgetSweep, QualityIsMonotoneEnoughInBudget) {
  // Not strict monotonicity (stochastic), but the mean best energy over a
  // seed batch must not get *worse* when the budget grows 8x.
  const std::size_t iterations = GetParam();
  const auto graph =
      problems::random_graph(96, 8.0, problems::WeightScheme::kUnit, 13);
  const auto model = std::make_shared<const ising::IsingModel>(
      problems::maxcut_to_ising(graph));

  auto mean_best = [&](std::size_t iters) {
    core::InSituConfig config;
    config.iterations = iters;
    const core::InSituCimAnnealer annealer(model, config);
    double sum = 0.0;
    for (std::uint64_t seed = 0; seed < 8; ++seed)
      sum += annealer.run(seed).best_energy;
    return sum / 8.0;
  };
  EXPECT_LE(mean_best(iterations * 8), mean_best(iterations) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(50, 100, 250));

class MuxRatioSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MuxRatioSweep, SlotRatioTracksMuxRatio) {
  // The full-array/in-situ latency gap equals the MUX ratio when flips
  // land in distinct groups, for any ratio.
  const std::size_t ratio = GetParam();
  const crossbar::CrossbarMapping mapping(
      256, 1, crossbar::MappingConfig{8, ratio, true});
  const std::vector<std::uint32_t> flips{0, 1};  // interleaved: distinct
  if (ratio == 1) {
    EXPECT_EQ(mapping.slots_full_array(), 1u);
    return;
  }
  EXPECT_EQ(mapping.slots_for_flips(flips), 1u);
  EXPECT_EQ(mapping.slots_full_array() / mapping.slots_for_flips(flips),
            ratio);
}

INSTANTIATE_TEST_SUITE_P(Ratios, MuxRatioSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

class DacStepSweep : public ::testing::TestWithParam<double> {};

TEST_P(DacStepSweep, ScheduleStaysOnGridAndMonotone) {
  const double step = GetParam();
  core::BgAnnealingSchedule::Config config;
  config.dac.step = step;
  config.total_iterations = 500;
  const core::BgAnnealingSchedule schedule(config);
  double previous = -1.0;
  for (std::size_t it = 0; it < 500; ++it) {
    const auto point = schedule.at(it);
    EXPECT_GE(point.vbg, previous - 1e-12);
    const double levels = point.vbg / step;
    EXPECT_NEAR(levels, std::round(levels), 1e-9);
    EXPECT_GE(point.factor, -1e-12);
    EXPECT_LE(point.factor, 1.0 + 1e-12);
    previous = point.vbg;
  }
  EXPECT_NEAR(schedule.at(499).vbg, 0.7, step + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Steps, DacStepSweep,
                         ::testing::Values(0.01, 0.02, 0.05, 0.07));

}  // namespace
