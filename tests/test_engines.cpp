// E_inc engines: the ideal engine's exactness + event traces, and the
// analog engine's agreement with the ideal value within quantization/noise
// bounds, in-situ f(T) realization, and fault behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "util/assert.hpp"
#include "circuit/drivers.hpp"
#include "crossbar/analog_engine.hpp"
#include "crossbar/ideal_engine.hpp"
#include "ising/fractional_factor.hpp"
#include "problems/generators.hpp"
#include "problems/maxcut.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace fecim;
using crossbar::Accounting;
using crossbar::AnalogCrossbarEngine;
using crossbar::AnalogEngineConfig;
using crossbar::CrossbarMapping;
using crossbar::IdealCrossbarEngine;
using crossbar::ProgrammedArray;
using crossbar::QuantizedCouplings;

struct Fixture {
  explicit Fixture(std::uint64_t seed, std::size_t n = 64,
                   device::VariationParams variation = {}) {
    graph = std::make_unique<problems::Graph>(
        problems::random_graph(n, 8.0, problems::WeightScheme::kUnit, seed));
    model = std::make_shared<const ising::IsingModel>(
        problems::maxcut_to_ising(*graph));
    quantized = std::make_unique<QuantizedCouplings>(model->couplings(), 8);
    mapping = std::make_unique<CrossbarMapping>(
        n, quantized->has_negative() ? 2 : 1,
        crossbar::MappingConfig{8, 8, true});
    array = std::make_shared<const ProgrammedArray>(
        *quantized, *mapping, device::DgFefetParams{}, variation, seed);
  }

  std::unique_ptr<problems::Graph> graph;
  std::shared_ptr<const ising::IsingModel> model;
  std::unique_ptr<QuantizedCouplings> quantized;
  std::unique_ptr<CrossbarMapping> mapping;
  std::shared_ptr<const ProgrammedArray> array;
};

TEST(IdealEngine, ComputesExactVmv) {
  Fixture fx(1);
  IdealCrossbarEngine engine(*fx.model, *fx.mapping, Accounting::kInSitu);
  util::Rng rng(2);
  const auto spins = ising::random_spins(64, rng);
  const ising::FlipSet flips{3, 40};
  const auto result = engine.evaluate(spins, flips, {0.5, 0.35});
  EXPECT_NEAR(result.raw_vmv, fx.model->incremental_vmv(spins, flips), 1e-12);
  EXPECT_NEAR(result.e_inc, result.raw_vmv * 0.5, 1e-12);
}

TEST(IdealEngine, InSituTraceCounts) {
  Fixture fx(3);
  IdealCrossbarEngine engine(*fx.model, *fx.mapping, Accounting::kInSitu);
  util::Rng rng(4);
  const auto spins = ising::random_spins(64, rng);
  const ising::FlipSet flips{0, 9};  // interleaved: distinct groups
  const auto result = engine.evaluate(spins, flips, {1.0, 0.7});
  // 2 row passes x |F| columns x 8 bits x 1 plane.
  EXPECT_EQ(result.trace.adc_conversions, 2u * 2u * 8u);
  EXPECT_EQ(result.trace.mux_slot_cycles, 2u);
  EXPECT_EQ(result.trace.row_drives, 2u * (64u - 2u));
  EXPECT_EQ(result.trace.column_drives, 2u * 2u * 8u);
}

TEST(IdealEngine, FullArrayTraceCounts) {
  Fixture fx(5);
  IdealCrossbarEngine engine(*fx.model, *fx.mapping,
                             Accounting::kDirectFullArray);
  util::Rng rng(6);
  const auto spins = ising::random_spins(64, rng);
  const ising::FlipSet flips{1};
  const auto result = engine.evaluate(spins, flips, {1.0, 0.7});
  EXPECT_EQ(result.trace.adc_conversions, 2u * 64u * 8u);
  EXPECT_EQ(result.trace.mux_slot_cycles, 2u * 8u);
  EXPECT_EQ(result.trace.row_drives, 2u * 64u);
}

TEST(IdealEngine, ConversionRatioMatchesPaperStory) {
  // 2 flips on an n-spin instance: full-array / in-situ = n / |F|.
  Fixture fx(7);
  IdealCrossbarEngine in_situ(*fx.model, *fx.mapping, Accounting::kInSitu);
  IdealCrossbarEngine full(*fx.model, *fx.mapping,
                           Accounting::kDirectFullArray);
  util::Rng rng(8);
  const auto spins = ising::random_spins(64, rng);
  const ising::FlipSet flips{10, 20};
  const auto a = in_situ.evaluate(spins, flips, {1.0, 0.7});
  const auto b = full.evaluate(spins, flips, {1.0, 0.7});
  EXPECT_EQ(b.trace.adc_conversions / a.trace.adc_conversions, 64u / 2u);
  EXPECT_EQ(b.trace.mux_slot_cycles / a.trace.mux_slot_cycles, 8u);
}

TEST(AnalogEngine, NoiselessAgreesWithIdealWithinQuantization) {
  Fixture fx(9);
  AnalogEngineConfig config;
  config.adc.noise_lsb_rms = 0.0;
  config.model_ir_drop = false;
  AnalogCrossbarEngine analog(fx.array, config);
  IdealCrossbarEngine ideal(*fx.model, *fx.mapping, Accounting::kInSitu);

  util::Rng rng(10);
  const ising::FractionalFactor factor;
  const circuit::BgDac dac;
  for (int trial = 0; trial < 60; ++trial) {
    const auto spins = ising::random_spins(64, rng);
    const auto flips = ising::random_flip_set(64, 2, rng);
    const double vbg = dac.quantize(rng.uniform(0.2, 0.7));
    // The analog engine realizes f as the device-current ratio; compare on
    // the raw VMV which divides that factor back out.
    const auto a = analog.evaluate(spins, flips, {0.0, vbg});
    const auto b = ideal.evaluate(spins, flips, {1.0, vbg});
    // Error budget: each of the 2 row passes x |F| columns floor-rounds up
    // to 1 LSB per bit column, amplified by the shift-add bit weights
    // (sum_b 2^b = 2^k - 1), and re-scaled by I_max / I_on(vbg).
    const double i_on = fx.array->on_current(vbg);
    const double i_max = fx.array->on_current(0.7);
    const double lsb_in_vmv =
        fx.quantized->scale() * analog.adc().lsb_current() / i_max;
    const double budget = 2.0 * 2.0 * 255.0 * lsb_in_vmv * (i_max / i_on);
    EXPECT_NEAR(a.raw_vmv, b.raw_vmv, budget) << "vbg=" << vbg;
  }
}

TEST(AnalogEngine, RealizesFractionalFactorInSitu) {
  // e_inc / raw_vmv must track I_on(vbg) / I_on(vbg_max), i.e. the
  // hardware realization of f(T) (Fig. 6(c)).
  Fixture fx(11);
  AnalogEngineConfig config;
  config.adc.noise_lsb_rms = 0.0;
  config.model_ir_drop = false;
  AnalogCrossbarEngine engine(fx.array, config);
  util::Rng rng(12);
  const auto spins = ising::random_spins(64, rng);
  const ising::FlipSet flips{5, 33};
  for (const double vbg : {0.3, 0.5, 0.7}) {
    const auto result = engine.evaluate(spins, flips, {0.0, vbg});
    if (result.raw_vmv == 0.0) continue;
    const double f_hw =
        fx.array->on_current(vbg) / fx.array->on_current(0.7);
    EXPECT_NEAR(result.e_inc / result.raw_vmv, f_hw, 1e-9);
  }
}

TEST(AnalogEngine, TraceMatchesIdealInSituAccounting) {
  Fixture fx(13);
  AnalogEngineConfig config;
  AnalogCrossbarEngine analog(fx.array, config);
  IdealCrossbarEngine ideal(*fx.model, *fx.mapping, Accounting::kInSitu);
  util::Rng rng(14);
  const auto spins = ising::random_spins(64, rng);
  const ising::FlipSet flips{2, 17};
  const auto a = analog.evaluate(spins, flips, {1.0, 0.7});
  const auto b = ideal.evaluate(spins, flips, {1.0, 0.7});
  // Unit-weight graph: all |mag| = 255, every bit column present.
  EXPECT_EQ(a.trace.adc_conversions, b.trace.adc_conversions);
  EXPECT_EQ(a.trace.mux_slot_cycles, b.trace.mux_slot_cycles);
}

TEST(AnalogEngine, ReadNoiseSpreadsEinc) {
  Fixture quiet(15);
  Fixture noisy(15, 64, device::VariationParams{0.0, 0.1, 0.0, 0.0});
  AnalogEngineConfig config;
  config.adc.noise_lsb_rms = 0.0;
  AnalogCrossbarEngine quiet_engine(quiet.array, config);
  AnalogCrossbarEngine noisy_engine(noisy.array, config);

  util::Rng rng(16);
  const auto spins = ising::random_spins(64, rng);
  const ising::FlipSet flips{7, 45};
  util::RunningStats quiet_stats;
  util::RunningStats noisy_stats;
  for (int i = 0; i < 300; ++i) {
    quiet_stats.add(quiet_engine.evaluate(spins, flips, {1.0, 0.7}).e_inc);
    noisy_stats.add(noisy_engine.evaluate(spins, flips, {1.0, 0.7}).e_inc);
  }
  EXPECT_LT(quiet_stats.stddev(), 1e-9);  // deterministic without noise
  EXPECT_GT(noisy_stats.stddev(), 1e-3);
  EXPECT_NEAR(noisy_stats.mean(), quiet_stats.mean(),
              5.0 * noisy_stats.stddev() / std::sqrt(300.0));
}

TEST(AnalogEngine, StuckOffCellsBiasResult) {
  Fixture healthy(17);
  Fixture faulty(17, 64, device::VariationParams{0.0, 0.0, 0.5, 0.0});
  EXPECT_GT(faulty.array->num_faulted_bit_cells(), 0u);
  AnalogEngineConfig config;
  config.adc.noise_lsb_rms = 0.0;
  AnalogCrossbarEngine healthy_engine(healthy.array, config);
  AnalogCrossbarEngine faulty_engine(faulty.array, config);
  util::Rng rng(18);
  util::RunningStats magnitude_healthy;
  util::RunningStats magnitude_faulty;
  for (int trial = 0; trial < 100; ++trial) {
    const auto spins = ising::random_spins(64, rng);
    const auto flips = ising::random_flip_set(64, 2, rng);
    magnitude_healthy.add(std::fabs(
        healthy_engine.evaluate(spins, flips, {1.0, 0.7}).e_inc));
    magnitude_faulty.add(std::fabs(
        faulty_engine.evaluate(spins, flips, {1.0, 0.7}).e_inc));
  }
  // Half the bit-cells dead: conductance (and thus |E_inc|) shrinks.
  EXPECT_LT(magnitude_faulty.mean(), magnitude_healthy.mean());
}

TEST(AnalogEngine, IrDropAttenuationIsCalibratedOut) {
  Fixture fx(19);
  AnalogEngineConfig lossless;
  lossless.adc.noise_lsb_rms = 0.0;
  lossless.model_ir_drop = false;
  AnalogEngineConfig lossy = lossless;
  lossy.model_ir_drop = true;
  AnalogCrossbarEngine engine_lossless(fx.array, lossless);
  AnalogCrossbarEngine engine_lossy(fx.array, lossy);
  EXPECT_LT(engine_lossy.ir_attenuation(), 1.0 + 1e-12);

  util::Rng rng(20);
  const auto spins = ising::random_spins(64, rng);
  const ising::FlipSet flips{1, 50};
  // The digital normalization divides the attenuation back out, so results
  // agree up to ADC requantization of the attenuated currents.
  const auto a = engine_lossless.evaluate(spins, flips, {1.0, 0.7});
  const auto b = engine_lossy.evaluate(spins, flips, {1.0, 0.7});
  const double lsb_in_vmv =
      fx.quantized->scale() * engine_lossless.adc().lsb_current() /
      fx.array->on_current(0.7);
  EXPECT_NEAR(a.e_inc, b.e_inc, 2.0 * 2.0 * 255.0 * lsb_in_vmv);
}

TEST(Engines, RejectEmptyFlipSet) {
  Fixture fx(21);
  IdealCrossbarEngine ideal(*fx.model, *fx.mapping, Accounting::kInSitu);
  AnalogCrossbarEngine analog(fx.array, {});
  util::Rng rng(22);
  const auto spins = ising::random_spins(64, rng);
  EXPECT_THROW(ideal.evaluate(spins, {}, {1.0, 0.7}),
               fecim::contract_error);
  EXPECT_THROW(analog.evaluate(spins, {}, {1.0, 0.7}),
               fecim::contract_error);
}

}  // namespace
