// Fault-tolerant campaign execution (docs/robustness.md): run lifecycle
// statuses, deterministic fault injection, cooperative deadlines, retry
// reseeding, checkpoint/resume bit-identity, and batch isolation in the
// fecim_solve CLI.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/annealer_factory.hpp"
#include "core/run_journal.hpp"
#include "core/run_lifecycle.hpp"
#include "core/runner.hpp"
#include "problems/generators.hpp"
#include "problems/instances.hpp"
#include "util/assert.hpp"

namespace {

using namespace fecim;

core::ProblemInstance test_problem(std::size_t nodes = 32) {
  return problems::make_maxcut_problem(
      "ft-" + std::to_string(nodes),
      problems::random_graph(nodes, 5.0, problems::WeightScheme::kUnit, 3),
      16, 3);
}

std::unique_ptr<core::Annealer> test_annealer(
    const core::ProblemInstance& problem, std::size_t iterations = 400) {
  core::StandardSetup setup;
  setup.iterations = iterations;
  return core::make_annealer(core::AnnealerKind::kThisWork, problem.model,
                             setup);
}

/// Bit-identical record comparison -- the determinism contract is exact
/// equality, never "near".
void expect_records_equal(const core::RunRecord& a, const core::RunRecord& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.attempt, b.attempt);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_spins, b.best_spins);
  if (a.status == core::RunStatus::kOk) {
    EXPECT_EQ(a.solution.objective, b.solution.objective);
  } else {
    EXPECT_TRUE(std::isnan(a.solution.objective));
    EXPECT_TRUE(std::isnan(b.solution.objective));
  }
  EXPECT_EQ(a.solution.feasible, b.solution.feasible);
  EXPECT_EQ(a.solution.violations, b.solution.violations);
}

void expect_results_equal(const core::CampaignResult& a,
                          const core::CampaignResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.best_run, b.best_run);
  EXPECT_EQ(a.completed_rate, b.completed_rate);
  EXPECT_EQ(a.feasible_rate, b.feasible_rate);
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.objective.count(), b.objective.count());
  if (!a.objective.empty()) {
    EXPECT_EQ(a.objective.mean(), b.objective.mean());
    EXPECT_EQ(a.objective.min(), b.objective.min());
    EXPECT_EQ(a.objective.max(), b.objective.max());
  }
  EXPECT_EQ(a.energy.count(), b.energy.count());
  if (!a.energy.empty()) EXPECT_EQ(a.energy.mean(), b.energy.mean());
  if (!a.time.empty()) EXPECT_EQ(a.time.mean(), b.time.mean());
  EXPECT_EQ(a.total_ledger.iterations, b.total_ledger.iterations);
  EXPECT_EQ(a.total_ledger.adc_conversions, b.total_ledger.adc_conversions);
  EXPECT_EQ(a.total_ledger.spin_updates, b.total_ledger.spin_updates);
  EXPECT_EQ(a.total_ledger.row_drives, b.total_ledger.row_drives);
  ASSERT_EQ(a.per_run.size(), b.per_run.size());
  for (std::size_t run = 0; run < a.per_run.size(); ++run)
    expect_records_equal(a.per_run[run], b.per_run[run]);
}

// ---------------------------------------------------------------------------
// Lifecycle primitives
// ---------------------------------------------------------------------------

TEST(RunLifecycle, StatusNamesRoundTrip) {
  for (auto status :
       {core::RunStatus::kOk, core::RunStatus::kFailed,
        core::RunStatus::kTimedOut, core::RunStatus::kCancelled}) {
    EXPECT_EQ(core::parse_run_status(core::run_status_name(status)), status);
  }
  EXPECT_THROW(core::parse_run_status("exploded"), contract_error);
}

TEST(RunLifecycle, AttemptZeroSeedIsIdentity) {
  // Attempt 0 must return the campaign-derived seed verbatim: an untroubled
  // campaign with the retry machinery enabled is bit-identical to one
  // without it.
  EXPECT_EQ(core::run_attempt_seed(0, 0), 0u);
  EXPECT_EQ(core::run_attempt_seed(42, 0), 42u);
  EXPECT_EQ(core::run_attempt_seed(~0ull, 0), ~0ull);
}

TEST(RunLifecycle, RetrySeedsAreDistinctAndDeterministic) {
  const std::uint64_t seed = 12345;
  const auto a1 = core::run_attempt_seed(seed, 1);
  const auto a2 = core::run_attempt_seed(seed, 2);
  EXPECT_NE(a1, seed);
  EXPECT_NE(a2, seed);
  EXPECT_NE(a1, a2);
  EXPECT_EQ(a1, core::run_attempt_seed(seed, 1));  // pure function
  // Neighbouring base seeds must not collide under retry (the SplitMix64
  // mix decorrelates seed and attempt).
  EXPECT_NE(core::run_attempt_seed(seed + 1, 1), a1);
}

TEST(RunLifecycle, InactiveTokenNeverStops) {
  const auto& token = core::CancellationToken::none();
  EXPECT_FALSE(token.active());
  EXPECT_EQ(token.status(), core::RunStatus::kOk);
  EXPECT_NO_THROW(token.raise_if_stopped());
}

TEST(RunLifecycle, ExpiredRunDeadlineTimesOut) {
  core::CancellationToken token;
  token.set_run_deadline(core::CancellationToken::Clock::now() -
                         std::chrono::seconds(1));
  EXPECT_TRUE(token.active());
  EXPECT_EQ(token.status(), core::RunStatus::kTimedOut);
  EXPECT_THROW(token.raise_if_stopped(), core::run_timeout_error);
}

TEST(RunLifecycle, CampaignDeadlineDominatesRunDeadline) {
  // A run that would also have timed out is collateral of the campaign
  // limit; reporting it as kTimedOut would overstate per-run flakiness.
  core::CancellationToken token;
  const auto past =
      core::CancellationToken::Clock::now() - std::chrono::seconds(1);
  token.set_run_deadline(past);
  token.set_campaign_deadline(past);
  EXPECT_EQ(token.status(), core::RunStatus::kCancelled);
  EXPECT_THROW(token.raise_if_stopped(), core::run_cancelled_error);
}

// ---------------------------------------------------------------------------
// Graceful degradation under injected faults
// ---------------------------------------------------------------------------

TEST(FaultTolerance, InjectedFailureDegradesGracefully) {
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);

  core::CampaignConfig baseline;
  baseline.runs = 6;
  const auto clean = core::run_campaign(*annealer, problem, baseline);
  ASSERT_EQ(clean.completed, 6u);

  core::CampaignConfig faulty = baseline;
  faulty.inject.fail_runs = {2};
  const auto result = core::run_campaign(*annealer, problem, faulty);

  EXPECT_EQ(result.runs, 6u);
  EXPECT_EQ(result.completed, 5u);
  EXPECT_DOUBLE_EQ(result.completed_rate, 5.0 / 6.0);
  ASSERT_EQ(result.per_run.size(), 6u);

  const auto& failed = result.per_run[2];
  EXPECT_EQ(failed.status, core::RunStatus::kFailed);
  EXPECT_NE(failed.error.find("injected"), std::string::npos);
  EXPECT_TRUE(std::isnan(failed.solution.objective));
  EXPECT_FALSE(failed.solution.feasible);
  EXPECT_EQ(failed.best_energy, 0.0);
  EXPECT_TRUE(failed.best_spins.empty());

  // The surviving runs are bit-identical to the uninjected campaign: a
  // failure elsewhere must not perturb any other run's stream.
  for (std::size_t run : {0u, 1u, 3u, 4u, 5u})
    expect_records_equal(result.per_run[run], clean.per_run[run]);

  // Statistics cover completed runs only, and match recomputing them from
  // the surviving records.
  EXPECT_EQ(result.objective.count(), 5u);
  EXPECT_EQ(result.violations.count(), 5u);
  EXPECT_EQ(result.energy.count(), 5u);
  EXPECT_EQ(result.total_ledger.iterations,
            clean.total_ledger.iterations * 5 / 6);
}

TEST(FaultTolerance, FaultyCampaignIsThreadCountInvariant) {
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);

  core::CampaignConfig serial;
  serial.runs = 6;
  serial.threads = 1;
  serial.inject.fail_runs = {1, 4};
  core::CampaignConfig parallel = serial;
  parallel.threads = 4;

  const auto a = core::run_campaign(*annealer, problem, serial);
  const auto b = core::run_campaign(*annealer, problem, parallel);
  EXPECT_EQ(a.completed, 4u);
  expect_results_equal(a, b);
}

TEST(FaultTolerance, InjectedHangTripsRunDeadline) {
  // Hang injection pre-expires the run deadline, so the annealer's real
  // cooperative poll (not a test bypass) must abort the run.
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem, 5000);

  core::CampaignConfig config;
  config.runs = 3;
  config.run_timeout_seconds = 30.0;  // generous: only the hang should trip
  config.inject.hang_runs = {1};
  const auto result = core::run_campaign(*annealer, problem, config);

  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.per_run[0].status, core::RunStatus::kOk);
  EXPECT_EQ(result.per_run[1].status, core::RunStatus::kTimedOut);
  EXPECT_EQ(result.per_run[2].status, core::RunStatus::kOk);
  EXPECT_NE(result.per_run[1].error.find("deadline"), std::string::npos);
  // Timeouts are final: the budget is consumed, so no retry happens even
  // when retries are enabled.
  core::CampaignConfig with_retry = config;
  with_retry.retries = 2;
  const auto retried = core::run_campaign(*annealer, problem, with_retry);
  EXPECT_EQ(retried.per_run[1].status, core::RunStatus::kTimedOut);
  EXPECT_EQ(retried.per_run[1].attempt, 0u);
}

TEST(FaultTolerance, CampaignTimeLimitCancelsEverything) {
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);

  core::CampaignConfig config;
  config.runs = 4;
  config.time_limit_seconds = 1e-9;  // expires before any run starts
  const auto result = core::run_campaign(*annealer, problem, config);

  EXPECT_EQ(result.completed, 0u);
  EXPECT_DOUBLE_EQ(result.completed_rate, 0.0);
  EXPECT_DOUBLE_EQ(result.feasible_rate, 0.0);
  EXPECT_DOUBLE_EQ(result.success_rate, 0.0);
  EXPECT_EQ(result.best_run, result.per_run.size());
  for (const auto& record : result.per_run) {
    EXPECT_EQ(record.status, core::RunStatus::kCancelled);
    EXPECT_FALSE(record.error.empty());
  }
}

// ---------------------------------------------------------------------------
// Retry reseeding
// ---------------------------------------------------------------------------

TEST(FaultTolerance, RetryRecoversAndIsReproducible) {
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);

  core::CampaignConfig baseline;
  baseline.runs = 4;
  const auto clean = core::run_campaign(*annealer, problem, baseline);

  core::CampaignConfig faulty = baseline;
  faulty.inject.fail_runs = {2};
  faulty.retries = 1;
  const auto result = core::run_campaign(*annealer, problem, faulty);

  EXPECT_EQ(result.completed, 4u);
  const auto& retried = result.per_run[2];
  EXPECT_EQ(retried.status, core::RunStatus::kOk);
  EXPECT_EQ(retried.attempt, 1u);
  // The retried attempt runs under run_attempt_seed(base, 1), where `base`
  // is the campaign-derived seed the clean campaign recorded for run 2.
  const auto expected_seed = core::run_attempt_seed(clean.per_run[2].seed, 1);
  EXPECT_EQ(retried.seed, expected_seed);
  // Reproducible in isolation: a direct annealer call at that seed yields
  // the retried record exactly.
  const auto direct = annealer->run(expected_seed);
  EXPECT_EQ(retried.best_energy, direct.best_energy);
  EXPECT_EQ(retried.best_spins, direct.best_spins);

  // Untouched runs remain bit-identical to the clean campaign.
  for (std::size_t run : {0u, 1u, 3u})
    expect_records_equal(result.per_run[run], clean.per_run[run]);

  // Re-running the faulty campaign reproduces the retried record too: the
  // whole recovery path is deterministic.
  const auto again = core::run_campaign(*annealer, problem, faulty);
  expect_results_equal(result, again);
}

// ---------------------------------------------------------------------------
// Checkpoint journal + resume
// ---------------------------------------------------------------------------

std::string journal_path(const char* name) {
  return testing::TempDir() + "/fecim_" + name + ".journal";
}

TEST(FaultTolerance, ResumeAfterKillReproducesBitIdentically) {
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);
  const auto path = journal_path("kill");

  core::CampaignConfig config;
  config.runs = 6;
  config.journal_path = path;
  std::remove(path.c_str());
  const auto uninterrupted = core::run_campaign(*annealer, problem, config);

  // Simulate a kill: keep the header plus the first three journal lines and
  // a torn fragment of the fourth (the line the dying writer was emitting).
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  in.close();
  ASSERT_GE(lines.size(), 5u);  // header + 6 runs
  std::ofstream out(path, std::ios::trunc);
  for (std::size_t i = 0; i < 4; ++i) out << lines[i] << "\n";
  out << lines[4].substr(0, lines[4].size() / 2);  // torn, no newline
  out.close();

  core::CampaignConfig resume = config;
  resume.resume = true;
  const auto resumed = core::run_campaign(*annealer, problem, resume);
  expect_results_equal(uninterrupted, resumed);

  // The compacted-and-extended journal now supports a second, fully cached
  // resume with fault injection armed on every run: if any run actually
  // executed it would fail, so equality proves the journal alone fed the
  // result.
  core::CampaignConfig cached = resume;
  cached.inject.fail_runs = {0, 1, 2, 3, 4, 5};
  const auto from_cache = core::run_campaign(*annealer, problem, cached);
  expect_results_equal(uninterrupted, from_cache);
}

TEST(FaultTolerance, JournalPersistsFailedRunsAcrossResume) {
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);
  const auto path = journal_path("failed");

  core::CampaignConfig config;
  config.runs = 4;
  config.journal_path = path;
  config.inject.fail_runs = {1};
  std::remove(path.c_str());
  const auto first = core::run_campaign(*annealer, problem, config);
  ASSERT_EQ(first.per_run[1].status, core::RunStatus::kFailed);

  // Resume without injection: the failed record must come back from the
  // journal (message included), not get silently re-executed into success.
  core::CampaignConfig resume = config;
  resume.inject = {};
  resume.resume = true;
  const auto resumed = core::run_campaign(*annealer, problem, resume);
  expect_results_equal(first, resumed);
  EXPECT_EQ(resumed.per_run[1].status, core::RunStatus::kFailed);
  EXPECT_EQ(resumed.per_run[1].error, first.per_run[1].error);
}

TEST(FaultTolerance, ResumeRejectsMismatchedCampaign) {
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);
  const auto path = journal_path("mismatch");

  core::CampaignConfig config;
  config.runs = 3;
  config.journal_path = path;
  std::remove(path.c_str());
  core::run_campaign(*annealer, problem, config);

  core::CampaignConfig wrong_seed = config;
  wrong_seed.resume = true;
  wrong_seed.base_seed = config.base_seed + 1;
  EXPECT_THROW(core::run_campaign(*annealer, problem, wrong_seed),
               contract_error);

  core::CampaignConfig wrong_runs = config;
  wrong_runs.resume = true;
  wrong_runs.runs = 5;
  EXPECT_THROW(core::run_campaign(*annealer, problem, wrong_runs),
               contract_error);
}

TEST(FaultTolerance, ResumeRejectsInteriorCorruption) {
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);
  const auto path = journal_path("corrupt");

  core::CampaignConfig config;
  config.runs = 3;
  config.journal_path = path;
  std::remove(path.c_str());
  core::run_campaign(*annealer, problem, config);

  // Mangle an interior line (not the torn-tail case): this is real
  // corruption and must throw instead of silently dropping a run.
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  in.close();
  ASSERT_GE(lines.size(), 4u);
  lines[2] = "run 1 ok garbage";
  std::ofstream out(path, std::ios::trunc);
  for (const auto& l : lines) out << l << "\n";
  out.close();

  core::CampaignConfig resume = config;
  resume.resume = true;
  EXPECT_THROW(core::run_campaign(*annealer, problem, resume), contract_error);
}

TEST(FaultTolerance, ResumeWithoutJournalFileStartsFresh) {
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);
  const auto path = journal_path("fresh");
  std::remove(path.c_str());

  core::CampaignConfig config;
  config.runs = 3;
  config.journal_path = path;
  config.resume = true;  // nothing to resume from: degrade to a fresh start
  const auto result = core::run_campaign(*annealer, problem, config);
  EXPECT_EQ(result.completed, 3u);

  core::CampaignConfig plain;
  plain.runs = 3;
  const auto reference = core::run_campaign(*annealer, problem, plain);
  expect_results_equal(reference, result);
}

TEST(FaultTolerance, InvalidConfigIsRejected) {
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);
  core::CampaignConfig config;
  config.runs = 2;

  core::CampaignConfig no_journal = config;
  no_journal.resume = true;  // resume needs a journal path
  EXPECT_THROW(core::run_campaign(*annealer, problem, no_journal),
               contract_error);

  core::CampaignConfig bad_inject = config;
  bad_inject.inject.fail_runs = {7};  // out of range for runs = 2
  EXPECT_THROW(core::run_campaign(*annealer, problem, bad_inject),
               contract_error);

  core::CampaignConfig bad_timeout = config;
  bad_timeout.run_timeout_seconds = -1.0;
  EXPECT_THROW(core::run_campaign(*annealer, problem, bad_timeout),
               contract_error);
}

// ---------------------------------------------------------------------------
// Batch isolation in the fecim_solve CLI
// ---------------------------------------------------------------------------

#ifdef FECIM_SOLVE_PATH
TEST(FaultTolerance, BatchIsolatesMalformedInstances) {
  const std::string solver = FECIM_SOLVE_PATH;
  std::ifstream probe(solver);
  if (!probe.good()) GTEST_SKIP() << "fecim_solve binary not built";
  probe.close();

  const std::string dir = testing::TempDir();
  const std::string bad = dir + "/fecim_bad.gset";
  const std::string manifest = dir + "/fecim_batch.manifest";
  const std::string csv = dir + "/fecim_batch.csv";
  {
    std::ofstream f(bad);
    f << "this is not a gset file\n";
  }
  {
    // One well-formed generated-free instance cannot be expressed in a
    // manifest, so pair the tracked Petersen fixture with the malformed one.
    std::ofstream f(manifest);
    f << "maxcut " << FECIM_SOURCE_DIR "/examples/data/maxcut_petersen.gset"
      << " good\n";
    f << "maxcut " << bad << " bad\n";
  }

  const std::string command = solver + " --batch " + manifest +
                              " --iterations 200 --runs 2 --csv > " + csv +
                              " 2> /dev/null";
  const int status = std::system(command.c_str());
  ASSERT_NE(status, -1);
  // One malformed instance: the batch completes but exits non-zero.
  EXPECT_NE(status, 0);

  std::ifstream in(csv);
  std::string line;
  bool good_ok = false, bad_failed = false;
  while (std::getline(in, line)) {
    if (line.rfind("good,", 0) == 0 &&
        line.rfind(",ok") == line.size() - 3) {
      good_ok = true;
    }
    if (line.rfind("bad,", 0) == 0 &&
        line.rfind(",failed") == line.size() - 7) {
      bad_failed = true;
    }
  }
  EXPECT_TRUE(good_ok) << "surviving batch row missing from CSV";
  EXPECT_TRUE(bad_failed) << "failed batch row missing from CSV";
}
#endif  // FECIM_SOLVE_PATH

}  // namespace
