// f(T) <-> device current calibration (paper Fig. 6(c)).
#include <gtest/gtest.h>

#include <cmath>

#include "core/ft_calibration.hpp"

namespace {

using namespace fecim;
using core::evaluate_ft_approximation;
using core::fit_dg_fefet_to_factor;

TEST(FtCalibration, DefaultDeviceApproximatesFactor) {
  const ising::FractionalFactor factor;
  const circuit::BgDac dac;
  const auto report =
      evaluate_ft_approximation(device::DgFefetParams{}, factor, dac);
  // The shipped defaults are the fit result: a few percent RMS error.
  EXPECT_LT(report.rms_error, 0.05);
  EXPECT_LT(report.max_error, 0.12);
  EXPECT_TRUE(report.monotone);
}

TEST(FtCalibration, SamplesCoverDacGrid) {
  const ising::FractionalFactor factor;
  const circuit::BgDac dac;
  const auto report =
      evaluate_ft_approximation(device::DgFefetParams{}, factor, dac);
  ASSERT_EQ(report.samples.size(), dac.num_levels());
  EXPECT_DOUBLE_EQ(report.samples.front().vbg, 0.0);
  EXPECT_NEAR(report.samples.back().vbg, 0.7, 1e-12);
  // Endpoints: f(T_min)=0 vs small device floor; f(T_max)=1 exactly (both
  // curves normalized to the V_BG-max current).
  EXPECT_NEAR(report.samples.back().device, 1.0, 1e-12);
  EXPECT_NEAR(report.samples.back().target, 1.0, 1e-9);
  EXPECT_LT(report.samples.front().device, 0.05);
}

TEST(FtCalibration, TargetsMatchFractionalFactor) {
  const ising::FractionalFactor factor;
  const circuit::BgDac dac;
  const auto report =
      evaluate_ft_approximation(device::DgFefetParams{}, factor, dac);
  for (const auto& sample : report.samples) {
    EXPECT_NEAR(sample.target, factor(sample.temperature), 1e-12);
  }
}

TEST(FtCalibration, FitDoesNotWorsenDefaults) {
  const ising::FractionalFactor factor;
  const circuit::BgDac dac;
  const device::DgFefetParams base;
  const auto before = evaluate_ft_approximation(base, factor, dac);
  core::FtFitOptions options;
  options.step = 0.01;  // coarse grid keeps the test fast
  const auto fitted = fit_dg_fefet_to_factor(factor, dac, base, options);
  const auto after = evaluate_ft_approximation(fitted, factor, dac);
  EXPECT_LE(after.rms_error, before.rms_error + 1e-9);
  EXPECT_TRUE(after.monotone);
  // Memory window preserved by the fit.
  EXPECT_NEAR(fitted.vth_high - fitted.vth_low,
              base.vth_high - base.vth_low, 1e-12);
}

TEST(FtCalibration, DetectsBadDevice) {
  // A device with no back-gate coupling cannot track f(T).
  device::DgFefetParams flat;
  flat.back_gate_coupling = 0.0;
  const auto report = evaluate_ft_approximation(
      flat, ising::FractionalFactor{}, circuit::BgDac{});
  EXPECT_GT(report.rms_error, 0.2);
}

}  // namespace
