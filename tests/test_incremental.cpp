// Property tests of the incremental-E transformation (paper Sec. 3.2):
// sigma_f/sigma_c/sigma_r construction, the dE = 4 sigma_r^T J sigma_c
// identity, term counting, and the fractional factor.
#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "ising/fractional_factor.hpp"
#include "ising/incremental.hpp"
#include "ising/ising_model.hpp"
#include "util/rng.hpp"

namespace {

using fecim::ising::FractionalFactor;
using fecim::ising::IsingModel;
using fecim::linalg::CsrMatrix;

CsrMatrix random_couplings(std::size_t n, fecim::util::Rng& rng) {
  CsrMatrix::Builder builder(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.35))
        builder.add_symmetric(i, j, rng.uniform(-2.0, 2.0));
  return builder.build();
}

TEST(IncrementalVectors, StructureInvariants) {
  fecim::util::Rng rng(3);
  const auto spins = fecim::ising::random_spins(20, rng);
  const fecim::ising::FlipSet flips{2, 7, 13};
  const auto vectors = fecim::ising::make_incremental_vectors(spins, flips);

  std::size_t c_nonzero = 0;
  std::size_t r_nonzero = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    // Supports of sigma_c and sigma_r are disjoint and complementary.
    EXPECT_FALSE(vectors.sigma_c[i] != 0 && vectors.sigma_r[i] != 0);
    c_nonzero += vectors.sigma_c[i] != 0;
    r_nonzero += vectors.sigma_r[i] != 0;
    if (vectors.sigma_f[i]) {
      // sigma_c carries the *flipped* value: -sigma_i.
      EXPECT_EQ(vectors.sigma_c[i], -spins[i]);
    } else {
      // sigma_r carries the unflipped value.
      EXPECT_EQ(vectors.sigma_r[i], spins[i]);
    }
  }
  EXPECT_EQ(c_nonzero, flips.size());
  EXPECT_EQ(r_nonzero, 20 - flips.size());
}

class IncrementalIdentityTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(IncrementalIdentityTest, DeltaEquals4SigmaRJSigmaC) {
  const auto [n, t_param] = GetParam();
  const std::size_t t = std::min(n, t_param);  // cannot flip more than n
  fecim::util::Rng rng(n * 17 + t);
  const auto j = random_couplings(n, rng);
  const IsingModel model(j);

  for (int trial = 0; trial < 20; ++trial) {
    const auto spins = fecim::ising::random_spins(n, rng);
    const auto flips = fecim::ising::random_flip_set(n, t, rng);
    const auto vectors = fecim::ising::make_incremental_vectors(spins, flips);

    // Paper Eq. (9): dE = 4 sigma_r^T J sigma_c -- checked against the
    // dense reference evaluation and the direct energy difference.
    const double vmv = fecim::ising::incremental_vmv_reference(j, vectors);
    const double delta_direct =
        model.energy(fecim::ising::flipped_copy(spins, flips)) -
        model.energy(spins);
    EXPECT_NEAR(4.0 * vmv, delta_direct, 1e-9);
    EXPECT_NEAR(vmv, model.incremental_vmv(spins, flips), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndFlips, IncrementalIdentityTest,
    ::testing::Combine(::testing::Values<std::size_t>(5, 12, 30, 64),
                       ::testing::Values<std::size_t>(1, 2, 4, 8)));

TEST(IncrementalIdentity, WholeVectorFlipIsZeroDelta) {
  // Flipping every spin leaves sigma^T J sigma unchanged; sigma_r is all
  // zeros so the identity gives exactly zero.
  fecim::util::Rng rng(55);
  const auto j = random_couplings(16, rng);
  const auto spins = fecim::ising::random_spins(16, rng);
  fecim::ising::FlipSet all(16);
  for (std::uint32_t i = 0; i < 16; ++i) all[i] = i;
  const auto vectors = fecim::ising::make_incremental_vectors(spins, all);
  EXPECT_DOUBLE_EQ(fecim::ising::incremental_vmv_reference(j, vectors), 0.0);
}

TEST(ComplexityCount, MatchesFigure5) {
  const auto count = fecim::ising::count_product_terms(3000, 2);
  EXPECT_EQ(count.direct_terms, 9'000'000u);
  EXPECT_EQ(count.incremental_terms, 2998u * 2u);
  // O(n^2) vs O(n): the ratio grows linearly in n for fixed |F|.
  const auto small = fecim::ising::count_product_terms(800, 2);
  const double ratio_small = static_cast<double>(small.direct_terms) /
                             static_cast<double>(small.incremental_terms);
  const double ratio_large = static_cast<double>(count.direct_terms) /
                             static_cast<double>(count.incremental_terms);
  EXPECT_GT(ratio_large, ratio_small * 3.0);
}

TEST(FractionalFactor, PaperConstants) {
  const FractionalFactor factor;
  // f(T) = 1/(-0.006 T + 5) - 0.2 -> zero at T = 0, one at T = 694.44.
  EXPECT_NEAR(factor.t_min(), 0.0, 1e-9);
  EXPECT_NEAR(factor.t_max(), 694.4444, 1e-3);
  EXPECT_NEAR(factor(0.0), 0.0, 1e-12);
  EXPECT_NEAR(factor(factor.t_max()), 1.0, 1e-12);
}

TEST(FractionalFactor, StrictlyIncreasing) {
  const FractionalFactor factor;
  double previous = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double t = factor.t_max() * i / 100.0;
    const double f = factor(t);
    EXPECT_GT(f, previous);
    previous = f;
  }
}

TEST(FractionalFactor, InverseRoundTrip) {
  const FractionalFactor factor;
  for (const double f : {0.0, 0.1, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(factor(factor.temperature_for(f)), f, 1e-9);
  }
}

TEST(FractionalFactor, EquivalentRationalForm) {
  // f(T) = 0.2 T / (833.33 - T) is the same function; a sanity anchor for
  // the convexity the device must reproduce.
  const FractionalFactor factor;
  for (const double t : {50.0, 200.0, 400.0, 600.0}) {
    EXPECT_NEAR(factor(t), 0.2 * t / (5.0 / 0.006 - t), 1e-9);
  }
}

TEST(FractionalFactor, RejectsDegenerateCoefficients) {
  FractionalFactor::Coefficients bad;
  bad.b = 0.0;
  EXPECT_THROW(FractionalFactor{bad}, fecim::contract_error);
}

TEST(FractionalFactor, ApproximatesExponentialNearUnityArgument) {
  // The design intent (Eq. 10): 1 - dE * beta ~ exp(-dE * beta) for small
  // arguments.  Check the linearized acceptance is within 10 % of the
  // exponential for arguments up to 0.4.
  for (double x = 0.0; x <= 0.4; x += 0.05) {
    EXPECT_NEAR(1.0 - x, std::exp(-x), 0.1);
  }
}

}  // namespace
