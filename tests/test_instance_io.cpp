// Instance-ingestion subsystem: the shared LineParser core, hardened Gset
// I/O (comments, line-numbered diagnostics, lossless round-trip), the
// DIMACS/knapsack/partition/TSP readers, and the QPLIB-subset QUBO format
// with its ProblemInstance factory.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "ising/qubo.hpp"
#include "problems/gset_io.hpp"
#include "problems/instance_io.hpp"
#include "problems/instances.hpp"
#include "problems/qubo.hpp"
#include "util/assert.hpp"

namespace {

using namespace fecim::problems;

/// Run `fn`, require a contract_error, and return its message for
/// line-number / context assertions.
template <typename Fn>
std::string diagnostic_of(Fn&& fn) {
  try {
    fn();
  } catch (const fecim::contract_error& error) {
    return error.what();
  }
  ADD_FAILURE() << "expected fecim::contract_error";
  return {};
}

// ---------------------------------------------------------------------------
// Gset
// ---------------------------------------------------------------------------

TEST(GsetIoHardened, SkipsCommentAndBlankLines) {
  std::stringstream in(
      "% rudy-style comment\n"
      "# hash comment\n"
      "\n"
      "3 2\n"
      "  # indented comment between edges\n"
      "1 2 1.5\n"
      "\n"
      "2 3 -1\n");
  const auto g = read_gset(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), -1.0);
}

TEST(GsetIoHardened, WeightColumnOptionalDefaultsToUnit) {
  std::stringstream in("2 1\n1 2\n");
  const auto g = read_gset(in);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0);
}

TEST(GsetIoHardened, SelfLoopNamesTheLine) {
  std::stringstream in("3 2\n1 2 1\n2 2 1\n");
  const auto message = diagnostic_of([&] { read_gset(in); });
  EXPECT_NE(message.find("gset:3"), std::string::npos) << message;
  EXPECT_NE(message.find("self-loop"), std::string::npos) << message;
}

TEST(GsetIoHardened, OutOfRangeIndexNamesTheLine) {
  std::stringstream in("# header next\n2 1\n1 5 1\n");
  const auto message = diagnostic_of([&] { read_gset(in); });
  EXPECT_NE(message.find("gset:3"), std::string::npos) << message;
  EXPECT_NE(message.find("out of range"), std::string::npos) << message;
}

TEST(GsetIoHardened, GarbageFieldNamesTheLine) {
  std::stringstream in("3 1\n1 2 fast\n");
  const auto message = diagnostic_of([&] { read_gset(in); });
  EXPECT_NE(message.find("gset:2"), std::string::npos) << message;
  EXPECT_NE(message.find("'fast'"), std::string::npos) << message;
}

TEST(GsetIoHardened, TruncatedAndTrailingInputRejected) {
  std::stringstream truncated("3 2\n1 2 1\n");
  EXPECT_NE(diagnostic_of([&] { read_gset(truncated); })
                .find("end of input"),
            std::string::npos);
  std::stringstream trailing("2 1\n1 2 1\n2 1 3\n");
  EXPECT_NE(diagnostic_of([&] { read_gset(trailing); })
                .find("trailing content"),
            std::string::npos);
}

TEST(GsetIoHardened, DuplicateEdgesAccumulate) {
  std::stringstream in("2 2\n1 2 1.5\n2 1 2.5\n");
  const auto g = read_gset(in);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 4.0);
}

TEST(GsetIoHardened, WriteReadRoundTripIsLossless) {
  // Weights that the old default-precision writer (6 significant digits)
  // silently corrupted.
  Graph g(4);
  g.add_edge(0, 1, 1.0 / 3.0);
  g.add_edge(1, 2, 0.1);
  g.add_edge(2, 3, -1234567.890123);
  std::stringstream buffer;
  write_gset(g, buffer);
  const auto parsed = read_gset(buffer);
  ASSERT_EQ(parsed.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(parsed.edge_weight(0, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(parsed.edge_weight(1, 2), 0.1);
  EXPECT_DOUBLE_EQ(parsed.edge_weight(2, 3), -1234567.890123);
}

TEST(GsetIoHardened, GsetScaleEdgeListLoadsLinearly) {
  // 20k edges with every edge listed twice: the seed's O(m) merge scan made
  // this O(m^2) (minutes); the hash-indexed merge loads it instantly.  The
  // assertion is correctness; the 60 s ctest timeout is the perf tripwire.
  constexpr std::uint32_t n = 2000;
  constexpr std::size_t m = 20000;
  std::stringstream in;
  in << n << ' ' << 2 * m << '\n';
  for (std::size_t k = 0; k < m; ++k) {
    const auto u = static_cast<std::uint32_t>(k % n);
    const auto v = static_cast<std::uint32_t>((u + 1 + k % 7) % n);
    in << (u + 1) << ' ' << (v + 1) << " 0.5\n";
    in << (v + 1) << ' ' << (u + 1) << " 0.5\n";
  }
  const auto g = read_gset(in);
  EXPECT_EQ(g.num_vertices(), n);
  EXPECT_LE(g.num_edges(), m);  // every pair merged at least once
  double total = 0.0;
  for (const auto& e : g.edges()) total += e.weight;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(m));  // 2m half-weight lines
}

// ---------------------------------------------------------------------------
// DIMACS coloring
// ---------------------------------------------------------------------------

TEST(DimacsIo, ParsesAndDedupesMirroredEdges) {
  std::stringstream in(
      "c triangle plus a mirrored duplicate\n"
      "p edge 3 4\n"
      "e 1 2\n"
      "e 2 3\n"
      "e 1 3\n"
      "e 2 1\n");
  const auto g = read_dimacs_coloring(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);  // mirrored duplicate deduped, unit weight
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0);
}

TEST(DimacsIo, ErrorsNameTheLine) {
  std::stringstream no_problem_line("e 1 2\n");
  EXPECT_NE(diagnostic_of([&] { read_dimacs_coloring(no_problem_line); })
                .find("p edge"),
            std::string::npos);

  std::stringstream bad_index("p edge 3 1\ne 1 9\n");
  const auto message =
      diagnostic_of([&] { read_dimacs_coloring(bad_index); });
  EXPECT_NE(message.find("dimacs:2"), std::string::npos) << message;

  std::stringstream self_loop("p edge 3 1\ne 2 2\n");
  EXPECT_NE(diagnostic_of([&] { read_dimacs_coloring(self_loop); })
                .find("self-loop"),
            std::string::npos);

  std::stringstream truncated("p edge 3 2\ne 1 2\n");
  EXPECT_NE(diagnostic_of([&] { read_dimacs_coloring(truncated); })
                .find("end of input"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Knapsack files
// ---------------------------------------------------------------------------

TEST(KnapsackIo, ReadParsesHeaderAndItems) {
  std::stringstream in(
      "# value weight per line\n"
      "3 7.5\n"
      "10 5\n"
      "7 4\n"
      "4 3\n");
  const auto instance = read_knapsack(in);
  ASSERT_EQ(instance.items.size(), 3u);
  EXPECT_DOUBLE_EQ(instance.capacity, 7.5);
  EXPECT_DOUBLE_EQ(instance.items[1].value, 7.0);
  EXPECT_DOUBLE_EQ(instance.items[1].weight, 4.0);
}

TEST(KnapsackIo, WriteReadRoundTrip) {
  const KnapsackInstance instance{{{10.25, 5.5}, {1.0 / 3.0, 4}}, 7.125};
  std::stringstream buffer;
  write_knapsack(instance, buffer);
  const auto parsed = read_knapsack(buffer);
  ASSERT_EQ(parsed.items.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.capacity, 7.125);
  EXPECT_DOUBLE_EQ(parsed.items[0].value, 10.25);
  EXPECT_DOUBLE_EQ(parsed.items[1].value, 1.0 / 3.0);
}

TEST(KnapsackIo, MalformedInputsNameTheLine) {
  std::stringstream negative_value("2 7\n-3 2\n1 1\n");
  EXPECT_NE(diagnostic_of([&] { read_knapsack(negative_value); })
                .find("knapsack:2"),
            std::string::npos);
  std::stringstream truncated("3 7\n10 5\n");
  EXPECT_NE(diagnostic_of([&] { read_knapsack(truncated); })
                .find("end of input"),
            std::string::npos);
  std::stringstream zero_capacity("1 0\n1 1\n");
  EXPECT_NE(diagnostic_of([&] { read_knapsack(zero_capacity); })
                .find("capacity"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Partition files
// ---------------------------------------------------------------------------

TEST(PartitionIo, LayoutInsensitiveParse) {
  std::stringstream in("# any layout\n4 5 6\n7\n8\n");
  const auto numbers = read_partition(in);
  ASSERT_EQ(numbers.size(), 5u);
  EXPECT_DOUBLE_EQ(numbers[0], 4.0);
  EXPECT_DOUBLE_EQ(numbers[4], 8.0);
}

TEST(PartitionIo, RejectsBadInputs) {
  std::stringstream garbage("3 x 5\n");
  EXPECT_NE(diagnostic_of([&] { read_partition(garbage); }).find("'x'"),
            std::string::npos);
  std::stringstream negative("3 -4\n");
  EXPECT_NE(diagnostic_of([&] { read_partition(negative); })
                .find("positive"),
            std::string::npos);
  std::stringstream too_few("42\n");
  EXPECT_NE(diagnostic_of([&] { read_partition(too_few); })
                .find("at least 2"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// TSP coordinate lists
// ---------------------------------------------------------------------------

TEST(TspIo, EuclideanDistancesFromCoordinates) {
  std::stringstream in("4\n0 0\n1 0\n1 1\n0 1\n");
  const auto instance = read_tsp_coords(in);
  ASSERT_EQ(instance.num_cities(), 4u);
  EXPECT_DOUBLE_EQ(instance.distances[0][1], 1.0);
  EXPECT_DOUBLE_EQ(instance.distances[0][2], std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(instance.distances[2][0], std::sqrt(2.0));  // symmetric
  EXPECT_DOUBLE_EQ(instance.distances[3][3], 0.0);
  // Unit square: the optimal (perimeter) tour has length 4.
  EXPECT_NEAR(tsp_heuristic(instance).length, 4.0, 1e-9);
}

TEST(TspIo, RejectsBadInputs) {
  std::stringstream too_few("2\n0 0\n1 1\n");
  EXPECT_NE(diagnostic_of([&] { read_tsp_coords(too_few); })
                .find("at least 3"),
            std::string::npos);
  std::stringstream truncated("3\n0 0\n1 1\n");
  EXPECT_NE(diagnostic_of([&] { read_tsp_coords(truncated); })
                .find("end of input"),
            std::string::npos);
  std::stringstream trailing("3\n0 0\n1 0\n0 1\n5 5\n");
  EXPECT_NE(diagnostic_of([&] { read_tsp_coords(trailing); })
                .find("trailing"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// TSPLIB (EUC_2D subset)
// ---------------------------------------------------------------------------

const char* const kTsplibSquare =
    "NAME : square4\n"
    "COMMENT : unit-ish square, with a colon: in the comment\n"
    "TYPE : TSP\n"
    "DIMENSION : 4\n"
    "EDGE_WEIGHT_TYPE : EUC_2D\n"
    "NODE_COORD_SECTION\n"
    "1 0 0\n"
    "2 3 0\n"
    "3 3 4\n"
    "4 0 4\n"
    "EOF\n";

TEST(TsplibIo, ParsesHeadersAndRoundsEuc2dDistances) {
  std::stringstream in(kTsplibSquare);
  const auto instance = read_tsplib(in);
  ASSERT_EQ(instance.num_cities(), 4u);
  EXPECT_DOUBLE_EQ(instance.distances[0][1], 3.0);
  EXPECT_DOUBLE_EQ(instance.distances[1][2], 4.0);
  // TSPLIB EUC_2D rounds to the nearest integer: sqrt(3^2 + 4^2) = 5.
  EXPECT_DOUBLE_EQ(instance.distances[0][2], 5.0);
  EXPECT_DOUBLE_EQ(instance.distances[2][0], 5.0);  // symmetric
  // 3-4-5 rectangle perimeter tour.
  EXPECT_NEAR(tsp_heuristic(instance).length, 14.0, 1e-9);
}

TEST(TsplibIo, NintRoundingIsPartOfTheFormat) {
  // d(1,2) = sqrt(2) ~ 1.414 -> 1; d(1,3) = sqrt(8) ~ 2.83 -> 3.
  std::stringstream in(
      "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n"
      "1 0 0\n2 1 1\n3 2 2\nEOF\n");
  const auto instance = read_tsplib(in);
  EXPECT_DOUBLE_EQ(instance.distances[0][1], 1.0);
  EXPECT_DOUBLE_EQ(instance.distances[0][2], 3.0);
}

TEST(TsplibIo, AcceptsOutOfOrderIdsAndNoEofTerminator) {
  std::stringstream in(
      "DIMENSION : 3\n"
      "EDGE_WEIGHT_TYPE : EUC_2D\n"
      "NODE_COORD_SECTION\n"
      "3 0 4\n"
      "1 0 0\n"
      "2 3 0\n");
  const auto instance = read_tsplib(in);
  ASSERT_EQ(instance.num_cities(), 3u);
  EXPECT_DOUBLE_EQ(instance.distances[0][1], 3.0);  // ids landed in place
  EXPECT_DOUBLE_EQ(instance.distances[0][2], 4.0);
  EXPECT_DOUBLE_EQ(instance.distances[1][2], 5.0);
}

TEST(TsplibIo, MalformedInputsNameTheLine) {
  std::stringstream geo(
      "DIMENSION : 3\nEDGE_WEIGHT_TYPE : GEO\nNODE_COORD_SECTION\n");
  const auto geo_diag = diagnostic_of([&] { read_tsplib(geo, "t.tsp"); });
  EXPECT_NE(geo_diag.find("t.tsp:2"), std::string::npos);
  EXPECT_NE(geo_diag.find("GEO"), std::string::npos);

  // strtoull would wrap "-4" to a huge value; the reader must reject the
  // sign with a line-numbered diagnostic, not die allocating 2^64 points.
  std::stringstream negative(
      "DIMENSION : -4\nEDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n");
  const auto neg_diag =
      diagnostic_of([&] { read_tsplib(negative, "n.tsp"); });
  EXPECT_NE(neg_diag.find("n.tsp:1"), std::string::npos);
  EXPECT_NE(neg_diag.find("not a non-negative integer"), std::string::npos);

  std::stringstream no_dim(
      "EDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n1 0 0\n");
  EXPECT_NE(diagnostic_of([&] { read_tsplib(no_dim); })
                .find("before DIMENSION"),
            std::string::npos);

  std::stringstream no_type("DIMENSION : 3\nNODE_COORD_SECTION\n1 0 0\n");
  EXPECT_NE(diagnostic_of([&] { read_tsplib(no_type); })
                .find("EDGE_WEIGHT_TYPE"),
            std::string::npos);

  std::stringstream atsp(
      "TYPE : ATSP\nDIMENSION : 3\nEDGE_WEIGHT_TYPE : EUC_2D\n");
  EXPECT_NE(diagnostic_of([&] { read_tsplib(atsp); })
                .find("unsupported TYPE"),
            std::string::npos);

  std::stringstream truncated(
      "DIMENSION : 3\nEDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n"
      "1 0 0\n2 1 1\n");
  EXPECT_NE(diagnostic_of([&] { read_tsplib(truncated); })
                .find("end of input"),
            std::string::npos);

  std::stringstream duplicate(
      "DIMENSION : 3\nEDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n"
      "1 0 0\n1 1 1\n3 2 2\n");
  const auto dup_diag =
      diagnostic_of([&] { read_tsplib(duplicate, "d.tsp"); });
  EXPECT_NE(dup_diag.find("d.tsp:5"), std::string::npos);
  EXPECT_NE(dup_diag.find("duplicate node id 1"), std::string::npos);

  std::stringstream out_of_range(
      "DIMENSION : 3\nEDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n"
      "1 0 0\n2 1 1\n7 2 2\n");
  EXPECT_NE(diagnostic_of([&] { read_tsplib(out_of_range); })
                .find("outside 1..3"),
            std::string::npos);

  std::stringstream trailing(
      "DIMENSION : 3\nEDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n"
      "1 0 0\n2 1 1\n3 2 2\nEOF\n5 5 5\n");
  EXPECT_NE(diagnostic_of([&] { read_tsplib(trailing); })
                .find("trailing"),
            std::string::npos);
}

TEST(TsplibIo, SniffingLoaderHandlesBothFormats) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path();
  const auto tsplib_path = (dir / "fecim_sniff_test.tsp").string();
  const auto coords_path = (dir / "fecim_sniff_test.xy").string();
  {
    std::ofstream out(tsplib_path);
    out << kTsplibSquare;
  }
  {
    std::ofstream out(coords_path);
    out << "4\n0 0\n3 0\n3 4\n0 4\n";
  }
  const auto from_tsplib = read_tsp_file(tsplib_path);
  const auto from_coords = read_tsp_file(coords_path);
  ASSERT_EQ(from_tsplib.num_cities(), 4u);
  ASSERT_EQ(from_coords.num_cities(), 4u);
  // Same geometry; TSPLIB rounds, the plain list keeps exact distances --
  // both integral on a 3-4-5 rectangle.
  for (std::size_t u = 0; u < 4; ++u)
    for (std::size_t v = 0; v < 4; ++v)
      EXPECT_DOUBLE_EQ(from_tsplib.distances[u][v],
                       from_coords.distances[u][v]);
  fs::remove(tsplib_path);
  fs::remove(coords_path);
}

// ---------------------------------------------------------------------------
// QUBO (QPLIB subset / COO triplets)
// ---------------------------------------------------------------------------

TEST(QuboIo, ParsesDirectivesHeaderAndTriplets) {
  std::stringstream in(
      "# 2-variable toy\n"
      "maximize\n"
      "constant 1.5\n"
      "2 3\n"
      "1 1 2\n"
      "2 2 -1\n"
      "1 2 3\n");
  const auto instance = read_qubo(in);
  EXPECT_TRUE(instance.maximize);
  EXPECT_EQ(instance.model.num_variables(), 2u);
  EXPECT_DOUBLE_EQ(instance.model.constant(), 1.5);
  // H(x) = 2 x1 - x2 + 3 x1 x2 + 1.5
  EXPECT_DOUBLE_EQ(instance.model.value(std::vector<std::uint8_t>{1, 0}),
                   3.5);
  EXPECT_DOUBLE_EQ(instance.model.value(std::vector<std::uint8_t>{1, 1}),
                   5.5);
}

TEST(QuboIo, MirroredAndDuplicateTripletsAccumulate) {
  std::stringstream in("2 3\n1 2 1\n2 1 2\n1 2 0.5\n");
  const auto instance = read_qubo(in);
  EXPECT_DOUBLE_EQ(instance.model.value(std::vector<std::uint8_t>{1, 1}),
                   3.5);
}

TEST(QuboIo, WriteReadRoundTripIsLossless) {
  const auto original = random_qubo(12, 4.0, 99);
  std::stringstream buffer;
  write_qubo(original, buffer);
  const auto parsed = read_qubo(buffer);
  EXPECT_EQ(parsed.maximize, original.maximize);
  EXPECT_EQ(parsed.model.num_variables(), original.model.num_variables());
  EXPECT_EQ(parsed.model.q().nonzeros(), original.model.q().nonzeros());
  // Exact value agreement on a deterministic set of assignments.
  std::vector<std::uint8_t> x(12, 0);
  for (std::size_t trial = 0; trial < 32; ++trial) {
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = static_cast<std::uint8_t>((trial * 7 + i * 3) % 2);
    EXPECT_DOUBLE_EQ(parsed.model.value(x), original.model.value(x));
  }
}

TEST(QuboIo, MalformedInputsNameTheLine) {
  std::stringstream empty("# only comments\n");
  EXPECT_NE(diagnostic_of([&] { read_qubo(empty); }).find("empty input"),
            std::string::npos);
  std::stringstream bad_header("minimize\nfoo bar\n");
  EXPECT_NE(diagnostic_of([&] { read_qubo(bad_header); }).find("qubo:2"),
            std::string::npos);
  std::stringstream out_of_range("2 1\n1 3 1\n");
  EXPECT_NE(diagnostic_of([&] { read_qubo(out_of_range); })
                .find("out of range"),
            std::string::npos);
  std::stringstream truncated("2 2\n1 2 1\n");
  EXPECT_NE(diagnostic_of([&] { read_qubo(truncated); })
                .find("end of input"),
            std::string::npos);
  std::stringstream trailing("2 1\n1 2 1\n1 1 1\n");
  EXPECT_NE(diagnostic_of([&] { read_qubo(trailing); }).find("trailing"),
            std::string::npos);
}

TEST(QuboIo, ReferenceValueBracketsTheOptimum) {
  // Max independent set on C8: optimum H* = -4; every 1-opt local minimum
  // is a maximal independent set, so the multi-restart reference lies in
  // [H*, -3].
  fecim::linalg::CsrMatrix::Builder builder(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    builder.add(i, i, -1.0);
    builder.add(std::min(i, (i + 1) % 8), std::max(i, (i + 1) % 8), 2.0);
  }
  const fecim::ising::QuboModel model(builder.build());
  const auto [spins, ground] =
      model.to_ising().brute_force_ground_state();
  EXPECT_NEAR(ground, -4.0, 1e-9);
  const double reference = qubo_reference_value(model, false, 32, 7);
  EXPECT_GE(reference, ground - 1e-9);
  EXPECT_LE(reference, -3.0 + 1e-9);
}

TEST(QuboIo, RandomQuboIsSeedDeterministic) {
  const auto a = random_qubo(32, 6.0, 11);
  const auto b = random_qubo(32, 6.0, 11);
  EXPECT_EQ(a.model.q().nonzeros(), b.model.q().nonzeros());
  std::vector<std::uint8_t> x(32, 1);
  EXPECT_DOUBLE_EQ(a.model.value(x), b.model.value(x));
  EXPECT_EQ(a.model.q().nonzeros(), 32u + 96u);  // diagonal + 32*6/2 pairs
}

TEST(QuboProblem, MaximizeInstancesAnnealTheNegatedModel) {
  // Annealers minimize Ising energy, so a maximize QUBO must be encoded as
  // -H: the model's ground state has to decode to the H-MAXIMUM, not the
  // minimum.  H = x1 + x2 - 3 x1 x2 has max 1 (either single bit) and min
  // -1 (both bits) -- a sign-naive encoding would anneal to -1.
  std::stringstream in("maximize\n2 3\n1 1 1\n2 2 1\n1 2 -3\n");
  const auto problem = fecim::problems::make_qubo_problem(
      "maximize-toy", read_qubo(in), 8, 1);
  EXPECT_EQ(problem.sense, fecim::core::ObjectiveSense::kMaximize);
  EXPECT_DOUBLE_EQ(problem.reference_objective, 1.0);
  const auto [spins, energy] = problem.model->brute_force_ground_state();
  EXPECT_DOUBLE_EQ(problem.decode(spins).objective, 1.0);
  EXPECT_DOUBLE_EQ(energy, -1.0);  // annealed energy is -H at the optimum
}

// ---------------------------------------------------------------------------
// mmap-vs-istream differential: the zero-copy memory source behind the
// *_file readers must be observationally identical to the istream source --
// same parsed instances, same <file>:<line> diagnostics -- for every
// fixture in this suite, including files without a trailing newline and
// empty files.
// ---------------------------------------------------------------------------

class TempFixture {
 public:
  TempFixture(const std::string& name, const std::string& text)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::ofstream out(path_, std::ios::binary);
    out << text;  // binary: bytes land exactly as written, no newline edits
  }
  ~TempFixture() { std::filesystem::remove(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Parse `text` through both sources with the same context and require the
/// same outcome: either both succeed (caller compares the instances) or
/// both throw contract_error with byte-identical messages.
template <typename ReadView, typename ReadStream>
void expect_same_diagnostic(const std::string& text,
                            const std::string& context, ReadView&& view,
                            ReadStream&& stream) {
  const auto from_view = diagnostic_of([&] {
    view(std::string_view(text), context);
  });
  const auto from_stream = diagnostic_of([&] {
    std::stringstream in(text);
    stream(in, context);
  });
  EXPECT_EQ(from_view, from_stream);
}

void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (const auto& e : a.edges())
    EXPECT_DOUBLE_EQ(b.edge_weight(e.u, e.v), e.weight);
}

TEST(MmapDifferential, GsetFixturesParseIdentically) {
  const std::string fixtures[] = {
      "% rudy-style comment\n# hash comment\n\n3 2\n"
      "  # indented comment between edges\n1 2 1.5\n\n2 3 -1\n",
      "2 1\n1 2\n",
      "2 2\n1 2 1.5\n2 1 2.5\n",
      "2 1\n1 2 0.25",  // no trailing newline: final line still counts
  };
  std::size_t k = 0;
  for (const auto& text : fixtures) {
    TempFixture file("fecim_mmap_gset_" + std::to_string(k++) + ".txt",
                     text);
    const auto mapped = read_gset_file(file.path());
    std::stringstream in(text);
    expect_same_graph(mapped, read_gset(in));
  }
}

TEST(MmapDifferential, GsetDiagnosticsMatchLineForLine) {
  const std::string malformed[] = {
      "3 2\n1 2 1\n2 2 1\n",              // self-loop at line 3
      "# header next\n2 1\n1 5 1\n",      // out of range at line 3
      "3 1\n1 2 fast\n",                  // garbage field at line 2
      "3 2\n1 2 1\n",                     // truncated edge list
      "2 1\n1 2 1\n2 1 3\n",              // trailing content
      "",                                 // empty input
      "# only comments\n",                // comments-only input
  };
  for (const auto& text : malformed)
    expect_same_diagnostic(
        text, "g.txt",
        [](std::string_view t, const std::string& c) { read_gset(t, c); },
        [](std::istream& in, const std::string& c) { read_gset(in, c); });
  // The mmap file reader names the path exactly like the istream reader.
  TempFixture file("fecim_mmap_gset_diag.txt", "3 2\n1 2 1\n2 2 1\n");
  const auto message =
      diagnostic_of([&] { read_gset_file(file.path()); });
  EXPECT_NE(message.find(file.path() + ":3"), std::string::npos) << message;
  EXPECT_NE(message.find("self-loop"), std::string::npos) << message;
}

TEST(MmapDifferential, DimacsKnapsackPartitionParseIdentically) {
  {
    const std::string text =
        "c comment\np edge 3 4\ne 1 2\ne 2 3\ne 1 3\ne 2 1";  // no final \n
    TempFixture file("fecim_mmap_dimacs.col", text);
    std::stringstream in(text);
    expect_same_graph(read_dimacs_coloring_file(file.path()),
                      read_dimacs_coloring(in));
  }
  {
    const std::string text = "# value weight\n3 7.5\n10 5\n7 4\n4 3\n";
    TempFixture file("fecim_mmap_knap.txt", text);
    const auto mapped = read_knapsack_file(file.path());
    std::stringstream in(text);
    const auto streamed = read_knapsack(in);
    ASSERT_EQ(mapped.items.size(), streamed.items.size());
    EXPECT_DOUBLE_EQ(mapped.capacity, streamed.capacity);
    for (std::size_t i = 0; i < mapped.items.size(); ++i) {
      EXPECT_DOUBLE_EQ(mapped.items[i].value, streamed.items[i].value);
      EXPECT_DOUBLE_EQ(mapped.items[i].weight, streamed.items[i].weight);
    }
  }
  {
    const std::string text = "# any layout\n4 5 6\n7\n8";  // no final \n
    TempFixture file("fecim_mmap_part.txt", text);
    const auto mapped = read_partition_file(file.path());
    std::stringstream in(text);
    const auto streamed = read_partition(in);
    ASSERT_EQ(mapped.size(), streamed.size());
    for (std::size_t i = 0; i < mapped.size(); ++i)
      EXPECT_DOUBLE_EQ(mapped[i], streamed[i]);
  }
}

TEST(MmapDifferential, TspSniffingLoaderParsesBothFormatsFromMmap) {
  const std::string coords = "4\n0 0\n3 0\n3 4\n0 4\n";
  TempFixture tsplib_file("fecim_mmap_sniff.tsp", kTsplibSquare);
  TempFixture coords_file("fecim_mmap_sniff.xy", coords);
  const auto from_tsplib = read_tsp_file(tsplib_file.path());
  const auto from_coords = read_tsp_file(coords_file.path());
  std::stringstream tsplib_in(kTsplibSquare);
  std::stringstream coords_in(coords);
  const auto tsplib_streamed = read_tsplib(tsplib_in);
  const auto coords_streamed = read_tsp_coords(coords_in);
  ASSERT_EQ(from_tsplib.num_cities(), tsplib_streamed.num_cities());
  ASSERT_EQ(from_coords.num_cities(), coords_streamed.num_cities());
  for (std::size_t u = 0; u < 4; ++u)
    for (std::size_t v = 0; v < 4; ++v) {
      EXPECT_DOUBLE_EQ(from_tsplib.distances[u][v],
                       tsplib_streamed.distances[u][v]);
      EXPECT_DOUBLE_EQ(from_coords.distances[u][v],
                       coords_streamed.distances[u][v]);
    }
}

TEST(MmapDifferential, QuboParsesAndDiagnosesIdentically) {
  const std::string text =
      "maximize\nconstant 1.5\n2 3\n1 1 2\n2 2 -1\n1 2 3";  // no final \n
  TempFixture file("fecim_mmap_qubo.txt", text);
  const auto mapped = read_qubo_file(file.path());
  std::stringstream in(text);
  const auto streamed = read_qubo(in);
  EXPECT_EQ(mapped.maximize, streamed.maximize);
  EXPECT_DOUBLE_EQ(mapped.model.constant(), streamed.model.constant());
  for (std::size_t trial = 0; trial < 4; ++trial) {
    const std::vector<std::uint8_t> x{
        static_cast<std::uint8_t>(trial & 1),
        static_cast<std::uint8_t>((trial >> 1) & 1)};
    EXPECT_DOUBLE_EQ(mapped.model.value(x), streamed.model.value(x));
  }
  expect_same_diagnostic(
      "2 1\n1 3 1\n", "q.txt",
      [](std::string_view t, const std::string& c) { read_qubo(t, c); },
      [](std::istream& in2, const std::string& c) { read_qubo(in2, c); });
}

TEST(MmapDifferential, EmptyFileBehavesLikeEmptyStream) {
  TempFixture file("fecim_mmap_empty.txt", "");
  const auto from_file = diagnostic_of([&] { read_gset_file(file.path()); });
  EXPECT_NE(from_file.find("empty input"), std::string::npos) << from_file;
  EXPECT_NE(from_file.find(file.path()), std::string::npos) << from_file;
}

TEST(MmapDifferential, MappedFileContract) {
  fecim::problems::io::MappedFile missing;
  EXPECT_FALSE(missing.open("/nonexistent/fecim-no-such-file"));

  TempFixture file("fecim_mmap_view.txt", "alpha\nbeta");
  fecim::problems::io::MappedFile mapped;
  ASSERT_TRUE(mapped.open(file.path()));
  EXPECT_EQ(mapped.view(), "alpha\nbeta");

  TempFixture empty("fecim_mmap_view_empty.txt", "");
  fecim::problems::io::MappedFile mapped_empty;
  ASSERT_TRUE(mapped_empty.open(empty.path()));
  EXPECT_TRUE(mapped_empty.view().empty());
}

TEST(QuboProblem, FactoryDecodesAndKeepsSense) {
  auto instance = random_qubo(16, 4.0, 3);
  instance.maximize = true;
  const auto problem =
      fecim::problems::make_qubo_problem("qubo-16", instance, 8, 3);
  EXPECT_EQ(problem.family, "qubo");
  EXPECT_EQ(problem.sense, fecim::core::ObjectiveSense::kMaximize);
  fecim::core::validate_problem(problem);

  // Decode evaluates H on the first n spins (ancilla stripped) and every
  // assignment is feasible.
  fecim::ising::SpinVector spins(problem.model->num_spins(),
                                 fecim::ising::Spin{1});
  const auto solution = problem.decode(spins);
  EXPECT_TRUE(solution.feasible);
  const std::vector<std::uint8_t> zeros(16, 0);  // sigma=+1 -> x=0
  EXPECT_DOUBLE_EQ(solution.objective, instance.model.value(zeros));
}

}  // namespace
