// End-to-end integration: the full device -> crossbar -> annealer -> cost
// pipeline on real problem classes, plus the headline paper-shape checks at
// reduced scale.
#include <gtest/gtest.h>

#include <cmath>

#include "core/annealer_factory.hpp"
#include "core/ft_calibration.hpp"
#include "core/runner.hpp"
#include "problems/coloring.hpp"
#include "problems/generators.hpp"
#include "problems/knapsack.hpp"
#include "problems/maxcut.hpp"
#include "problems/partition.hpp"

namespace {

using namespace fecim;

TEST(Integration, AnalogAnnealerSolvesMaxCutToOptimum) {
  const auto graph =
      problems::random_graph(16, 4.0, problems::WeightScheme::kUnit, 5);
  const auto exact = problems::brute_force_max_cut(graph);
  const auto model = std::make_shared<const ising::IsingModel>(
      problems::maxcut_to_ising(graph));

  core::StandardSetup setup;
  setup.iterations = 3000;
  const auto annealer =
      core::make_annealer(core::AnnealerKind::kThisWork, model, setup);
  int hits = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto result = annealer->run(seed);
    const double cut = problems::cut_from_energy(graph, result.best_energy);
    hits += std::fabs(cut - exact.cut) < 1e-9;
  }
  EXPECT_GE(hits, 6);
}

TEST(Integration, SolvesKnapsackThroughQuboPipeline) {
  // QUBO -> Ising (fields) -> ancilla -> in-situ annealer.
  const problems::KnapsackInstance instance{
      {{10, 5}, {7, 4}, {4, 3}, {6, 5}}, 9};
  const auto encoding = problems::knapsack_to_qubo(instance);
  const auto folded = std::make_shared<const ising::IsingModel>(
      encoding.qubo.to_ising().with_ancilla());

  core::StandardSetup setup;
  setup.iterations = 8000;
  const auto annealer =
      core::make_annealer(core::AnnealerKind::kThisWork, folded, setup);
  double best_value = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto result = annealer->run(seed);
    auto spins = result.best_spins;
    spins.pop_back();  // strip ancilla
    const auto solution = problems::decode_knapsack(
        instance, encoding, ising::binary_from_spins(spins));
    if (solution.feasible) best_value = std::max(best_value, solution.value);
  }
  EXPECT_GE(best_value, 0.8 * problems::knapsack_optimal_value(instance));
}

TEST(Integration, SolvesGraphColoring) {
  const auto graph =
      problems::random_graph(10, 2.4, problems::WeightScheme::kUnit, 8);
  const auto encoding = problems::coloring_to_qubo(graph, 3, 2.0);
  const auto folded = std::make_shared<const ising::IsingModel>(
      encoding.qubo.to_ising().with_ancilla());

  core::StandardSetup setup;
  setup.iterations = 20000;
  // Constraint-satisfaction landscapes prefer a softer comparator than the
  // Max-Cut default (higher uphill mobility for recoloring moves).
  setup.acceptance_gain = 4.0;
  const auto annealer =
      core::make_annealer(core::AnnealerKind::kThisWork, folded, setup);
  std::size_t best_violations = 1000;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto spins = annealer->run(seed).best_spins;
    spins.pop_back();
    best_violations = std::min(
        best_violations, problems::coloring_violations(
                             graph, encoding, ising::binary_from_spins(spins)));
  }
  EXPECT_EQ(best_violations, 0u);  // a valid 3-coloring is found
}

TEST(Integration, SolvesNumberPartitioning) {
  const std::vector<double> numbers{7, 5, 4, 3, 3, 2, 2, 1, 1};  // total 28
  const auto model = std::make_shared<const ising::IsingModel>(
      problems::partition_to_ising(numbers));

  core::StandardSetup setup;
  setup.iterations = 4000;
  const auto annealer =
      core::make_annealer(core::AnnealerKind::kThisWork, model, setup);
  double best = 1e18;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto result = annealer->run(seed);
    best = std::min(best,
                    problems::partition_imbalance(numbers, result.best_spins));
  }
  EXPECT_LE(best, 2.0);  // perfect split is 0; allow near-miss
}

TEST(Integration, PaperShapeAtReducedScale) {
  // Miniature Fig. 8/9/10: dense instance, small budget -- this work wins
  // quality at ~n/|F| lower ADC energy and ~8x lower latency.
  auto instance = core::make_maxcut_instance(
      "mini", problems::random_graph(256, 24.0,
                                     problems::WeightScheme::kUnit, 17));
  core::StandardSetup setup;
  setup.iterations = 300;
  core::CampaignConfig config;
  config.runs = 6;

  const auto ours = core::run_maxcut_campaign(
      *core::make_annealer(core::AnnealerKind::kThisWork, instance.model,
                           setup),
      instance, config);
  const auto fpga = core::run_maxcut_campaign(
      *core::make_annealer(core::AnnealerKind::kCimFpga, instance.model,
                           setup),
      instance, config);
  const auto asic = core::run_maxcut_campaign(
      *core::make_annealer(core::AnnealerKind::kCimAsic, instance.model,
                           setup),
      instance, config);

  // Quality: the budget-matched in-situ annealer beats the fixed-decay
  // baselines (which are still hot after 300 iterations).
  EXPECT_GT(ours.normalized.mean(), fpga.normalized.mean());

  // Energy: ~n / |F| = 128x, plus the e^x elimination on top.
  const double fpga_ratio = fpga.energy.mean() / ours.energy.mean();
  const double asic_ratio = asic.energy.mean() / ours.energy.mean();
  EXPECT_GT(asic_ratio, 100.0);
  EXPECT_LT(asic_ratio, 170.0);
  EXPECT_GT(fpga_ratio, asic_ratio);

  // Latency: ~8x.
  EXPECT_NEAR(fpga.time.mean() / ours.time.mean(), 8.0, 1.5);
}

TEST(Integration, DeviceCalibrationFeedsAnnealer) {
  // The annealer's schedule and the device's normalized current must agree
  // on f within the calibration error across the whole ladder.
  const ising::FractionalFactor factor;
  const circuit::BgDac dac;
  const auto report = core::evaluate_ft_approximation(
      device::DgFefetParams{}, factor, dac);
  for (const auto& sample : report.samples) {
    EXPECT_NEAR(sample.device, sample.target, report.max_error + 1e-12);
  }
}

TEST(Integration, VariationRobustness) {
  // The evaluation's robustness claim: moderate device variation barely
  // moves the success rate.
  auto instance = core::make_maxcut_instance(
      "robust", problems::random_graph(200, 24.0,
                                       problems::WeightScheme::kUnit, 23));
  core::CampaignConfig config;
  config.runs = 8;

  core::StandardSetup clean;
  clean.iterations = 400;
  clean.variation = {};
  core::StandardSetup noisy = clean;
  noisy.variation = {0.03, 0.05, 0.0005, 0.0};

  const auto clean_result = core::run_maxcut_campaign(
      *core::make_annealer(core::AnnealerKind::kThisWork, instance.model,
                           clean),
      instance, config);
  const auto noisy_result = core::run_maxcut_campaign(
      *core::make_annealer(core::AnnealerKind::kThisWork, instance.model,
                           noisy),
      instance, config);
  EXPECT_NEAR(noisy_result.normalized.mean(),
              clean_result.normalized.mean(), 0.05);
}

}  // namespace
