// Tests for the Ising model: energy evaluation, delta-energy identity,
// ancilla folding, brute force, spins, flip sets.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "ising/flipset.hpp"
#include "ising/ising_model.hpp"
#include "util/rng.hpp"

namespace {

using fecim::ising::IsingModel;
using fecim::ising::SpinVector;
using fecim::linalg::CsrMatrix;

IsingModel random_model(std::size_t n, double density, bool with_fields,
                        fecim::util::Rng& rng) {
  CsrMatrix::Builder builder(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(density))
        builder.add_symmetric(i, j, rng.uniform(-1.0, 1.0));
  std::vector<double> h;
  if (with_fields) {
    h.resize(n);
    for (auto& v : h) v = rng.uniform(-0.5, 0.5);
  }
  return IsingModel(builder.build(), std::move(h), rng.uniform(-1.0, 1.0));
}

TEST(Spin, RandomSpinsAreValid) {
  fecim::util::Rng rng(1);
  const auto spins = fecim::ising::random_spins(100, rng);
  EXPECT_TRUE(fecim::ising::is_valid_spins(spins));
}

TEST(Spin, SpinsFromBits) {
  const auto spins = fecim::ising::spins_from_bits(0b101, 3);
  EXPECT_EQ(spins[0], 1);
  EXPECT_EQ(spins[1], -1);
  EXPECT_EQ(spins[2], 1);
}

TEST(Spin, FlipRoundTrip) {
  fecim::util::Rng rng(2);
  auto spins = fecim::ising::random_spins(20, rng);
  const auto original = spins;
  const std::vector<std::uint32_t> flips{1, 5, 7};
  fecim::ising::flip_in_place(spins, flips);
  EXPECT_EQ(fecim::ising::hamming_distance(spins, original), 3u);
  fecim::ising::flip_in_place(spins, flips);
  EXPECT_EQ(spins, original);
}

TEST(IsingModel, RejectsAsymmetricCouplings) {
  CsrMatrix::Builder builder(2, 2);
  builder.add(0, 1, 1.0);  // only one triangle
  EXPECT_THROW(IsingModel(builder.build()), fecim::contract_error);
}

TEST(IsingModel, RejectsNonzeroDiagonal) {
  CsrMatrix::Builder builder(2, 2);
  builder.add(0, 0, 1.0);
  EXPECT_THROW(IsingModel(builder.build()), fecim::contract_error);
}

TEST(IsingModel, EnergyMatchesManualComputation) {
  CsrMatrix::Builder builder(3, 3);
  builder.add_symmetric(0, 1, 2.0);
  builder.add_symmetric(1, 2, -1.0);
  const IsingModel model(builder.build(), {0.5, 0.0, -0.5}, 3.0);
  const SpinVector spins{1, -1, 1};
  // quadratic: 2*(2*1*-1) + 2*(-1*-1*1) = -4 + 2 = -2
  // linear: 0.5*1 + (-0.5)*1 = 0 ; constant 3
  EXPECT_DOUBLE_EQ(model.energy(spins), 1.0);
}

class DeltaEnergyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DeltaEnergyTest, MatchesFullRecomputation) {
  const auto [n, t_param] = GetParam();
  const std::size_t t = std::min(n, t_param);  // cannot flip more than n
  fecim::util::Rng rng(n * 31 + t);
  const auto model = random_model(n, 0.3, true, rng);
  auto spins = fecim::ising::random_spins(n, rng);

  for (int trial = 0; trial < 25; ++trial) {
    const auto flips = fecim::ising::random_flip_set(n, t, rng);
    const double before = model.energy(spins);
    const double delta = model.delta_energy(spins, flips);
    const auto flipped = fecim::ising::flipped_copy(spins, flips);
    const double after = model.energy(flipped);
    EXPECT_NEAR(delta, after - before, 1e-9)
        << "n=" << n << " t=" << t << " trial=" << trial;
    spins = flipped;  // keep walking the state space
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndFlips, DeltaEnergyTest,
    ::testing::Combine(::testing::Values<std::size_t>(4, 10, 25, 60),
                       ::testing::Values<std::size_t>(1, 2, 3, 7)));

TEST(IsingModel, IncrementalVmvIsQuarterDeltaWithoutFields) {
  fecim::util::Rng rng(77);
  const auto model = random_model(30, 0.4, false, rng);
  const auto spins = fecim::ising::random_spins(30, rng);
  const auto flips = fecim::ising::random_flip_set(30, 3, rng);
  EXPECT_NEAR(4.0 * model.incremental_vmv(spins, flips),
              model.delta_energy(spins, flips), 1e-12);
}

TEST(IsingModel, DeltaRejectsDuplicateFlips) {
  fecim::util::Rng rng(78);
  const auto model = random_model(10, 0.5, false, rng);
  const auto spins = fecim::ising::random_spins(10, rng);
  const std::vector<std::uint32_t> duplicate{3, 3};
  EXPECT_THROW(model.delta_energy(spins, duplicate), fecim::contract_error);
}

TEST(IsingModel, AncillaPreservesEnergy) {
  fecim::util::Rng rng(79);
  const auto model = random_model(12, 0.4, true, rng);
  ASSERT_TRUE(model.has_fields());
  const auto folded = model.with_ancilla();
  EXPECT_FALSE(folded.has_fields());
  EXPECT_TRUE(folded.has_ancilla());
  EXPECT_EQ(folded.num_spins(), 13u);
  EXPECT_EQ(folded.num_flippable(), 12u);

  for (int trial = 0; trial < 50; ++trial) {
    auto spins = fecim::ising::random_spins(12, rng);
    auto extended = spins;
    extended.push_back(fecim::ising::Spin{1});
    EXPECT_NEAR(model.energy(spins), folded.energy(extended), 1e-9);
  }
}

TEST(IsingModel, AncillaNoopWithoutFields) {
  fecim::util::Rng rng(80);
  const auto model = random_model(8, 0.5, false, rng);
  const auto folded = model.with_ancilla();
  EXPECT_EQ(folded.num_spins(), 8u);
  EXPECT_FALSE(folded.has_ancilla());
}

TEST(IsingModel, BruteForceFindsGlobalMinimum) {
  fecim::util::Rng rng(81);
  const auto model = random_model(10, 0.5, true, rng);
  const auto [best, energy] = model.brute_force_ground_state();
  // Exhaustive cross-check.
  for (std::uint64_t bits = 0; bits < (1u << 10); ++bits) {
    const auto spins = fecim::ising::spins_from_bits(bits, 10);
    EXPECT_GE(model.energy(spins), energy - 1e-9);
  }
  EXPECT_NEAR(model.energy(best), energy, 1e-12);
}

TEST(FlipSet, RandomSetRespectsBounds) {
  fecim::util::Rng rng(90);
  for (int trial = 0; trial < 100; ++trial) {
    const auto flips = fecim::ising::random_flip_set(20, 4, rng);
    ASSERT_EQ(flips.size(), 4u);
    for (const auto f : flips) EXPECT_LT(f, 20u);
  }
}

TEST(FlipSet, SweepCoversAllIndices) {
  fecim::ising::SweepFlipGenerator sweep(10, 3);
  std::vector<int> touched(10, 0);
  for (int i = 0; i < 10; ++i)
    for (const auto f : sweep.next()) ++touched[f];
  for (const int t : touched) EXPECT_GE(t, 2);  // 30 picks over 10 slots
}

TEST(FlipSet, RejectsOversizedRequests) {
  fecim::util::Rng rng(91);
  EXPECT_THROW(fecim::ising::random_flip_set(3, 4, rng),
               fecim::contract_error);
}

}  // namespace
