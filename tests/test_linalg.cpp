// Tests for fecim::linalg -- dense/CSR matrices, vector kernels, solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/csr_matrix.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/linear_solver.hpp"
#include "linalg/vec_ops.hpp"
#include "util/rng.hpp"

namespace {

using fecim::linalg::CsrMatrix;
using fecim::linalg::DenseMatrix;

CsrMatrix random_spd(std::size_t n, fecim::util::Rng& rng) {
  // Diagonally dominant symmetric matrix => SPD.
  CsrMatrix::Builder builder(n, n);
  std::vector<double> diag(n, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.3)) {
        const double v = rng.uniform(-1.0, 1.0);
        builder.add_symmetric(i, j, v);
        diag[i] += std::fabs(v);
        diag[j] += std::fabs(v);
      }
  for (std::size_t i = 0; i < n; ++i) builder.add(i, i, diag[i]);
  return builder.build();
}

TEST(DenseMatrix, IdentityMultiply) {
  const auto eye = DenseMatrix<double>::identity(4);
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y(4);
  eye.multiply(x, y);
  EXPECT_EQ(x, y);
}

TEST(DenseMatrix, VmvMatchesManual) {
  DenseMatrix<double> m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const std::vector<double> x{1, -1};
  const std::vector<double> y{2, 1};
  // x^T M y = 1*(1*2+2*1) - 1*(3*2+4*1) = 4 - 10 = -6
  EXPECT_DOUBLE_EQ(m.vmv(x, y), -6.0);
}

TEST(DenseMatrix, SymmetryCheck) {
  DenseMatrix<double> m(2, 2);
  m(0, 1) = 1.0;
  EXPECT_FALSE(m.is_symmetric());
  m(1, 0) = 1.0;
  EXPECT_TRUE(m.is_symmetric());
}

TEST(CsrBuilder, MergesDuplicatesAndDropsZeros) {
  CsrMatrix::Builder builder(3, 3);
  builder.add(0, 1, 2.0);
  builder.add(0, 1, 3.0);
  builder.add(1, 2, 5.0);
  builder.add(1, 2, -5.0);  // cancels to zero -> dropped
  const auto m = builder.build();
  EXPECT_EQ(m.nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
}

TEST(CsrMatrix, AtReturnsZeroForMissing) {
  CsrMatrix::Builder builder(2, 2);
  builder.add(0, 0, 1.0);
  const auto m = builder.build();
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(CsrMatrix, MultiplyMatchesDense) {
  fecim::util::Rng rng(5);
  const auto sparse = random_spd(20, rng);
  const auto dense = sparse.to_dense();
  std::vector<double> x(20);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> ys(20), yd(20);
  sparse.multiply(x, ys);
  dense.multiply(x, yd);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(CsrMatrix, VmvMatchesDense) {
  fecim::util::Rng rng(6);
  const auto sparse = random_spd(15, rng);
  const auto dense = sparse.to_dense();
  std::vector<double> x(15), y(15);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : y) v = rng.uniform(-1, 1);
  EXPECT_NEAR(sparse.vmv(x, y), dense.vmv(x, y), 1e-12);
}

TEST(CsrMatrix, SymmetryDetection) {
  CsrMatrix::Builder sym(3, 3);
  sym.add_symmetric(0, 2, 1.5);
  EXPECT_TRUE(sym.build().is_symmetric());

  CsrMatrix::Builder asym(3, 3);
  asym.add(0, 2, 1.5);
  EXPECT_FALSE(asym.build().is_symmetric());
}

TEST(CsrMatrix, MaxAbsValue) {
  CsrMatrix::Builder builder(2, 2);
  builder.add(0, 1, -7.0);
  builder.add(1, 0, 2.0);
  EXPECT_DOUBLE_EQ(builder.build().max_abs_value(), 7.0);
}

TEST(VecOps, DotAxpyNorm) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(fecim::linalg::dot(a, b), 32.0);
  fecim::linalg::axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  EXPECT_DOUBLE_EQ(fecim::linalg::norm2(std::vector<double>{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(fecim::linalg::max_abs(std::vector<double>{-9, 2}), 9.0);
}

TEST(VecOps, Hadamard) {
  const auto h = fecim::linalg::hadamard(std::vector<double>{1, 2},
                                         std::vector<double>{3, -4});
  EXPECT_DOUBLE_EQ(h[0], 3.0);
  EXPECT_DOUBLE_EQ(h[1], -8.0);
}

class SolverTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolverTest, ConjugateGradientSolvesSpd) {
  fecim::util::Rng rng(GetParam());
  const std::size_t n = 10 + GetParam() * 7;
  const auto a = random_spd(n, rng);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-2, 2);
  std::vector<double> b(n);
  a.multiply(x_true, b);

  std::vector<double> x(n, 0.0);
  const auto report = fecim::linalg::conjugate_gradient(a, b, x);
  EXPECT_TRUE(report.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST_P(SolverTest, GaussSeidelAgreesWithCg) {
  fecim::util::Rng rng(GetParam() + 100);
  const std::size_t n = 8 + GetParam() * 5;
  const auto a = random_spd(n, rng);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1, 1);

  std::vector<double> x_cg(n, 0.0), x_gs(n, 0.0);
  EXPECT_TRUE(fecim::linalg::conjugate_gradient(a, b, x_cg).converged);
  EXPECT_TRUE(fecim::linalg::gauss_seidel(a, b, x_gs).converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_cg[i], x_gs[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolverTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Solver, TinySystemsWithTinyScale) {
  // Regression: nano-ampere-scale systems must still converge to relative
  // tolerance (the MNA ladder operates at 1e-8-level conductances).
  CsrMatrix::Builder builder(2, 2);
  builder.add(0, 0, 2e-8);
  builder.add_symmetric(0, 1, -1e-8);
  builder.add(1, 1, 2e-8);
  const auto a = builder.build();
  const std::vector<double> b{1e-8, 0.0};
  std::vector<double> x(2, 0.0);
  const auto report = fecim::linalg::conjugate_gradient(a, b, x);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(x[0], 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(x[1], 1.0 / 3.0, 1e-6);
}

}  // namespace
