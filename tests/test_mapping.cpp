// Crossbar physical mapping and MUX-slot accounting -- the mechanism behind
// the paper's ~8x latency reduction.
#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "crossbar/mapping.hpp"

namespace {

using fecim::crossbar::CrossbarMapping;
using fecim::crossbar::MappingConfig;

TEST(Mapping, Dimensions) {
  const CrossbarMapping mapping(1000, 1, {8, 8, true});
  EXPECT_EQ(mapping.physical_rows(), 1000u);
  EXPECT_EQ(mapping.physical_columns(), 8000u);  // n * k
  EXPECT_EQ(mapping.num_cells(), 8'000'000u);
  const CrossbarMapping two_planes(1000, 2, {8, 8, true});
  EXPECT_EQ(two_planes.physical_columns(), 16000u);
}

TEST(Mapping, PhysicalColumnLayoutIsBitPlaneMajor) {
  const CrossbarMapping mapping(100, 2, {4, 8, false});
  EXPECT_EQ(mapping.physical_column(0, 0, 5), 5u);
  EXPECT_EQ(mapping.physical_column(0, 1, 5), 105u);
  EXPECT_EQ(mapping.physical_column(1, 0, 5), 405u);
  EXPECT_EQ(mapping.mux_group(15), 1u);
}

TEST(Mapping, BlockedGroupingCollidesAdjacentColumns) {
  const CrossbarMapping mapping(64, 1, {8, 8, false});
  EXPECT_EQ(mapping.group_of_logical(0), mapping.group_of_logical(7));
  EXPECT_NE(mapping.group_of_logical(7), mapping.group_of_logical(8));
  const std::vector<std::uint32_t> adjacent{3, 4};
  EXPECT_EQ(mapping.slots_for_flips(adjacent), 2u);
}

TEST(Mapping, InterleavedGroupingSeparatesAdjacentColumns) {
  const CrossbarMapping mapping(64, 1, {8, 8, true});
  EXPECT_NE(mapping.group_of_logical(3), mapping.group_of_logical(4));
  const std::vector<std::uint32_t> adjacent{3, 4};
  EXPECT_EQ(mapping.slots_for_flips(adjacent), 1u);
  // Collision happens at stride #groups = 8.
  const std::vector<std::uint32_t> stride{3, 11};
  EXPECT_EQ(mapping.slots_for_flips(stride), 2u);
}

TEST(Mapping, SlotsNeverExceedFlipCountOrMuxRatio) {
  const CrossbarMapping mapping(128, 1, {8, 8, true});
  const std::vector<std::uint32_t> flips{0, 16, 32, 48};  // all group 0
  EXPECT_EQ(mapping.slots_for_flips(flips), 4u);
  EXPECT_EQ(mapping.slots_full_array(), 8u);
}

TEST(Mapping, EmptyFlipsNeedNoSlots) {
  const CrossbarMapping mapping(16, 1, {8, 8, true});
  EXPECT_EQ(mapping.slots_for_flips({}), 0u);
}

TEST(Mapping, EightXLatencyStory) {
  // The paper's Fig. 9 mechanism: a direct-E pass senses 8 slots per group;
  // an incremental pass with well-spread flips senses 1.
  const CrossbarMapping mapping(3000, 1, {8, 8, true});
  const std::vector<std::uint32_t> spread{100, 2075};
  EXPECT_EQ(mapping.slots_for_flips(spread), 1u);
  EXPECT_EQ(mapping.slots_full_array() / mapping.slots_for_flips(spread), 8u);
}

TEST(Mapping, RaggedSizesStillGroupWithinMuxRatio) {
  // n not divisible by the MUX ratio: group sizes stay <= ratio.
  const CrossbarMapping mapping(13, 1, {8, 8, true});
  std::array<std::size_t, 13> group_count{};
  for (std::uint32_t j = 0; j < 13; ++j)
    ++group_count[mapping.group_of_logical(j)];
  for (const auto count : group_count) EXPECT_LE(count, 8u);
}

TEST(Mapping, ValidatesConfig) {
  EXPECT_THROW(CrossbarMapping(0, 1, {8, 8, true}), fecim::contract_error);
  EXPECT_THROW(CrossbarMapping(10, 3, {8, 8, true}), fecim::contract_error);
  EXPECT_THROW(CrossbarMapping(10, 1, {0, 8, true}), fecim::contract_error);
  EXPECT_THROW(CrossbarMapping(10, 1, {8, 0, true}), fecim::contract_error);
}

}  // namespace
