// Max-Cut mapping identities, brute force, local search, reference cuts.
#include <gtest/gtest.h>

#include <cmath>

#include "problems/generators.hpp"
#include "problems/maxcut.hpp"
#include "util/rng.hpp"

namespace {

using namespace fecim::problems;

TEST(MaxCut, CutValueCountsCrossingWeights) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  const fecim::ising::SpinVector spins{1, -1, -1, 1};
  // crossing: (0,1) and (2,3) -> 1 + 3
  EXPECT_DOUBLE_EQ(cut_value(g, spins), 4.0);
}

class CutEnergyIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CutEnergyIdentity, CutEqualsWMinusEnergyOverTwo) {
  fecim::util::Rng rng(GetParam());
  const auto g = random_graph(40, 6.0, WeightScheme::kPlusMinusOne, GetParam());
  const auto model = maxcut_to_ising(g);
  for (int trial = 0; trial < 40; ++trial) {
    const auto spins = fecim::ising::random_spins(40, rng);
    EXPECT_NEAR(cut_value(g, spins),
                cut_from_energy(g, model.energy(spins)), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutEnergyIdentity,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(MaxCut, GroundStateIsMaximumCut) {
  fecim::util::Rng rng(9);
  const auto g = random_graph(14, 4.0, WeightScheme::kUnit, 9);
  const auto model = maxcut_to_ising(g);
  const auto exact = brute_force_max_cut(g);
  const auto [spins, energy] = model.brute_force_ground_state();
  EXPECT_NEAR(cut_from_energy(g, energy), exact.cut, 1e-9);
}

TEST(MaxCut, BruteForceKnownGraphs) {
  // Even cycle: perfect cut of all edges.
  Graph cycle(6);
  for (std::uint32_t i = 0; i < 6; ++i) cycle.add_edge(i, (i + 1) % 6);
  EXPECT_DOUBLE_EQ(brute_force_max_cut(cycle).cut, 6.0);

  // Triangle: best cut is 2 of 3 edges.
  Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(brute_force_max_cut(triangle).cut, 2.0);

  // Complete bipartite K_{2,3}: all 6 edges cut.
  Graph k23(5);
  for (std::uint32_t a = 0; a < 2; ++a)
    for (std::uint32_t b = 2; b < 5; ++b) k23.add_edge(a, b);
  EXPECT_DOUBLE_EQ(brute_force_max_cut(k23).cut, 6.0);
}

TEST(MaxCut, LocalSearchImprovesAndTerminatesAt1Opt) {
  fecim::util::Rng rng(11);
  const auto g = random_graph(120, 8.0, WeightScheme::kUnit, 11);
  auto spins = fecim::ising::random_spins(120, rng);
  const double before = cut_value(g, spins);
  const double after = local_search_1opt(g, spins);
  EXPECT_GE(after, before);
  EXPECT_DOUBLE_EQ(after, cut_value(g, spins));
  // 1-opt local optimality: no single flip improves.
  for (std::uint32_t v = 0; v < 120; ++v) {
    auto flipped = spins;
    flipped[v] = static_cast<fecim::ising::Spin>(-flipped[v]);
    EXPECT_LE(cut_value(g, flipped), after + 1e-9);
  }
}

TEST(MaxCut, LocalSearchReachesOptimumOnSmallGraphs) {
  fecim::util::Rng rng(13);
  const auto g = random_graph(12, 3.0, WeightScheme::kUnit, 13);
  const auto exact = brute_force_max_cut(g);
  double best = 0.0;
  for (int restart = 0; restart < 30; ++restart) {
    auto spins = fecim::ising::random_spins(12, rng);
    best = std::max(best, local_search_1opt(g, spins));
  }
  EXPECT_DOUBLE_EQ(best, exact.cut);
}

TEST(MaxCut, ReferenceCutCertifiedForBipartiteUnitGraphs) {
  const auto g = toroidal_grid(10, 12, WeightScheme::kUnit, 3);
  // Bipartite with non-negative weights: optimum cuts every edge, no
  // restarts needed.
  EXPECT_DOUBLE_EQ(reference_cut(g, 1, 1), g.total_weight());
}

TEST(MaxCut, ReferenceCutBoundsBruteForce) {
  const auto g = random_graph(14, 4.0, WeightScheme::kUnit, 21);
  const auto exact = brute_force_max_cut(g);
  const double reference = reference_cut(g, 40, 21);
  EXPECT_LE(reference, exact.cut + 1e-9);
  EXPECT_GE(reference, 0.9 * exact.cut);  // 40 restarts on 14 nodes: tight
}

TEST(MaxCut, IsingModelHasHalfWeightCouplings) {
  Graph g(3);
  g.add_edge(0, 1, 3.0);
  const auto model = maxcut_to_ising(g);
  EXPECT_DOUBLE_EQ(model.couplings().at(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(model.couplings().at(1, 0), 1.5);
  EXPECT_FALSE(model.has_fields());
}

}  // namespace
