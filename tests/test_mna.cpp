// MNA ladder solver for the crossbar source line: conservation, limits,
// agreement with closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/mna.hpp"

namespace {

using fecim::circuit::column_node_voltages;
using fecim::circuit::sense_column_current;

TEST(Mna, ZeroResistanceReturnsExactSum) {
  const std::vector<double> currents{1e-6, 2e-6, 3e-6};
  EXPECT_DOUBLE_EQ(sense_column_current(currents, 1.0, 0.0), 6e-6);
}

TEST(Mna, SingleCellClosedForm) {
  // One cell with conductance g through one wire segment r to ground:
  // sensed = g*V / (1 + g*r).
  const double g = 1e-5;
  const double r = 100.0;
  const std::vector<double> currents{g * 1.0};
  const double sensed = sense_column_current(currents, 1.0, r);
  EXPECT_NEAR(sensed, g / (1.0 + g * r), 1e-12);
}

TEST(Mna, SensedBoundedByIdealSum) {
  const std::vector<double> currents(64, 1e-6);
  const double sensed = sense_column_current(currents, 1.0, 2.0);
  EXPECT_LT(sensed, 64e-6);
  EXPECT_GT(sensed, 0.0);
}

TEST(Mna, MonotoneInWireResistance) {
  const std::vector<double> currents(32, 1e-6);
  double previous = 1.0;
  for (const double r : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    const double sensed = sense_column_current(currents, 1.0, r);
    EXPECT_LT(sensed, previous);
    previous = sensed;
  }
}

TEST(Mna, FarCellsAttenuateMore) {
  // Node voltages rise toward the far end: the far cell sees more IR drop.
  const std::vector<double> currents(16, 1e-5);
  const auto voltages = column_node_voltages(currents, 1.0, 50.0);
  for (std::size_t k = 1; k < voltages.size(); ++k)
    EXPECT_LT(voltages[k], voltages[k - 1]);  // node 0 = far end, highest V
}

TEST(Mna, CurrentConservation) {
  // Sensed current equals the sum of effective per-cell currents
  // g_k (V - v_k).
  const std::vector<double> currents{2e-6, 5e-6, 1e-6, 4e-6};
  const double v_drive = 1.0;
  const double r = 200.0;
  const auto voltages = column_node_voltages(currents, v_drive, r);
  double injected = 0.0;
  for (std::size_t k = 0; k < currents.size(); ++k) {
    const double g = currents[k] / v_drive;
    injected += g * (v_drive - voltages[k]);
  }
  EXPECT_NEAR(injected, sense_column_current(currents, v_drive, r), 1e-12);
}

TEST(Mna, InactiveCellsContributeNothing) {
  const std::vector<double> with_zeros{0.0, 1e-6, 0.0, 1e-6};
  const std::vector<double> compact{1e-6, 1e-6};
  // Same active cells in the same relative positions toward the sense end.
  const double a = sense_column_current(with_zeros, 1.0, 1e-3);
  const double b = sense_column_current(compact, 1.0, 1e-3);
  EXPECT_NEAR(a, b, 1e-12);  // negligible wire resistance: both ~ 2e-6
}

TEST(Mna, TinyCurrentsStayAccurate) {
  // Regression for the relative-tolerance fix: nA-scale columns.
  const std::vector<double> currents(8, 1e-9);
  const double sensed = sense_column_current(currents, 1.0, 1.0);
  EXPECT_NEAR(sensed, 8e-9, 1e-12);
}

}  // namespace
