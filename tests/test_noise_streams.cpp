// Counter-keyed noise streams (util::NoiseStream): statistical quality of
// the ziggurat normal sampler (moments + tails over >= 1e6 draws) and the
// keyed-draw contract -- pure functions of (run_seed, site, index),
// batch/scalar agreement, stream independence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using fecim::util::NoiseStream;
namespace site = fecim::util::stream_site;

constexpr std::size_t kDraws = 1 << 20;  // ~1.05e6

std::vector<double> million_normals(std::uint64_t seed, std::uint64_t site_id) {
  std::vector<double> draws(kDraws);
  const NoiseStream stream(seed, site_id);
  stream.normal_fill(0, draws);
  return draws;
}

TEST(NoiseStream, NormalMomentsMatchStandardNormal) {
  const auto draws = million_normals(12345, site::kReadNoise);
  double sum = 0.0;
  for (const double z : draws) sum += z;
  const double mean = sum / static_cast<double>(draws.size());
  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  for (const double z : draws) {
    const double d = z - mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  const auto n = static_cast<double>(draws.size());
  m2 /= n;
  m3 /= n;
  m4 /= n;
  const double skew = m3 / std::pow(m2, 1.5);
  const double excess_kurtosis = m4 / (m2 * m2) - 3.0;

  // Tolerances ~5 standard errors at n = 2^20: se(mean) ~ 1e-3,
  // se(var) ~ sqrt(2/n) ~ 1.4e-3, se(skew) ~ sqrt(6/n) ~ 2.4e-3,
  // se(kurt) ~ sqrt(24/n) ~ 4.8e-3.
  EXPECT_NEAR(mean, 0.0, 5e-3);
  EXPECT_NEAR(m2, 1.0, 7e-3);
  EXPECT_NEAR(skew, 0.0, 1.2e-2);
  EXPECT_NEAR(excess_kurtosis, 0.0, 2.5e-2);
}

TEST(NoiseStream, NormalTailMassIsCorrect) {
  const auto draws = million_normals(777, site::kAdcNoise);
  const auto n = static_cast<double>(draws.size());
  const auto tail_fraction = [&](double threshold) {
    std::size_t count = 0;
    for (const double z : draws) count += std::fabs(z) > threshold;
    return static_cast<double>(count) / n;
  };
  // Two-sided tail masses of N(0,1); tolerances ~5 binomial sigmas.
  EXPECT_NEAR(tail_fraction(1.0), 0.31731, 2.3e-3);
  EXPECT_NEAR(tail_fraction(2.0), 0.04550, 1.1e-3);
  EXPECT_NEAR(tail_fraction(3.0), 2.6998e-3, 2.6e-4);
  EXPECT_NEAR(tail_fraction(4.0), 6.334e-5, 4.0e-5);

  // The ziggurat's explicit tail sampler must actually reach past 4 sigma
  // in a million draws (p ~ 1 - 3e-29 of happening) but never produce the
  // absurd (|z| > 7 at n = 2^20 has p ~ 1e-6).
  const double max_abs = std::fabs(*std::max_element(
      draws.begin(), draws.end(),
      [](double a, double b) { return std::fabs(a) < std::fabs(b); }));
  EXPECT_GT(max_abs, 4.0);
  EXPECT_LT(max_abs, 7.0);
}

TEST(NoiseStream, DrawsArePureFunctionsOfKeyAndIndex) {
  const NoiseStream stream(42, site::kReadNoise);
  // Same (key, index) -> same value, regardless of call order or repetition.
  const double forward_0 = stream.normal(0);
  const double forward_9 = stream.normal(9);
  EXPECT_EQ(stream.normal(9), forward_9);
  EXPECT_EQ(stream.normal(0), forward_0);
  const NoiseStream same(42, site::kReadNoise);
  EXPECT_EQ(same.normal(0), forward_0);
  EXPECT_EQ(same.key(), stream.key());

  // uniform01 stays in [0, 1).
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = stream.uniform01(i);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }

  // The scaled overload is exactly mean + stddev * z.
  EXPECT_EQ(stream.normal(3, 2.0, 0.5), 2.0 + 0.5 * stream.normal(3));
}

TEST(NoiseStream, BatchedFillMatchesScalarDraws) {
  const NoiseStream stream(2024, site::kCellVth);
  std::vector<double> batch(4096);
  const std::uint64_t base = 123456789;
  stream.normal_fill(base, batch);
  for (std::size_t i = 0; i < batch.size(); ++i)
    ASSERT_EQ(batch[i], stream.normal(base + i)) << "i=" << i;
}

TEST(NoiseStream, BatchedFillMatchesScalarAtEveryWidthAndOffset) {
  // The widened fill processes vector-width blocks with a scalar remainder
  // and a cold miss pass; widths 1..17 straddle every partial-block shape
  // (empty vector part, exactly one lane, one full block plus remainders)
  // and the base indices are deliberately non-aligned -- odd, prime,
  // block-boundary +- 1, and astronomically large -- so no accidental
  // alignment between the batch blocking and the key schedule can hide an
  // indexing bug.  Identity must be exact: the fill IS the scalar draw.
  const NoiseStream stream(31337, site::kAdcNoise);
  constexpr std::uint64_t kBases[] = {0,    1,    7,     63,
                                      64,   65,   12345, (1ULL << 40) + 3,
                                      (1ULL << 53) - 11};
  std::vector<double> batch;
  for (std::size_t width = 1; width <= 17; ++width) {
    batch.assign(width, 0.0);
    for (const std::uint64_t base : kBases) {
      stream.normal_fill(base, batch);
      for (std::size_t i = 0; i < width; ++i)
        ASSERT_EQ(batch[i], stream.normal(base + i))
            << "width=" << width << " base=" << base << " i=" << i;
    }
  }
}

TEST(NoiseStream, FillIsSplitInvariant) {
  // One fill over [base, base + n) equals any partition into sub-fills:
  // each draw depends only on its absolute index, never on the batch
  // geometry.  This is the property that lets the analog engine replace
  // per-(flip, band) fills with one evaluation-wide fill.
  const NoiseStream stream(4242, site::kReadNoise);
  constexpr std::uint64_t kBase = 987654321;  // non-aligned on purpose
  constexpr std::size_t kTotal = 257;
  std::vector<double> whole(kTotal);
  stream.normal_fill(kBase, whole);
  std::vector<double> pieces(kTotal);
  const std::size_t cuts[] = {0, 1, 17, 64, 100, 255, kTotal};
  for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
    const std::size_t begin = cuts[c];
    const std::size_t end = cuts[c + 1];
    stream.normal_fill(kBase + begin,
                       {pieces.data() + begin, end - begin});
  }
  for (std::size_t i = 0; i < kTotal; ++i)
    ASSERT_EQ(pieces[i], whole[i]) << "i=" << i;
}

TEST(NoiseStream, WidenedFillMomentsFromUnalignedBase) {
  // Statistical sanity of the widened fill itself, starting mid-stream at
  // an odd base: the batched vector pass + miss resolution must produce the
  // same N(0,1) population as the scalar sampler, not just agree pointwise
  // at spot-checked indices.
  std::vector<double> draws(kDraws);
  const NoiseStream stream(555, site::kReadNoise);
  stream.normal_fill(977, draws);
  double sum = 0.0;
  for (const double z : draws) sum += z;
  const double mean = sum / static_cast<double>(draws.size());
  double m2 = 0.0;
  for (const double z : draws) m2 += (z - mean) * (z - mean);
  m2 /= static_cast<double>(draws.size());
  EXPECT_NEAR(mean, 0.0, 5e-3);
  EXPECT_NEAR(m2, 1.0, 7e-3);
}

TEST(NoiseStream, DistinctSitesAndSeedsAreDecorrelated) {
  const NoiseStream a(5, site::kReadNoise);
  const NoiseStream b(5, site::kAdcNoise);   // same seed, different site
  const NoiseStream c(6, site::kReadNoise);  // different seed, same site
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());

  constexpr std::size_t n = 200000;
  double dot_ab = 0.0;
  double dot_ac = 0.0;
  double lag1 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double za = a.normal(i);
    dot_ab += za * b.normal(i);
    dot_ac += za * c.normal(i);
    lag1 += za * a.normal(i + 1);
  }
  // Sample correlations of independent N(0,1) pairs: se ~ 1/sqrt(n) ~ 2e-3.
  EXPECT_NEAR(dot_ab / n, 0.0, 1.5e-2);
  EXPECT_NEAR(dot_ac / n, 0.0, 1.5e-2);
  EXPECT_NEAR(lag1 / n, 0.0, 1.5e-2);
}

}  // namespace
