// Hot-path equivalence suite: the optimized kernels (bit-plane column cache,
// persistent flip bitmaps, local-field caches, pooled parallel_for,
// zero-allocation annealer loops) must be bit-identical to the reference
// implementations preserved in crossbar/reference_kernels.hpp, and the
// annealer inner loops must perform zero heap allocations after their
// per-run setup.
//
// Golden history: until PR 2 both sides consumed one sequential Box-Muller
// RNG, so *draw order* was part of the pinned contract.  PR 2 replaced that
// with counter-keyed noise streams (util::NoiseStream + ReadoutNoise): noise
// is now keyed by (run_seed, site, conversion index), the engines share a
// conversion-counting cursor instead of an RNG, and the noisy goldens were
// deliberately re-pinned under the new contract (docs/noise-model.md).  The
// equivalence checked here is unchanged in spirit: identical results,
// identical cursor positions, zero hidden coupling.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/acceptance.hpp"
#include "core/direct_annealer.hpp"
#include "core/insitu_annealer.hpp"
#include "core/runner.hpp"
#include "crossbar/analog_engine.hpp"
#include "crossbar/ideal_engine.hpp"
#include "crossbar/reference_kernels.hpp"
#include "ising/local_field.hpp"
#include "problems/generators.hpp"
#include "problems/maxcut.hpp"
#include "util/parallel.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: global operator new/delete replacements so tests can
// assert that a code region performs no heap allocation.  Counted with an
// atomic; the zero-allocation tests below run the measured region on a
// single thread.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace fecim;

ising::IsingModel make_model(std::size_t n, problems::WeightScheme weights,
                             std::uint64_t seed) {
  return problems::maxcut_to_ising(
      problems::random_graph(n, 6.0, weights, seed));
}

// ---------------------------------------------------------------------------
// Analog engine: cached evaluation vs per-cell reference, bit-identical
// e_inc / raw_vmv / ADC conversion counts under the shared counter-keyed
// noise streams, with the conversion cursors in lockstep.
// ---------------------------------------------------------------------------

void expect_analog_equivalence(const ising::IsingModel& model, int bits,
                               const device::VariationParams& variation,
                               std::uint64_t seed,
                               double adc_noise_lsb = 0.5) {
  core::InSituConfig config;  // only mapping/device/analog fields are used
  config.mapping.bits = bits;
  config.analog.adc.noise_lsb_rms = adc_noise_lsb;

  const crossbar::QuantizedCouplings quantized(model.couplings(), bits);
  const crossbar::CrossbarMapping mapping(
      model.num_spins(), quantized.has_negative() ? 2 : 1, config.mapping);
  const auto array = std::make_shared<const crossbar::ProgrammedArray>(
      quantized, mapping, config.device, variation, seed);

  crossbar::AnalogCrossbarEngine engine(array, config.analog);
  const double i_on_max =
      array->on_current(array->device_params().vbg_max);

  util::Rng selector(seed ^ 0xf11b5);
  engine.begin_run(seed + 1);
  auto noise_ref = crossbar::ReadoutNoise::for_run(seed + 1);

  const double vbg_max = array->device_params().vbg_max;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t t = 1 + selector.uniform_index(4);
    const auto flips = ising::random_flip_set(model.num_spins(), t, selector);
    auto spins = ising::random_spins(model.num_spins(), selector);
    const crossbar::AnnealSignal signal{
        selector.uniform01(), selector.uniform(0.3, vbg_max)};

    const auto optimized = engine.evaluate(spins, flips, signal);
    const auto reference = crossbar::reference::analog_evaluate(
        *array, engine.adc(), engine.ir_attenuation(),
                   engine.band_attenuations(), i_on_max, spins, flips,
        signal, noise_ref);

    ASSERT_EQ(optimized.e_inc, reference.e_inc);
    ASSERT_EQ(optimized.raw_vmv, reference.raw_vmv);
    ASSERT_EQ(optimized.trace.adc_conversions, reference.trace.adc_conversions);
    ASSERT_EQ(optimized.trace.mux_slot_cycles, reference.trace.mux_slot_cycles);
    ASSERT_EQ(optimized.trace.row_drives, reference.trace.row_drives);
    ASSERT_EQ(optimized.trace.column_drives, reference.trace.column_drives);
    // Both sides assigned the same indices to the same conversions.
    ASSERT_EQ(engine.readout_noise().next_conversion,
              noise_ref.next_conversion);
  }
}

TEST(AnalogEngineEquivalence, IdealCellsAcrossBitWidths) {
  for (const int bits : {2, 4, 8}) {
    const auto model = make_model(48, problems::WeightScheme::kPlusMinusOne,
                                  100 + static_cast<std::uint64_t>(bits));
    expect_analog_equivalence(model, bits, {}, 7);
  }
}

TEST(AnalogEngineEquivalence, VariationAndNoiseAcrossBitWidths) {
  device::VariationParams variation;
  variation.vth_sigma = 0.04;
  variation.read_noise_rel = 0.02;
  variation.stuck_off_rate = 0.01;
  variation.stuck_on_rate = 0.005;
  for (const int bits : {2, 4, 8}) {
    const auto model = make_model(48, problems::WeightScheme::kPlusMinusOne,
                                  200 + static_cast<std::uint64_t>(bits));
    expect_analog_equivalence(model, bits, variation, 11);
  }
}

TEST(AnalogEngineEquivalence, DeterministicReadoutSharesClassConversions) {
  // No read noise and no ADC noise: the engine converts once per segment
  // class and fans the code out.  Cover both the fully-ideal case (maximal
  // dedup) and deterministic Vth spread / stuck cells (distinct multipliers
  // per bit, minimal dedup).
  for (const int bits : {2, 4, 8}) {
    const auto model = make_model(48, problems::WeightScheme::kPlusMinusOne,
                                  400 + static_cast<std::uint64_t>(bits));
    expect_analog_equivalence(model, bits, {}, 19, 0.0);
    device::VariationParams spread;
    spread.vth_sigma = 0.05;
    spread.stuck_off_rate = 0.01;
    expect_analog_equivalence(model, bits, spread, 23, 0.0);
  }
}

TEST(AnalogEngineEquivalence, UnitWeightsHitAllUnitFastPath) {
  // Unit-weight Max-Cut quantizes to full-scale magnitudes with identical
  // bit patterns -- the segment-class dedup and all_unit counting paths.
  const auto model = make_model(48, problems::WeightScheme::kUnit, 300);
  expect_analog_equivalence(model, 4, {}, 13);
  device::VariationParams noise_only;
  noise_only.read_noise_rel = 0.03;
  expect_analog_equivalence(model, 4, noise_only, 17);
}

TEST(AnalogEngineEquivalence, KeyedNoiseReplaysOutOfOrder) {
  // The point of the counter-keyed streams: a noisy evaluation is a pure
  // function of (run_seed, cursor position, inputs).  Run a sequence of
  // evaluations forward, then replay them in reverse order with the cursor
  // positioned by index -- every result must reproduce bit-identically,
  // which is impossible under a sequential draw-order contract.
  const auto model = make_model(48, problems::WeightScheme::kPlusMinusOne, 500);
  device::VariationParams variation;
  variation.vth_sigma = 0.04;
  variation.read_noise_rel = 0.02;
  core::InSituConfig config;
  config.mapping.bits = 8;

  const crossbar::QuantizedCouplings quantized(model.couplings(), 8);
  const crossbar::CrossbarMapping mapping(
      model.num_spins(), quantized.has_negative() ? 2 : 1, config.mapping);
  const auto array = std::make_shared<const crossbar::ProgrammedArray>(
      quantized, mapping, config.device, variation, 31);
  const crossbar::AnalogCrossbarEngine probe(array, config.analog);
  const double i_on_max = array->on_current(array->device_params().vbg_max);

  util::Rng selector(91);
  constexpr int kCalls = 12;
  std::vector<ising::FlipSet> flip_sets;
  std::vector<ising::SpinVector> spin_sets;
  std::vector<crossbar::AnnealSignal> signals;
  for (int k = 0; k < kCalls; ++k) {
    flip_sets.push_back(ising::random_flip_set(
        model.num_spins(), 1 + selector.uniform_index(3), selector));
    spin_sets.push_back(ising::random_spins(model.num_spins(), selector));
    signals.push_back({selector.uniform01(), selector.uniform(0.3, 0.7)});
  }

  auto forward = crossbar::ReadoutNoise::for_run(77);
  std::vector<std::uint64_t> cursor_at(kCalls);
  std::vector<double> e_forward(kCalls);
  for (int k = 0; k < kCalls; ++k) {
    cursor_at[k] = forward.next_conversion;
    e_forward[k] = crossbar::reference::analog_evaluate(
                       *array, probe.adc(), probe.ir_attenuation(), probe.band_attenuations(), i_on_max,
                       spin_sets[k], flip_sets[k], signals[k], forward)
                       .e_inc;
  }
  for (int k = kCalls - 1; k >= 0; --k) {
    auto replay = crossbar::ReadoutNoise::for_run(77);
    replay.next_conversion = cursor_at[k];
    const double e_replay = crossbar::reference::analog_evaluate(
                                *array, probe.adc(), probe.ir_attenuation(), probe.band_attenuations(),
                                i_on_max, spin_sets[k], flip_sets[k],
                                signals[k], replay)
                                .e_inc;
    ASSERT_EQ(e_replay, e_forward[k]) << "call " << k;
  }
}

// ---------------------------------------------------------------------------
// Incremental VMV: persistent-bitmap implementation vs seed reference.
// ---------------------------------------------------------------------------

TEST(IncrementalVmvEquivalence, MatchesReferenceAcrossFlipCounts) {
  const auto model = make_model(64, problems::WeightScheme::kPlusMinusOne, 5);
  util::Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t t = 1 + rng.uniform_index(24);
    const auto flips = ising::random_flip_set(model.num_spins(), t, rng);
    const auto spins = ising::random_spins(model.num_spins(), rng);
    ASSERT_EQ(model.incremental_vmv(spins, flips),
              crossbar::reference::incremental_vmv(model, spins, flips));
  }
}

TEST(IncrementalVmvEquivalence, DuplicateRejectionLeavesBitmapClean) {
  const auto model = make_model(32, problems::WeightScheme::kUnit, 6);
  util::Rng rng(29);
  const auto spins = ising::random_spins(model.num_spins(), rng);
  const ising::FlipSet duplicate{3, 7, 3};
  EXPECT_THROW(model.incremental_vmv(spins, duplicate), fecim::contract_error);
  const ising::FlipSet out_of_range{1, 99};
  EXPECT_THROW(model.incremental_vmv(spins, out_of_range),
               fecim::contract_error);
  // The persistent thread-local bitmap must have been unwound: a valid call
  // involving the previously-marked indices still matches the reference.
  const ising::FlipSet valid{1, 3, 7};
  EXPECT_EQ(model.incremental_vmv(spins, valid),
            crossbar::reference::incremental_vmv(model, spins, valid));
}

// ---------------------------------------------------------------------------
// Local-field cache: h-based VMV vs row walk, and incremental maintenance
// vs rebuild.  Unit-weight couplings are dyadic, so every association of
// the same exact sums is bit-identical.
// ---------------------------------------------------------------------------

TEST(LocalFieldCache, VmvMatchesRowWalkOnDyadicWeights) {
  const auto model = make_model(64, problems::WeightScheme::kUnit, 8);
  util::Rng rng(31);
  auto spins = ising::random_spins(model.num_spins(), rng);
  ising::LocalFieldCache cache;
  cache.build(model, spins);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t t = 1 + rng.uniform_index(6);
    const auto flips = ising::random_flip_set(model.num_spins(), t, rng);
    ASSERT_EQ(cache.vmv(model, spins, flips),
              model.incremental_vmv(spins, flips));
  }
}

TEST(LocalFieldCache, ApplyFlipsMatchesRebuild) {
  const auto model =
      make_model(64, problems::WeightScheme::kPlusMinusOne, 9);
  util::Rng rng(37);
  auto spins = ising::random_spins(model.num_spins(), rng);
  ising::LocalFieldCache incremental;
  incremental.build(model, spins);
  for (int step = 0; step < 50; ++step) {
    auto flips = ising::random_flip_set(model.num_spins(),
                                        1 + rng.uniform_index(4), rng);
    ising::flip_in_place(spins, flips);
    incremental.apply_flips(model, spins, flips);
  }
  ising::LocalFieldCache rebuilt;
  rebuilt.build(model, spins);
  const auto a = incremental.fields();
  const auto b = rebuilt.fields();
  ASSERT_EQ(a.size(), b.size());
  // +-1 weights keep every field an exact small integer, so incremental
  // +=/-= updates cannot drift from the rebuilt sums.
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(LocalFieldCache, LargeFlipSetsFallBackToRowWalk) {
  const auto model = make_model(48, problems::WeightScheme::kUnit, 10);
  util::Rng rng(41);
  const auto spins = ising::random_spins(model.num_spins(), rng);
  ising::LocalFieldCache cache;
  cache.build(model, spins);
  const auto flips = ising::random_flip_set(model.num_spins(), 20, rng);
  EXPECT_EQ(cache.vmv(model, spins, flips),
            model.incremental_vmv(spins, flips));
}

// ---------------------------------------------------------------------------
// Full-run fixed-seed equivalence: the production annealers vs faithful
// re-implementations of the seed loops (reference kernels, per-iteration
// allocations, row-walk energy bookkeeping).  Unit weights keep all
// arithmetic dyadic, so equality is exact.
// ---------------------------------------------------------------------------

core::MaxcutInstance unit_instance(std::size_t n, std::uint64_t seed) {
  return core::make_maxcut_instance(
      "equiv", problems::random_graph(n, 6.0, problems::WeightScheme::kUnit,
                                      seed),
      16, seed);
}

void expect_run_equal(const core::AnnealResult& a, const core::AnnealResult& b) {
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.final_energy, b.final_energy);
  EXPECT_EQ(a.best_spins, b.best_spins);
  EXPECT_EQ(a.final_spins, b.final_spins);
  EXPECT_EQ(a.accepted_moves, b.accepted_moves);
  EXPECT_EQ(a.uphill_accepted, b.uphill_accepted);
  EXPECT_EQ(a.ledger.iterations, b.ledger.iterations);
  EXPECT_EQ(a.ledger.adc_conversions, b.ledger.adc_conversions);
  EXPECT_EQ(a.ledger.mux_slot_cycles, b.ledger.mux_slot_cycles);
  EXPECT_EQ(a.ledger.row_drives, b.ledger.row_drives);
  EXPECT_EQ(a.ledger.column_drives, b.ledger.column_drives);
  EXPECT_EQ(a.ledger.bg_dac_updates, b.ledger.bg_dac_updates);
  EXPECT_EQ(a.ledger.spin_updates, b.ledger.spin_updates);
  EXPECT_EQ(a.ledger.crossbar_passes, b.ledger.crossbar_passes);
  EXPECT_EQ(a.ledger.exp_evaluations, b.ledger.exp_evaluations);
}

/// The seed in-situ loop for the analog engine: reference analog evaluation,
/// freshly-allocated flip sets, delta_energy row walks.  Readout noise comes
/// from the same counter-keyed streams the production engine binds in
/// begin_run(seed).
core::AnnealResult seed_insitu_analog_run(const core::InSituCimAnnealer& annealer,
                                          const core::InSituConfig& config,
                                          const ising::IsingModel& model,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  auto noise = crossbar::ReadoutNoise::for_run(seed);
  const std::size_t n = model.num_spins();
  const auto array = annealer.array();
  // Probe engine for the shared calibration (construction draws no RNG).
  crossbar::AnalogCrossbarEngine probe(array, config.analog);
  const double i_on_max = array->on_current(array->device_params().vbg_max);

  core::AnnealResult result;
  auto spins = ising::random_spins(n, rng);
  double energy = model.energy(spins);
  result.best_spins = spins;
  result.best_energy = energy;

  const core::FractionalAcceptance acceptance;
  double previous_vbg = -1.0;

  for (std::size_t it = 0; it < config.iterations; ++it) {
    const auto point = annealer.schedule().at(it);
    if (point.vbg != previous_vbg) {
      ++result.ledger.bg_dac_updates;
      previous_vbg = point.vbg;
    }
    const auto flips = ising::random_flip_set(
        model.num_flippable(), config.flips_per_iteration, rng);
    const auto evaluation = crossbar::reference::analog_evaluate(
        *array, probe.adc(), probe.ir_attenuation(), probe.band_attenuations(), i_on_max, spins, flips,
        {point.factor, point.vbg}, noise);
    crossbar::merge_trace(result.ledger, evaluation.trace);
    ++result.ledger.iterations;
    if (acceptance.accept(config.acceptance_gain * evaluation.e_inc, rng)) {
      energy += model.delta_energy(spins, flips);
      ising::flip_in_place(spins, flips);
      result.ledger.spin_updates += flips.size();
      ++result.accepted_moves;
      if (evaluation.e_inc > 0.0) ++result.uphill_accepted;
      if (energy < result.best_energy) {
        result.best_energy = energy;
        result.best_spins = spins;
      }
    }
  }
  result.final_spins = std::move(spins);
  result.final_energy = energy;
  return result;
}

TEST(FullRunEquivalence, InSituAnalogMatchesSeedLoop) {
  const auto instance = unit_instance(48, 77);
  core::InSituConfig config;
  config.iterations = 400;
  config.flips_per_iteration = 2;
  config.flip_selection = core::InSituConfig::FlipSelection::kRandom;
  config.variation.vth_sigma = 0.03;
  config.variation.read_noise_rel = 0.02;
  const core::InSituCimAnnealer annealer(instance.model, config);
  for (const std::uint64_t seed : {1ULL, 9ULL, 1234567ULL}) {
    const auto optimized = annealer.run(seed);
    const auto reference =
        seed_insitu_analog_run(annealer, config, *instance.model, seed);
    expect_run_equal(optimized, reference);
  }
}

/// The seed cluster selection: O(t^2) linear duplicate scans and unbounded
/// uniform re-draws.  Identical RNG draw order to the optimized version for
/// the sparse flip sets this test uses.
ising::FlipSet seed_cluster_flip_set(const ising::IsingModel& model,
                                     const core::InSituConfig& config,
                                     util::Rng& rng) {
  const std::size_t flippable = model.num_flippable();
  double parity_mix = config.parity_mix;
  if (parity_mix < 0.0) parity_mix = model.has_ancilla() ? 0.25 : 0.0;
  std::size_t t = config.flips_per_iteration;
  if (t > 1 && parity_mix > 0.0 && rng.bernoulli(parity_mix)) --t;
  ising::FlipSet flips;
  flips.push_back(static_cast<std::uint32_t>(rng.uniform_index(flippable)));
  const auto& j = model.couplings();
  while (flips.size() < t) {
    const auto current = flips.back();
    const auto neighbors = j.row_cols(current);
    std::uint32_t next = 0;
    bool found = false;
    if (rng.bernoulli(config.cluster_neighbor_bias)) {
      for (int attempt = 0; attempt < 8 && !neighbors.empty(); ++attempt) {
        const auto candidate = neighbors[rng.uniform_index(neighbors.size())];
        if (candidate >= flippable) continue;
        bool duplicate = false;
        for (const auto f : flips) duplicate |= (f == candidate);
        if (!duplicate) {
          next = candidate;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      do {
        next = static_cast<std::uint32_t>(rng.uniform_index(flippable));
        bool duplicate = false;
        for (const auto f : flips) duplicate |= (f == next);
        if (!duplicate) break;
      } while (true);
    }
    flips.push_back(next);
  }
  return flips;
}

/// The seed in-situ loop for the ideal engine: a cache-less engine instance
/// (stateless CSR row walks) plus delta_energy bookkeeping.
core::AnnealResult seed_insitu_ideal_run(const core::InSituCimAnnealer& annealer,
                                         const core::InSituConfig& config,
                                         const ising::IsingModel& model,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t n = model.num_spins();
  crossbar::IdealCrossbarEngine engine(model, annealer.mapping(),
                                       crossbar::Accounting::kInSitu);
  core::AnnealResult result;
  auto spins = ising::random_spins(n, rng);
  double energy = model.energy(spins);
  result.best_spins = spins;
  result.best_energy = energy;

  const core::FractionalAcceptance acceptance;
  double previous_vbg = -1.0;
  for (std::size_t it = 0; it < config.iterations; ++it) {
    const auto point = annealer.schedule().at(it);
    if (point.vbg != previous_vbg) {
      ++result.ledger.bg_dac_updates;
      previous_vbg = point.vbg;
    }
    const auto flips = seed_cluster_flip_set(model, config, rng);
    const auto evaluation =
        engine.evaluate(spins, flips, {point.factor, point.vbg});
    crossbar::merge_trace(result.ledger, evaluation.trace);
    ++result.ledger.iterations;
    if (acceptance.accept(config.acceptance_gain * evaluation.e_inc, rng)) {
      energy += model.delta_energy(spins, flips);
      ising::flip_in_place(spins, flips);
      result.ledger.spin_updates += flips.size();
      ++result.accepted_moves;
      if (evaluation.e_inc > 0.0) ++result.uphill_accepted;
      if (energy < result.best_energy) {
        result.best_energy = energy;
        result.best_spins = spins;
      }
    }
  }
  result.final_spins = std::move(spins);
  result.final_energy = energy;
  return result;
}

TEST(FullRunEquivalence, InSituIdealClusterMatchesSeedLoop) {
  const auto instance = unit_instance(48, 78);
  core::InSituConfig config;
  config.iterations = 400;
  config.flips_per_iteration = 3;
  config.flip_selection = core::InSituConfig::FlipSelection::kCluster;
  config.engine = core::InSituConfig::EngineKind::kIdeal;
  const core::InSituCimAnnealer annealer(instance.model, config);
  for (const std::uint64_t seed : {2ULL, 10ULL, 7654321ULL}) {
    const auto optimized = annealer.run(seed);
    const auto reference =
        seed_insitu_ideal_run(annealer, config, *instance.model, seed);
    expect_run_equal(optimized, reference);
  }
}

/// The seed direct-E loop: cache-less engine, freshly-allocated flip sets.
core::AnnealResult seed_direct_run(const core::DirectEAnnealer& annealer,
                                   const core::DirectEConfig& config,
                                   const ising::IsingModel& model,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t n = model.num_spins();
  const crossbar::QuantizedCouplings quantized(model.couplings(),
                                               config.mapping.bits);
  const crossbar::CrossbarMapping mapping(
      n, quantized.has_negative() ? 2 : 1, config.mapping);
  crossbar::IdealCrossbarEngine engine(model, mapping,
                                       crossbar::Accounting::kDirectFullArray);
  const double t_start = annealer.calibrated_t_start();
  const core::ClassicSchedule schedule(
      {t_start, t_start * config.t_end_fraction, config.iterations,
       config.schedule_kind, config.decay_per_iteration});

  core::AnnealResult result;
  auto spins = ising::random_spins(n, rng);
  double energy = model.energy(spins);
  result.best_spins = spins;
  result.best_energy = energy;

  const core::MetropolisAcceptance acceptance;
  for (std::size_t it = 0; it < config.iterations; ++it) {
    const double temperature = schedule.temperature(it);
    const auto flips = ising::random_flip_set(
        model.num_flippable(), config.flips_per_iteration, rng);
    const auto evaluation = engine.evaluate(spins, flips, {1.0, 0.0});
    crossbar::merge_trace(result.ledger, evaluation.trace);
    ++result.ledger.iterations;
    double delta_e = 4.0 * evaluation.raw_vmv;
    for (const auto i : flips)
      delta_e += -2.0 * model.fields()[i] * static_cast<double>(spins[i]);
    const auto decision = acceptance.accept(delta_e, temperature, rng);
    if (config.pipelined_exp_unit || decision.exp_evaluated)
      ++result.ledger.exp_evaluations;
    if (decision.accepted) {
      energy += delta_e;
      ising::flip_in_place(spins, flips);
      result.ledger.spin_updates += flips.size();
      ++result.accepted_moves;
      if (delta_e > 0.0) ++result.uphill_accepted;
      if (energy < result.best_energy) {
        result.best_energy = energy;
        result.best_spins = spins;
      }
    }
  }
  result.final_spins = std::move(spins);
  result.final_energy = energy;
  return result;
}

TEST(FullRunEquivalence, DirectEMatchesSeedLoop) {
  const auto instance = unit_instance(48, 79);
  core::DirectEConfig config;
  config.iterations = 400;
  config.flips_per_iteration = 2;
  const core::DirectEAnnealer annealer(instance.model, config);
  for (const std::uint64_t seed : {3ULL, 11ULL, 24681357ULL}) {
    const auto optimized = annealer.run(seed);
    const auto reference =
        seed_direct_run(annealer, config, *instance.model, seed);
    expect_run_equal(optimized, reference);
  }
}

// ---------------------------------------------------------------------------
// Pooled parallel_for: correctness across repeated reuse, and no wasted
// body executions once a task has thrown.
// ---------------------------------------------------------------------------

TEST(PooledParallelFor, RepeatedCallsReuseThePool) {
  for (int round = 0; round < 50; ++round) {
    std::vector<std::atomic<int>> counts(257);
    util::parallel_for(counts.size(), [&](std::size_t i) { ++counts[i]; }, 4);
    for (const auto& c : counts) ASSERT_EQ(c.load(), 1);
  }
}

TEST(PooledParallelFor, SkipsRemainingBodiesAfterThrow) {
  constexpr std::size_t kCount = 1'000'000;
  std::atomic<std::uint64_t> executed{0};
  EXPECT_THROW(
      util::parallel_for(
          kCount,
          [&](std::size_t) {
            if (executed.fetch_add(1) == 0) throw std::runtime_error("boom");
          },
          2),
      std::runtime_error);
  // The seed implementation ran every remaining index's body (~kCount
  // executions); the drained pool must stop almost immediately.
  EXPECT_LT(executed.load(), kCount / 2);
}

TEST(PooledParallelFor, NestedCallsRunInline) {
  std::vector<std::atomic<int>> counts(64);
  util::parallel_for(
      8,
      [&](std::size_t outer) {
        util::parallel_for(
            8, [&](std::size_t inner) { ++counts[outer * 8 + inner]; }, 4);
      },
      4);
  for (const auto& c : counts) ASSERT_EQ(c.load(), 1);
}

// ---------------------------------------------------------------------------
// Zero-allocation inner loops: the allocation count of a run must not grow
// with the iteration count (everything is amortized into per-run setup).
// ---------------------------------------------------------------------------

template <typename MakeAnnealer>
void expect_iteration_free_allocations(const MakeAnnealer& make) {
  const auto short_annealer = make(std::size_t{400});
  const auto long_annealer = make(std::size_t{1600});
  // Warm-up: populate thread-local scratch and lazy pools.
  (void)short_annealer->run(99);
  (void)long_annealer->run(99);

  const auto count_run = [](const core::Annealer& annealer) {
    const std::uint64_t before = g_alloc_count.load();
    (void)annealer.run(99);
    return g_alloc_count.load() - before;
  };
  const auto short_allocs = count_run(*short_annealer);
  const auto long_allocs = count_run(*long_annealer);
  // 4x the iterations, same allocation count -> zero per-iteration heap
  // traffic; every allocation belongs to per-run setup.
  EXPECT_EQ(short_allocs, long_allocs);
  EXPECT_GT(short_allocs, 0u);  // sanity: the counter is actually wired up
}

TEST(ZeroAllocationLoop, InSituAnalog) {
  const auto instance = unit_instance(64, 91);
  expect_iteration_free_allocations([&](std::size_t iterations) {
    core::InSituConfig config;
    config.iterations = iterations;
    config.flips_per_iteration = 2;
    config.variation.read_noise_rel = 0.02;
    return std::make_unique<core::InSituCimAnnealer>(instance.model, config);
  });
}

TEST(ZeroAllocationLoop, InSituIdealRandomSelection) {
  const auto instance = unit_instance(64, 92);
  expect_iteration_free_allocations([&](std::size_t iterations) {
    core::InSituConfig config;
    config.iterations = iterations;
    config.flips_per_iteration = 2;
    config.flip_selection = core::InSituConfig::FlipSelection::kRandom;
    config.engine = core::InSituConfig::EngineKind::kIdeal;
    return std::make_unique<core::InSituCimAnnealer>(instance.model, config);
  });
}

TEST(ZeroAllocationLoop, DirectE) {
  const auto instance = unit_instance(64, 93);
  expect_iteration_free_allocations([&](std::size_t iterations) {
    core::DirectEConfig config;
    config.iterations = iterations;
    config.flips_per_iteration = 2;
    return std::make_unique<core::DirectEAnnealer>(instance.model, config);
  });
}

}  // namespace
