// Preisach hysteresis model: saturation, program/erase states, classical
// Preisach properties (return-point memory / wiping-out), V_TH mapping.
#include <gtest/gtest.h>

#include <cmath>

#include "device/preisach.hpp"
#include "util/assert.hpp"

namespace {

using fecim::device::PreisachFefet;
using fecim::device::PreisachParams;

TEST(Preisach, StartsErased) {
  const PreisachFefet fefet;
  EXPECT_LT(fefet.polarization(), 0.0);
}

TEST(Preisach, SaturatesBothDirections) {
  PreisachFefet fefet;
  fefet.apply_gate_voltage(5.0);
  EXPECT_NEAR(fefet.polarization(), 1.0, 1e-9);
  fefet.apply_gate_voltage(-5.0);
  EXPECT_NEAR(fefet.polarization(), -1.0, 1e-9);
}

TEST(Preisach, ProgramEraseSetLowHighVth) {
  PreisachFefet fefet;
  fefet.program();
  const double vth_low = fefet.threshold_voltage();
  fefet.erase();
  const double vth_high = fefet.threshold_voltage();
  // Fig. 2(b): program (+pulse) -> low V_TH; memory window ~ 1 V.
  EXPECT_LT(vth_low, vth_high);
  EXPECT_NEAR(vth_high - vth_low, fefet.params().memory_window, 0.05);
}

TEST(Preisach, RemanenceAfterPulseRemoval) {
  PreisachFefet fefet;
  fefet.program(4.0);
  const double p_after = fefet.polarization();
  EXPECT_GT(p_after, 0.5);  // remanent, not volatile
  fefet.apply_gate_voltage(0.0);
  EXPECT_DOUBLE_EQ(fefet.polarization(), p_after);
}

TEST(Preisach, MinorLoopHysteresis) {
  PreisachFefet fefet;
  fefet.erase(5.0);
  fefet.apply_gate_voltage(2.0);  // partial switching
  const double p_up = fefet.polarization();
  fefet.apply_gate_voltage(0.0);
  fefet.apply_gate_voltage(2.0);
  // Returning to the same field gives the same state (congruency).
  EXPECT_NEAR(fefet.polarization(), p_up, 1e-12);
}

TEST(Preisach, WipingOutProperty) {
  // Return-point memory: a smaller excursion nested inside a larger one is
  // erased when the input exceeds the previous maximum again.
  PreisachFefet a;
  PreisachFefet b;
  a.erase(5.0);
  b.erase(5.0);
  // a: straight to 3 V. b: detour 2 V -> -1 V -> 3 V.
  a.apply_gate_voltage(3.0);
  b.apply_gate_voltage(2.0);
  b.apply_gate_voltage(-1.0);
  b.apply_gate_voltage(3.0);
  EXPECT_NEAR(a.polarization(), b.polarization(), 1e-12);
}

TEST(Preisach, MonotoneResponseAlongSweep) {
  PreisachFefet fefet;
  fefet.apply_gate_voltage(-5.0);
  double previous = fefet.polarization();
  for (double v = -5.0; v <= 5.0; v += 0.25) {
    fefet.apply_gate_voltage(v);
    EXPECT_GE(fefet.polarization(), previous - 1e-12);
    previous = fefet.polarization();
  }
}

TEST(Preisach, HysteresisLoopHasWidth) {
  // Ascending and descending branches must differ near the coercive voltage.
  PreisachFefet up;
  up.apply_gate_voltage(-5.0);
  up.apply_gate_voltage(0.0);
  const double p_ascending = up.polarization();

  PreisachFefet down;
  down.apply_gate_voltage(5.0);
  down.apply_gate_voltage(0.0);
  const double p_descending = down.polarization();
  EXPECT_GT(p_descending - p_ascending, 0.5);
}

TEST(Preisach, DrainCurrentReflectsState) {
  PreisachFefet fefet;
  fefet.program();
  // Read at V_G between the two threshold states (low ~ -0.2 V, high
  // ~ +0.8 V): the programmed device is on, the erased one far subthreshold.
  const double on = fefet.drain_current(0.5, 0.5);
  fefet.erase();
  const double off = fefet.drain_current(0.5, 0.5);
  EXPECT_GT(on, off * 100.0);  // >= 2 decades of read window
}

TEST(Preisach, IdVgCurveShapesMatchFig2b) {
  // Programmed and erased I_D-V_G curves are translated copies ~MW apart.
  PreisachFefet fefet;
  fefet.program();
  auto crossing = [&fefet](double level) {
    for (double vg = -1.0; vg < 3.0; vg += 0.001)
      if (fefet.drain_current(vg, 1.0) > level) return vg;
    return 3.0;
  };
  const double vg_low = crossing(1e-6);
  fefet.erase();
  const double vg_high = crossing(1e-6);
  EXPECT_NEAR(vg_high - vg_low, fefet.params().memory_window, 0.1);
}

TEST(Preisach, CustomParamsValidated) {
  PreisachParams bad;
  bad.grid_size = 1;
  EXPECT_THROW(PreisachFefet{bad}, fecim::contract_error);
}

}  // namespace
